// vlsipc — the command-line face of the toolchain.
//
//   vlsipc compile <source.vdf> [-o out.vobj] [--optimize]
//       Compile dataflow source to object code (text format).
//   vlsipc info <file.vobj|file.vdf>
//       Print the object inventory, ports and dependency profile.
//   vlsipc run <file.vobj|file.vdf> [--in name=v1,v2,...]...
//              [--capacity C] [--expect N] [--json]
//       Configure on a fresh AP and execute; prints outputs and stats.
//   vlsipc serve <jobs.txt> [--workers N] [--queue D] [--batch B]
//              [--reject] [--deterministic] [--json]
//       Run a job manifest through the multi-chip farm; prints a
//       per-job table plus throughput and latency percentiles.
//   vlsipc chaos <jobs.txt|@synthetic:N[:seed]> [--seed S] [--events E]
//              [--threaded] [--workers N] [--stalls] [--crashes]
//              [--max-retries R] [--backoff T] [--quarantine-after Q]
//       Run a manifest through the farm under a seeded fault plan and
//       print a JSON survival report. Exit 0 iff no job was lost
//       (every admitted job's future resolved). Deterministic by
//       default: the same seed gives a bit-identical report.
//
// Sources (.vdf) are compiled on the fly; object files (.vobj) load
// directly. Everything except farm wall-clock latency is deterministic
// (pass --deterministic to serve for bit-identical outcomes too).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vlsip.hpp"

namespace {

using namespace vlsip;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw PreconditionError("cannot open file: " + path);
  }
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

arch::Program load_program(const std::string& path) {
  const auto text = read_file(path);
  if (ends_with(path, ".vobj") ||
      text.rfind("vlsip-object-code", 0) == 0) {
    return arch::from_text(text);
  }
  return lang::compile(text);
}

int cmd_compile(int argc, char** argv) {
  std::string out_path;
  bool optimize = false;
  std::string src_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--optimize") == 0) {
      optimize = true;
    } else {
      src_path = argv[i];
    }
  }
  if (src_path.empty()) {
    std::fprintf(stderr, "usage: vlsipc compile <source.vdf> [-o out] "
                         "[--optimize]\n");
    return 2;
  }
  auto program = lang::compile(read_file(src_path));
  if (optimize) {
    arch::OptimizeReport report;
    program.stream = arch::optimize_stream_order(program.stream, &report);
    std::fprintf(stderr,
                 "optimized: mean dependency distance %.2f -> %.2f\n",
                 report.original_mean_distance,
                 report.optimized_mean_distance);
  }
  const auto text = arch::to_text(program);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    out << text;
    std::fprintf(stderr, "wrote %s (%zu objects, %zu elements)\n",
                 out_path.c_str(), program.object_count(),
                 program.stream.size());
  }
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: vlsipc info <file>\n");
    return 2;
  }
  const auto program = load_program(argv[0]);
  const auto problems = arch::validate_program(program);
  for (const auto& p : problems) {
    std::printf("INVALID: %s\n", p.c_str());
  }
  std::printf("objects: %zu, stream elements: %zu%s\n",
              program.object_count(), program.stream.size(),
              problems.empty() ? " (valid)" : "");
  for (const auto& [name, id] : program.inputs) {
    std::printf("input  %-12s -> object %u\n", name.c_str(), id);
  }
  for (const auto& [name, id] : program.outputs) {
    std::printf("output %-12s -> object %u\n", name.c_str(), id);
  }
  const auto profile = arch::analyze_dependencies(program.stream);
  std::printf("dependency profile: working set %zu, max distance %zu, "
              "mean distance %.2f, cold misses %zu\n",
              profile.distinct, profile.max_distance,
              profile.mean_distance, profile.cold_misses);
  std::printf("minimum capacity C for streaming: %zu objects "
              "(%zu clusters of 16)\n",
              program.object_count(),
              (program.object_count() + 15) / 16);
  return 0;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int cmd_run(int argc, char** argv) {
  std::string path;
  int capacity = 64;
  std::size_t expect = 1;
  bool json = false;
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> feeds;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--in") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --in spec: %s\n", spec.c_str());
        return 2;
      }
      std::vector<std::int64_t> values;
      std::stringstream vs(spec.substr(eq + 1));
      std::string tok;
      while (std::getline(vs, tok, ',')) values.push_back(std::stoll(tok));
      feeds.emplace_back(spec.substr(0, eq), std::move(values));
    } else if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
      capacity = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--expect") == 0 && i + 1 < argc) {
      expect = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: vlsipc run <file> [--in name=v,...] "
                         "[--capacity C] [--expect N] [--json]\n");
    return 2;
  }
  const auto program = load_program(path);

  ap::ApConfig cfg;
  cfg.capacity = capacity;
  cfg.memory_blocks = 16;
  ap::AdaptiveProcessor ap(cfg);
  const auto config_stats = ap.configure(program);
  for (const auto& [name, values] : feeds) {
    for (const auto v : values) ap.feed(name, arch::make_word_i(v));
  }
  const auto exec = ap.run(expect, 1u << 24);

  if (json) {
    std::ostringstream out;
    out << "{\"program\":\"" << json_escape(path) << "\","
        << "\"status\":\""
        << (exec.completed ? "completed"
                           : (exec.deadlocked ? "deadlocked" : "timeout"))
        << "\",\"configuration\":{\"cycles\":" << config_stats.cycles
        << ",\"object_requests\":" << config_stats.object_requests
        << ",\"hit_rate\":" << config_stats.hit_rate()
        << "},\"execution\":{\"cycles\":" << exec.cycles
        << ",\"ops\":" << exec.total_ops()
        << ",\"int_ops\":" << exec.int_ops
        << ",\"float_ops\":" << exec.float_ops
        << ",\"mem_ops\":" << exec.mem_ops
        << ",\"faults\":" << exec.faults << "},\"outputs\":{";
    bool first_port = true;
    for (const auto& [name, id] : program.outputs) {
      (void)id;
      if (!first_port) out << ",";
      first_port = false;
      out << "\"" << json_escape(name) << "\":[";
      bool first_word = true;
      for (const auto& w : ap.output(name)) {
        if (!first_word) out << ",";
        first_word = false;
        out << w.i;
      }
      out << "]";
    }
    out << "}}";
    std::printf("%s\n", out.str().c_str());
    return exec.completed ? 0 : 1;
  }

  std::printf("configuration: %llu cycles (%llu requests, %.0f%% hits)\n",
              static_cast<unsigned long long>(config_stats.cycles),
              static_cast<unsigned long long>(config_stats.object_requests),
              100.0 * config_stats.hit_rate());
  std::printf("execution: %llu cycles, %llu ops (%llu int / %llu fp / "
              "%llu mem), faults %llu, %s\n",
              static_cast<unsigned long long>(exec.cycles),
              static_cast<unsigned long long>(exec.total_ops()),
              static_cast<unsigned long long>(exec.int_ops),
              static_cast<unsigned long long>(exec.float_ops),
              static_cast<unsigned long long>(exec.mem_ops),
              static_cast<unsigned long long>(exec.faults),
              exec.completed ? "completed"
                             : (exec.deadlocked ? "DEADLOCKED" : "timeout"));
  for (const auto& line : exec.blocked_report) {
    std::printf("  blocked: %s\n", line.c_str());
  }
  for (const auto& [name, id] : program.outputs) {
    (void)id;
    std::printf("%s =", name.c_str());
    for (const auto& w : ap.output(name)) {
      std::printf(" %lld", static_cast<long long>(w.i));
    }
    std::printf("\n");
  }
  return exec.completed ? 0 : 1;
}

void print_outcome_json(std::ostringstream& out,
                        const scaling::JobOutcome& o) {
  out << "{\"name\":\"" << json_escape(o.name) << "\",\"id\":" << o.id
      << ",\"status\":\"" << scaling::to_string(o.status) << "\"";
  if (!o.detail.empty()) {
    out << ",\"detail\":\"" << json_escape(o.detail) << "\"";
  }
  out << ",\"clusters\":" << o.clusters_used
      << ",\"config_cycles\":" << o.config_cycles
      << ",\"exec_cycles\":" << o.exec_cycles << ",\"faults\":" << o.faults
      << ",\"queued_at\":" << o.queued_at
      << ",\"started_at\":" << o.started_at
      << ",\"finished_at\":" << o.finished_at << ",\"outputs\":{";
  bool first_port = true;
  for (const auto& [name, words] : o.outputs) {
    if (!first_port) out << ",";
    first_port = false;
    out << "\"" << json_escape(name) << "\":[";
    bool first_word = true;
    for (const auto& w : words) {
      if (!first_word) out << ",";
      first_word = false;
      out << w.i;
    }
    out << "]";
  }
  out << "}}";
}

int cmd_serve(int argc, char** argv) {
  std::string path;
  runtime::FarmConfig cfg;
  cfg.block_when_full = true;  // batch manifests throttle by default
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      cfg.batch.max_jobs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reject") == 0) {
      cfg.block_when_full = false;
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      cfg.deterministic = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: vlsipc serve <jobs.txt> [--workers N] [--queue D] "
                 "[--batch B] [--reject] [--deterministic] [--json]\n");
    return 2;
  }

  const auto jobs = runtime::load_manifest(path);
  const auto t0 = std::chrono::steady_clock::now();
  runtime::ChipFarm farm(cfg);
  std::size_t rejected = 0;
  for (const auto& job : jobs) {
    const auto admission = farm.submit(job);
    if (!admission.admitted) ++rejected;
  }
  farm.drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  farm.shutdown();

  const char* unit = cfg.deterministic ? "cycles" : "us";
  const double jobs_per_sec =
      wall_s > 0.0 ? static_cast<double>(metrics.served()) / wall_s : 0.0;
  // Deterministic runs promise bit-identical output, so the footer
  // reports the virtual clock instead of wall time.
  const std::uint64_t virtual_cycles = farm.now();

  if (json) {
    std::ostringstream out;
    out << "{\"manifest\":\"" << json_escape(path)
        << "\",\"workers\":" << farm.workers()
        << ",\"deterministic\":" << (cfg.deterministic ? "true" : "false")
        << ",\"tick_unit\":\"" << unit << "\",\"jobs\":[";
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (i != 0) out << ",";
      print_outcome_json(out, log[i]);
    }
    out << "],\"metrics\":{\"submitted\":" << metrics.submitted
        << ",\"served\":" << metrics.served()
        << ",\"completed\":" << metrics.completed
        << ",\"rejected\":" << metrics.rejected
        << ",\"cancelled\":" << metrics.cancelled
        << ",\"timed_out\":" << metrics.timed_out
        << ",\"batches\":" << metrics.batches
        << ",\"fuse_reuses\":" << metrics.fuse_reuses
        << ",\"latency_p50\":" << metrics.latency_percentile(0.50)
        << ",\"latency_p95\":" << metrics.latency_percentile(0.95)
        << ",\"latency_p99\":" << metrics.latency_percentile(0.99);
    if (cfg.deterministic) {
      out << ",\"virtual_cycles\":" << virtual_cycles;
    } else {
      out << ",\"wall_seconds\":" << wall_s
          << ",\"jobs_per_sec\":" << jobs_per_sec;
    }
    out << "}}";
    std::printf("%s\n", out.str().c_str());
  } else {
    AsciiTable table({"job", "status", "clusters", "config", "exec",
                      "faults", "latency(" + std::string(unit) + ")"});
    for (const auto& o : log) {
      table.add_row({o.name, scaling::to_string(o.status),
                     std::to_string(o.clusters_used),
                     std::to_string(o.config_cycles),
                     std::to_string(o.exec_cycles),
                     std::to_string(o.faults),
                     std::to_string(o.turnaround())});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s", metrics.render(unit).c_str());
    if (cfg.deterministic) {
      std::printf("farm: %zu worker(s), %llu virtual cycles\n",
                  farm.workers(),
                  static_cast<unsigned long long>(virtual_cycles));
    } else {
      std::printf("farm: %zu workers, %.3f s wall, %.1f jobs/sec\n",
                  farm.workers(), wall_s, jobs_per_sec);
    }
  }
  return metrics.completed == metrics.served() && rejected == 0 ? 0 : 1;
}

/// Loads a chaos manifest: a file path, or "@synthetic:N[:seed]" for a
/// generated mixed workload.
std::vector<scaling::Job> load_chaos_jobs(const std::string& path) {
  if (path.rfind("@synthetic:", 0) == 0) {
    runtime::SyntheticSpec spec;
    const std::string rest = path.substr(std::strlen("@synthetic:"));
    const auto colon = rest.find(':');
    spec.jobs = static_cast<std::size_t>(
        std::stoull(colon == std::string::npos ? rest
                                               : rest.substr(0, colon)));
    if (colon != std::string::npos) {
      spec.seed = std::stoull(rest.substr(colon + 1));
    }
    return runtime::synthetic_jobs(spec);
  }
  return runtime::load_manifest(path);
}

int cmd_chaos(int argc, char** argv) {
  std::string path;
  runtime::FarmConfig cfg;
  cfg.deterministic = true;
  cfg.fault_tolerance.enabled = true;
  fault::FaultPlanSpec plan_spec;
  plan_spec.seed = 1;
  plan_spec.events = 16;
  bool explicit_horizon = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      plan_spec.seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      plan_spec.events = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--horizon") == 0 && i + 1 < argc) {
      plan_spec.horizon = std::stoull(argv[++i]);
      explicit_horizon = true;
    } else if (std::strcmp(argv[i], "--threaded") == 0) {
      cfg.deterministic = false;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--stalls") == 0) {
      plan_spec.w_worker_stall = 1.0;
    } else if (std::strcmp(argv[i], "--crashes") == 0) {
      plan_spec.w_worker_crash = 0.5;
    } else if (std::strcmp(argv[i], "--max-retries") == 0 && i + 1 < argc) {
      cfg.fault_tolerance.max_retries =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--backoff") == 0 && i + 1 < argc) {
      cfg.fault_tolerance.retry_backoff_ticks = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--quarantine-after") == 0 &&
               i + 1 < argc) {
      cfg.fault_tolerance.quarantine_after =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: vlsipc chaos <jobs.txt|@synthetic:N[:seed]> "
                 "[--seed S] [--events E] [--horizon H] [--threaded] "
                 "[--workers N] [--stalls] [--crashes] [--max-retries R] "
                 "[--backoff T] [--quarantine-after Q]\n");
    return 2;
  }

  const auto jobs = load_chaos_jobs(path);

  // Match the plan's target ranges to the fleet; triggers are global
  // serve-sequence numbers, so the horizon is the job count (every
  // event lands inside the run).
  plan_spec.clusters = cfg.chip.width * cfg.chip.height * cfg.chip.layers;
  plan_spec.workers = cfg.deterministic ? 1 : cfg.workers;
  if (!explicit_horizon) {
    plan_spec.horizon = std::max<std::uint64_t>(1, jobs.size());
  }
  cfg.fault_tolerance.plan = fault::random_fault_plan(plan_spec);
  const fault::FaultPlan& plan = cfg.fault_tolerance.plan;

  runtime::ChipFarm farm(cfg);
  std::size_t rejected = 0;
  for (const auto& job : jobs) {
    const auto admission = farm.submit(job);
    if (!admission.admitted) ++rejected;
  }
  farm.drain();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  const auto health = farm.health();
  farm.shutdown();

  // Survival: every admitted job must have resolved one way or another.
  const std::uint64_t resolved = metrics.served() + metrics.cancelled;
  const std::uint64_t lost =
      metrics.admitted > resolved ? metrics.admitted - resolved : 0;
  const std::uint64_t failed =
      metrics.served() - metrics.completed;

  std::ostringstream out;
  out << "{\"manifest\":\"" << json_escape(path)
      << "\",\"deterministic\":" << (cfg.deterministic ? "true" : "false")
      << ",\"seed\":" << plan.seed << ",\"plan\":{\"events\":"
      << plan.size();
  const fault::FaultKind kinds[] = {
      fault::FaultKind::kCluster,      fault::FaultKind::kObject,
      fault::FaultKind::kSwitch,       fault::FaultKind::kCsdSegment,
      fault::FaultKind::kMemoryBlock,  fault::FaultKind::kWorkerStall,
      fault::FaultKind::kWorkerCrash,
  };
  for (const auto kind : kinds) {
    out << ",\"" << fault::to_string(kind) << "\":" << plan.count(kind);
  }
  out << "},\"jobs\":{\"submitted\":" << metrics.submitted
      << ",\"admitted\":" << metrics.admitted
      << ",\"rejected\":" << metrics.rejected
      << ",\"completed\":" << metrics.completed
      << ",\"failed\":" << failed
      << ",\"cancelled\":" << metrics.cancelled << ",\"lost\":" << lost
      << "},\"healing\":{\"injected_faults\":" << metrics.injected_faults
      << ",\"retries\":" << metrics.retries
      << ",\"degraded_completed\":" << metrics.degraded_completed
      << ",\"worker_stalls\":" << metrics.worker_stalls
      << ",\"worker_crashes\":" << metrics.worker_crashes
      << ",\"quarantined_chips\":" << metrics.quarantined_chips
      << ",\"health_checks\":" << metrics.health_checks
      << ",\"health_compactions\":" << metrics.health_compactions
      << "},\"chips\":[";
  for (std::size_t i = 0; i < health.size(); ++i) {
    const auto& h = health[i];
    if (i != 0) out << ",";
    out << "{\"worker\":" << h.worker
        << ",\"total_clusters\":" << h.total_clusters
        << ",\"defective_clusters\":" << h.defective_clusters
        << ",\"free_clusters\":" << h.free_clusters
        << ",\"largest_free_run\":" << h.largest_free_run
        << ",\"chips_retired\":" << h.chips_retired;
    if (!h.last_quarantine_reason.empty()) {
      out << ",\"last_quarantine_reason\":\""
          << json_escape(h.last_quarantine_reason) << "\"";
    }
    out << "}";
  }
  out << "],\"outcomes\":[";
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& o = log[i];
    if (i != 0) out << ",";
    out << "{\"name\":\"" << json_escape(o.name) << "\",\"status\":\""
        << scaling::to_string(o.status) << "\",\"attempts\":" << o.attempts;
    if (!o.detail.empty()) {
      out << ",\"detail\":\"" << json_escape(o.detail) << "\"";
    }
    out << "}";
  }
  out << "],\"survived\":" << (lost == 0 ? "true" : "false") << "}";
  std::printf("%s\n", out.str().c_str());
  return lost == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "vlsipc — object-code toolchain for the VLSI processor\n"
                 "usage: vlsipc compile|info|run|serve ...\n");
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "compile") == 0) {
      return cmd_compile(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "info") == 0) {
      return cmd_info(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "run") == 0) {
      return cmd_run(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "serve") == 0) {
      return cmd_serve(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "chaos") == 0) {
      return cmd_chaos(argc - 2, argv + 2);
    }
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
