// vlsipc — the command-line face of the toolchain.
//
//   vlsipc compile <source.vdf> [-o out.vobj] [--optimize]
//       Compile dataflow source to object code (text format).
//   vlsipc info <file.vobj|file.vdf>
//       Print the object inventory, ports and dependency profile.
//   vlsipc run <file.vobj|file.vdf> [--in name=v1,v2,...]...
//              [--capacity C] [--expect N] [--json]
//              [--checkpoint-every CYC --checkpoint out.vsnap]
//       Configure on a fresh AP and execute; prints outputs and stats.
//       With --checkpoint-every, the run is segmented and a resumable
//       session checkpoint is (re)written every CYC executed cycles;
//       the final report is byte-identical to an uninterrupted run.
//   vlsipc snapshot <file.vobj|file.vdf> --at CYC -o out.vsnap
//              [--in name=v1,v2,...]... [--capacity C] [--expect N]
//       Run for CYC cycles, then checkpoint the session and stop.
//   vlsipc resume <file.vsnap> [--json]
//              [--checkpoint-every CYC --checkpoint out.vsnap]
//       Restore a session checkpoint and run it to completion; the
//       report covers the whole run (both halves), byte-identical to
//       one that was never interrupted.
//   vlsipc serve <jobs.txt|pack-ref> [--pack] [--workers N] [--queue D]
//              [--batch B] [--reject] [--deterministic] [--json]
//              [--dvs] [--energy-budget FJ] [--p99-guardrail TICKS]
//       Run a job manifest through the multi-chip farm; prints a
//       per-job table plus throughput and latency percentiles. --dvs
//       turns on per-chip energy metering and the DVS governor;
//       --energy-budget throttles chips toward that many femtojoules
//       per served job (docs/ENERGY.md). With --pack the positional is
//       a scenario-pack spec (or @preset:...) instead of a manifest:
//       the generated stream is submitted with its arrival ticks and
//       deadlines (docs/WORKLOADS.md).
//   vlsipc chaos <jobs.txt|@synthetic:N[:seed]> [--seed S] [--events E]
//              [--threaded] [--workers N] [--stalls] [--crashes]
//              [--max-retries R] [--backoff T] [--quarantine-after Q]
//       Run a manifest through the farm under a seeded fault plan and
//       print a JSON survival report. Exit 0 iff no job was lost
//       (every admitted job's future resolved). Deterministic by
//       default: the same seed gives a bit-identical report.
//   vlsipc hub [--listen H:P|unix:/path] [--heartbeat-timeout MS]
//              [--health-interval MS] [--window N]
//       Run the distributed farm's hub daemon: admission + routing.
//       Prints "hub listening on ADDR" (resolved port for :0), then
//       blocks until a client sends shutdown.
//   vlsipc worker --hub ADDR [--name S] [--workers N] [--batch B]
//              [--queue D] [--checkpoint-every-batches N]
//              [--heartbeat MS] [--crash-after N]
//       Run a worker daemon: one ChipFarm served over the wire. Exit
//       0 on shutdown/drain, 3 when --crash-after fault injection
//       fired, 1 when the hub connection was lost.
//   vlsipc submit <jobs.txt> --hub ADDR [--json] [--drain-worker ID]
//              [--drain-after K] [--metrics] [--shutdown]
//       Submit a manifest to a running hub and wait for every result.
//       --drain-worker asks the hub to checkpoint-migrate worker ID
//       (after K results have arrived, default 0). Exit 0 iff every
//       job came back completed. See docs/DISTRIBUTED.md.
//   vlsipc workload <pack.spec|@preset:NAME[:seed[:jobs]]>
//              [--mode serve|replay] [--hub ADDR] [--seed S] [--jobs N]
//              [--batch B] [--workers N] [--threaded] [--window N]
//              [--report out.json] [--list-kernels] [--json]
//       Expand a scenario pack into its deterministic job stream, serve
//       it (locally, or through a hub with --hub), and print the
//       schema-versioned pack report — per-kernel latency/energy
//       percentiles and outcome counts, byte-identical per seed in the
//       default deterministic mode. --mode replay round-trips the
//       stream through the snapshot codec first and must produce the
//       same bytes. See docs/WORKLOADS.md.
//
// run, serve and chaos additionally accept:
//   --obs <out.json>           write an ObsSnapshot (run info + every
//                              layer's metrics + trace summary)
//   --chrome-trace <out.trace> write the session's structured events as
//                              chrome://tracing JSON (open in Perfetto)
// See docs/OBSERVABILITY.md for the schema.
//
// Sources (.vdf) are compiled on the fly; object files (.vobj) load
// directly. Everything except farm wall-clock latency is deterministic
// (pass --deterministic to serve for bit-identical outcomes too).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vlsip.hpp"

namespace {

using namespace vlsip;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw PreconditionError("cannot open file: " + path);
  }
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// A compile failure surfaced through the non-throwing lang::try_compile
/// facade, rethrown at the CLI boundary so main() can add the offending
/// line number to the typed JSON error object.
struct CompileFailed : std::runtime_error {
  CompileFailed(std::string path_in, lang::CompileError error_in)
      : std::runtime_error(path_in + ": " + error_in.message),
        path(std::move(path_in)),
        line(error_in.line) {}
  std::string path;
  int line;
};

arch::Program load_program(const std::string& path) {
  const auto text = read_file(path);
  if (ends_with(path, ".vobj") ||
      text.rfind("vlsip-object-code", 0) == 0) {
    return arch::from_text(text);
  }
  lang::CompileError error;
  auto program = lang::try_compile(text, &error);
  if (!program.ok()) throw CompileFailed(path, std::move(error));
  return std::move(*program);
}

// --- shared option parsing --------------------------------------------------
//
// Every verb parses its flags through one OptionParser: registered
// flags fill typed outputs, the first bare token fills the positional,
// and anything unrecognised produces the same typed JSON error object
// main() emits for runtime failures ({"schema_version", "error":
// {"code": "invalid_argument", "message"}} when --json is on the
// command line) plus the usage line on stderr, exit code 2. The verbs
// used to hand-roll ten copies of this loop, and most of them silently
// swallowed an unknown "--flag" as the positional argument.

class OptionParser {
 public:
  OptionParser(std::string verb, std::string usage)
      : verb_(std::move(verb)), usage_(std::move(usage)) {}

  OptionParser& flag(const char* name, bool* out) {
    opts_.push_back({name, Kind::kBool, out});
    return *this;
  }
  OptionParser& value(const char* name, std::string* out) {
    opts_.push_back({name, Kind::kString, out});
    return *this;
  }
  OptionParser& value(const char* name, int* out) {
    opts_.push_back({name, Kind::kInt, out});
    return *this;
  }
  /// std::size_t and std::uint64_t are the same type on LP64, so one
  /// overload covers both counters and tick values.
  OptionParser& value(const char* name, std::uint64_t* out) {
    opts_.push_back({name, Kind::kU64, out});
    return *this;
  }
  /// A value flag that may appear many times (run's --in feeds).
  OptionParser& repeated(const char* name, std::vector<std::string>* out) {
    opts_.push_back({name, Kind::kRepeated, out});
    return *this;
  }
  /// Accept one bare (non-flag) token.
  OptionParser& positional(std::string* out) {
    positional_ = out;
    return *this;
  }

  /// True on success. On any problem prints the typed error and usage
  /// and sets *exit_code to 2.
  bool parse(int argc, char** argv, int* exit_code) {
    json_ = false;
    for (int i = 0; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) json_ = true;
    }
    for (int i = 0; i < argc; ++i) {
      const std::string tok = argv[i];
      const Opt* opt = find(tok);
      if (opt == nullptr) {
        if (tok.size() > 1 && tok[0] == '-') {
          *exit_code = error("unknown flag '" + tok + "'");
          return false;
        }
        if (positional_ != nullptr && positional_->empty()) {
          *positional_ = tok;
          continue;
        }
        *exit_code = error("unexpected argument '" + tok + "'");
        return false;
      }
      if (opt->kind == Kind::kBool) {
        *static_cast<bool*>(opt->out) = true;
        continue;
      }
      if (i + 1 >= argc) {
        *exit_code = error("flag '" + tok + "' needs a value");
        return false;
      }
      const std::string value = argv[++i];
      if (opt->kind == Kind::kString) {
        *static_cast<std::string*>(opt->out) = value;
        continue;
      }
      if (opt->kind == Kind::kRepeated) {
        static_cast<std::vector<std::string>*>(opt->out)->push_back(value);
        continue;
      }
      std::uint64_t n = 0;
      if (!parse_integer(value, &n)) {
        *exit_code = error("flag '" + tok + "' needs an integer, got '" +
                           value + "'");
        return false;
      }
      switch (opt->kind) {
        case Kind::kInt:
          *static_cast<int*>(opt->out) = static_cast<int>(n);
          break;
        case Kind::kU64:
          *static_cast<std::uint64_t*>(opt->out) = n;
          break;
        default:
          break;
      }
    }
    return true;
  }

  /// For post-parse validation ("missing <jobs.txt>", "--at is
  /// required"): same typed error + usage, returns 2.
  int error(const std::string& message) const {
    if (json_) {
      std::ostringstream out;
      obs::JsonWriter w(out);
      w.begin_object();
      w.field("schema_version", obs::kJsonSchemaVersion);
      w.key("error");
      w.begin_object();
      w.field("code", status_code_name(StatusCode::kInvalidArgument));
      w.field("message", verb_ + ": " + message);
      w.end_object();
      w.end_object();
      std::printf("%s\n", out.str().c_str());
    }
    std::fprintf(stderr, "error: %s: %s\n", verb_.c_str(), message.c_str());
    std::fprintf(stderr, "%s\n", usage_.c_str());
    return 2;
  }

 private:
  enum class Kind { kBool, kString, kInt, kU64, kRepeated };
  struct Opt {
    std::string name;
    Kind kind;
    void* out;
  };

  static bool parse_integer(const std::string& s, std::uint64_t* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size()) return false;
    *out = static_cast<std::uint64_t>(v);
    return true;
  }

  const Opt* find(const std::string& name) const {
    for (const auto& opt : opts_) {
      if (opt.name == name) return &opt;
    }
    return nullptr;
  }

  std::string verb_;
  std::string usage_;
  std::vector<Opt> opts_;
  std::string* positional_ = nullptr;
  bool json_ = false;
};

/// Parses repeated "name=v1,v2,..." --in specs (run/snapshot feeds).
bool parse_feeds(
    const std::vector<std::string>& specs,
    std::vector<std::pair<std::string, std::vector<std::int64_t>>>* feeds,
    std::string* bad) {
  for (const std::string& spec : specs) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      *bad = spec;
      return false;
    }
    std::vector<std::int64_t> values;
    std::stringstream vs(spec.substr(eq + 1));
    std::string tok;
    while (std::getline(vs, tok, ',')) {
      try {
        values.push_back(std::stoll(tok));
      } catch (const std::exception&) {
        *bad = spec;
        return false;
      }
    }
    feeds->emplace_back(spec.substr(0, eq), std::move(values));
  }
  return true;
}

int cmd_compile(int argc, char** argv) {
  std::string out_path;
  bool optimize = false;
  std::string src_path;
  OptionParser opts("compile",
                    "usage: vlsipc compile <source.vdf> [-o out] "
                    "[--optimize]");
  opts.value("-o", &out_path)
      .flag("--optimize", &optimize)
      .positional(&src_path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (src_path.empty()) return opts.error("missing <source.vdf>");
  lang::CompileError compile_error;
  auto compiled = lang::try_compile(read_file(src_path), &compile_error);
  if (!compiled.ok()) throw CompileFailed(src_path, std::move(compile_error));
  auto program = std::move(*compiled);
  if (optimize) {
    arch::OptimizeReport report;
    program.stream = arch::optimize_stream_order(program.stream, &report);
    std::fprintf(stderr,
                 "optimized: mean dependency distance %.2f -> %.2f\n",
                 report.original_mean_distance,
                 report.optimized_mean_distance);
  }
  const auto text = arch::to_text(program);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    out << text;
    std::fprintf(stderr, "wrote %s (%zu objects, %zu elements)\n",
                 out_path.c_str(), program.object_count(),
                 program.stream.size());
  }
  return 0;
}

int cmd_info(int argc, char** argv) {
  std::string path;
  OptionParser opts("info", "usage: vlsipc info <file>");
  opts.positional(&path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (path.empty()) return opts.error("missing <file>");
  const auto program = load_program(path);
  const auto problems = arch::validate_program(program);
  for (const auto& p : problems) {
    std::printf("INVALID: %s\n", p.c_str());
  }
  std::printf("objects: %zu, stream elements: %zu%s\n",
              program.object_count(), program.stream.size(),
              problems.empty() ? " (valid)" : "");
  for (const auto& [name, id] : program.inputs) {
    std::printf("input  %-12s -> object %u\n", name.c_str(), id);
  }
  for (const auto& [name, id] : program.outputs) {
    std::printf("output %-12s -> object %u\n", name.c_str(), id);
  }
  const auto profile = arch::analyze_dependencies(program.stream);
  std::printf("dependency profile: working set %zu, max distance %zu, "
              "mean distance %.2f, cold misses %zu\n",
              profile.distinct, profile.max_distance,
              profile.mean_distance, profile.cold_misses);
  std::printf("minimum capacity C for streaming: %zu objects "
              "(%zu clusters of 16)\n",
              program.object_count(),
              (program.object_count() + 15) / 16);
  return 0;
}

// All JSON emission goes through obs::JsonWriter — one escaping and
// comma-placement implementation shared with the snapshot exporters
// (the verbs used to hand-roll three separate copies of it). Every
// document opens with "schema_version" (obs::kJsonSchemaVersion; see
// docs/OBSERVABILITY.md for the bump rule).

// --- checkpoint sessions --------------------------------------------------
//
// A .vsnap session file is a snapshot::Snapshot holding "vlsipc.session"
// metadata (program, budgets, stats accumulated over finished segments)
// followed by the AP's own checkpoint sections. `run --checkpoint-every`
// rewrites it each segment; `snapshot` stops after one segment; `resume`
// restores it and keeps going.

struct RunSession {
  /// Original program path — display name in reports, so a resumed
  /// run's report matches the uninterrupted one byte for byte.
  std::string program_path;
  arch::Program program;
  int capacity = 64;
  std::size_t expect = 1;
  std::uint64_t remaining_cycles = 1u << 24;
  /// From the original configure() call.
  ap::ConfigStats config_stats;
  /// Execution stats accumulated over finished segments.
  ap::ExecStats exec;
};

/// Folds one segment's stats into the session totals: counters add,
/// terminal state (completed/deadlocked/blocked_report) is the last
/// segment's — exactly what one uninterrupted run() would have
/// reported.
void accumulate_exec_stats(ap::ExecStats& total, const ap::ExecStats& seg) {
  total.cycles += seg.cycles;
  total.firings += seg.firings;
  total.tokens_moved += seg.tokens_moved;
  total.int_ops += seg.int_ops;
  total.float_ops += seg.float_ops;
  total.mem_ops += seg.mem_ops;
  total.transport_ops += seg.transport_ops;
  total.faults += seg.faults;
  total.fault_cycles += seg.fault_cycles;
  total.release_tokens += seg.release_tokens;
  total.idle_cycles += seg.idle_cycles;
  total.wakes += seg.wakes;
  total.quiescence_skips += seg.quiescence_skips;
  total.completed = seg.completed;
  total.deadlocked = seg.deadlocked;
  total.blocked_report = seg.blocked_report;
}

void write_session(const std::string& path, const RunSession& session,
                   const ap::AdaptiveProcessor& ap) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.section("vlsipc.session");
  w.str(session.program_path);
  w.i32(session.capacity);
  arch::save_program(w, session.program);
  w.u64(session.expect);
  w.u64(session.remaining_cycles);
  ap::save_config_stats(w, session.config_stats);
  ap::save_exec_stats(w, session.exec);
  ap.save(w);
  snapshot::write_file(snap, path);
}

/// Reads the session metadata, leaving `r` positioned at the AP
/// checkpoint (restore into an AP built with make_session_config).
RunSession read_session_header(snapshot::Reader& r) {
  r.section("vlsipc.session");
  RunSession session;
  session.program_path = r.str();
  session.capacity = r.i32();
  session.program = arch::restore_program(r);
  session.expect = static_cast<std::size_t>(r.u64());
  session.remaining_cycles = r.u64();
  session.config_stats = ap::restore_config_stats(r);
  session.exec = ap::restore_exec_stats(r);
  return session;
}

/// The AP shape cmd_run builds — resume must rebuild it identically
/// for the checkpoint's geometry fingerprint to match.
ap::ApConfig make_session_config(int capacity, bool enable_trace) {
  ap::ApConfig cfg;
  cfg.capacity = capacity;
  cfg.memory_blocks = 16;
  cfg.enable_trace = enable_trace;
  return cfg;
}

/// Runs the session to completion (or budget exhaustion), one segment
/// per checkpoint when checkpointing is on. Returns when a terminal
/// state is reached; session.exec then holds the whole-run stats.
void run_session(ap::AdaptiveProcessor& ap, RunSession& session,
                 std::uint64_t checkpoint_every,
                 const std::string& checkpoint_path) {
  for (;;) {
    const std::uint64_t budget =
        checkpoint_every == 0
            ? session.remaining_cycles
            : std::min(session.remaining_cycles, checkpoint_every);
    const auto seg = ap.run(session.expect, budget);
    accumulate_exec_stats(session.exec, seg);
    session.remaining_cycles -=
        std::min(session.remaining_cycles, seg.cycles);
    if (!checkpoint_path.empty()) {
      write_session(checkpoint_path, session, ap);
    }
    if (seg.completed || seg.deadlocked || session.remaining_cycles == 0) {
      return;
    }
    // A segment that consumed no cycles can never make progress in the
    // next one either (quiesced but starved); stop instead of spinning.
    if (seg.cycles == 0) return;
  }
}

/// The run/resume report (shared so the two are byte-identical).
/// Returns the process exit code.
int print_run_report(const RunSession& session,
                     const ap::AdaptiveProcessor& ap, bool json,
                     int obs_rc) {
  const ap::ExecStats& exec = session.exec;
  const ap::ConfigStats& config_stats = session.config_stats;
  const char* status = exec.completed
                           ? "completed"
                           : (exec.deadlocked ? "deadlocked" : "timeout");
  if (json) {
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", obs::kJsonSchemaVersion);
    w.field("program", session.program_path);
    w.field("status", status);
    w.key("configuration");
    w.begin_object();
    w.field("cycles", config_stats.cycles);
    w.field("object_requests", config_stats.object_requests);
    w.field("hit_rate", config_stats.hit_rate());
    w.end_object();
    w.key("execution");
    w.begin_object();
    w.field("cycles", exec.cycles);
    w.field("ops", exec.total_ops());
    w.field("int_ops", exec.int_ops);
    w.field("float_ops", exec.float_ops);
    w.field("mem_ops", exec.mem_ops);
    w.field("faults", exec.faults);
    w.end_object();
    w.key("outputs");
    w.begin_object();
    for (const auto& [name, id] : session.program.outputs) {
      (void)id;
      w.key(name);
      w.begin_array();
      for (const auto& word : ap.output(name)) w.value(word.i);
      w.end_array();
    }
    w.end_object();
    w.end_object();
    std::printf("%s\n", out.str().c_str());
    return exec.completed ? obs_rc : 1;
  }

  std::printf("configuration: %llu cycles (%llu requests, %.0f%% hits)\n",
              static_cast<unsigned long long>(config_stats.cycles),
              static_cast<unsigned long long>(config_stats.object_requests),
              100.0 * config_stats.hit_rate());
  std::printf("execution: %llu cycles, %llu ops (%llu int / %llu fp / "
              "%llu mem), faults %llu, %s\n",
              static_cast<unsigned long long>(exec.cycles),
              static_cast<unsigned long long>(exec.total_ops()),
              static_cast<unsigned long long>(exec.int_ops),
              static_cast<unsigned long long>(exec.float_ops),
              static_cast<unsigned long long>(exec.mem_ops),
              static_cast<unsigned long long>(exec.faults),
              exec.completed ? "completed"
                             : (exec.deadlocked ? "DEADLOCKED" : "timeout"));
  for (const auto& line : exec.blocked_report) {
    std::printf("  blocked: %s\n", line.c_str());
  }
  for (const auto& [name, id] : session.program.outputs) {
    (void)id;
    std::printf("%s =", name.c_str());
    for (const auto& w : ap.output(name)) {
      std::printf(" %lld", static_cast<long long>(w.i));
    }
    std::printf("\n");
  }
  return exec.completed ? obs_rc : 1;
}

/// Writes the --obs and --chrome-trace files, if requested. Returns 0
/// on success (including "nothing requested"), 1 on an unwritable path.
int write_obs_outputs(const obs::ObsSnapshot& snapshot,
                      const std::string& obs_path,
                      const std::string& trace_path) {
  int rc = 0;
  if (!obs_path.empty()) {
    if (snapshot.write_json_file(obs_path)) {
      std::fprintf(stderr, "wrote obs snapshot: %s\n", obs_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write obs snapshot: %s\n",
                   obs_path.c_str());
      rc = 1;
    }
  }
  if (!trace_path.empty()) {
    if (snapshot.write_chrome_trace_file(trace_path)) {
      std::fprintf(stderr, "wrote chrome trace: %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write chrome trace: %s\n",
                   trace_path.c_str());
      rc = 1;
    }
  }
  return rc;
}

int cmd_run(int argc, char** argv) {
  std::string path;
  int capacity = 64;
  std::size_t expect = 1;
  bool json = false;
  std::string obs_path;
  std::string trace_path;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
  std::vector<std::string> in_specs;
  OptionParser opts("run",
                    "usage: vlsipc run <file> [--in name=v,...] "
                    "[--capacity C] [--expect N] [--json] "
                    "[--checkpoint-every CYC --checkpoint out.vsnap] "
                    "[--obs out.json] [--chrome-trace out.trace]");
  opts.repeated("--in", &in_specs)
      .value("--capacity", &capacity)
      .value("--expect", &expect)
      .flag("--json", &json)
      .value("--obs", &obs_path)
      .value("--chrome-trace", &trace_path)
      .value("--checkpoint-every", &checkpoint_every)
      .value("--checkpoint", &checkpoint_path)
      .positional(&path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (path.empty()) return opts.error("missing <file>");
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    return opts.error("--checkpoint-every needs --checkpoint <out.vsnap>");
  }
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> feeds;
  std::string bad_spec;
  if (!parse_feeds(in_specs, &feeds, &bad_spec)) {
    return opts.error("bad --in spec: " + bad_spec);
  }

  RunSession session;
  session.program_path = path;
  session.program = load_program(path);
  session.capacity = capacity;
  session.expect = expect;

  // The exporters read the AP's own trace sink; only pay for recording
  // when a snapshot was actually requested.
  const bool want_obs = !obs_path.empty() || !trace_path.empty();
  ap::AdaptiveProcessor ap(make_session_config(capacity, want_obs));
  session.config_stats = ap.configure(session.program);
  for (const auto& [name, values] : feeds) {
    for (const auto v : values) ap.feed(name, arch::make_word_i(v));
  }
  run_session(ap, session, checkpoint_every, checkpoint_path);

  int obs_rc = 0;
  if (want_obs) {
    obs::ObsSnapshot snapshot;
    snapshot.add_info("verb", "run");
    snapshot.add_info("program", path);
    snapshot.add_info("status",
                      session.exec.completed
                          ? "completed"
                          : (session.exec.deadlocked ? "deadlocked"
                                                     : "timeout"));
    ap.export_obs(snapshot.metrics);
    snapshot.trace = &ap.trace();
    obs_rc = write_obs_outputs(snapshot, obs_path, trace_path);
  }
  return print_run_report(session, ap, json, obs_rc);
}

int cmd_snapshot(int argc, char** argv) {
  std::string path;
  std::string out_path;
  int capacity = 64;
  std::size_t expect = 1;
  std::uint64_t at = 0;
  std::vector<std::string> in_specs;
  OptionParser opts("snapshot",
                    "usage: vlsipc snapshot <file> --at CYC -o out.vsnap "
                    "[--in name=v,...] [--capacity C] [--expect N]");
  opts.repeated("--in", &in_specs)
      .value("--capacity", &capacity)
      .value("--expect", &expect)
      .value("--at", &at)
      .value("-o", &out_path)
      .positional(&path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (path.empty()) return opts.error("missing <file>");
  if (out_path.empty()) return opts.error("-o <out.vsnap> is required");
  if (at == 0) return opts.error("--at CYC is required");
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> feeds;
  std::string bad_spec;
  if (!parse_feeds(in_specs, &feeds, &bad_spec)) {
    return opts.error("bad --in spec: " + bad_spec);
  }

  RunSession session;
  session.program_path = path;
  session.program = load_program(path);
  session.capacity = capacity;
  session.expect = expect;

  ap::AdaptiveProcessor ap(make_session_config(capacity, false));
  session.config_stats = ap.configure(session.program);
  for (const auto& [name, values] : feeds) {
    for (const auto v : values) ap.feed(name, arch::make_word_i(v));
  }
  const auto seg = ap.run(expect, std::min<std::uint64_t>(
                                      at, session.remaining_cycles));
  accumulate_exec_stats(session.exec, seg);
  session.remaining_cycles -= std::min(session.remaining_cycles, seg.cycles);
  write_session(out_path, session, ap);
  std::fprintf(stderr,
               "checkpointed %s at cycle %llu -> %s (%s, %llu cycles of "
               "budget left)\n",
               path.c_str(), static_cast<unsigned long long>(seg.cycles),
               out_path.c_str(),
               seg.completed ? "completed"
                             : (seg.deadlocked ? "deadlocked" : "running"),
               static_cast<unsigned long long>(session.remaining_cycles));
  return 0;
}

int cmd_resume(int argc, char** argv) {
  std::string path;
  bool json = false;
  std::string obs_path;
  std::string trace_path;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
  OptionParser opts("resume",
                    "usage: vlsipc resume <file.vsnap> [--json] "
                    "[--checkpoint-every CYC --checkpoint out.vsnap] "
                    "[--obs out.json] [--chrome-trace out.trace]");
  opts.flag("--json", &json)
      .value("--obs", &obs_path)
      .value("--chrome-trace", &trace_path)
      .value("--checkpoint-every", &checkpoint_every)
      .value("--checkpoint", &checkpoint_path)
      .positional(&path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (path.empty()) return opts.error("missing <file.vsnap>");
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    return opts.error("--checkpoint-every needs --checkpoint <out.vsnap>");
  }

  const auto snap = snapshot::read_file(path);
  snapshot::Reader r(snap);
  RunSession session = read_session_header(r);

  const bool want_obs = !obs_path.empty() || !trace_path.empty();
  ap::AdaptiveProcessor ap(make_session_config(session.capacity, want_obs));
  ap.restore(r);
  run_session(ap, session, checkpoint_every, checkpoint_path);

  int obs_rc = 0;
  if (want_obs) {
    // The obs snapshot covers only the resumed half: trace events and
    // layer metrics are host-side observability, deliberately outside
    // the checkpoint (see docs/SNAPSHOT.md).
    obs::ObsSnapshot snapshot;
    snapshot.add_info("verb", "resume");
    snapshot.add_info("program", session.program_path);
    snapshot.add_info("checkpoint", path);
    snapshot.add_info("status",
                      session.exec.completed
                          ? "completed"
                          : (session.exec.deadlocked ? "deadlocked"
                                                     : "timeout"));
    ap.export_obs(snapshot.metrics);
    snapshot.trace = &ap.trace();
    obs_rc = write_obs_outputs(snapshot, obs_path, trace_path);
  }
  return print_run_report(session, ap, json, obs_rc);
}

void print_outcome_json(obs::JsonWriter& w, const scaling::JobOutcome& o) {
  w.begin_object();
  w.field("name", o.name);
  w.field("id", o.id);
  w.field("status", scaling::to_string(o.status));
  if (!o.detail.empty()) {
    w.field("detail", o.detail);
  }
  w.field("clusters", o.clusters_used);
  w.field("config_cycles", o.config_cycles);
  w.field("exec_cycles", o.exec_cycles);
  w.field("faults", o.faults);
  w.field("queued_at", o.queued_at);
  w.field("started_at", o.started_at);
  w.field("finished_at", o.finished_at);
  // Presence-gated: energy-off runs bill 0 fJ and keep their JSON
  // byte-identical to pre-energy builds.
  if (o.energy_fj > 0) {
    w.field("energy_fj", o.energy_fj);
  }
  w.key("outputs");
  w.begin_object();
  for (const auto& [name, words] : o.outputs) {
    w.key(name);
    w.begin_array();
    for (const auto& word : words) w.value(word.i);
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

int cmd_serve(int argc, char** argv) {
  std::string path;
  runtime::FarmConfig cfg;
  cfg.block_when_full = true;  // batch manifests throttle by default
  bool json = false;
  bool verify_chain = false;
  bool reject = false;
  bool pack_mode = false;
  std::uint64_t energy_budget = 0;
  std::string obs_path;
  std::string trace_path;
  OptionParser opts(
      "serve",
      "usage: vlsipc serve <jobs.txt|pack-ref> [--pack] [--workers N] "
      "[--queue D] [--batch B] [--reject] [--deterministic] "
      "[--checkpoint-every-batches N] [--incremental-checkpoints] "
      "[--keyframe-every N] [--chain-max-links N] [--verify-chain] "
      "[--dvs] [--energy-budget FJ] [--p99-guardrail TICKS] "
      "[--json] [--obs out.json] [--chrome-trace out.trace]");
  opts.value("--workers", &cfg.workers)
      .value("--queue", &cfg.queue_capacity)
      .value("--batch", &cfg.batch.max_jobs)
      .flag("--reject", &reject)
      .flag("--deterministic", &cfg.deterministic)
      .value("--checkpoint-every-batches", &cfg.checkpoint_every_batches)
      .flag("--incremental-checkpoints", &cfg.incremental_checkpoints)
      .value("--keyframe-every", &cfg.checkpoint_keyframe_every)
      .value("--chain-max-links", &cfg.checkpoint_chain_max_links)
      .flag("--dvs", &cfg.dvs.enabled)
      .value("--energy-budget", &energy_budget)
      .value("--p99-guardrail", &cfg.dvs.p99_guardrail_ticks)
      .flag("--verify-chain", &verify_chain)
      .flag("--pack", &pack_mode)
      .flag("--json", &json)
      .value("--obs", &obs_path)
      .value("--chrome-trace", &trace_path)
      .positional(&path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (path.empty()) {
    return opts.error(pack_mode ? "missing <pack-ref>" : "missing <jobs.txt>");
  }
  if (reject) cfg.block_when_full = false;
  if (energy_budget > 0) {
    cfg.dvs.enabled = true;
    cfg.dvs.energy_budget_fj_per_job = energy_budget;
  }

  // --pack: the positional is a scenario-pack spec; expand it into the
  // deterministic job stream and carry each job's traffic timing
  // through SubmitOptions. A pack that meters energy turns the DVS
  // governor on (budget 0 = meter only) so the outcomes carry fJ.
  std::vector<scaling::Job> jobs;
  std::vector<runtime::SubmitOptions> timing;
  if (pack_mode) {
    auto pack = workload::load_pack(path);
    VLSIP_REQUIRE(pack.ok(), pack.status().to_string());
    workload::JobStream stream =
        workload::JobStreamBuilder().pack(std::move(*pack)).build();
    if (stream.pack.energy) cfg.dvs.enabled = true;
    jobs.reserve(stream.jobs.size());
    timing.reserve(stream.jobs.size());
    for (auto& timed : stream.jobs) {
      runtime::SubmitOptions so;
      so.arrival_tick = timed.arrival;
      so.deadline = timed.deadline;
      timing.push_back(so);
      jobs.push_back(std::move(timed.job));
    }
  }

  // Session-wide event sink for the snapshot exporters. Capped so a
  // large manifest cannot grow trace memory without bound; evictions
  // are visible as farm trace drops in the snapshot.
  const bool want_obs = !obs_path.empty() || !trace_path.empty();
  obs::TraceSink session_trace(want_obs);
  session_trace.set_capacity(1u << 20);
  if (want_obs) cfg.trace = &session_trace;

  if (!pack_mode) jobs = runtime::load_manifest(path);
  const auto t0 = std::chrono::steady_clock::now();
  runtime::ChipFarm farm(cfg);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto admission =
        pack_mode ? farm.submit(jobs[i], timing[i]) : farm.submit(jobs[i]);
    if (!admission.admitted) ++rejected;
  }
  farm.drain();
  if (verify_chain) {
    // End-to-end proof for the CI smoke: every worker's incremental
    // checkpoint chain, materialized, must be byte-identical to a full
    // snapshot of the same chip taken right now.
    for (std::size_t i = 0; i < farm.workers(); ++i) {
      snapshot::Snapshot full;
      std::vector<snapshot::Snapshot> chain;
      const Status s_full = farm.save_chip(i, full);
      const Status s_chain = farm.save_chip_chain(i, chain);
      if (!s_full.ok() || !s_chain.ok()) {
        std::fprintf(stderr, "error: --verify-chain save failed: %s\n",
                     (!s_full.ok() ? s_full : s_chain).to_string().c_str());
        return 1;
      }
      const auto materialized = snapshot::materialize_chain(chain);
      if (!materialized.ok()) {
        std::fprintf(stderr, "error: --verify-chain materialize failed: %s\n",
                     materialized.status().to_string().c_str());
        return 1;
      }
      if (materialized->bytes() != full.bytes()) {
        std::fprintf(stderr,
                     "error: worker %zu chain/full snapshot mismatch "
                     "(%zu vs %zu bytes)\n",
                     i, materialized->size(), full.size());
        return 1;
      }
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  obs::MetricRegistry obs_registry;
  if (want_obs) obs_registry = farm.obs_metrics();
  farm.shutdown();

  const char* unit = cfg.deterministic ? "cycles" : "us";
  const double jobs_per_sec =
      wall_s > 0.0 ? static_cast<double>(metrics.served()) / wall_s : 0.0;
  // Deterministic runs promise bit-identical output, so the footer
  // reports the virtual clock instead of wall time.
  const std::uint64_t virtual_cycles = farm.now();

  int obs_rc = 0;
  if (want_obs) {
    obs::ObsSnapshot snapshot;
    snapshot.add_info("verb", "serve");
    snapshot.add_info("manifest", path);
    snapshot.add_info("deterministic", cfg.deterministic ? "true" : "false");
    snapshot.add_info("tick_unit", unit);
    snapshot.metrics = std::move(obs_registry);
    snapshot.trace = &session_trace;
    obs_rc = write_obs_outputs(snapshot, obs_path, trace_path);
  }

  if (json) {
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", obs::kJsonSchemaVersion);
    w.field("manifest", path);
    w.field("workers", static_cast<std::uint64_t>(farm.workers()));
    w.field("deterministic", cfg.deterministic);
    w.field("tick_unit", unit);
    w.key("jobs");
    w.begin_array();
    for (const auto& o : log) print_outcome_json(w, o);
    w.end_array();
    w.key("metrics");
    w.begin_object();
    w.field("submitted", metrics.submitted);
    w.field("served", metrics.served());
    w.field("completed", metrics.completed);
    w.field("rejected", metrics.rejected);
    w.field("cancelled", metrics.cancelled);
    w.field("timed_out", metrics.timed_out);
    w.field("batches", metrics.batches);
    w.field("fuse_reuses", metrics.fuse_reuses);
    w.field("latency_p50", metrics.latency_percentile(0.50));
    w.field("latency_p95", metrics.latency_percentile(0.95));
    w.field("latency_p99", metrics.latency_percentile(0.99));
    if (cfg.dvs.enabled) {
      w.field("energy_fj", metrics.energy_fj);
      w.field("energy_fj_per_job",
              metrics.served() > 0
                  ? static_cast<double>(metrics.energy_fj) /
                        static_cast<double>(metrics.served())
                  : 0.0);
      w.field("dvs_level_changes", metrics.dvs_level_changes);
    }
    if (cfg.deterministic) {
      w.field("virtual_cycles", virtual_cycles);
    } else {
      w.field("wall_seconds", wall_s);
      w.field("jobs_per_sec", jobs_per_sec);
    }
    w.end_object();
    w.end_object();
    std::printf("%s\n", out.str().c_str());
  } else {
    AsciiTable table({"job", "status", "clusters", "config", "exec",
                      "faults", "latency(" + std::string(unit) + ")"});
    for (const auto& o : log) {
      table.add_row({o.name, scaling::to_string(o.status),
                     std::to_string(o.clusters_used),
                     std::to_string(o.config_cycles),
                     std::to_string(o.exec_cycles),
                     std::to_string(o.faults),
                     std::to_string(o.turnaround())});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s", metrics.render(unit).c_str());
    if (cfg.deterministic) {
      std::printf("farm: %zu worker(s), %llu virtual cycles\n",
                  farm.workers(),
                  static_cast<unsigned long long>(virtual_cycles));
    } else {
      std::printf("farm: %zu workers, %.3f s wall, %.1f jobs/sec\n",
                  farm.workers(), wall_s, jobs_per_sec);
    }
  }
  return metrics.completed == metrics.served() && rejected == 0 ? obs_rc
                                                                : 1;
}

/// Loads a chaos manifest: a file path, or "@synthetic:N[:seed]" for a
/// generated mixed workload.
std::vector<scaling::Job> load_chaos_jobs(const std::string& path) {
  if (path.rfind("@synthetic:", 0) == 0) {
    runtime::SyntheticSpec spec;
    const std::string rest = path.substr(std::strlen("@synthetic:"));
    const auto colon = rest.find(':');
    spec.jobs = static_cast<std::size_t>(
        std::stoull(colon == std::string::npos ? rest
                                               : rest.substr(0, colon)));
    if (colon != std::string::npos) {
      spec.seed = std::stoull(rest.substr(colon + 1));
    }
    return runtime::synthetic_jobs(spec);
  }
  return runtime::load_manifest(path);
}

int cmd_chaos(int argc, char** argv) {
  std::string path;
  runtime::FarmConfig cfg;
  cfg.deterministic = true;
  cfg.fault_tolerance.enabled = true;
  fault::FaultPlanSpec plan_spec;
  plan_spec.seed = 1;
  plan_spec.events = 16;
  std::uint64_t horizon = 0;
  bool threaded = false;
  bool stalls = false;
  bool crashes = false;
  std::string obs_path;
  std::string trace_path;
  OptionParser opts(
      "chaos",
      "usage: vlsipc chaos <jobs.txt|@synthetic:N[:seed]> "
      "[--seed S] [--events E] [--horizon H] [--threaded] "
      "[--workers N] [--stalls] [--crashes] [--max-retries R] "
      "[--backoff T] [--quarantine-after Q] "
      "[--obs out.json] [--chrome-trace out.trace]");
  opts.value("--seed", &plan_spec.seed)
      .value("--events", &plan_spec.events)
      .value("--horizon", &horizon)
      .flag("--threaded", &threaded)
      .value("--workers", &cfg.workers)
      .flag("--stalls", &stalls)
      .flag("--crashes", &crashes)
      .value("--max-retries", &cfg.fault_tolerance.max_retries)
      .value("--backoff", &cfg.fault_tolerance.retry_backoff_ticks)
      .value("--quarantine-after", &cfg.fault_tolerance.quarantine_after)
      .value("--obs", &obs_path)
      .value("--chrome-trace", &trace_path)
      .positional(&path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (path.empty()) return opts.error("missing <jobs.txt|@synthetic:...>");
  const bool explicit_horizon = horizon > 0;
  if (explicit_horizon) plan_spec.horizon = horizon;
  if (threaded) cfg.deterministic = false;
  if (stalls) plan_spec.w_worker_stall = 1.0;
  if (crashes) plan_spec.w_worker_crash = 0.5;

  const bool want_obs = !obs_path.empty() || !trace_path.empty();
  obs::TraceSink session_trace(want_obs);
  session_trace.set_capacity(1u << 20);
  if (want_obs) cfg.trace = &session_trace;

  const auto jobs = load_chaos_jobs(path);

  // Match the plan's target ranges to the fleet; triggers are global
  // serve-sequence numbers, so the horizon is the job count (every
  // event lands inside the run).
  plan_spec.clusters = cfg.chip.width * cfg.chip.height * cfg.chip.layers;
  plan_spec.workers = cfg.deterministic ? 1 : cfg.workers;
  if (!explicit_horizon) {
    plan_spec.horizon = std::max<std::uint64_t>(1, jobs.size());
  }
  cfg.fault_tolerance.plan = fault::random_fault_plan(plan_spec);
  const fault::FaultPlan& plan = cfg.fault_tolerance.plan;

  runtime::ChipFarm farm(cfg);
  std::size_t rejected = 0;
  for (const auto& job : jobs) {
    const auto admission = farm.submit(job);
    if (!admission.admitted) ++rejected;
  }
  farm.drain();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  const auto health = farm.health();
  obs::MetricRegistry obs_registry;
  if (want_obs) obs_registry = farm.obs_metrics();
  farm.shutdown();

  // Survival: every admitted job must have resolved one way or another.
  const std::uint64_t resolved = metrics.served() + metrics.cancelled;
  const std::uint64_t lost =
      metrics.admitted > resolved ? metrics.admitted - resolved : 0;
  const std::uint64_t failed =
      metrics.served() - metrics.completed;

  int obs_rc = 0;
  if (want_obs) {
    obs::ObsSnapshot snapshot;
    snapshot.add_info("verb", "chaos");
    snapshot.add_info("manifest", path);
    snapshot.add_info("seed", std::to_string(plan.seed));
    snapshot.add_info("deterministic", cfg.deterministic ? "true" : "false");
    snapshot.add_info("survived", lost == 0 ? "true" : "false");
    snapshot.metrics = std::move(obs_registry);
    snapshot.trace = &session_trace;
    obs_rc = write_obs_outputs(snapshot, obs_path, trace_path);
  }

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", obs::kJsonSchemaVersion);
  w.field("manifest", path);
  w.field("deterministic", cfg.deterministic);
  w.field("seed", plan.seed);
  w.key("plan");
  w.begin_object();
  w.field("events", static_cast<std::uint64_t>(plan.size()));
  const fault::FaultKind kinds[] = {
      fault::FaultKind::kCluster,      fault::FaultKind::kObject,
      fault::FaultKind::kSwitch,       fault::FaultKind::kCsdSegment,
      fault::FaultKind::kMemoryBlock,  fault::FaultKind::kWorkerStall,
      fault::FaultKind::kWorkerCrash,
  };
  for (const auto kind : kinds) {
    w.field(fault::to_string(kind),
            static_cast<std::uint64_t>(plan.count(kind)));
  }
  w.end_object();
  w.key("jobs");
  w.begin_object();
  w.field("submitted", metrics.submitted);
  w.field("admitted", metrics.admitted);
  w.field("rejected", metrics.rejected);
  w.field("completed", metrics.completed);
  w.field("failed", failed);
  w.field("cancelled", metrics.cancelled);
  w.field("lost", lost);
  w.end_object();
  w.key("healing");
  w.begin_object();
  w.field("injected_faults", metrics.injected_faults);
  w.field("retries", metrics.retries);
  w.field("degraded_completed", metrics.degraded_completed);
  w.field("worker_stalls", metrics.worker_stalls);
  w.field("worker_crashes", metrics.worker_crashes);
  w.field("quarantined_chips", metrics.quarantined_chips);
  w.field("health_checks", metrics.health_checks);
  w.field("health_compactions", metrics.health_compactions);
  w.end_object();
  w.key("chips");
  w.begin_array();
  for (const auto& h : health) {
    w.begin_object();
    w.field("worker", static_cast<std::uint64_t>(h.worker));
    w.field("total_clusters", static_cast<std::uint64_t>(h.total_clusters));
    w.field("defective_clusters",
            static_cast<std::uint64_t>(h.defective_clusters));
    w.field("free_clusters", static_cast<std::uint64_t>(h.free_clusters));
    w.field("largest_free_run",
            static_cast<std::uint64_t>(h.largest_free_run));
    w.field("chips_retired", static_cast<std::uint64_t>(h.chips_retired));
    if (!h.last_quarantine_reason.empty()) {
      w.field("last_quarantine_reason", h.last_quarantine_reason);
    }
    w.end_object();
  }
  w.end_array();
  w.key("outcomes");
  w.begin_array();
  for (const auto& o : log) {
    w.begin_object();
    w.field("name", o.name);
    w.field("status", scaling::to_string(o.status));
    w.field("attempts", static_cast<std::uint64_t>(o.attempts));
    if (!o.detail.empty()) {
      w.field("detail", o.detail);
    }
    w.end_object();
  }
  w.end_array();
  w.field("survived", lost == 0);
  w.end_object();
  std::printf("%s\n", out.str().c_str());
  return lost == 0 ? obs_rc : 1;
}

int cmd_hub(int argc, char** argv) {
  daemon::HubOptions hub_opts;
  OptionParser opts("hub",
                    "usage: vlsipc hub [--listen H:P|unix:/path] "
                    "[--heartbeat-timeout MS] [--health-interval MS] "
                    "[--window N]");
  opts.value("--listen", &hub_opts.listen)
      .value("--heartbeat-timeout", &hub_opts.heartbeat_timeout_ms)
      .value("--health-interval", &hub_opts.health_interval_ms)
      .value("--window", &hub_opts.assign_window);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  daemon::Hub hub(hub_opts);
  const Status started = hub.start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s: %s\n",
                 status_code_name(started.code()),
                 started.message().c_str());
    return 1;
  }
  // Scripts scrape this line for the resolved ephemeral port.
  std::printf("hub listening on %s\n", hub.address().c_str());
  std::fflush(stdout);
  hub.wait();
  hub.stop();
  std::printf("hub stopped\n");
  return 0;
}

int cmd_worker(int argc, char** argv) {
  daemon::WorkerOptions worker_opts;
  runtime::FarmConfigBuilder farm;
  // Sentinel: only forward a builder setting the flag actually set, so
  // the builder's own defaults (and validation) stay in charge.
  const std::size_t kUnset = static_cast<std::size_t>(-1);
  std::size_t workers = kUnset;
  std::size_t batch_jobs = 8;
  std::size_t queue_capacity = 64;
  std::size_t ckpt_batches = kUnset;
  std::size_t keyframe_every = kUnset;
  std::size_t chain_max_links = kUnset;
  std::uint64_t energy_budget = 0;
  std::uint64_t p99_guardrail = 0;
  bool dvs = false;
  bool incremental = false;
  OptionParser opts(
      "worker",
      "usage: vlsipc worker --hub ADDR [--name S] [--workers N] "
      "[--batch B] [--queue D] [--checkpoint-every-batches N] "
      "[--incremental-checkpoints] [--keyframe-every N] "
      "[--chain-max-links N] [--dvs] [--energy-budget FJ] "
      "[--p99-guardrail TICKS] [--heartbeat MS] [--crash-after N]");
  opts.value("--hub", &worker_opts.hub)
      .value("--name", &worker_opts.name)
      .value("--workers", &workers)
      .value("--batch", &batch_jobs)
      .value("--queue", &queue_capacity)
      .value("--checkpoint-every-batches", &ckpt_batches)
      .flag("--incremental-checkpoints", &incremental)
      .value("--keyframe-every", &keyframe_every)
      .value("--chain-max-links", &chain_max_links)
      .flag("--dvs", &dvs)
      .value("--energy-budget", &energy_budget)
      .value("--p99-guardrail", &p99_guardrail)
      .value("--heartbeat", &worker_opts.heartbeat_ms)
      .value("--crash-after", &worker_opts.crash_after_jobs);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (worker_opts.hub.empty()) return opts.error("worker needs --hub ADDR");
  if (workers != kUnset) farm.workers(workers);
  if (ckpt_batches != kUnset) farm.checkpoint_every_batches(ckpt_batches);
  if (incremental) farm.incremental_checkpoints(true);
  if (keyframe_every != kUnset) farm.checkpoint_keyframe_every(keyframe_every);
  if (chain_max_links != kUnset) {
    farm.checkpoint_chain_max_links(chain_max_links);
  }
  if (dvs) farm.raw().dvs.enabled = true;
  if (energy_budget > 0) farm.energy_budget(energy_budget);
  if (p99_guardrail > 0) farm.p99_guardrail(p99_guardrail);
  farm.batch(batch_jobs);
  farm.queue(queue_capacity, /*block_when_full=*/true);
  worker_opts.farm = farm.build();

  daemon::WorkerDaemon worker(std::move(worker_opts));
  const Status connected = worker.connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s: %s\n",
                 status_code_name(connected.code()),
                 connected.message().c_str());
    return 1;
  }
  std::printf("worker %llu serving\n",
              static_cast<unsigned long long>(worker.id()));
  std::fflush(stdout);
  const daemon::WorkerDaemon::Exit exit = worker.run();
  switch (exit) {
    case daemon::WorkerDaemon::Exit::kShutdown:
      std::printf("worker: shutdown (%llu served)\n",
                  static_cast<unsigned long long>(worker.served()));
      return 0;
    case daemon::WorkerDaemon::Exit::kDrained:
      std::printf("worker: drained, checkpoint shipped (%llu served)\n",
                  static_cast<unsigned long long>(worker.served()));
      return 0;
    case daemon::WorkerDaemon::Exit::kCrashed:
      std::fprintf(stderr, "worker: crash injection fired after %llu jobs\n",
                   static_cast<unsigned long long>(worker.served()));
      return 3;
    case daemon::WorkerDaemon::Exit::kLost:
      std::fprintf(stderr, "worker: hub connection lost\n");
      return 1;
  }
  return 1;
}

int cmd_submit(int argc, char** argv) {
  std::string path;
  net::HubClient::Options copts;
  copts.name = "vlsipc";
  bool json = false;
  bool want_metrics = false;
  bool want_shutdown = false;
  std::uint64_t drain_worker = 0;
  std::size_t drain_after = 0;
  // Manifests used to stream every job up front; a bounded in-flight
  // window is the default now so one client cannot flood the hub.
  copts.max_in_flight = 64;
  OptionParser opts("submit",
                    "usage: vlsipc submit <jobs.txt> --hub ADDR [--json] "
                    "[--window N] [--drain-worker ID] [--drain-after K] "
                    "[--metrics] [--shutdown]");
  opts.value("--hub", &copts.hub)
      .value("--window", &copts.max_in_flight)
      .flag("--json", &json)
      .value("--drain-worker", &drain_worker)
      .value("--drain-after", &drain_after)
      .flag("--metrics", &want_metrics)
      .flag("--shutdown", &want_shutdown)
      .positional(&path);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  if (path.empty()) return opts.error("missing <jobs.txt>");
  if (copts.hub.empty()) return opts.error("submit needs --hub ADDR");

  const auto jobs = runtime::load_manifest(path);
  auto client = net::HubClient::connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s: %s\n",
                 status_code_name(client.status().code()),
                 client.status().message().c_str());
    return 1;
  }
  for (const auto& job : jobs) {
    const auto seq = client->submit(job);
    if (!seq.ok()) {
      std::fprintf(stderr, "error: submit failed: %s\n",
                   seq.status().message().c_str());
      return 1;
    }
  }

  std::vector<net::JobResultMsg> results;
  const std::size_t first_wave =
      drain_worker > 0 ? std::min(drain_after, jobs.size()) : jobs.size();
  auto wave = client->collect(first_wave);
  if (!wave.ok()) {
    std::fprintf(stderr, "error: collect failed: %s\n",
                 wave.status().message().c_str());
    return 1;
  }
  results = std::move(*wave);
  if (drain_worker > 0) {
    const Status drained = client->drain_worker(drain_worker);
    if (!drained.ok()) {
      std::fprintf(stderr, "error: drain failed: %s\n",
                   drained.message().c_str());
      return 1;
    }
    auto rest = client->collect(jobs.size() - results.size());
    if (!rest.ok()) {
      std::fprintf(stderr, "error: collect failed: %s\n",
                   rest.status().message().c_str());
      return 1;
    }
    for (auto& r : *rest) results.push_back(std::move(r));
  }
  // Arrival order depends on worker interleaving; report in submit
  // order so the same manifest prints the same report.
  std::sort(results.begin(), results.end(),
            [](const net::JobResultMsg& a, const net::JobResultMsg& b) {
              return a.id < b.id;
            });

  std::string metrics_doc;
  if (want_metrics) {
    auto metrics = client->metrics_json();
    if (metrics.ok()) metrics_doc = std::move(*metrics);
  }
  if (want_shutdown) {
    (void)client->shutdown_hub();
  } else {
    client->goodbye();
  }

  std::size_t completed = 0;
  for (const auto& r : results) {
    if (r.outcome.status == scaling::JobStatus::kCompleted) ++completed;
  }
  if (json) {
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("schema_version", obs::kJsonSchemaVersion);
    w.field("verb", "submit");
    w.field("hub", copts.hub);
    w.field("manifest", path);
    w.field("submitted", static_cast<std::uint64_t>(jobs.size()));
    w.field("received", static_cast<std::uint64_t>(results.size()));
    w.field("completed", static_cast<std::uint64_t>(completed));
    w.field("lost", static_cast<std::uint64_t>(jobs.size() - results.size()));
    w.key("jobs");
    w.begin_array();
    for (const auto& r : results) print_outcome_json(w, r.outcome);
    w.end_array();
    if (!metrics_doc.empty()) {
      w.key("hub_metrics");
      w.raw(metrics_doc);
    }
    w.end_object();
    std::printf("%s\n", out.str().c_str());
  } else {
    AsciiTable table({"job", "status", "clusters", "config", "exec",
                      "attempts"});
    for (const auto& r : results) {
      const auto& o = r.outcome;
      table.add_row({o.name, scaling::to_string(o.status),
                     std::to_string(o.clusters_used),
                     std::to_string(o.config_cycles),
                     std::to_string(o.exec_cycles),
                     std::to_string(o.attempts)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("submit: %zu jobs, %zu results, %zu completed\n",
                jobs.size(), results.size(), completed);
    if (!metrics_doc.empty()) std::printf("%s\n", metrics_doc.c_str());
  }
  return results.size() == jobs.size() && completed == results.size() ? 0 : 1;
}

// --- workload ---------------------------------------------------------------

int cmd_workload(int argc, char** argv) {
  std::string ref;
  std::string mode = "serve";
  std::string report_path;
  bool json = false;
  bool list_kernels = false;
  bool threaded = false;
  std::uint64_t seed = 0;
  std::size_t jobs = 0;
  workload::RunPackOptions ropts;
  OptionParser opts(
      "workload",
      "usage: vlsipc workload <pack.spec|@preset:NAME[:seed[:jobs]]> "
      "[--mode serve|replay] [--hub ADDR] [--seed S] [--jobs N] "
      "[--batch B] [--workers N] [--threaded] [--window N] "
      "[--report out.json] [--list-kernels] [--json]");
  opts.value("--mode", &mode)
      .value("--hub", &ropts.hub)
      .value("--seed", &seed)
      .value("--jobs", &jobs)
      .value("--batch", &ropts.batch)
      .value("--workers", &ropts.workers)
      .value("--window", &ropts.max_in_flight)
      .flag("--threaded", &threaded)
      .value("--report", &report_path)
      .flag("--list-kernels", &list_kernels)
      .flag("--json", &json)
      .positional(&ref);
  int rc = 0;
  if (!opts.parse(argc, argv, &rc)) return rc;
  (void)json;  // the report is always JSON; --json makes errors JSON too

  if (list_kernels) {
    // The kernel library card: every family at a few representative
    // widths, with the resources the workload layer would pick.
    AsciiTable table({"kernel", "width", "objects", "clusters"});
    for (std::size_t k = 0; k < workload::kKernelKinds; ++k) {
      for (const int width : {2, 4, 8, 16}) {
        workload::KernelSpec spec;
        spec.kind = static_cast<workload::KernelKind>(k);
        spec.width = width;
        auto kernel = workload::build_kernel(spec);
        VLSIP_REQUIRE(kernel.ok(), kernel.status().to_string());
        table.add_row({kernel->label, std::to_string(width),
                       std::to_string(kernel->program.object_count()),
                       std::to_string(kernel->recommended_clusters)});
      }
    }
    std::printf("%s", table.render().c_str());
    return 0;
  }

  if (ref.empty()) return opts.error("missing <pack.spec|@preset:...>");
  if (mode != "serve" && mode != "replay") {
    return opts.error("--mode must be 'serve' or 'replay', got '" + mode +
                      "'");
  }
  if (mode == "replay" && !ropts.hub.empty()) {
    return opts.error("--mode replay is local-only (drop --hub)");
  }
  if (threaded) ropts.deterministic = false;

  auto pack = workload::load_pack(ref);
  VLSIP_REQUIRE(pack.ok(), pack.status().to_string());
  workload::JobStreamBuilder builder;
  builder.pack(std::move(*pack));
  if (seed != 0) builder.seed(seed);
  if (jobs != 0) builder.jobs(jobs);
  const workload::JobStream stream = builder.build();

  const auto report = mode == "replay"
                          ? workload::run_pack_replay(stream, ropts)
                          : workload::run_pack(stream, ropts);
  VLSIP_REQUIRE(report.ok(), report.status().to_string());
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << *report << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write report: %s\n",
                   report_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote report: %s\n", report_path.c_str());
  }
  std::printf("%s\n", report->c_str());
  return 0;
}

/// Classifies an escaped exception into a stable machine-readable code
/// (mirrors vlsip::StatusCode names; see docs/OBSERVABILITY.md).
const char* classify_error(const std::exception& e) {
  if (dynamic_cast<const snapshot::SnapshotError*>(&e) != nullptr) {
    return status_code_name(StatusCode::kCorruptSnapshot);
  }
  if (dynamic_cast<const CompileFailed*>(&e) != nullptr) {
    return status_code_name(StatusCode::kInvalidArgument);
  }
  if (dynamic_cast<const std::logic_error*>(&e) != nullptr) {
    return status_code_name(StatusCode::kInvalidArgument);
  }
  if (dynamic_cast<const std::ios_base::failure*>(&e) != nullptr) {
    return status_code_name(StatusCode::kIoError);
  }
  return "internal";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "vlsipc — object-code toolchain for the VLSI processor\n"
                 "usage: vlsipc compile|info|run|snapshot|resume|serve|chaos|"
                 "hub|worker|submit|workload ...\n");
    return 2;
  }
  // Verbs asked for JSON must fail in JSON too, so scripted callers
  // never have to parse stderr prose.
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  try {
    if (std::strcmp(argv[1], "compile") == 0) {
      return cmd_compile(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "info") == 0) {
      return cmd_info(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "run") == 0) {
      return cmd_run(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "snapshot") == 0) {
      return cmd_snapshot(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "resume") == 0) {
      return cmd_resume(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "serve") == 0) {
      return cmd_serve(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "chaos") == 0) {
      return cmd_chaos(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "hub") == 0) {
      return cmd_hub(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "worker") == 0) {
      return cmd_worker(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "submit") == 0) {
      return cmd_submit(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "workload") == 0) {
      return cmd_workload(argc - 2, argv + 2);
    }
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return 2;
  } catch (const std::exception& e) {
    if (json) {
      std::ostringstream out;
      obs::JsonWriter w(out);
      w.begin_object();
      w.field("schema_version", obs::kJsonSchemaVersion);
      w.key("error");
      w.begin_object();
      w.field("code", classify_error(e));
      w.field("message", std::string(e.what()));
      // Compile failures carry the offending source line (the typed
      // lang::try_compile error), so scripted callers can point at it.
      if (const auto* cf = dynamic_cast<const CompileFailed*>(&e)) {
        w.field("line", static_cast<std::uint64_t>(cf->line));
      }
      w.end_object();
      w.end_object();
      std::printf("%s\n", out.str().c_str());
    }
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
