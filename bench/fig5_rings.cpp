// Regenerates the behaviour of Figure 5: rings formed on the S-topology —
// every rectangular ring size on an 8x8 fabric, formed through the
// programmable switches and measured for hop count.
#include <cstdio>

#include "bench_util.hpp"
#include "topology/baselines.hpp"
#include "topology/region.hpp"
#include "topology/s_topology.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::topology;
  bench::banner("Figure 5 — Rings on the S-Topology",
                "Rectangular rings of every size formed by chaining "
                "clusters; the ring topology of section 5 hosted on the "
                "S-topology");

  STopologyFabric f(8, 8, ClusterSpec{});
  AsciiTable out({"Ring w x h", "Clusters", "Formed?", "Diameter [hops]",
                  "Mean hops"});
  int formed = 0, attempted = 0;
  for (int w = 2; w <= 8; w += 2) {
    for (int h = 2; h <= 8; h += 2) {
      ++attempted;
      RegionManager rm(f);
      const auto ring = rectangle_ring(f, 0, 0, w, h);
      if (ring.empty() || !rm.can_form(ring)) {
        out.add_row({std::to_string(w) + "x" + std::to_string(h), "-", "no",
                     "-", "-"});
        continue;
      }
      const auto id = rm.form(ring, /*ring=*/true);
      ++formed;
      RingTopology topo(ring.size());
      out.add_row({std::to_string(w) + "x" + std::to_string(h),
                   std::to_string(ring.size()), "yes",
                   std::to_string(topo.diameter()),
                   format_sig(topo.mean_hops(), 3)});
      rm.dissolve(id);
    }
  }
  std::printf("%s\n", out.render().c_str());
  std::printf("Formed %d/%d rectangular rings; after each dissolve the "
              "fabric returned to the all-unchained default.\n",
              formed, attempted);

  // Concurrent rings (the multi-ring arrangement of fig. 5).
  RegionManager rm(f);
  const auto r1 = rectangle_ring(f, 0, 0, 4, 4);
  const auto r2 = rectangle_ring(f, 4, 0, 4, 4);
  const auto r3 = rectangle_ring(f, 0, 4, 8, 4);
  const auto a = rm.form(r1, true);
  const auto b = rm.form(r2, true);
  const auto c = rm.form(r3, true);
  std::printf("Three disjoint rings coexist: %zu + %zu + %zu clusters, "
              "%zu chained links, %zu clusters free.\n",
              rm.region(a).cluster_count(), rm.region(b).cluster_count(),
              rm.region(c).cluster_count(), f.chained_links(),
              rm.free_clusters());
  return 0;
}
