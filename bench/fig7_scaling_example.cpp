// Regenerates Figure 7 end to end: the example program
//   if (x > y) z = x + 1; else z = y + 2;
// partitioned into four atomic blocks, each a scaled AP configured by
// wormhole routing (fig. 7 b,c), executing as a speculative pipeline
// across processors through inactive-state memory writes (fig. 7 d).
#include <cstdio>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "bench_util.hpp"
#include "core/vlsi_processor.hpp"

namespace {

using namespace vlsip;

/// Block that computes the condition: out = (x > y).
arch::Program condition_block() {
  arch::DatapathBuilder b;
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.output("cond", b.op(arch::Opcode::kCmpGt, x, y, "x>y"));
  return std::move(b).build();
}

/// Block that loads its operand from memory[0] and adds `k`.
arch::Program add_k_block(std::int64_t k) {
  arch::DatapathBuilder b;
  const auto addr = b.constant_i(0, "addr");
  const auto v = b.op(arch::Opcode::kLoad, addr, "load operand");
  b.output("r", b.op(arch::Opcode::kIAdd, v, b.constant_i(k), "add"));
  return std::move(b).build();
}

/// Join block: z = buff (reads memory[0] written by the taken arm).
arch::Program join_block() {
  arch::DatapathBuilder b;
  const auto addr = b.constant_i(0, "addr");
  b.output("z", b.op(arch::Opcode::kLoad, addr, "z=buff"));
  return std::move(b).build();
}

struct PhaseLog {
  std::string phase;
  std::uint64_t cycles;
  std::string note;
};

}  // namespace

int main() {
  bench::banner("Figure 7 — Example Processor Configuration, Routing, "
                "and Execution",
                "Four atomic blocks as scaled APs; wormhole switch "
                "programming; speculative pipelined execution via "
                "inactive-state memory writes");

  core::ChipConfig cfg;
  cfg.width = 8;
  cfg.height = 8;
  cfg.cluster = topology::ClusterSpec{4, 4, 1};
  core::VlsiProcessor chip(cfg);
  auto& mgr = chip.manager();

  std::vector<PhaseLog> log;

  // --- Configuration (fig. 7 b,c): four processors, in-order placement.
  const auto cfg_cycles0 = mgr.stats().config_cycles;
  const auto p_cond = chip.fuse(2);
  const auto p_true = chip.fuse(2);
  const auto p_false = chip.fuse(2);
  const auto p_join = chip.fuse(2);
  log.push_back({"wormhole configuration (4 processors)",
                 mgr.stats().config_cycles - cfg_cycles0,
                 std::to_string(mgr.stats().config_packets) +
                     " config packets, reservation-flag protected"});

  auto run_case = [&](std::int64_t x, std::int64_t y) {
    std::printf("--- case x=%lld y=%lld -----------------------------\n",
                static_cast<long long>(x), static_cast<long long>(y));
    // Block 1: condition.
    auto r1 = chip.run_program(
        p_cond, condition_block(),
        {{"x", {arch::make_word_i(x)}}, {"y", {arch::make_word_i(y)}}}, 1,
        100000);
    const bool taken = r1.outputs.at("cond")[0].u != 0;
    log.push_back({"P1 (if x>y) exec", r1.exec.cycles,
                   std::string("condition = ") + (taken ? "true" : "false")});

    // Hand-off: write the operand into the taken arm's memory block
    // while it is inactive, then activate it (fig. 7 d).
    const auto arm = taken ? p_true : p_false;
    const auto operand = taken ? x : y;
    const auto send1 =
        mgr.send(p_cond, arm, {static_cast<std::uint64_t>(operand)}, 0);
    log.push_back({"P1 -> arm operand write", send1,
                   taken ? "activate P2 (t=x+1)" : "activate P3 (f=y+2)"});

    auto r2 = chip.run_program(arm, add_k_block(taken ? 1 : 2), {}, 1,
                               100000);
    const auto result = r2.outputs.at("r")[0];
    log.push_back({taken ? "P2 (t=x+1) exec" : "P3 (f=y+2) exec",
                   r2.exec.cycles,
                   "result = " + std::to_string(result.i)});

    // Arm writes into the join block's buffer.
    const auto send2 = mgr.send(arm, p_join, {result.u}, 0);
    log.push_back({"arm -> P4 result write", send2, "activate P4"});

    auto r4 = chip.run_program(p_join, join_block(), {}, 1, 100000);
    log.push_back({"P4 (z=buff) exec", r4.exec.cycles,
                   "z = " + std::to_string(r4.outputs.at("z")[0].i)});
    return r4.outputs.at("z")[0].i;
  };

  const auto z1 = run_case(9, 2);   // true arm: z = 10
  const auto z2 = run_case(1, 7);   // false arm: z = 9

  AsciiTable out({"Phase", "Cycles", "Note"});
  for (const auto& e : log) {
    out.add_row({e.phase, std::to_string(e.cycles), e.note});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf("Results: z(9,2) = %lld (expected 10), z(1,7) = %lld "
              "(expected 9) — %s\n",
              static_cast<long long>(z1), static_cast<long long>(z2),
              (z1 == 10 && z2 == 9) ? "CORRECT" : "WRONG");
  std::printf("The control flow never flushes a pipeline: the untaken arm "
              "simply stays inactive, and each basic block runs isolated "
              "on its own AP (the section 1 guard property).\n");
  return 0;
}
