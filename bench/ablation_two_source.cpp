// Ablation: one-source versus two-source model (§2.6.2 evaluates the
// one-source model and leaves the two-source model open — "the
// evaluation results of a one-source model (not a two-source model)").
// Two sources per element roughly double the chains; does channel usage
// double too?
#include <cstdio>

#include "bench_util.hpp"
#include "csd/csd_simulator.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::csd;
  bench::banner("Ablation — One-Source versus Two-Source Model",
                "Peak used channels of the dynamic CSD network when each "
                "element chains one or two sources (mean over 20 seeds)");

  AsciiTable out({"N objects", "Locality", "1-source peak", "2-source peak",
                  "Ratio", "2-source <= N/2?"});
  for (std::uint32_t n : {32u, 64u, 128u, 256u}) {
    for (double loc : {0.0, 0.5, 0.9}) {
      double peak1 = 0, peak2 = 0;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        FunctionalRunConfig cfg;
        cfg.n_objects = n;
        cfg.n_channels = n;
        cfg.n_elements = n;
        cfg.locality = loc;
        cfg.seed = seed * 1234567;
        cfg.n_sources = 1;
        peak1 += run_functional_csd(cfg).peak_used_channels;
        cfg.n_sources = 2;
        peak2 += run_functional_csd(cfg).peak_used_channels;
      }
      peak1 /= 20;
      peak2 /= 20;
      out.add_row({std::to_string(n), format_sig(loc, 2),
                   format_sig(peak1, 3), format_sig(peak2, 3),
                   format_sig(peak2 / peak1, 3),
                   peak2 <= n / 2.0 ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "The second source adds less than 2x the channels: its locality "
      "offset keeps many second chains short, and short chains pack "
      "into already-used channels. The paper's N/2 provisioning margin "
      "is consumed faster, though — the open question §2.6.2 deferred, "
      "answered by simulation.\n");
  return 0;
}
