// Regenerates the behaviour of Figure 4: the S-topology, its cluster and
// the folded linear layout — verifying the fold properties and measuring
// layout statistics (Manhattan distances along the folded stack).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "topology/s_topology.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::topology;
  bench::banner("Figure 4 — S-Topology and the Folded Linear Array",
                "Serpentine fold of the stack onto the 2-D cluster grid; "
                "adjacency and Manhattan-distance statistics");

  AsciiTable out({"Grid", "Clusters", "Fold adjacent?", "Mean |stack dist| "
                  "-> Manhattan (d=1)", "Manhattan (d=8)", "Manhattan (d=N/2)"});
  for (int size : {4, 8, 16, 32}) {
    STopologyFabric f(size, size, ClusterSpec{});
    bool adjacent = true;
    for (std::size_t i = 1; i < f.cluster_count(); ++i) {
      if (!f.are_neighbors(f.serpentine_at(i - 1), f.serpentine_at(i))) {
        adjacent = false;
        break;
      }
    }
    // Manhattan distance between stack positions d apart, averaged.
    auto mean_manhattan = [&](std::size_t d) {
      RunningStats s;
      for (std::size_t i = 0; i + d < f.cluster_count(); ++i) {
        s.add(manhattan(f.coord(f.serpentine_at(i)),
                        f.coord(f.serpentine_at(i + d))));
      }
      return s.mean();
    };
    out.add_row({std::to_string(size) + "x" + std::to_string(size),
                 std::to_string(f.cluster_count()),
                 adjacent ? "yes" : "NO",
                 format_sig(mean_manhattan(1), 3),
                 format_sig(mean_manhattan(8), 3),
                 format_sig(mean_manhattan(f.cluster_count() / 2), 3)});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf("8x8 fold (fig. 4 a), serpentine order by cluster:\n");
  STopologyFabric f(8, 8, ClusterSpec{});
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      std::printf("%3zu ", f.serpentine_index(f.at({x, y, 0})));
    }
    std::printf("\n");
  }
  std::printf(
      "\nProperties (section 3.1): one replicated cluster pattern; "
      "consecutive stack positions always physically adjacent (fold "
      "adjacency column); chain/unchain switch points on every cluster "
      "boundary.\n");
  return 0;
}
