// Ablation: configuration-stream scheduling (§2.7 — "the dependency
// distance is a key for efficient processing"). The same datapath
// configured from a scattered stream versus the optimizer's reordered
// stream: hit rates and measured configuration cycles on the pipeline.
#include <cstdio>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "arch/optimizer.hpp"
#include "bench_util.hpp"

namespace {

using namespace vlsip;

arch::Program wrap(const arch::ConfigStream& stream, std::size_t objects) {
  arch::Program p;
  p.stream = stream;
  p.library.resize(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    p.library[i].id = static_cast<arch::ObjectId>(i);
    p.library[i].config.opcode = arch::Opcode::kBuff;
  }
  return p;
}

std::uint64_t config_cycles(const arch::Program& p, int capacity) {
  ap::ApConfig cfg;
  cfg.capacity = capacity;
  cfg.memory_blocks = 4;
  ap::AdaptiveProcessor ap(cfg);
  return ap.configure(p).cycles;
}

}  // namespace

int main() {
  bench::banner("Ablation — Configuration-Stream Scheduling",
                "Greedy LRU-aware reordering of the global configuration "
                "stream vs the original order; 64 objects, 192 elements");

  AsciiTable out({"Locality", "Mean dist (orig)", "Mean dist (opt)",
                  "Hit rate @C=16 (orig)", "Hit rate @C=16 (opt)",
                  "Config cyc @C=16 (orig)", "(opt)"});
  for (double loc : {0.0, 0.1, 0.3, 0.5, 0.8}) {
    const auto stream = arch::random_config_stream(64, 192, loc, 1234);
    arch::OptimizeReport report;
    const auto opt = arch::optimize_stream_order(stream, &report);
    out.add_row({format_sig(loc, 2),
                 format_sig(report.original_mean_distance, 3),
                 format_sig(report.optimized_mean_distance, 3),
                 format_sig(arch::hit_rate(stream.reference_trace(), 16), 3),
                 format_sig(arch::hit_rate(opt.reference_trace(), 16), 3),
                 std::to_string(config_cycles(wrap(stream, 64), 16)),
                 std::to_string(config_cycles(wrap(opt, 64), 16))});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "Low-locality streams gain most: clustering each chain's elements "
      "shrinks dependency distances below the capacity, converting "
      "misses (library loads + stack shifts) into hits — a compiler "
      "pass standing in for the hardware the paper deliberately leaves "
      "simple.\n");
  return 0;
}
