// Cycle-engine perf harness: measures the event-driven engine against
// the dense every-object-every-cycle reference scan and records the
// speedup RATIOS into BENCH_cycle_engine.json.
//
// Ratios — not absolute rates — are what the committed baseline stores:
// both engines run in the same process on the same host, so their
// quotient is stable across machines while cycles/sec is not. The CI
// perf-smoke job re-measures and fails when a ratio falls below its
// hard floor or regresses more than 25% against the committed baseline
// (scripts/bench_baseline --check).
//
// Scenarios:
//   executor_sparse       — one wave trickling through a 100-stage
//                           pipeline on a 256-object AP: ~1 active
//                           object per cycle, the quiescence case the
//                           activity set targets.
//   executor_sparse_1024  — the same quiescence case at Epiphany-V
//                           scale: a 1000-stage pipeline on a
//                           1024-object AP, guarding that per-cycle
//                           cost tracks activity, not object count.
//   executor_dense        — a 48-stage pipeline saturated with 64
//                           waves: every object fires every cycle, so
//                           this measures the event engine's
//                           bookkeeping overhead (must stay within
//                           tolerance of the dense scan).
//   chip_sparse           — end to end: one active AP (16 fused
//                           clusters) on a 16x16-cluster chip running
//                           a 64-stage program.
//   chip_sparse_1024      — the same single active AP on a
//                           32x32-cluster (1024-cluster) chip.
//   simd_scan             — dispatched vs forced-scalar
//                           simd::first_nonzero_word over a sparse
//                           64 KiB word buffer (only recorded on
//                           x86-SIMD builds; scalar/NEON hosts keep
//                           the committed value via --merge).
//   farm / chaos          — deterministic chip farm serving synthetic
//                           jobs, without and with fault injection +
//                           self-healing.
//   energy / dvs          — deterministic energy meter quotients (not
//                           wall-clock): jobs per microjoule at the
//                           nominal DVS level, and the joules-per-job
//                           ratio the governor wins by walking the
//                           ladder under a tight energy budget.
//   kernel_throughput     — deterministic quotient from the workload
//                           library: a fixed-seed mixed scenario pack
//                           (compiled dot/fir/gas/reduce/filter
//                           kernels, bursty arrivals, churn, deadline
//                           pressure) served on a deterministic farm;
//                           jobs per million executed cycles.
//
// Usage: cycle_engine_bench                 human-readable table
//        cycle_engine_bench --json          JSON to stdout (baseline)
//        cycle_engine_bench --check F       compare against baseline F
//        cycle_engine_bench --filter RE     only scenarios whose metric
//                                           key matches regex RE
//        cycle_engine_bench --merge F       with --json --filter: carry
//                                           unmeasured keys over from F
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/simd.hpp"
#include "core/vlsi_processor.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace vlsip;

/// Regression tolerance against the committed baseline: fail below 75%
/// of the recorded ratio (a >25% regression).
constexpr double kTolerance = 0.75;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs `once` (returning simulated work units) repeatedly for at least
/// `min_wall` seconds after one warm-up call; returns units per second.
template <typename F>
double measure_rate(F&& once, double min_wall = 0.25) {
  once();  // warm-up: page in code, fill arenas
  double units = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    units += once();
    elapsed = seconds_since(t0);
  } while (elapsed < min_wall);
  return units / elapsed;
}

/// Measures two sides of a ratio by alternating ~25 ms slices for
/// `min_wall` seconds total. Back-to-back whole-side measurement biases
/// the quotient whenever the host drifts (thermal throttling, boost
/// decay, a noisy neighbour arriving mid-scenario): the side measured
/// second sees a different machine. Interleaving samples both sides
/// under the same drift so it cancels, which is the entire premise of
/// storing machine-independent ratios.
template <typename A, typename B>
double interleaved_ratio(A&& numer_once, B&& denom_once,
                         double& numer_rate, double& denom_rate,
                         double min_wall = 0.5) {
  numer_once();  // warm-up both sides
  denom_once();
  constexpr double kSlice = 0.025;
  double nu = 0.0, ns = 0.0, du = 0.0, ds = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  do {
    auto t = std::chrono::steady_clock::now();
    do {
      du += denom_once();
    } while (seconds_since(t) < kSlice);
    ds += seconds_since(t);
    t = std::chrono::steady_clock::now();
    do {
      nu += numer_once();
    } while (seconds_since(t) < kSlice);
    ns += seconds_since(t);
  } while (seconds_since(t0) < min_wall);
  numer_rate = nu / ns;
  denom_rate = du / ds;
  return numer_rate / denom_rate;
}

/// One-AP executor workload as a reusable runner (state lives in the
/// closure so interleaved slices continue the same simulation). Each
/// call feeds one batch of waves, runs to completion and returns cycles
/// simulated. Sparse: one wave in flight (activity ~1 object among the
/// residents). Dense: 64 waves saturate every stage. The object space
/// is sized so the whole datapath is resident — fault churn is a
/// different scenario (the chaos farm covers it), not what this pair
/// isolates.
auto make_executor_once(bool event_driven, bool dense_workload,
                        int capacity = 256, int stages = 0) {
  ap::ApConfig cfg;
  cfg.capacity = capacity;
  cfg.memory_blocks = 8;
  cfg.exec.event_driven = event_driven;
  auto ap = std::make_shared<ap::AdaptiveProcessor>(cfg);
  if (stages == 0) stages = dense_workload ? 48 : 100;
  ap->configure(arch::linear_pipeline_program(stages));
  const int waves = dense_workload ? 64 : 1;
  return [ap, waves, expected = std::make_shared<std::uint64_t>(0)] {
    for (int w = 0; w < waves; ++w) ap->feed("in", arch::make_word_i(w));
    *expected += static_cast<std::uint64_t>(waves);
    const auto r = ap->run(*expected, 1u << 22);
    return static_cast<double>(r.cycles);
  };
}

/// Chip-level sparse execution: one active AP (16 fused clusters) on a
/// side x side cluster fabric, configured once with a 64-stage
/// pipeline, then fed one wave per call — the "1 active AP on a big
/// chip" quiescence case. Configuration cost stays outside the runner
/// (BM_PipelineConfigure guards configure).
auto make_chip_once(bool event_driven, int side = 16) {
  core::ChipConfig cc;
  cc.width = side;
  cc.height = side;
  cc.scaling.ap_template.exec.event_driven = event_driven;
  auto chip = std::make_shared<core::VlsiProcessor>(cc);
  const auto proc = chip->fuse(16);
  ap::AdaptiveProcessor* ap = &chip->manager().processor(proc);
  ap->configure(arch::linear_pipeline_program(64));
  chip->activate(proc);
  return [chip, ap, expected = std::make_shared<std::uint64_t>(0)] {
    ap->feed("in", arch::make_word_i(7));
    const auto r = ap->run(++*expected, 1u << 22);
    return static_cast<double>(r.cycles);
  };
}

/// Deterministic chip farm serving a fixed synthetic manifest; each
/// call builds a farm, serves every job and returns jobs served. With
/// `chaos` a fault plan is replayed and self-healing is on.
auto make_farm_once(bool event_driven, bool chaos) {
  runtime::SyntheticSpec spec;
  spec.jobs = 32;
  spec.seed = 11;
  auto jobs = std::make_shared<const std::vector<scaling::Job>>(
      runtime::synthetic_jobs(spec));
  fault::FaultPlan plan;
  if (chaos) {
    fault::FaultPlanSpec fs;
    fs.seed = 5;
    fs.events = 16;
    fs.horizon = spec.jobs;
    plan = fault::random_fault_plan(fs);
  }
  return [jobs, event_driven, chaos, plan] {
    runtime::FarmConfig cfg;
    cfg.deterministic = true;
    cfg.keep_outcome_log = false;
    cfg.chip.scaling.ap_template.exec.event_driven = event_driven;
    if (chaos) {
      cfg.fault_tolerance.enabled = true;
      cfg.fault_tolerance.plan = plan;
    }
    runtime::ChipFarm farm(cfg);
    for (const auto& job : *jobs) (void)farm.submit(job);
    farm.drain();
    const auto served = farm.metrics().served();
    farm.shutdown();
    return static_cast<double>(served);
  };
}

/// Words scanned per call by simd::first_nonzero_word over a sparse
/// 64 KiB-word buffer (one hit, at the end — the worst case for the
/// scan and the common case for a quiescent summary level). The same
/// binary measures both sides via the runtime force-scalar switch, so
/// the quotient cancels the host out exactly like the engine ratios.
auto make_scan_once(bool force_scalar) {
  auto words = std::make_shared<std::vector<std::uint64_t>>(
      std::size_t{1} << 16, 0);
  words->back() = 1;
  return [words, force_scalar] {
    simd::set_force_scalar(force_scalar);
    if (simd::first_nonzero_word(words->data(), words->size()) !=
        words->size() - 1) {
      std::abort();  // scan broke; the ratio would be meaningless
    }
    simd::set_force_scalar(false);
    return static_cast<double>(words->size());
  };
}

/// Serves the synthetic manifest once on a checkpoint-every-batch farm
/// and returns the round's farm metrics. `incremental` flips the delta
/// encoder; everything else is identical, so full-vs-incremental
/// quotients isolate the encoding.
obs::FarmMetrics checkpoint_farm_round(bool incremental,
                                       const std::vector<scaling::Job>& jobs) {
  runtime::FarmConfig cfg;
  cfg.deterministic = true;
  cfg.keep_outcome_log = false;
  cfg.checkpoint_every_batches = 1;
  cfg.incremental_checkpoints = incremental;
  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) (void)farm.submit(job);
  farm.drain();
  auto metrics = farm.metrics();
  farm.shutdown();
  return metrics;
}

/// Serves the synthetic manifest once on an energy-metered DVS farm
/// and returns mean femtojoules billed per served job. `budget_fj` = 0
/// parks the governor at the nominal ladder level; a tight budget
/// walks it down one level per batch until the ladder floors out.
/// Deterministic farms make the meter byte-identical per seed, so the
/// quotient carries no timing noise at all.
double energy_fj_per_job_round(std::uint64_t budget_fj,
                               const std::vector<scaling::Job>& jobs) {
  runtime::FarmConfig cfg;
  cfg.deterministic = true;
  cfg.keep_outcome_log = false;
  cfg.dvs.enabled = true;
  cfg.dvs.energy_budget_fj_per_job = budget_fj;
  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) (void)farm.submit(job);
  farm.drain();
  const auto m = farm.metrics();
  farm.shutdown();
  return static_cast<double>(m.energy_fj) / static_cast<double>(m.served());
}

/// Serves a fixed-seed mixed kernel pack — compiled workload kernels,
/// bursty arrivals, fuse/split churn, deadline pressure — on a
/// deterministic single-worker farm and returns jobs served per
/// million executed cycles. Every input is seeded and the farm runs on
/// the virtual cycle clock, so the quotient is exact: a change means
/// the kernel lowering, the scheduler, or the engine changed, never
/// the host.
double kernel_jobs_per_mcycle() {
  const workload::JobStream stream =
      workload::JobStreamBuilder()
          .pack(workload::ScenarioPackBuilder()
                    .name("bench")
                    .seed(11)
                    .jobs(48)
                    .bursty(3, 250)
                    .churn(0.2)
                    .deadline_pressure(0.2, 250000)
                    .build())
          .build();
  runtime::FarmConfig cfg;
  cfg.deterministic = true;
  cfg.keep_outcome_log = false;
  runtime::ChipFarm farm(cfg);
  for (const auto& timed : stream.jobs) {
    runtime::SubmitOptions so;
    so.arrival_tick = timed.arrival;
    so.deadline = timed.deadline;
    (void)farm.submit(timed.job, so);
  }
  farm.drain();
  const auto m = farm.metrics();
  farm.shutdown();
  return 1.0e6 * static_cast<double>(m.served()) /
         static_cast<double>(m.exec_cycles);
}

struct Metric {
  std::string name;
  double floor;  // hard lower bound, machine-independent
  double value = 0.0;
  double event_rate = 0.0;  // informational, machine-dependent
  double dense_rate = 0.0;
};

/// Every metric key the harness can produce, in baseline-file order.
/// --merge carries keys over from an existing baseline when a --filter
/// run measured only a subset, so a partial refresh never drops keys.
const char* const kAllMetricNames[] = {
    "executor_sparse_speedup",      "executor_sparse_speedup_1024",
    "executor_dense_speedup",       "chip_sparse_speedup",
    "chip_sparse_speedup_1024",     "simd_scan_speedup",
    "farm_throughput_speedup",      "chaos_throughput_speedup",
    "checkpoint_compression",       "checkpoint_micros_speedup",
    "energy_per_job",               "dvs_savings",
    "kernel_throughput",
};

std::vector<Metric> run_all(const std::string& filter) {
  const std::regex re(filter.empty() ? ".*" : filter);
  const auto matches = [&re](const char* name) {
    return std::regex_search(name, re);
  };
  std::vector<Metric> metrics;
  // Measured first, before any big-footprint scenario runs: the
  // 1024-object scenarios leave behind freed, pre-faulted (and
  // THP-promotable) pages, and whichever side of a later scenario
  // allocates into them gains ~10% on linear sweeps. Interleaving
  // cancels time-varying drift but not that placement asymmetry, and
  // the near-unity dense ratio is the only metric where ±10% spans
  // the floor. (A fresh `--filter executor_dense` run reproduces this
  // clean-heap measurement by construction.)
  if (matches("executor_dense_speedup")) {
    Metric m{"executor_dense_speedup", 0.95};
    // Ratio of best-of-3 rounds, fresh engine state per round. The
    // two engines' arenas land in different heap spots, and which
    // side gets the better pages is a per-allocation lottery worth
    // ~4% on this near-unity ratio — fixed for a round's lifetime, so
    // interleaving can't average it out. Noise (placement, scheduler)
    // only ever slows a side; each side's best rate across re-rolled
    // rounds is its intrinsic speed, exactly the min-time estimator
    // micro-benchmarks use, applied per side before taking the
    // quotient.
    double best_event = 0.0, best_dense = 0.0;
    for (int round = 0; round < 3; ++round) {
      double ev = 0.0, de = 0.0;
      interleaved_ratio(make_executor_once(true, true),
                        make_executor_once(false, true), ev, de);
      best_event = std::max(best_event, ev);
      best_dense = std::max(best_dense, de);
    }
    m.event_rate = best_event;
    m.dense_rate = best_dense;
    m.value = best_event / best_dense;
    metrics.push_back(m);
  }
  if (matches("executor_sparse_speedup")) {
    Metric m{"executor_sparse_speedup", 3.0};
    m.value = interleaved_ratio(make_executor_once(true, false),
                                make_executor_once(false, false),
                                m.event_rate, m.dense_rate);
    metrics.push_back(m);
  }
  if (matches("executor_sparse_speedup_1024")) {
    // Epiphany-V-class object space: a 500-stage pipeline (~1000
    // resident objects — each stage is an op plus its constant) filling
    // a 1024-object AP, one wave in flight. The dense reference scans
    // every object per cycle; the event engine touches ~1, and its
    // summary level keeps the drain cost flat across the quiet words.
    Metric m{"executor_sparse_speedup_1024", 8.0};
    m.value = interleaved_ratio(make_executor_once(true, false, 1024, 500),
                                make_executor_once(false, false, 1024, 500),
                                m.event_rate, m.dense_rate);
    metrics.push_back(m);
  }
  if (matches("chip_sparse_speedup")) {
    Metric m{"chip_sparse_speedup", 3.0};
    m.value =
        interleaved_ratio(make_chip_once(true), make_chip_once(false),
                          m.event_rate, m.dense_rate);
    metrics.push_back(m);
  }
  if (matches("chip_sparse_speedup_1024")) {
    // One active 16-cluster AP on a 32x32 = 1024-cluster chip.
    Metric m{"chip_sparse_speedup_1024", 3.0};
    m.value =
        interleaved_ratio(make_chip_once(true, 32), make_chip_once(false, 32),
                          m.event_rate, m.dense_rate);
    metrics.push_back(m);
  }
  if (simd::kLevel >= 2 && matches("simd_scan_speedup")) {
    // Only recorded on x86-SIMD builds: on a scalar build both sides
    // are the same code and the ratio pins at ~1.0, which must not
    // overwrite (or be checked against) an AVX2-recorded baseline.
    Metric m{"simd_scan_speedup", 1.5};
    m.value = interleaved_ratio(make_scan_once(false), make_scan_once(true),
                                m.event_rate, m.dense_rate);
    metrics.push_back(m);
  }
  if (matches("farm_throughput_speedup")) {
    Metric m{"farm_throughput_speedup", 0.9};
    m.value = interleaved_ratio(make_farm_once(true, false),
                                make_farm_once(false, false),
                                m.event_rate, m.dense_rate, 0.8);
    metrics.push_back(m);
  }
  if (matches("chaos_throughput_speedup")) {
    Metric m{"chaos_throughput_speedup", 0.9};
    m.value = interleaved_ratio(make_farm_once(true, true),
                                make_farm_once(false, true),
                                m.event_rate, m.dense_rate, 0.8);
    metrics.push_back(m);
  }
  if (matches("checkpoint_compression") ||
      matches("checkpoint_micros_speedup")) {
    // Incremental checkpoints: full-snapshot bytes over emitted delta
    // bytes at checkpoint_every_batches=1 steady state (the issue's
    // "<= 30% of full" acceptance is a >= 3.34x compression floor —
    // byte counts are deterministic, so this floor is tight), and wall
    // micros per checkpoint full/incremental. The encoder pays hash +
    // section diff on top of the flat save it feeds on, so true parity
    // is out of reach — at -O3 a flat ~57 KB save costs ~23 us and the
    // word-wise diff+hash adds ~35 us (observed ratio ~0.38-0.40: a
    // 4.3x byte cut for ~2.6x the encode CPU). The floor guards
    // against the scans going byte-serial or super-linear again (the
    // byte-serial encoder measured ~0.15 at -O3); 0.25 catches that
    // while leaving headroom for noisy CI neighbours.
    // Full and incremental rounds alternate inside one timing window,
    // and each side reports the MINIMUM of its per-round means: a
    // ~100us checkpoint mean is wrecked by a single ms-scale scheduler
    // preemption, and min-of-rounds samples each side's least-
    // interfered window instead of averaging the interference in.
    runtime::SyntheticSpec spec;
    spec.jobs = 32;
    spec.seed = 11;
    const auto jobs = runtime::synthetic_jobs(spec);
    obs::FarmMetrics incr_merged;
    double full_us = 0.0, incr_us = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
      const auto full = checkpoint_farm_round(false, jobs);
      const auto incr = checkpoint_farm_round(true, jobs);
      incr_merged.merge(incr);
      const double f = full.checkpoint_micros.mean();
      const double n = incr.checkpoint_micros.mean();
      if (full_us == 0.0 || f < full_us) full_us = f;
      if (incr_us == 0.0 || n < incr_us) incr_us = n;
    } while (seconds_since(t0) < 0.6);
    metrics.push_back({"checkpoint_compression", 3.34,
                       incr_merged.checkpoint_full_bytes.mean() /
                           incr_merged.checkpoint_bytes.mean(),
                       incr_merged.checkpoint_bytes.mean(),
                       incr_merged.checkpoint_full_bytes.mean()});
    metrics.push_back(
        {"checkpoint_micros_speedup", 0.25, full_us / incr_us, incr_us,
         full_us});
  }
  if (matches("energy_per_job") || matches("dvs_savings")) {
    // Quotients of the deterministic energy meter, not wall-clock
    // rates: the same manifest is served twice, once with the governor
    // parked at nominal (budget 0) and once under a 1 fJ budget that
    // floors the ladder. Both femtojoule totals are byte-identical per
    // seed, so tight floors mean "the pricing model or the governor's
    // level sequence changed", never "the host was slow".
    //   energy_per_job — jobs per microjoule at the nominal level
    //                    (higher is better, like every other metric).
    //   dvs_savings    — nominal fJ/job over budget-floored fJ/job.
    //                    The issue's >= 20% joules-per-job reduction is
    //                    a >= 1.25x ratio; the default ladder bottoms
    //                    out at 65% V (dynamic energy ~0.42x), so the
    //                    measured ratio clears the 1.2 floor with
    //                    margin.
    runtime::SyntheticSpec spec;
    spec.jobs = 32;
    spec.seed = 11;
    const auto jobs = runtime::synthetic_jobs(spec);
    const double nominal_fj = energy_fj_per_job_round(0, jobs);
    const double floored_fj = energy_fj_per_job_round(1, jobs);
    if (matches("energy_per_job")) {
      metrics.push_back({"energy_per_job", 3000.0, 1.0e9 / nominal_fj,
                         nominal_fj, floored_fj});
    }
    if (matches("dvs_savings")) {
      metrics.push_back({"dvs_savings", 1.2, nominal_fj / floored_fj,
                         floored_fj, nominal_fj});
    }
  }
  if (matches("kernel_throughput")) {
    // Deterministic, so the same number every run on every host; the
    // floor only has to absorb intentional re-costing of the kernels
    // (wider mixes, scheduler changes), not measurement noise.
    Metric m{"kernel_throughput", 50000.0};
    m.value = kernel_jobs_per_mcycle();
    m.event_rate = m.value;
    m.dense_rate = m.value;
    metrics.push_back(m);
  }
  return metrics;
}

/// Minimal extractor for the rigid JSON this tool itself emits: finds
/// `"name"` and reads the number following the next `"field":`.
bool baseline_field(const std::string& json, const std::string& name,
                    const char* field, double& value) {
  const auto key = "\"" + name + "\"";
  auto pos = json.find(key);
  if (pos == std::string::npos) return false;
  pos = json.find("\"" + std::string(field) + "\"", pos);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos);
  if (pos == std::string::npos) return false;
  value = std::strtod(json.c_str() + pos + 1, nullptr);
  return true;
}

bool baseline_value(const std::string& json, const std::string& name,
                    double& value) {
  return baseline_field(json, name, "value", value);
}

/// Serialises the baseline: every key in kAllMetricNames that was
/// either measured this run or present in `merge_json` (a previous
/// baseline, consulted only for keys the filter skipped), in canonical
/// order.
std::string to_json(const std::vector<Metric>& metrics,
                    const std::string& merge_json) {
  std::vector<Metric> out_metrics;
  for (const char* name : kAllMetricNames) {
    bool measured = false;
    for (const auto& m : metrics) {
      if (m.name == name) {
        out_metrics.push_back(m);
        measured = true;
        break;
      }
    }
    if (measured) continue;
    Metric carried;
    if (baseline_field(merge_json, name, "value", carried.value) &&
        baseline_field(merge_json, name, "floor", carried.floor)) {
      carried.name = name;
      out_metrics.push_back(carried);
    }
  }
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": 1,\n"
      << "  \"unit\": \"event-engine over dense-engine throughput ratio\",\n"
      << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < out_metrics.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": { \"value\": %.3f, \"floor\": %.2f }%s\n",
                  out_metrics[i].name.c_str(), out_metrics[i].value,
                  out_metrics[i].floor, i + 1 < out_metrics.size() ? "," : "");
    out << buf;
  }
  out << "  }\n}\n";
  return out.str();
}

int check(const std::vector<Metric>& metrics, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  int failures = 0;
  std::vector<std::string> missing;
  std::printf("%-30s %9s %9s %9s  verdict\n", "metric", "measured",
              "baseline", "floor");
  for (const auto& m : metrics) {
    double base = 0.0;
    if (!baseline_value(json, m.name, base)) {
      std::printf("%-30s %9.3f %9s %9.2f  FAIL (missing from baseline)\n",
                  m.name.c_str(), m.value, "-", m.floor);
      missing.push_back(m.name);
      ++failures;
      continue;
    }
    const double bound = base * kTolerance;
    const bool ok = m.value >= m.floor && m.value >= bound;
    std::printf("%-30s %9.3f %9.3f %9.2f  %s\n", m.name.c_str(), m.value,
                base, m.floor,
                ok ? "ok"
                   : (m.value < m.floor ? "FAIL (below floor)"
                                        : "FAIL (>25% regression)"));
    if (!ok) ++failures;
  }
  if (!missing.empty()) {
    // Name exactly what the harness wanted and what the file offers —
    // the usual cause is a new scenario added without re-recording.
    std::fprintf(stderr, "\nbaseline %s is missing %zu metric key(s):\n",
                 path.c_str(), missing.size());
    for (const auto& name : missing) {
      std::fprintf(stderr, "  expected \"%s\": not found in file\n",
                   name.c_str());
    }
    std::fprintf(stderr, "keys present in the baseline:");
    bool any = false;
    for (const auto& m : metrics) {
      double unused = 0.0;
      if (baseline_value(json, m.name, unused)) {
        std::fprintf(stderr, " \"%s\"", m.name.c_str());
        any = true;
      }
    }
    std::fprintf(stderr, "%s\n", any ? "" : " (none recognised)");
    std::fprintf(stderr,
                 "the harness and the committed baseline disagree on the "
                 "scenario list; re-record with: scripts/bench_baseline\n");
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "\n%d metric(s) regressed. If this is an intended "
                 "trade-off, refresh the baseline with "
                 "scripts/bench_baseline.\n",
                 failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string check_path, filter, merge_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg == "--merge" && i + 1 < argc) {
      merge_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--check BASELINE] [--filter REGEX] "
                   "[--merge BASELINE]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<Metric> metrics;
  try {
    metrics = run_all(filter);
  } catch (const std::regex_error&) {
    std::fprintf(stderr, "--filter '%s' is not a valid regex\n",
                 filter.c_str());
    return 2;
  }
  if (metrics.empty()) {
    std::fprintf(stderr, "--filter '%s' matches no scenario; keys are:\n",
                 filter.c_str());
    for (const char* name : kAllMetricNames) {
      std::fprintf(stderr, "  %s\n", name);
    }
    return 2;
  }
  if (json) {
    std::string merge_json;
    if (!merge_path.empty()) {
      std::ifstream in(merge_path);
      if (!in) {
        std::fprintf(stderr, "cannot open --merge baseline %s\n",
                     merge_path.c_str());
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      merge_json = ss.str();
    }
    std::fputs(to_json(metrics, merge_json).c_str(), stdout);
    return 0;
  }
  if (!check_path.empty()) {
    return check(metrics, check_path);
  }
  std::printf("%-30s %9s %9s %14s %14s\n", "metric", "ratio", "floor",
              "event units/s", "dense units/s");
  for (const auto& m : metrics) {
    std::printf("%-30s %9.3f %9.2f %14.0f %14.0f\n", m.name.c_str(),
                m.value, m.floor, m.event_rate, m.dense_rate);
  }
  return 0;
}
