// Cycle-engine perf harness: measures the event-driven engine against
// the dense every-object-every-cycle reference scan and records the
// speedup RATIOS into BENCH_cycle_engine.json.
//
// Ratios — not absolute rates — are what the committed baseline stores:
// both engines run in the same process on the same host, so their
// quotient is stable across machines while cycles/sec is not. The CI
// perf-smoke job re-measures and fails when a ratio falls below its
// hard floor or regresses more than 25% against the committed baseline
// (scripts/bench_baseline --check).
//
// Scenarios:
//   executor_sparse  — one wave trickling through a 100-stage pipeline
//                      on a 256-object AP: ~1 active object per cycle,
//                      the quiescence case the activity set targets.
//   executor_dense   — a 48-stage pipeline saturated with 64 waves:
//                      every object fires every cycle, so this measures
//                      the event engine's bookkeeping overhead (must
//                      stay within tolerance of the dense scan).
//   chip_sparse      — end to end: one active AP (16 fused clusters) on
//                      a 16x16-cluster chip running a 64-stage program
//                      through configure + execute.
//   farm / chaos     — deterministic chip farm serving synthetic jobs,
//                      without and with fault injection + self-healing.
//
// Usage: cycle_engine_bench            human-readable table
//        cycle_engine_bench --json     JSON to stdout (baseline record)
//        cycle_engine_bench --check F  compare against baseline file F
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "core/vlsi_processor.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"

namespace {

using namespace vlsip;

/// Regression tolerance against the committed baseline: fail below 75%
/// of the recorded ratio (a >25% regression).
constexpr double kTolerance = 0.75;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs `once` (returning simulated work units) repeatedly for at least
/// `min_wall` seconds after one warm-up call; returns units per second.
template <typename F>
double measure_rate(F&& once, double min_wall = 0.25) {
  once();  // warm-up: page in code, fill arenas
  double units = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    units += once();
    elapsed = seconds_since(t0);
  } while (elapsed < min_wall);
  return units / elapsed;
}

/// Simulated executor cycles per wall second on one AP. Sparse: one
/// wave in flight (activity ~1 object among ~200 resident). Dense: 64
/// waves saturate every stage. The object space is sized so the whole
/// datapath is resident — fault churn is a different scenario (the
/// chaos farm covers it), not what this pair isolates.
double executor_cycles_per_sec(bool event_driven, bool dense_workload) {
  ap::ApConfig cfg;
  cfg.capacity = 256;
  cfg.memory_blocks = 8;
  cfg.exec.event_driven = event_driven;
  ap::AdaptiveProcessor ap(cfg);
  const auto program =
      arch::linear_pipeline_program(dense_workload ? 48 : 100);
  ap.configure(program);
  const int waves = dense_workload ? 64 : 1;
  std::uint64_t expected = 0;
  return measure_rate([&] {
    for (int w = 0; w < waves; ++w) ap.feed("in", arch::make_word_i(w));
    expected += static_cast<std::uint64_t>(waves);
    const auto r = ap.run(expected, 1u << 22);
    return static_cast<double>(r.cycles);
  });
}

/// Chip-level sparse execution: one active AP (16 fused clusters) on a
/// 16x16-cluster fabric, configured once with a 64-stage pipeline, then
/// fed one wave at a time — the issue's "1 active AP on a big chip"
/// quiescence case. Configuration cost is amortised out so the ratio
/// isolates the cycle engine (BM_PipelineConfigure guards configure).
double chip_cycles_per_sec(bool event_driven) {
  core::ChipConfig cc;
  cc.width = 16;
  cc.height = 16;
  cc.scaling.ap_template.exec.event_driven = event_driven;
  core::VlsiProcessor chip(cc);
  const auto proc = chip.fuse(16);
  const auto program = arch::linear_pipeline_program(64);
  ap::AdaptiveProcessor& ap = chip.manager().processor(proc);
  ap.configure(program);
  chip.activate(proc);
  std::uint64_t expected = 0;
  return measure_rate([&] {
    ap.feed("in", arch::make_word_i(7));
    const auto r = ap.run(++expected, 1u << 22);
    return static_cast<double>(r.cycles);
  });
}

/// Deterministic chip farm serving a fixed synthetic manifest; jobs per
/// wall second. With `chaos` a fault plan is replayed and self-healing
/// is on.
double farm_jobs_per_sec(bool event_driven, bool chaos) {
  runtime::SyntheticSpec spec;
  spec.jobs = 32;
  spec.seed = 11;
  const auto jobs = runtime::synthetic_jobs(spec);
  return measure_rate(
      [&] {
        runtime::FarmConfig cfg;
        cfg.deterministic = true;
        cfg.keep_outcome_log = false;
        cfg.chip.scaling.ap_template.exec.event_driven = event_driven;
        if (chaos) {
          fault::FaultPlanSpec fs;
          fs.seed = 5;
          fs.events = 16;
          fs.horizon = spec.jobs;
          cfg.fault_tolerance.enabled = true;
          cfg.fault_tolerance.plan = fault::random_fault_plan(fs);
        }
        runtime::ChipFarm farm(cfg);
        for (const auto& job : jobs) (void)farm.submit(job);
        farm.drain();
        const auto served = farm.metrics().served();
        farm.shutdown();
        return static_cast<double>(served);
      },
      0.4);
}

/// Serves the synthetic manifest once on a checkpoint-every-batch farm
/// and returns the round's farm metrics. `incremental` flips the delta
/// encoder; everything else is identical, so full-vs-incremental
/// quotients isolate the encoding.
obs::FarmMetrics checkpoint_farm_round(bool incremental,
                                       const std::vector<scaling::Job>& jobs) {
  runtime::FarmConfig cfg;
  cfg.deterministic = true;
  cfg.keep_outcome_log = false;
  cfg.checkpoint_every_batches = 1;
  cfg.incremental_checkpoints = incremental;
  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) (void)farm.submit(job);
  farm.drain();
  auto metrics = farm.metrics();
  farm.shutdown();
  return metrics;
}

struct Metric {
  std::string name;
  double floor;  // hard lower bound, machine-independent
  double value = 0.0;
  double event_rate = 0.0;  // informational, machine-dependent
  double dense_rate = 0.0;
};

std::vector<Metric> run_all() {
  std::vector<Metric> metrics;
  {
    const double dense_engine = executor_cycles_per_sec(false, false);
    const double event_engine = executor_cycles_per_sec(true, false);
    metrics.push_back({"executor_sparse_speedup", 3.0,
                       event_engine / dense_engine, event_engine,
                       dense_engine});
  }
  {
    const double dense_engine = executor_cycles_per_sec(false, true);
    const double event_engine = executor_cycles_per_sec(true, true);
    metrics.push_back({"executor_dense_speedup", 0.95,
                       event_engine / dense_engine, event_engine,
                       dense_engine});
  }
  {
    const double dense_engine = chip_cycles_per_sec(false);
    const double event_engine = chip_cycles_per_sec(true);
    metrics.push_back({"chip_sparse_speedup", 3.0,
                       event_engine / dense_engine, event_engine,
                       dense_engine});
  }
  {
    const double dense_engine = farm_jobs_per_sec(false, false);
    const double event_engine = farm_jobs_per_sec(true, false);
    metrics.push_back({"farm_throughput_speedup", 0.9,
                       event_engine / dense_engine, event_engine,
                       dense_engine});
  }
  {
    const double dense_engine = farm_jobs_per_sec(false, true);
    const double event_engine = farm_jobs_per_sec(true, true);
    metrics.push_back({"chaos_throughput_speedup", 0.9,
                       event_engine / dense_engine, event_engine,
                       dense_engine});
  }
  {
    // Incremental checkpoints: full-snapshot bytes over emitted delta
    // bytes at checkpoint_every_batches=1 steady state (the issue's
    // "<= 30% of full" acceptance is a >= 3.34x compression floor —
    // byte counts are deterministic, so this floor is tight), and wall
    // micros per checkpoint full/incremental. The encoder pays hash +
    // section diff on top of the flat save it feeds on, so true parity
    // is out of reach — at -O3 a flat ~57 KB save costs ~23 us and the
    // word-wise diff+hash adds ~35 us (observed ratio ~0.38-0.40: a
    // 4.3x byte cut for ~2.6x the encode CPU). The floor guards
    // against the scans going byte-serial or super-linear again (the
    // byte-serial encoder measured ~0.15 at -O3); 0.25 catches that
    // while leaving headroom for noisy CI neighbours.
    // Full and incremental rounds alternate inside one timing window,
    // and each side reports the MINIMUM of its per-round means: a
    // ~100us checkpoint mean is wrecked by a single ms-scale scheduler
    // preemption, and min-of-rounds samples each side's least-
    // interfered window instead of averaging the interference in.
    runtime::SyntheticSpec spec;
    spec.jobs = 32;
    spec.seed = 11;
    const auto jobs = runtime::synthetic_jobs(spec);
    obs::FarmMetrics incr_merged;
    double full_us = 0.0, incr_us = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
      const auto full = checkpoint_farm_round(false, jobs);
      const auto incr = checkpoint_farm_round(true, jobs);
      incr_merged.merge(incr);
      const double f = full.checkpoint_micros.mean();
      const double n = incr.checkpoint_micros.mean();
      if (full_us == 0.0 || f < full_us) full_us = f;
      if (incr_us == 0.0 || n < incr_us) incr_us = n;
    } while (seconds_since(t0) < 0.6);
    metrics.push_back({"checkpoint_compression", 3.34,
                       incr_merged.checkpoint_full_bytes.mean() /
                           incr_merged.checkpoint_bytes.mean(),
                       incr_merged.checkpoint_bytes.mean(),
                       incr_merged.checkpoint_full_bytes.mean()});
    metrics.push_back(
        {"checkpoint_micros_speedup", 0.25, full_us / incr_us, incr_us,
         full_us});
  }
  return metrics;
}

std::string to_json(const std::vector<Metric>& metrics) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": 1,\n"
      << "  \"unit\": \"event-engine over dense-engine throughput ratio\",\n"
      << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": { \"value\": %.3f, \"floor\": %.2f }%s\n",
                  metrics[i].name.c_str(), metrics[i].value,
                  metrics[i].floor, i + 1 < metrics.size() ? "," : "");
    out << buf;
  }
  out << "  }\n}\n";
  return out.str();
}

/// Minimal extractor for the rigid JSON this tool itself emits: finds
/// `"name"` and reads the number following the next `"value":`.
bool baseline_value(const std::string& json, const std::string& name,
                    double& value) {
  const auto key = "\"" + name + "\"";
  auto pos = json.find(key);
  if (pos == std::string::npos) return false;
  pos = json.find("\"value\"", pos);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos);
  if (pos == std::string::npos) return false;
  value = std::strtod(json.c_str() + pos + 1, nullptr);
  return true;
}

int check(const std::vector<Metric>& metrics, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  int failures = 0;
  std::vector<std::string> missing;
  std::printf("%-26s %9s %9s %9s  verdict\n", "metric", "measured",
              "baseline", "floor");
  for (const auto& m : metrics) {
    double base = 0.0;
    if (!baseline_value(json, m.name, base)) {
      std::printf("%-26s %9.3f %9s %9.2f  FAIL (missing from baseline)\n",
                  m.name.c_str(), m.value, "-", m.floor);
      missing.push_back(m.name);
      ++failures;
      continue;
    }
    const double bound = base * kTolerance;
    const bool ok = m.value >= m.floor && m.value >= bound;
    std::printf("%-26s %9.3f %9.3f %9.2f  %s\n", m.name.c_str(), m.value,
                base, m.floor,
                ok ? "ok"
                   : (m.value < m.floor ? "FAIL (below floor)"
                                        : "FAIL (>25% regression)"));
    if (!ok) ++failures;
  }
  if (!missing.empty()) {
    // Name exactly what the harness wanted and what the file offers —
    // the usual cause is a new scenario added without re-recording.
    std::fprintf(stderr, "\nbaseline %s is missing %zu metric key(s):\n",
                 path.c_str(), missing.size());
    for (const auto& name : missing) {
      std::fprintf(stderr, "  expected \"%s\": not found in file\n",
                   name.c_str());
    }
    std::fprintf(stderr, "keys present in the baseline:");
    bool any = false;
    for (const auto& m : metrics) {
      double unused = 0.0;
      if (baseline_value(json, m.name, unused)) {
        std::fprintf(stderr, " \"%s\"", m.name.c_str());
        any = true;
      }
    }
    std::fprintf(stderr, "%s\n", any ? "" : " (none recognised)");
    std::fprintf(stderr,
                 "the harness and the committed baseline disagree on the "
                 "scenario list; re-record with: scripts/bench_baseline\n");
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "\n%d metric(s) regressed. If this is an intended "
                 "trade-off, refresh the baseline with "
                 "scripts/bench_baseline.\n",
                 failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto metrics = run_all();
  if (argc > 1 && std::strcmp(argv[1], "--json") == 0) {
    std::fputs(to_json(metrics).c_str(), stdout);
    return 0;
  }
  if (argc > 2 && std::strcmp(argv[1], "--check") == 0) {
    return check(metrics, argv[2]);
  }
  std::printf("%-26s %9s %9s %14s %14s\n", "metric", "ratio", "floor",
              "event units/s", "dense units/s");
  for (const auto& m : metrics) {
    std::printf("%-26s %9.3f %9.2f %14.0f %14.0f\n", m.name.c_str(),
                m.value, m.floor, m.event_rate, m.dense_rate);
  }
  return 0;
}
