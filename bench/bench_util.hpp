// Shared helpers for the bench binaries: consistent headers and
// paper-vs-measured formatting.
#pragma once

#include <cstdio>
#include <string>

#include "common/table.hpp"

namespace vlsip::bench {

inline void banner(const std::string& experiment, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("Paper: Takano, \"Very Large-Scale Integrated Processor\", "
              "IJNC 3(1), 2013\n");
  std::printf("==============================================================\n");
}

inline std::string pct_delta(double measured, double paper) {
  if (paper == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * (measured - paper) / paper);
  return buf;
}

}  // namespace vlsip::bench
