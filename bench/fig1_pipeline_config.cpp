// Regenerates the behaviour of Figure 1: the configuration procedure on
// the pipeline — request, acknowledge, acquirement — with measured
// cycle costs for the hit, miss and re-request paths.
#include <cstdio>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "bench_util.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::ap;
  bench::banner("Figure 1 — Configuration Procedure on the Pipeline",
                "Cycle-level costs of the request/acquire path: cold "
                "misses, warm hits, and object-cache reuse");

  AsciiTable out({"Scenario", "Elements", "Requests", "Hits", "Misses",
                  "Stack shifts", "Handshake cyc", "Total cycles",
                  "Cyc/element"});

  auto report = [&](const char* name, const ConfigStats& s) {
    out.add_row({name, std::to_string(s.elements),
                 std::to_string(s.object_requests), std::to_string(s.hits),
                 std::to_string(s.misses), std::to_string(s.stack_inserts),
                 std::to_string(s.acquire_handshake_cycles),
                 std::to_string(s.cycles),
                 format_sig(static_cast<double>(s.cycles) /
                                static_cast<double>(s.elements),
                            3)});
  };

  // Cold configuration: every object misses, loads from the library and
  // enters via a stack shift (fig. 1 steps 1-4 with the miss path).
  ApConfig cfg;
  cfg.capacity = 32;
  cfg.memory_blocks = 8;
  cfg.pipeline.record_timeline = true;
  AdaptiveProcessor ap(cfg);
  const auto program = arch::linear_pipeline_program(8);
  const auto cold = ap.configure(program);
  report("cold (all misses)", cold);

  // Warm reconfiguration: the datapath was released but objects stayed
  // cached in the object space — pure hit path.
  ap.release_datapath();
  const auto warm = ap.configure(program);
  report("warm (object cache)", warm);

  // Capacity-starved configuration: the datapath exceeds C, so the
  // replacement (write-back + LRU eviction) runs during configuration.
  ApConfig tight = cfg;
  tight.capacity = 8;
  AdaptiveProcessor small(tight);
  const auto starved = small.configure(arch::linear_pipeline_program(8));
  report("starved (C=8, evicting)", starved);

  std::printf("%s\n", out.render().c_str());
  std::printf("Hit rate cold=%.2f warm=%.2f starved=%.2f; evictions "
              "(starved)=%llu, write-backs=%llu\n",
              cold.hit_rate(), warm.hit_rate(), starved.hit_rate(),
              static_cast<unsigned long long>(starved.evictions),
              static_cast<unsigned long long>(starved.write_backs));
  std::printf("The warm path skips the library load entirely — the object "
              "cache of section 2.4 in action.\n\n");

  // Stage-occupancy timeline for the first elements (fig. 1's pipeline,
  // measured): PU -> RF -> RE -> REQ (incl. miss handling) -> ACQ.
  std::printf("Pipeline timeline, first 6 elements of the warm run:\n");
  AsciiTable tl({"Elem", "PU", "RF", "RE", "REQ", "REQ done", "ACQ",
                 "ACQ done"});
  for (std::size_t i = 0; i < warm.timeline.size() && i < 6; ++i) {
    const auto& t = warm.timeline[i];
    tl.add_row({std::to_string(i), std::to_string(t.pointer_update),
                std::to_string(t.request_fetch),
                std::to_string(t.request_evaluation),
                std::to_string(t.request_start),
                std::to_string(t.request_done),
                std::to_string(t.acquire_start),
                std::to_string(t.acquire_done)});
  }
  std::printf("%s", tl.render().c_str());
  std::printf("One element enters the pipeline per cycle (PU column); the "
              "REQ/ACQ columns show where hits, misses and handshakes "
              "stretch the back of the pipe.\n");
  return 0;
}
