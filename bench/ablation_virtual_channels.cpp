// Ablation: virtual-channel flow control on the scaling NoC (the
// paper's ref [18], Dally). Head-of-line blocking: a worm stuck behind a
// blocked worm in the same input queue cannot advance even when its own
// output is free — unless it rides another virtual channel.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/noc_fabric.hpp"

namespace {

using namespace vlsip;

std::vector<std::uint64_t> worm(std::size_t flits) {
  return std::vector<std::uint64_t>(flits, 0xAB);
}

/// The adversarial scenario on a 4x2 mesh:
///   P1: (0,0) -> (3,0), 16 flits — a long worm holding link (2,0)-(3,0);
///   P2: (1,0) -> (3,0), 16 flits — blocks at (2,0) behind P1's lock and
///       backpressures along (1,0)-(2,0);
///   P3: (1,0) -> (2,1), 1 flit — shares the link (1,0)-(2,0) with P2,
///       then turns south at (2,0), whose output is completely free.
/// With one VC, P3 is trapped behind P2's flits in the shared input
/// queue (head-of-line blocking); with two, it bypasses on VC 1.
std::uint64_t victim_latency(int vcs) {
  noc::RouterConfig rc;
  rc.queue_depth = 2;
  rc.virtual_channels = vcs;
  noc::NocFabric fabric(4, 2, rc);

  noc::Packet p1;
  p1.src_x = 0; p1.src_y = 0; p1.dst_x = 3; p1.dst_y = 0;
  p1.payload = worm(16);
  noc::Packet p2;
  p2.src_x = 1; p2.src_y = 0; p2.dst_x = 3; p2.dst_y = 0;
  p2.payload = worm(16);
  noc::Packet p3;
  p3.src_x = 1; p3.src_y = 0; p3.dst_x = 2; p3.dst_y = 1;
  p3.payload = worm(1);

  fabric.inject(p1);
  fabric.inject(p2);
  const auto victim = fabric.inject(p3);
  fabric.run_until_drained(1u << 20);
  for (const auto& d : fabric.delivered()) {
    if (d.id == victim) return d.deliver_cycle - d.inject_cycle;
  }
  return ~0ull;
}

}  // namespace

int main() {
  bench::banner("Ablation — Virtual Channels on the Scaling NoC",
                "Head-of-line blocking: a 1-flit data packet trapped "
                "behind a stalled 16-flit worm [Dally 92, paper ref 18]");

  AsciiTable out({"VCs", "Victim latency [cycles]", "Speedup vs 1 VC"});
  double base = 0;
  for (int vcs : {1, 2, 3, 4}) {
    const auto lat = victim_latency(vcs);
    if (vcs == 1) base = static_cast<double>(lat);
    out.add_row({std::to_string(vcs), std::to_string(lat),
                 format_sig(base / static_cast<double>(lat), 3) + "x"});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "Why it matters here: inter-processor hand-offs (fig. 7 d) are "
      "long data worms into followers' memory blocks, while activation "
      "tokens and scaling config packets are single flits. Without VCs "
      "a parked hand-off delays every activation crossing its path; "
      "with 2+ VCs the control traffic bypasses it. Short config worms "
      "themselves gain nothing — the second VC is for the bystanders.\n");
  return 0;
}
