// Chip-farm throughput: jobs/sec and tail latency as the fleet scales.
//
// Sweeps worker count x admission-queue depth over one seed-fixed
// synthetic manifest (mixed pipeline depths and cluster requests) and
// reports wall-clock jobs/sec plus p50/p95/p99 service latency. Each
// chip is paced at an emulated silicon clock (FarmConfig::chip_hz), so
// a job occupies its chip for cycles/chip_hz of wall time — throughput
// then measures farm-level concurrency (chips overlapping in real
// time) rather than host simulation speed, and scales with worker
// count even on a single-core host. A deeper queue mostly trades
// memory for fewer producer stalls (admission blocks when full).
//
//   runtime_throughput [jobs] [seed] [chip_khz]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"

namespace {

struct Sweep {
  std::size_t workers;
  std::size_t queue_depth;
  double wall_s = 0.0;
  double jobs_per_sec = 0.0;
  vlsip::runtime::FarmMetrics metrics;
};

Sweep run_sweep(std::size_t workers, std::size_t queue_depth,
                double chip_hz,
                const std::vector<vlsip::scaling::Job>& jobs) {
  using namespace vlsip;
  Sweep sweep;
  sweep.workers = workers;
  sweep.queue_depth = queue_depth;

  runtime::FarmConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = queue_depth;
  cfg.block_when_full = true;
  cfg.keep_outcome_log = false;
  cfg.chip_hz = chip_hz;
  runtime::ChipFarm farm(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& job : jobs) (void)farm.submit(job);
  farm.drain();
  sweep.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sweep.metrics = farm.metrics();
  sweep.jobs_per_sec =
      sweep.wall_s > 0.0
          ? static_cast<double>(sweep.metrics.served()) / sweep.wall_s
          : 0.0;
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vlsip;

  runtime::SyntheticSpec spec;
  spec.jobs = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 96;
  spec.seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;
  const double chip_khz = argc > 3 ? std::atof(argv[3]) : 100.0;
  const double chip_hz = chip_khz * 1e3;
  const auto jobs = runtime::synthetic_jobs(spec);

  std::printf("chip-farm throughput: %zu synthetic jobs (seed %llu), "
              "blocking admission,\nchips paced at %.0f kHz emulated "
              "silicon clock (service = cycles / chip_hz)\n\n",
              jobs.size(), static_cast<unsigned long long>(spec.seed),
              chip_khz);

  AsciiTable table({"workers", "queue", "wall s", "jobs/sec", "p50 us",
                    "p95 us", "p99 us", "batches", "fuse reuses"});
  std::map<std::size_t, double> best_rate_by_workers;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const std::size_t queue_depth : {16u, 256u}) {
      const Sweep s = run_sweep(workers, queue_depth, chip_hz, jobs);
      table.add_row(
          {std::to_string(s.workers), std::to_string(s.queue_depth),
           format_sig(s.wall_s, 3), format_sig(s.jobs_per_sec, 4),
           format_sig(s.metrics.latency_percentile(0.50), 4),
           format_sig(s.metrics.latency_percentile(0.95), 4),
           format_sig(s.metrics.latency_percentile(0.99), 4),
           std::to_string(s.metrics.batches),
           std::to_string(s.metrics.fuse_reuses)});
      auto& best = best_rate_by_workers[s.workers];
      if (s.jobs_per_sec > best) best = s.jobs_per_sec;
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render().c_str());

  const double at1 = best_rate_by_workers[1];
  const double at4 = best_rate_by_workers[4];
  if (at1 > 0.0) {
    std::printf("scaling: 1 -> 4 workers = %.2fx jobs/sec "
                "(%.1f -> %.1f)\n",
                at4 / at1, at1, at4);
  }
  return 0;
}
