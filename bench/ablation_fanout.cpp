// Ablation (§2.6.2): "Although the necessity of a fan-out (broadcast)
// requires more channels, i.e., up to Nobject channels, we can allocate
// the remaining channels to the fan-out." When one source feeds k sinks,
// the chains can be routed as k point-to-point claims or as one
// broadcast claim spanning all sinks — this bench measures both.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "csd/dynamic_csd.hpp"

namespace {

using namespace vlsip;
using namespace vlsip::csd;

struct FanoutWorkload {
  struct Group {
    Position source;
    std::vector<Position> sinks;
  };
  std::vector<Group> groups;
};

FanoutWorkload make_workload(Position n, int groups, int fanout,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  FanoutWorkload w;
  for (int g = 0; g < groups; ++g) {
    FanoutWorkload::Group grp;
    grp.source = static_cast<Position>(rng.uniform(n));
    for (int s = 0; s < fanout; ++s) {
      Position sink = static_cast<Position>(rng.uniform(n));
      if (sink == grp.source) sink = (sink + 1) % n;
      grp.sinks.push_back(sink);
    }
    w.groups.push_back(std::move(grp));
  }
  return w;
}

struct Outcome {
  ChannelId used = 0;
  std::uint32_t rejected = 0;
};

Outcome route_pairwise(Position n, const FanoutWorkload& w) {
  DynamicCsdNetwork net(CsdConfig{n, n});
  Outcome o;
  for (const auto& g : w.groups) {
    for (const auto sink : g.sinks) {
      if (!net.establish(g.source, sink)) ++o.rejected;
    }
  }
  o.used = net.used_channels();
  return o;
}

Outcome route_broadcast(Position n, const FanoutWorkload& w) {
  DynamicCsdNetwork net(CsdConfig{n, n});
  Outcome o;
  for (const auto& g : w.groups) {
    if (!net.establish_fanout(g.source, g.sinks)) ++o.rejected;
  }
  o.used = net.used_channels();
  return o;
}

}  // namespace

int main() {
  bench::banner("Ablation — Fan-out: Point-to-Point versus Broadcast Claims",
                "One source feeding k sinks, 12 groups over 64 objects, "
                "mean of 20 seeds");

  AsciiTable out({"Fan-out k", "Channels (pairwise)", "Channels (broadcast)",
                  "Saving", "Rejected (pairwise/broadcast)"});
  const Position n = 64;
  for (int fanout : {1, 2, 4, 8}) {
    double used_p = 0, used_b = 0, rej_p = 0, rej_b = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const auto w = make_workload(n, 12, fanout, seed * 101);
      const auto p = route_pairwise(n, w);
      const auto b = route_broadcast(n, w);
      used_p += p.used;
      used_b += b.used;
      rej_p += p.rejected;
      rej_b += b.rejected;
    }
    out.add_row({std::to_string(fanout), format_sig(used_p / 20, 3),
                 format_sig(used_b / 20, 3),
                 format_sig(used_p / std::max(used_b, 1.0), 3) + "x",
                 format_sig(rej_p / 20, 2) + " / " +
                     format_sig(rej_b / 20, 2)});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "A broadcast claim spans min..max of its sinks on ONE channel, so "
      "high fan-out datapaths consume far fewer channels than k separate "
      "point-to-point claims — the \"remaining channels allocated to the "
      "fan-out\" of §2.6.2. The cost: the broadcast span blocks that "
      "whole interval for other traffic on its channel.\n");
  return 0;
}
