// Object-cache behaviour (§2.4's CACHE-model heritage): hit rate versus
// capacity C for configuration streams of different locality — the
// Mattson curves that decide how large a fused processor must be.
#include <cstdio>
#include <vector>

#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "bench_util.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::arch;
  bench::banner("Object-Cache Hit Rate versus Capacity",
                "Mattson stack-distance curves of the configuration "
                "reference trace; 128 objects, 512 elements, mean of 10 "
                "seeds");

  const std::vector<std::size_t> capacities = {2, 4, 8, 16, 32, 64, 128};
  const std::vector<double> localities = {0.9, 0.5, 0.2, 0.0};

  std::vector<std::string> header = {"Capacity C"};
  for (double loc : localities) {
    header.push_back("loc " + format_sig(loc, 2));
  }
  AsciiTable out(header);

  for (const auto c : capacities) {
    std::vector<std::string> row = {std::to_string(c)};
    for (const auto loc : localities) {
      double sum = 0.0;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto trace =
            random_config_stream(128, 512, loc, seed * 7919)
                .reference_trace();
        sum += hit_rate(trace, c);
      }
      row.push_back(format_sig(sum / 10.0, 3));
    }
    out.add_row(row);
  }
  std::printf("%s\n", out.render().c_str());

  // The §2.4 design rule, checked: capacity >= max dependency distance
  // means no warm miss.
  const auto stream = random_config_stream(128, 512, 0.5, 99);
  const auto profile = analyze_dependencies(stream);
  const auto trace = stream.reference_trace();
  const double at_knee =
      hit_rate(trace, profile.min_capacity_for_no_warm_miss);
  std::printf("Design rule (§2.4): with C = max dependency distance = %zu "
              "the warm hit rate is %.1f%% (only the %zu cold loads "
              "miss).\n",
              profile.min_capacity_for_no_warm_miss, 100.0 * at_knee,
              profile.cold_misses);
  std::printf("High-locality streams saturate at tiny capacities — the "
              "reason a minimum AP of 16 objects is useful at all; random "
              "streams need C close to the working set.\n");
  return 0;
}
