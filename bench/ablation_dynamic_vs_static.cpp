// The headline ablation: dynamic CMP (the paper's model) versus a
// pre-fabricated static CMP on the same chip and the same job mix.
//
// §1: "a pre-fabricated chip multiprocessor (CMP) can not tolerate a
// wide range of applications ... A dynamic CMP has the potential to
// optimize the processor scale for running applications dynamically."
// This bench quantifies that: a mixed batch of small, medium and large
// datapaths scheduled FCFS on (a) processors fused to each job's
// requested size, and (b) fixed-size processors of 2/4/8 clusters.
#include <cstdio>
#include <vector>

#include "arch/datapath.hpp"
#include "bench_util.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/job_scheduler.hpp"
#include "scaling/scaling_manager.hpp"
#include "topology/s_topology.hpp"

namespace {

using namespace vlsip;

/// The job mix: stages -> objects -> clusters needed at 8 objects per
/// cluster. Small jobs need 1 cluster; large need 7.
std::vector<scaling::Job> make_mix() {
  std::vector<scaling::Job> jobs;
  int id = 0;
  auto add = [&](int stages, int copies) {
    for (int c = 0; c < copies; ++c) {
      scaling::Job j;
      j.name = "job" + std::to_string(id++) + "(s" +
               std::to_string(stages) + ")";
      j.program = arch::linear_pipeline_program(stages);
      j.inputs = {{"in", {arch::make_word_i(5)}}};
      j.expected_per_output = 1;
      // objects = 2*stages + 2; clusters at 8 objects/cluster.
      j.requested_clusters =
          (j.program.object_count() + 7) / 8;
      jobs.push_back(std::move(j));
    }
  };
  add(2, 6);    // small: 6 objects -> 1 cluster
  add(7, 4);    // medium: 16 objects -> 2 clusters
  add(27, 2);   // large: 56 objects -> 7 clusters
  return jobs;
}

scaling::ScheduleResult run_policy(bool dynamic, std::size_t fixed) {
  topology::STopologyFabric fabric(4, 4, topology::ClusterSpec{8, 8, 1});
  noc::NocFabric noc(4, 4);
  scaling::ScalingManager mgr(fabric, noc);
  scaling::SchedulerConfig cfg;
  cfg.dynamic_sizing = dynamic;
  cfg.fixed_clusters = fixed;
  scaling::JobScheduler sched(mgr, cfg);
  for (auto& j : make_mix()) sched.submit(std::move(j));
  return sched.run_all();
}

}  // namespace

int main() {
  bench::banner("Ablation — Dynamic CMP versus Static CMP",
                "12-job mix (6 small / 4 medium / 2 large) on a 16-cluster "
                "chip, 8 objects per cluster, FCFS");

  AsciiTable out({"Policy", "Makespan [cyc]", "Useful util", "Occupancy",
                  "Completed", "Failed", "Mean turnaround",
                  "Total faults"});
  struct Policy {
    const char* name;
    bool dynamic;
    std::size_t fixed;
  };
  const Policy policies[] = {
      {"dynamic (paper)", true, 0},
      {"static 2-cluster", false, 2},
      {"static 4-cluster", false, 4},
      {"static 8-cluster", false, 8},
  };
  for (const auto& p : policies) {
    const auto r = run_policy(p.dynamic, p.fixed ? p.fixed : 1);
    std::uint64_t faults = 0;
    for (const auto& o : r.outcomes) faults += o.faults;
    out.add_row({p.name, std::to_string(r.makespan),
                 format_sig(100.0 * r.utilisation(16), 3) + "%",
                 format_sig(100.0 * r.occupancy(16), 3) + "%",
                 std::to_string(r.completed), std::to_string(r.failed),
                 format_sig(r.mean_turnaround, 4),
                 std::to_string(faults)});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "Reading: fixed 2-cluster processors thrash on the large jobs "
      "(virtual-hardware faults dominate); fixed 8-cluster processors "
      "strand three quarters of the chip under small jobs; the dynamic "
      "CMP sizes each processor to its datapath and wins on both "
      "makespan and utilisation — the paper's premise, measured.\n");
  return 0;
}
