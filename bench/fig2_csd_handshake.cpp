// Regenerates the behaviour of Figure 2: the dynamic CSD network's
// request -> priority-encode -> grant/unchain -> ack handshake, with
// measured setup latency versus span and measured channel selection
// under contention.
#include <cstdio>

#include "bench_util.hpp"
#include "csd/dynamic_csd.hpp"
#include "csd/handshake.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::csd;
  bench::banner("Figure 2 — Dynamic CSD Network Handshake",
                "Setup latency = request propagation + priority encode + "
                "grant + ack; channel selection by sink-side priority "
                "encoders");

  AsciiTable lat({"Span [hops]", "Handshake latency [cycles]"});
  for (Position span : {1u, 2u, 4u, 8u, 16u, 32u, 63u}) {
    lat.add_row({std::to_string(span),
                 std::to_string(DynamicCsdNetwork::handshake_latency(0, span))});
  }
  std::printf("%s\n", lat.render().c_str());

  // Contention scenario: overlapping requests are granted distinct
  // channels in priority order; disjoint requests reuse channel 0.
  DynamicCsdNetwork net(CsdConfig{16, 8});
  AsciiTable grants({"Request (src->sink)", "Granted channel", "Note"});
  struct Req {
    Position s, t;
    const char* note;
  };
  const Req reqs[] = {
      {0, 5, "first claim"},
      {3, 9, "overlaps -> next channel"},
      {4, 6, "overlaps both -> third"},
      {10, 14, "disjoint -> reuses channel 0"},
      {6, 12, "overlaps ch1/ch2 tail -> lowest free"},
  };
  for (const auto& r : reqs) {
    const auto route = net.establish(r.s, r.t);
    grants.add_row({std::to_string(r.s) + "->" + std::to_string(r.t),
                    route ? std::to_string(net.routes()[*route].channel)
                          : "REJECTED",
                    r.note});
  }
  std::printf("%s\n", grants.render().c_str());
  std::printf("Network occupancy after the five grants:\n%s\n",
              net.render().c_str());
  std::printf("Used channels: %u of %u; utilisation %.1f%%\n\n",
              net.used_channels(), net.channel_count(),
              100.0 * net.utilisation());

  // Cycle-accurate handshake under contention: the request of a short
  // span reaches its sink encoder earlier and can steal the channel
  // from a longer request issued at the same cycle — an effect only the
  // per-hop simulation exposes.
  DynamicCsdNetwork scarce(CsdConfig{16, 1});
  HandshakeSimulator sim(scarce);
  const auto long_req = sim.issue(0, 12);
  const auto short_req = sim.issue(5, 7);
  sim.run_until_quiet(1000);
  AsciiTable race({"Request", "Span", "Outcome", "Finished at [cyc]"});
  auto describe = [&](const char* name, std::uint32_t id) {
    const auto& r = sim.request(id);
    race.add_row({name,
                  std::to_string(r.source < r.sink ? r.sink - r.source
                                                   : r.source - r.sink),
                  r.phase == HandshakePhase::kDone ? "granted" : "rejected",
                  std::to_string(r.finished_at)});
  };
  describe("long (0->12)", long_req);
  describe("short (5->7)", short_req);
  std::printf("Cycle-accurate contention on one channel (per-hop request "
              "propagation):\n%s", race.render().c_str());
  std::printf("The short request encodes first and wins — request "
              "propagation time, not issue order, decides the race.\n");
  return 0;
}
