// Regenerates Table 3: control-objects area requirement (λ², registers
// only, as the paper assesses).
#include <cstdio>

#include "bench_util.hpp"
#include "costmodel/areas.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::cost;
  bench::banner("Table 3 — Control Objects Area Requirement",
                "WSRF / CMH / RR / IRR / CFB register files, rebuilt from "
                "the per-register unit area");

  const auto t = control_objects_table();
  const ControlRegisterCounts counts;
  const int regs[] = {counts.wsrf, counts.cmh, counts.rr, counts.irr,
                      counts.cfb};
  AsciiTable out({"Module", "64b regs", "Area [lambda^2]"});
  for (std::size_t i = 0; i < t.modules.size(); ++i) {
    out.add_row({t.modules[i].name, format_sig(regs[i], 3),
                 format_pow10(t.modules[i].area_lambda2)});
  }
  out.add_separator();
  out.add_row({"Total (measured)", format_sig(counts.total(), 3),
               format_pow10(t.total())});
  out.add_row({"Total (paper)", "", format_pow10(t.paper_total)});
  out.add_row({"Delta", "", bench::pct_delta(t.total(), t.paper_total)});
  std::printf("%s\n", out.render().c_str());

  std::printf("Control overhead vs one minimum AP (16 PO + 16 MB): %.2f%%\n",
              100.0 * t.total() /
                  (16 * physical_object_table().total() +
                   16 * memory_block_table().total()));
  return 0;
}
