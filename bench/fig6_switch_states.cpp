// Regenerates the behaviour of Figure 6: programmable switches (b, c),
// the 3-D stacked option (d) and the processor state diagram (e) —
// switch-programming costs via wormhole worms and full state coverage.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/scaling_manager.hpp"
#include "scaling/state_machine.hpp"
#include "topology/s_topology.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::scaling;
  bench::banner("Figure 6 — Programmable Switches and Processor States",
                "Wormhole switch programming cost vs region size; state "
                "diagram transition coverage; die-stacked fold");

  // Switch programming cost: allocate regions of growing size and
  // measure the NoC cycles the configuration worms take.
  AsciiTable cost({"Region [clusters]", "Config packets", "NoC cycles",
                   "Cycles/cluster"});
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    topology::STopologyFabric fabric(8, 8, topology::ClusterSpec{4, 4, 1});
    noc::NocFabric noc(8, 8);
    ScalingManager mgr(fabric, noc);
    const auto before_packets = mgr.stats().config_packets;
    const auto before_cycles = mgr.stats().config_cycles;
    const auto p = mgr.allocate(n);
    if (p == kNoProc) continue;
    const auto packets = mgr.stats().config_packets - before_packets;
    const auto cycles = mgr.stats().config_cycles - before_cycles;
    cost.add_row({std::to_string(n), std::to_string(packets),
                  std::to_string(cycles),
                  format_sig(static_cast<double>(cycles) / n, 3)});
  }
  std::printf("%s\n", cost.render().c_str());

  // State diagram walk (fig. 6 e): release -> inactive -> active ->
  // sleep -> active -> inactive -> release, with protections tracked.
  ProcessorStateMachine fsm;
  AsciiTable states({"Step", "State", "R/W protected", "Others may write"});
  auto snap = [&](const char* step) {
    states.add_row({step, state_name(fsm.state()),
                    fsm.read_protected() ? "yes" : "no",
                    fsm.accepts_external_writes() ? "yes" : "no"});
  };
  snap("initial");
  fsm.allocate();
  snap("switches programmed");
  fsm.activate();
  snap("invoked (protections set)");
  fsm.sleep(1000);
  snap("sleeping (timer @1000)");
  fsm.wake();
  snap("timer expired");
  fsm.deactivate();
  snap("protections cleared");
  fsm.release();
  snap("released");
  std::printf("%s\n", states.render().c_str());
  std::printf("Transitions exercised: %llu (every edge of fig. 6 e).\n",
              static_cast<unsigned long long>(fsm.transitions()));

  // Die-stacked option (fig. 6 d): the fold crosses dies in one hop.
  topology::STopologyFabric stacked(4, 4, topology::ClusterSpec{}, 2);
  bool ok = true;
  for (std::size_t i = 1; i < stacked.cluster_count(); ++i) {
    ok = ok && stacked.are_neighbors(stacked.serpentine_at(i - 1),
                                     stacked.serpentine_at(i));
  }
  std::printf("Die-stacked 4x4x2: %zu clusters, fold stays single-hop "
              "adjacent across the die boundary: %s\n",
              stacked.cluster_count(), ok ? "yes" : "NO");
  return 0;
}
