// Ablation: compaction under fragmentation (§5: on a mesh "a host
// system has to manage the placement, routing, replacement, and
// defragmentation"; the S-topology's linear order makes compaction a
// one-dimensional sweep). A churning job mix fragments the chip; with
// compaction off, the FCFS head blocks on holes it cannot coalesce.
#include <cstdio>
#include <vector>

#include "arch/datapath.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/job_scheduler.hpp"
#include "scaling/scaling_manager.hpp"
#include "topology/s_topology.hpp"

namespace {

using namespace vlsip;

scaling::ScheduleResult run_mix(bool compaction, std::uint64_t seed,
                                std::size_t* compactions_out) {
  topology::STopologyFabric fabric(4, 4, topology::ClusterSpec{8, 8, 1});
  noc::NocFabric noc(4, 4);
  scaling::ScalingManager mgr(fabric, noc);
  scaling::SchedulerConfig cfg;
  cfg.compact_on_fragmentation = compaction;
  scaling::JobScheduler sched(mgr, cfg);

  // A churny mix: many small jobs of mixed runtimes punctuated by
  // full-width jobs that need a contiguous run.
  Xoshiro256 rng(seed);
  int id = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 5; ++i) {
      scaling::Job j;
      const int stages = 1 + static_cast<int>(rng.uniform(6));
      j.name = "small" + std::to_string(id++);
      j.program = arch::linear_pipeline_program(stages);
      j.inputs = {{"in", {arch::make_word_i(1)}}};
      j.requested_clusters = 1 + rng.uniform(3);
      sched.submit(std::move(j));
    }
    scaling::Job big;
    big.name = "wide" + std::to_string(id++);
    big.program = arch::linear_pipeline_program(8);
    big.inputs = {{"in", {arch::make_word_i(1)}}};
    big.requested_clusters = 10;  // needs a long contiguous run
    sched.submit(std::move(big));
  }
  const auto r = sched.run_all();
  if (compactions_out != nullptr) *compactions_out = r.compactions;
  return r;
}

}  // namespace

int main() {
  bench::banner("Ablation — Compaction under Fragmentation",
                "24-job churn mix with 10-cluster wide jobs on a "
                "16-cluster chip, FCFS, 5 seeds");

  AsciiTable out({"Seed", "Makespan (no compaction)",
                  "Makespan (compaction)", "Speedup", "Compactions",
                  "Completed (off/on)"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::size_t compactions = 0;
    const auto off = run_mix(false, seed, nullptr);
    const auto on = run_mix(true, seed, &compactions);
    out.add_row(
        {std::to_string(seed), std::to_string(off.makespan),
         std::to_string(on.makespan),
         format_sig(static_cast<double>(off.makespan) /
                        static_cast<double>(on.makespan),
                    3) +
             "x",
         std::to_string(compactions),
         std::to_string(off.completed) + "/" + std::to_string(on.completed)});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "Without compaction the wide jobs wait for natural coalescing (or "
      "fail when holes never line up); a relocation sweep packs the "
      "serpentine and admits them immediately. The paper's S-topology "
      "makes this cheap: region state moves with the processor, only "
      "switch programming travels the NoC.\n");
  return 0;
}
