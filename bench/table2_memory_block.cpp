// Regenerates Table 2: memory-block area requirement (λ²).
#include <cstdio>

#include "bench_util.hpp"
#include "costmodel/areas.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::cost;
  bench::banner("Table 2 — Memory Block Area Requirement",
                "Module inventory of one memory block (64 KB SRAM + "
                "ALU-I/II + registers), areas in lambda^2");

  const auto t = memory_block_table();
  AsciiTable out({"Module", "Process [um]", "Area [lambda^2]"});
  for (const auto& m : t.modules) {
    out.add_row({m.name, format_sig(m.process_um, 3),
                 format_pow10(m.area_lambda2)});
  }
  out.add_separator();
  out.add_row({"Total (measured)", "", format_pow10(t.total())});
  out.add_row({"Total (paper)", "", format_pow10(t.paper_total)});
  out.add_row({"Delta", "", bench::pct_delta(t.total(), t.paper_total)});
  std::printf("%s\n", out.render().c_str());

  const double ratio = t.total() / physical_object_table().total();
  std::printf("Memory block / physical object area ratio: %.2f "
              "(paper: \"approximately twice\", the 1:2 ratio of section 4.1)\n",
              ratio);
  return 0;
}
