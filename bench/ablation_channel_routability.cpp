// Ablation (§2.6.2): "A reduction in the number of channels must be
// carefully performed ... the number of channels determines the
// routability. The routability is a trade off for the area requirement."
// Sweeps the provisioned channel count and measures chaining success.
#include <cstdio>

#include "bench_util.hpp"
#include "csd/csd_simulator.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::csd;
  bench::banner("Ablation — Channel Count versus Routability",
                "Random datapath chaining success rate as channels shrink "
                "from N to N/16 (20 seeds per point)");

  const std::uint32_t n = 128;
  const std::vector<std::uint32_t> channels = {128, 64, 32, 16, 8, 4, 2};

  AsciiTable out({"Channels", "Area share", "Success @loc=0.0",
                  "Success @loc=0.5", "Success @loc=0.9"});
  const auto s0 = routability_sweep(n, channels, 0.0, 20, 1);
  const auto s5 = routability_sweep(n, channels, 0.5, 20, 2);
  const auto s9 = routability_sweep(n, channels, 0.9, 20, 3);
  for (std::size_t i = 0; i < channels.size(); ++i) {
    out.add_row({std::to_string(channels[i]),
                 format_sig(static_cast<double>(channels[i]) / n, 3),
                 format_sig(s0[i].success_rate, 4),
                 format_sig(s5[i].success_rate, 4),
                 format_sig(s9[i].success_rate, 4)});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "N/2 channels route the random datapath losslessly (the fig. 3 "
      "claim); high-locality datapaths survive far deeper cuts — the "
      "area/routability trade-off the paper leaves to the processor "
      "architect, quantified.\n");
  return 0;
}
