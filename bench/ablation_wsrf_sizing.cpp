// Ablation: why 40 WSRF registers (Table 3)?
//
// The WSRF centrally holds the working set's tags; a request whose tag
// was retired falls back to an array search (extra cycles). This bench
// sweeps the WSRF capacity against workloads of different locality and
// measures array searches, retirements and total configuration cycles —
// plus the Denning working-set curve that predicts the knee.
#include <cstdio>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "bench_util.hpp"

namespace {

using namespace vlsip;

arch::Program stream_program(double locality, std::uint64_t seed) {
  // 64 objects, 256 elements, buffer opcodes (configuration cost only).
  arch::Program p;
  p.stream = arch::random_config_stream(64, 256, locality, seed);
  p.library.resize(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    p.library[i].id = i;
    p.library[i].config.opcode = arch::Opcode::kBuff;
  }
  return p;
}

}  // namespace

int main() {
  bench::banner("Ablation — WSRF Capacity versus Array Searches",
                "Central tag file sizing: Table 3 provisions 40 64-bit "
                "registers; the Denning working-set curve says why");

  // The working-set curve of the workload (ref [9]).
  const auto trace = stream_program(0.5, 77).stream.reference_trace();
  std::printf("Denning working-set curve (locality 0.5, 64 objects):\n");
  AsciiTable ws({"Window [refs]", "Mean working set [objects]"});
  for (std::size_t w : {8u, 16u, 32u, 40u, 64u, 128u, 256u}) {
    ws.add_row({std::to_string(w),
                format_sig(arch::mean_working_set(trace, w), 3)});
  }
  std::printf("%s\n", ws.render().c_str());

  AsciiTable out({"WSRF regs", "Array searches (loc 0.9)", "(loc 0.5)",
                  "(loc 0.0)", "Config cycles (loc 0.5)"});
  for (int regs : {8, 16, 24, 40, 64, 128}) {
    std::vector<std::string> row = {std::to_string(regs)};
    std::uint64_t cycles_mid = 0;
    for (double loc : {0.9, 0.5, 0.0}) {
      ap::ApConfig cfg;
      cfg.capacity = 64;
      cfg.memory_blocks = 4;
      cfg.wsrf_capacity = regs;
      ap::AdaptiveProcessor ap(cfg);
      const auto stats = ap.configure(stream_program(loc, 77));
      row.push_back(std::to_string(stats.array_searches));
      if (loc == 0.5) cycles_mid = stats.cycles;
    }
    row.push_back(std::to_string(cycles_mid));
    out.add_row(row);
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "Reading: below ~2x the mean working set, retired tags force array "
      "searches and configuration slows; 40 registers cover the "
      "moderate-locality working set the adaptive processor targets, "
      "with diminishing returns beyond — Table 3's provisioning.\n");
  return 0;
}
