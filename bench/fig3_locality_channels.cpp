// Regenerates Figure 3: locality versus number of used channels, for
// Nobject in {16, 32, 64, 128, 256} (one-source model).
//
// The paper's y-axis is "number of used channels" in a random datapath
// configuration replayed on the dynamic CSD network with Nobject
// channels provisioned; the x-axis sweeps the locality knob of the ID
// generator (left = higher locality). The claims under test:
//   * Nobject channels are never used;
//   * Nobject/2 channels are sufficient for the random datapath;
//   * higher locality uses fewer channels.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "csd/csd_simulator.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::csd;
  bench::banner("Figure 3 — Locality versus Number of Used Channels",
                "Functional CSD simulation, random datapath configuration, "
                "one-source model, mean peak over 20 seeds");

  const std::vector<double> localities = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5,
                                          0.4, 0.3, 0.2, 0.1, 0.0};
  const std::vector<std::uint32_t> sizes = {16, 32, 64, 128, 256};

  std::vector<std::string> header = {"Locality (high -> low)"};
  for (auto n : sizes) header.push_back("N=" + std::to_string(n));
  AsciiTable out(header);

  std::vector<std::vector<LocalityCurvePoint>> curves;
  curves.reserve(sizes.size());
  for (auto n : sizes) {
    curves.push_back(locality_curve(n, localities, 20, 0xF16'3ull));
  }
  for (std::size_t li = 0; li < localities.size(); ++li) {
    std::vector<std::string> row = {format_sig(localities[li], 2)};
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      row.push_back(format_sig(curves[si][li].mean_peak_channels, 3));
    }
    out.add_row(row);
  }
  std::printf("%s\n", out.render().c_str());

  std::printf("Claims checked (paper section 2.6.2):\n");
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    double worst = 0;
    double mean_random = curves[si].back().mean_peak_channels;
    for (const auto& pt : curves[si]) {
      if (pt.max_peak_channels > worst) worst = pt.max_peak_channels;
    }
    std::printf(
        "  N=%-4u random-datapath mean peak = %5.1f (N/2 = %3u) %s   "
        "worst single seed = %3.0f\n",
        sizes[si], mean_random, sizes[si] / 2,
        mean_random <= sizes[si] / 2.0 ? "<= N/2: HOLDS" : "exceeds N/2",
        worst);
  }
  std::printf(
      "N channels are never needed; N/2 suffices for the typical random "
      "datapath (the paper's claim). Individual worst-case seeds at "
      "small N can exceed N/2 by a few channels — the greedy sink-side "
      "priority encoder is not an optimal interval colouring.\n");
  std::printf(
      "Shape: channel usage falls monotonically with locality; the "
      "left-most (most local) points use only a handful of channels, "
      "matching the paper's left-most plots.\n");
  return 0;
}
