// Ablation (§5 related-work comparison): latency/bisection scaling of
// ring, mesh and folded-linear (S-topology stack) interconnects, plus a
// measured NoC latency point for the mesh.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "noc/noc_fabric.hpp"
#include "topology/baselines.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::topology;
  bench::banner("Ablation — Ring vs Mesh vs Folded Linear Array",
                "Analytic mean hops / diameter / bisection; measured mesh "
                "NoC latency (uniform random traffic)");

  AsciiTable out({"Nodes", "Ring mean hops", "Mesh mean hops",
                  "Linear mean hops", "Ring diam", "Mesh diam",
                  "Linear diam", "Ring bisec", "Mesh bisec"});
  for (std::size_t side : {4u, 8u, 16u, 32u}) {
    const std::size_t n = side * side;
    RingTopology ring(n);
    MeshTopology mesh(side, side);
    LinearTopology line(n);
    out.add_row({std::to_string(n), format_sig(ring.mean_hops(), 4),
                 format_sig(mesh.mean_hops(), 4),
                 format_sig(line.mean_hops(), 4),
                 std::to_string(ring.diameter()),
                 std::to_string(mesh.diameter()),
                 std::to_string(line.diameter()),
                 std::to_string(ring.bisection_links()),
                 std::to_string(mesh.bisection_links())});
  }
  std::printf("%s\n", out.render().c_str());

  // Measured mesh latency on the cycle-level NoC.
  AsciiTable meas({"Mesh", "Packets", "Mean latency [cyc]",
                   "Max latency [cyc]"});
  for (int side : {4, 8}) {
    noc::NocFabric fabric(side, side);
    Xoshiro256 rng(7);
    const int packets = side * side * 4;
    for (int i = 0; i < packets; ++i) {
      noc::Packet p;
      p.src_x = static_cast<std::uint16_t>(rng.uniform(side));
      p.src_y = static_cast<std::uint16_t>(rng.uniform(side));
      p.dst_x = static_cast<std::uint16_t>(rng.uniform(side));
      p.dst_y = static_cast<std::uint16_t>(rng.uniform(side));
      p.payload = {1, 2};
      fabric.inject(p);
    }
    fabric.run_until_drained(1000000);
    const auto stats = fabric.latency_stats();
    meas.add_row({std::to_string(side) + "x" + std::to_string(side),
                  std::to_string(packets), format_sig(stats.mean(), 4),
                  format_sig(stats.max(), 4)});
  }
  std::printf("%s\n", meas.render().c_str());

  std::printf(
      "Section 5's observations hold: ring latency grows linearly with "
      "cores (scalable only for small counts); the mesh scales with "
      "abundant bisection; the linear stack has the worst global latency "
      "but needs no placement management — and rings are constructible "
      "on the S-topology (see fig5_rings).\n");
  return 0;
}
