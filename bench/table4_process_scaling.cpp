// Regenerates Table 4: number of APs, wire delay and peak GOPS across
// process nodes 2010–2015 on a 1 cm² die — the paper's headline
// evaluation, printed paper-vs-measured per row.
#include <cstdio>

#include "bench_util.hpp"
#include "costmodel/energy.hpp"
#include "costmodel/vlsi_model.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::cost;
  bench::banner(
      "Table 4 — Number of APs, Wire Delay, and Peak GOPS",
      "AP tile = 16 physical objects + 16 memory blocks + control; die = "
      "1 cm^2; lambda = 0.4 x feature; delay = rc x (sqrt(AP area))^2");

  const auto rows = scaling_table();
  const auto& paper = paper_table4();

  AsciiTable out({"Year", "Process [nm]", "#APs (paper)", "#APs (model)",
                  "Delay ns (paper)", "Delay ns (model)", "GOPS (paper)",
                  "GOPS (model)", "GOPS delta"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out.add_row({std::to_string(rows[i].year),
                 format_sig(rows[i].feature_nm, 3),
                 std::to_string(paper[i].available_aps),
                 std::to_string(rows[i].available_aps),
                 format_sig(paper[i].wire_delay_ns, 3),
                 format_sig(rows[i].wire_delay_ns, 3),
                 format_sig(paper[i].peak_gops, 3),
                 format_sig(rows[i].peak_gops, 3),
                 bench::pct_delta(rows[i].peak_gops, paper[i].peak_gops)});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf("Intermediates per node (model):\n");
  AsciiTable mid({"Year", "AP area [cm^2]", "Wire length [mm]",
                  "Clock [GHz]"});
  for (const auto& r : rows) {
    mid.add_row({std::to_string(r.year), format_sig(r.ap_area_cm2, 4),
                 format_sig(r.wire_length_mm, 4),
                 format_sig(r.clock_ghz, 4)});
  }
  std::printf("%s\n", mid.render().c_str());

  // Energy efficiency per node, from the live EnergyModel's per-event
  // femtojoule tables (docs/ENERGY.md) under its reference op mix.
  // Appended after the paper tables so Table 4's own columns stay
  // byte-identical to earlier revisions.
  std::printf("Energy efficiency per node (model):\n");
  AsciiTable eff({"Year", "Process [nm]", "Peak GOPS", "GOPS/W"});
  for (const auto& r : rows) {
    eff.add_row({std::to_string(r.year), format_sig(r.feature_nm, 3),
                 format_sig(r.peak_gops, 3),
                 format_sig(gops_per_watt(r.year), 4)});
  }
  std::printf("%s\n", eff.render().c_str());

  const auto cmp = gpu_comparison(rows[2], ApComposition{});
  std::printf(
      "GPU comparison at the 2012 node (section 4.1): the VLSI processor "
      "fields %.0f 64-bit FPUs per cm^2; a GPU-class layout at 3x the "
      "area per FPU would field ~%.0f — \"we obtained three-times number "
      "of FPUs and memory blocks on this area size\".\n",
      cmp.vlsi_fpus, cmp.gpu_equivalent_fpus);
  std::printf(
      "Headline: %.0f GOPS of pure 64-bit operations in 1 cm^2 at the "
      "2012 node (paper: 276 GOPS), without SIMD or fused operations.\n",
      rows[2].peak_gops);
  return 0;
}
