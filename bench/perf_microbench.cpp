// Google-benchmark micro-suite: simulator throughput for the hot paths
// (CSD routing, stack shifts, pipeline configuration, dataflow execution,
// NoC stepping). These guard against performance regressions in the
// simulator itself; they make no paper claims.
#include <benchmark/benchmark.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "common/activity_set.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "csd/handshake.hpp"
#include "lang/compiler.hpp"
#include "arch/optimizer.hpp"
#include "scaling/scaling_manager.hpp"
#include "csd/csd_simulator.hpp"
#include "csd/dynamic_csd.hpp"
#include "fault/fault_plan.hpp"
#include "noc/noc_fabric.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"
#include "topology/s_topology.hpp"

namespace {

using namespace vlsip;

void BM_CsdEstablishRelease(benchmark::State& state) {
  const auto n = static_cast<csd::Position>(state.range(0));
  csd::DynamicCsdNetwork net(csd::CsdConfig{n, n});
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const auto a = static_cast<csd::Position>(rng.uniform(n));
    auto b = static_cast<csd::Position>(rng.uniform(n));
    if (a == b) b = (b + 1) % n;
    const auto r = net.establish(a, b);
    if (r) net.release(*r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsdEstablishRelease)->Arg(64)->Arg(256)->Arg(1024);

void BM_CsdFunctionalRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  csd::FunctionalRunConfig cfg;
  cfg.n_objects = n;
  cfg.n_channels = n;
  cfg.n_elements = n;
  cfg.locality = 0.3;
  for (auto _ : state) {
    cfg.seed++;
    benchmark::DoNotOptimize(csd::run_functional_csd(cfg));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CsdFunctionalRun)->Arg(64)->Arg(256);

void BM_StackDistances(benchmark::State& state) {
  const auto stream = arch::random_config_stream(
      256, static_cast<std::size_t>(state.range(0)), 0.4, 9);
  const auto trace = stream.reference_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::stack_distances(trace));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_StackDistances)->Arg(1000)->Arg(10000);

void BM_PipelineConfigure(benchmark::State& state) {
  const auto program =
      arch::linear_pipeline_program(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ap::ApConfig cfg;
    cfg.capacity = 64;
    cfg.memory_blocks = 8;
    ap::AdaptiveProcessor ap(cfg);
    benchmark::DoNotOptimize(ap.configure(program));
  }
  state.SetItemsProcessed(state.iterations() * program.stream.size());
}
BENCHMARK(BM_PipelineConfigure)->Arg(8)->Arg(24);

void BM_DataflowExecution(benchmark::State& state) {
  const auto program =
      arch::linear_pipeline_program(static_cast<int>(state.range(0)));
  ap::ApConfig cfg;
  cfg.capacity = 128;
  cfg.memory_blocks = 8;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(program);
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    ap.feed("in", arch::make_word_i(1));
    const auto r = ap.run(++tokens, 1u << 22);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataflowExecution)->Arg(4)->Arg(16);

void BM_NocRandomTraffic(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Xoshiro256 rng(3);
  for (auto _ : state) {
    noc::NocFabric fabric(side, side);
    for (int i = 0; i < side * side; ++i) {
      noc::Packet p;
      p.src_x = static_cast<std::uint16_t>(rng.uniform(side));
      p.src_y = static_cast<std::uint16_t>(rng.uniform(side));
      p.dst_x = static_cast<std::uint16_t>(rng.uniform(side));
      p.dst_y = static_cast<std::uint16_t>(rng.uniform(side));
      p.payload = {1, 2, 3};
      fabric.inject(p);
    }
    fabric.run_until_drained(1u << 20);
    benchmark::DoNotOptimize(fabric.delivered().size());
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_NocRandomTraffic)->Arg(4)->Arg(8);

void BM_SerpentineFold(benchmark::State& state) {
  topology::STopologyFabric f(32, 32, topology::ClusterSpec{});
  for (auto _ : state) {
    std::size_t sum = 0;
    for (topology::ClusterId id = 0; id < f.cluster_count(); ++id) {
      sum += f.serpentine_index(id);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SerpentineFold);

void BM_HandshakeSimulation(benchmark::State& state) {
  for (auto _ : state) {
    csd::DynamicCsdNetwork net(csd::CsdConfig{64, 32});
    csd::HandshakeSimulator sim(net);
    for (csd::Position i = 0; i < 30; ++i) {
      sim.issue(i, static_cast<csd::Position>(63 - i));
    }
    sim.run_until_quiet(10000);
    benchmark::DoNotOptimize(sim.granted());
  }
  state.SetItemsProcessed(state.iterations() * 30);
}
BENCHMARK(BM_HandshakeSimulation);

void BM_LangCompile(benchmark::State& state) {
  const std::string source =
      "input x float\n"
      "rec y = 0.9 * delay(y, 0.0) + 0.1 * x\n"
      "a = y * y + 1.5\n"
      "b = a - y / 2.0\n"
      "output z = b * 3.0\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::compile(source));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LangCompile);

void BM_StreamOptimizer(benchmark::State& state) {
  const auto stream = arch::random_config_stream(
      64, static_cast<std::size_t>(state.range(0)), 0.2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::optimize_stream_order(stream));
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_StreamOptimizer)->Arg(64)->Arg(256);

void BM_Compaction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    topology::STopologyFabric fabric(8, 8, topology::ClusterSpec{4, 4, 1});
    noc::NocFabric noc(8, 8);
    scaling::ScalingManager mgr(fabric, noc);
    std::vector<scaling::ProcId> procs;
    for (int i = 0; i < 16; ++i) procs.push_back(mgr.allocate(4));
    for (int i = 0; i < 16; i += 2) mgr.release(procs[i]);
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.compact());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Compaction);

void BM_FarmThroughput(benchmark::State& state) {
  // End-to-end farm service path: deterministic single-worker farm
  // serving a fixed synthetic manifest (fuse + configure + execute +
  // split per job).
  runtime::SyntheticSpec spec;
  spec.jobs = 16;
  spec.seed = 11;
  const auto jobs = runtime::synthetic_jobs(spec);
  for (auto _ : state) {
    runtime::FarmConfig cfg;
    cfg.deterministic = true;
    cfg.keep_outcome_log = false;
    runtime::ChipFarm farm(cfg);
    for (const auto& job : jobs) (void)farm.submit(job);
    farm.drain();
    benchmark::DoNotOptimize(farm.metrics().served());
    farm.shutdown();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_FarmThroughput);

void BM_ChaosFarmThroughput(benchmark::State& state) {
  // The same farm under a replayed fault plan with self-healing on:
  // covers fault classification, retries and chip replacement.
  runtime::SyntheticSpec spec;
  spec.jobs = 16;
  spec.seed = 11;
  const auto jobs = runtime::synthetic_jobs(spec);
  fault::FaultPlanSpec fs;
  fs.seed = 5;
  fs.events = 12;
  fs.horizon = spec.jobs;
  const auto plan = fault::random_fault_plan(fs);
  for (auto _ : state) {
    runtime::FarmConfig cfg;
    cfg.deterministic = true;
    cfg.keep_outcome_log = false;
    cfg.fault_tolerance.enabled = true;
    cfg.fault_tolerance.plan = plan;
    runtime::ChipFarm farm(cfg);
    for (const auto& job : jobs) (void)farm.submit(job);
    farm.drain();
    benchmark::DoNotOptimize(farm.metrics().served());
    farm.shutdown();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_ChaosFarmThroughput);

// ---- ActivitySet / SIMD scan family ---------------------------------------
//
// Scan regressions visible without a whole-chip run. Every benchmark
// comes in a scalar and a SIMD flavour via the runtime force-scalar
// switch (range(1): 0 = dispatched, 1 = forced scalar), and the drain
// benchmarks in a sparse and a dense occupancy flavour — the two ends
// the engine lives between.

/// Drains n-id sets with `active` members evenly spread. items/sec is
/// ids visited, so sparse and dense flavours are directly comparable.
void BM_ActivitySetDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto active = static_cast<std::size_t>(state.range(1));
  simd::set_force_scalar(state.range(2) != 0);
  ActivitySet set(n);
  const std::size_t stride = n / active;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < active; ++i) {
      set.insert(static_cast<std::uint32_t>(i * stride));
    }
    state.ResumeTiming();
    std::uint64_t sum = 0;
    set.drain_in_order([&sum](std::uint32_t id) { sum += id; });
    benchmark::DoNotOptimize(sum);
  }
  simd::set_force_scalar(false);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(active));
}
// 65536 ids ≈ a 1024-cluster chip's object space. {sparse 16, dense
// 65536} x {simd, scalar}.
BENCHMARK(BM_ActivitySetDrain)
    ->Args({65536, 16, 0})
    ->Args({65536, 16, 1})
    ->Args({65536, 65536, 0})
    ->Args({65536, 65536, 1});

/// The raw summary-scan kernel: first hit at the end of a zero buffer.
void BM_SimdFirstNonzeroWord(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  simd::set_force_scalar(state.range(1) != 0);
  std::vector<std::uint64_t> words(n, 0);
  words.back() = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::first_nonzero_word(words.data(), n));
  }
  simd::set_force_scalar(false);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimdFirstNonzeroWord)->Args({1024, 0})->Args({1024, 1});

/// CSD span-occupancy probe over a mostly-free 1024-position channel
/// array — the establish() hot path at Epiphany-V geometry.
void BM_CsdSpanOccupancy(benchmark::State& state) {
  const auto n = static_cast<csd::Position>(state.range(0));
  simd::set_force_scalar(state.range(1) != 0);
  csd::DynamicCsdNetwork net(csd::CsdConfig{n, 8});
  // One established route so the scan has structure to step around.
  (void)net.establish(0, static_cast<csd::Position>(n / 2));
  for (auto _ : state) {
    const auto r = net.establish(1, static_cast<csd::Position>(n - 1));
    if (r) net.release(*r);
  }
  simd::set_force_scalar(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsdSpanOccupancy)->Args({1024, 0})->Args({1024, 1});

void BM_ObjectSpaceChurn(benchmark::State& state) {
  ap::ObjectSpace space(64);
  Xoshiro256 rng(5);
  for (arch::ObjectId id = 0; id < 64; ++id) space.insert_top(id);
  for (auto _ : state) {
    const auto id = static_cast<arch::ObjectId>(rng.uniform(64));
    space.promote(id);
    benchmark::DoNotOptimize(space.position_of(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectSpaceChurn);

}  // namespace
