// Ablation (§2.6.1): the basic AP's global interconnection network needs
// channels proportional to the object count; the dynamic CSD network's
// segment reuse keeps the needed channel count near N/2 and the *used*
// count far lower at any locality — this bench measures both sides.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "arch/datapath.hpp"
#include "bench_util.hpp"
#include "csd/csd_simulator.hpp"
#include "csd/global_network.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::csd;
  bench::banner("Ablation — Global Network versus Dynamic CSD",
                "Channels needed to chain a random datapath, and the wire "
                "cost of provisioning them");

  AsciiTable out({"N objects", "Global: channels needed",
                  "CSD: peak channels used", "CSD saving",
                  "Global wire segs @N ch", "CSD wire segs @N/2 ch"});
  for (std::uint32_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    // Global baseline: every concurrently live chain consumes a whole
    // channel. Count concurrent chains of the same workload.
    const auto stream =
        arch::random_config_stream(n, n, /*locality=*/0.0, /*seed=*/42);
    GlobalNetwork global(n, n);
    std::uint32_t global_needed = 0;
    {
      // Chains replace per sink like the CSD replay; count the peak of
      // concurrently held channels.
      std::vector<std::optional<std::uint32_t>> sink_channel(n);
      std::uint32_t live = 0;
      for (const auto& e : stream.elements()) {
        const auto sink = e.sink % n;
        if (sink_channel[sink]) {
          global.release(*sink_channel[sink]);
          sink_channel[sink].reset();
          --live;
        }
        const auto c = global.establish(e.sources[0] % n, sink);
        if (c) {
          sink_channel[sink] = c;
          ++live;
          global_needed = std::max(global_needed, live);
        }
      }
    }
    const auto csd = replay_stream(stream, n, n, true);
    out.add_row(
        {std::to_string(n), std::to_string(global_needed),
         std::to_string(csd.peak_used_channels),
         format_sig(static_cast<double>(global_needed) /
                        std::max<std::uint32_t>(1, csd.peak_used_channels),
                    3) +
             "x",
         std::to_string(static_cast<std::size_t>(n) * (n - 1)),
         std::to_string(static_cast<std::size_t>(n / 2) * (n - 1))});
  }
  std::printf("%s\n", out.render().c_str());
  std::printf(
      "The global network must provision one end-to-end channel per live "
      "chain (linear growth, section 2.6: \"suitable only for a small "
      "number of physical objects\"); the dynamic CSD network reuses "
      "disjoint spans, so the same workload fits in far fewer channels "
      "and half the provisioned wire area.\n");
  return 0;
}
