// Ablation: the stack discipline itself (§2.4). The paper's placement
// re-sorts on every hit, making physical order equal recency order
// (true LRU replacement for free). The baseline keeps insertion order
// (FIFO eviction, no promotion shifts). Same workloads, measured hit
// rates and configuration cycles.
#include <cstdio>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "bench_util.hpp"

namespace {

using namespace vlsip;

arch::Program wrap(std::uint32_t objects, const arch::ConfigStream& s) {
  arch::Program p;
  p.stream = s;
  p.library.resize(objects);
  for (std::uint32_t i = 0; i < objects; ++i) {
    p.library[i].id = i;
    p.library[i].config.opcode = arch::Opcode::kBuff;
  }
  return p;
}

ap::ConfigStats run(bool promote, double locality, std::uint64_t seed) {
  ap::ApConfig cfg;
  cfg.capacity = 16;
  cfg.memory_blocks = 4;
  cfg.pipeline.promote_on_hit = promote;
  ap::AdaptiveProcessor ap(cfg);
  return ap.configure(
      wrap(64, arch::random_config_stream(64, 256, locality, seed)));
}

}  // namespace

int main() {
  bench::banner("Ablation — LRU Stack versus FIFO Stack",
                "Promotion-on-hit (the paper's stack shift sort) vs "
                "insertion-order placement; 64 objects, C = 16, mean of "
                "10 seeds");

  AsciiTable out({"Locality", "Hit rate LRU", "Hit rate FIFO",
                  "Cycles LRU", "Cycles FIFO", "LRU advantage"});
  for (double loc : {0.9, 0.7, 0.5, 0.3, 0.0}) {
    double hits_lru = 0, hits_fifo = 0;
    std::uint64_t cyc_lru = 0, cyc_fifo = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto a = run(true, loc, seed * 31);
      const auto b = run(false, loc, seed * 31);
      hits_lru += a.hit_rate();
      hits_fifo += b.hit_rate();
      cyc_lru += a.cycles;
      cyc_fifo += b.cycles;
    }
    out.add_row({format_sig(loc, 2), format_sig(hits_lru / 10, 3),
                 format_sig(hits_fifo / 10, 3),
                 std::to_string(cyc_lru / 10),
                 std::to_string(cyc_fifo / 10),
                 bench::pct_delta(static_cast<double>(cyc_fifo),
                                  static_cast<double>(cyc_lru)) +
                     " cycles"});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "The promotion shifts cost one cycle per hit but keep the hot "
      "working set on top: at moderate locality LRU converts enough "
      "misses (8-cycle library loads) into hits to win ~50%% of the "
      "configuration time — the reason §2.4 builds the replacement ON "
      "the placement mechanism. At the extremes the policies tie on hit "
      "rate (chain-like or uniformly random references) and FIFO's "
      "shift-free hits win slightly — the trade-off a processor "
      "architect would tune per §2.7.\n");
  return 0;
}
