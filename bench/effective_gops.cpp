// Peak versus effective performance (§2: "The larger scale of a
// many-core processor will easily result in a larger gap between the
// peak and effective performances").
//
// Table 4's GOPS is a *peak*: every physical object completes one
// chained operation per global-wire traversal. This bench runs real
// datapaths on the cycle simulator, measures operations per cycle per
// AP, and converts them with the cost model's clock at the 2012 node —
// quantifying the gap the paper warns about and showing how streaming
// closes it.
#include <cstdio>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "bench_util.hpp"
#include "costmodel/vlsi_model.hpp"

namespace {

using namespace vlsip;

struct Measured {
  const char* name;
  double ops_per_cycle;
  std::uint64_t faults;
};

Measured run_streaming_fir(int samples) {
  // 4-tap FIR: 14 objects — fits one minimum AP (C = 16).
  ap::AdaptiveProcessor ap(ap::ApConfig{});
  const auto p = arch::fir_program({0.25, 0.25, 0.25, 0.25});
  ap.configure(p);
  for (int i = 0; i < samples; ++i) {
    ap.feed("x", arch::make_word_f(i));
  }
  const auto exec = ap.run_streaming(samples, 1u << 22);
  return Measured{"streaming FIR (fits C)",
                  static_cast<double>(exec.total_ops()) /
                      static_cast<double>(exec.cycles),
                  exec.faults};
}

Measured run_scalar_chain(int tokens) {
  ap::AdaptiveProcessor ap(ap::ApConfig{});
  const auto p = arch::linear_pipeline_program(6);  // 14 objects
  ap.configure(p);
  for (int i = 0; i < tokens; ++i) ap.feed("in", arch::make_word_i(i));
  const auto exec = ap.run(tokens, 1u << 22);
  return Measured{"scalar pipeline (fits C)",
                  static_cast<double>(exec.total_ops()) /
                      static_cast<double>(exec.cycles),
                  exec.faults};
}

Measured run_virtual_hw(int tokens) {
  ap::AdaptiveProcessor ap(ap::ApConfig{});          // C = 16
  const auto p = arch::linear_pipeline_program(12);  // 26 objects > C
  ap.configure(p);
  for (int i = 0; i < tokens; ++i) ap.feed("in", arch::make_word_i(i));
  const auto exec = ap.run(tokens, 1u << 22);
  return Measured{"oversized scalar (virtual hw)",
                  static_cast<double>(exec.total_ops()) /
                      static_cast<double>(exec.cycles),
                  exec.faults};
}

}  // namespace

int main() {
  bench::banner("Peak versus Effective GOPS",
                "Cycle-measured operations per cycle, priced with the "
                "Table 4 clock at the 2012 node (36 nm, 1 cm^2, 19-21 "
                "APs)");

  const auto node = cost::node_for_year(2012);
  const auto row = cost::evaluate_node(node, cost::ApComposition{});
  const double peak_per_ap = 16.0;  // one op per physical object per cycle

  const std::vector<Measured> results = {
      run_streaming_fir(256),
      run_scalar_chain(256),
      run_virtual_hw(64),
  };

  AsciiTable out({"Workload", "Ops/cycle/AP", "Utilisation",
                  "Chip effective GOPS", "Faults"});
  for (const auto& m : results) {
    const double chip_gops =
        m.ops_per_cycle * row.clock_ghz * row.available_aps;
    out.add_row({m.name, format_sig(m.ops_per_cycle, 3),
                 format_sig(100.0 * m.ops_per_cycle / peak_per_ap, 3) + "%",
                 format_sig(chip_gops, 3),
                 std::to_string(m.faults)});
  }
  out.add_separator();
  out.add_row({"peak (Table 4 assumption)", format_sig(peak_per_ap, 3),
               "100%", format_sig(row.peak_gops, 3), "0"});
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "Streaming datapaths keep most objects firing every cycle and come "
      "closest to the Table 4 peak; scalar chains serialise on the "
      "dependency depth; once the datapath exceeds C the object faults "
      "dominate (the gap the adaptive processor narrows by up-scaling — "
      "see examples/adaptive_upscale).\n");
  return 0;
}
