// Regenerates Table 1: physical-object area requirement (λ², 0.25 µm).
#include <cstdio>

#include "bench_util.hpp"
#include "costmodel/areas.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::cost;
  bench::banner("Table 1 — Physical Object Area Requirement",
                "Module inventory of one physical object (64-bit compute "
                "fabrics + registers), areas in lambda^2");

  const auto t = physical_object_table();
  AsciiTable out({"Module", "Process [um]", "Area [lambda^2]"});
  for (const auto& m : t.modules) {
    out.add_row({m.name, format_sig(m.process_um, 3),
                 format_pow10(m.area_lambda2)});
  }
  out.add_separator();
  out.add_row({"Total (measured)", "", format_pow10(t.total())});
  out.add_row({"Total (paper)", "", format_pow10(t.paper_total)});
  out.add_row({"Delta", "", bench::pct_delta(t.total(), t.paper_total)});
  std::printf("%s\n", out.render().c_str());

  std::printf("FPU share of the physical object: %.1f%% (fMul/fAdd + fDiv)\n",
              100.0 * fpu_area_fraction_of_physical_object());
  std::printf("One 64-bit register = %s lambda^2 (Table 1 row / 6), the unit "
              "every register row of Tables 1-3 decomposes into.\n",
              format_pow10(kReg64Area).c_str());
  return 0;
}
