// Extension experiment: what the fig. 6(d) chip-on-chip option buys.
//
// The paper proposes connecting two dies through the programmable
// switches but gives no numbers. With the §4 cost model: two dies over
// one 1 cm² footprint double the AP count AND halve each AP tile's
// footprint, shortening the global wire — delay falls ~2x, so peak GOPS
// rises ~4x (minus the through-die via).
#include <cstdio>

#include "bench_util.hpp"
#include "costmodel/vlsi_model.hpp"

int main() {
  using namespace vlsip;
  using namespace vlsip::cost;
  bench::banner("Extension — Die Stacking (fig. 6 d)",
                "Two dies over a 1 cm^2 footprint: Table 4 re-evaluated "
                "with the 3-D wire model (20 ps through-die via)");

  AsciiTable out({"Year", "#APs 2D", "#APs 3D", "Delay 2D [ns]",
                  "Delay 3D [ns]", "GOPS 2D", "GOPS 3D", "Gain"});
  for (const auto& node : itrs_nodes()) {
    const auto flat = evaluate_node(node, ApComposition{});
    const auto stacked = evaluate_node_3d(node, ApComposition{});
    out.add_row({std::to_string(node.year),
                 std::to_string(flat.available_aps),
                 std::to_string(stacked.available_aps),
                 format_sig(flat.wire_delay_ns, 3),
                 format_sig(stacked.wire_delay_ns, 3),
                 format_sig(flat.peak_gops, 4),
                 format_sig(stacked.peak_gops, 4),
                 format_sig(stacked.peak_gops / flat.peak_gops, 3) + "x"});
  }
  std::printf("%s\n", out.render().c_str());

  std::printf(
      "Caveats the model does not price: thermal density doubles, and "
      "the stacked fold's serpentine (verified single-hop in "
      "fig6_switch_states) concentrates stack-shift traffic on the die "
      "crossing. Still, the knob is large — the paper's 2012-node 276 "
      "GOPS headline would read ~1 TOPS stacked.\n");
  return 0;
}
