// End-to-end tests for the distributed farm: a Hub plus WorkerDaemons
// on loopback sockets, driven through the HubClient — the same stack
// `vlsipc hub/worker/submit` runs, in one process so the tests can
// kill and drain workers deterministically.
//
// The load-bearing assertions:
//   * worker loss mid-run loses no job: everything in flight on the
//     dead worker is requeued and served by the survivor, and each job
//     is answered exactly once;
//   * distributed results are semantically identical (name -> status +
//     output tokens) to a single-process deterministic farm run of the
//     same manifest;
//   * drain migration is byte-identical: replaying the hub's recorded
//     checkpoint blob locally yields outcome encodings equal to what
//     the peer sent back over the wire.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "daemon/hub.hpp"
#include "daemon/worker.hpp"
#include "net/client.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/farm_config_builder.hpp"
#include "runtime/manifest.hpp"
#include "runtime/replay.hpp"
#include "snapshot/incremental.hpp"

namespace vlsip {
namespace {

/// A WorkerDaemon serving on its own thread.
struct WorkerThread {
  explicit WorkerThread(daemon::WorkerOptions options)
      : daemon(std::move(options)) {}

  Status start() {
    const Status connected = daemon.connect();
    if (!connected.ok()) return connected;
    thread = std::thread([this] { exit = daemon.run(); });
    return Status::Ok();
  }

  void join() {
    if (thread.joinable()) thread.join();
  }

  daemon::WorkerDaemon daemon;
  std::thread thread;
  daemon::WorkerDaemon::Exit exit = daemon::WorkerDaemon::Exit::kLost;
};

daemon::WorkerOptions worker_options(const std::string& hub,
                                     const std::string& name) {
  daemon::WorkerOptions options;
  options.hub = hub;
  options.name = name;
  options.heartbeat_ms = 50;
  options.farm = runtime::FarmConfigBuilder()
                     .workers(1)
                     .batch(4)
                     .queue(64, /*block_when_full=*/true)
                     .build();
  return options;
}

std::vector<scaling::Job> mixed_jobs(std::size_t n, std::uint64_t seed) {
  runtime::SyntheticSpec spec;
  spec.jobs = n;
  spec.seed = seed;
  return runtime::synthetic_jobs(spec);
}

/// What the equivalence check compares: everything about a result that
/// does not depend on which chip served it or when.
struct Canonical {
  std::string status;
  std::map<std::string, std::vector<std::int64_t>> outputs;

  bool operator==(const Canonical& other) const {
    return status == other.status && outputs == other.outputs;
  }
};

Canonical canonical(const scaling::JobOutcome& o) {
  Canonical c;
  c.status = scaling::to_string(o.status);
  for (const auto& [port, words] : o.outputs) {
    auto& vals = c.outputs[port];
    vals.reserve(words.size());
    for (const auto& w : words) vals.push_back(w.i);
  }
  return c;
}

/// Reference run: the same jobs through one deterministic in-process
/// farm (the PR5 replay guarantee anchors on this mode).
std::map<std::string, Canonical> reference_outcomes(
    const std::vector<scaling::Job>& jobs) {
  runtime::FarmConfig cfg;
  cfg.deterministic = true;
  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) farm.submit(job);
  farm.drain();
  std::map<std::string, Canonical> by_name;
  for (const auto& o : farm.outcome_log()) by_name[o.name] = canonical(o);
  return by_name;
}

TEST(Daemon, HubServesJobsAcrossTwoWorkers) {
  daemon::HubOptions hub_options;
  daemon::Hub hub(hub_options);
  ASSERT_TRUE(hub.start().ok());

  WorkerThread a(worker_options(hub.address(), "a"));
  WorkerThread b(worker_options(hub.address(), "b"));
  ASSERT_TRUE(a.start().ok());
  ASSERT_TRUE(b.start().ok());

  const auto jobs = mixed_jobs(24, 11);
  auto client = net::HubClient::connect({hub.address(), "test"});
  ASSERT_TRUE(client.ok()) << client.status().message();
  for (const auto& job : jobs) ASSERT_TRUE(client->submit(job).ok());
  auto results = client->collect(jobs.size());
  ASSERT_TRUE(results.ok()) << results.status().message();
  EXPECT_EQ(results->size(), jobs.size());

  const auto reference = reference_outcomes(jobs);
  for (const auto& r : *results) {
    ASSERT_TRUE(reference.count(r.outcome.name)) << r.outcome.name;
    EXPECT_TRUE(canonical(r.outcome) == reference.at(r.outcome.name))
        << r.outcome.name;
  }

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  a.join();
  b.join();
}

TEST(Daemon, WorkerKillMidRunLosesNoJob) {
  daemon::HubOptions hub_options;
  hub_options.heartbeat_timeout_ms = 500;
  daemon::Hub hub(hub_options);
  ASSERT_TRUE(hub.start().ok());

  auto victim_options = worker_options(hub.address(), "victim");
  // Die abruptly — no goodbye, no drain — after 20 results, with
  // assignments still in flight: the deterministic stand-in for
  // `kill -9` mid-batch.
  victim_options.crash_after_jobs = 20;
  WorkerThread victim(std::move(victim_options));
  WorkerThread survivor(worker_options(hub.address(), "survivor"));
  ASSERT_TRUE(victim.start().ok());
  ASSERT_TRUE(survivor.start().ok());

  const auto jobs = mixed_jobs(200, 23);
  auto client = net::HubClient::connect({hub.address(), "test"});
  ASSERT_TRUE(client.ok());
  for (const auto& job : jobs) ASSERT_TRUE(client->submit(job).ok());
  auto results = client->collect(jobs.size());
  ASSERT_TRUE(results.ok()) << results.status().message();

  // Zero lost, zero duplicated: exactly one result per submitted seq.
  ASSERT_EQ(results->size(), jobs.size());
  std::vector<std::uint64_t> seqs;
  for (const auto& r : *results) seqs.push_back(r.id);
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);

  const auto metrics = hub.metrics();
  EXPECT_EQ(metrics.counters().at("hub.workers_dead"), 1u);
  EXPECT_GT(metrics.counters().at("hub.jobs_requeued"), 0u);

  // Semantically identical to the single-process deterministic run.
  const auto reference = reference_outcomes(jobs);
  for (const auto& r : *results) {
    EXPECT_TRUE(canonical(r.outcome) == reference.at(r.outcome.name))
        << r.outcome.name;
  }

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  victim.join();
  survivor.join();
  EXPECT_EQ(victim.exit, daemon::WorkerDaemon::Exit::kCrashed);
}

TEST(Daemon, DrainMigratesCheckpointByteIdentically) {
  daemon::HubOptions hub_options;
  hub_options.assign_window = 32;  // park plenty on the drainee
  daemon::Hub hub(hub_options);
  ASSERT_TRUE(hub.start().ok());

  auto drainee_options = worker_options(hub.address(), "drainee");
  // Pace the drainee like slow silicon so the drain lands while most
  // of its queue is still unserved (keeps the migration non-trivial
  // on fast hosts).
  drainee_options.farm.chip_hz = 50'000.0;
  WorkerThread drainee(std::move(drainee_options));
  ASSERT_TRUE(drainee.start().ok());

  const auto jobs = mixed_jobs(40, 31);
  auto client = net::HubClient::connect({hub.address(), "test"});
  ASSERT_TRUE(client.ok());
  for (const auto& job : jobs) ASSERT_TRUE(client->submit(job).ok());
  auto first = client->collect(2);
  ASSERT_TRUE(first.ok());

  // Bring up the migration target only now, so every unserved job is
  // parked on the drainee when the drain lands.
  WorkerThread peer(worker_options(hub.address(), "peer"));
  ASSERT_TRUE(peer.start().ok());
  ASSERT_TRUE(client->drain_worker(drainee.daemon.id()).ok());

  auto rest = client->collect(jobs.size() - first->size());
  ASSERT_TRUE(rest.ok()) << rest.status().message();
  EXPECT_EQ(first->size() + rest->size(), jobs.size());

  // The hub recorded the exact blob it forwarded to the peer. Replay
  // it locally: the peer's answers for the migrated ids must be
  // byte-identical to ours, encoding for encoding.
  const auto blob = hub.last_migration();
  ASSERT_FALSE(blob.empty()) << "no migration happened";
  snapshot::Snapshot carrier;
  carrier.bytes() = blob;
  net::CheckpointMsg checkpoint;
  {
    snapshot::Reader r(carrier);
    checkpoint.restore(r);
    EXPECT_EQ(r.bytes_remaining(), 0u);
  }
  ASSERT_FALSE(checkpoint.job_ids.empty());

  core::VlsiProcessor chip{core::ChipConfig{}};
  const auto local = runtime::replay_from(chip, checkpoint.chip,
                                          checkpoint.log);
  ASSERT_EQ(local.size(),
            checkpoint.log.jobs.size() - checkpoint.log.next_job);

  // Index the wire results by job name (names are unique here).
  std::map<std::string, scaling::JobOutcome> wire;
  for (const auto& r : *first) wire[r.outcome.name] = r.outcome;
  for (const auto& r : *rest) wire[r.outcome.name] = r.outcome;

  for (std::size_t k = 0; k < local.size(); ++k) {
    ASSERT_TRUE(wire.count(local[k].name)) << local[k].name;
    scaling::JobOutcome mine = local[k];
    scaling::JobOutcome theirs = wire.at(local[k].name);
    // The transport stamps its own ids (global on the worker leg, the
    // client seq on the last hop); neutralise that one field and the
    // encodings must match byte for byte.
    mine.id = 0;
    theirs.id = 0;
    snapshot::Snapshot a, b;
    {
      snapshot::Writer w(a);
      runtime::save_outcome(w, mine);
    }
    {
      snapshot::Writer w(b);
      runtime::save_outcome(w, theirs);
    }
    EXPECT_EQ(a.bytes(), b.bytes()) << "outcome for " << local[k].name
                                    << " diverged from the local replay";
  }

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  drainee.join();
  peer.join();
  EXPECT_EQ(drainee.exit, daemon::WorkerDaemon::Exit::kDrained);
}

TEST(Daemon, DrainMigratesIncrementalChainByteIdentically) {
  // Same drain/migration flow as above, but the drainee runs with
  // incremental checkpoints: the shipped CheckpointMsg must carry a
  // keyframe+delta chain instead of one flat blob, and materializing
  // that chain locally must replay to the peer's exact answers.
  daemon::HubOptions hub_options;
  hub_options.assign_window = 32;
  daemon::Hub hub(hub_options);
  ASSERT_TRUE(hub.start().ok());

  auto drainee_options = worker_options(hub.address(), "drainee");
  drainee_options.farm.chip_hz = 50'000.0;
  drainee_options.farm.checkpoint_every_batches = 1;
  drainee_options.farm.incremental_checkpoints = true;
  WorkerThread drainee(std::move(drainee_options));
  ASSERT_TRUE(drainee.start().ok());

  const auto jobs = mixed_jobs(40, 53);
  auto client = net::HubClient::connect({hub.address(), "test"});
  ASSERT_TRUE(client.ok());
  for (const auto& job : jobs) ASSERT_TRUE(client->submit(job).ok());
  auto first = client->collect(2);
  ASSERT_TRUE(first.ok());

  WorkerThread peer(worker_options(hub.address(), "peer"));
  ASSERT_TRUE(peer.start().ok());
  ASSERT_TRUE(client->drain_worker(drainee.daemon.id()).ok());

  auto rest = client->collect(jobs.size() - first->size());
  ASSERT_TRUE(rest.ok()) << rest.status().message();
  EXPECT_EQ(first->size() + rest->size(), jobs.size());

  const auto blob = hub.last_migration();
  ASSERT_FALSE(blob.empty()) << "no migration happened";
  snapshot::Snapshot carrier;
  carrier.bytes() = blob;
  net::CheckpointMsg checkpoint;
  {
    snapshot::Reader r(carrier);
    checkpoint.restore(r);
    EXPECT_EQ(r.bytes_remaining(), 0u);
  }
  ASSERT_FALSE(checkpoint.job_ids.empty());

  // The v2 payload: chain only, flat chip field empty, every link
  // after the keyframe a delta container.
  ASSERT_FALSE(checkpoint.chain.empty());
  EXPECT_TRUE(checkpoint.chip.empty());
  EXPECT_FALSE(snapshot::is_delta(checkpoint.chain.front()));
  for (std::size_t i = 1; i < checkpoint.chain.size(); ++i) {
    EXPECT_TRUE(snapshot::is_delta(checkpoint.chain[i])) << "link " << i;
  }

  const auto hub_metrics = hub.metrics();
  EXPECT_GE(hub_metrics.counters().at("hub.checkpoint_chains"), 1u);

  // Materialize and replay locally: byte-identical outcome encodings.
  auto materialized = snapshot::materialize_chain(checkpoint.chain);
  ASSERT_TRUE(materialized.ok()) << materialized.status().message();
  core::VlsiProcessor chip{core::ChipConfig{}};
  const auto local =
      runtime::replay_from(chip, *materialized, checkpoint.log);
  ASSERT_EQ(local.size(),
            checkpoint.log.jobs.size() - checkpoint.log.next_job);

  std::map<std::string, scaling::JobOutcome> wire;
  for (const auto& r : *first) wire[r.outcome.name] = r.outcome;
  for (const auto& r : *rest) wire[r.outcome.name] = r.outcome;
  for (std::size_t k = 0; k < local.size(); ++k) {
    ASSERT_TRUE(wire.count(local[k].name)) << local[k].name;
    scaling::JobOutcome mine = local[k];
    scaling::JobOutcome theirs = wire.at(local[k].name);
    mine.id = 0;
    theirs.id = 0;
    snapshot::Snapshot a, b;
    {
      snapshot::Writer w(a);
      runtime::save_outcome(w, mine);
    }
    {
      snapshot::Writer w(b);
      runtime::save_outcome(w, theirs);
    }
    EXPECT_EQ(a.bytes(), b.bytes()) << "outcome for " << local[k].name
                                    << " diverged from the local replay";
  }

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  drainee.join();
  peer.join();
  EXPECT_EQ(drainee.exit, daemon::WorkerDaemon::Exit::kDrained);
}

TEST(Daemon, CorruptChainMigrationFallsBackWithZeroJobLoss) {
  // The hub flips a byte in every forwarded chain (fault injection):
  // the receiving worker's materialize must fail typed, and its
  // requeue-as-fresh fallback must still answer every migrated job —
  // degraded determinism, zero loss.
  daemon::HubOptions hub_options;
  hub_options.assign_window = 32;
  hub_options.corrupt_migration_chain = true;
  daemon::Hub hub(hub_options);
  ASSERT_TRUE(hub.start().ok());

  auto drainee_options = worker_options(hub.address(), "drainee");
  drainee_options.farm.chip_hz = 50'000.0;
  drainee_options.farm.checkpoint_every_batches = 1;
  drainee_options.farm.incremental_checkpoints = true;
  WorkerThread drainee(std::move(drainee_options));
  ASSERT_TRUE(drainee.start().ok());

  const auto jobs = mixed_jobs(40, 59);
  auto client = net::HubClient::connect({hub.address(), "test"});
  ASSERT_TRUE(client.ok());
  for (const auto& job : jobs) ASSERT_TRUE(client->submit(job).ok());
  auto first = client->collect(2);
  ASSERT_TRUE(first.ok());

  WorkerThread peer(worker_options(hub.address(), "peer"));
  ASSERT_TRUE(peer.start().ok());
  ASSERT_TRUE(client->drain_worker(drainee.daemon.id()).ok());

  auto rest = client->collect(jobs.size() - first->size());
  ASSERT_TRUE(rest.ok()) << rest.status().message();

  // Exactly one result per submitted seq: nothing lost, nothing
  // duplicated, even though the chain the peer received was garbage.
  ASSERT_EQ(first->size() + rest->size(), jobs.size());
  std::vector<std::uint64_t> seqs;
  for (const auto& r : *first) seqs.push_back(r.id);
  for (const auto& r : *rest) seqs.push_back(r.id);
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);

  const auto metrics = hub.metrics();
  EXPECT_GE(metrics.counters().at("hub.migrations"), 1u);

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  drainee.join();
  peer.join();
  EXPECT_EQ(drainee.exit, daemon::WorkerDaemon::Exit::kDrained);
}

TEST(Daemon, ClientWindowBoundsInFlightSubmissions) {
  // Regression for unbounded streaming: with max_in_flight set, the
  // client must never have more than that many unanswered submissions
  // — submit() blocks pumping results until the window frees up.
  daemon::Hub hub;
  ASSERT_TRUE(hub.start().ok());
  WorkerThread w(worker_options(hub.address(), "w"));
  ASSERT_TRUE(w.start().ok());

  net::HubClient::Options copts{hub.address(), "test"};
  copts.max_in_flight = 4;
  auto client = net::HubClient::connect(copts);
  ASSERT_TRUE(client.ok()) << client.status().message();

  const auto jobs = mixed_jobs(24, 61);
  for (const auto& job : jobs) {
    ASSERT_TRUE(client->submit(job).ok());
    EXPECT_LE(client->in_flight(), 4u);
  }
  auto results = client->collect(jobs.size());
  ASSERT_TRUE(results.ok()) << results.status().message();
  EXPECT_EQ(results->size(), jobs.size());
  EXPECT_EQ(client->in_flight(), 0u);

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  w.join();
}

TEST(Daemon, FiveHundredJobSweepSurvivesWorkerLoss) {
  daemon::HubOptions hub_options;
  hub_options.heartbeat_timeout_ms = 500;
  daemon::Hub hub(hub_options);
  ASSERT_TRUE(hub.start().ok());

  auto victim_options = worker_options(hub.address(), "victim");
  victim_options.crash_after_jobs = 50;
  WorkerThread victim(std::move(victim_options));
  WorkerThread survivor(worker_options(hub.address(), "survivor"));
  ASSERT_TRUE(victim.start().ok());
  ASSERT_TRUE(survivor.start().ok());

  const auto jobs = mixed_jobs(500, 47);
  auto client = net::HubClient::connect({hub.address(), "test"});
  ASSERT_TRUE(client.ok());
  for (const auto& job : jobs) ASSERT_TRUE(client->submit(job).ok());
  auto results = client->collect(jobs.size());
  ASSERT_TRUE(results.ok()) << results.status().message();
  ASSERT_EQ(results->size(), jobs.size());

  std::size_t completed = 0;
  for (const auto& r : *results) {
    if (r.outcome.status == scaling::JobStatus::kCompleted) ++completed;
  }
  EXPECT_EQ(completed, jobs.size());

  const auto metrics = hub.metrics();
  EXPECT_EQ(metrics.counters().at("hub.jobs_submitted"), 500u);
  EXPECT_EQ(metrics.counters().at("hub.jobs_completed"), 500u);
  EXPECT_EQ(metrics.counters().at("hub.workers_dead"), 1u);

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  victim.join();
  survivor.join();
}

TEST(Daemon, HubRejectsThenSurvivesHostileClient) {
  daemon::Hub hub;
  ASSERT_TRUE(hub.start().ok());

  // A connection that opens with garbage instead of Hello is answered
  // with a typed error and dropped; the hub keeps serving.
  {
    auto sock = net::Socket::connect(hub.address());
    ASSERT_TRUE(sock.ok());
    std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF,
                                         0x01, 0x00, 0x01, 0x00,
                                         0x00, 0x00, 0x00, 0x00};
    ASSERT_TRUE(sock->send_all(garbage.data(), garbage.size()).ok());
    auto reply = net::read_frame(*sock);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, net::MsgType::kError);
    auto err = net::decode_payload<net::ErrorMsg>(*reply);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(static_cast<StatusCode>(err->code),
              StatusCode::kProtocolError);
  }

  // The hub still accepts a well-behaved session afterwards.
  auto client = net::HubClient::connect({hub.address(), "ok"});
  ASSERT_TRUE(client.ok()) << client.status().message();
  auto metrics = client->metrics_json();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("\"schema_version\""), std::string::npos);
  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
}

TEST(Daemon, MetricsReportIsWellFormedJson) {
  daemon::Hub hub;
  ASSERT_TRUE(hub.start().ok());
  WorkerThread w(worker_options(hub.address(), "w"));
  ASSERT_TRUE(w.start().ok());

  auto client = net::HubClient::connect({hub.address(), "test"});
  ASSERT_TRUE(client.ok());
  auto doc = client->metrics_json();
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->find("\"report\":\"hub-metrics\""), std::string::npos);
  EXPECT_NE(doc->find("\"workers\""), std::string::npos);
  EXPECT_NE(doc->find("\"hub.workers_joined\":1"), std::string::npos);

  ASSERT_TRUE(client->shutdown_hub().ok());
  hub.wait();
  hub.stop();
  w.join();
}

}  // namespace
}  // namespace vlsip
