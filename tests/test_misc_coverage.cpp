// Coverage sweep over thinner corners: program validation, warm
// streaming, pipeline traces, scaling details, router masks.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/require.hpp"
#include "lang/compiler.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/scaling_manager.hpp"
#include "scaling/supervisor.hpp"
#include "topology/s_topology.hpp"

namespace vlsip {
namespace {

// ---- validate_program ---------------------------------------------------

TEST(Validate, BuilderProgramsAreValid) {
  EXPECT_TRUE(arch::validate_program(arch::linear_pipeline_program(4)).empty());
  EXPECT_TRUE(
      arch::validate_program(arch::conditional_example_program()).empty());
  EXPECT_TRUE(arch::validate_program(arch::fir_program({0.5, 0.5})).empty());
  EXPECT_TRUE(arch::validate_program(
                  lang::compile("input x\nrec a = x + delay(a, 0)\n"
                                "output a\n"))
                  .empty());
}

TEST(Validate, DetectsNonDenseIds) {
  auto p = arch::linear_pipeline_program(1);
  p.library[1].id = 7;
  const auto problems = arch::validate_program(p);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("non-dense"), std::string::npos);
}

TEST(Validate, DetectsUnknownReferences) {
  auto p = arch::linear_pipeline_program(1);
  arch::ConfigElement bad;
  bad.sink = 999;
  p.stream.push(bad);
  EXPECT_FALSE(arch::validate_program(p).empty());
}

TEST(Validate, DetectsArityOverflow) {
  auto p = arch::linear_pipeline_program(1);
  arch::ConfigElement bad;
  bad.sink = 0;  // the input buffer (arity 1)
  bad.sources[0] = 1;
  bad.sources[1] = 2;  // operand 1 exceeds buffer arity
  p.stream.push(bad);
  const auto problems = arch::validate_program(p);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("exceeds arity"), std::string::npos);
}

TEST(Validate, DetectsBadPortBindings) {
  auto p = arch::linear_pipeline_program(1);
  p.outputs["oops"] = 0;  // a buffer, not a sink
  EXPECT_FALSE(arch::validate_program(p).empty());
  auto q = arch::linear_pipeline_program(1);
  q.inputs["oops"] = 999;
  EXPECT_FALSE(arch::validate_program(q).empty());
}

// ---- streaming warm path ---------------------------------------------------

TEST(Streaming, ColdStreamingPreTouchesAllObjects) {
  // run_streaming on a never-run configuration must pre-fault every
  // object so no fault can hit mid-stream.
  ap::ApConfig cfg;
  cfg.capacity = 16;
  cfg.memory_blocks = 4;
  ap::AdaptiveProcessor ap(cfg);
  const auto p = arch::fir_program({0.5, 0.5});
  ap.configure(p);
  for (int i = 0; i < 8; ++i) ap.feed("x", arch::make_word_f(1.0));
  const auto exec = ap.run_streaming(8, 100000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(exec.faults, 0u);
}

// ---- pipeline tracing --------------------------------------------------------

TEST(PipelineTrace, RecordsHitsEvictionsAndEntries) {
  ap::ApConfig cfg;
  cfg.capacity = 4;
  cfg.memory_blocks = 4;
  cfg.enable_trace = true;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(arch::linear_pipeline_program(4));  // 10 objects > C=4
  const auto& trace = ap.trace();
  EXPECT_TRUE(trace.contains("entered object"));
  EXPECT_TRUE(trace.contains("evicted object"));
  EXPECT_GT(trace.count("pipeline"), 0u);
  EXPECT_GT(trace.count("csd"), 0u);  // chaining grants recorded
}

// ---- scaling details ---------------------------------------------------------

TEST(ScalingDetail, UpscalePrefersSerpentineSuccessor) {
  topology::STopologyFabric fabric(4, 4, topology::ClusterSpec{4, 4, 1});
  noc::NocFabric noc(4, 4);
  scaling::ScalingManager mgr(fabric, noc);
  const auto p = mgr.allocate(2);  // serpentine clusters 0,1
  ASSERT_TRUE(mgr.upscale(p, 1));
  const auto& path = mgr.regions().region(mgr.info(p).region).path;
  EXPECT_EQ(fabric.serpentine_index(path.back()), 2u);
}

TEST(ScalingDetail, SendEmptyPayloadStillActivates) {
  topology::STopologyFabric fabric(4, 4, topology::ClusterSpec{4, 4, 1});
  noc::NocFabric noc(4, 4);
  scaling::ScalingManager mgr(fabric, noc);
  const auto a = mgr.allocate(1);
  const auto b = mgr.allocate(1);
  mgr.send_and_activate(a, b, {}, 0);  // pure control hand-off
  EXPECT_EQ(mgr.state(b), scaling::ProcState::kActive);
}

TEST(ScalingDetail, RingProcessorRunsPrograms) {
  topology::STopologyFabric fabric(4, 4, topology::ClusterSpec{4, 4, 1});
  noc::NocFabric noc(4, 4);
  scaling::ScalingManager mgr(fabric, noc);
  const auto ring = topology::rectangle_ring(fabric, 0, 0, 2, 2);
  const auto p = mgr.allocate_path(ring, true);
  ASSERT_NE(p, scaling::kNoProc);
  auto& ap = mgr.processor(p);
  ap.configure(arch::linear_pipeline_program(2));
  ap.feed("in", arch::make_word_i(3));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("out")[0].i, 8);
}

// ---- router masks ---------------------------------------------------------------

TEST(RouterDetail, AcceptMaskReflectsPerVcOccupancy) {
  noc::Router r(0, 0, noc::RouterConfig{1, 2});
  EXPECT_EQ(r.accept_mask(noc::Port::kWest), 0b11u);
  noc::Flit f;
  f.kind = noc::FlitKind::kHeadTail;
  f.vc = 1;
  r.accept(noc::Port::kWest, f);
  EXPECT_EQ(r.accept_mask(noc::Port::kWest), 0b01u);  // vc1 full (depth 1)
  EXPECT_EQ(r.queued(noc::Port::kWest, 1), 1u);
  EXPECT_EQ(r.queued(noc::Port::kWest, 0), 0u);
}

TEST(RouterDetail, PacketHops) {
  noc::Packet p;
  p.src_x = 1;
  p.src_y = 2;
  p.dst_x = 4;
  p.dst_y = 0;
  EXPECT_EQ(p.hops(), 5);
}

// ---- report ----------------------------------------------------------------

TEST(Report, SummarisesLifetimeCounters) {
  ap::ApConfig cfg;
  cfg.capacity = 8;
  cfg.memory_blocks = 4;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(arch::linear_pipeline_program(4));  // evicting
  ap.feed("in", arch::make_word_i(1));
  ap.run(1, 1000000);
  ap.release_datapath();
  const auto text = ap.report();
  EXPECT_NE(text.find("configuration: 1 datapaths"), std::string::npos);
  EXPECT_NE(text.find("evictions"), std::string::npos);
  EXPECT_NE(text.find("releases: 1"), std::string::npos);
  EXPECT_NE(text.find("C=8"), std::string::npos);
}

// ---- supervisor <-> single-AP equivalence ------------------------------------

TEST(Equivalence, SupervisorGraphMatchesSpeculativeDataflow) {
  // The same conditional computed two ways must agree for both branch
  // directions: (a) one AP, speculative gates; (b) a supervisor graph
  // with predicated activation.
  for (const auto& [x, y] : {std::pair{9, 2}, {1, 7}}) {
    // (a) speculative on one AP.
    ap::AdaptiveProcessor ap{ap::ApConfig{}};
    ap.configure(arch::conditional_example_program());
    ap.feed("x", arch::make_word_i(x));
    ap.feed("y", arch::make_word_i(y));
    ASSERT_TRUE(ap.run(1, 100000).completed);
    const auto speculative = ap.output("z")[0].i;

    // (b) the supervisor graph.
    topology::STopologyFabric fabric(4, 4, topology::ClusterSpec{8, 8, 1});
    noc::NocFabric noc(4, 4);
    scaling::ScalingManager mgr(fabric, noc);
    scaling::Supervisor sup(mgr);
    scaling::TaskSpec cond;
    cond.name = "cond";
    cond.program = lang::compile(
        "input x\ninput y\noutput c = x > y\noutput xv = buff(x)\n"
        "output yv = buff(y)\n");
    cond.direct_inputs = {{"x", {arch::make_word_i(x)}},
                          {"y", {arch::make_word_i(y)}}};
    sup.add_task(std::move(cond));
    auto arm = [](const std::string& name, std::int64_t k) {
      scaling::TaskSpec t;
      t.name = name;
      t.program = lang::compile("output r = load(0) + " +
                                std::to_string(k) + "\n");
      return t;
    };
    sup.add_task(arm("then", 1));
    sup.add_task(arm("else", 2));
    sup.add_task(arm("join", 0));
    sup.add_edge({"cond", "xv", "then", 0, "c", false});
    sup.add_edge({"cond", "yv", "else", 0, "c", true});
    sup.add_edge({"then", "r", "join", 0, std::nullopt, false});
    sup.add_edge({"else", "r", "join", 0, std::nullopt, false});
    const auto r = sup.run();
    EXPECT_EQ(r.outcome("join").outputs.at("r")[0].i, speculative)
        << "x=" << x << " y=" << y;
  }
}

}  // namespace
}  // namespace vlsip
