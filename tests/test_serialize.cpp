// Tests for object-code serialization and the executor's deadlock
// diagnosis.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "arch/serialize.hpp"
#include "common/require.hpp"

namespace vlsip::arch {
namespace {

void expect_programs_equal(const Program& a, const Program& b) {
  ASSERT_EQ(a.library.size(), b.library.size());
  for (std::size_t i = 0; i < a.library.size(); ++i) {
    const auto& x = a.library[i];
    const auto& y = b.library[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.config.opcode, y.config.opcode);
    EXPECT_EQ(x.config.immediate.u, y.config.immediate.u);
    EXPECT_EQ(x.config.initial_token, y.config.initial_token);
    EXPECT_EQ(x.config.latency_override, y.config.latency_override);
    if (x.config.initial_token) {
      EXPECT_EQ(x.initial.u, y.initial.u);
    }
    EXPECT_EQ(x.name, y.name);
  }
  ASSERT_EQ(a.stream.size(), b.stream.size());
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    EXPECT_EQ(a.stream[i], b.stream[i]);
  }
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(Serialize, RoundTripLinearPipeline) {
  const auto p = linear_pipeline_program(5);
  expect_programs_equal(p, from_text(to_text(p)));
}

TEST(Serialize, RoundTripConditional) {
  const auto p = conditional_example_program();
  expect_programs_equal(p, from_text(to_text(p)));
}

TEST(Serialize, RoundTripFirWithInitialTokens) {
  const auto p = fir_program({0.5, 0.25, 0.125, 0.125});
  expect_programs_equal(p, from_text(to_text(p)));
}

TEST(Serialize, RoundTripFeedbackLoop) {
  DatapathBuilder b;
  const auto in = b.input("in");
  const auto z = b.placeholder("z");
  b.set_initial_i(z, 42);
  const auto acc = b.op(Opcode::kIAdd, in, z);
  b.bind(z, acc);
  b.output("sum", acc);
  const auto p = std::move(b).build();
  expect_programs_equal(p, from_text(to_text(p)));
}

TEST(Serialize, LoadedProgramExecutes) {
  const auto text = to_text(linear_pipeline_program(3));
  const auto p = from_text(text);
  ap::AdaptiveProcessor ap(ap::ApConfig{});
  ap.configure(p);
  ap.feed("in", make_word_i(2));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("out")[0].i, 9);  // ((2+1)*2)+3
}

TEST(Serialize, LatencyOverrideSurvives) {
  DatapathBuilder b;
  const auto in = b.input("in");
  b.output("o", b.op(Opcode::kIAdd, in, b.constant_i(1)));
  auto p = std::move(b).build();
  p.library[2].config.latency_override = 17;
  const auto q = from_text(to_text(p));
  EXPECT_EQ(q.library[2].config.latency_override, 17);
}

TEST(Serialize, OpcodeNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Opcode::kSink); ++i) {
    const auto op = static_cast<Opcode>(i);
    EXPECT_EQ(opcode_from_name(op_name(op)), op);
  }
  EXPECT_THROW(opcode_from_name("florp"), vlsip::PreconditionError);
}

TEST(Serialize, RejectsMalformed) {
  EXPECT_THROW(from_text("not object code"), vlsip::PreconditionError);
  EXPECT_THROW(from_text("vlsip-object-code v1\nbogus 1 2 3\n"),
               vlsip::PreconditionError);
  EXPECT_THROW(from_text("vlsip-object-code v1\nobject 5 iadd imm=0 "
                         "init=- latency=- x\n"),
               vlsip::PreconditionError);  // non-dense id
  EXPECT_THROW(from_text("vlsip-object-code v1\ninput x 3\n"),
               vlsip::PreconditionError);  // unknown object
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const auto p = linear_pipeline_program(1);
  auto text = to_text(p);
  text.insert(text.find('\n') + 1, "# a comment\n\n");
  expect_programs_equal(p, from_text(text));
}

}  // namespace
}  // namespace vlsip::arch

namespace vlsip::ap {
namespace {

TEST(Diagnose, NamesMissingOperand) {
  arch::DatapathBuilder b;
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.output("s", b.op(arch::Opcode::kIAdd, x, y, "adder"));
  auto p = std::move(b).build();
  ApConfig cfg;
  cfg.exec.deadlock_window = 50;
  AdaptiveProcessor ap(cfg);
  ap.configure(p);
  ap.feed("x", arch::make_word_i(1));  // y never arrives
  const auto exec = ap.run(1, 100000);
  ASSERT_TRUE(exec.deadlocked);
  ASSERT_FALSE(exec.blocked_report.empty());
  bool found = false;
  for (const auto& line : exec.blocked_report) {
    if (line.find("adder") != std::string::npos &&
        line.find("waits for") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "report did not name the blocked adder";
}

TEST(Diagnose, CleanRunHasNoReport) {
  AdaptiveProcessor ap(ApConfig{});
  ap.configure(arch::linear_pipeline_program(2));
  ap.feed("in", arch::make_word_i(1));
  const auto exec = ap.run(1, 10000);
  EXPECT_TRUE(exec.completed);
  EXPECT_TRUE(exec.blocked_report.empty());
}

}  // namespace
}  // namespace vlsip::ap
