// Tests for the workload layer: the kernel library (generated sources
// lower to correct programs, cluster sizing follows the datapath), the
// scenario-pack builders and spec parser, the arrival-tick submit path,
// and the serve-vs-replay byte-identity guarantee of the pack report.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/farm_config_builder.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/kernels.hpp"
#include "workload/runner.hpp"
#include "workload/scenario.hpp"

namespace vlsip::workload {
namespace {

// Mirrors the kernel library's fixed coefficient schedules so expected
// values are computed independently of the generated source text.
std::int64_t dot_weight(int i) { return 1 + (i * 3) % 7; }
std::int64_t fir_coeff(int i) { return 1 + (i * 5) % 9; }

/// Lowers `spec`, configures the program on a fresh AP, feeds the
/// inputs, runs, and returns one named output's tokens.
std::vector<arch::Word> run_kernel(
    const KernelSpec& spec,
    const std::map<std::string, std::vector<std::int64_t>>& inputs,
    const std::string& output, std::size_t expected) {
  auto kernel = build_kernel(spec);
  EXPECT_TRUE(kernel.ok()) << kernel.status().to_string();
  ap::ApConfig cfg;
  cfg.capacity = 128;
  cfg.memory_blocks = 8;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(kernel->program);
  for (const auto& [name, values] : inputs) {
    for (const auto v : values) ap.feed(name, arch::make_word_i(v));
  }
  const auto exec = ap.run(expected, 200000);
  EXPECT_TRUE(exec.completed) << kernel->source;
  return ap.output(output);
}

TEST(Kernels, DotComputesWeightedSum) {
  const auto out = run_kernel({KernelKind::kDot, 4},
                              {{"x0", {3}}, {"x1", {-4}}, {"x2", {5}},
                               {"x3", {7}}},
                              "y", 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].i, 3 * dot_weight(0) - 4 * dot_weight(1) +
                          5 * dot_weight(2) + 7 * dot_weight(3));
}

TEST(Kernels, FirConvolvesDelayLine) {
  // y_t = sum_i c_i * x_{t-i}, delay line initialised to 0.
  const auto out =
      run_kernel({KernelKind::kFir, 3}, {{"x", {10, 20, 30}}}, "y", 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].i, 10 * fir_coeff(0));
  EXPECT_EQ(out[1].i, 20 * fir_coeff(0) + 10 * fir_coeff(1));
  EXPECT_EQ(out[2].i,
            30 * fir_coeff(0) + 20 * fir_coeff(1) + 10 * fir_coeff(2));
}

TEST(Kernels, GasTracksRunningMaxPerVertex) {
  // Each round gathers two edges, applies max(state, sum), scatters.
  const auto out = run_kernel({KernelKind::kGas, 1},
                              {{"e0a", {1, 5, 2}}, {"e0b", {2, 0, 1}}},
                              "s0", 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].i, 3);  // max(0, 1+2)
  EXPECT_EQ(out[1].i, 5);  // max(3, 5+0)
  EXPECT_EQ(out[2].i, 5);  // max(5, 2+1)
}

TEST(Kernels, ReduceSumsAllLeaves) {
  const auto out = run_kernel(
      {KernelKind::kReduce, 5},
      {{"x0", {1}}, {"x1", {2}}, {"x2", {3}}, {"x3", {4}}, {"x4", {5}}},
      "y", 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].i, 15);
}

TEST(Kernels, FilterPassesOnlyAboveThreshold) {
  // Threshold is the width; passing tokens map through 3x + 7.
  const auto out =
      run_kernel({KernelKind::kFilter, 3}, {{"x", {1, 5, 2, 9}}}, "y", 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].i, 5 * 3 + 7);
  EXPECT_EQ(out[1].i, 9 * 3 + 7);
}

TEST(Kernels, ClusterSizingFollowsDatapathWidth) {
  const auto capacity = static_cast<std::size_t>(16);
  EXPECT_EQ(clusters_for_objects(0), 1u);
  EXPECT_EQ(clusters_for_objects(1), 1u);
  EXPECT_EQ(clusters_for_objects(capacity), 1u);
  EXPECT_EQ(clusters_for_objects(capacity + 1), 2u);

  // The recommendation is exactly the program's own footprint, and it
  // grows with the datapath width.
  auto small = build_kernel({KernelKind::kDot, 2});
  auto large = build_kernel({KernelKind::kDot, 24});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(small->recommended_clusters,
            clusters_for_objects(small->program.object_count()));
  EXPECT_EQ(large->recommended_clusters,
            clusters_for_objects(large->program.object_count()));
  EXPECT_GT(large->recommended_clusters, small->recommended_clusters);
}

TEST(Kernels, BadSpecsAreTypedErrors) {
  EXPECT_FALSE(build_kernel({KernelKind::kDot, 0}).ok());
  EXPECT_FALSE(build_kernel({static_cast<KernelKind>(99), 4}).ok());
  KernelKind kind;
  EXPECT_TRUE(kernel_kind_from_string("gas", &kind));
  EXPECT_EQ(kind, KernelKind::kGas);
  EXPECT_FALSE(kernel_kind_from_string("tensor", &kind));
}

TEST(Kernels, MakeJobDerivesExactFilterExpectations) {
  auto kernel = build_kernel({KernelKind::kFilter, 4});
  ASSERT_TRUE(kernel.ok());
  Xoshiro256 rng(7);
  const auto job = make_job(*kernel, 6, rng, "filter4#0");
  ASSERT_EQ(job.inputs.count("x"), 1u);
  std::size_t passes = 0;
  for (const auto& w : job.inputs.at("x")) {
    if (w.i > 4) ++passes;
  }
  EXPECT_GE(passes, 1u);
  EXPECT_EQ(job.expected_per_output, passes);
  EXPECT_EQ(job.requested_clusters, kernel->recommended_clusters);
}

TEST(Scenario, BuilderValidatesDeadConfigs) {
  EXPECT_FALSE(ScenarioPackBuilder().jobs(0).try_build().ok());
  EXPECT_FALSE(ScenarioPackBuilder().widths(8, 2).try_build().ok());
  EXPECT_FALSE(ScenarioPackBuilder().tokens(0, 4).try_build().ok());
  EXPECT_FALSE(ScenarioPackBuilder().churn(1.5).try_build().ok());
  EXPECT_FALSE(
      ScenarioPackBuilder().deadline_pressure(0.5, 0).try_build().ok());
  {
    // A mix with every weight zero can never draw a kernel.
    ScenarioPackBuilder builder;
    for (std::size_t k = 0; k < kKernelKinds; ++k) {
      builder.kernel_weight(static_cast<KernelKind>(k), 0);
    }
    EXPECT_FALSE(builder.try_build().ok());
  }
  const auto ok = ScenarioPackBuilder()
                      .name("t")
                      .seed(3)
                      .jobs(5)
                      .bursty(4, 300)
                      .churn(0.25)
                      .try_build();
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_EQ(ok->arrival, ArrivalModel::kBursty);
}

TEST(Scenario, ParsePackSpecRoundTrip) {
  const std::string spec =
      "# demo\n"
      "name bursty-mix\n"
      "seed 7\n"
      "jobs 120\n"
      "arrival bursty gap=400 burst=6\n"
      "mix dot=3 fir=2 gas=1 reduce=2 filter=1\n"
      "width 4 12\n"
      "tokens 2 6\n"
      "deadline 25 200000\n"
      "churn 30\n"
      "energy on\n";
  const auto pack = parse_pack(spec);
  ASSERT_TRUE(pack.ok()) << pack.status().to_string();
  EXPECT_EQ(pack->name, "bursty-mix");
  EXPECT_EQ(pack->seed, 7u);
  EXPECT_EQ(pack->jobs, 120u);
  EXPECT_EQ(pack->arrival, ArrivalModel::kBursty);
  EXPECT_EQ(pack->mean_gap, 400u);
  EXPECT_EQ(pack->mean_burst, 6u);
  EXPECT_EQ(pack->mix[static_cast<std::size_t>(KernelKind::kDot)], 3u);
  EXPECT_EQ(pack->width_min, 4);
  EXPECT_EQ(pack->width_max, 12);
  EXPECT_DOUBLE_EQ(pack->deadline_pressure, 0.25);
  EXPECT_EQ(pack->deadline_allowance, 200000u);
  EXPECT_DOUBLE_EQ(pack->churn, 0.30);
  EXPECT_TRUE(pack->energy);
}

TEST(Scenario, ParseErrorsNameTheLine) {
  const auto pack = parse_pack("name ok\nbogus-key 12\n");
  ASSERT_FALSE(pack.ok());
  EXPECT_NE(pack.status().message().find("line 2"), std::string::npos)
      << pack.status().message();
}

TEST(Scenario, PresetsLoadAndUnknownRefsFail) {
  for (const char* name :
       {"steady", "bursty", "diurnal", "churn", "deadline", "mixed"}) {
    const auto pack = load_pack(std::string("@preset:") + name + ":9:12");
    ASSERT_TRUE(pack.ok()) << name << ": " << pack.status().to_string();
    EXPECT_EQ(pack->seed, 9u);
    EXPECT_EQ(pack->jobs, 12u);
  }
  EXPECT_FALSE(load_pack("@preset:nosuch").ok());
  EXPECT_FALSE(load_pack("/no/such/pack.spec").ok());
}

TEST(Scenario, SameSeedSameStreamDifferentSeedDiverges) {
  const auto pack =
      ScenarioPackBuilder().seed(11).jobs(16).bursty(3, 250).build();
  const auto a = JobStreamBuilder().pack(pack).build();
  const auto b = JobStreamBuilder().pack(pack).build();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].kernel, b.jobs[i].kernel);
    EXPECT_EQ(a.jobs[i].job.name, b.jobs[i].job.name);
  }
  const auto c = JobStreamBuilder().pack(pack).seed(12).build();
  bool diverged = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].kernel != c.jobs[i].kernel ||
        a.jobs[i].arrival != c.jobs[i].arrival) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(Runner, ArrivalTickDelaysServiceAndStampsQueuedAt) {
  runtime::FarmConfigBuilder cfg;
  cfg.deterministic().workers(1).keep_outcome_log(true);
  runtime::ChipFarm farm(cfg.build());
  auto kernel = build_kernel({KernelKind::kDot, 2});
  ASSERT_TRUE(kernel.ok());
  Xoshiro256 rng(3);
  runtime::SubmitOptions options;
  options.arrival_tick = 5000;
  const auto admission =
      farm.submit(make_job(*kernel, 2, rng, "late#0"), options);
  ASSERT_TRUE(admission.admitted);
  farm.drain();
  const auto log = farm.outcome_log();
  farm.shutdown();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].status, scaling::JobStatus::kCompleted);
  EXPECT_EQ(log[0].queued_at, 5000u);
  EXPECT_GE(log[0].started_at, 5000u);
}

TEST(Runner, StreamCodecRoundTrips) {
  const auto stream = JobStreamBuilder()
                          .pack(ScenarioPackBuilder()
                                    .seed(5)
                                    .jobs(8)
                                    .diurnal(4, 200)
                                    .deadline_pressure(0.5, 100000)
                                    .build())
                          .build();
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  save_stream(w, stream);
  snapshot::Reader r(snap);
  const auto back = restore_stream(r);
  ASSERT_EQ(back.jobs.size(), stream.jobs.size());
  EXPECT_EQ(back.pack.seed, stream.pack.seed);
  EXPECT_EQ(back.pack.arrival, stream.pack.arrival);
  for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].arrival, stream.jobs[i].arrival);
    EXPECT_EQ(back.jobs[i].deadline, stream.jobs[i].deadline);
    EXPECT_EQ(back.jobs[i].kernel, stream.jobs[i].kernel);
    EXPECT_EQ(back.jobs[i].job.name, stream.jobs[i].job.name);
    EXPECT_EQ(back.jobs[i].job.inputs.size(),
              stream.jobs[i].job.inputs.size());
  }
}

TEST(Runner, ReportCarriesSchemaAndPerKernelSections) {
  const auto stream = JobStreamBuilder()
                          .pack(ScenarioPackBuilder()
                                    .name("schema")
                                    .seed(2)
                                    .jobs(6)
                                    .steady(100)
                                    .energy()
                                    .build())
                          .build();
  const auto report = run_pack(stream);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_NE(report->find("\"schema_version\""), std::string::npos);
  EXPECT_NE(report->find("\"report\":\"workload-pack\""), std::string::npos);
  EXPECT_NE(report->find("\"report_version\":1"), std::string::npos);
  EXPECT_NE(report->find("\"kernels\":["), std::string::npos);
  EXPECT_NE(report->find("\"energy_fj\""), std::string::npos);
  EXPECT_NE(report->find("\"p99\""), std::string::npos);
}

// The tentpole guarantee: for 20 seeds, serving a pack and replaying
// its snapshot-codec round-trip produce byte-identical reports, and a
// second serve of the same seed matches too.
TEST(Runner, TwentySeedDeterminismSweepServeVsReplay) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto stream = JobStreamBuilder()
                            .pack(ScenarioPackBuilder()
                                      .name("sweep")
                                      .seed(seed)
                                      .jobs(5)
                                      .bursty(3, 250)
                                      .churn(0.2)
                                      .deadline_pressure(0.2, 250000)
                                      .energy()
                                      .build())
                            .build();
    const auto serve1 = run_pack(stream);
    const auto serve2 = run_pack(stream);
    const auto replay = run_pack_replay(stream);
    ASSERT_TRUE(serve1.ok()) << serve1.status().to_string();
    ASSERT_TRUE(serve2.ok()) << serve2.status().to_string();
    ASSERT_TRUE(replay.ok()) << replay.status().to_string();
    EXPECT_EQ(*serve1, *serve2);
    EXPECT_EQ(*serve1, *replay);
  }
}

TEST(Runner, DifferentSeedsProduceDifferentReports) {
  std::set<std::string> reports;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto stream =
        JobStreamBuilder()
            .pack(
                ScenarioPackBuilder().seed(seed).jobs(4).steady(150).build())
            .build();
    const auto report = run_pack(stream);
    ASSERT_TRUE(report.ok());
    reports.insert(*report);
  }
  EXPECT_GT(reports.size(), 1u);
}

TEST(Runner, EmptyStreamIsRejected) {
  JobStream stream;
  EXPECT_FALSE(run_pack(stream).ok());
}

}  // namespace
}  // namespace vlsip::workload
