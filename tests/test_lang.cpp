// Tests for the dataflow-language compiler: compilation, execution of
// compiled programs, typing, and error reporting.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "common/require.hpp"
#include "lang/compiler.hpp"

namespace vlsip::lang {
namespace {

/// Compiles, configures on a fresh AP, feeds the inputs, runs, and
/// returns a named output's tokens.
std::vector<arch::Word> run(
    const std::string& source,
    const std::map<std::string, std::vector<arch::Word>>& inputs,
    const std::string& output, std::size_t expected) {
  const auto program = compile(source);
  ap::ApConfig cfg;
  cfg.capacity = 64;
  cfg.memory_blocks = 4;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(program);
  for (const auto& [name, words] : inputs) {
    for (const auto& w : words) ap.feed(name, w);
  }
  const auto exec = ap.run(expected, 100000);
  EXPECT_TRUE(exec.completed) << source;
  return ap.output(output);
}

TEST(Lang, ArithmeticPrecedence) {
  const auto out = run("input x\noutput y = x + 2 * 3\n",
                       {{"x", {arch::make_word_i(10)}}}, "y", 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].i, 16);  // not (10+2)*3
}

TEST(Lang, ParenthesesOverride) {
  const auto out = run("input x\noutput y = (x + 2) * 3\n",
                       {{"x", {arch::make_word_i(10)}}}, "y", 1);
  EXPECT_EQ(out[0].i, 36);
}

TEST(Lang, DivisionAndModulo) {
  const auto out = run("input x\noutput y = x / 5 + x % 5\n",
                       {{"x", {arch::make_word_i(17)}}}, "y", 1);
  EXPECT_EQ(out[0].i, 3 + 2);
}

TEST(Lang, NegativeLiterals) {
  const auto out = run("input x\noutput y = x * -2\n",
                       {{"x", {arch::make_word_i(7)}}}, "y", 1);
  EXPECT_EQ(out[0].i, -14);
}

TEST(Lang, FloatArithmetic) {
  const auto out = run("input x float\noutput y = x * 0.5 + 1.25\n",
                       {{"x", {arch::make_word_f(3.0)}}}, "y", 1);
  EXPECT_DOUBLE_EQ(out[0].f, 2.75);
}

TEST(Lang, ComparisonAndGates) {
  const std::string src =
      "input x\n"
      "input y\n"
      "cond = x > y\n"
      "t = gate(cond, x + 1)\n"
      "f = gatenot(cond, y + 2)\n"
      "output z = merge(t, f)\n";
  const auto a = run(src,
                     {{"x", {arch::make_word_i(9)}},
                      {"y", {arch::make_word_i(2)}}},
                     "z", 1);
  EXPECT_EQ(a[0].i, 10);
  const auto b = run(src,
                     {{"x", {arch::make_word_i(1)}},
                      {"y", {arch::make_word_i(7)}}},
                     "z", 1);
  EXPECT_EQ(b[0].i, 9);
}

TEST(Lang, SelectExpression) {
  const auto out = run(
      "input c\ninput a\ninput b\noutput r = select(c == 1, a, b)\n",
      {{"c", {arch::make_word_i(1), arch::make_word_i(0)}},
       {"a", {arch::make_word_i(10), arch::make_word_i(11)}},
       {"b", {arch::make_word_i(20), arch::make_word_i(21)}}},
      "r", 2);
  EXPECT_EQ(out[0].i, 10);
  EXPECT_EQ(out[1].i, 21);
}

TEST(Lang, RecursiveAccumulator) {
  const auto out = run("input x\nrec acc = x + delay(acc, 0)\noutput acc\n",
                       {{"x",
                         {arch::make_word_i(1), arch::make_word_i(2),
                          arch::make_word_i(3)}}},
                       "acc", 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].i, 1);
  EXPECT_EQ(out[1].i, 3);
  EXPECT_EQ(out[2].i, 6);
}

TEST(Lang, FloatDotProductWithIota) {
  // Memory-driven reduction like examples/vector_reduction, but from
  // source text.
  const std::string src =
      "input n\n"
      "i = iota(n)\n"
      "a = loadf(i)\n"
      "b = loadf(i + 100)\n"
      "rec acc = a * b + delay(acc, 0.0)\n"
      "output acc\n";
  const auto program = compile(src);
  ap::ApConfig cfg;
  cfg.capacity = 64;
  cfg.memory_blocks = 4;
  ap::AdaptiveProcessor ap(cfg);
  ap.memory().fill(0, {arch::make_word_f(1.0), arch::make_word_f(2.0)});
  ap.memory().fill(100, {arch::make_word_f(3.0), arch::make_word_f(4.0)});
  ap.configure(program);
  ap.feed("n", arch::make_word_u(2));
  const auto exec = ap.run(2, 100000);
  ASSERT_TRUE(exec.completed);
  EXPECT_DOUBLE_EQ(ap.output("acc").back().f, 1.0 * 3.0 + 2.0 * 4.0);
}

TEST(Lang, DelayPipelinesStream) {
  // y[n] = x[n] + x[n-1], delay initialised to 0.
  const auto out = run("input x\noutput y = x + delay(x, 0)\n",
                       {{"x",
                         {arch::make_word_i(5), arch::make_word_i(7),
                          arch::make_word_i(9)}}},
                       "y", 3);
  EXPECT_EQ(out[0].i, 5);
  EXPECT_EQ(out[1].i, 12);
  EXPECT_EQ(out[2].i, 16);
}

TEST(Lang, StoreStatement) {
  const auto program =
      compile("input v\nstore(4, v)\noutput echo = v\n");
  ap::AdaptiveProcessor ap{ap::ApConfig{}};
  ap.configure(program);
  ap.feed("v", arch::make_word_i(99));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.memory().read(4).i, 99);
}

TEST(Lang, BitOpsAndNeg) {
  const auto out = run(
      "input x\noutput y = xor(shl(x, 4), neg(x))\n",
      {{"x", {arch::make_word_i(3)}}}, "y", 1);
  EXPECT_EQ(out[0].u, (3ull << 4) ^ static_cast<std::uint64_t>(-3));
}

TEST(Lang, CommentsAndBlankLines) {
  const auto out = run(
      "# header comment\n\ninput x  # trailing comment\n\noutput y = x\n",
      {{"x", {arch::make_word_i(4)}}}, "y", 1);
  EXPECT_EQ(out[0].i, 4);
}

TEST(Lang, ConstantsAreShared) {
  const auto p = compile("input x\noutput y = x * 3 + 3\n");
  // One const object for both uses of 3: input + const + mul + add +
  // sink = 5 objects.
  EXPECT_EQ(p.object_count(), 5u);
}

// ---- error cases -------------------------------------------------------

TEST(LangErrors, UnknownName) {
  EXPECT_THROW(compile("output y = nope\n"), vlsip::PreconditionError);
}

TEST(LangErrors, Redefinition) {
  EXPECT_THROW(compile("input x\nx = 5\noutput x\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, TypeMismatch) {
  EXPECT_THROW(compile("input a\ninput b float\noutput y = a + b\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, ModuloOnFloats) {
  EXPECT_THROW(compile("input a float\noutput y = a % 2.0\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, NoOutput) {
  EXPECT_THROW(compile("input x\ny = x + 1\n"), vlsip::PreconditionError);
}

TEST(LangErrors, TrailingTokens) {
  EXPECT_THROW(compile("input x junk here\noutput x\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, UnknownFunction) {
  EXPECT_THROW(compile("input x\noutput y = frobnicate(x)\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, WrongArity) {
  EXPECT_THROW(compile("input x\noutput y = gate(x)\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, RecWithoutDelayNeverBinds) {
  // 'rec' whose body never names itself inside delay(): the feedback
  // was not closed, but the program is still valid if it parses —
  // except 'acc' inside the expression is unknown.
  EXPECT_THROW(compile("input x\nrec acc = x + acc\noutput acc\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, ErrorsCarryLineNumbers) {
  try {
    compile("input x\noutput y = x +\n");
    FAIL() << "expected an error";
  } catch (const vlsip::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(LangErrors, BadCharacter) {
  EXPECT_THROW(compile("input x\noutput y = x @ 2\n"),
               vlsip::PreconditionError);
}

TEST(Lang, NegativeFloatLiteral) {
  const auto out = run("input x float\noutput y = x * -0.5\n",
                       {{"x", {arch::make_word_f(8.0)}}}, "y", 1);
  EXPECT_DOUBLE_EQ(out[0].f, -4.0);
}

TEST(Lang, DeeplyNestedParens) {
  const auto out = run("input x\noutput y = ((((x + 1)) * ((2))))\n",
                       {{"x", {arch::make_word_i(4)}}}, "y", 1);
  EXPECT_EQ(out[0].i, 10);
}

TEST(Lang, ComparisonChainsViaParens) {
  const auto out = run("input a\ninput b\noutput r = (a > 2) == (b > 2)\n",
                       {{"a", {arch::make_word_i(5)}},
                        {"b", {arch::make_word_i(1)}}},
                       "r", 1);
  EXPECT_EQ(out[0].i, 0);
}

TEST(LangErrors, IotaNeedsIntCount) {
  EXPECT_THROW(compile("input n float\noutput i = iota(n)\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, DelayInitTypeMustMatchBody) {
  EXPECT_THROW(compile("input x float\noutput y = delay(x, 0)\n"),
               vlsip::PreconditionError);
  EXPECT_THROW(compile("input x\noutput y = delay(x, 0.5)\n"),
               vlsip::PreconditionError);
}

TEST(LangErrors, StoreAddressMustBeInt) {
  EXPECT_THROW(compile("input a float\nstore(a, a)\noutput a\n"),
               vlsip::PreconditionError);
}

TEST(Lang, MinusBindsAsOperatorAfterValue) {
  // "x -2" (no space) must parse as subtraction, not (x)(-2).
  const auto out = run("input x\noutput y = x -2\n",
                       {{"x", {arch::make_word_i(10)}}}, "y", 1);
  EXPECT_EQ(out[0].i, 8);
  // ...while after an operator it is a sign.
  const auto neg = run("input x\noutput y = x * -2\n",
                       {{"x", {arch::make_word_i(10)}}}, "y", 1);
  EXPECT_EQ(neg[0].i, -20);
}

TEST(TryCompile, SuccessReturnsTheProgram) {
  const auto program = try_compile("input x\noutput y = x * 3\n");
  ASSERT_TRUE(program.ok()) << program.status().to_string();
  EXPECT_EQ(program->outputs.count("y"), 1u);
}

TEST(TryCompile, FailureCarriesTheLineNumber) {
  lang::CompileError error;
  const auto program =
      try_compile("input x\nz = q + 1\noutput z\n", &error);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("line 2:"), std::string::npos)
      << error.message;
}

TEST(TryCompile, FeedbackErrorsPointAtTheBindingLine) {
  // The dangling feedback reference is only detected after the whole
  // source is parsed; the error must still blame the rec line.
  lang::CompileError error;
  const auto program = try_compile(
      "input x\nrec s = delay(t, 0) + x\noutput s\n", &error);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(error.line, 2) << error.message;
}

TEST(TryCompile, OutOfRangeLiteralIsAStatusNotAThrow) {
  lang::CompileError error;
  const auto program = try_compile(
      "input x\noutput y = x + 99999999999999999999999999\n", &error);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("out of range"), std::string::npos)
      << error.message;
}

TEST(TryCompile, ThrowingFormStillThrows) {
  // compile() keeps the throwing contract for callers that want it.
  EXPECT_THROW(compile("output y = q\n"), vlsip::PreconditionError);
}

}  // namespace
}  // namespace vlsip::lang
