// Integration tests for the VlsiProcessor chip facade.
#include <gtest/gtest.h>

#include "arch/datapath.hpp"
#include "common/require.hpp"
#include "core/vlsi_processor.hpp"

namespace vlsip::core {
namespace {

ChipConfig small_chip() {
  ChipConfig c;
  c.width = 4;
  c.height = 4;
  c.cluster = topology::ClusterSpec{4, 4, 1};
  return c;
}

TEST(Chip, FreshChipFullyReleased) {
  VlsiProcessor chip(small_chip());
  EXPECT_EQ(chip.total_clusters(), 16u);
  EXPECT_EQ(chip.free_clusters(), 16u);
  EXPECT_EQ(chip.fabric().chained_links(), 0u);
}

TEST(Chip, FuseRunRelease) {
  VlsiProcessor chip(small_chip());
  const auto p = chip.fuse(4);
  ASSERT_NE(p, scaling::kNoProc);
  const auto result = chip.run_program(
      p, arch::linear_pipeline_program(4),
      {{"in", {arch::make_word_i(5)}}}, 1, 100000);
  ASSERT_TRUE(result.exec.completed);
  ASSERT_EQ(result.outputs.at("out").size(), 1u);
  EXPECT_EQ(result.outputs.at("out")[0].i, 30);
  EXPECT_GT(result.config.cycles, 0u);
  chip.release(p);
  EXPECT_EQ(chip.free_clusters(), 16u);
}

TEST(Chip, ConditionalExampleAcrossChip) {
  VlsiProcessor chip(small_chip());
  const auto p = chip.fuse(4);
  const auto result = chip.run_program(
      p, arch::conditional_example_program(),
      {{"x", {arch::make_word_i(9)}}, {"y", {arch::make_word_i(2)}}}, 1,
      100000);
  ASSERT_TRUE(result.exec.completed);
  EXPECT_EQ(result.outputs.at("z")[0].i, 10);
}

TEST(Chip, MultipleProcessorsCoexist) {
  VlsiProcessor chip(small_chip());
  const auto a = chip.fuse(2);
  const auto b = chip.fuse(2);
  ASSERT_NE(a, scaling::kNoProc);
  ASSERT_NE(b, scaling::kNoProc);
  const auto ra = chip.run_program(a, arch::linear_pipeline_program(1),
                                   {{"in", {arch::make_word_i(1)}}}, 1,
                                   10000);
  const auto rb = chip.run_program(b, arch::linear_pipeline_program(2),
                                   {{"in", {arch::make_word_i(1)}}}, 1,
                                   10000);
  EXPECT_EQ(ra.outputs.at("out")[0].i, 2);   // 1+1
  EXPECT_EQ(rb.outputs.at("out")[0].i, 4);   // (1+1)*2
}

TEST(Chip, SplitKeepsHead) {
  VlsiProcessor chip(small_chip());
  const auto p = chip.fuse(6);
  chip.split(p, 2);
  EXPECT_EQ(chip.manager().cluster_count(p), 2u);
  EXPECT_EQ(chip.free_clusters(), 14u);
}

TEST(Chip, FusePathRing) {
  VlsiProcessor chip(small_chip());
  const auto ring = topology::rectangle_ring(chip.fabric(), 0, 0, 2, 2);
  const auto p = chip.fuse_path(ring, true);
  ASSERT_NE(p, scaling::kNoProc);
  EXPECT_EQ(chip.manager().cluster_count(p), 4u);
}

TEST(Chip, PriceMatchesCostModel) {
  ChipConfig cfg;
  cfg.cluster = topology::ClusterSpec{16, 16, 1};  // paper's cluster
  VlsiProcessor chip(cfg);
  const auto row = chip.price_at(cost::node_for_year(2012));
  EXPECT_NEAR(row.available_aps, 21, 2);
  EXPECT_NEAR(row.peak_gops, 276, 28);
}

TEST(Chip, RunOnDeadProcessorThrows) {
  VlsiProcessor chip(small_chip());
  const auto p = chip.fuse(1);
  chip.release(p);
  EXPECT_THROW(chip.run_program(p, arch::linear_pipeline_program(1), {},
                                1, 100),
               vlsip::PreconditionError);
}

TEST(Chip, DefectScenarioFromIntro) {
  // §1: four APs fused into one large processor; a defect splits the
  // system and the survivors re-fuse into smaller processors.
  VlsiProcessor chip(small_chip());
  const auto big = chip.fuse(8);
  ASSERT_NE(big, scaling::kNoProc);
  const auto path =
      chip.manager().regions().region(chip.manager().info(big).region).path;
  const auto survivor = chip.manager().mark_defective(path[4]);
  EXPECT_EQ(survivor, big);
  EXPECT_EQ(chip.manager().cluster_count(big), 4u);
  // The freed tail re-fuses into a second processor.
  const auto second = chip.fuse(3);
  ASSERT_NE(second, scaling::kNoProc);
  const auto r = chip.run_program(second, arch::linear_pipeline_program(2),
                                  {{"in", {arch::make_word_i(3)}}}, 1,
                                  10000);
  EXPECT_EQ(r.outputs.at("out")[0].i, 8);  // (3+1)*2
}

TEST(Chip, DieStackedChipDoublesClusters) {
  ChipConfig cfg = small_chip();
  cfg.layers = 2;
  VlsiProcessor chip(cfg);
  EXPECT_EQ(chip.total_clusters(), 32u);
  const auto p = chip.fuse(20);  // spans both dies via the vertical hop
  ASSERT_NE(p, scaling::kNoProc);
  EXPECT_EQ(chip.manager().cluster_count(p), 20u);
}

TEST(Chip, TraceCapturesScalingEvents) {
  ChipConfig cfg = small_chip();
  cfg.enable_trace = true;
  VlsiProcessor chip(cfg);
  chip.fuse(2);
  EXPECT_TRUE(chip.trace().contains("allocated processor"));
}

}  // namespace
}  // namespace vlsip::core
