// Table-driven semantics tests: every arithmetic/logic opcode executed
// through a minimal datapath on the AP, checked against the host's
// arithmetic.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"

namespace vlsip::ap {
namespace {

using arch::DatapathBuilder;
using arch::Opcode;
using arch::Word;

/// Runs `op(a, b)` on a fresh AP and returns the single output word.
Word run_binary(Opcode op, Word a, Word b) {
  DatapathBuilder bld;
  const auto x = bld.input("a");
  const auto y = bld.input("b");
  bld.output("r", bld.op(op, x, y));
  auto p = std::move(bld).build();
  AdaptiveProcessor ap{ApConfig{}};
  ap.configure(p);
  ap.feed("a", a);
  ap.feed("b", b);
  const auto exec = ap.run(1, 10000);
  EXPECT_TRUE(exec.completed) << arch::op_name(op);
  return ap.output("r")[0];
}

Word run_unary(Opcode op, Word a) {
  DatapathBuilder bld;
  const auto x = bld.input("a");
  bld.output("r", bld.op(op, x));
  auto p = std::move(bld).build();
  AdaptiveProcessor ap{ApConfig{}};
  ap.configure(p);
  ap.feed("a", a);
  const auto exec = ap.run(1, 10000);
  EXPECT_TRUE(exec.completed) << arch::op_name(op);
  return ap.output("r")[0];
}

struct IntCase {
  Opcode op;
  std::int64_t a;
  std::int64_t b;
  std::int64_t expect;
};

class IntBinaryOps : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntBinaryOps, Computes) {
  const auto c = GetParam();
  EXPECT_EQ(run_binary(c.op, arch::make_word_i(c.a),
                       arch::make_word_i(c.b))
                .i,
            c.expect)
      << arch::op_name(c.op) << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntBinaryOps,
    ::testing::Values(
        IntCase{Opcode::kIAdd, 7, 5, 12},
        IntCase{Opcode::kIAdd, -7, 5, -2},
        IntCase{Opcode::kISub, 7, 5, 2},
        IntCase{Opcode::kISub, 5, 7, -2},
        IntCase{Opcode::kIMul, -3, 9, -27},
        IntCase{Opcode::kIDiv, 17, 5, 3},
        IntCase{Opcode::kIDiv, -17, 5, -3},
        IntCase{Opcode::kIDiv, 17, 0, 0},   // defined-zero divide
        IntCase{Opcode::kIRem, 17, 5, 2},
        IntCase{Opcode::kIRem, 17, 0, 0},
        IntCase{Opcode::kCmpGt, 3, 2, 1},
        IntCase{Opcode::kCmpGt, 2, 3, 0},
        IntCase{Opcode::kCmpLt, 2, 3, 1},
        IntCase{Opcode::kCmpEq, 5, 5, 1},
        IntCase{Opcode::kCmpEq, 5, 6, 0}));

struct BitCase {
  Opcode op;
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t expect;
};

class BitOps : public ::testing::TestWithParam<BitCase> {};

TEST_P(BitOps, Computes) {
  const auto c = GetParam();
  EXPECT_EQ(run_binary(c.op, arch::make_word_u(c.a),
                       arch::make_word_u(c.b))
                .u,
            c.expect)
      << arch::op_name(c.op);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitOps,
    ::testing::Values(
        BitCase{Opcode::kIAnd, 0xF0F0, 0xFF00, 0xF000},
        BitCase{Opcode::kIOr, 0xF0F0, 0x0F00, 0xFFF0},
        BitCase{Opcode::kIXor, 0xFFFF, 0x0F0F, 0xF0F0},
        BitCase{Opcode::kIShl, 1, 12, 4096},
        BitCase{Opcode::kIShl, 1, 64, 1},   // shift masked to 6 bits
        BitCase{Opcode::kIShr, 4096, 12, 1},
        BitCase{Opcode::kIShr, 0x8000000000000000ull, 63, 1}));

struct FloatCase {
  Opcode op;
  double a;
  double b;
  double expect;
};

class FloatBinaryOps : public ::testing::TestWithParam<FloatCase> {};

TEST_P(FloatBinaryOps, Computes) {
  const auto c = GetParam();
  EXPECT_DOUBLE_EQ(run_binary(c.op, arch::make_word_f(c.a),
                              arch::make_word_f(c.b))
                       .f,
                   c.expect)
      << arch::op_name(c.op);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloatBinaryOps,
    ::testing::Values(FloatCase{Opcode::kFAdd, 1.5, 2.25, 3.75},
                      FloatCase{Opcode::kFSub, 1.5, 2.25, -0.75},
                      FloatCase{Opcode::kFMul, 1.5, -2.0, -3.0},
                      FloatCase{Opcode::kFDiv, 7.0, 2.0, 3.5},
                      FloatCase{Opcode::kFDiv, 1.0, 0.0,
                                std::numeric_limits<double>::infinity()}));

TEST(UnaryOps, Negations) {
  EXPECT_EQ(run_unary(Opcode::kINeg, arch::make_word_i(5)).i, -5);
  EXPECT_EQ(run_unary(Opcode::kINeg, arch::make_word_i(-5)).i, 5);
  EXPECT_DOUBLE_EQ(run_unary(Opcode::kFNeg, arch::make_word_f(2.5)).f,
                   -2.5);
  EXPECT_EQ(run_unary(Opcode::kBuff, arch::make_word_u(0xDEAD)).u,
            0xDEADu);
}

TEST(SelectOp, PicksByCondition) {
  DatapathBuilder bld;
  const auto c = bld.input("c");
  const auto t = bld.input("t");
  const auto f = bld.input("f");
  bld.output("r", bld.op(Opcode::kSelect, c, t, f));
  auto p = std::move(bld).build();
  AdaptiveProcessor ap{ApConfig{}};
  ap.configure(p);
  ap.feed("c", arch::make_word_u(1));
  ap.feed("t", arch::make_word_i(10));
  ap.feed("f", arch::make_word_i(20));
  ap.feed("c", arch::make_word_u(0));
  ap.feed("t", arch::make_word_i(11));
  ap.feed("f", arch::make_word_i(21));
  const auto exec = ap.run(2, 10000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(ap.output("r")[0].i, 10);
  EXPECT_EQ(ap.output("r")[1].i, 21);
}

TEST(GateOps, ConsumeBothForwardConditionally) {
  DatapathBuilder bld;
  const auto c = bld.input("c");
  const auto v = bld.input("v");
  bld.output("g", bld.op(Opcode::kGate, c, v));
  auto p = std::move(bld).build();
  AdaptiveProcessor ap{ApConfig{}};
  ap.configure(p);
  // Three waves; only waves with c!=0 pass.
  for (auto [cond, val] : {std::pair{1, 100}, {0, 200}, {1, 300}}) {
    ap.feed("c", arch::make_word_u(static_cast<std::uint64_t>(cond)));
    ap.feed("v", arch::make_word_i(val));
  }
  const auto exec = ap.run(2, 10000);
  ASSERT_TRUE(exec.completed);
  ASSERT_EQ(ap.output("g").size(), 2u);
  EXPECT_EQ(ap.output("g")[0].i, 100);
  EXPECT_EQ(ap.output("g")[1].i, 300);
}

TEST(ConstOp, StreamsImmediate) {
  DatapathBuilder bld;
  const auto x = bld.input("x");
  bld.output("r", bld.op(Opcode::kIAdd, x, bld.constant_i(1000)));
  auto p = std::move(bld).build();
  AdaptiveProcessor ap{ApConfig{}};
  ap.configure(p);
  for (int i = 0; i < 5; ++i) ap.feed("x", arch::make_word_i(i));
  const auto exec = ap.run(5, 10000);
  ASSERT_TRUE(exec.completed);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ap.output("r")[static_cast<std::size_t>(i)].i, 1000 + i);
  }
}

TEST(Timeline, RecordedWhenEnabled) {
  ApConfig cfg;
  cfg.pipeline.record_timeline = true;
  AdaptiveProcessor ap(cfg);
  const auto program = arch::linear_pipeline_program(3);
  const auto stats = ap.configure(program);
  ASSERT_EQ(stats.timeline.size(), program.stream.size());
  for (std::size_t i = 0; i < stats.timeline.size(); ++i) {
    const auto& t = stats.timeline[i];
    EXPECT_EQ(t.pointer_update, i);  // one issue per cycle
    EXPECT_LT(t.pointer_update, t.request_fetch);
    EXPECT_LT(t.request_fetch, t.request_evaluation);
    EXPECT_LT(t.request_evaluation, t.request_start);
    EXPECT_LE(t.request_start, t.request_done);
    EXPECT_LT(t.request_done, t.acquire_start);
    EXPECT_LT(t.acquire_start, t.acquire_done);
  }
  // Off by default.
  AdaptiveProcessor plain{ApConfig{}};
  EXPECT_TRUE(plain.configure(program).timeline.empty());
}

}  // namespace
}  // namespace vlsip::ap
