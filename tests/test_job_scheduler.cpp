// Tests for the chip-level job scheduler (dynamic-CMP resource
// management).
#include <gtest/gtest.h>

#include "arch/datapath.hpp"
#include "common/require.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/job_scheduler.hpp"
#include "scaling/scaling_manager.hpp"
#include "topology/s_topology.hpp"

namespace vlsip::scaling {
namespace {

struct SchedulerFixture : ::testing::Test {
  SchedulerFixture()
      : fabric(4, 4, topology::ClusterSpec{8, 8, 1}),
        noc(4, 4),
        mgr(fabric, noc) {}

  Job make_job(const std::string& name, int stages,
               std::size_t clusters) {
    Job j;
    j.name = name;
    j.program = arch::linear_pipeline_program(stages);
    j.inputs = {{"in", {arch::make_word_i(1)}}};
    j.expected_per_output = 1;
    j.requested_clusters = clusters;
    return j;
  }

  topology::STopologyFabric fabric;
  noc::NocFabric noc;
  ScalingManager mgr;
};

TEST_F(SchedulerFixture, SingleJobCompletes) {
  JobScheduler sched(mgr);
  sched.submit(make_job("a", 2, 1));
  const auto r = sched.run_all();
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.makespan, 0u);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_TRUE(r.outcomes[0].completed);
  EXPECT_GT(r.outcomes[0].exec_cycles, 0u);
  // Chip fully released afterwards.
  EXPECT_EQ(mgr.free_clusters(), 16u);
}

TEST_F(SchedulerFixture, ParallelJobsOverlap) {
  JobScheduler sched(mgr);
  for (int i = 0; i < 4; ++i) {
    sched.submit(make_job("p" + std::to_string(i), 3, 4));
  }
  const auto r = sched.run_all();
  EXPECT_EQ(r.completed, 4u);
  // Four 4-cluster jobs fit the 16-cluster chip simultaneously: the
  // makespan is far below 4x one job's span.
  std::uint64_t longest = 0;
  for (const auto& o : r.outcomes) {
    longest = std::max(longest, o.finished_at - o.started_at);
  }
  EXPECT_LT(r.makespan, 2 * longest);
}

TEST_F(SchedulerFixture, SerialisesWhenChipIsSmall) {
  JobScheduler sched(mgr);
  sched.submit(make_job("big1", 3, 12));
  sched.submit(make_job("big2", 3, 12));
  const auto r = sched.run_all();
  EXPECT_EQ(r.completed, 2u);
  // Second big job must wait for the first.
  EXPECT_GT(r.outcomes[1].started_at, 0u);
}

TEST_F(SchedulerFixture, ImpossibleJobFails) {
  JobScheduler sched(mgr);
  sched.submit(make_job("huge", 2, 99));  // chip has 16 clusters
  sched.submit(make_job("ok", 2, 1));
  const auto r = sched.run_all();
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.completed, 1u);  // queue continues after the failure
}

TEST_F(SchedulerFixture, StaticSizingUsesFixedClusters) {
  SchedulerConfig cfg;
  cfg.dynamic_sizing = false;
  cfg.fixed_clusters = 8;
  JobScheduler sched(mgr, cfg);
  sched.submit(make_job("small", 2, 1));
  const auto r = sched.run_all();
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].clusters_used, 8u);
  EXPECT_GT(r.occupied_cluster_cycles, r.useful_cluster_cycles);
}

TEST_F(SchedulerFixture, DynamicBeatsStaticOnMixedLoad) {
  auto mix = [&](JobScheduler& sched) {
    for (int i = 0; i < 4; ++i) sched.submit(make_job("s", 2, 1));
    sched.submit(make_job("l", 14, 4));
  };
  JobScheduler dynamic(mgr);
  mix(dynamic);
  const auto rd = dynamic.run_all();

  topology::STopologyFabric fabric2(4, 4, topology::ClusterSpec{8, 8, 1});
  noc::NocFabric noc2(4, 4);
  ScalingManager mgr2(fabric2, noc2);
  SchedulerConfig cfg;
  cfg.dynamic_sizing = false;
  cfg.fixed_clusters = 2;
  JobScheduler fixed(mgr2, cfg);
  mix(fixed);
  const auto rf = fixed.run_all();

  EXPECT_EQ(rd.completed, 5u);
  EXPECT_EQ(rf.completed, 5u);
  EXPECT_LE(rd.makespan, rf.makespan);
  EXPECT_GE(rd.utilisation(16), rf.utilisation(16) - 1e-9);
}

TEST_F(SchedulerFixture, CompactionRescuesFragmentedChip) {
  // Fragment the chip manually, then submit a job needing a contiguous
  // run that only exists after compaction.
  std::vector<ProcId> pins;
  for (int i = 0; i < 8; ++i) pins.push_back(mgr.allocate(2));
  for (int i = 0; i < 8; i += 2) mgr.release(pins[i]);
  ASSERT_LT(mgr.largest_free_run(), 8u);

  JobScheduler sched(mgr);
  sched.submit(make_job("needs8", 3, 8));
  const auto r = sched.run_all();
  EXPECT_EQ(r.completed, 1u);
  EXPECT_GE(r.compactions, 1u);
}

TEST_F(SchedulerFixture, ValidationErrors) {
  JobScheduler sched(mgr);
  Job empty;
  empty.name = "empty";
  EXPECT_THROW(sched.submit(std::move(empty)), vlsip::PreconditionError);
  auto zero = make_job("z", 2, 1);
  zero.requested_clusters = 0;
  EXPECT_THROW(sched.submit(std::move(zero)), vlsip::PreconditionError);
  EXPECT_THROW(JobScheduler(mgr, SchedulerConfig{false, 0, true, 100}),
               vlsip::PreconditionError);
}

TEST_F(SchedulerFixture, OutcomesCarryCycleBreakdown) {
  JobScheduler sched(mgr);
  sched.submit(make_job("a", 4, 2));
  const auto r = sched.run_all();
  const auto& o = r.outcomes[0];
  EXPECT_GT(o.config_cycles, 0u);
  EXPECT_GT(o.exec_cycles, 0u);
  EXPECT_EQ(o.finished_at - o.started_at, o.config_cycles + o.exec_cycles);
}

}  // namespace
}  // namespace vlsip::scaling
