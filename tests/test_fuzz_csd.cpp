// Randomized stress of the dynamic CSD network against a shadow model:
// establish/release/shift sequences must keep the claim matrix exactly
// consistent with the set of active routes.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "csd/dynamic_csd.hpp"

namespace vlsip::csd {
namespace {

struct ShadowRoute {
  Position lo;
  Position hi;
  ChannelId channel;
};

class CsdFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsdFuzz, ClaimsAlwaysMatchActiveRoutes) {
  const auto seed = GetParam();
  Xoshiro256 rng(seed);
  const Position positions = static_cast<Position>(8 + rng.uniform(56));
  const ChannelId channels = static_cast<ChannelId>(2 + rng.uniform(14));
  DynamicCsdNetwork net(CsdConfig{positions, channels});

  std::map<RouteId, ShadowRoute> shadow;

  auto check_consistency = [&] {
    // 1. Active route count matches.
    ASSERT_EQ(net.active_routes(), shadow.size());
    // 2. Total claimed segments = sum of shadow spans.
    std::size_t expect_segments = 0;
    for (const auto& [id, r] : shadow) {
      expect_segments += r.hi - r.lo;
    }
    ASSERT_EQ(net.claimed_segments(), expect_segments);
    // 3. No two shadow routes on one channel overlap.
    for (auto a = shadow.begin(); a != shadow.end(); ++a) {
      for (auto b = std::next(a); b != shadow.end(); ++b) {
        if (a->second.channel != b->second.channel) continue;
        const bool disjoint = a->second.hi <= b->second.lo ||
                              b->second.hi <= a->second.lo;
        ASSERT_TRUE(disjoint) << "overlap on channel "
                              << a->second.channel;
      }
    }
    // 4. span_free agrees with the shadow for random probes.
    for (int probe = 0; probe < 8; ++probe) {
      const auto c = static_cast<ChannelId>(rng.uniform(channels));
      auto lo = static_cast<Position>(rng.uniform(positions - 1));
      auto hi = static_cast<Position>(
          lo + 1 + rng.uniform(positions - 1 - lo));
      bool expect_free = true;
      for (const auto& [id, r] : shadow) {
        if (r.channel == c && !(r.hi <= lo || hi <= r.lo)) {
          expect_free = false;
          break;
        }
      }
      ASSERT_EQ(net.span_free(c, lo, hi), expect_free)
          << "probe ch" << c << " [" << lo << "," << hi << ")";
    }
  };

  for (int step = 0; step < 300; ++step) {
    const auto action = rng.uniform(10);
    if (action < 6) {
      // establish
      auto a = static_cast<Position>(rng.uniform(positions));
      auto b = static_cast<Position>(rng.uniform(positions));
      if (a == b) b = (b + 1) % positions;
      const auto route = net.establish(a, b);
      if (route) {
        const auto& r = net.routes()[*route];
        shadow[*route] = ShadowRoute{r.lo(), r.hi(), r.channel};
      }
    } else if (action < 9) {
      // release a random active route
      if (!shadow.empty()) {
        auto it = shadow.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.uniform(shadow.size())));
        net.release(it->first);
        shadow.erase(it);
      }
    } else {
      // stack shift
      net.shift_down_one();
      for (auto it = shadow.begin(); it != shadow.end();) {
        if (it->second.hi + 1 >= positions) {
          it = shadow.erase(it);  // dropped off the bottom
        } else {
          ++it->second.lo;
          ++it->second.hi;
          ++it;
        }
      }
    }
    check_consistency();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsdFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace vlsip::csd
