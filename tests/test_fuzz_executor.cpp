// Differential fuzzing: random dataflow DAGs executed on the cycle-level
// AP versus a direct host-side interpretation of the same semantics.
// Any divergence in any output on any wave is a simulator bug.
#include <gtest/gtest.h>

#include <vector>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/rng.hpp"

namespace vlsip {
namespace {

using arch::Opcode;
using arch::Word;

/// Opcodes the fuzzer draws from (pure integer ops with total semantics).
const Opcode kFuzzOps[] = {
    Opcode::kIAdd, Opcode::kISub, Opcode::kIMul, Opcode::kIDiv,
    Opcode::kIRem, Opcode::kIShl, Opcode::kIShr, Opcode::kIAnd,
    Opcode::kIOr,  Opcode::kIXor, Opcode::kCmpGt, Opcode::kCmpLt,
    Opcode::kCmpEq,
};

/// Host-side reference semantics (must match executor.cpp's compute()).
std::int64_t reference(Opcode op, std::int64_t a, std::int64_t b) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case Opcode::kIAdd: return a + b;
    case Opcode::kISub: return a - b;
    case Opcode::kIMul: return a * b;
    case Opcode::kIDiv: return b == 0 ? 0 : a / b;
    case Opcode::kIRem: return b == 0 ? 0 : a % b;
    case Opcode::kIShl: return static_cast<std::int64_t>(ua << (ub & 63));
    case Opcode::kIShr: return static_cast<std::int64_t>(ua >> (ub & 63));
    case Opcode::kIAnd: return static_cast<std::int64_t>(ua & ub);
    case Opcode::kIOr: return static_cast<std::int64_t>(ua | ub);
    case Opcode::kIXor: return static_cast<std::int64_t>(ua ^ ub);
    case Opcode::kCmpGt: return a > b ? 1 : 0;
    case Opcode::kCmpLt: return a < b ? 1 : 0;
    case Opcode::kCmpEq: return a == b ? 1 : 0;
    default: ADD_FAILURE() << "op outside fuzz set"; return 0;
  }
}

struct FuzzDag {
  arch::Program program;
  // node recipe for the reference interpreter:
  struct Node {
    bool is_input = false;
    std::size_t input_index = 0;  // into the inputs vector
    bool is_const = false;
    std::int64_t const_value = 0;
    Opcode op = Opcode::kNop;
    std::size_t lhs = 0;  // indices into recipe order
    std::size_t rhs = 0;
  };
  std::vector<Node> recipe;
  std::vector<std::size_t> output_nodes;  // recipe indices
  std::size_t n_inputs = 0;
};

FuzzDag make_dag(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzDag dag;
  arch::DatapathBuilder b;
  std::vector<arch::ObjectId> ids;

  dag.n_inputs = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < dag.n_inputs; ++i) {
    ids.push_back(b.input("in" + std::to_string(i)));
    FuzzDag::Node n;
    n.is_input = true;
    n.input_index = i;
    dag.recipe.push_back(n);
  }
  const std::size_t n_consts = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < n_consts; ++i) {
    const auto v = rng.uniform_range(-7, 7);
    ids.push_back(b.constant_i(v));
    FuzzDag::Node n;
    n.is_const = true;
    n.const_value = v;
    dag.recipe.push_back(n);
  }
  const std::size_t n_ops = 4 + rng.uniform(20);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const auto op = kFuzzOps[rng.uniform(std::size(kFuzzOps))];
    const auto lhs = static_cast<std::size_t>(rng.uniform(ids.size()));
    const auto rhs = static_cast<std::size_t>(rng.uniform(ids.size()));
    ids.push_back(b.op(op, ids[lhs], ids[rhs]));
    FuzzDag::Node n;
    n.op = op;
    n.lhs = lhs;
    n.rhs = rhs;
    dag.recipe.push_back(n);
  }
  // 1-3 outputs over the op nodes (never bare inputs — keeps waves
  // aligned even if an input also feeds nothing else).
  const std::size_t n_outputs = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < n_outputs; ++i) {
    const auto node =
        dag.n_inputs + n_consts + rng.uniform(n_ops);
    b.output("out" + std::to_string(i), ids[node]);
    dag.output_nodes.push_back(node);
  }
  dag.program = std::move(b).build();
  return dag;
}

/// Reference: evaluate one wave of input values through the recipe.
std::vector<std::int64_t> reference_wave(
    const FuzzDag& dag, const std::vector<std::int64_t>& inputs) {
  std::vector<std::int64_t> values(dag.recipe.size(), 0);
  for (std::size_t i = 0; i < dag.recipe.size(); ++i) {
    const auto& n = dag.recipe[i];
    if (n.is_input) {
      values[i] = inputs[n.input_index];
    } else if (n.is_const) {
      values[i] = n.const_value;
    } else {
      values[i] = reference(n.op, values[n.lhs], values[n.rhs]);
    }
  }
  std::vector<std::int64_t> out;
  out.reserve(dag.output_nodes.size());
  for (const auto node : dag.output_nodes) out.push_back(values[node]);
  return out;
}

class ExecutorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorFuzz, MatchesReferenceOverWaves) {
  const auto seed = GetParam();
  const auto dag = make_dag(seed);

  ap::ApConfig cfg;
  cfg.capacity = 64;
  cfg.memory_blocks = 4;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(dag.program);

  Xoshiro256 rng(seed ^ 0xABCDEF);
  const std::size_t waves = 4;
  std::vector<std::vector<std::int64_t>> wave_inputs(waves);
  for (auto& wave : wave_inputs) {
    for (std::size_t i = 0; i < dag.n_inputs; ++i) {
      wave.push_back(rng.uniform_range(-100, 100));
    }
  }
  for (const auto& wave : wave_inputs) {
    for (std::size_t i = 0; i < dag.n_inputs; ++i) {
      ap.feed("in" + std::to_string(i), arch::make_word_i(wave[i]));
    }
  }
  const auto exec = ap.run(waves, 200000);
  ASSERT_TRUE(exec.completed) << "seed " << seed;

  for (std::size_t w = 0; w < waves; ++w) {
    const auto expected = reference_wave(dag, wave_inputs[w]);
    for (std::size_t o = 0; o < dag.output_nodes.size(); ++o) {
      const auto& got = ap.output("out" + std::to_string(o));
      ASSERT_GT(got.size(), w);
      EXPECT_EQ(got[w].i, expected[o])
          << "seed " << seed << " wave " << w << " output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutorFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ExecutorFuzz, TinyCapacityStillMatches) {
  // The same DAGs squeezed through a 6-slot object space: virtual
  // hardware must not change any value.
  for (std::uint64_t seed : {3ull, 7ull, 11ull}) {
    const auto dag = make_dag(seed);
    ap::ApConfig cfg;
    cfg.capacity = 6;
    cfg.memory_blocks = 4;
    ap::AdaptiveProcessor ap(cfg);
    ap.configure(dag.program);
    std::vector<std::int64_t> wave;
    Xoshiro256 rng(seed * 99);
    for (std::size_t i = 0; i < dag.n_inputs; ++i) {
      const auto v = rng.uniform_range(-50, 50);
      wave.push_back(v);
      ap.feed("in" + std::to_string(i), arch::make_word_i(v));
    }
    const auto exec = ap.run(1, 2000000);
    ASSERT_TRUE(exec.completed) << "seed " << seed;
    const auto expected = reference_wave(dag, wave);
    for (std::size_t o = 0; o < dag.output_nodes.size(); ++o) {
      EXPECT_EQ(ap.output("out" + std::to_string(o))[0].i, expected[o])
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace vlsip
