// Fuzz harness for the fault layer, driven by a fixed seed corpus.
//
// Each corpus entry (tests/corpus/fault_seeds.txt, path compiled in as
// VLSIP_FAULT_CORPUS) names a (plan seed, manifest seed, job count,
// event count) tuple. For every entry the harness:
//   * replays a random fault plan against a bare chip through the
//     FaultInjector and asserts the chip stays schedulable within the
//     20% defect envelope;
//   * runs a deterministic self-healing ChipFarm over a random
//     synthetic manifest with the same plan (worker stalls/crashes
//     enabled) and asserts the no-job-lost invariants.
// Everything derives from the corpus line, so a failure reproduces from
// the line alone — no time, no address-space randomness.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/vlsi_processor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"

#ifndef VLSIP_FAULT_CORPUS
#error "VLSIP_FAULT_CORPUS must point at the seed corpus file"
#endif

namespace vlsip {
namespace {

struct CorpusEntry {
  int line = 0;
  std::uint64_t plan_seed = 0;
  std::uint64_t manifest_seed = 0;
  std::size_t jobs = 0;
  std::size_t events = 0;
};

std::vector<CorpusEntry> load_corpus() {
  std::ifstream in(VLSIP_FAULT_CORPUS);
  EXPECT_TRUE(in.good()) << "missing corpus: " << VLSIP_FAULT_CORPUS;
  std::vector<CorpusEntry> corpus;
  std::string text_line;
  int number = 0;
  while (std::getline(in, text_line)) {
    ++number;
    if (text_line.empty() || text_line[0] == '#') continue;
    std::istringstream fields(text_line);
    CorpusEntry entry;
    entry.line = number;
    if (fields >> entry.plan_seed >> entry.manifest_seed >> entry.jobs >>
        entry.events) {
      corpus.push_back(entry);
    } else {
      ADD_FAILURE() << "malformed corpus line " << number << ": "
                    << text_line;
    }
  }
  return corpus;
}

fault::FaultPlanSpec spec_for(const CorpusEntry& entry,
                              std::size_t clusters,
                              std::uint64_t horizon) {
  fault::FaultPlanSpec spec;
  spec.seed = entry.plan_seed;
  spec.events = entry.events;
  spec.horizon = horizon;
  spec.clusters = clusters;
  return spec;
}

TEST(FuzzFault, ChipSurvivesEveryCorpusPlan) {
  for (const auto& entry : load_corpus()) {
    SCOPED_TRACE("corpus line " + std::to_string(entry.line));
    core::ChipConfig cfg;
    core::VlsiProcessor chip(cfg);
    const std::size_t total = chip.total_clusters();

    auto spec = spec_for(entry, total, /*horizon=*/1000);
    fault::FaultInjector injector(chip, fault::random_fault_plan(spec));
    // Keep a processor live so object/switch faults have prey.
    const auto proc = chip.fuse(4);
    injector.advance_to(1000);
    EXPECT_TRUE(injector.exhausted());
    EXPECT_EQ(injector.stats().fired, spec.events);

    // The 20% envelope: the plan generator caps cluster kills, so the
    // chip must stay schedulable for at least a single-cluster job.
    EXPECT_LE(chip.manager().defective_clusters(), total / 5);
    if (proc != scaling::kNoProc && chip.manager().alive(proc)) {
      chip.release(proc);
    }
    if (chip.manager().largest_free_run() < 1) chip.manager().compact();
    const auto small = chip.fuse(1);
    EXPECT_NE(small, scaling::kNoProc);
    if (small != scaling::kNoProc) chip.release(small);
  }
}

TEST(FuzzFault, FarmNeverLosesAJobOnAnyCorpusEntry) {
  for (const auto& entry : load_corpus()) {
    SCOPED_TRACE("corpus line " + std::to_string(entry.line));

    runtime::SyntheticSpec jobs_spec;
    jobs_spec.jobs = entry.jobs;
    jobs_spec.seed = entry.manifest_seed;
    jobs_spec.max_stages = 4;
    jobs_spec.tokens = 2;
    const auto jobs = runtime::synthetic_jobs(jobs_spec);

    runtime::FarmConfig cfg;
    cfg.deterministic = true;
    cfg.fault_tolerance.enabled = true;
    auto spec = spec_for(entry, /*clusters=*/64,
                         /*horizon=*/entry.jobs ? entry.jobs : 1);
    spec.w_worker_stall = 1.0;
    spec.w_worker_crash = 0.5;
    spec.max_stall = 256;
    cfg.fault_tolerance.plan = fault::random_fault_plan(spec);

    runtime::ChipFarm farm(cfg);
    std::vector<std::future<scaling::JobOutcome>> futures;
    for (const auto& job : jobs) {
      auto admission = farm.submit(job);
      ASSERT_TRUE(admission.admitted);
      futures.push_back(std::move(admission.outcome));
    }
    farm.drain();
    const auto metrics = farm.metrics();
    farm.shutdown();

    // No job lost: every future resolves, and the counters balance.
    EXPECT_EQ(metrics.submitted, jobs.size());
    EXPECT_EQ(metrics.admitted, metrics.served() + metrics.cancelled);
    for (auto& future : futures) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      const auto outcome = future.get();
      EXPECT_NE(outcome.status, scaling::JobStatus::kPending);
    }
  }
}

}  // namespace
}  // namespace vlsip
