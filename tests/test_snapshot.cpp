// Checkpoint/restore: the snapshot byte format, the whole-chip facade
// round trip, the Status/builder API surface, the replay driver, and
// the farm's restore-replacement-from-checkpoint path.
//
// The bit-identity property sweep (run-N -> save -> restore -> continue
// == uninterrupted run, 100 seeds) lives in test_properties.cpp; this
// file pins down the format contract (reject wrong magic, future
// versions, truncation, section drift — never a partial restore) and
// the API redesign around it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "common/activity_set.hpp"
#include "core/builder.hpp"
#include "core/status.hpp"
#include "core/vlsi_processor.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/farm_config_builder.hpp"
#include "runtime/manifest.hpp"
#include "runtime/replay.hpp"
#include "snapshot/incremental.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip {
namespace {

// --- byte format ----------------------------------------------------------

TEST(SnapshotFormat, PrimitivesRoundTrip) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.u8(0xAB);
  w.b(true);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.i32(-7);
  w.f64(3.5);
  w.str("hello");
  w.section("unit.section");
  w.vec_u32({1, 2, 3});
  w.vec_bool({true, false, true});

  snapshot::Reader r(snap);
  EXPECT_EQ(r.version(), snapshot::kVersionFlat);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_NO_THROW(r.section("unit.section"));
  EXPECT_EQ(r.vec_u32(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_bool(), (std::vector<bool>{true, false, true}));
  EXPECT_TRUE(r.done());
}

TEST(SnapshotFormat, ActivitySetWordsRoundTripRebuildsSummary) {
  // The hierarchical ActivitySet checkpoints as flat bitwords only —
  // the format PR 5/6 snapshots already carry. A restore must rebuild
  // the derived summary level so post-restore drains are identical.
  ActivitySet original(9000);  // > one summary word of bitwords
  for (const std::uint32_t id : {0u, 63u, 64u, 4095u, 4096u, 8191u, 8999u}) {
    original.insert(id);
  }

  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.u64(original.size());
  w.vec_u64(original.words());

  snapshot::Reader r(snap);
  ActivitySet restored(9000);
  const auto size = static_cast<std::size_t>(r.u64());
  restored.restore_words(size, r.vec_u64());

  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.words(), original.words());
  std::vector<std::uint32_t> a, b;
  original.drain_to(a);
  restored.drain_to(b);
  EXPECT_EQ(a, b);
  // The rebuilt summary must accept post-restore mutation exactly like
  // a never-snapshotted set: re-insert and drain again.
  for (const auto id : a) restored.insert(id);
  restored.insert(4097);
  b.clear();
  restored.drain_to(b);
  ASSERT_EQ(b.size(), a.size() + 1);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(SnapshotFormat, RejectsWrongMagic) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.u64(1);
  snap.bytes()[0] ^= 0xFF;
  EXPECT_THROW(snapshot::Reader r(snap), snapshot::SnapshotError);
}

TEST(SnapshotFormat, RejectsFutureVersion) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.u64(1);
  // The version lives in bytes [4, 8); a reader from today must refuse
  // a snapshot stamped by tomorrow's writer rather than misread it.
  snap.bytes()[4] = static_cast<std::uint8_t>(snapshot::kVersion + 1);
  try {
    snapshot::Reader r(snap);
    FAIL() << "future version accepted";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos);
  }
}

TEST(SnapshotFormat, AcceptsCurrentVersion) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.str("payload");
  snapshot::Reader r(snap);
  EXPECT_EQ(r.version(), snapshot::kVersionFlat);
  EXPECT_EQ(r.str(), "payload");
}

TEST(SnapshotFormat, RejectsHeaderlessBuffer) {
  snapshot::Snapshot snap;
  snap.bytes() = {0x50, 0x4E, 0x53};
  EXPECT_THROW(snapshot::Reader r(snap), snapshot::SnapshotError);
}

TEST(SnapshotFormat, RejectsTruncation) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.u64(7);
  snap.bytes().pop_back();
  snapshot::Reader r(snap);
  EXPECT_THROW(r.u64(), snapshot::SnapshotError);
}

TEST(SnapshotFormat, SectionMismatchNamesBothTags) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.section("ap.executor");
  snapshot::Reader r(snap);
  try {
    r.section("noc.router");
    FAIL() << "section mismatch accepted";
  } catch (const snapshot::SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("noc.router"), std::string::npos);
    EXPECT_NE(what.find("ap.executor"), std::string::npos);
  }
}

TEST(SnapshotFormat, CorruptCountCannotDriveGiantAllocation) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.u64(0xFFFFFFFFFFFFull);  // a "length" far beyond the payload
  snapshot::Reader r(snap);
  EXPECT_THROW(r.vec_u64(), snapshot::SnapshotError);
}

TEST(SnapshotFormat, FileRoundTrip) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.section("file.test");
  w.u64(99);
  const std::string path = ::testing::TempDir() + "/roundtrip.vsnap";
  snapshot::write_file(snap, path);
  const auto loaded = snapshot::read_file(path);
  EXPECT_EQ(loaded.bytes(), snap.bytes());
  std::remove(path.c_str());
}

// --- whole-chip facade ----------------------------------------------------

core::ChipConfig small_chip() {
  return core::ChipConfigBuilder().grid(2, 2).build();
}

TEST(ChipCheckpoint, SaveRestoreSaveIsByteIdentical) {
  // Determinism contract: restoring a checkpoint and re-saving must
  // reproduce the exact bytes — no timestamps, pointers, or hash
  // ordering in the encoding.
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);
  const auto result = chip.run_program(
      proc, arch::linear_pipeline_program(3),
      {{"in", {arch::make_word_i(5)}}}, 1, 100000);
  ASSERT_TRUE(result.exec.completed);

  snapshot::Snapshot first;
  ASSERT_TRUE(chip.save(first).ok());

  core::VlsiProcessor twin(small_chip());
  ASSERT_TRUE(twin.restore(first).ok());
  snapshot::Snapshot second;
  ASSERT_TRUE(twin.save(second).ok());
  EXPECT_EQ(first.bytes(), second.bytes());
}

TEST(ChipCheckpoint, RestoredChipContinuesIdentically) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);

  snapshot::Snapshot checkpoint;
  ASSERT_TRUE(chip.save(checkpoint).ok());

  core::VlsiProcessor twin(small_chip());
  ASSERT_TRUE(twin.restore(checkpoint).ok());

  // Both chips now hold the same fused processor; the same program must
  // behave identically on each.
  const auto inputs = std::map<std::string, std::vector<arch::Word>>{
      {"in", {arch::make_word_i(9)}}};
  const auto a =
      chip.run_program(proc, arch::linear_pipeline_program(4), inputs, 1,
                       100000);
  const auto b =
      twin.run_program(proc, arch::linear_pipeline_program(4), inputs, 1,
                       100000);
  EXPECT_EQ(a.exec.cycles, b.exec.cycles);
  EXPECT_EQ(a.exec.firings, b.exec.firings);
  EXPECT_EQ(a.config.cycles, b.config.cycles);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (const auto& [port, words] : a.outputs) {
    const auto it = b.outputs.find(port);
    ASSERT_NE(it, b.outputs.end());
    ASSERT_EQ(words.size(), it->second.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
      EXPECT_EQ(words[i].u, it->second[i].u);
    }
  }
}

TEST(ChipCheckpoint, GeometryMismatchIsRejected) {
  core::VlsiProcessor chip(small_chip());
  snapshot::Snapshot checkpoint;
  ASSERT_TRUE(chip.save(checkpoint).ok());

  core::VlsiProcessor bigger(core::ChipConfigBuilder().grid(4, 4).build());
  const Status restored = bigger.restore(checkpoint);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kCorruptSnapshot);
  EXPECT_NE(restored.message().find("geometry"), std::string::npos);
}

TEST(ChipCheckpoint, CorruptBufferSurfacesAsStatus) {
  core::VlsiProcessor chip(small_chip());
  snapshot::Snapshot checkpoint;
  ASSERT_TRUE(chip.save(checkpoint).ok());
  checkpoint.bytes().resize(checkpoint.size() / 2);
  const Status restored = chip.restore(checkpoint);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kCorruptSnapshot);
}

// --- Status facade --------------------------------------------------------

TEST(StatusFacade, TryFuseReportsExhaustionAsUnavailable) {
  core::VlsiProcessor chip(small_chip());
  const auto ok = chip.try_fuse(2);
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(*ok, scaling::kNoProc);

  const auto too_big = chip.try_fuse(64);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kUnavailable);
}

TEST(StatusFacade, TrySplitReportsBadIdAsInvalidArgument) {
  core::VlsiProcessor chip(small_chip());
  const Status s = chip.try_split(scaling::ProcId{9999}, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusFacade, StatusToStringCarriesCodeName) {
  const Status s(StatusCode::kCorruptSnapshot, "bad bytes");
  EXPECT_EQ(s.to_string(), "corrupt_snapshot: bad bytes");
  EXPECT_EQ(Status::Ok().to_string(), "ok");
}

// --- config builders ------------------------------------------------------

TEST(Builders, ChipConfigBuilderValidates) {
  const auto bad = core::ChipConfigBuilder().grid(0, 3).try_build();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  const auto cfg = core::ChipConfigBuilder()
                       .grid(3, 2)
                       .layers(2)
                       .router(8, 2)
                       .event_driven(true)
                       .build();
  EXPECT_EQ(cfg.width, 3);
  EXPECT_EQ(cfg.height, 2);
  EXPECT_EQ(cfg.layers, 2);
  EXPECT_EQ(cfg.router.queue_depth, 8u);
  EXPECT_EQ(cfg.router.virtual_channels, 2u);
}

TEST(Builders, FarmConfigBuilderValidates) {
  const auto bad = runtime::FarmConfigBuilder().workers(0).try_build();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  const auto cfg = runtime::FarmConfigBuilder()
                       .deterministic()
                       .batch(4)
                       .checkpoint_every(2)
                       .build();
  EXPECT_TRUE(cfg.deterministic);
  EXPECT_EQ(cfg.batch.max_jobs, 4u);
  EXPECT_EQ(cfg.checkpoint_every_batches, 2u);
}

// --- replay driver --------------------------------------------------------

scaling::Job pipeline_job(const std::string& name, std::int64_t token) {
  scaling::Job job;
  job.name = name;
  job.program = arch::linear_pipeline_program(3);
  job.inputs = {{"in", {arch::make_word_i(token)}}};
  job.expected_per_output = 1;
  job.requested_clusters = 1;
  return job;
}

TEST(Replay, LogRoundTripsThroughSnapshot) {
  runtime::ReplayLog log;
  log.jobs = {pipeline_job("alpha", 3), pipeline_job("beta", -8)};
  log.next_job = 1;
  log.checkpoint_tick = 777;

  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  log.save(w);
  snapshot::Reader r(snap);
  runtime::ReplayLog back;
  back.restore(r);

  ASSERT_EQ(back.jobs.size(), 2u);
  EXPECT_EQ(back.jobs[0].name, "alpha");
  EXPECT_EQ(back.jobs[1].name, "beta");
  EXPECT_EQ(back.jobs[1].inputs.at("in")[0].i, -8);
  EXPECT_EQ(back.next_job, 1u);
  EXPECT_EQ(back.checkpoint_tick, 777u);
}

TEST(Replay, ReplayFromCheckpointServesRemainingJobs) {
  core::VlsiProcessor chip(small_chip());
  snapshot::Snapshot checkpoint;
  ASSERT_TRUE(chip.save(checkpoint).ok());

  runtime::ReplayLog log;
  log.jobs = {pipeline_job("done-already", 1), pipeline_job("pending-a", 2),
              pipeline_job("pending-b", 3)};
  log.next_job = 1;  // the first job finished before the checkpoint
  log.checkpoint_tick = 42;

  core::VlsiProcessor replayer(small_chip());
  const auto outcomes = runtime::replay_from(replayer, checkpoint, log);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.status, scaling::JobStatus::kCompleted);
    EXPECT_EQ(o.resumed_from_cycle, 42u);
  }
  EXPECT_EQ(outcomes[0].name, "pending-a");
  EXPECT_EQ(outcomes[1].name, "pending-b");
}

// --- farm integration -----------------------------------------------------

TEST(FarmCheckpoint, QuarantineRestoresReplacementFromLastCheckpoint) {
  // A worker crash mid-manifest quarantines the chip. With
  // checkpointing on, the replacement must resume from the last
  // batch-boundary checkpoint — visible as resumed_from_cycle on every
  // outcome it serves — and still lose zero jobs.
  runtime::SyntheticSpec spec;
  spec.jobs = 16;
  spec.seed = 3;
  const auto jobs = runtime::synthetic_jobs(spec);

  fault::FaultPlan plan;
  plan.events = {{8, fault::FaultKind::kWorkerCrash, 0, 0}};
  // Batches of 4: the crash at serve-sequence 8 lands in the third
  // batch, after two batch-boundary checkpoints have been taken.
  runtime::FarmConfig cfg = runtime::FarmConfigBuilder()
                                .deterministic()
                                .batch(4)
                                .fault_tolerance(plan)
                                .checkpoint_every(1)
                                .build();

  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) {
    EXPECT_TRUE(farm.submit(job).admitted);
  }
  farm.drain();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  farm.shutdown();

  EXPECT_EQ(metrics.admitted, metrics.served() + metrics.cancelled);
  EXPECT_EQ(metrics.completed, 16u);
  EXPECT_EQ(metrics.quarantined_chips, 1u);
  EXPECT_GE(metrics.checkpoints, 1u);
  EXPECT_EQ(metrics.chip_restores, 1u);

  std::size_t resumed = 0;
  for (const auto& o : log) {
    if (o.resumed_from_cycle > 0) ++resumed;
  }
  EXPECT_GE(resumed, 1u) << "no outcome recorded the restore point";
}

// --- incremental checkpoints ----------------------------------------------

TEST(IncrementalCheckpoint, FlatSnapshotsStillStampVersionOne) {
  // Backward compatibility hinges on the flat layout being untouched:
  // the Writer stamps kVersionFlat, so every v1 snapshot ever written
  // (and every new flat one) reads identically on both sides of the
  // version bump.
  core::VlsiProcessor chip(small_chip());
  snapshot::Snapshot snap;
  ASSERT_TRUE(chip.save(snap).ok());
  snapshot::Reader r(snap);
  EXPECT_EQ(r.version(), snapshot::kVersionFlat);
  EXPECT_FALSE(snapshot::is_delta(snap));
}

TEST(IncrementalCheckpoint, SaveProfiledIsByteIdenticalToPlainSave) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);

  snapshot::Snapshot plain;
  ASSERT_TRUE(chip.save(plain).ok());
  core::SaveProfile profile;
  ASSERT_TRUE(chip.save_profiled(profile).ok());
  EXPECT_EQ(profile.flat.bytes(), plain.bytes());
  EXPECT_FALSE(profile.index.entries.empty());

  // Incremental against a base — with and without mutations in
  // between — must still produce the exact full-save bytes; the splice
  // optimisation is never allowed to be observable in the output.
  core::SaveProfile unchanged;
  ASSERT_TRUE(chip.save_profiled(unchanged, profile).ok());
  EXPECT_EQ(unchanged.flat.bytes(), plain.bytes());

  chip.release(proc);
  const auto proc2 = chip.fuse(3);
  ASSERT_NE(proc2, scaling::kNoProc);
  core::SaveProfile after;
  ASSERT_TRUE(chip.save_profiled(after, unchanged).ok());
  snapshot::Snapshot plain_after;
  ASSERT_TRUE(chip.save(plain_after).ok());
  EXPECT_EQ(after.flat.bytes(), plain_after.bytes());
}

TEST(IncrementalCheckpoint, DirtyGenerationsTrackMutation) {
  core::VlsiProcessor chip(small_chip());
  const auto fabric_gen = chip.fabric().dirty_gen();
  const auto noc_gen = chip.noc().dirty_gen();
  const auto mgr_gen = chip.manager().dirty_gen();

  // A pure read leaves every generation alone.
  (void)chip.total_clusters();
  (void)chip.render_layout();
  EXPECT_EQ(chip.noc().dirty_gen(), noc_gen);

  // Fusing programs switches (fabric), sends the config worm (noc) and
  // allocates (manager): all three layers must notice.
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);
  EXPECT_GT(chip.fabric().dirty_gen(), fabric_gen);
  EXPECT_GT(chip.noc().dirty_gen(), noc_gen);
  EXPECT_GT(chip.manager().dirty_gen(), mgr_gen);
}

TEST(IncrementalCheckpoint, DeltaChainBeatsFullSnapshotsOnBytes) {
  // The headline claim: checkpointing every batch, the emitted bytes
  // of the incremental path must be well under the full-snapshot cost.
  // Full-size chip: a fuse touches a couple of clusters out of 64, so
  // the delta must stay a small fraction of the flat snapshot.
  core::VlsiProcessor chip;
  core::SaveProfile profile;
  ASSERT_TRUE(chip.save_profiled(profile).ok());

  std::size_t delta_bytes = 0;
  std::size_t full_bytes = 0;
  for (int round = 0; round < 6; ++round) {
    const auto proc = chip.fuse(1 + (round % 2));
    ASSERT_NE(proc, scaling::kNoProc);
    core::SaveProfile base = std::move(profile);
    ASSERT_TRUE(chip.save_profiled(profile, base).ok());
    const snapshot::Snapshot delta = snapshot::encode_delta(
        base.flat, base.index, profile.flat, profile.index);
    delta_bytes += delta.size();
    full_bytes += profile.flat.size();
    const auto applied = snapshot::apply_delta(base.flat, delta);
    ASSERT_TRUE(applied.ok()) << applied.status().message();
    ASSERT_EQ(applied->bytes(), profile.flat.bytes());
    chip.release(proc);
  }
  // Acceptance floor is <= 30% on the steady-state bench; unit scale
  // is rougher, but even here deltas must clearly win.
  EXPECT_LT(delta_bytes * 2, full_bytes)
      << delta_bytes << " delta bytes vs " << full_bytes << " full bytes";
}

TEST(FarmCheckpoint, IncrementalChainMaterializesToCurrentChip) {
  runtime::SyntheticSpec spec;
  spec.jobs = 12;
  spec.seed = 7;
  const auto jobs = runtime::synthetic_jobs(spec);

  runtime::FarmConfig cfg = runtime::FarmConfigBuilder()
                                .deterministic()
                                .batch(3)
                                .checkpoint_every(1)
                                .incremental_checkpoints(true)
                                .build();
  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) {
    EXPECT_TRUE(farm.submit(job).admitted);
  }
  farm.drain();

  // The chain, materialized, must be byte-identical to a full snapshot
  // of the same idle chip.
  snapshot::Snapshot full;
  ASSERT_TRUE(farm.save_chip(0, full).ok());
  std::vector<snapshot::Snapshot> chain;
  ASSERT_TRUE(farm.save_chip_chain(0, chain).ok());
  ASSERT_FALSE(chain.empty());
  EXPECT_FALSE(snapshot::is_delta(chain.front()));
  const auto materialized = snapshot::materialize_chain(chain);
  ASSERT_TRUE(materialized.ok()) << materialized.status().message();
  EXPECT_EQ(materialized->bytes(), full.bytes());

  const auto metrics = farm.metrics();
  farm.shutdown();
  ASSERT_GE(metrics.checkpoints, 3u);
  // After the first keyframe every cadence checkpoint emitted a delta:
  // the emitted-bytes series must undercut the full-bytes series.
  EXPECT_LT(metrics.checkpoint_bytes.mean(),
            metrics.checkpoint_full_bytes.mean());
}

TEST(FarmCheckpoint, IncrementalEveryBatchChaosLosesNothing) {
  // The acceptance gate: checkpoint_every_batches=1 with incremental
  // encoding, a crash and a chip fault mid-run — every admitted job
  // still resolves, the replacement chip restores from checkpoint.
  runtime::SyntheticSpec spec;
  spec.jobs = 16;
  spec.seed = 3;
  const auto jobs = runtime::synthetic_jobs(spec);

  fault::FaultPlan plan;
  plan.events = {{6, fault::FaultKind::kCluster, 1, 0},
                 {11, fault::FaultKind::kWorkerCrash, 0, 0}};
  runtime::FarmConfig cfg = runtime::FarmConfigBuilder()
                                .deterministic()
                                .batch(4)
                                .fault_tolerance(plan)
                                .checkpoint_every(1)
                                .incremental_checkpoints(true)
                                .build();

  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) {
    EXPECT_TRUE(farm.submit(job).admitted);
  }
  farm.drain();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  farm.shutdown();

  // No admitted job lost: everything resolved one way or another.
  EXPECT_EQ(metrics.admitted, metrics.served() + metrics.cancelled);
  EXPECT_EQ(log.size(), metrics.served());
  EXPECT_EQ(metrics.quarantined_chips, 1u);
  EXPECT_EQ(metrics.chip_restores, 1u);
  EXPECT_GE(metrics.checkpoints, 2u);

  std::size_t resumed = 0;
  for (const auto& o : log) {
    if (o.resumed_from_cycle > 0) ++resumed;
  }
  EXPECT_GE(resumed, 1u) << "no outcome recorded the restore point";
}

TEST(FarmCheckpoint, KeyframeCadenceBoundsTheChain) {
  runtime::SyntheticSpec spec;
  spec.jobs = 20;
  spec.seed = 5;
  const auto jobs = runtime::synthetic_jobs(spec);

  runtime::FarmConfig cfg = runtime::FarmConfigBuilder()
                                .deterministic()
                                .batch(2)
                                .checkpoint_every(1)
                                .incremental_checkpoints(true)
                                .checkpoint_keyframe_every(2)
                                .build();
  runtime::ChipFarm farm(cfg);
  for (const auto& job : jobs) farm.submit(job);
  farm.drain();

  std::vector<snapshot::Snapshot> chain;
  ASSERT_TRUE(farm.save_chip_chain(0, chain).ok());
  farm.shutdown();
  // keyframe + at most 2 cadence deltas + at most 1 drain-time delta.
  EXPECT_LE(chain.size(), 4u);
  ASSERT_FALSE(chain.empty());
  EXPECT_FALSE(snapshot::is_delta(chain.front()));
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_TRUE(snapshot::is_delta(chain[i])) << "link " << i;
  }
}

TEST(FarmCheckpoint, CheckpointingOffByDefaultAndInvisible) {
  // checkpoint_every_batches defaults to 0: no checkpoints, no
  // restores, outcomes bit-identical to a farm that has never heard of
  // snapshots (the hot path must not change).
  runtime::SyntheticSpec spec;
  spec.jobs = 8;
  spec.seed = 11;
  const auto jobs = runtime::synthetic_jobs(spec);

  runtime::FarmConfig plain;
  plain.deterministic = true;
  runtime::ChipFarm farm(plain);
  for (const auto& job : jobs) farm.submit(job);
  farm.drain();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  farm.shutdown();

  EXPECT_EQ(metrics.checkpoints, 0u);
  EXPECT_EQ(metrics.chip_restores, 0u);
  for (const auto& o : log) {
    EXPECT_EQ(o.resumed_from_cycle, 0u);
  }
}

}  // namespace
}  // namespace vlsip
