// Tests for the common utilities: RNG, statistics, tables, events, trace.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/activity_set.hpp"
#include "common/event_queue.hpp"
#include "common/simd.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"

namespace vlsip {
namespace {

// ---- RNG ------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformBoundZeroThrows) {
  Xoshiro256 rng(1);
  EXPECT_THROW(rng.uniform(0), PreconditionError);
}

TEST(Rng, UniformRangeInclusive) {
  Xoshiro256 rng(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Xoshiro256 rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(19);
  const double p = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  // mean = (1-p)/p = 3
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, GeometricPOneIsZero) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, GeometricRejectsBadP) {
  Xoshiro256 rng(29);
  EXPECT_THROW(rng.geometric(0.0), PreconditionError);
  EXPECT_THROW(rng.geometric(1.5), PreconditionError);
}

TEST(Rng, ShufflePreservesElements) {
  Xoshiro256 rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> a(v.begin(), v.end()), b(w.begin(), w.end());
  EXPECT_EQ(a, b);
}

// ---- RunningStats -----------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, VarianceMatchesDefinition) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // classic example
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(RunningStats, MergeBothEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeEmptyPreservesMoments) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.add(3.0);
  const double mean = a.mean();
  const double var = a.variance();
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_DOUBLE_EQ(a.variance(), var);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

// ---- Histogram ---------------------------------------------------------------

TEST(Histogram, CountsFall) {
  Histogram h(0, 10, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0, 10, 10);
  h.add(-5);
  h.add(100);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, EmptyQuantileIsLo) {
  Histogram h(3, 10, 7);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  // The endpoints too: an empty histogram has no mass to bracket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileEndpointsAndClampedQ) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  // q=0 is the range floor; q=1 is the top of the last occupied bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // Out-of-range q clamps to [0, 1] rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(Histogram, QuantileSingleBucket) {
  // One bucket: every quantile interpolates linearly across [lo, hi).
  Histogram h(0, 10, 1);
  h.add(2.0);
  h.add(7.0);
  h.add(9.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileAllMassClamped) {
  // All samples below lo: clamped into bucket 0, quantiles stay inside
  // that first bucket instead of reporting the (out-of-range) samples.
  Histogram low(0, 10, 10);
  for (int i = 0; i < 4; ++i) low.add(-50.0);
  EXPECT_DOUBLE_EQ(low.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(low.quantile(1.0), 1.0);
  // All samples above hi: clamped into the last bucket.
  Histogram high(0, 10, 10);
  high.add(1e9);
  high.add(1e9);
  EXPECT_DOUBLE_EQ(high.quantile(0.5), 9.5);
  EXPECT_DOUBLE_EQ(high.quantile(1.0), 10.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(5, 5, 10), PreconditionError);
  EXPECT_THROW(Histogram(0, 10, 0), PreconditionError);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0, 2, 2);
  h.add(0.5);
  const auto s = h.render();
  EXPECT_NE(s.find("#"), std::string::npos);
}

// ---- AsciiTable ----------------------------------------------------------------

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t({"a", "longheader"});
  t.add_row({"xxxx", "y"});
  const auto s = t.render();
  EXPECT_NE(s.find("| a    |"), std::string::npos);
  EXPECT_NE(s.find("| xxxx |"), std::string::npos);
}

TEST(AsciiTable, RejectsMismatchedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(AsciiTable, SeparatorRendered) {
  AsciiTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const auto s = t.render();
  // header rule + explicit separator = at least two rule lines
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("|--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_GE(rules, 2u);
}

TEST(Format, Pow10Basic) {
  EXPECT_EQ(format_pow10(5.32e8), "5.32 x 10^8");
  EXPECT_EQ(format_pow10(0.0), "0");
  EXPECT_EQ(format_pow10(-1.5e3), "-1.50 x 10^3");
}

TEST(Format, Pow10DecadeBoundary) {
  // 9.999e2 with 1 digit rounds to 10.0 -> must carry to 1.0 x 10^3.
  EXPECT_EQ(format_pow10(9.99e2, 1), "1.0 x 10^3");
}

TEST(Format, SigDigits) {
  EXPECT_EQ(format_sig(3.14159, 3), "3.14");
  EXPECT_EQ(format_sig(1234.5, 2), "1.2e+03");
}

// ---- EventQueue -------------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&](Cycle) { order.push_back(2); });
  q.schedule_at(1, [&](Cycle) { order.push_back(1); });
  q.schedule_at(9, [&](Cycle) { order.push_back(3); });
  q.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(3, [&order, i](Cycle) { order.push_back(i); });
  }
  q.run_until(3);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(2, [&](Cycle) { ++fired; });
  q.schedule_at(7, [&](Cycle) { ++fired; });
  q.run_until(5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, HandlerMaySchedule) {
  EventQueue q;
  int chain = 0;
  q.schedule_at(1, [&](Cycle now) {
    ++chain;
    q.schedule_in(now, 0, [&](Cycle) { ++chain; });
  });
  q.run_until(1);
  EXPECT_EQ(chain, 2);
}

TEST(EventQueue, NullHandlerThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1, nullptr), PreconditionError);
}

TEST(EventQueue, NextTimeOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), PreconditionError);
}

// ---- Trace ----------------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  Trace t(false);
  t.record(1, "cat", "message");
  EXPECT_TRUE(t.entries().empty());
}

TEST(Trace, EnabledRecordsAndCounts) {
  Trace t(true);
  t.record(1, "a", "first");
  t.record(2, "b", "second");
  t.record(3, "a", "third");
  EXPECT_EQ(t.count("a"), 2u);
  EXPECT_TRUE(t.contains("second"));
  std::uint64_t cycle = 0;
  EXPECT_TRUE(t.first_cycle_of("third", cycle));
  EXPECT_EQ(cycle, 3u);
  EXPECT_FALSE(t.first_cycle_of("missing", cycle));
}

TEST(Trace, RenderContainsFields) {
  Trace t(true);
  t.record(7, "cat", "msg");
  const auto s = t.render();
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("cat"), std::string::npos);
  EXPECT_NE(s.find("msg"), std::string::npos);
}

TEST(Trace, CapacityCapEvictsOldest) {
  Trace t(true);
  t.set_capacity(3);
  for (std::uint64_t c = 0; c < 5; ++c) {
    t.record(c, "cat", "m" + std::to_string(c));
  }
  ASSERT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.dropped(), 2u);
  // The oldest two entries are gone; the newest three survive in order.
  EXPECT_FALSE(t.contains("m0"));
  EXPECT_FALSE(t.contains("m1"));
  EXPECT_EQ(t.entries().front().message, "m2");
  EXPECT_EQ(t.entries().back().message, "m4");
}

TEST(Trace, ShrinkingCapacityEvictsImmediately) {
  Trace t(true);
  for (std::uint64_t c = 0; c < 4; ++c) t.record(c, "cat", "msg");
  t.set_capacity(2);
  EXPECT_EQ(t.entries().size(), 2u);
  EXPECT_EQ(t.dropped(), 2u);
  EXPECT_EQ(t.entries().front().cycle, 2u);
}

TEST(Trace, ClearEmptiesEntriesButKeepsLifetimeDropCount) {
  // Pinned semantics (see trace.hpp): dropped() counts capacity-cap
  // evictions over the trace's *lifetime*. clear() surrenders the
  // buffered entries without touching that counter — so a consumer
  // that periodically drains the trace can still tell eviction ever
  // happened — and the cleared entries themselves are not "dropped".
  Trace t(true);
  t.set_capacity(3);
  for (std::uint64_t c = 0; c < 5; ++c) t.record(c, "cat", "msg");
  ASSERT_EQ(t.entries().size(), 3u);
  ASSERT_EQ(t.dropped(), 2u);

  t.clear();
  EXPECT_TRUE(t.entries().empty());
  EXPECT_EQ(t.dropped(), 2u);  // lifetime value survives the clear

  // Recording resumes normally and further evictions keep accumulating
  // on top of the pre-clear count.
  for (std::uint64_t c = 0; c < 4; ++c) t.record(c, "cat", "again");
  EXPECT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.dropped(), 3u);
}

TEST(Trace, UnlimitedByDefault) {
  Trace t(true);
  EXPECT_EQ(t.capacity(), 0u);
  for (std::uint64_t c = 0; c < 100; ++c) t.record(c, "cat", "msg");
  EXPECT_EQ(t.entries().size(), 100u);
  EXPECT_EQ(t.dropped(), 0u);
}

// ---- percentile / histogram merge -----------------------------------------------

TEST(Percentile, InterpolatesOrderStatistics) {
  std::vector<double> s{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(s, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  // Input order must not matter.
  EXPECT_DOUBLE_EQ(percentile({40.0, 10.0, 30.0, 20.0}, 0.5), 25.0);
}

TEST(Histogram, MergeSumsBuckets) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(9.0);
  b.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.bucket(4), 1u);
  Histogram mismatched(0.0, 5.0, 5);
  EXPECT_THROW(a.merge(mismatched), PreconditionError);
}

// ---- ActivitySet / WakeQueue ----------------------------------------------

TEST(ActivitySet, InsertEraseDeduplicate) {
  ActivitySet set(100);
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(7));
  EXPECT_FALSE(set.insert(7));  // already present
  EXPECT_TRUE(set.insert(64));  // second word
  EXPECT_EQ(set.count(), 2u);
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(8));
  EXPECT_TRUE(set.erase(7));
  EXPECT_FALSE(set.erase(7));
  EXPECT_EQ(set.count(), 1u);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(ActivitySet, FillRespectsNonWordAlignedSize) {
  ActivitySet set(70);  // 64 + 6: tail word must be masked
  set.fill();
  EXPECT_EQ(set.count(), 70u);
  EXPECT_TRUE(set.contains(69));
  std::vector<std::uint32_t> ids;
  set.drain_to(ids);
  ASSERT_EQ(ids.size(), 70u);
  for (std::uint32_t i = 0; i < 70; ++i) EXPECT_EQ(ids[i], i);
  EXPECT_TRUE(set.empty());
}

TEST(ActivitySet, DrainVisitsAscendingAndClears) {
  ActivitySet set(200);
  for (const std::uint32_t id : {190u, 3u, 64u, 63u, 65u}) set.insert(id);
  std::vector<std::uint32_t> seen;
  set.drain_in_order([&](std::uint32_t id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{3, 63, 64, 65, 190}));
  EXPECT_TRUE(set.empty());
}

TEST(ActivitySet, DrainSeesInsertsAheadOfCursorOnly) {
  // The dense-scan property: an id inserted mid-drain is visited in the
  // same drain iff it lies strictly ahead of the cursor.
  ActivitySet set(200);
  set.insert(10);
  std::vector<std::uint32_t> seen;
  set.drain_in_order([&](std::uint32_t id) {
    seen.push_back(id);
    if (id == 10) {
      set.insert(5);    // behind: next drain
      set.insert(10);   // at cursor: next drain
      set.insert(11);   // ahead, same word: this drain
      set.insert(130);  // ahead, later word: this drain
    }
  });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{10, 11, 130}));
  EXPECT_EQ(set.count(), 2u);  // {5, 10} carried to the next drain
  seen.clear();
  set.drain_in_order([&](std::uint32_t id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{5, 10}));
}

TEST(ActivitySet, BoundaryIdsAcrossWordAndSummaryEdges) {
  // n straddles a summary-word boundary (4096 = 64 bitwords), so the
  // interesting ids sit at every level's edge: bit 0/63 of a word, the
  // first bit of the next word, and the first id covered by the second
  // summary word.
  const std::size_t n = 4100;
  ActivitySet set(n);
  const std::vector<std::uint32_t> edges = {0,    63,   64,   65,
                                            4095, 4096, 4099 /* n-1 */};
  for (const auto id : edges) EXPECT_TRUE(set.insert(id));
  for (const auto id : edges) EXPECT_TRUE(set.contains(id));
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(4097));
  std::vector<std::uint32_t> seen;
  set.drain_to(seen);
  EXPECT_EQ(seen, edges);  // ascending, all levels crossed
  EXPECT_TRUE(set.empty());
  // Erase down through the word-empty and summary-empty transitions.
  for (const auto id : edges) set.insert(id);
  for (const auto id : edges) EXPECT_TRUE(set.erase(id));
  EXPECT_TRUE(set.empty());
  set.drain_to(seen);
  EXPECT_TRUE(seen.empty());
}

TEST(ActivitySet, InsertDuringDrainAtWordBoundaries) {
  // Same dense-scan property as above, but with the mid-drain inserts
  // landing exactly on word and summary-word edges, where the cursor
  // hand-off between the bit loop and the summary walk happens.
  ActivitySet set(8192);
  set.insert(63);
  set.insert(4096);
  std::vector<std::uint32_t> seen;
  set.drain_in_order([&](std::uint32_t id) {
    seen.push_back(id);
    if (id == 63) {
      set.insert(64);    // ahead: first bit of the next word, this drain
      set.insert(63);    // at cursor on the last bit of a word: next drain
      set.insert(0);     // behind, word 0: next drain
      set.insert(4095);  // ahead: last id of the first summary word
    }
    if (id == 4096) {
      set.insert(4097);  // ahead within the second summary word
      set.insert(8191);  // ahead: the very last id
    }
  });
  EXPECT_EQ(seen,
            (std::vector<std::uint32_t>{63, 64, 4095, 4096, 4097, 8191}));
  seen.clear();
  set.drain_in_order([&](std::uint32_t id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 63}));
}

TEST(ActivitySet, EmptyAndFullSets) {
  ActivitySet empty_set(0);
  EXPECT_EQ(empty_set.size(), 0u);
  empty_set.fill();  // no words: must be a no-op
  EXPECT_TRUE(empty_set.empty());
  empty_set.drain_in_order([](std::uint32_t) { FAIL(); });

  // Full sets at word-aligned and summary-aligned sizes: fill() must
  // not leak bits past size, and the drain visits every id once.
  for (const std::size_t n : {64u, 128u, 4096u, 4100u}) {
    ActivitySet set(n);
    set.fill();
    EXPECT_EQ(set.count(), n);
    std::vector<std::uint32_t> seen;
    set.drain_to(seen);
    ASSERT_EQ(seen.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(seen[i], static_cast<std::uint32_t>(i));
    }
    EXPECT_TRUE(set.empty());
  }
}

TEST(ActivitySet, SparseDrainSkipsQuiescentRegions) {
  // 1024-cluster-scale id space with a handful of active ids: the
  // summary walk (and its SIMD sweep) must land on exactly the right
  // words, including the last id.
  const std::size_t n = 100000;
  ActivitySet set(n);
  const std::vector<std::uint32_t> ids = {2,     4095,  4096, 50000,
                                          65535, 65536, 99999};
  for (const auto id : ids) set.insert(id);
  std::vector<std::uint32_t> seen;
  set.drain_to(seen);
  EXPECT_EQ(seen, ids);
}

// ---- SIMD kernels ---------------------------------------------------------

// Every dispatched kernel must agree with its scalar reference on
// random buffers — including awkward lengths around the vector width.
TEST(SimdKernels, DispatchedKernelsMatchScalarReference) {
  (void)simd::level_name();  // callable on every build
  Xoshiro256 gen(20260808);
  for (const std::size_t n :
       {0u, 1u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u, 31u, 32u, 63u, 64u,
        65u, 100u}) {
    // Mostly-zero buffers so first_nonzero has real work to do.
    std::vector<std::uint64_t> words(n, 0);
    std::vector<std::uint8_t> bytes(n, 0);
    std::vector<std::uint16_t> lanes(std::min<std::size_t>(n, 32), 0);
    std::vector<std::uint32_t> u32s(n, 0);
    for (int trial = 0; trial < 50; ++trial) {
      for (auto& w : words) w = (gen.uniform(4) == 0) ? gen.next() : 0;
      for (auto& b : bytes) {
        b = static_cast<std::uint8_t>(gen.uniform(4) == 0 ? 1 : 0);
      }
      for (auto& l : lanes) l = static_cast<std::uint16_t>(gen.uniform(8));
      for (auto& u : u32s) u = gen.uniform(3);
      EXPECT_EQ(simd::first_nonzero_word(words.data(), n),
                simd::scalar::first_nonzero_word(words.data(), n));
      EXPECT_EQ(simd::first_nonzero_byte(bytes.data(), n),
                simd::scalar::first_nonzero_byte(bytes.data(), n));
      EXPECT_EQ(simd::range_all_zero(words.data(), n),
                simd::scalar::range_all_zero(words.data(), n));
      EXPECT_EQ(simd::nonzero_mask_u16(lanes.data(), lanes.size()),
                simd::scalar::nonzero_mask_u16(lanes.data(), lanes.size()));
      EXPECT_EQ(simd::lt_mask_u16(lanes.data(), lanes.size(), 4),
                simd::scalar::lt_mask_u16(lanes.data(), lanes.size(), 4));
      EXPECT_EQ(simd::count_nonzero_u32(u32s.data(), n),
                simd::scalar::count_nonzero_u32(u32s.data(), n));
      EXPECT_EQ(simd::popcount_words(words.data(), n),
                simd::scalar::popcount_words(words.data(), n));
      EXPECT_EQ(simd::max_u64(words.data(), n),
                simd::scalar::max_u64(words.data(), n));
    }
  }
}

TEST(SimdKernels, ForceScalarRoutesDispatchToReference) {
  std::vector<std::uint64_t> words(70, 0);
  words[68] = 0x10;
  simd::set_force_scalar(true);
  EXPECT_EQ(simd::first_nonzero_word(words.data(), words.size()), 68u);
  simd::set_force_scalar(false);
  EXPECT_EQ(simd::first_nonzero_word(words.data(), words.size()), 68u);
}

TEST(WakeQueue, PopDueDeliversIntoSet) {
  WakeQueue wake;
  ActivitySet set(64);
  wake.schedule(10, 1);
  wake.schedule(5, 2);
  wake.schedule(10, 3);
  wake.schedule(5, 2);  // duplicate: deduplicated by the set
  EXPECT_EQ(wake.next_time(), 5u);
  wake.pop_due(4, set);
  EXPECT_TRUE(set.empty());  // nothing due yet
  wake.pop_due(5, set);
  EXPECT_EQ(set.count(), 1u);
  EXPECT_TRUE(set.contains(2));
  EXPECT_EQ(wake.next_time(), 10u);
  wake.pop_due(100, set);
  EXPECT_EQ(set.count(), 3u);
  EXPECT_TRUE(wake.empty());
}

}  // namespace
}  // namespace vlsip
