// Compile-and-use check for the umbrella header and the chip layout
// renderer.
#include <gtest/gtest.h>

#include "vlsip.hpp"

namespace vlsip {
namespace {

TEST(Umbrella, EverythingReachableThroughOneInclude) {
  core::VlsiProcessor chip;
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);
  const auto prog = lang::compile("input x\noutput y = x * 3\n");
  const auto r = chip.run_program(
      proc, prog, {{"x", {arch::make_word_i(14)}}}, 1, 100000);
  ASSERT_TRUE(r.exec.completed);
  EXPECT_EQ(r.outputs.at("y")[0].i, 42);
}

TEST(Layout, RendererShowsOwnershipAndDefects) {
  core::ChipConfig cfg;
  cfg.width = 4;
  cfg.height = 4;
  cfg.cluster = topology::ClusterSpec{4, 4, 1};
  core::VlsiProcessor chip(cfg);
  const auto a = chip.fuse(3);
  chip.manager().mark_defective(10);
  const auto map = chip.render_layout();
  // 4 rows of 4 + newlines.
  EXPECT_EQ(map.size(), 4u * 5u);
  EXPECT_NE(map.find('A'), std::string::npos);
  EXPECT_NE(map.find('x'), std::string::npos);
  EXPECT_NE(map.find('.'), std::string::npos);
  // Exactly three clusters belong to processor A.
  EXPECT_EQ(std::count(map.begin(), map.end(),
                       static_cast<char>('A' + (a % 26))),
            3);
  chip.release(a);
  const auto map2 = chip.render_layout();
  EXPECT_EQ(map2.find('A'), std::string::npos);
}

}  // namespace
}  // namespace vlsip
