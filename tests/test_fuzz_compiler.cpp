// Fuzz harness for the lang::try_compile facade, driven by a fixed
// seed corpus.
//
// Each corpus entry (tests/corpus/kernel_sources.txt, path compiled in
// as VLSIP_KERNEL_CORPUS) names a (seed, mutations) pair. The seed
// picks a kernel family and width from the workload library; the
// harness then applies `mutations` rounds of seeded source mutation
// (byte flips, insertions, deletions, line splices, truncation) and
// asserts the try_compile contract on every mutant:
//   * it never throws — all compiler failures come back as a Status;
//   * every failure names a source line ("line N: ..."), with N >= 1
//     and no larger than the mutant's line count + 1.
// Everything derives from the corpus line, so a failure reproduces from
// the line alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "lang/compiler.hpp"
#include "workload/kernels.hpp"

#ifndef VLSIP_KERNEL_CORPUS
#error "VLSIP_KERNEL_CORPUS must point at the seed corpus file"
#endif

namespace vlsip {
namespace {

struct CorpusEntry {
  int line = 0;
  std::uint64_t seed = 0;
  std::size_t mutations = 0;
};

std::vector<CorpusEntry> load_corpus() {
  std::ifstream in(VLSIP_KERNEL_CORPUS);
  EXPECT_TRUE(in.good()) << "missing corpus: " << VLSIP_KERNEL_CORPUS;
  std::vector<CorpusEntry> corpus;
  std::string text_line;
  int number = 0;
  while (std::getline(in, text_line)) {
    ++number;
    if (text_line.empty() || text_line[0] == '#') continue;
    std::istringstream fields(text_line);
    CorpusEntry entry;
    entry.line = number;
    if (fields >> entry.seed >> entry.mutations) {
      corpus.push_back(entry);
    } else {
      ADD_FAILURE() << "malformed corpus line " << number << ": "
                    << text_line;
    }
  }
  return corpus;
}

std::string base_source(std::uint64_t seed) {
  workload::KernelSpec spec;
  spec.kind = static_cast<workload::KernelKind>(seed % workload::kKernelKinds);
  spec.width = 1 + static_cast<int>((seed / workload::kKernelKinds) % 12);
  return workload::kernel_source(spec);
}

/// One seeded mutation step. The alphabet mixes structure characters
/// (newlines, parens, operators) with identifier/digit bytes so
/// mutants hit the lexer, the parser, and the binder.
void mutate(std::string& source, Xoshiro256& rng) {
  static const char kAlphabet[] = "abcxyz019+-*/%(),=<>! \n\t#_.";
  const std::size_t kind = rng.uniform(5);
  if (source.empty()) {
    source.push_back(kAlphabet[rng.uniform(sizeof(kAlphabet) - 1)]);
    return;
  }
  const std::size_t at = rng.uniform(source.size());
  switch (kind) {
    case 0:  // substitute
      source[at] = kAlphabet[rng.uniform(sizeof(kAlphabet) - 1)];
      break;
    case 1:  // insert
      source.insert(source.begin() + static_cast<std::ptrdiff_t>(at),
                    kAlphabet[rng.uniform(sizeof(kAlphabet) - 1)]);
      break;
    case 2:  // delete
      source.erase(at, 1 + rng.uniform(3));
      break;
    case 3: {  // splice a chunk from elsewhere in the source
      const std::size_t from = rng.uniform(source.size());
      const std::size_t len =
          std::min<std::size_t>(1 + rng.uniform(16), source.size() - from);
      source.insert(at, source.substr(from, len));
      break;
    }
    case 4:  // truncate the tail
      source.resize(at);
      break;
  }
}

std::size_t line_count(const std::string& source) {
  std::size_t lines = 1;
  for (const char c : source) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(FuzzCompiler, PristineKernelSourcesAlwaysCompile) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto source = base_source(seed);
    lang::CompileError error;
    const auto program = lang::try_compile(source, &error);
    EXPECT_TRUE(program.ok()) << source << "\n" << error.message;
  }
}

TEST(FuzzCompiler, TryCompileNeverThrowsAndErrorsNameALine) {
  std::size_t mutants = 0;
  std::size_t failures = 0;
  for (const auto& entry : load_corpus()) {
    SCOPED_TRACE("corpus line " + std::to_string(entry.line));
    Xoshiro256 rng(entry.seed);
    std::string source = base_source(entry.seed);
    for (std::size_t m = 0; m < entry.mutations; ++m) {
      mutate(source, rng);
      ++mutants;
      lang::CompileError error;
      bool threw = false;
      Status status = Status::Ok();
      try {
        auto program = lang::try_compile(source, &error);
        status = program.status();
      } catch (...) {
        threw = true;
      }
      ASSERT_FALSE(threw) << "try_compile threw on mutant:\n" << source;
      if (status.ok()) continue;
      ++failures;
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
      EXPECT_GE(error.line, 1) << status.message();
      // "+ 1" because a missing-output error is attributed past the
      // last parsed line of an empty program.
      EXPECT_LE(static_cast<std::size_t>(error.line),
                line_count(source) + 1)
          << status.message();
      EXPECT_NE(error.message.find("line "), std::string::npos)
          << status.message();
    }
  }
  // The corpus must actually exercise the error path, not just happen
  // to keep every mutant compilable.
  EXPECT_GT(mutants, 0u);
  EXPECT_GT(failures, 0u);
}

TEST(FuzzCompiler, HostileHandWrittenSources) {
  const char* cases[] = {
      "",
      "\n\n\n",
      "output",
      "input x\noutput y = x +\n",
      "input x\noutput y = x * 99999999999999999999999999999\n",
      "input x\noutput y = q + 1\n",
      "rec s = delay(s, 0)\n",
      "input x\ny = delay(x)\noutput y\n",
      "input x\noutput y = x / \n# trailing comment",
      "input x\ninput x\noutput y = x\n",
      "((((((((((\n",
  };
  for (const auto* source : cases) {
    lang::CompileError error;
    const auto program = lang::try_compile(source, &error);
    if (!program.ok()) {
      EXPECT_GE(error.line, 1) << source;
      EXPECT_NE(error.message.find("line "), std::string::npos) << source;
    }
  }
}

}  // namespace
}  // namespace vlsip
