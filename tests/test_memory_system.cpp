// Tests for the multi-bank memory system (16 memory objects per minimum
// AP, word-interleaved, single-ported banks).
#include <gtest/gtest.h>

#include "ap/memory_block.hpp"
#include "arch/datapath.hpp"
#include "ap/adaptive_processor.hpp"
#include "common/require.hpp"

namespace vlsip::ap {
namespace {

TEST(MemorySystem, SizeIsSumOfBanks) {
  MemorySystem m(4, MemoryBlockConfig{16, 2});
  EXPECT_EQ(m.size(), 64u);
  EXPECT_EQ(m.block_count(), 4);
}

TEST(MemorySystem, WordInterleaving) {
  MemorySystem m(4, MemoryBlockConfig{16, 2});
  EXPECT_EQ(m.bank_of(0), 0);
  EXPECT_EQ(m.bank_of(1), 1);
  EXPECT_EQ(m.bank_of(5), 1);
  EXPECT_EQ(m.bank_of(7), 3);
}

TEST(MemorySystem, ReadWriteRoundTripAcrossBanks) {
  MemorySystem m(4, MemoryBlockConfig{16, 2});
  for (std::size_t a = 0; a < m.size(); ++a) {
    m.write(a, arch::make_word_u(a * 3 + 1));
  }
  for (std::size_t a = 0; a < m.size(); ++a) {
    EXPECT_EQ(m.read(a).u, a * 3 + 1);
  }
}

TEST(MemorySystem, FillSpansBanks) {
  MemorySystem m(2, MemoryBlockConfig{8, 1});
  m.fill(3, {arch::make_word_u(7), arch::make_word_u(8),
             arch::make_word_u(9)});
  EXPECT_EQ(m.read(3).u, 7u);
  EXPECT_EQ(m.read(4).u, 8u);
  EXPECT_EQ(m.read(5).u, 9u);
}

TEST(MemorySystem, BoundsChecked) {
  MemorySystem m(2, MemoryBlockConfig{8, 1});
  EXPECT_THROW(m.read(16), vlsip::PreconditionError);
  EXPECT_THROW(m.write(16, arch::make_word_u(0)),
               vlsip::PreconditionError);
  EXPECT_THROW(m.bank_of(99), vlsip::PreconditionError);
  EXPECT_THROW(MemorySystem(0), vlsip::PreconditionError);
}

TEST(MemorySystem, SameBankAccessesConflict) {
  MemorySystem m(4, MemoryBlockConfig{16, 3});
  // Two accesses to bank 0 at the same cycle: the second waits.
  EXPECT_EQ(m.access_at(0, 10), 13u);
  EXPECT_EQ(m.access_at(4, 10), 16u);  // address 4 -> bank 0 again
  EXPECT_EQ(m.bank_conflicts(), 1u);
}

TEST(MemorySystem, DifferentBanksOverlap) {
  MemorySystem m(4, MemoryBlockConfig{16, 3});
  EXPECT_EQ(m.access_at(0, 10), 13u);
  EXPECT_EQ(m.access_at(1, 10), 13u);
  EXPECT_EQ(m.access_at(2, 10), 13u);
  EXPECT_EQ(m.bank_conflicts(), 0u);
}

TEST(MemorySystem, BankFreesAfterAccess) {
  MemorySystem m(1, MemoryBlockConfig{8, 5});
  EXPECT_EQ(m.access_at(0, 0), 5u);
  EXPECT_EQ(m.access_at(0, 100), 105u);  // long idle: no wait
  EXPECT_EQ(m.bank_conflicts(), 0u);
}

TEST(MemorySystem, ApStreamsConflictOnSingleBank) {
  // Two concurrent load objects hitting the same bank are slower than
  // two hitting different banks.
  auto run_with = [&](std::size_t addr_a, std::size_t addr_b) {
    arch::DatapathBuilder b;
    const auto la =
        b.op(arch::Opcode::kLoad, b.constant_i(static_cast<std::int64_t>(addr_a)));
    const auto lb =
        b.op(arch::Opcode::kLoad, b.constant_i(static_cast<std::int64_t>(addr_b)));
    b.output("a", la);
    b.output("b", lb);
    auto p = std::move(b).build();
    ApConfig cfg;
    cfg.capacity = 16;
    cfg.memory_blocks = 4;
    AdaptiveProcessor ap(cfg);
    ap.configure(p);
    const auto exec = ap.run(4, 100000);
    EXPECT_TRUE(exec.completed);
    return ap.memory().bank_conflicts();
  };
  const auto same_bank = run_with(0, 4);      // both bank 0
  const auto diff_bank = run_with(0, 1);      // banks 0 and 1
  EXPECT_GT(same_bank, diff_bank);
}

}  // namespace
}  // namespace vlsip::ap
