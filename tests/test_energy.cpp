// Tests for the live energy/DVS accounting spine (docs/ENERGY.md):
// EnergyModel pricing, the chip-level meter and its snapshot section,
// the DvsGovernor policy, and the farm-level energy-aware scheduling
// path — including the headline scenario where an energy budget trades
// p99 latency for a >= 20% joules-per-job reduction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/vlsi_processor.hpp"
#include "costmodel/energy.hpp"
#include "obs/metrics.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/dvs_governor.hpp"
#include "runtime/farm_config_builder.hpp"
#include "snapshot/incremental.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip {
namespace {

using cost::DvsPoint;
using cost::EnergyActivity;
using cost::EnergyModel;
using cost::EnergySpec;

EnergyModel make_model(int year = 2012) {
  EnergySpec spec;
  spec.enabled = true;
  spec.node_year = year;
  return EnergyModel(spec);
}

// --- EnergyModel --------------------------------------------------------

TEST(EnergyModel, PerEventCostsArePositiveAndOrdered) {
  const auto model = make_model();
  // Costs are area-derived, so they must follow Table 1: the integer
  // datapath (iMul + iALU/Shift + iDiv, 3.71e8 lambda^2) out-areas the
  // FPU pair (fMul/fAdd + fDiv, 1.56e8 lambda^2), and a memory access
  // touches more silicon than a transport hop.
  EXPECT_GT(model.unit_fj(cost::kEnergyFloatOp, 0), 0u);
  EXPECT_GT(model.unit_fj(cost::kEnergyIntOp, 0),
            model.unit_fj(cost::kEnergyFloatOp, 0));
  EXPECT_GT(model.unit_fj(cost::kEnergyMemOp, 0),
            model.unit_fj(cost::kEnergyTransportOp, 0));
  // Idle cycles are priced as leakage, never switching.
  EXPECT_EQ(model.unit_fj(cost::kEnergyIdleCycle, 0), 0u);
  EXPECT_GT(model.leak_fj_per_idle_cycle(0), 0u);
}

TEST(EnergyModel, LadderScalesDynamicEnergyDown) {
  const auto model = make_model();
  ASSERT_GE(model.levels(), 2u);
  for (std::size_t l = 1; l < model.levels(); ++l) {
    // Every step down the default ladder lowers the voltage, so every
    // dynamic class gets cheaper per event.
    EXPECT_LT(model.point(l).volt_pct, model.point(l - 1).volt_pct);
    EXPECT_LE(model.unit_fj(cost::kEnergyIntOp, l),
              model.unit_fj(cost::kEnergyIntOp, l - 1));
    EXPECT_LT(model.unit_fj(cost::kEnergyFloatOp, l),
              model.unit_fj(cost::kEnergyFloatOp, l - 1));
  }
}

TEST(EnergyModel, NewerNodesAreCheaperPerOp) {
  // Smaller feature -> smaller area -> lower capacitance and voltage.
  EXPECT_LT(make_model(2015).unit_fj(cost::kEnergyIntOp, 0),
            make_model(2010).unit_fj(cost::kEnergyIntOp, 0));
  // ... which is exactly why GOPS/W climbs across Table 4's nodes.
  EXPECT_GT(cost::gops_per_watt(2015), cost::gops_per_watt(2010));
}

TEST(EnergyModel, PricingIsPureIntegerArithmetic) {
  const auto model = make_model();
  EnergyActivity a;
  a.units[cost::kEnergyIntOp] = 1000;
  a.units[cost::kEnergyFloatOp] = 10;
  a.units[cost::kEnergyIdleCycle] = 77;
  const auto priced = model.price(a, 1);
  EXPECT_EQ(priced.dynamic_fj[cost::kEnergyIntOp],
            1000 * model.unit_fj(cost::kEnergyIntOp, 1));
  EXPECT_EQ(priced.dynamic_fj[cost::kEnergyFloatOp],
            10 * model.unit_fj(cost::kEnergyFloatOp, 1));
  EXPECT_EQ(priced.leakage_fj, 77 * model.leak_fj_per_idle_cycle(1));
  EXPECT_EQ(priced.total_fj(),
            priced.dynamic_total_fj() + priced.leakage_fj);
}

TEST(EnergyModel, RejectsBadLadders) {
  EnergySpec bad;
  bad.enabled = true;
  bad.ladder = {{0, 100}};
  EXPECT_THROW(EnergyModel{bad}, PreconditionError);
  bad.ladder = {{100, 101}};
  EXPECT_THROW(EnergyModel{bad}, PreconditionError);
  bad.ladder = {{100, 100}};
  bad.initial_level = 1;
  EXPECT_THROW(EnergyModel{bad}, PreconditionError);
}

// --- DvsGovernor --------------------------------------------------------

runtime::DvsConfig governor_cfg(std::uint64_t budget,
                                std::uint64_t guardrail = 0) {
  runtime::DvsConfig cfg;
  cfg.enabled = true;
  cfg.energy_budget_fj_per_job = budget;
  cfg.p99_guardrail_ticks = guardrail;
  return cfg;
}

TEST(DvsGovernor, ThrottlesDownWhenOverBudget) {
  const auto model = make_model();
  runtime::DvsGovernor gov(governor_cfg(1000), &model);
  // 10 jobs at 5000 fJ mean, budget 1000: one step down per decision.
  EXPECT_EQ(gov.decide(0, 10, 50000, 0), 1u);
  EXPECT_EQ(gov.decide(1, 20, 100000, 0), 2u);
  // At the ladder floor it holds rather than stepping off the end.
  EXPECT_EQ(gov.decide(model.levels() - 1, 30, 150000, 0),
            model.levels() - 1);
}

TEST(DvsGovernor, P99GuardrailBeatsEnergyBudget) {
  const auto model = make_model();
  runtime::DvsGovernor gov(governor_cfg(1000, 500), &model);
  // Over budget AND over the latency guardrail: latency wins, step up.
  EXPECT_EQ(gov.decide(2, 10, 50000, 900), 1u);
  // Guardrail breach at the top level has nowhere to go.
  runtime::DvsGovernor top(governor_cfg(1000, 500), &model);
  EXPECT_EQ(top.decide(0, 10, 50000, 900), 1u);  // still over budget
}

TEST(DvsGovernor, ProbesBackUpWithHeadroom) {
  const auto model = make_model();
  runtime::DvsGovernor gov(governor_cfg(1'000'000), &model);
  // Mean 100 fJ/job at level 2 is far under a 1e6 budget even re-priced
  // at level 1's voltage: probe up.
  EXPECT_EQ(gov.decide(2, 10, 1000, 0), 1u);
}

TEST(DvsGovernor, ReanchorsWhenMetersReset) {
  const auto model = make_model();
  runtime::DvsGovernor gov(governor_cfg(1), &model);
  EXPECT_EQ(gov.decide(0, 10, 50000, 0), 1u);
  // A chip swap rewinds the lifetime meters; the governor must hold
  // steady and re-anchor instead of underflowing the window.
  EXPECT_EQ(gov.decide(1, 2, 300, 0), 1u);
  EXPECT_EQ(gov.decide(1, 4, 90000, 0), 2u);  // window works again
}

TEST(DvsGovernor, DisabledGovernorNeverSteps) {
  const auto model = make_model();
  runtime::DvsGovernor off(runtime::DvsConfig{}, &model);
  EXPECT_EQ(off.decide(0, 10, 1'000'000'000, 1'000'000), 0u);
  runtime::DvsGovernor no_model(governor_cfg(1), nullptr);
  EXPECT_EQ(no_model.decide(0, 10, 1'000'000'000, 0), 0u);
}

// --- chip meter ---------------------------------------------------------

core::ChipConfig energy_chip(int width = 4, int height = 4) {
  return core::ChipConfigBuilder()
      .grid(width, height)
      .cluster(8, 8)
      .energy(true)
      .build();
}

scaling::Job tiny_job(const std::string& name, int stages = 3,
                      std::size_t clusters = 1) {
  scaling::Job j;
  j.name = name;
  j.program = arch::linear_pipeline_program(stages);
  j.inputs = {{"in", {arch::make_word_i(1)}}};
  j.expected_per_output = 1;
  j.requested_clusters = clusters;
  return j;
}

std::uint64_t run_one_job(core::VlsiProcessor& chip) {
  const auto before = chip.energy_total_fj();
  const auto outcome =
      scaling::run_job(chip.manager(), tiny_job("meter"), {});
  EXPECT_TRUE(outcome.completed);
  return chip.energy_total_fj() - before;
}

TEST(ChipEnergyMeter, DisabledByDefaultAndFreeWhenOff) {
  core::VlsiProcessor chip(core::ChipConfig{});
  EXPECT_FALSE(chip.energy_enabled());
  EXPECT_EQ(chip.energy_model(), nullptr);
  EXPECT_EQ(chip.energy_total_fj(), 0u);
  // The activity fold still works (it is counter-derived) — it just
  // prices to nothing.
  EXPECT_EQ(chip.energy_breakdown().total_fj(), 0u);
}

TEST(ChipEnergyMeter, MeterAdvancesWithWorkAndIsDeterministic) {
  core::VlsiProcessor a(energy_chip());
  core::VlsiProcessor b(energy_chip());
  const auto fj_a = run_one_job(a);
  const auto fj_b = run_one_job(b);
  EXPECT_GT(fj_a, 0u);
  EXPECT_EQ(fj_a, fj_b);  // bit-identical per identical run
  // The breakdown attributes the work: config cycles (the wormhole),
  // NoC flits, CSD handshakes and executor ops all fired.
  const auto breakdown = a.energy_breakdown();
  EXPECT_GT(breakdown.dynamic_fj[cost::kEnergyConfigCycle], 0u);
  EXPECT_GT(breakdown.dynamic_fj[cost::kEnergyNocFlit], 0u);
  EXPECT_GT(breakdown.dynamic_fj[cost::kEnergyCsdHandshake], 0u);
  EXPECT_GT(breakdown.dynamic_fj[cost::kEnergyIntOp], 0u);
}

TEST(ChipEnergyMeter, RetiredProcessorsKeepTheirBill) {
  core::VlsiProcessor chip(energy_chip());
  const auto fj = run_one_job(chip);  // run_job releases the processor
  EXPECT_GT(fj, 0u);
  // The released AP is gone from the manager, but its activity was
  // folded into the retired meter — the total must not shrink.
  EXPECT_GE(chip.energy_total_fj(), fj);
}

TEST(ChipEnergyMeter, SetDvsLevelSettlesWithoutLosingEnergy) {
  core::VlsiProcessor chip(energy_chip());
  run_one_job(chip);
  const auto before = chip.energy_total_fj();
  chip.set_dvs_level(2);
  EXPECT_EQ(chip.dvs_level(), 2u);
  EXPECT_EQ(chip.dvs_transitions(), 1u);
  // Settling re-prices nothing retroactively: the meter is unchanged.
  EXPECT_EQ(chip.energy_total_fj(), before);
  // New work at the lower point is cheaper than the same work was at
  // nominal voltage.
  const auto throttled_fj = run_one_job(chip);
  core::VlsiProcessor nominal(energy_chip());
  const auto first = run_one_job(nominal);
  const auto nominal_fj = run_one_job(nominal);  // same warm-chip state
  EXPECT_GT(first, 0u);
  EXPECT_LT(throttled_fj, nominal_fj);
}

TEST(ChipEnergyMeter, SnapshotRoundTripPreservesDvsState) {
  core::VlsiProcessor chip(energy_chip());
  run_one_job(chip);
  chip.set_dvs_level(1);
  run_one_job(chip);
  const auto total = chip.energy_total_fj();
  const auto breakdown = chip.energy_breakdown();

  snapshot::Snapshot snap;
  ASSERT_TRUE(chip.save(snap).ok());
  core::VlsiProcessor resumed(energy_chip());
  ASSERT_TRUE(resumed.restore(snap).ok());
  EXPECT_EQ(resumed.dvs_level(), 1u);
  EXPECT_EQ(resumed.dvs_transitions(), 1u);
  EXPECT_EQ(resumed.energy_total_fj(), total);
  for (std::size_t c = 0; c < cost::kEnergyClassCount; ++c) {
    EXPECT_EQ(resumed.energy_breakdown().dynamic_fj[c],
              breakdown.dynamic_fj[c])
        << cost::energy_class_name(c);
  }
  // And the resumed chip keeps metering at the restored level.
  const auto more = run_one_job(resumed);
  EXPECT_GT(more, 0u);
}

TEST(ChipEnergyMeter, EnergyOffSnapshotHasNoEnergySection) {
  core::ChipConfig off_cfg;
  off_cfg.width = off_cfg.height = 4;
  core::VlsiProcessor off_chip(off_cfg);
  snapshot::Snapshot snap;
  ASSERT_TRUE(off_chip.save(snap).ok());
  const auto& bytes = snap.bytes();
  const std::string needle = "core.energy";
  const auto it = std::search(bytes.begin(), bytes.end(), needle.begin(),
                              needle.end());
  EXPECT_EQ(it, bytes.end())
      << "energy-off snapshots must stay byte-compatible with "
         "pre-energy builds";
}

TEST(ChipEnergyMeter, ExportObsEmitsEnergyKeysOnlyWhenOn) {
  core::VlsiProcessor on(energy_chip());
  run_one_job(on);
  obs::MetricRegistry reg_on;
  on.export_obs(reg_on);
  bool saw_energy = false;
  for (const auto& [name, value] : reg_on.counters()) {
    if (name.rfind("chip.energy.", 0) == 0) saw_energy = true;
  }
  EXPECT_TRUE(saw_energy);

  core::ChipConfig off_cfg;
  off_cfg.width = off_cfg.height = 4;
  core::VlsiProcessor off(off_cfg);
  obs::MetricRegistry reg_off;
  off.export_obs(reg_off);
  for (const auto& [name, value] : reg_off.counters()) {
    EXPECT_NE(name.rfind("chip.energy.", 0), 0u) << name;
  }
}

// --- farm scheduling ----------------------------------------------------

runtime::FarmConfig farm_cfg(std::uint64_t budget_fj_per_job,
                             bool dvs_on = true) {
  runtime::FarmConfigBuilder b;
  b.deterministic()
      .batch(1)  // one governor decision per job
      .keep_outcome_log(true);
  if (dvs_on) {
    b.chip(energy_chip()).dvs(budget_fj_per_job);
  } else {
    // The true energy-off baseline: no meter, no governor, zero bills.
    b.chip(core::ChipConfigBuilder().grid(4, 4).cluster(8, 8).build());
  }
  return b.build();
}

std::vector<scaling::JobOutcome> serve_jobs(const runtime::FarmConfig& cfg,
                                            int n_jobs) {
  runtime::ChipFarm farm(cfg);
  for (int i = 0; i < n_jobs; ++i) {
    EXPECT_TRUE(farm.submit(tiny_job("job" + std::to_string(i))).admitted);
  }
  farm.drain();
  auto log = farm.outcome_log();
  farm.shutdown();
  return log;
}

TEST(EnergyFarm, OutcomesCarryDeterministicEnergyBills) {
  const auto log_a = serve_jobs(farm_cfg(0), 6);
  const auto log_b = serve_jobs(farm_cfg(0), 6);
  ASSERT_EQ(log_a.size(), 6u);
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_TRUE(log_a[i].completed) << log_a[i].detail;
    EXPECT_GT(log_a[i].energy_fj, 0u);
    EXPECT_EQ(log_a[i].energy_fj, log_b[i].energy_fj) << "job " << i;
    EXPECT_EQ(log_a[i].finished_at, log_b[i].finished_at) << "job " << i;
  }
}

TEST(EnergyFarm, MeteringAtNominalLevelDoesNotPerturbTheSchedule) {
  // Energy accounting with no budget keeps every chip at 100% frequency,
  // so the virtual-clock schedule must be bit-identical to energy-off.
  const auto with_meter = serve_jobs(farm_cfg(0, true), 6);
  const auto without = serve_jobs(farm_cfg(0, false), 6);
  ASSERT_EQ(with_meter.size(), without.size());
  for (std::size_t i = 0; i < with_meter.size(); ++i) {
    EXPECT_EQ(with_meter[i].finished_at, without[i].finished_at)
        << "job " << i;
    EXPECT_EQ(without[i].energy_fj, 0u);  // off = bills stay zero
  }
}

TEST(EnergyFarm, EnergyBudgetCutsJoulesPerJobTradingP99) {
  // The headline scenario: a tight budget drives the governor down the
  // ladder; joules-per-job must drop >= 20% vs the unbudgeted run, paid
  // for with a strictly higher p99 (slower effective clock).
  const int n_jobs = 30;
  const auto nominal = serve_jobs(farm_cfg(0), n_jobs);
  const auto budgeted = serve_jobs(farm_cfg(1), n_jobs);  // 1 fJ: floor it
  ASSERT_EQ(nominal.size(), budgeted.size());

  auto mean_fj = [](const std::vector<scaling::JobOutcome>& log) {
    std::uint64_t total = 0;
    for (const auto& o : log) total += o.energy_fj;
    return static_cast<double>(total) / static_cast<double>(log.size());
  };
  auto p99_ticks = [](const std::vector<scaling::JobOutcome>& log) {
    std::vector<std::uint64_t> lat;
    lat.reserve(log.size());
    for (const auto& o : log) lat.push_back(o.turnaround());
    std::sort(lat.begin(), lat.end());
    return lat[lat.size() - 1];  // max = p99 upper bound on 30 samples
  };

  const double nominal_fj = mean_fj(nominal);
  const double budgeted_fj = mean_fj(budgeted);
  ASSERT_GT(nominal_fj, 0.0);
  EXPECT_LE(budgeted_fj, nominal_fj * 0.8)
      << "energy budget must cut joules-per-job by >= 20% (nominal "
      << nominal_fj << " fJ, budgeted " << budgeted_fj << " fJ)";
  EXPECT_GT(p99_ticks(budgeted), p99_ticks(nominal))
      << "the joules saving must be paid for in latency";
}

TEST(EnergyFarm, P99GuardrailArrestsTheDescent) {
  // Same tight budget, but a guardrail set below the throttled latency:
  // the governor must bounce back up instead of pinning the floor.
  runtime::FarmConfigBuilder b;
  b.deterministic().batch(1).keep_outcome_log(true).chip(energy_chip());
  b.dvs(1).p99_guardrail(1);  // any latency breaches: never throttle far
  runtime::ChipFarm farm(b.build());
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(farm.submit(tiny_job("g" + std::to_string(i))).admitted);
  }
  farm.drain();
  const auto metrics = farm.metrics();
  farm.shutdown();
  // Down-steps and up-steps both count; with the guardrail fighting the
  // budget the governor oscillates instead of walking to the floor.
  EXPECT_GT(metrics.dvs_level_changes, 2u);
}

TEST(EnergyFarm, FarmMetricsAggregateEnergy) {
  runtime::ChipFarm farm(farm_cfg(0));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(farm.submit(tiny_job("m" + std::to_string(i))).admitted);
  }
  farm.drain();
  const auto metrics = farm.metrics();
  std::uint64_t from_log = 0;
  for (const auto& o : farm.outcome_log()) from_log += o.energy_fj;
  farm.shutdown();
  EXPECT_GT(metrics.energy_fj, 0u);
  EXPECT_EQ(metrics.energy_fj, from_log);
  EXPECT_EQ(metrics.job_energy_fj.count(), 4u);
  const std::string rendered = metrics.render("cycles");
  EXPECT_NE(rendered.find("energy:"), std::string::npos);
}

// --- checkpoint chain cap -----------------------------------------------

TEST(CheckpointChainCap, ForcesKeyframesAtTheConfiguredCadence) {
  runtime::FarmConfigBuilder b;
  b.deterministic()
      .batch(1)
      .keep_outcome_log(true)
      .chip(energy_chip())
      .checkpoint_every(1)
      .incremental_checkpoints(true)
      .checkpoint_keyframe_every(100)  // cadence alone would never cap
      .checkpoint_chain_max_links(3);
  runtime::ChipFarm farm(b.build());
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(farm.submit(tiny_job("c" + std::to_string(i))).admitted);
  }
  farm.drain();
  std::vector<snapshot::Snapshot> chain;
  ASSERT_TRUE(farm.save_chip_chain(0, chain).ok());
  // The stored chain is keyframe + deltas, capped at 3 links;
  // save_chip_chain appends at most one more delta for the live state.
  EXPECT_LE(chain.size(), 4u);
  // The capped chain still materializes to the exact current state.
  snapshot::Snapshot full;
  ASSERT_TRUE(farm.save_chip(0, full).ok());
  const auto materialized = snapshot::materialize_chain(chain);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(materialized->bytes(), full.bytes());
  const auto metrics = farm.metrics();
  farm.shutdown();
  EXPECT_EQ(metrics.checkpoints, 9u);
}

TEST(CheckpointChainCap, BuilderRejectsCapWithoutIncremental) {
  runtime::FarmConfigBuilder b;
  b.chip(energy_chip()).checkpoint_every(1).checkpoint_chain_max_links(3);
  EXPECT_FALSE(b.try_build().ok());
}

TEST(CheckpointChainCap, UncappedChainsStillGrowToKeyframeCadence) {
  runtime::FarmConfigBuilder b;
  b.deterministic()
      .batch(1)
      .chip(energy_chip())
      .checkpoint_every(1)
      .incremental_checkpoints(true)
      .checkpoint_keyframe_every(100);
  runtime::ChipFarm farm(b.build());
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(farm.submit(tiny_job("u" + std::to_string(i))).admitted);
  }
  farm.drain();
  std::vector<snapshot::Snapshot> chain;
  ASSERT_TRUE(farm.save_chip_chain(0, chain).ok());
  farm.shutdown();
  // 9 checkpoints under a 100-delta cadence: 1 keyframe + 8 deltas
  // (+ up to 1 live delta) — proof the cap test above actually bit.
  EXPECT_GE(chain.size(), 9u);
}

// --- DVS state across farm checkpoint/resume ----------------------------

TEST(EnergyFarm, QuarantineRestorePreservesDvsLevel) {
  // Throttle a chip via the governor, checkpoint it, then force a
  // quarantine: the replacement restores the checkpoint and must come
  // back at the throttled DVS level, not nominal.
  runtime::FarmConfigBuilder b;
  b.deterministic()
      .batch(1)
      .keep_outcome_log(true)
      .chip(energy_chip())
      .dvs(1)  // floor the ladder fast
      .checkpoint_every(1);
  runtime::ChipFarm farm(b.build());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(farm.submit(tiny_job("q" + std::to_string(i))).admitted);
  }
  farm.drain();
  snapshot::Snapshot snap;
  ASSERT_TRUE(farm.save_chip(0, snap).ok());
  farm.shutdown();

  core::VlsiProcessor resumed(energy_chip());
  ASSERT_TRUE(resumed.restore(snap).ok());
  EXPECT_GT(resumed.dvs_level(), 0u)
      << "the governor should have throttled below nominal by now";
  EXPECT_GT(resumed.dvs_transitions(), 0u);
}

}  // namespace
}  // namespace vlsip
