// Tests for the processor state machine (fig. 6 e) and the scaling
// manager (fuse/split, wormhole configuration, IPC, defect tolerance).
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/scaling_manager.hpp"
#include "scaling/state_machine.hpp"
#include "topology/s_topology.hpp"

namespace vlsip::scaling {
namespace {

// ---- State machine ------------------------------------------------------------

TEST(Fsm, LifecycleHappyPath) {
  ProcessorStateMachine m;
  EXPECT_EQ(m.state(), ProcState::kRelease);
  m.allocate();
  EXPECT_EQ(m.state(), ProcState::kInactive);
  EXPECT_TRUE(m.accepts_external_writes());
  m.activate();
  EXPECT_EQ(m.state(), ProcState::kActive);
  EXPECT_TRUE(m.read_protected());
  EXPECT_TRUE(m.write_protected());
  EXPECT_FALSE(m.accepts_external_writes());
  m.deactivate();
  EXPECT_EQ(m.state(), ProcState::kInactive);
  EXPECT_FALSE(m.read_protected());
  m.release();
  EXPECT_EQ(m.state(), ProcState::kRelease);
}

TEST(Fsm, SleepWithTimer) {
  ProcessorStateMachine m;
  m.allocate();
  m.activate();
  m.sleep(100);
  EXPECT_EQ(m.state(), ProcState::kSleep);
  EXPECT_TRUE(m.read_protected());  // still protected while sleeping
  EXPECT_FALSE(m.timer_expired(99));
  EXPECT_TRUE(m.timer_expired(100));
  m.wake();
  EXPECT_EQ(m.state(), ProcState::kActive);
  EXPECT_FALSE(m.wake_at().has_value());
}

TEST(Fsm, SleepWaitingForEventHasNoTimer) {
  ProcessorStateMachine m;
  m.allocate();
  m.activate();
  m.sleep(std::nullopt);
  EXPECT_FALSE(m.timer_expired(1u << 30));
  m.wake();
  EXPECT_EQ(m.state(), ProcState::kActive);
}

TEST(Fsm, IllegalTransitionsThrow) {
  ProcessorStateMachine m;
  EXPECT_THROW(m.activate(), vlsip::PreconditionError);
  EXPECT_THROW(m.release(), vlsip::PreconditionError);
  m.allocate();
  EXPECT_THROW(m.allocate(), vlsip::PreconditionError);
  EXPECT_THROW(m.deactivate(), vlsip::PreconditionError);
  EXPECT_THROW(m.sleep(5), vlsip::PreconditionError);
  EXPECT_THROW(m.wake(), vlsip::PreconditionError);
  m.activate();
  m.sleep(std::nullopt);
  EXPECT_THROW(m.release(), vlsip::PreconditionError);  // not from sleep
}

TEST(Fsm, ReleaseFromActiveForDefects) {
  ProcessorStateMachine m;
  m.allocate();
  m.activate();
  m.release();  // allowed: defect removal
  EXPECT_EQ(m.state(), ProcState::kRelease);
}

TEST(Fsm, StateNames) {
  EXPECT_STREQ(state_name(ProcState::kRelease), "release");
  EXPECT_STREQ(state_name(ProcState::kSleep), "sleep");
}

// ---- ScalingManager ------------------------------------------------------------

struct ManagerFixture : ::testing::Test {
  ManagerFixture()
      : fabric(4, 4, topology::ClusterSpec{4, 4, 1}),
        noc(4, 4),
        mgr(fabric, noc, make_config()) {}

  static ScalingConfig make_config() {
    ScalingConfig c;
    c.ap_template.memory_blocks = 4;
    return c;
  }

  topology::STopologyFabric fabric;
  noc::NocFabric noc;
  ScalingManager mgr;
};

TEST_F(ManagerFixture, AllocateFusesClusters) {
  const auto p = mgr.allocate(4);
  ASSERT_NE(p, kNoProc);
  EXPECT_EQ(mgr.state(p), ProcState::kInactive);
  EXPECT_EQ(mgr.cluster_count(p), 4u);
  EXPECT_EQ(mgr.free_clusters(), 12u);
  // Capacity = clusters x per-cluster stack.
  EXPECT_EQ(mgr.processor(p).capacity(), 16);
  EXPECT_GT(mgr.stats().config_packets, 0u);
  EXPECT_GT(mgr.stats().config_cycles, 0u);
}

TEST_F(ManagerFixture, AllocationsDoNotOverlap) {
  const auto a = mgr.allocate(8);
  const auto b = mgr.allocate(8);
  ASSERT_NE(a, kNoProc);
  ASSERT_NE(b, kNoProc);
  EXPECT_EQ(mgr.free_clusters(), 0u);
  EXPECT_EQ(mgr.allocate(1), kNoProc);  // chip is full
}

TEST_F(ManagerFixture, UpscaleExtendsCapacity) {
  const auto p = mgr.allocate(2);
  ASSERT_NE(p, kNoProc);
  ASSERT_TRUE(mgr.upscale(p, 2));
  EXPECT_EQ(mgr.cluster_count(p), 4u);
  EXPECT_EQ(mgr.processor(p).capacity(), 16);
  EXPECT_EQ(mgr.stats().upscales, 1u);
}

TEST_F(ManagerFixture, UpscaleRequiresInactive) {
  const auto p = mgr.allocate(2);
  mgr.activate(p);
  EXPECT_THROW(mgr.upscale(p, 1), vlsip::PreconditionError);
}

TEST_F(ManagerFixture, DownscaleFreesClusters) {
  const auto p = mgr.allocate(4);
  mgr.downscale(p, 1);
  EXPECT_EQ(mgr.cluster_count(p), 1u);
  EXPECT_EQ(mgr.free_clusters(), 15u);
  EXPECT_EQ(mgr.processor(p).capacity(), 4);
}

TEST_F(ManagerFixture, FuseSplitFuseCycle) {
  // §1's defect scenario shape: fuse 4, split into 2+free, refuse.
  const auto big = mgr.allocate(4);
  mgr.downscale(big, 2);
  const auto second = mgr.allocate(2);
  ASSERT_NE(second, kNoProc);
  EXPECT_EQ(mgr.live_processors().size(), 2u);
}

TEST_F(ManagerFixture, ReleaseReturnsEverything) {
  const auto p = mgr.allocate(6);
  mgr.activate(p);
  mgr.release(p);  // release() wakes/deactivates as needed
  EXPECT_FALSE(mgr.alive(p));
  EXPECT_EQ(mgr.free_clusters(), 16u);
  EXPECT_EQ(fabric.chained_links(), 0u);
}

TEST_F(ManagerFixture, SleepTimerWakesOnAdvance) {
  const auto p = mgr.allocate(1);
  mgr.activate(p);
  mgr.sleep(p, mgr.now() + 50);
  EXPECT_EQ(mgr.state(p), ProcState::kSleep);
  mgr.advance(49);
  EXPECT_EQ(mgr.state(p), ProcState::kSleep);
  mgr.advance(1);
  EXPECT_EQ(mgr.state(p), ProcState::kActive);
}

TEST_F(ManagerFixture, NotifyWakesEventSleeper) {
  const auto p = mgr.allocate(1);
  mgr.activate(p);
  mgr.sleep(p, std::nullopt);
  mgr.notify(p);
  EXPECT_EQ(mgr.state(p), ProcState::kActive);
  EXPECT_THROW(mgr.notify(p), vlsip::PreconditionError);  // not sleeping
}

TEST_F(ManagerFixture, SendWritesFollowerMemory) {
  const auto a = mgr.allocate(2);
  const auto b = mgr.allocate(2);
  const auto cycles = mgr.send(a, b, {111, 222}, 10);
  EXPECT_GT(cycles, 0u);
  EXPECT_EQ(mgr.processor(b).memory().read(10).u, 111u);
  EXPECT_EQ(mgr.processor(b).memory().read(11).u, 222u);
  EXPECT_EQ(mgr.stats().data_packets, 1u);
}

TEST_F(ManagerFixture, SendToActiveProcessorRejected) {
  const auto a = mgr.allocate(1);
  const auto b = mgr.allocate(1);
  mgr.activate(b);  // write-protected now
  EXPECT_THROW(mgr.send(a, b, {1}, 0), vlsip::PreconditionError);
}

TEST_F(ManagerFixture, SendAndActivatePipelines) {
  const auto a = mgr.allocate(1);
  const auto b = mgr.allocate(1);
  mgr.send_and_activate(a, b, {42}, 0);
  EXPECT_EQ(mgr.state(b), ProcState::kActive);
  EXPECT_EQ(mgr.processor(b).memory().read(0).u, 42u);
}

TEST_F(ManagerFixture, DefectOnFreeClusterQuarantines) {
  const auto survivor = mgr.mark_defective(5);
  EXPECT_EQ(survivor, kNoProc);
  EXPECT_TRUE(mgr.is_defective(5));
  EXPECT_EQ(mgr.free_clusters(), 15u);
  // Allocation must route around the quarantined cluster.
  const auto p = mgr.allocate(15);
  EXPECT_EQ(p, kNoProc);  // contiguous serpentine run broken
  const auto q = mgr.allocate(4);
  ASSERT_NE(q, kNoProc);
  for (const auto c : mgr.regions().region(mgr.info(q).region).path) {
    EXPECT_NE(c, 5u);
  }
}

TEST_F(ManagerFixture, DefectInsideProcessorShrinksIt) {
  const auto p = mgr.allocate(6);
  ASSERT_NE(p, kNoProc);
  mgr.activate(p);
  const auto path = mgr.regions().region(mgr.info(p).region).path;
  // Fail the 4th cluster of the region.
  const auto survivor = mgr.mark_defective(path[3]);
  EXPECT_EQ(survivor, p);
  EXPECT_EQ(mgr.cluster_count(p), 3u);
  EXPECT_EQ(mgr.state(p), ProcState::kInactive);
  EXPECT_TRUE(mgr.is_defective(path[3]));
  // Freed tail (2 clusters) is reusable; defect is not.
  EXPECT_EQ(mgr.free_clusters(), 16u - 3u - 1u);
}

TEST_F(ManagerFixture, DefectAtHeadDestroysProcessor) {
  const auto p = mgr.allocate(3);
  const auto head = mgr.regions().region(mgr.info(p).region).path.front();
  const auto survivor = mgr.mark_defective(head);
  EXPECT_EQ(survivor, kNoProc);
  EXPECT_FALSE(mgr.alive(p));
  EXPECT_EQ(mgr.free_clusters(), 15u);
}

TEST_F(ManagerFixture, DoubleDefectIsIdempotent) {
  mgr.mark_defective(7);
  const auto again = mgr.mark_defective(7);
  EXPECT_EQ(again, kNoProc);
  EXPECT_EQ(mgr.stats().defects_handled, 1u);
}

TEST_F(ManagerFixture, RingAllocation) {
  const auto ring = topology::rectangle_ring(fabric, 0, 0, 3, 3);
  const auto p = mgr.allocate_path(ring, /*ring=*/true);
  ASSERT_NE(p, kNoProc);
  EXPECT_EQ(mgr.cluster_count(p), 8u);
}

TEST_F(ManagerFixture, ProgramRunsOnScaledProcessor) {
  const auto p = mgr.allocate(4);  // capacity 16
  auto& ap = mgr.processor(p);
  const auto prog = arch::linear_pipeline_program(3);
  ap.configure(prog);
  ap.feed("in", arch::make_word_i(2));
  mgr.activate(p);
  const auto exec = ap.run(1, 10000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(ap.output("out")[0].i, 9);  // ((2+1)*2)+3
}

TEST_F(ManagerFixture, DeadProcessorAccessThrows) {
  const auto p = mgr.allocate(1);
  mgr.release(p);
  EXPECT_THROW(mgr.processor(p), vlsip::PreconditionError);
  EXPECT_THROW(mgr.activate(p), vlsip::PreconditionError);
  EXPECT_THROW(mgr.cluster_count(p), vlsip::PreconditionError);
}

}  // namespace
}  // namespace vlsip::scaling
