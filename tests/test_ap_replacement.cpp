// Tests for the replacement scheduling table (§2.5) and its pipeline
// integration.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "ap/replacement.hpp"
#include "arch/datapath.hpp"
#include "common/require.hpp"

namespace vlsip::ap {
namespace {

TEST(Scheduler, FirstWriteBackIsFree) {
  ReplacementScheduler s(ReplacementConfig{2, 8});
  EXPECT_EQ(s.schedule_write_back(1, 100), 100u);
  EXPECT_EQ(s.stall_cycles(), 0u);
  EXPECT_EQ(s.scheduled(), 1u);
}

TEST(Scheduler, PortsOverlapWriteBacks) {
  ReplacementScheduler s(ReplacementConfig{2, 8});
  EXPECT_EQ(s.schedule_write_back(1, 0), 0u);
  EXPECT_EQ(s.schedule_write_back(2, 0), 0u);   // second port
  // Both ports busy until cycle 8: the third waits.
  EXPECT_EQ(s.schedule_write_back(3, 0), 8u);
  EXPECT_EQ(s.stall_cycles(), 8u);
}

TEST(Scheduler, PortsFreeOverTime) {
  ReplacementScheduler s(ReplacementConfig{1, 4});
  s.schedule_write_back(1, 0);
  EXPECT_EQ(s.busy_ports_at(0), 1);
  EXPECT_EQ(s.busy_ports_at(3), 1);
  EXPECT_EQ(s.busy_ports_at(4), 0);
  EXPECT_EQ(s.schedule_write_back(2, 10), 10u);  // long idle: no wait
  EXPECT_EQ(s.drained_at(), 14u);
}

TEST(Scheduler, SinglePortSerialises) {
  ReplacementScheduler s(ReplacementConfig{1, 5});
  EXPECT_EQ(s.schedule_write_back(1, 0), 0u);
  EXPECT_EQ(s.schedule_write_back(2, 1), 5u);
  EXPECT_EQ(s.schedule_write_back(3, 2), 10u);
  EXPECT_EQ(s.stall_cycles(), 4u + 8u);
}

TEST(Scheduler, Validation) {
  EXPECT_THROW(ReplacementScheduler(ReplacementConfig{0, 8}),
               vlsip::PreconditionError);
  EXPECT_THROW(ReplacementScheduler(ReplacementConfig{2, 0}),
               vlsip::PreconditionError);
  ReplacementScheduler s;
  EXPECT_THROW(s.schedule_write_back(arch::kNoObject, 0),
               vlsip::PreconditionError);
}

// ---- pipeline integration -----------------------------------------------

ApConfig starved_config(int ports) {
  ApConfig c;
  c.capacity = 4;
  c.memory_blocks = 4;
  c.replacement.ports = ports;
  c.replacement.write_back_latency = 12;
  return c;
}

TEST(SchedulerIntegration, MorePortsFewerStalls) {
  // A heavily evicting configuration: compare write-back stalls with 1
  // vs 4 scheduling-table ports.
  const auto program = arch::linear_pipeline_program(10);  // 22 objects
  AdaptiveProcessor one(starved_config(1));
  AdaptiveProcessor four(starved_config(4));
  // Warm both so every configure evicts: run twice, measure the second.
  one.configure(program);
  four.configure(program);
  one.release_datapath();
  four.release_datapath();
  const auto s1 = one.configure(program);
  const auto s4 = four.configure(program);
  EXPECT_GT(s1.write_backs, 0u);
  EXPECT_EQ(s1.write_backs, s4.write_backs);
  EXPECT_GE(s1.write_back_stalls, s4.write_back_stalls);
  EXPECT_GE(s1.cycles, s4.cycles);
}

TEST(SchedulerIntegration, NoEvictionsNoStalls) {
  ApConfig roomy;
  roomy.capacity = 64;
  roomy.memory_blocks = 4;
  AdaptiveProcessor ap(roomy);
  const auto stats = ap.configure(arch::linear_pipeline_program(6));
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.write_back_stalls, 0u);
  EXPECT_EQ(ap.replacement().scheduled(), 0u);
}

TEST(SchedulerIntegration, EvictionsFlowThroughScheduler) {
  AdaptiveProcessor ap(starved_config(2));
  const auto program = arch::linear_pipeline_program(6);  // 14 objects
  ap.configure(program);
  EXPECT_GT(ap.stats().config.evictions, 0u);
  EXPECT_EQ(ap.replacement().scheduled(), ap.stats().config.write_backs);
}

TEST(WriteBackPolicy, CleanObjectsSkipWriteBackOnFaults) {
  // §2.5: "replaceable object(s) is stored if necessary". A pure
  // arithmetic pipeline has no stateful objects, so fault-path
  // evictions must not write back — only configuration-time evictions
  // (no executor yet, conservatively dirty) do.
  AdaptiveProcessor ap(starved_config(2));
  const auto program = arch::linear_pipeline_program(6);
  ap.configure(program);
  ap.feed("in", arch::make_word_i(1));
  const auto exec = ap.run(1, 2000000);
  ASSERT_TRUE(exec.completed);
  EXPECT_GT(exec.faults, 0u);
  EXPECT_GT(ap.stats().faults.evictions, 0u);
  EXPECT_EQ(ap.stats().faults.write_backs, 0u);
}

TEST(WriteBackPolicy, StatefulObjectsStillWriteBack) {
  // A feedback accumulator's delay buffer is dirty once it fires; when
  // it is evicted by a fault, the write-back must happen.
  arch::DatapathBuilder b;
  const auto in = b.input("in");
  const auto z = b.placeholder("z");
  const auto acc = b.op(arch::Opcode::kIAdd, in, z, "acc");
  b.bind(z, acc);
  // Pad with extra stages so the datapath exceeds C=4 and z gets
  // evicted mid-run.
  auto v = acc;
  for (int i = 0; i < 6; ++i) {
    v = b.op(arch::Opcode::kIAdd, v, b.constant_i(0), "pad");
  }
  b.output("s", v);
  auto program = std::move(b).build();

  ApConfig cfg;
  cfg.capacity = 4;
  cfg.memory_blocks = 4;
  AdaptiveProcessor ap(cfg);
  ap.configure(program);
  for (int i = 0; i < 3; ++i) ap.feed("in", arch::make_word_i(1));
  const auto exec = ap.run(3, 2000000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(ap.output("s")[2].i, 3);  // accumulator kept its state
  EXPECT_GT(ap.stats().faults.evictions, 0u);
}

}  // namespace
}  // namespace vlsip::ap
