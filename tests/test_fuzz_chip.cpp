// Chip-level soak test: a long random sequence of scaling operations —
// allocate, release, up/down-scale, defects, compaction, ring
// allocations — with global invariants checked after every operation.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/scaling_manager.hpp"
#include "topology/region.hpp"
#include "topology/s_topology.hpp"

namespace vlsip::scaling {
namespace {

class ChipFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChipFuzz, InvariantsHoldUnderRandomOperations) {
  const auto seed = GetParam();
  Xoshiro256 rng(seed);
  topology::STopologyFabric fabric(6, 6, topology::ClusterSpec{4, 4, 1});
  noc::NocFabric noc(6, 6);
  ScalingManager mgr(fabric, noc);

  std::vector<ProcId> live;
  std::size_t defects = 0;

  auto check_invariants = [&] {
    // 1. Cluster accounting: free + owned-by-live + quarantined == all.
    std::size_t owned = 0;
    std::set<topology::ClusterId> seen;
    for (const auto p : live) {
      ASSERT_TRUE(mgr.alive(p));
      const auto& path =
          mgr.regions().region(mgr.info(p).region).path;
      owned += path.size();
      for (const auto c : path) {
        ASSERT_TRUE(seen.insert(c).second) << "cluster owned twice";
        ASSERT_FALSE(mgr.is_defective(c)) << "live region on defect";
      }
    }
    ASSERT_EQ(mgr.free_clusters() + owned + defects,
              fabric.cluster_count());
    // 2. Chained links: each live region of k clusters holds k-1 links
    //    (+1 for rings; none of ours are rings here).
    std::size_t expect_links = 0;
    for (const auto p : live) {
      expect_links += mgr.cluster_count(p) - 1;
    }
    ASSERT_EQ(fabric.chained_links(), expect_links);
    // 3. largest_free_run is achievable: allocating it must succeed.
    const auto run = mgr.largest_free_run();
    if (run > 0) {
      const auto probe = mgr.allocate(run);
      ASSERT_NE(probe, kNoProc) << "largest_free_run over-reported";
      mgr.release(probe);
    }
  };

  for (int step = 0; step < 120; ++step) {
    const auto action = rng.uniform(12);
    if (action < 5) {
      const auto n = 1 + rng.uniform(5);
      const auto p = mgr.allocate(n);
      if (p != kNoProc) live.push_back(p);
    } else if (action < 7 && !live.empty()) {
      const auto idx = rng.uniform(live.size());
      mgr.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (action < 8 && !live.empty()) {
      const auto p = live[rng.uniform(live.size())];
      mgr.upscale(p, 1);  // may fail; either way invariants must hold
    } else if (action < 9 && !live.empty()) {
      const auto p = live[rng.uniform(live.size())];
      const auto n = mgr.cluster_count(p);
      if (n > 1) mgr.downscale(p, 1 + rng.uniform(n - 1));
    } else if (action < 10 && defects < 4) {
      const auto c =
          static_cast<topology::ClusterId>(rng.uniform(fabric.cluster_count()));
      if (!mgr.is_defective(c)) {
        const auto owner_region = mgr.regions().owner(c);
        const auto survivor = mgr.mark_defective(c);
        ++defects;
        // The defect may have destroyed or shrunk a live processor;
        // re-derive the live list.
        if (owner_region != topology::kNoRegion) {
          std::vector<ProcId> next;
          for (const auto p : live) {
            if (mgr.alive(p)) next.push_back(p);
          }
          live = std::move(next);
          (void)survivor;
        }
      }
    } else {
      mgr.compact();
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChipFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace vlsip::scaling
