// Cost-model tests: Tables 1–3 composition and the Table 4 reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "costmodel/areas.hpp"
#include "costmodel/technology.hpp"
#include "costmodel/vlsi_model.hpp"

namespace vlsip::cost {
namespace {

// ---- Table 1: physical object ------------------------------------------

TEST(Table1, TotalMatchesPaper) {
  const auto t = physical_object_table();
  // Paper rounds to 5.32e8; exact composition gives 5.3236e8.
  EXPECT_NEAR(t.total(), t.paper_total, 0.01e8);
}

TEST(Table1, ModuleRowsMatchPaper) {
  const auto t = physical_object_table();
  ASSERT_EQ(t.modules.size(), 5u);
  EXPECT_DOUBLE_EQ(t.modules[0].area_lambda2, 1.35e8);
  EXPECT_DOUBLE_EQ(t.modules[1].area_lambda2, 0.21e8);
  EXPECT_DOUBLE_EQ(t.modules[2].area_lambda2, 2.90e8);
  EXPECT_DOUBLE_EQ(t.modules[3].area_lambda2, 0.81e8);
  EXPECT_NEAR(t.modules[4].area_lambda2, 5.36e6, 1.0);
}

TEST(Table1, RegisterRowIsSixUnitRegisters) {
  const auto t = physical_object_table();
  EXPECT_DOUBLE_EQ(t.modules[4].area_lambda2, register_area(6));
}

TEST(Table1, FpuFractionBelowHalf) {
  // fMul/fAdd + fDiv = 1.56e8 of 5.32e8 ≈ 29%.
  const double f = fpu_area_fraction_of_physical_object();
  EXPECT_GT(f, 0.25);
  EXPECT_LT(f, 0.35);
}

// ---- Table 2: memory block ----------------------------------------------

TEST(Table2, TotalMatchesPaper) {
  const auto t = memory_block_table();
  EXPECT_NEAR(t.total(), t.paper_total, 0.01e8);
}

TEST(Table2, SramDominates) {
  const auto t = memory_block_table();
  EXPECT_GT(7.13e8 / t.total(), 0.7);
}

TEST(Table2, MemoryBlockIsAboutTwicePhysicalObject) {
  // §4.1: "The total memory block takes approximately twice the area of
  // the physical object."
  const double ratio =
      memory_block_table().total() / physical_object_table().total();
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.0);
}

// ---- Table 3: control objects --------------------------------------------

TEST(Table3, TotalMatchesPaperWithinRounding) {
  const auto t = control_objects_table();
  // Paper prints 75.2e6; the register composition gives 75.04e6.
  EXPECT_NEAR(t.total(), t.paper_total, 0.3e6);
}

TEST(Table3, RowsAreRegisterMultiples) {
  const auto t = control_objects_table();
  const ControlRegisterCounts counts;
  EXPECT_DOUBLE_EQ(t.modules[0].area_lambda2, register_area(counts.wsrf));
  EXPECT_DOUBLE_EQ(t.modules[1].area_lambda2, register_area(counts.cmh));
  EXPECT_DOUBLE_EQ(t.modules[2].area_lambda2, register_area(counts.rr));
  EXPECT_DOUBLE_EQ(t.modules[3].area_lambda2, register_area(counts.irr));
  EXPECT_DOUBLE_EQ(t.modules[4].area_lambda2, register_area(counts.cfb));
}

TEST(Table3, PaperRowValuesReproduced) {
  const auto t = control_objects_table();
  EXPECT_NEAR(t.modules[0].area_lambda2, 35.7e6, 0.1e6);  // WSRF
  EXPECT_NEAR(t.modules[1].area_lambda2, 5.36e6, 0.01e6); // CMH
  EXPECT_NEAR(t.modules[2].area_lambda2, 14.3e6, 0.1e6);  // RR
  EXPECT_NEAR(t.modules[3].area_lambda2, 14.3e6, 0.1e6);  // IRR
  EXPECT_NEAR(t.modules[4].area_lambda2, 5.36e6, 0.01e6); // CFB
}

TEST(Table3, TotalRegisterCount) {
  EXPECT_EQ(ControlRegisterCounts{}.total(), 40 + 6 + 16 + 16 + 6);
}

// ---- AP composition --------------------------------------------------------

TEST(ApComposition, MinimumApArea) {
  const ApComposition ap;
  // 16 x (PO + MB) + control ≈ 2.419e10 λ².
  EXPECT_NEAR(ap.area_lambda2(), 2.419e10, 0.01e10);
}

TEST(ApComposition, ControlToggle) {
  ApComposition with;
  ApComposition without;
  without.include_control = false;
  EXPECT_NEAR(with.area_lambda2() - without.area_lambda2(),
              control_objects_table().total(), 1.0);
}

TEST(ApComposition, ScalesLinearlyInObjects) {
  ApComposition small;
  ApComposition big;
  big.physical_objects = 32;
  big.memory_objects = 32;
  const double delta = big.area_lambda2() - small.area_lambda2();
  EXPECT_NEAR(delta,
              16 * (physical_object_table().total() +
                    memory_block_table().total()),
              1.0);
}

// ---- Technology scaling -----------------------------------------------------

TEST(Technology, SixNodes) {
  EXPECT_EQ(itrs_nodes().size(), 6u);
  EXPECT_EQ(itrs_nodes().front().year, 2010);
  EXPECT_EQ(itrs_nodes().back().year, 2015);
}

TEST(Technology, FeatureSizesMatchPaper) {
  const double expected[] = {45, 40, 36, 32, 28, 25};
  for (std::size_t i = 0; i < itrs_nodes().size(); ++i) {
    EXPECT_DOUBLE_EQ(itrs_nodes()[i].feature_nm, expected[i]);
  }
}

TEST(Technology, LambdaIsFractionOfFeature) {
  const auto& n = node_for_year(2010);
  EXPECT_NEAR(n.lambda_cm(), 45.0 * 0.4 * 1e-7, 1e-12);
}

TEST(Technology, WireDelayQuadraticInLength) {
  const auto& n = node_for_year(2012);
  EXPECT_NEAR(n.wire_delay_ns(2.0) / n.wire_delay_ns(1.0), 4.0, 1e-9);
}

TEST(Technology, NodeForBadYearThrows) {
  EXPECT_THROW(node_for_year(1999), vlsip::PreconditionError);
}

TEST(Technology, ExtrapolationContinuesTrend) {
  const auto n2017 = extrapolate_node(2017);
  EXPECT_LT(n2017.feature_nm, 25.0);
  EXPECT_GT(n2017.rc_ns_per_mm2, 0.645);
}

TEST(Technology, ExtrapolationInsideRangeIsExact) {
  const auto n = extrapolate_node(2013);
  EXPECT_DOUBLE_EQ(n.feature_nm, 32.0);
}

// ---- Table 4 reproduction ----------------------------------------------------

TEST(Table4, ApCountWithinTwoOfPaper) {
  const auto rows = scaling_table();
  const auto& paper = paper_table4();
  ASSERT_EQ(rows.size(), paper.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i].available_aps, paper[i].available_aps, 2)
        << "year " << rows[i].year;
  }
}

TEST(Table4, WireDelayWithinFivePercentOfPaper) {
  const auto rows = scaling_table();
  const auto& paper = paper_table4();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i].wire_delay_ns, paper[i].wire_delay_ns,
                0.05 * paper[i].wire_delay_ns)
        << "year " << rows[i].year;
  }
}

TEST(Table4, GopsWithinTenPercentOfPaper) {
  const auto rows = scaling_table();
  const auto& paper = paper_table4();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i].peak_gops, paper[i].peak_gops,
                0.10 * paper[i].peak_gops)
        << "year " << rows[i].year;
  }
}

TEST(Table4, GopsFormulaHolds) {
  // GOPS = #APs x 16 / delay — the paper's formula, checked row by row.
  for (const auto& row : scaling_table()) {
    EXPECT_NEAR(row.peak_gops,
                row.available_aps * 16.0 / row.wire_delay_ns, 1e-9);
  }
}

TEST(Table4, ApCountGrowsMonotonically) {
  const auto rows = scaling_table();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].available_aps, rows[i - 1].available_aps);
  }
}

TEST(Table4, HeadlineResult2012) {
  // "a pure 64bit 276 GOPS ... in a typical 1cm² area ... on current
  // process technology" — our model gives 276 ± 10%.
  const auto rows = scaling_table();
  EXPECT_NEAR(rows[2].peak_gops, 276.0, 27.6);
}

TEST(Table4, BiggerDieMoreAps) {
  const auto small = evaluate_node(node_for_year(2012), ApComposition{}, 1.0);
  const auto large = evaluate_node(node_for_year(2012), ApComposition{}, 2.0);
  EXPECT_NEAR(large.available_aps, 2 * small.available_aps, 1);
}

TEST(Table4, MoreFpusFewerMemoriesMoreGops) {
  // §4.1: "more GOPS is available if we optimize for more FPUs and less
  // memory blocks".
  ApComposition fpu_heavy;
  fpu_heavy.physical_objects = 24;
  fpu_heavy.memory_objects = 8;
  const auto base = evaluate_node(node_for_year(2012), ApComposition{});
  const auto heavy = evaluate_node(node_for_year(2012), fpu_heavy);
  const double base_fpus = base.available_aps * 16.0;
  const double heavy_fpus = heavy.available_aps * 24.0;
  EXPECT_GT(heavy_fpus, base_fpus);
  EXPECT_GT(heavy.peak_gops, base.peak_gops);
}

TEST(GpuComparison, ThreeToOneDensity) {
  const auto row = evaluate_node(node_for_year(2012), ApComposition{});
  const auto cmp = gpu_comparison(row, ApComposition{});
  EXPECT_DOUBLE_EQ(cmp.density_ratio, 3.0);
  EXPECT_NEAR(cmp.vlsi_fpus / cmp.gpu_equivalent_fpus, 3.0, 1e-9);
}

TEST(AreaTable, TotalSumsModules) {
  for (const auto& t : {physical_object_table(), memory_block_table(),
                        control_objects_table()}) {
    double sum = 0;
    for (const auto& m : t.modules) sum += m.area_lambda2;
    EXPECT_DOUBLE_EQ(t.total(), sum);
  }
}

TEST(Areas, RegisterAreaRejectsNegative) {
  EXPECT_THROW(register_area(-1), vlsip::PreconditionError);
}

TEST(Areas, FpuFractionOfApBelowThird) {
  // §4.1: "less than a 33% chip area is allocated to the FPUs" given the
  // 1:2 physical:memory area ratio — our tighter accounting yields ~10%
  // of the whole AP tile and ~29% of the physical object.
  EXPECT_LT(fpu_area_fraction_of_ap(), 0.33);
}

}  // namespace
}  // namespace vlsip::cost
