// Fuzz harness for the wire protocol, driven by a fixed seed corpus
// (tests/corpus/protocol_frames.txt, path compiled in as
// VLSIP_PROTOCOL_CORPUS — same pattern as test_fuzz_fault).
//
// For every corpus entry the harness encodes each wire message type,
// then applies seeded mutations — truncation, extension, random bit
// flips, and targeted header rewrites (magic, version, type, length) —
// and feeds the result to the frame decoder and, when a frame
// survives, to every message payload decoder. The invariant under
// attack: hostile bytes produce a typed Status (kProtocolError,
// kVersionMismatch, kFrameTruncated, kFrameOversized) — never an
// exception, never a crash, never an accepted frame with trailing
// payload bytes. Everything derives from the corpus line, so a failure
// reproduces from the line alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/frame.hpp"
#include "net/wire.hpp"
#include "runtime/manifest.hpp"

#ifndef VLSIP_PROTOCOL_CORPUS
#error "VLSIP_PROTOCOL_CORPUS must point at the seed corpus file"
#endif

namespace vlsip {
namespace {

struct CorpusEntry {
  int line = 0;
  std::uint64_t seed = 0;
  std::size_t mutations = 0;
  std::size_t max_len = 0;
};

std::vector<CorpusEntry> load_corpus() {
  std::ifstream in(VLSIP_PROTOCOL_CORPUS);
  EXPECT_TRUE(in.good()) << "cannot open " << VLSIP_PROTOCOL_CORPUS;
  std::vector<CorpusEntry> entries;
  std::string text;
  int line = 0;
  while (std::getline(in, text)) {
    ++line;
    if (text.empty() || text.front() == '#') continue;
    std::istringstream fields(text);
    CorpusEntry entry;
    entry.line = line;
    fields >> entry.seed >> entry.mutations >> entry.max_len;
    entries.push_back(entry);
  }
  return entries;
}

/// One well-formed frame per message type — the mutation substrate.
std::vector<std::vector<std::uint8_t>> seed_frames() {
  runtime::SyntheticSpec spec;
  spec.jobs = 1;
  spec.seed = 5;
  const auto job = runtime::synthetic_jobs(spec).front();

  std::vector<std::vector<std::uint8_t>> frames;
  net::HelloMsg hello;
  hello.role = net::Role::kWorker;
  hello.name = "fuzz";
  frames.push_back(net::encode(hello));
  net::HelloAckMsg ack;
  ack.peer_id = 7;
  frames.push_back(net::encode(ack));
  net::SubmitJobMsg submit;
  submit.seq = 3;
  submit.job = job;
  frames.push_back(net::encode(submit));
  net::AssignJobMsg assign;
  assign.job_id = 12;
  assign.job = job;
  frames.push_back(net::encode(assign));
  net::JobResultMsg result;
  result.id = 12;
  result.outcome.name = job.name;
  result.outcome.status = scaling::JobStatus::kCompleted;
  result.outcome.outputs["out"] = {arch::Word{1}, arch::Word{2}};
  frames.push_back(net::encode(result));
  net::HeartbeatMsg beat;
  beat.queue_depth = 4;
  beat.served = 99;
  frames.push_back(net::encode(beat));
  frames.push_back(net::encode(net::DrainMsg{}));
  net::CheckpointMsg checkpoint;
  checkpoint.worker_id = 2;
  checkpoint.checkpoint_tick = 1234;
  checkpoint.job_ids = {40, 41};
  checkpoint.log.jobs = {job, job};
  {
    snapshot::Writer w(checkpoint.chip);
    w.section("fuzz.chipstate");
    w.u64(0xC0FFEE);
  }
  frames.push_back(net::encode(checkpoint));
  net::ResumeMsg resume;
  resume.checkpoint = checkpoint;
  frames.push_back(net::encode(resume));
  net::DrainWorkerMsg drain_worker;
  drain_worker.worker_id = 2;
  frames.push_back(net::encode(drain_worker));
  frames.push_back(net::encode(net::MetricsRequestMsg{}));
  net::MetricsReportMsg report;
  report.json = "{\"schema_version\":1}";
  frames.push_back(net::encode(report));
  frames.push_back(net::encode(net::ShutdownMsg{}));
  net::ErrorMsg error;
  error.code = static_cast<std::int32_t>(StatusCode::kProtocolError);
  error.message = "fuzz";
  frames.push_back(net::encode(error));
  frames.push_back(net::encode(net::GoodbyeMsg{}));
  return frames;
}

/// Applies one seeded mutation in place.
void mutate(std::vector<std::uint8_t>& bytes, Xoshiro256& rng,
            std::size_t max_len) {
  switch (rng.uniform(6)) {
    case 0:  // truncate
      if (!bytes.empty()) {
        bytes.resize(static_cast<std::size_t>(rng.uniform(bytes.size())));
      }
      break;
    case 1:  // extend with noise
      for (std::size_t n = rng.uniform(16) + 1; n > 0 && bytes.size() < max_len;
           --n) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      break;
    case 2:  // flip a bit
      if (!bytes.empty()) {
        const auto at = static_cast<std::size_t>(rng.uniform(bytes.size()));
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      }
      break;
    case 3:  // rewrite a header byte (magic/version/type)
      if (bytes.size() >= net::kFrameHeaderSize) {
        const auto at = static_cast<std::size_t>(rng.uniform(8));
        bytes[at] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 4:  // rewrite the declared payload length
      if (bytes.size() >= net::kFrameHeaderSize) {
        for (std::size_t i = 8; i < 12; ++i) {
          bytes[i] = static_cast<std::uint8_t>(rng.next());
        }
      }
      break;
    case 5:  // splice random payload bytes
      if (bytes.size() > net::kFrameHeaderSize) {
        const auto at = net::kFrameHeaderSize +
                        static_cast<std::size_t>(rng.uniform(
                            bytes.size() - net::kFrameHeaderSize));
        bytes[at] = static_cast<std::uint8_t>(rng.next());
      }
      break;
  }
}

bool is_typed_protocol_error(const Status& status) {
  switch (status.code()) {
    case StatusCode::kProtocolError:
    case StatusCode::kVersionMismatch:
    case StatusCode::kFrameTruncated:
    case StatusCode::kFrameOversized:
      return true;
    default:
      return false;
  }
}

/// Every payload decoder the daemons run on received frames. A frame
/// that passed the framing layer must decode cleanly or fail typed.
void exercise_payload_decoders(const net::Frame& frame, int line) {
  const auto check = [line](const Status& status) {
    if (!status.ok()) {
      EXPECT_TRUE(is_typed_protocol_error(status))
          << "corpus line " << line << ": untyped decode failure "
          << status_code_name(status.code()) << ": " << status.message();
    }
  };
  check(net::decode_payload<net::HelloMsg>(frame).status());
  check(net::decode_payload<net::HelloAckMsg>(frame).status());
  check(net::decode_payload<net::SubmitJobMsg>(frame).status());
  check(net::decode_payload<net::AssignJobMsg>(frame).status());
  check(net::decode_payload<net::JobResultMsg>(frame).status());
  check(net::decode_payload<net::HeartbeatMsg>(frame).status());
  check(net::decode_payload<net::DrainMsg>(frame).status());
  check(net::decode_payload<net::CheckpointMsg>(frame).status());
  check(net::decode_payload<net::ResumeMsg>(frame).status());
  check(net::decode_payload<net::DrainWorkerMsg>(frame).status());
  check(net::decode_payload<net::MetricsRequestMsg>(frame).status());
  check(net::decode_payload<net::MetricsReportMsg>(frame).status());
  check(net::decode_payload<net::ShutdownMsg>(frame).status());
  check(net::decode_payload<net::ErrorMsg>(frame).status());
  check(net::decode_payload<net::GoodbyeMsg>(frame).status());
}

TEST(FuzzProtocol, CleanFramesRoundTrip) {
  for (const auto& bytes : seed_frames()) {
    const auto frame = net::decode_frame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame.ok()) << frame.status().message();
  }
}

TEST(FuzzProtocol, MutatedFramesFailTypedOrDecode) {
  const auto corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  const auto seeds = seed_frames();
  for (const auto& entry : corpus) {
    Xoshiro256 rng(entry.seed);
    for (const auto& seed_frame : seeds) {
      auto bytes = seed_frame;
      if (bytes.size() > entry.max_len) bytes.resize(entry.max_len);
      for (std::size_t m = 0; m < entry.mutations; ++m) {
        mutate(bytes, rng, entry.max_len);
        const auto frame = net::decode_frame(
            bytes.data(), bytes.size(), /*max_payload=*/entry.max_len);
        if (!frame.ok()) {
          EXPECT_TRUE(is_typed_protocol_error(frame.status()))
              << "corpus line " << entry.line << ": untyped frame failure "
              << status_code_name(frame.status().code());
          continue;
        }
        exercise_payload_decoders(*frame, entry.line);
      }
    }
  }
}

}  // namespace
}  // namespace vlsip
