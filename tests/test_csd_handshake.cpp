// Tests for the cycle-accurate fig. 2 handshake simulator.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "csd/handshake.hpp"

namespace vlsip::csd {
namespace {

DynamicCsdNetwork make_net(Position positions = 16, ChannelId channels = 4) {
  return DynamicCsdNetwork(CsdConfig{positions, channels});
}

TEST(Handshake, UncontendedLatencyMatchesAnalytic) {
  for (Position span : {1u, 3u, 7u, 15u}) {
    auto net = make_net();
    HandshakeSimulator sim(net);
    const auto id = sim.issue(0, span);
    ASSERT_TRUE(sim.run_until_quiet(1000));
    const auto& r = sim.request(id);
    EXPECT_EQ(r.phase, HandshakePhase::kDone);
    EXPECT_EQ(r.finished_at - r.issued_at,
              DynamicCsdNetwork::handshake_latency(0, span))
        << "span " << span;
  }
}

TEST(Handshake, GrantClaimsTheNetwork) {
  auto net = make_net();
  HandshakeSimulator sim(net);
  sim.issue(2, 9);
  ASSERT_TRUE(sim.run_until_quiet(1000));
  EXPECT_EQ(net.active_routes(), 1u);
  EXPECT_EQ(net.used_channels(), 1u);
}

TEST(Handshake, ConcurrentOverlappingGetDistinctChannels) {
  auto net = make_net();
  HandshakeSimulator sim(net);
  const auto a = sim.issue(0, 8);
  const auto b = sim.issue(1, 9);  // same span length, overlapping
  ASSERT_TRUE(sim.run_until_quiet(1000));
  EXPECT_EQ(sim.granted(), 2u);
  const auto& ra = sim.request(a);
  const auto& rb = sim.request(b);
  ASSERT_TRUE(ra.route && rb.route);
  EXPECT_NE(net.routes()[*ra.route].channel,
            net.routes()[*rb.route].channel);
}

TEST(Handshake, ExhaustionRejectsLateRequest) {
  auto net = make_net(16, 1);  // a single channel
  HandshakeSimulator sim(net);
  sim.issue(0, 10);
  sim.issue(2, 12);  // overlaps; will lose the only channel
  ASSERT_TRUE(sim.run_until_quiet(1000));
  EXPECT_EQ(sim.granted(), 1u);
  EXPECT_EQ(sim.rejected(), 1u);
}

TEST(Handshake, ShorterSpanEncodesFirst) {
  // A shorter request issued later can still win the channel because
  // its request propagates fewer hops — a genuinely cycle-level effect
  // the analytic model cannot produce.
  auto net = make_net(16, 1);
  HandshakeSimulator sim(net);
  const auto longer = sim.issue(0, 12);   // 12 hops of propagation
  const auto shorter = sim.issue(5, 7);   // 2 hops, overlapping span
  ASSERT_TRUE(sim.run_until_quiet(1000));
  EXPECT_EQ(sim.request(shorter).phase, HandshakePhase::kDone);
  EXPECT_EQ(sim.request(longer).phase, HandshakePhase::kRejected);
}

TEST(Handshake, DisjointSpansShareChannelConcurrently) {
  auto net = make_net(16, 1);
  HandshakeSimulator sim(net);
  sim.issue(0, 3);
  sim.issue(8, 11);
  ASSERT_TRUE(sim.run_until_quiet(1000));
  EXPECT_EQ(sim.granted(), 2u);
  EXPECT_EQ(net.used_channels(), 1u);
}

TEST(Handshake, SequentialIssuesAfterRelease) {
  auto net = make_net(8, 1);
  HandshakeSimulator sim(net);
  const auto a = sim.issue(0, 7);
  ASSERT_TRUE(sim.run_until_quiet(1000));
  net.release(*sim.request(a).route);
  const auto b = sim.issue(1, 6);
  ASSERT_TRUE(sim.run_until_quiet(1000));
  EXPECT_EQ(sim.request(b).phase, HandshakePhase::kDone);
}

TEST(Handshake, ManyRequestsAllTerminal) {
  auto net = make_net(64, 32);
  HandshakeSimulator sim(net);
  for (Position i = 0; i < 30; ++i) {
    sim.issue(i, static_cast<Position>(63 - i));
  }
  ASSERT_TRUE(sim.run_until_quiet(10000));
  EXPECT_EQ(sim.granted() + sim.rejected(), 30u);
  EXPECT_GT(sim.granted(), 0u);
}

TEST(Handshake, Validation) {
  auto net = make_net();
  HandshakeSimulator sim(net);
  EXPECT_THROW(sim.issue(0, 99), vlsip::PreconditionError);
  EXPECT_THROW(sim.issue(3, 3), vlsip::PreconditionError);
  EXPECT_THROW(sim.request(0), vlsip::PreconditionError);
}

TEST(Handshake, StepCountsTerminations) {
  auto net = make_net();
  HandshakeSimulator sim(net);
  sim.issue(0, 1);
  std::size_t total = 0;
  for (int i = 0; i < 10; ++i) total += sim.step();
  EXPECT_EQ(total, 1u);
  EXPECT_TRUE(sim.all_terminal());
}

}  // namespace
}  // namespace vlsip::csd
