// Tests for the die-stacking cost-model extension (fig. 6 d) and the
// release-wave accounting.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/require.hpp"
#include "costmodel/vlsi_model.hpp"

namespace vlsip::cost {
namespace {

TEST(DieStacking, OneLayerMatchesFlatModel) {
  const auto& node = node_for_year(2012);
  const auto flat = evaluate_node(node, ApComposition{});
  const auto one = evaluate_node_3d(node, ApComposition{}, 1.0, 1);
  EXPECT_EQ(one.available_aps, flat.available_aps);
  EXPECT_DOUBLE_EQ(one.wire_delay_ns, flat.wire_delay_ns);
  EXPECT_DOUBLE_EQ(one.peak_gops, flat.peak_gops);
}

TEST(DieStacking, TwoLayersDoubleApsAndShortenWires) {
  const auto& node = node_for_year(2012);
  const auto flat = evaluate_node(node, ApComposition{});
  const auto stacked = evaluate_node_3d(node, ApComposition{});
  EXPECT_NEAR(stacked.available_aps, 2 * flat.available_aps, 1);
  EXPECT_LT(stacked.wire_delay_ns, flat.wire_delay_ns);
  // Wire delay ~halves (rc x area/2) plus the via.
  EXPECT_NEAR(stacked.wire_delay_ns, flat.wire_delay_ns / 2 + 0.02, 0.01);
  EXPECT_GT(stacked.peak_gops, 3.5 * flat.peak_gops);
  EXPECT_LT(stacked.peak_gops, 4.2 * flat.peak_gops);
}

TEST(DieStacking, ViaPenaltyApplied) {
  const auto& node = node_for_year(2012);
  const auto cheap = evaluate_node_3d(node, ApComposition{}, 1.0, 2, 0.0);
  const auto real = evaluate_node_3d(node, ApComposition{}, 1.0, 2, 0.1);
  EXPECT_NEAR(real.wire_delay_ns - cheap.wire_delay_ns, 0.1, 1e-12);
}

TEST(DieStacking, Validation) {
  const auto& node = node_for_year(2012);
  EXPECT_THROW(evaluate_node_3d(node, ApComposition{}, 1.0, 3),
               vlsip::PreconditionError);
  EXPECT_THROW(evaluate_node_3d(node, ApComposition{}, 1.0, 2, -1.0),
               vlsip::PreconditionError);
}

}  // namespace
}  // namespace vlsip::cost

namespace vlsip::ap {
namespace {

TEST(ReleaseWave, DepthTracksPipelineLength) {
  auto run_depth = [](int stages) {
    ApConfig cfg;
    cfg.capacity = 64;
    cfg.memory_blocks = 4;
    AdaptiveProcessor ap(cfg);
    ap.configure(arch::linear_pipeline_program(stages));
    ap.release_datapath();
    return ap.stats().release_wave_cycles;
  };
  const auto shallow = run_depth(2);
  const auto deep = run_depth(10);
  EXPECT_GT(deep, shallow);
  // Depth, not size: it grows by ~1 per stage, not 2 (the constants sit
  // at depth 1 regardless).
  EXPECT_LE(deep, shallow + 9);
}

TEST(ReleaseWave, FeedbackLoopsStillTerminate) {
  arch::DatapathBuilder b;
  const auto in = b.input("in");
  const auto z = b.placeholder("z");
  const auto acc = b.op(arch::Opcode::kIAdd, in, z);
  b.bind(z, acc);
  b.output("s", acc);
  AdaptiveProcessor ap{ApConfig{}};
  ap.configure(std::move(b).build());
  ap.release_datapath();
  EXPECT_GT(ap.stats().release_wave_cycles, 0u);
  EXPECT_LT(ap.stats().release_wave_cycles, 100u);
}

}  // namespace
}  // namespace vlsip::ap
