// Tests for ChainSet: the bookkeeping that keeps dynamic-CSD claims
// consistent with object placement across stack shifts and swaps.
#include <gtest/gtest.h>

#include "ap/object_space.hpp"
#include "ap/pipeline.hpp"
#include "common/require.hpp"
#include "csd/dynamic_csd.hpp"

namespace vlsip::ap {
namespace {

struct ChainFixture : ::testing::Test {
  ChainFixture()
      : net(csd::CsdConfig{16, 8}), space(8), chains(net, space) {}

  csd::DynamicCsdNetwork net;
  ObjectSpace space;
  ChainSet chains;
};

TEST_F(ChainFixture, RefreshRoutesResidentChains) {
  space.insert_top(1);
  space.insert_top(2);
  chains.add(1, 2, 0);
  EXPECT_EQ(chains.refresh(), 0u);
  EXPECT_EQ(chains.routed(), 1u);
  EXPECT_EQ(net.active_routes(), 1u);
}

TEST_F(ChainFixture, DormantChainsHoldNoRoute) {
  space.insert_top(1);
  chains.add(1, 9, 0);  // 9 is not resident
  chains.refresh();
  EXPECT_EQ(chains.routed(), 0u);
  EXPECT_EQ(net.active_routes(), 0u);
  EXPECT_EQ(chains.unrouted_resident(), 0u);  // dormant, not failed
}

TEST_F(ChainFixture, ShiftInvalidatesAndReroutes) {
  space.insert_top(1);
  space.insert_top(2);
  chains.add(1, 2, 0);
  chains.refresh();
  const auto before = net.routes()[chains.chains()[0].route];
  // A new object enters the top: both endpoints move down one.
  space.insert_top(3);
  chains.refresh();
  ASSERT_EQ(chains.routed(), 1u);
  const auto after = net.routes()[chains.chains()[0].route];
  EXPECT_EQ(after.lo(), before.lo() + 1);
  EXPECT_EQ(after.hi(), before.hi() + 1);
}

TEST_F(ChainFixture, UnmovedChainsKeepRoutes) {
  space.insert_top(5);
  space.insert_top(6);
  chains.add(6, 5, 0);  // positions 0 -> 1
  chains.refresh();
  const auto id_before = chains.chains()[0].route;
  chains.refresh();  // nothing moved
  EXPECT_EQ(chains.chains()[0].route, id_before);
}

TEST_F(ChainFixture, EvictionMakesChainDormantThenRevives) {
  space.insert_top(1);
  space.insert_top(2);
  chains.add(1, 2, 0);
  chains.refresh();
  EXPECT_EQ(chains.routed(), 1u);
  space.remove(1);  // swapped out
  chains.refresh();
  EXPECT_EQ(chains.routed(), 0u);
  space.insert_top(1);  // faults back in
  chains.refresh();
  EXPECT_EQ(chains.routed(), 1u);
}

TEST_F(ChainFixture, RemoveForDropsChainsAndRoutes) {
  space.insert_top(1);
  space.insert_top(2);
  space.insert_top(3);
  chains.add(1, 2, 0);
  chains.add(2, 3, 0);
  chains.refresh();
  chains.remove_for(2);
  EXPECT_EQ(chains.size(), 0u);  // both touched object 2
  EXPECT_EQ(net.active_routes(), 0u);
}

TEST_F(ChainFixture, ClearReleasesEverything) {
  space.insert_top(1);
  space.insert_top(2);
  space.insert_top(3);
  chains.add(1, 2, 0);
  chains.add(3, 2, 1);
  chains.refresh();
  chains.clear();
  EXPECT_EQ(chains.size(), 0u);
  EXPECT_EQ(net.active_routes(), 0u);
  EXPECT_EQ(net.claimed_segments(), 0u);
}

TEST_F(ChainFixture, SelfChainRejected) {
  EXPECT_THROW(chains.add(4, 4, 0), vlsip::PreconditionError);
}

TEST_F(ChainFixture, RoutabilityFailureCounted) {
  // One channel; two overlapping chains cannot both route.
  csd::DynamicCsdNetwork tiny(csd::CsdConfig{8, 1});
  ObjectSpace s(4);
  ChainSet cs(tiny, s);
  s.insert_top(0);
  s.insert_top(1);
  s.insert_top(2);
  s.insert_top(3);
  cs.add(0, 3, 0);  // positions 3 -> 0 (span covers everything)
  cs.add(1, 2, 0);  // overlaps on the single channel
  const auto failures = cs.refresh();
  EXPECT_EQ(failures, 1u);
  EXPECT_EQ(cs.routed(), 1u);
  EXPECT_EQ(cs.unrouted_resident(), 1u);
}

TEST_F(ChainFixture, RefreshSkipsWhenNothingChanged) {
  space.insert_top(1);
  space.insert_top(2);
  chains.add(1, 2, 0);
  const auto n0 = chains.rebuilds();
  const auto f0 = chains.refresh();
  EXPECT_EQ(chains.rebuilds(), n0 + 1);
  // No placement / claim / chain change since: the pass is skipped but
  // the cached failure count is still reported.
  EXPECT_EQ(chains.refresh(), f0);
  EXPECT_EQ(chains.rebuilds(), n0 + 1);
  // A placement change invalidates the memo.
  space.insert_top(3);
  chains.refresh();
  EXPECT_EQ(chains.rebuilds(), n0 + 2);
  // So does adding a chain, even with placement unchanged.
  chains.add(3, 1, 0);
  chains.refresh();
  EXPECT_EQ(chains.rebuilds(), n0 + 3);
}

}  // namespace
}  // namespace vlsip::ap
