// Tests for the dynamic CSD network, the global-crossbar baseline and the
// functional CSD simulator (fig. 2 / fig. 3 mechanisms).
#include <gtest/gtest.h>

#include "arch/datapath.hpp"
#include "common/require.hpp"
#include "csd/csd_simulator.hpp"
#include "csd/dynamic_csd.hpp"
#include "csd/global_network.hpp"

namespace vlsip::csd {
namespace {

CsdConfig cfg(Position positions, ChannelId channels) {
  return CsdConfig{positions, channels};
}

// ---- DynamicCsdNetwork basics ------------------------------------------------

TEST(DynamicCsd, RoutesOnLowestFreeChannel) {
  DynamicCsdNetwork net(cfg(8, 4));
  EXPECT_EQ(net.try_route(0, 3).value(), 0u);
  ASSERT_TRUE(net.establish(0, 3).has_value());
  // Overlapping span -> next channel.
  EXPECT_EQ(net.try_route(1, 4).value(), 1u);
}

TEST(DynamicCsd, DisjointSpansShareAChannel) {
  DynamicCsdNetwork net(cfg(16, 2));
  ASSERT_TRUE(net.establish(0, 4));
  // [8, 12) does not overlap [0, 4) -> same channel 0.
  EXPECT_EQ(net.try_route(8, 12).value(), 0u);
  ASSERT_TRUE(net.establish(8, 12));
  EXPECT_EQ(net.used_channels(), 1u);
  EXPECT_EQ(net.active_routes(), 2u);
}

TEST(DynamicCsd, AdjacentSpansShareAChannel) {
  // Segments are half-open: [0,4) and [4,8) touch but do not conflict.
  DynamicCsdNetwork net(cfg(16, 1));
  ASSERT_TRUE(net.establish(0, 4));
  EXPECT_TRUE(net.establish(4, 8).has_value());
}

TEST(DynamicCsd, ExhaustionReturnsNullopt) {
  DynamicCsdNetwork net(cfg(8, 2));
  ASSERT_TRUE(net.establish(0, 7));
  ASSERT_TRUE(net.establish(1, 6));
  EXPECT_FALSE(net.try_route(2, 5).has_value());
  EXPECT_FALSE(net.establish(2, 5).has_value());
}

TEST(DynamicCsd, ReleaseFreesSpan) {
  DynamicCsdNetwork net(cfg(8, 1));
  const auto r = net.establish(0, 7);
  ASSERT_TRUE(r);
  EXPECT_FALSE(net.try_route(2, 5));
  net.release(*r);
  EXPECT_TRUE(net.try_route(2, 5));
  EXPECT_EQ(net.active_routes(), 0u);
  EXPECT_EQ(net.used_channels(), 0u);
}

TEST(DynamicCsd, ReleaseAtEndpoint) {
  DynamicCsdNetwork net(cfg(8, 4));
  ASSERT_TRUE(net.establish(0, 3));
  ASSERT_TRUE(net.establish(3, 6));
  ASSERT_TRUE(net.establish(1, 2));
  net.release_at(3);
  EXPECT_EQ(net.active_routes(), 1u);
}

TEST(DynamicCsd, DirectionDoesNotMatterForSpan) {
  DynamicCsdNetwork net(cfg(8, 1));
  ASSERT_TRUE(net.establish(5, 2));  // sink below source
  EXPECT_FALSE(net.try_route(3, 4));
  const auto& r = net.routes()[0];
  EXPECT_EQ(r.lo(), 2u);
  EXPECT_EQ(r.hi(), 5u);
  EXPECT_EQ(r.span(), 3u);
}

TEST(DynamicCsd, EndpointValidation) {
  DynamicCsdNetwork net(cfg(8, 1));
  EXPECT_THROW(net.try_route(0, 8), vlsip::PreconditionError);
  EXPECT_THROW(net.try_route(3, 3), vlsip::PreconditionError);
  EXPECT_THROW(net.release(99), vlsip::PreconditionError);
}

TEST(DynamicCsd, ConfigValidation) {
  EXPECT_THROW(DynamicCsdNetwork(cfg(1, 4)), vlsip::PreconditionError);
  EXPECT_THROW(DynamicCsdNetwork(cfg(8, 0)), vlsip::PreconditionError);
}

TEST(DynamicCsd, RouteSlotReuse) {
  DynamicCsdNetwork net(cfg(8, 2));
  const auto a = net.establish(0, 2);
  net.release(*a);
  const auto b = net.establish(4, 6);
  EXPECT_EQ(*a, *b);  // slot recycled
}

// ---- Fan-out -------------------------------------------------------------------

TEST(DynamicCsd, FanoutSpansAllSinks) {
  DynamicCsdNetwork net(cfg(16, 2));
  const auto r = net.establish_fanout(4, {2, 9, 6});
  ASSERT_TRUE(r);
  // Claim covers [2, 9): conflicting route must fail on that channel.
  EXPECT_EQ(net.try_route(3, 5).value(), 1u);
  EXPECT_EQ(net.claimed_segments(), 7u);
}

TEST(DynamicCsd, FanoutValidation) {
  DynamicCsdNetwork net(cfg(8, 1));
  EXPECT_THROW(net.establish_fanout(1, {}), vlsip::PreconditionError);
  EXPECT_THROW(net.establish_fanout(1, {1}), vlsip::PreconditionError);
}

// ---- Handshake latency (fig. 2) ---------------------------------------------------

TEST(DynamicCsd, HandshakeLatencyIsTwoSpansPlusTwo) {
  // request propagation (span) + priority encode (1) + grant (1) +
  // ack (span).
  EXPECT_EQ(DynamicCsdNetwork::handshake_latency(0, 1), 4u);
  EXPECT_EQ(DynamicCsdNetwork::handshake_latency(0, 5), 12u);
  EXPECT_EQ(DynamicCsdNetwork::handshake_latency(5, 0), 12u);
}

// ---- Stack shift through the network -----------------------------------------------

TEST(DynamicCsd, ShiftMovesClaims) {
  DynamicCsdNetwork net(cfg(8, 2));
  ASSERT_TRUE(net.establish(0, 2));
  net.shift_down_one();
  const auto& r = net.routes()[0];
  EXPECT_EQ(r.source, 1u);
  EXPECT_EQ(r.sink, 3u);
  // Old span start is free again.
  EXPECT_TRUE(net.span_free(0, 0, 1));
}

TEST(DynamicCsd, ShiftDropsRoutesFallingOffTheBottom) {
  DynamicCsdNetwork net(cfg(4, 2));
  ASSERT_TRUE(net.establish(2, 3));  // hi = 3 = last position
  ASSERT_TRUE(net.establish(0, 1));
  net.shift_down_one();
  EXPECT_EQ(net.active_routes(), 1u);  // 2->3 evicted
  const auto& survivor = net.routes()[1];
  EXPECT_EQ(survivor.source, 1u);
  EXPECT_EQ(survivor.sink, 2u);
}

TEST(DynamicCsd, RepeatedShiftsEmptyTheNetwork) {
  DynamicCsdNetwork net(cfg(6, 3));
  ASSERT_TRUE(net.establish(0, 2));
  ASSERT_TRUE(net.establish(1, 4));
  for (int i = 0; i < 6; ++i) net.shift_down_one();
  EXPECT_EQ(net.active_routes(), 0u);
  EXPECT_EQ(net.claimed_segments(), 0u);
}

// ---- Utilisation metrics ------------------------------------------------------------

TEST(DynamicCsd, UtilisationAccounting) {
  DynamicCsdNetwork net(cfg(9, 2));  // 2 channels x 8 segments
  ASSERT_TRUE(net.establish(0, 4));  // 4 segments
  EXPECT_DOUBLE_EQ(net.utilisation(), 4.0 / 16.0);
  EXPECT_EQ(net.used_channels(), 1u);
}

TEST(DynamicCsd, RenderShowsOccupancy) {
  DynamicCsdNetwork net(cfg(5, 2));
  ASSERT_TRUE(net.establish(0, 2));
  const auto s = net.render();
  EXPECT_NE(s.find("##"), std::string::npos);
  EXPECT_NE(s.find(".."), std::string::npos);
}

// ---- GlobalNetwork baseline ----------------------------------------------------------

TEST(GlobalNetwork, WholeChannelPerRoute) {
  GlobalNetwork net(16, 2);
  ASSERT_TRUE(net.establish(0, 1));
  ASSERT_TRUE(net.establish(14, 15));  // disjoint span, still new channel
  EXPECT_EQ(net.used_channels(), 2u);
  EXPECT_FALSE(net.establish(5, 6).has_value());
}

TEST(GlobalNetwork, ReleaseRecycles) {
  GlobalNetwork net(8, 1);
  const auto c = net.establish(0, 7);
  ASSERT_TRUE(c);
  net.release(*c);
  EXPECT_TRUE(net.establish(1, 2));
}

TEST(GlobalNetwork, WireCostLinearInChannels) {
  GlobalNetwork a(64, 16), b(64, 32);
  EXPECT_EQ(b.wire_segments(), 2 * a.wire_segments());
}

TEST(GlobalNetwork, Validation) {
  GlobalNetwork net(8, 2);
  EXPECT_THROW(net.establish(8, 0), vlsip::PreconditionError);
  EXPECT_THROW(net.establish(1, 1), vlsip::PreconditionError);
  EXPECT_THROW(net.release(5), vlsip::PreconditionError);
}

// ---- Functional CSD simulator (fig. 3 mechanics) ---------------------------------------

TEST(FunctionalCsd, RunIsDeterministic) {
  FunctionalRunConfig c;
  c.n_objects = 64;
  c.n_channels = 64;
  c.n_elements = 64;
  c.locality = 0.4;
  c.seed = 99;
  const auto a = run_functional_csd(c);
  const auto b = run_functional_csd(c);
  EXPECT_EQ(a.peak_used_channels, b.peak_used_channels);
  EXPECT_EQ(a.routed, b.routed);
}

TEST(FunctionalCsd, FullProvisioningNeverRejects) {
  FunctionalRunConfig c;
  c.n_objects = 128;
  c.n_channels = 128;
  c.n_elements = 128;
  c.locality = 0.0;
  c.seed = 5;
  const auto r = run_functional_csd(c);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_GT(r.routed, 0u);
}

TEST(FunctionalCsd, PaperHeadline_HalfChannelsSufficeForRandom) {
  // §2.6.2: "Nobject channels were not used, and Nobject/2 channels are
  // sufficient for the random datapath."
  for (std::uint32_t n : {32u, 64u, 128u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      FunctionalRunConfig c;
      c.n_objects = n;
      c.n_channels = n;
      c.n_elements = n;
      c.locality = 0.0;  // fully random
      c.seed = seed;
      const auto r = run_functional_csd(c);
      EXPECT_LE(r.peak_used_channels, n / 2)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(FunctionalCsd, LocalityReducesChannelUsage) {
  const auto curve = locality_curve(128, {1.0, 0.5, 0.0}, 5, 1234);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_LT(curve[0].mean_peak_channels, curve[2].mean_peak_channels);
  // Perfect locality: sources adjacent to sinks, very few channels.
  EXPECT_LE(curve[0].mean_peak_channels, 8.0);
}

TEST(FunctionalCsd, ReplayStreamHonoursReplacement) {
  // Re-chaining the same sink twice with replacement on: one live chain.
  arch::ConfigStream s;
  arch::ConfigElement e1;
  e1.sink = 3;
  e1.sources[0] = 0;
  arch::ConfigElement e2;
  e2.sink = 3;
  e2.sources[0] = 7;
  s.push(e1);
  s.push(e2);
  const auto with = replay_stream(s, 8, 8, true);
  const auto without = replay_stream(s, 8, 8, false);
  EXPECT_EQ(with.routed, 2u);
  EXPECT_EQ(without.routed, 2u);
  EXPECT_LE(with.final_used_channels, without.final_used_channels);
}

TEST(Routability, SuccessImprovesWithChannels) {
  const auto sweep = routability_sweep(64, {2, 8, 32, 64}, 0.0, 5, 77);
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].success_rate, sweep[i - 1].success_rate - 1e-9);
  }
  EXPECT_NEAR(sweep.back().success_rate, 1.0, 1e-9);
}

TEST(Routability, FewChannelsFail) {
  const auto sweep = routability_sweep(64, {1}, 0.0, 5, 31);
  EXPECT_LT(sweep[0].success_rate, 0.9);
}

}  // namespace
}  // namespace vlsip::csd
