// ThreadSanitizer smoke test for the chip farm (no gtest: a plain
// binary so it can be compiled with -fsanitize=thread together with the
// runtime/ sources — see tests/CMakeLists.txt, VLSIP_TSAN_SMOKE).
//
// Exercises every concurrent path at once: multi-worker serving,
// blocking and rejecting admission, cancellation racing consumption,
// metrics snapshots racing workers, shutdown with a backlog — and, in a
// second phase, the fault-tolerance machinery under concurrency (fault
// pump, retry requeue, chip quarantine, health snapshots racing
// health() readers).
#include <cstdio>
#include <vector>

#include "fault/fault_plan.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"

namespace {

int run_plain_phase() {
  using namespace vlsip;

  runtime::FarmConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 8;
  cfg.block_when_full = true;
  runtime::ChipFarm farm(cfg);

  runtime::SyntheticSpec spec;
  spec.jobs = 48;
  spec.seed = 3;
  std::vector<std::future<scaling::JobOutcome>> futures;
  std::vector<std::uint64_t> ids;
  for (auto& job : runtime::synthetic_jobs(spec)) {
    auto admission = farm.submit(std::move(job));
    if (!admission.admitted) continue;
    ids.push_back(admission.id);
    futures.push_back(std::move(admission.outcome));
    // Metrics snapshots race the workers on purpose.
    (void)farm.metrics();
    // Try to cancel an older job; most will have run already.
    if (ids.size() > 4) (void)farm.cancel(ids[ids.size() - 5]);
  }
  for (auto& f : futures) (void)f.get();
  farm.drain();
  const auto metrics = farm.metrics();
  farm.shutdown();

  std::printf("tsan smoke: %llu served, %llu cancelled, %llu batches\n",
              static_cast<unsigned long long>(metrics.served()),
              static_cast<unsigned long long>(metrics.cancelled),
              static_cast<unsigned long long>(metrics.batches));
  const bool accounted =
      metrics.served() + metrics.cancelled == metrics.admitted;
  std::printf("plain phase %s\n", accounted ? "ok" : "MISCOUNT");
  return accounted ? 0 : 1;
}

int run_chaos_phase() {
  using namespace vlsip;

  fault::FaultPlanSpec plan_spec;
  plan_spec.seed = 9;
  plan_spec.events = 16;
  plan_spec.horizon = 64;
  plan_spec.clusters = 64;
  plan_spec.workers = 4;
  plan_spec.w_worker_stall = 1.0;
  plan_spec.w_worker_crash = 0.5;
  plan_spec.max_stall = 200;  // microseconds under the threaded clock

  runtime::FarmConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 16;
  cfg.block_when_full = true;
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.plan = fault::random_fault_plan(plan_spec);
  cfg.fault_tolerance.retry_backoff_ticks = 50;
  cfg.fault_tolerance.quarantine_after = 1;
  runtime::ChipFarm farm(cfg);

  runtime::SyntheticSpec spec;
  spec.jobs = 64;
  spec.seed = 17;
  std::vector<std::future<scaling::JobOutcome>> futures;
  for (auto& job : runtime::synthetic_jobs(spec)) {
    auto admission = farm.submit(std::move(job));
    if (!admission.admitted) continue;
    futures.push_back(std::move(admission.outcome));
    // Health and metrics snapshots race the fault pump and the
    // quarantine chip swap on purpose.
    (void)farm.health();
    (void)farm.metrics();
  }
  for (auto& f : futures) (void)f.get();
  farm.drain();
  const auto metrics = farm.metrics();
  farm.shutdown();

  std::printf(
      "chaos phase: %llu served, %llu faults, %llu retries, "
      "%llu quarantined\n",
      static_cast<unsigned long long>(metrics.served()),
      static_cast<unsigned long long>(metrics.injected_faults),
      static_cast<unsigned long long>(metrics.retries),
      static_cast<unsigned long long>(metrics.quarantined_chips));
  const bool accounted =
      metrics.served() + metrics.cancelled == metrics.admitted;
  std::printf("chaos phase %s\n", accounted ? "ok" : "MISCOUNT");
  return accounted ? 0 : 1;
}

}  // namespace

int main() {
  const int plain = run_plain_phase();
  const int chaos = run_chaos_phase();
  const bool ok = plain == 0 && chaos == 0;
  std::printf("%s\n", ok ? "OK" : "MISCOUNT");
  return ok ? 0 : 1;
}
