// ThreadSanitizer smoke test for the chip farm (no gtest: a plain
// binary so it can be compiled with -fsanitize=thread together with the
// runtime/ sources — see tests/CMakeLists.txt, VLSIP_TSAN_SMOKE).
//
// Exercises every concurrent path at once: multi-worker serving,
// blocking and rejecting admission, cancellation racing consumption,
// metrics snapshots racing workers, and shutdown with a backlog.
#include <cstdio>
#include <vector>

#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"

int main() {
  using namespace vlsip;

  runtime::FarmConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 8;
  cfg.block_when_full = true;
  runtime::ChipFarm farm(cfg);

  runtime::SyntheticSpec spec;
  spec.jobs = 48;
  spec.seed = 3;
  std::vector<std::future<scaling::JobOutcome>> futures;
  std::vector<std::uint64_t> ids;
  for (auto& job : runtime::synthetic_jobs(spec)) {
    auto admission = farm.submit(std::move(job));
    if (!admission.admitted) continue;
    ids.push_back(admission.id);
    futures.push_back(std::move(admission.outcome));
    // Metrics snapshots race the workers on purpose.
    (void)farm.metrics();
    // Try to cancel an older job; most will have run already.
    if (ids.size() > 4) (void)farm.cancel(ids[ids.size() - 5]);
  }
  for (auto& f : futures) (void)f.get();
  farm.drain();
  const auto metrics = farm.metrics();
  farm.shutdown();

  std::printf("tsan smoke: %llu served, %llu cancelled, %llu batches\n",
              static_cast<unsigned long long>(metrics.served()),
              static_cast<unsigned long long>(metrics.cancelled),
              static_cast<unsigned long long>(metrics.batches));
  const bool accounted =
      metrics.served() + metrics.cancelled == metrics.admitted;
  std::printf("%s\n", accounted ? "OK" : "MISCOUNT");
  return accounted ? 0 : 1;
}
