// Tests for binary stream encoding and configuration fetched from the
// memory blocks (§3.3: configuration data stored into inactive
// processors), including program shipment between processors.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "arch/serialize.hpp"
#include "common/require.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/scaling_manager.hpp"

namespace vlsip::arch {
namespace {

TEST(StreamEncoding, ElementRoundTrip) {
  ConfigElement e;
  e.sink = 300;
  e.sources[0] = 7;
  e.sources[2] = 65000;
  EXPECT_EQ(decode_element(encode_element(e)), e);
}

TEST(StreamEncoding, NoObjectFieldsSurvive) {
  ConfigElement e;
  e.sink = 1;
  const auto d = decode_element(encode_element(e));
  EXPECT_EQ(d.sources[0], kNoObject);
  EXPECT_EQ(d.sources[1], kNoObject);
  EXPECT_EQ(d.sources[2], kNoObject);
}

TEST(StreamEncoding, StreamRoundTrip) {
  const auto stream = random_config_stream(200, 64, 0.4, 5, 2);
  const auto words = encode_stream(stream);
  ASSERT_EQ(words.size(), stream.size());
  const auto back = decode_stream(words);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(back[i], stream[i]);
  }
}

TEST(StreamEncoding, OversizedIdRejected) {
  ConfigElement e;
  e.sink = 0xFFFF;  // collides with the sentinel
  EXPECT_THROW(encode_element(e), vlsip::PreconditionError);
}

}  // namespace
}  // namespace vlsip::arch

namespace vlsip::ap {
namespace {

TEST(MemoryConfig, ConfigureFromOwnMemory) {
  AdaptiveProcessor ap{ApConfig{}};
  const auto program = arch::linear_pipeline_program(3);
  const auto n = ap.store_stream(500, program.stream);
  EXPECT_EQ(n, program.stream.size());

  const auto stats = ap.configure_from_memory(program, 500, n);
  EXPECT_GT(stats.stream_fetch_cycles, 0u);
  ap.feed("in", arch::make_word_i(2));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("out")[0].i, 9);  // ((2+1)*2)+3
}

TEST(MemoryConfig, FetchOverheadSmallWithManyBanks) {
  // Interleaved banks sustain one word per cycle: the overhead is about
  // the pipeline-fill latency, not n x latency.
  ApConfig cfg;
  cfg.capacity = 32;
  cfg.memory_blocks = 16;
  AdaptiveProcessor ap(cfg);
  const auto program = arch::linear_pipeline_program(10);  // 22 elements
  ap.store_stream(0, program.stream);
  const auto stats =
      ap.configure_from_memory(program, 0, program.stream.size());
  EXPECT_LE(stats.stream_fetch_cycles,
            static_cast<std::uint64_t>(
                2 * ap.memory().access_latency()));
}

TEST(MemoryConfig, EmptyStreamRejected) {
  AdaptiveProcessor ap{ApConfig{}};
  const auto program = arch::linear_pipeline_program(1);
  EXPECT_THROW(ap.configure_from_memory(program, 0, 0),
               vlsip::PreconditionError);
}

TEST(MemoryConfig, PredecessorShipsAProgram) {
  // The full §3.3 story: a predecessor writes a follower's global
  // configuration data into the follower's memory block while the
  // follower is inactive; the follower then configures from its own
  // memory and runs.
  topology::STopologyFabric fabric(4, 4, topology::ClusterSpec{8, 8, 1});
  noc::NocFabric noc(4, 4);
  scaling::ScalingManager mgr(fabric, noc);
  const auto boss = mgr.allocate(1);
  const auto worker = mgr.allocate(2);

  const auto program = arch::linear_pipeline_program(4);
  const auto words = arch::encode_stream(program.stream);
  const auto cycles = mgr.send(boss, worker, words, /*base=*/100);
  EXPECT_GT(cycles, 0u);

  auto& ap = mgr.processor(worker);
  const auto stats =
      ap.configure_from_memory(program, 100, words.size());
  EXPECT_EQ(stats.elements, program.stream.size());
  ap.feed("in", arch::make_word_i(5));
  mgr.activate(worker);
  ASSERT_TRUE(ap.run(1, 100000).completed);
  EXPECT_EQ(ap.output("out")[0].i, 30);
}

}  // namespace
}  // namespace vlsip::ap
