// Tests for the adaptive processor: object space, WSRF, configuration
// pipeline, dataflow executor and the AP facade (paper §2).
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "ap/executor.hpp"
#include "ap/memory_block.hpp"
#include "ap/object_space.hpp"
#include "ap/pipeline.hpp"
#include "ap/wsrf.hpp"
#include "arch/datapath.hpp"
#include "common/require.hpp"

namespace vlsip::ap {
namespace {

using arch::DatapathBuilder;
using arch::Opcode;
using arch::Program;

// ---- MemoryBlock / ObjectLibrary --------------------------------------------

TEST(MemoryBlock, ReadWriteRoundTrip) {
  MemoryBlock m;
  m.write(100, arch::make_word_i(-42));
  EXPECT_EQ(m.read(100).i, -42);
  EXPECT_EQ(m.size(), 64u * 1024 / 8);
}

TEST(MemoryBlock, BoundsChecked) {
  MemoryBlock m(MemoryBlockConfig{16, 1});
  EXPECT_THROW(m.read(16), vlsip::PreconditionError);
  EXPECT_THROW(m.write(99, arch::make_word_u(0)), vlsip::PreconditionError);
}

TEST(MemoryBlock, FillBulk) {
  MemoryBlock m(MemoryBlockConfig{8, 1});
  m.fill(2, {arch::make_word_u(1), arch::make_word_u(2)});
  EXPECT_EQ(m.read(3).u, 2u);
  EXPECT_THROW(m.fill(7, {arch::make_word_u(0), arch::make_word_u(0)}),
               vlsip::PreconditionError);
}

TEST(ObjectLibrary, StoreFetch) {
  ObjectLibrary lib(5);
  arch::LogicalObject o;
  o.id = 3;
  o.config.opcode = Opcode::kIAdd;
  lib.store(o);
  EXPECT_TRUE(lib.contains(3));
  EXPECT_EQ(lib.fetch(3).config.opcode, Opcode::kIAdd);
  EXPECT_EQ(lib.load_latency(), 5);
  EXPECT_THROW(lib.fetch(9), vlsip::PreconditionError);
}

TEST(ObjectLibrary, WriteBackCounts) {
  ObjectLibrary lib;
  arch::LogicalObject o;
  o.id = 1;
  lib.store(o);
  lib.write_back(o);
  EXPECT_EQ(lib.write_backs(), 1u);
  o.id = 2;
  EXPECT_THROW(lib.write_back(o), vlsip::PreconditionError);
}

// ---- ObjectSpace (stack, §2.4) -------------------------------------------------

TEST(ObjectSpace, InsertPushesDown) {
  ObjectSpace s(4);
  s.insert_top(10);
  s.insert_top(11);
  s.insert_top(12);
  EXPECT_EQ(s.position_of(12), 0);
  EXPECT_EQ(s.position_of(11), 1);
  EXPECT_EQ(s.position_of(10), 2);
  EXPECT_EQ(s.bottom(), 10u);
}

TEST(ObjectSpace, LruEviction) {
  ObjectSpace s(2);
  s.insert_top(1);
  s.insert_top(2);
  EXPECT_TRUE(s.full());
  EXPECT_EQ(s.evict_bottom(), 1u);  // least recently placed
  EXPECT_FALSE(s.contains(1));
}

TEST(ObjectSpace, PromoteResortsStack) {
  ObjectSpace s(4);
  s.insert_top(1);
  s.insert_top(2);
  s.insert_top(3);
  EXPECT_EQ(s.promote(1), 2);  // was at depth 2
  EXPECT_EQ(s.position_of(1), 0);
  EXPECT_EQ(s.position_of(3), 1);
  EXPECT_EQ(s.position_of(2), 2);
  EXPECT_EQ(s.promote(1), 0);  // already top: no shift
}

TEST(ObjectSpace, RemoveClosesGap) {
  ObjectSpace s(4);
  s.insert_top(1);
  s.insert_top(2);
  s.insert_top(3);
  s.remove(2);
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.position_of(3), 0);
  EXPECT_EQ(s.position_of(1), 1);
}

TEST(ObjectSpace, PreconditionErrors) {
  ObjectSpace s(2);
  EXPECT_THROW(s.bottom(), vlsip::PreconditionError);
  EXPECT_THROW(s.evict_bottom(), vlsip::PreconditionError);
  s.insert_top(1);
  EXPECT_THROW(s.insert_top(1), vlsip::PreconditionError);
  EXPECT_THROW(s.position_of(9), vlsip::PreconditionError);
  s.insert_top(2);
  EXPECT_THROW(s.insert_top(3), vlsip::PreconditionError);  // full
}

TEST(ObjectSpace, StackDistanceEqualsPosition) {
  // The physical order IS the recency order — the §2.4 property.
  ObjectSpace s(8);
  for (arch::ObjectId id = 0; id < 8; ++id) s.insert_top(id);
  s.promote(3);
  s.promote(5);
  // Most recent first: 5, 3, 7, 6, 4, 2, 1, 0.
  EXPECT_EQ(s.stack(),
            (std::vector<arch::ObjectId>{5, 3, 7, 6, 4, 2, 1, 0}));
}

// ---- WSRF ------------------------------------------------------------------------

TEST(Wsrf, InsertAndLookup) {
  Wsrf w(4);
  EXPECT_TRUE(w.insert(7));
  ASSERT_NE(w.lookup(7), nullptr);
  EXPECT_EQ(w.lookup(9), nullptr);
}

TEST(Wsrf, RetiresOldestInactive) {
  Wsrf w(2);
  w.insert(1);
  w.insert(2);
  w.insert(3);  // retires 1
  EXPECT_EQ(w.lookup(1), nullptr);
  EXPECT_NE(w.lookup(2), nullptr);
  EXPECT_EQ(w.retirements(), 1u);
}

TEST(Wsrf, ActiveEntriesArePinned) {
  Wsrf w(2);
  w.insert(1);
  w.set_active(1, true);
  w.insert(2);
  w.set_active(2, true);
  EXPECT_FALSE(w.insert(3));  // all pinned
  w.set_active(1, false);
  EXPECT_TRUE(w.insert(3));   // retires 1
  EXPECT_EQ(w.lookup(1), nullptr);
}

TEST(Wsrf, ChannelRecording) {
  Wsrf w;
  w.insert(5);
  w.set_channel(5, 3);
  EXPECT_EQ(w.lookup(5)->channel.value(), 3u);
  EXPECT_THROW(w.set_channel(9, 1), vlsip::PreconditionError);
}

TEST(Wsrf, RefreshMovesToYoungest) {
  Wsrf w(2);
  w.insert(1);
  w.insert(2);
  w.insert(1);  // refresh: 1 becomes youngest
  w.insert(3);  // retires 2, not 1
  EXPECT_NE(w.lookup(1), nullptr);
  EXPECT_EQ(w.lookup(2), nullptr);
}

TEST(Wsrf, EraseAndClear) {
  Wsrf w;
  w.insert(1);
  w.insert(2);
  w.erase(1);
  EXPECT_EQ(w.lookup(1), nullptr);
  w.erase(99);  // erasing absent id is a no-op
  w.clear();
  EXPECT_EQ(w.size(), 0);
}

// ---- End-to-end: configure + execute small programs ---------------------------------

ApConfig small_config(int capacity = 16) {
  ApConfig c;
  c.capacity = capacity;
  c.memory_blocks = 4;
  return c;
}

TEST(Ap, LinearPipelineComputes) {
  AdaptiveProcessor ap(small_config());
  const auto p = arch::linear_pipeline_program(4);
  const auto cfg = ap.configure(p);
  EXPECT_EQ(cfg.elements, p.stream.size());
  EXPECT_GT(cfg.cycles, 0u);
  ap.feed("in", arch::make_word_i(5));
  const auto exec = ap.run(1, 10000);
  ASSERT_TRUE(exec.completed);
  // ((5+1)*2+3)*2 = 30
  ASSERT_EQ(ap.output("out").size(), 1u);
  EXPECT_EQ(ap.output("out")[0].i, 30);
}

TEST(Ap, StreamOfTokens) {
  AdaptiveProcessor ap(small_config());
  const auto p = arch::linear_pipeline_program(2);
  ap.configure(p);
  for (int v : {1, 2, 3, 4}) ap.feed("in", arch::make_word_i(v));
  const auto exec = ap.run(4, 20000);
  ASSERT_TRUE(exec.completed);
  const auto& out = ap.output("out");
  ASSERT_EQ(out.size(), 4u);
  // (v+1)*2 for each v.
  EXPECT_EQ(out[0].i, 4);
  EXPECT_EQ(out[1].i, 6);
  EXPECT_EQ(out[2].i, 8);
  EXPECT_EQ(out[3].i, 10);
}

TEST(Ap, ConditionalExampleBothArms) {
  AdaptiveProcessor ap(small_config());
  const auto p = arch::conditional_example_program();
  ap.configure(p);
  // x > y -> z = x + 1.
  ap.feed("x", arch::make_word_i(10));
  ap.feed("y", arch::make_word_i(3));
  // x <= y -> z = y + 2.
  ap.feed("x", arch::make_word_i(1));
  ap.feed("y", arch::make_word_i(7));
  const auto exec = ap.run(2, 20000);
  ASSERT_TRUE(exec.completed);
  const auto& z = ap.output("z");
  ASSERT_EQ(z.size(), 2u);
  EXPECT_EQ(z[0].i, 11);
  EXPECT_EQ(z[1].i, 9);
}

TEST(Ap, FirFilterStreaming) {
  ApConfig c = small_config(32);
  AdaptiveProcessor ap(c);
  const auto p = arch::fir_program({0.5, 0.5});  // 2-tap moving average
  ASSERT_TRUE(ap.fits_streaming(p));
  ap.configure(p);
  for (double v : {2.0, 4.0, 6.0, 8.0}) ap.feed("x", arch::make_word_f(v));
  const auto exec = ap.run_streaming(4, 40000);
  ASSERT_TRUE(exec.completed);
  const auto& y = ap.output("y");
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0].f, 1.0);  // (2+0)/2
  EXPECT_DOUBLE_EQ(y[1].f, 3.0);  // (4+2)/2
  EXPECT_DOUBLE_EQ(y[2].f, 5.0);
  EXPECT_DOUBLE_EQ(y[3].f, 7.0);
}

TEST(Ap, StreamingRejectsOversizedDatapath) {
  AdaptiveProcessor ap(small_config(4));
  const auto p = arch::linear_pipeline_program(4);  // 10 objects > 4
  EXPECT_FALSE(ap.fits_streaming(p));
  ap.configure(p);
  EXPECT_THROW(ap.run_streaming(1, 1000), vlsip::PreconditionError);
}

TEST(Ap, VirtualHardwareRunsOversizedScalar) {
  // Datapath larger than C: scalar execution must still complete via
  // object faults and LRU replacement (§2.5).
  AdaptiveProcessor ap(small_config(6));
  const auto p = arch::linear_pipeline_program(4);  // 10 objects
  ap.configure(p);
  ap.feed("in", arch::make_word_i(5));
  const auto exec = ap.run(1, 100000);
  ASSERT_TRUE(exec.completed) << "deadlocked=" << exec.deadlocked;
  EXPECT_EQ(ap.output("out")[0].i, 30);
  EXPECT_GT(exec.faults, 0u);
  EXPECT_GT(ap.stats().faults.evictions, 0u);
}

TEST(Ap, ConfigureMissesThenHits) {
  AdaptiveProcessor ap(small_config());
  const auto p = arch::linear_pipeline_program(2);
  const auto first = ap.configure(p);
  EXPECT_EQ(first.hits + first.misses, first.object_requests);
  EXPECT_GT(first.misses, 0u);  // cold
  ap.release_datapath();
  const auto second = ap.configure(p);
  // Objects stayed cached in the object space: all hits now (§2.4).
  EXPECT_EQ(second.misses, 0u);
  EXPECT_GT(second.hits, 0u);
  EXPECT_LT(second.cycles, first.cycles);
}

TEST(Ap, MemoryLoadStore) {
  AdaptiveProcessor ap(small_config());
  // store(addr=4, x); y = load(4) gated after store? Simpler: two
  // independent datapaths — write then read.
  DatapathBuilder bw;
  const auto addr = bw.constant_i(4, "addr");
  const auto val = bw.input("v");
  bw.op(Opcode::kStore, addr, val, "st");
  // Store produces nothing; use the value pass-through as output to
  // detect completion.
  bw.output("done", val);
  auto wp = std::move(bw).build();
  ap.configure(wp);
  ap.feed("v", arch::make_word_i(77));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.memory().read(4).i, 77);

  ap.release_datapath();
  DatapathBuilder br;
  const auto addr2 = br.constant_i(4, "addr2");
  const auto ld = br.op(Opcode::kLoad, addr2, "ld");
  br.output("r", ld);
  auto rp = std::move(br).build();
  ap.configure(rp);
  const auto exec = ap.run(1, 10000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(ap.output("r")[0].i, 77);
  EXPECT_GT(exec.mem_ops, 0u);
}

TEST(Ap, ReleaseFiresTokensAndKeepsCache) {
  AdaptiveProcessor ap(small_config());
  const auto p = arch::linear_pipeline_program(2);
  ap.configure(p);
  const auto resident_before = ap.object_space().size();
  ap.release_datapath();
  EXPECT_FALSE(ap.has_datapath());
  EXPECT_GT(ap.stats().release_tokens, 0u);
  EXPECT_EQ(ap.object_space().size(), resident_before);  // cache kept
  EXPECT_EQ(ap.network().active_routes(), 0u);           // chains gone
}

TEST(Ap, OpMixCounted) {
  AdaptiveProcessor ap(small_config());
  DatapathBuilder b;
  const auto x = b.input("x");
  const auto f = b.op(Opcode::kFMul, b.constant_f(2.0), b.constant_f(3.0));
  const auto i = b.op(Opcode::kIAdd, x, b.constant_i(1));
  b.output("fo", f);
  b.output("io", i);
  auto p = std::move(b).build();
  ap.configure(p);
  ap.feed("x", arch::make_word_i(0));
  const auto exec = ap.run(1, 10000);
  ASSERT_TRUE(exec.completed);
  EXPECT_GT(exec.float_ops, 0u);
  EXPECT_GT(exec.int_ops, 0u);
  EXPECT_GT(exec.transport_ops, 0u);
}

TEST(Ap, DivideByZeroIsZero) {
  AdaptiveProcessor ap(small_config());
  DatapathBuilder b;
  const auto x = b.input("x");
  const auto q = b.op(Opcode::kIDiv, x, b.constant_i(0));
  b.output("q", q);
  auto p = std::move(b).build();
  ap.configure(p);
  ap.feed("x", arch::make_word_i(100));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("q")[0].i, 0);
}

TEST(Ap, HandshakeCyclesCharged) {
  AdaptiveProcessor ap(small_config());
  const auto cfg = ap.configure(arch::linear_pipeline_program(3));
  EXPECT_GT(cfg.acquire_handshake_cycles, 0u);
}

TEST(Ap, ConfigValidation) {
  ApConfig bad;
  bad.capacity = 1;
  EXPECT_THROW(AdaptiveProcessor{bad}, vlsip::PreconditionError);
  AdaptiveProcessor ap(small_config());
  EXPECT_THROW(ap.feed("x", arch::make_word_u(0)),
               vlsip::PreconditionError);  // nothing configured
  EXPECT_THROW(ap.run(1, 100), vlsip::PreconditionError);
  arch::Program empty;
  EXPECT_THROW(ap.configure(empty), vlsip::PreconditionError);
}

TEST(Ap, UnknownPortsThrow) {
  AdaptiveProcessor ap(small_config());
  ap.configure(arch::linear_pipeline_program(1));
  EXPECT_THROW(ap.feed("nope", arch::make_word_u(0)),
               vlsip::PreconditionError);
  EXPECT_THROW(ap.output("nope"), vlsip::PreconditionError);
}

TEST(Ap, DeadlockDetected) {
  // A datapath needing two operands but fed only one never completes;
  // the executor must report a deadlock instead of spinning forever.
  AdaptiveProcessor ap(small_config());
  DatapathBuilder b;
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.output("s", b.op(Opcode::kIAdd, x, y));
  auto p = std::move(b).build();
  ExecConfig ec;
  ec.deadlock_window = 100;
  ApConfig c = small_config();
  c.exec = ec;
  AdaptiveProcessor ap2(c);
  ap2.configure(p);
  ap2.feed("x", arch::make_word_i(1));  // y never fed
  const auto exec = ap2.run(1, 100000);
  EXPECT_FALSE(exec.completed);
  EXPECT_TRUE(exec.deadlocked);
  (void)ap;
}

}  // namespace
}  // namespace vlsip::ap
