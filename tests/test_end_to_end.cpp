// End-to-end integration: the full toolchain and the full chip in one
// flow — DSL source -> compile -> schedule-optimize -> serialize ->
// reload -> job-schedule across the chip -> verify results; plus the
// §2.3 "multiple application datapaths in a sequential configuration
// manner" behaviour (object caching across phases sharing a library).
#include <gtest/gtest.h>

#include "arch/optimizer.hpp"
#include "arch/serialize.hpp"
#include "core/vlsi_processor.hpp"
#include "lang/compiler.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/job_scheduler.hpp"

namespace vlsip {
namespace {

TEST(EndToEnd, CompileOptimizeSerializeScheduleRun) {
  // 1. Compile from source.
  auto program = lang::compile(
      "input x\n"
      "a = x * x\n"
      "b = a + x\n"
      "output y = b - 1\n");

  // 2. Optimize the configuration stream.
  program.stream = arch::optimize_stream_order(program.stream);

  // 3. Serialize and reload (the deployment artifact).
  const auto reloaded = arch::from_text(arch::to_text(program));

  // 4. Schedule three instances as jobs on one chip.
  core::VlsiProcessor chip;
  scaling::JobScheduler sched(chip.manager());
  for (int i = 0; i < 3; ++i) {
    scaling::Job j;
    j.name = "inst" + std::to_string(i);
    j.program = reloaded;
    j.inputs = {{"x", {arch::make_word_i(i + 2)}}};
    j.expected_per_output = 1;
    j.requested_clusters = 1;
    sched.submit(std::move(j));
  }
  const auto result = sched.run_all();
  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(chip.free_clusters(), chip.total_clusters());
}

TEST(EndToEnd, VerifyComputedValuesThroughChipFacade) {
  auto program = lang::compile(
      "input x\n"
      "output y = (x + 3) * (x - 3)\n");
  core::VlsiProcessor chip;
  const auto p = chip.fuse(1);
  const auto r = chip.run_program(p, program,
                                  {{"x", {arch::make_word_i(10)}}}, 1,
                                  100000);
  ASSERT_TRUE(r.exec.completed);
  EXPECT_EQ(r.outputs.at("y")[0].i, 91);  // 13 * 7
}

TEST(EndToEnd, SequentialDatapathsShareTheObjectCache) {
  // §2.3: an AP configures multiple datapaths sequentially; objects
  // shared between them stay cached. Build two programs over ONE id
  // space: phase 2's stream reuses phase 1's objects.
  arch::DatapathBuilder b;
  const auto x = b.input("x");
  const auto c2 = b.constant_i(2);
  const auto sq = b.op(arch::Opcode::kIMul, x, x, "sq");
  const auto dbl = b.op(arch::Opcode::kIMul, x, c2, "dbl");
  b.output("sq_out", sq);
  b.output("dbl_out", dbl);
  const auto full = std::move(b).build();

  // Phase A: only the squaring chain. Phase B: only the doubling chain.
  // Both carry the full library (shared id space).
  auto make_phase = [&](std::initializer_list<std::size_t> element_idx,
                        const std::string& in_name,
                        const std::string& out_name,
                        arch::ObjectId out_obj) {
    arch::Program p;
    p.library = full.library;
    for (const auto i : element_idx) p.stream.push(full.stream[i]);
    p.inputs[in_name] = full.inputs.at(in_name);
    p.outputs[out_name] = out_obj;
    return p;
  };
  // full.stream: 0:x, 1:c2, 2:sq, 3:dbl, 4:sink sq, 5:sink dbl.
  const auto phase_a = make_phase({0, 2, 4}, "x", "sq_out",
                                  full.outputs.at("sq_out"));
  const auto phase_b = make_phase({0, 1, 3, 5}, "x", "dbl_out",
                                  full.outputs.at("dbl_out"));

  ap::AdaptiveProcessor ap{ap::ApConfig{}};
  const auto stats_a = ap.configure(phase_a);
  ap.feed("x", arch::make_word_i(6));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("sq_out")[0].i, 36);
  ap.release_datapath();

  const auto stats_b = ap.configure(phase_b);
  ap.feed("x", arch::make_word_i(6));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("dbl_out")[0].i, 12);

  // Phase B re-used x and the sink scaffolding: it must hit on the
  // shared objects (x was resident from phase A).
  EXPECT_GT(stats_a.misses, 0u);
  EXPECT_GT(stats_b.hits, 0u);
  EXPECT_LT(stats_b.misses, stats_b.object_requests);
}

TEST(EndToEnd, NocHeatmapTracksTraffic) {
  noc::NocFabric fabric(3, 3);
  noc::Packet p;
  p.src_x = 0;
  p.src_y = 0;
  p.dst_x = 2;
  p.dst_y = 0;
  p.payload = {1, 2, 3};
  fabric.inject(p);
  ASSERT_TRUE(fabric.run_until_drained(1000));
  // 4 flits crossed (0,0)->(1,0) and (1,0)->(2,0); ejected at (2,0).
  EXPECT_EQ(fabric.link_flits(0, 0, noc::Port::kEast), 4u);
  EXPECT_EQ(fabric.link_flits(1, 0, noc::Port::kEast), 4u);
  EXPECT_EQ(fabric.link_flits(2, 0, noc::Port::kLocal), 4u);
  EXPECT_EQ(fabric.link_flits(0, 0, noc::Port::kSouth), 0u);
  EXPECT_EQ(fabric.peak_link_flits(), 4u);
  const auto map = fabric.render_link_heatmap();
  EXPECT_NE(map.find(" 4"), std::string::npos);
}

TEST(EndToEnd, DefectDuringScheduledWorkload) {
  // A cluster dies between jobs; the scheduler keeps completing work on
  // the surviving fabric.
  core::VlsiProcessor chip;
  chip.manager().mark_defective(5);
  scaling::JobScheduler sched(chip.manager());
  for (int i = 0; i < 6; ++i) {
    scaling::Job j;
    j.name = "w" + std::to_string(i);
    j.program = arch::linear_pipeline_program(2);
    j.inputs = {{"in", {arch::make_word_i(i)}}};
    j.requested_clusters = 2;
    sched.submit(std::move(j));
  }
  const auto r = sched.run_all();
  EXPECT_EQ(r.completed, 6u);
}

}  // namespace
}  // namespace vlsip
