// Tests for the supervisor: task graphs with data edges, conditional
// activation (fig. 7 generalised), and resource lifecycle.
#include <gtest/gtest.h>

#include "arch/datapath.hpp"
#include "common/require.hpp"
#include "lang/compiler.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/supervisor.hpp"

namespace vlsip::scaling {
namespace {

struct SupervisorFixture : ::testing::Test {
  SupervisorFixture()
      : fabric(4, 4, topology::ClusterSpec{8, 8, 1}),
        noc(4, 4),
        mgr(fabric, noc),
        sup(mgr) {}

  /// Task computing out = load(0) + k (consumes one word at address 0).
  static TaskSpec add_k_task(const std::string& name, std::int64_t k) {
    TaskSpec t;
    t.name = name;
    t.program = lang::compile("output r = load(0) + " + std::to_string(k) +
                              "\n");
    t.clusters = 1;
    return t;
  }

  topology::STopologyFabric fabric;
  noc::NocFabric noc;
  ScalingManager mgr;
  Supervisor sup;
};

TEST_F(SupervisorFixture, SingleTask) {
  TaskSpec t;
  t.name = "solo";
  t.program = lang::compile("input x\noutput y = x * 3\n");
  t.direct_inputs = {{"x", {arch::make_word_i(4)}}};
  sup.add_task(std::move(t));
  const auto r = sup.run();
  EXPECT_EQ(r.tasks_run, 1u);
  EXPECT_EQ(r.outcome("solo").outputs.at("y")[0].i, 12);
  EXPECT_EQ(mgr.free_clusters(), 16u);
}

TEST_F(SupervisorFixture, LinearChainTransfersData) {
  TaskSpec head;
  head.name = "head";
  head.program = lang::compile("input x\noutput v = x + 1\n");
  head.direct_inputs = {{"x", {arch::make_word_i(10)}}};
  sup.add_task(std::move(head));
  sup.add_task(add_k_task("mid", 100));
  sup.add_task(add_k_task("tail", 1000));
  sup.add_edge({"head", "v", "mid", 0, std::nullopt, false});
  sup.add_edge({"mid", "r", "tail", 0, std::nullopt, false});
  const auto r = sup.run();
  EXPECT_EQ(r.tasks_run, 3u);
  EXPECT_EQ(r.outcome("tail").outputs.at("r")[0].i, 10 + 1 + 100 + 1000);
  EXPECT_GT(r.transfer_cycles, 0u);
}

TEST_F(SupervisorFixture, ConditionalOnlyRunsTakenArm) {
  // The fig. 7 program as a generic graph.
  TaskSpec cond;
  cond.name = "cond";
  cond.program = lang::compile(
      "input x\ninput y\noutput c = x > y\noutput xv = buff(x)\n"
      "output yv = buff(y)\n");
  cond.direct_inputs = {{"x", {arch::make_word_i(9)}},
                        {"y", {arch::make_word_i(2)}}};
  sup.add_task(std::move(cond));
  sup.add_task(add_k_task("then", 1));   // t = x + 1
  sup.add_task(add_k_task("else", 2));   // f = y + 2
  sup.add_task(add_k_task("join", 0));   // z = buff
  sup.add_edge({"cond", "xv", "then", 0, "c", false});
  sup.add_edge({"cond", "yv", "else", 0, "c", true});  // negated
  sup.add_edge({"then", "r", "join", 0, std::nullopt, false});
  sup.add_edge({"else", "r", "join", 0, std::nullopt, false});

  const auto r = sup.run();
  EXPECT_EQ(r.tasks_run, 3u);      // cond, then, join
  EXPECT_EQ(r.tasks_skipped, 1u);  // else never activated
  EXPECT_FALSE(r.outcome("else").ran);
  EXPECT_EQ(r.outcome("join").outputs.at("r")[0].i, 10);  // 9+1+0
}

TEST_F(SupervisorFixture, ConditionalOtherBranch) {
  TaskSpec cond;
  cond.name = "cond";
  cond.program = lang::compile(
      "input x\ninput y\noutput c = x > y\noutput xv = buff(x)\n"
      "output yv = buff(y)\n");
  cond.direct_inputs = {{"x", {arch::make_word_i(1)}},
                        {"y", {arch::make_word_i(7)}}};
  sup.add_task(std::move(cond));
  sup.add_task(add_k_task("then", 1));
  sup.add_task(add_k_task("else", 2));
  sup.add_task(add_k_task("join", 0));
  sup.add_edge({"cond", "xv", "then", 0, "c", false});
  sup.add_edge({"cond", "yv", "else", 0, "c", true});
  sup.add_edge({"then", "r", "join", 0, std::nullopt, false});
  sup.add_edge({"else", "r", "join", 0, std::nullopt, false});
  const auto r = sup.run();
  EXPECT_FALSE(r.outcome("then").ran);
  EXPECT_EQ(r.outcome("join").outputs.at("r")[0].i, 9);  // 7+2+0
}

TEST_F(SupervisorFixture, SkipCascades) {
  // cond -> a -> b: when the edge into `a` is predicated off, both a
  // and b are skipped.
  TaskSpec cond;
  cond.name = "cond";
  cond.program = lang::compile("input x\noutput c = x > 100\n"
                               "output v = buff(x)\n");
  cond.direct_inputs = {{"x", {arch::make_word_i(5)}}};
  sup.add_task(std::move(cond));
  sup.add_task(add_k_task("a", 1));
  sup.add_task(add_k_task("b", 1));
  sup.add_edge({"cond", "v", "a", 0, "c", false});
  sup.add_edge({"a", "r", "b", 0, std::nullopt, false});
  const auto r = sup.run();
  EXPECT_EQ(r.tasks_run, 1u);
  EXPECT_EQ(r.tasks_skipped, 2u);
}

TEST_F(SupervisorFixture, DiamondJoinsBothArms) {
  TaskSpec src;
  src.name = "src";
  src.program = lang::compile("input x\noutput v = buff(x)\n");
  src.direct_inputs = {{"x", {arch::make_word_i(10)}}};
  sup.add_task(std::move(src));
  sup.add_task(add_k_task("left", 1));
  sup.add_task(add_k_task("right", 2));
  TaskSpec join;
  join.name = "join";
  join.program = lang::compile("output s = load(0) + load(1)\n");
  sup.add_task(std::move(join));
  sup.add_edge({"src", "v", "left", 0, std::nullopt, false});
  sup.add_edge({"src", "v", "right", 0, std::nullopt, false});
  sup.add_edge({"left", "r", "join", 0, std::nullopt, false});
  sup.add_edge({"right", "r", "join", 1, std::nullopt, false});
  const auto r = sup.run();
  EXPECT_EQ(r.tasks_run, 4u);
  EXPECT_EQ(r.outcome("join").outputs.at("s")[0].i, 11 + 12);
}

TEST_F(SupervisorFixture, MultiTokenStreamsTransferWhole) {
  TaskSpec gen;
  gen.name = "gen";
  gen.program = lang::compile("input n\noutput i = iota(n)\n");
  gen.direct_inputs = {{"n", {arch::make_word_u(4)}}};
  gen.expected_per_output = 4;
  sup.add_task(std::move(gen));
  TaskSpec sum;
  sum.name = "sum";
  sum.program = lang::compile(
      "output s = load(0) + load(1) + load(2) + load(3)\n");
  sup.add_task(std::move(sum));
  sup.add_edge({"gen", "i", "sum", 0, std::nullopt, false});
  const auto r = sup.run();
  EXPECT_EQ(r.outcome("sum").outputs.at("s")[0].i, 0 + 1 + 2 + 3);
}

TEST_F(SupervisorFixture, Validation) {
  EXPECT_THROW(sup.add_edge({"nope", "x", "also-nope", 0, {}, false}),
               vlsip::PreconditionError);
  TaskSpec t;
  t.name = "a";
  t.program = lang::compile("input x\noutput y = x\n");
  sup.add_task(std::move(t));
  EXPECT_THROW(sup.add_edge({"a", "not-an-output", "a", 0, {}, false}),
               vlsip::PreconditionError);
  TaskSpec dup;
  dup.name = "a";
  dup.program = lang::compile("input x\noutput y = x\n");
  EXPECT_THROW(sup.add_task(std::move(dup)), vlsip::PreconditionError);
}

TEST_F(SupervisorFixture, CycleDetected) {
  sup.add_task(add_k_task("p", 1));
  sup.add_task(add_k_task("q", 1));
  sup.add_edge({"p", "r", "q", 0, std::nullopt, false});
  sup.add_edge({"q", "r", "p", 0, std::nullopt, false});
  EXPECT_THROW(sup.run(), vlsip::PreconditionError);
}

TEST_F(SupervisorFixture, TimelineIsMonotone) {
  sup.add_task(add_k_task("first", 1));
  // Seed first's memory via a generator so the load completes.
  TaskSpec gen;
  gen.name = "gen";
  gen.program = lang::compile("input x\noutput v = buff(x)\n");
  gen.direct_inputs = {{"x", {arch::make_word_i(0)}}};
  sup.add_task(std::move(gen));
  sup.add_edge({"gen", "v", "first", 0, std::nullopt, false});
  const auto r = sup.run();
  const auto& a = r.outcome("gen");
  const auto& b = r.outcome("first");
  EXPECT_LE(a.finished_at, b.started_at);
  EXPECT_LE(b.finished_at, r.total_cycles);
}

}  // namespace
}  // namespace vlsip::scaling
