// Parameterized property suites: invariants that must hold across wide
// parameter sweeps, not just hand-picked cases.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <tuple>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "arch/dependency.hpp"
#include "core/vlsi_processor.hpp"
#include "costmodel/energy.hpp"
#include "csd/csd_simulator.hpp"
#include "fault/fault_plan.hpp"
#include "snapshot/incremental.hpp"
#include "noc/noc_fabric.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"
#include "snapshot/snapshot.hpp"
#include "topology/s_topology.hpp"

namespace vlsip {
namespace {

// ---- Property: the configuration pipeline IS an LRU stack ---------------------
//
// The pipeline's hit/miss counts must match the Mattson stack-distance
// prediction for the same reference trace and capacity — the paper's
// §2.4 equivalence between stack distance and dependency distance.

struct LruParam {
  int capacity;
  std::uint32_t n_objects;
  double locality;
  std::uint64_t seed;
  int n_sources = 1;
};

class PipelineLruProperty : public ::testing::TestWithParam<LruParam> {};

TEST_P(PipelineLruProperty, HitsMatchMattson) {
  const auto param = GetParam();
  // Build a runnable program whose stream is the random workload: use
  // raw streams through pipeline components directly.
  const auto stream = arch::random_config_stream(
      param.n_objects, param.n_objects * 2, param.locality, param.seed,
      param.n_sources);

  arch::Program program;
  program.stream = stream;
  program.library.resize(param.n_objects);
  for (std::uint32_t i = 0; i < param.n_objects; ++i) {
    program.library[i].id = i;
    program.library[i].config.opcode = arch::Opcode::kBuff;
  }

  ap::ObjectSpace space(param.capacity);
  ap::Wsrf wsrf(1024);  // large: no retirement noise in this property
  ap::ObjectLibrary library(4);
  for (const auto& o : program.library) library.store(o);
  csd::DynamicCsdNetwork net(
      csd::CsdConfig{param.n_objects + 4,
                     static_cast<csd::ChannelId>(param.n_objects)});
  ap::ChainSet chains(net, space);
  ap::ReplacementScheduler scheduler;
  ap::ConfigurationPipeline pipeline(space, wsrf, library, chains,
                                     scheduler);

  const auto stats = pipeline.configure(program);

  const auto trace = stream.reference_trace();
  const auto distances = arch::stack_distances(trace);
  std::uint64_t expected_hits = 0;
  for (const auto d : distances) {
    if (d != arch::kColdDistance &&
        d <= static_cast<std::size_t>(param.capacity)) {
      ++expected_hits;
    }
  }
  EXPECT_EQ(stats.hits, expected_hits);
  EXPECT_EQ(stats.hits + stats.misses, trace.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineLruProperty,
    ::testing::Values(LruParam{4, 16, 0.0, 1}, LruParam{8, 16, 0.5, 2},
                      LruParam{16, 16, 0.9, 3}, LruParam{8, 32, 0.0, 4},
                      LruParam{16, 32, 0.3, 5}, LruParam{32, 32, 0.7, 6},
                      LruParam{16, 64, 0.0, 7}, LruParam{32, 64, 0.5, 8},
                      LruParam{12, 48, 0.2, 9}, LruParam{24, 48, 0.8, 10},
                      // Two-source model: triples of references per
                      // element, same LRU equivalence must hold.
                      LruParam{8, 32, 0.0, 11, 2},
                      LruParam{16, 32, 0.5, 12, 2},
                      LruParam{24, 64, 0.2, 13, 2}));

// ---- Property: fig. 3's channel bound ------------------------------------------

class ChannelBoundProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double,
                                                 std::uint64_t>> {};

TEST_P(ChannelBoundProperty, HalfTheObjectsSuffice) {
  const auto [n, locality, seed] = GetParam();
  csd::FunctionalRunConfig cfg;
  cfg.n_objects = n;
  cfg.n_channels = n;
  cfg.n_elements = n;
  cfg.locality = locality;
  cfg.seed = seed;
  const auto r = csd::run_functional_csd(cfg);
  EXPECT_LE(r.peak_used_channels, n / 2)
      << "N=" << n << " locality=" << locality << " seed=" << seed;
  EXPECT_EQ(r.rejected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelBoundProperty,
    ::testing::Combine(::testing::Values(16u, 32u, 64u, 128u, 256u),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(11ull, 12ull)));

// ---- Property: serpentine folding stays adjacent --------------------------------

class SerpentineProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SerpentineProperty, ConsecutiveAreNeighbors) {
  const auto [w, h, layers] = GetParam();
  topology::STopologyFabric f(w, h, topology::ClusterSpec{}, layers);
  for (std::size_t i = 1; i < f.cluster_count(); ++i) {
    ASSERT_TRUE(f.are_neighbors(f.serpentine_at(i - 1), f.serpentine_at(i)))
        << w << "x" << h << "x" << layers << " at " << i;
  }
  // And it is a bijection.
  std::vector<bool> seen(f.cluster_count(), false);
  for (topology::ClusterId id = 0; id < f.cluster_count(); ++id) {
    const auto s = f.serpentine_index(id);
    ASSERT_LT(s, f.cluster_count());
    ASSERT_FALSE(seen[s]);
    seen[s] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerpentineProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 8),
                       ::testing::Values(1, 2, 5, 8),
                       ::testing::Values(1, 2)));

// ---- Property: NoC delivers everything, latency >= distance ----------------------

class NocDeliveryProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, int>> {
};

TEST_P(NocDeliveryProperty, RandomTrafficDrains) {
  const auto [size, seed, vcs] = GetParam();
  noc::RouterConfig rc;
  rc.virtual_channels = vcs;
  noc::NocFabric fabric(size, size, rc);
  Xoshiro256 rng(seed);
  const int packets = size * size * 2;
  for (int i = 0; i < packets; ++i) {
    noc::Packet p;
    p.src_x = static_cast<std::uint16_t>(rng.uniform(size));
    p.src_y = static_cast<std::uint16_t>(rng.uniform(size));
    p.dst_x = static_cast<std::uint16_t>(rng.uniform(size));
    p.dst_y = static_cast<std::uint16_t>(rng.uniform(size));
    const auto len = rng.uniform(4);
    for (std::uint64_t w = 0; w < len; ++w) p.payload.push_back(w);
    fabric.inject(p);
  }
  ASSERT_TRUE(fabric.run_until_drained(1000000));
  ASSERT_EQ(fabric.delivered().size(), static_cast<std::size_t>(packets));
  for (const auto& p : fabric.delivered()) {
    EXPECT_GE(p.deliver_cycle - p.inject_cycle,
              static_cast<std::uint64_t>(p.hops()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NocDeliveryProperty,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(21ull, 22ull, 23ull),
                       ::testing::Values(1, 2, 4)));

// ---- Property: virtual hardware is transparent ------------------------------------
//
// The same program computes the same result whatever the capacity, as
// long as scalar faults are allowed — only the cycle count changes.

class VirtualHwProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VirtualHwProperty, ResultIndependentOfCapacity) {
  const auto [stages, capacity] = GetParam();
  const auto program = arch::linear_pipeline_program(stages);
  ap::ApConfig cfg;
  cfg.capacity = capacity;
  cfg.memory_blocks = 4;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(program);
  ap.feed("in", arch::make_word_i(7));
  const auto exec = ap.run(1, 2000000);
  ASSERT_TRUE(exec.completed)
      << "stages=" << stages << " capacity=" << capacity;

  // Reference: roomy capacity.
  ap::ApConfig big;
  big.capacity = 128;
  big.memory_blocks = 4;
  ap::AdaptiveProcessor ref(big);
  ref.configure(program);
  ref.feed("in", arch::make_word_i(7));
  ASSERT_TRUE(ref.run(1, 100000).completed);
  EXPECT_EQ(ap.output("out")[0].i, ref.output("out")[0].i);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VirtualHwProperty,
    ::testing::Combine(::testing::Values(2, 4, 6, 8),
                       ::testing::Values(5, 8, 12, 24)));

// ---- Property: dependency distance decides the needed capacity ---------------------

class CapacityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CapacityProperty, MinCapacityEliminatesWarmMisses) {
  const auto seed = GetParam();
  const auto stream = arch::random_config_stream(32, 64, 0.5, seed);
  const auto profile = arch::analyze_dependencies(stream);
  const auto trace = stream.reference_trace();
  // At the profile's minimum capacity, every warm reference hits.
  const double rate = arch::hit_rate(
      trace, profile.min_capacity_for_no_warm_miss);
  const double warm_fraction =
      1.0 - static_cast<double>(profile.cold_misses) /
                static_cast<double>(trace.size());
  EXPECT_NEAR(rate, warm_fraction, 1e-12);
  // One below (if possible) must miss at least once more.
  if (profile.min_capacity_for_no_warm_miss > 1) {
    EXPECT_LT(arch::hit_rate(trace,
                             profile.min_capacity_for_no_warm_miss - 1),
              warm_fraction);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CapacityProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

// ---- Property: chaos never loses a job ----------------------------------
//
// For any seeded fault plan — cluster kills, object defects, stuck
// switches, CSD segment cuts, memory poison, worker stalls and crashes
// — the self-healing farm accounts for every submitted job:
//
//     submitted == completed + failed + cancelled
//
// and every returned future is resolved (no kPending outcome ever
// escapes). 200 seeds, each a different plan over a small deterministic
// farm, so the sweep stays fast while covering every fault kind many
// times over.

class FaultPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(FaultPlanProperty, EveryJobAccountedForUnderChaos) {
  const int block = GetParam();
  // 8 blocks x 25 seeds = 200 plans.
  for (int i = 0; i < 25; ++i) {
    const std::uint64_t seed =
        static_cast<std::uint64_t>(block) * 1000 + i + 1;
    SCOPED_TRACE("plan seed " + std::to_string(seed));

    runtime::SyntheticSpec jobs_spec;
    jobs_spec.jobs = 6;
    jobs_spec.max_stages = 4;
    jobs_spec.tokens = 2;
    jobs_spec.seed = seed * 7 + 3;
    const auto jobs = runtime::synthetic_jobs(jobs_spec);

    fault::FaultPlanSpec plan_spec;
    plan_spec.seed = seed;
    plan_spec.events = 1 + (seed % 8);
    plan_spec.horizon = jobs.size();
    plan_spec.clusters = 64;
    plan_spec.w_worker_stall = 1.0;
    plan_spec.w_worker_crash = 0.5;
    plan_spec.max_stall = 128;

    runtime::FarmConfig cfg;
    cfg.deterministic = true;
    cfg.fault_tolerance.enabled = true;
    cfg.fault_tolerance.plan = fault::random_fault_plan(plan_spec);

    runtime::ChipFarm farm(cfg);
    std::vector<std::future<scaling::JobOutcome>> futures;
    for (const auto& job : jobs) {
      auto admission = farm.submit(job);
      ASSERT_TRUE(admission.admitted);
      futures.push_back(std::move(admission.outcome));
    }
    farm.drain();
    const auto m = farm.metrics();
    farm.shutdown();

    const std::uint64_t failed =
        m.deadlocked + m.timed_out + m.no_allocation + m.errors;
    EXPECT_EQ(m.submitted, jobs.size());
    EXPECT_EQ(m.submitted, m.completed + failed + m.cancelled + m.rejected);
    for (auto& future : futures) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      EXPECT_NE(future.get().status, scaling::JobStatus::kPending);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultPlanProperty, ::testing::Range(0, 8));

// ---- Property: the event-driven cycle engine is bit-identical to dense --------
//
// The executor's quiescence-skipping activity-set engine must be
// indistinguishable from the dense every-object-every-cycle reference
// scan: identical outputs, identical cycle-exact statistics (including
// idle-cycle accounting across skipped spans), and an identical trace.
// The sweep covers roomy and starved object spaces (the latter forces
// virtual-hardware faults, CFB contention and evictions onto the skip
// paths) and a deadlock case.

struct DiffDag {
  arch::Program program;
  std::size_t n_inputs = 0;
  std::size_t n_outputs = 0;
};

DiffDag make_diff_dag(std::uint64_t seed) {
  const arch::Opcode ops[] = {
      arch::Opcode::kIAdd, arch::Opcode::kISub, arch::Opcode::kIMul,
      arch::Opcode::kIDiv, arch::Opcode::kIRem, arch::Opcode::kIShl,
      arch::Opcode::kIShr, arch::Opcode::kIAnd, arch::Opcode::kIOr,
      arch::Opcode::kIXor, arch::Opcode::kCmpGt, arch::Opcode::kCmpLt,
      arch::Opcode::kCmpEq,
  };
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ull + 1);
  DiffDag dag;
  arch::DatapathBuilder b;
  std::vector<arch::ObjectId> ids;
  dag.n_inputs = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < dag.n_inputs; ++i) {
    ids.push_back(b.input("in" + std::to_string(i)));
  }
  const std::size_t n_consts = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < n_consts; ++i) {
    ids.push_back(b.constant_i(rng.uniform_range(-9, 9)));
  }
  const std::size_t n_ops = 4 + rng.uniform(24);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const auto op = ops[rng.uniform(std::size(ops))];
    const auto lhs = static_cast<std::size_t>(rng.uniform(ids.size()));
    const auto rhs = static_cast<std::size_t>(rng.uniform(ids.size()));
    ids.push_back(b.op(op, ids[lhs], ids[rhs]));
  }
  dag.n_outputs = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < dag.n_outputs; ++i) {
    b.output("out" + std::to_string(i),
             ids[dag.n_inputs + n_consts + rng.uniform(n_ops)]);
  }
  dag.program = std::move(b).build();
  return dag;
}

struct DiffRun {
  ap::ExecStats exec;
  /// Lifetime energy-activity fold of the AP after the run — the third
  /// identity axis: derived purely from serialized counters, so it must
  /// be bit-identical across engines and across checkpoint/resume.
  cost::EnergyActivity energy;
  std::map<std::string, std::vector<std::int64_t>> outputs;
  std::vector<Trace::Entry> trace;
};

void expect_energy_identical(const cost::EnergyActivity& a,
                             const cost::EnergyActivity& b,
                             std::uint64_t seed) {
  for (std::size_t c = 0; c < cost::kEnergyClassCount; ++c) {
    EXPECT_EQ(a.units[c], b.units[c])
        << "seed " << seed << " energy class " << cost::energy_class_name(c);
  }
}

DiffRun run_engine(const DiffDag& dag, std::uint64_t seed, bool event,
                   int capacity, std::size_t waves,
                   std::size_t starve_inputs) {
  ap::ApConfig cfg;
  cfg.capacity = capacity;
  cfg.memory_blocks = 4;
  cfg.enable_trace = true;
  cfg.exec.event_driven = event;
  cfg.exec.deadlock_window = 600;
  ap::AdaptiveProcessor ap(cfg);
  ap.configure(dag.program);
  Xoshiro256 rng(seed ^ 0xFEEDFACEull);
  for (std::size_t w = 0; w < waves; ++w) {
    for (std::size_t i = 0; i < dag.n_inputs; ++i) {
      const auto v = rng.uniform_range(-100, 100);
      // Starving an input of its last wave(s) forces a deadlock that
      // both engines must diagnose identically.
      if (i == 0 && w >= waves - starve_inputs) continue;
      ap.feed("in" + std::to_string(i), arch::make_word_i(v));
    }
  }
  DiffRun run;
  run.exec = ap.run(waves, 2000000);
  ap.fold_energy(run.energy);
  for (std::size_t o = 0; o < dag.n_outputs; ++o) {
    const auto name = "out" + std::to_string(o);
    for (const auto& w : ap.output(name)) run.outputs[name].push_back(w.i);
  }
  for (const auto& e : ap.trace().entries()) run.trace.push_back(e);
  return run;
}

void expect_identical(const DiffRun& dense, const DiffRun& event,
                      std::uint64_t seed) {
  EXPECT_EQ(dense.exec.cycles, event.exec.cycles) << "seed " << seed;
  EXPECT_EQ(dense.exec.firings, event.exec.firings) << "seed " << seed;
  EXPECT_EQ(dense.exec.tokens_moved, event.exec.tokens_moved)
      << "seed " << seed;
  EXPECT_EQ(dense.exec.int_ops, event.exec.int_ops) << "seed " << seed;
  EXPECT_EQ(dense.exec.float_ops, event.exec.float_ops) << "seed " << seed;
  EXPECT_EQ(dense.exec.mem_ops, event.exec.mem_ops) << "seed " << seed;
  EXPECT_EQ(dense.exec.transport_ops, event.exec.transport_ops)
      << "seed " << seed;
  EXPECT_EQ(dense.exec.faults, event.exec.faults) << "seed " << seed;
  EXPECT_EQ(dense.exec.fault_cycles, event.exec.fault_cycles)
      << "seed " << seed;
  EXPECT_EQ(dense.exec.release_tokens, event.exec.release_tokens)
      << "seed " << seed;
  EXPECT_EQ(dense.exec.idle_cycles, event.exec.idle_cycles)
      << "seed " << seed;
  EXPECT_EQ(dense.exec.deadlocked, event.exec.deadlocked) << "seed " << seed;
  EXPECT_EQ(dense.exec.completed, event.exec.completed) << "seed " << seed;
  EXPECT_EQ(dense.exec.blocked_report, event.exec.blocked_report)
      << "seed " << seed;
  expect_energy_identical(dense.energy, event.energy, seed);
  EXPECT_EQ(dense.outputs, event.outputs) << "seed " << seed;
  ASSERT_EQ(dense.trace.size(), event.trace.size()) << "seed " << seed;
  for (std::size_t i = 0; i < dense.trace.size(); ++i) {
    EXPECT_EQ(dense.trace[i].cycle, event.trace[i].cycle)
        << "seed " << seed << " entry " << i;
    EXPECT_EQ(dense.trace[i].category, event.trace[i].category)
        << "seed " << seed << " entry " << i;
    EXPECT_EQ(dense.trace[i].message, event.trace[i].message)
        << "seed " << seed << " entry " << i;
  }
}

class EventEngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EventEngineEquivalence, BitIdenticalToDenseScan) {
  // 10 GTest shards x 10 seeds = the 100-seed sweep, parallel under
  // ctest -j without one monolithic slow test.
  const int shard = GetParam();
  for (int s = 0; s < 10; ++s) {
    const std::uint64_t seed = static_cast<std::uint64_t>(shard) * 10 + s + 1;
    const auto dag = make_diff_dag(seed);
    // Roomy space on even seeds; a starved 6-slot space on odd seeds
    // keeps the virtual-hardware fault machinery on the hot path.
    const int capacity = (seed % 2 == 0) ? 64 : 6;
    // Every 7th seed starves input 0 of its final wave -> deadlock.
    const std::size_t starve = (seed % 7 == 0) ? 1 : 0;
    const std::size_t waves = 3;
    const auto dense =
        run_engine(dag, seed, false, capacity, waves, starve);
    const auto event =
        run_engine(dag, seed, true, capacity, waves, starve);
    // Starved runs deadlock iff some output depends on in0; either way
    // both engines must agree exactly.
    if (starve == 0) {
      EXPECT_TRUE(dense.exec.completed) << "seed " << seed;
    }
    expect_identical(dense, event, seed);
    // Third axis: the event engine with every SIMD kernel routed to its
    // scalar reference. Dense-vs-event proves the activity tracking is
    // sound; this proves the vector kernels inside it are exact.
    simd::set_force_scalar(true);
    const auto event_scalar =
        run_engine(dag, seed, true, capacity, waves, starve);
    simd::set_force_scalar(false);
    expect_identical(event, event_scalar, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep100, EventEngineEquivalence,
                         ::testing::Range(0, 10));

TEST(EventEngineEquivalenceTest, DeadlockDiagnosisIdentical) {
  // A guaranteed deadlock: out = in0 + in1 with in1 starved of its
  // second wave. The event engine must skip straight to the deadlock
  // horizon yet report the same cycle count and blocked-object report
  // as the dense scan that idled through every cycle.
  arch::DatapathBuilder b;
  const auto a = b.input("in0");
  const auto c = b.input("in1");
  b.output("out0", b.op(arch::Opcode::kIAdd, a, c));
  DiffDag dag;
  dag.program = std::move(b).build();
  dag.n_inputs = 2;
  dag.n_outputs = 1;

  auto run = [&](bool event) {
    ap::ApConfig cfg;
    cfg.memory_blocks = 4;
    cfg.enable_trace = true;
    cfg.exec.event_driven = event;
    cfg.exec.deadlock_window = 600;
    ap::AdaptiveProcessor ap(cfg);
    ap.configure(dag.program);
    ap.feed("in0", arch::make_word_i(2));
    ap.feed("in0", arch::make_word_i(3));
    ap.feed("in1", arch::make_word_i(5));  // second wave never arrives
    DiffRun r;
    r.exec = ap.run(2, 2000000);
    for (const auto& w : ap.output("out0")) r.outputs["out0"].push_back(w.i);
    for (const auto& e : ap.trace().entries()) r.trace.push_back(e);
    return r;
  };
  const auto dense = run(false);
  const auto event = run(true);
  EXPECT_TRUE(dense.exec.deadlocked);
  EXPECT_FALSE(dense.exec.blocked_report.empty());
  expect_identical(dense, event, 0);
}

// ---- Property: checkpoint/restore is invisible to the simulation --------------
//
// run-N -> save -> restore into a brand-new AP -> continue must be
// bit-identical to the uninterrupted run: same outputs, same
// cycle-exact statistics. The sweep reuses the differential DAGs above
// in both a roomy space (plain) and a starved 6-slot space (the chaos
// half: virtual-hardware faults, CFB contention and evictions are all
// live across the save/restore boundary). wakes/quiescence_skips are
// call-local bookkeeping of the event engine's wake queue and are the
// one pair excluded, as in the dense/event equivalence above.

void fold_exec(ap::ExecStats& total, const ap::ExecStats& seg) {
  total.cycles += seg.cycles;
  total.firings += seg.firings;
  total.tokens_moved += seg.tokens_moved;
  total.int_ops += seg.int_ops;
  total.float_ops += seg.float_ops;
  total.mem_ops += seg.mem_ops;
  total.transport_ops += seg.transport_ops;
  total.faults += seg.faults;
  total.fault_cycles += seg.fault_cycles;
  total.release_tokens += seg.release_tokens;
  total.idle_cycles += seg.idle_cycles;
  total.completed = seg.completed;
  total.deadlocked = seg.deadlocked;
  total.blocked_report = seg.blocked_report;
}

ap::ApConfig checkpoint_cfg(int capacity) {
  ap::ApConfig cfg;
  cfg.capacity = capacity;
  cfg.memory_blocks = 4;
  return cfg;
}

// Runs the dag like run_engine() does, but interrupted every `segment`
// cycles: save, restore into a freshly-constructed AP, continue there.
// segment == 0 is the uninterrupted baseline on the identical config.
DiffRun run_engine_checkpointed(const DiffDag& dag, std::uint64_t seed,
                                int capacity, std::size_t waves,
                                std::uint64_t segment) {
  const auto cfg = checkpoint_cfg(capacity);
  auto ap = std::make_unique<ap::AdaptiveProcessor>(cfg);
  ap->configure(dag.program);
  Xoshiro256 rng(seed ^ 0xFEEDFACEull);
  for (std::size_t w = 0; w < waves; ++w) {
    for (std::size_t i = 0; i < dag.n_inputs; ++i) {
      const auto v = rng.uniform_range(-100, 100);
      ap->feed("in" + std::to_string(i), arch::make_word_i(v));
    }
  }
  DiffRun run;
  std::uint64_t budget = 2000000;
  for (;;) {
    const std::uint64_t slice =
        segment == 0 ? budget : std::min<std::uint64_t>(budget, segment);
    const auto seg = ap->run(waves, slice);
    fold_exec(run.exec, seg);
    budget -= std::min(budget, seg.cycles);
    if (seg.completed || seg.deadlocked || budget == 0 || seg.cycles == 0) {
      break;
    }
    snapshot::Snapshot snap;
    {
      snapshot::Writer w(snap);
      ap->save(w);
    }
    // Saving twice from the same state must give the same bytes.
    snapshot::Snapshot again;
    {
      snapshot::Writer w(again);
      ap->save(w);
    }
    EXPECT_EQ(snap.bytes(), again.bytes()) << "seed " << seed;
    ap = std::make_unique<ap::AdaptiveProcessor>(cfg);
    snapshot::Reader r(snap);
    ap->restore(r);
  }
  // The AP's lifetime counters ride the snapshot, so the final fold
  // sees the whole run regardless of how many round trips chopped it.
  ap->fold_energy(run.energy);
  for (std::size_t o = 0; o < dag.n_outputs; ++o) {
    const auto name = "out" + std::to_string(o);
    for (const auto& w : ap->output(name)) run.outputs[name].push_back(w.i);
  }
  return run;
}

class CheckpointEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointEquivalence, RestoredRunIsBitIdentical) {
  // 10 shards x 10 seeds = the 100-seed sweep. Even seeds run roomy
  // (plain); odd seeds run starved (faults active over the boundary).
  const int shard = GetParam();
  for (int s = 0; s < 10; ++s) {
    const std::uint64_t seed = static_cast<std::uint64_t>(shard) * 10 + s + 1;
    const auto dag = make_diff_dag(seed);
    const int capacity = (seed % 2 == 0) ? 64 : 6;
    const std::size_t waves = 3;
    const auto plain =
        run_engine_checkpointed(dag, seed, capacity, waves, 0);
    // A short prime segment forces many save/restore round trips per
    // run, cutting through every phase of execution.
    const auto chopped =
        run_engine_checkpointed(dag, seed, capacity, waves, 7);
    ASSERT_TRUE(plain.exec.completed) << "seed " << seed;
    EXPECT_EQ(plain.exec.completed, chopped.exec.completed)
        << "seed " << seed;
    EXPECT_EQ(plain.exec.cycles, chopped.exec.cycles) << "seed " << seed;
    EXPECT_EQ(plain.exec.firings, chopped.exec.firings) << "seed " << seed;
    EXPECT_EQ(plain.exec.tokens_moved, chopped.exec.tokens_moved)
        << "seed " << seed;
    EXPECT_EQ(plain.exec.int_ops, chopped.exec.int_ops) << "seed " << seed;
    EXPECT_EQ(plain.exec.float_ops, chopped.exec.float_ops)
        << "seed " << seed;
    EXPECT_EQ(plain.exec.mem_ops, chopped.exec.mem_ops) << "seed " << seed;
    EXPECT_EQ(plain.exec.transport_ops, chopped.exec.transport_ops)
        << "seed " << seed;
    EXPECT_EQ(plain.exec.faults, chopped.exec.faults) << "seed " << seed;
    EXPECT_EQ(plain.exec.fault_cycles, chopped.exec.fault_cycles)
        << "seed " << seed;
    EXPECT_EQ(plain.exec.release_tokens, chopped.exec.release_tokens)
        << "seed " << seed;
    EXPECT_EQ(plain.exec.idle_cycles, chopped.exec.idle_cycles)
        << "seed " << seed;
    EXPECT_EQ(plain.exec.deadlocked, chopped.exec.deadlocked)
        << "seed " << seed;
    expect_energy_identical(plain.energy, chopped.energy, seed);
    EXPECT_EQ(plain.outputs, chopped.outputs) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep100, CheckpointEquivalence,
                         ::testing::Range(0, 10));

// ---- Property: incremental checkpoint chains are invisible --------------------
//
// The incremental encoder (save_profiled + encode_delta) must never be
// observable: at every boundary of a seeded mutation run, the chain
// materialized from keyframe+deltas is byte-identical to a full
// snapshot of the same state, a fresh chip restored from that chain
// continues exactly like the uninterrupted one, and plain flat (v1)
// snapshots still round-trip untouched. 100 seeds in 10 shards; seed
// % 3 == 0 runs fault-active (cluster quarantines through heal()),
// odd seeds run a starved 2x2 chip where fuses fail and the dirty
// generations sit still between boundaries.

core::ChipConfig sweep_chip_config(std::uint64_t seed) {
  core::ChipConfig cfg;
  if (seed % 2 == 1) {
    cfg.width = 2;
    cfg.height = 2;
  } else {
    cfg.width = 4;
    cfg.height = 4;
  }
  return cfg;
}

// One seeded mutation step; identical streams drive identical chips.
void sweep_mutate(core::VlsiProcessor& chip, Xoshiro256& rng,
                  std::vector<scaling::ProcId>& live, bool fault_active) {
  const auto roll = rng.uniform(4);
  if (roll == 0 && !live.empty()) {
    const auto at = static_cast<std::size_t>(rng.uniform(live.size()));
    chip.release(live[at]);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
  } else if (roll == 1 && fault_active) {
    const auto cluster = static_cast<topology::ClusterId>(
        rng.uniform(chip.total_clusters()));
    const auto recovery = chip.heal(cluster);
    // Track the replacement; drop the victim if it was one of ours.
    if (recovery.victim != scaling::kNoProc) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i] == recovery.victim) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    if (recovery.replacement != scaling::kNoProc) {
      live.push_back(recovery.replacement);
    }
  } else {
    const auto proc = chip.fuse(1 + rng.uniform(3));
    if (proc != scaling::kNoProc) live.push_back(proc);
  }
}

class IncrementalChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalChainProperty, ChainMaterializesToFullAtEveryBoundary) {
  const int shard = GetParam();
  for (int s = 0; s < 10; ++s) {
    const std::uint64_t seed = static_cast<std::uint64_t>(shard) * 10 + s + 1;
    SCOPED_TRACE("chain seed " + std::to_string(seed));
    const bool fault_active = (seed % 3 == 0);
    const auto cfg = sweep_chip_config(seed);

    core::VlsiProcessor chip(cfg);
    std::vector<scaling::ProcId> live;
    Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ull + 17);

    core::SaveProfile profile;
    ASSERT_TRUE(chip.save_profiled(profile).ok());
    std::vector<snapshot::Snapshot> chain{profile.flat};

    for (int round = 0; round < 6; ++round) {
      sweep_mutate(chip, rng, live, fault_active);

      core::SaveProfile base = std::move(profile);
      ASSERT_TRUE(chip.save_profiled(profile, base).ok());
      chain.push_back(snapshot::encode_delta(base.flat, base.index,
                                             profile.flat, profile.index));

      // Invariant 1: the incremental save and the chain are both
      // byte-identical to a full snapshot taken right now.
      snapshot::Snapshot full;
      ASSERT_TRUE(chip.save(full).ok());
      ASSERT_EQ(profile.flat.bytes(), full.bytes()) << "round " << round;
      const auto materialized = snapshot::materialize_chain(chain);
      ASSERT_TRUE(materialized.ok())
          << "round " << round << ": " << materialized.status().message();
      ASSERT_EQ(materialized->bytes(), full.bytes()) << "round " << round;

      // Invariant 3: the flat container still reads as version 1.
      snapshot::Reader r(full);
      ASSERT_EQ(r.version(), snapshot::kVersionFlat);
    }

    // Invariant 2: a chip restored from the materialized chain and the
    // uninterrupted chip stay byte-identical under three more rounds of
    // the same mutation stream.
    const auto materialized = snapshot::materialize_chain(chain);
    ASSERT_TRUE(materialized.ok());
    core::VlsiProcessor resumed(cfg);
    ASSERT_TRUE(resumed.restore(*materialized).ok());
    std::vector<scaling::ProcId> resumed_live = live;
    Xoshiro256 rng_a = rng;
    Xoshiro256 rng_b = rng;
    for (int round = 0; round < 3; ++round) {
      sweep_mutate(chip, rng_a, live, fault_active);
      sweep_mutate(resumed, rng_b, resumed_live, fault_active);
      snapshot::Snapshot a;
      snapshot::Snapshot b;
      ASSERT_TRUE(chip.save(a).ok());
      ASSERT_TRUE(resumed.save(b).ok());
      ASSERT_EQ(a.bytes(), b.bytes()) << "post-restore round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep100, IncrementalChainProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace vlsip
