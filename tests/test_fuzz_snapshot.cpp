// Fuzz wall for the incremental-checkpoint decoders, driven by a fixed
// seed corpus (tests/corpus/snapshot_deltas.txt, path compiled in as
// VLSIP_SNAPSHOT_CORPUS — same pattern as test_fuzz_protocol).
//
// Three surfaces are attacked:
//   * the varint codec (snapshot/codec.hpp): hostile byte strings must
//     decode or throw SnapshotError — truncation mid-varint and
//     overlong encodings included;
//   * apply_delta: seeded mutations (truncation, bit flips, extension,
//     header rewrites, varint splices) of a well-formed delta
//     container must produce Status(kCorruptSnapshot) or — when the
//     mutation happens to be a semantic no-op — the *exact* original
//     bytes. Silent acceptance of different bytes is the failure mode
//     the container hashes exist to prevent;
//   * materialize_chain: dropped links (a delta referencing a missing
//     base), reordered links, mutated mid-chain links.
//
// Everything derives from the corpus line, so a failure reproduces
// from the line alone. Runs under ASan/UBSan in CI (the sanitize job's
// Fuzz* filter picks these tests up by name).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/vlsi_processor.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/incremental.hpp"
#include "snapshot/snapshot.hpp"

#ifndef VLSIP_SNAPSHOT_CORPUS
#error "VLSIP_SNAPSHOT_CORPUS must point at the seed corpus file"
#endif

namespace vlsip {
namespace {

using snapshot::Snapshot;

struct CorpusEntry {
  int line = 0;
  std::uint64_t seed = 0;
  std::size_t mutations = 0;
  std::size_t max_len = 0;
};

std::vector<CorpusEntry> load_corpus() {
  std::ifstream in(VLSIP_SNAPSHOT_CORPUS);
  EXPECT_TRUE(in.good()) << "cannot open " << VLSIP_SNAPSHOT_CORPUS;
  std::vector<CorpusEntry> entries;
  std::string text;
  int line = 0;
  while (std::getline(in, text)) {
    ++line;
    if (text.empty() || text.front() == '#') continue;
    std::istringstream fields(text);
    CorpusEntry entry;
    entry.line = line;
    fields >> entry.seed >> entry.mutations >> entry.max_len;
    entries.push_back(entry);
  }
  return entries;
}

/// A synthetic flat snapshot whose section contents/sizes vary with
/// `salt`: alpha is salt-independent (ref mode), beta shares a long
/// prefix across salts (delta mode), gamma changes shape entirely
/// (literal mode) — all three container modes exercised per pair.
Snapshot make_flat(std::uint64_t salt, snapshot::SectionIndex& index) {
  Snapshot snap;
  snapshot::Writer w(snap);
  w.set_section_index(&index);
  w.section("fuzz.alpha");
  for (std::uint64_t i = 0; i < 32; ++i) w.u64(0x5157u * 31 + i);
  w.section("fuzz.beta");
  for (std::uint64_t i = 0; i < 64; ++i) w.u64(i);
  w.u64(salt);
  w.str("tail-" + std::to_string(salt % 5));
  w.section("fuzz.gamma");
  std::vector<std::uint64_t> words;
  for (std::uint64_t i = 0; i <= salt % 9; ++i) words.push_back(salt ^ i);
  w.vec_u64(words);
  w.set_section_index(nullptr);
  return snap;
}

/// A real chip snapshot pair: base after one fuse, next after another
/// fuse + release — the tags and nesting the production encoder sees.
void make_chip_pair(core::SaveProfile& base, core::SaveProfile& next) {
  core::ChipConfig config;
  config.width = 4;
  config.height = 4;
  core::VlsiProcessor chip(config);
  const auto p = chip.fuse(2);
  ASSERT_TRUE(chip.save_profiled(base).ok());
  const auto q = chip.fuse(3);
  chip.release(p);
  (void)q;
  ASSERT_TRUE(chip.save_profiled(next, base).ok());
}

/// Applies one seeded mutation in place.
void mutate(std::vector<std::uint8_t>& bytes, Xoshiro256& rng,
            std::size_t max_len) {
  switch (rng.uniform(6)) {
    case 0:  // truncate (mid-varint included — any boundary)
      if (!bytes.empty()) {
        bytes.resize(static_cast<std::size_t>(rng.uniform(bytes.size())));
      }
      break;
    case 1:  // extend with noise (trailing-bytes rejection)
      for (std::size_t n = rng.uniform(16) + 1;
           n > 0 && bytes.size() < max_len; --n) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      break;
    case 2:  // flip a bit anywhere
      if (!bytes.empty()) {
        const auto at = static_cast<std::size_t>(rng.uniform(bytes.size()));
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      }
      break;
    case 3:  // rewrite a header byte (magic / version / kind / hashes)
      if (bytes.size() >= 25) {
        const auto at = static_cast<std::size_t>(rng.uniform(25));
        bytes[at] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 4:  // saturate a byte — varint counts/lengths overflow path
      if (bytes.size() > 25) {
        const auto at =
            25 + static_cast<std::size_t>(rng.uniform(bytes.size() - 25));
        bytes[at] = 0xFF;
      }
      break;
    case 5:  // splice a run of random bytes
      if (!bytes.empty()) {
        const auto at = static_cast<std::size_t>(rng.uniform(bytes.size()));
        const std::size_t run =
            std::min<std::size_t>(rng.uniform(8) + 1, bytes.size() - at);
        for (std::size_t i = 0; i < run; ++i) {
          bytes[at + i] = static_cast<std::uint8_t>(rng.next());
        }
      }
      break;
  }
}

/// The invariant under attack: a mutated delta either fails with
/// kCorruptSnapshot or reconstructs the *exact* original bytes (the
/// mutation was a semantic no-op). Anything else is a wall breach.
void check_apply(const Snapshot& base, const Snapshot& mutated,
                 const Snapshot& pristine_next, int line) {
  const auto applied = snapshot::apply_delta(base, mutated);
  if (applied.ok()) {
    EXPECT_EQ(applied->bytes(), pristine_next.bytes())
        << "corpus line " << line
        << ": mutated delta silently accepted with different bytes";
  } else {
    EXPECT_EQ(applied.status().code(), StatusCode::kCorruptSnapshot)
        << "corpus line " << line << ": untyped failure "
        << status_code_name(applied.status().code()) << ": "
        << applied.status().message();
  }
}

TEST(FuzzSnapshot, VarintHostileBytesDecodeOrThrowTyped) {
  const auto corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  for (const auto& entry : corpus) {
    Xoshiro256 rng(entry.seed);
    for (std::size_t round = 0; round < entry.mutations; ++round) {
      std::vector<std::uint8_t> bytes(rng.uniform(12));
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
      std::size_t pos = 0;
      try {
        const std::uint64_t v =
            snapshot::get_varint(bytes.data(), bytes.size(), pos);
        // A decode must consume at least one byte and stay in bounds.
        EXPECT_GT(pos, 0u);
        EXPECT_LE(pos, bytes.size());
        // Round-trip: re-encoding the value must reproduce a canonical
        // prefix that decodes to the same value.
        std::vector<std::uint8_t> rt;
        snapshot::put_varint(rt, v);
        std::size_t rt_pos = 0;
        EXPECT_EQ(snapshot::get_varint(rt.data(), rt.size(), rt_pos), v);
      } catch (const snapshot::SnapshotError&) {
        // Typed rejection — the only exception allowed out.
      }
    }
  }
}

TEST(FuzzSnapshot, VarintRoundTripsArbitraryValues) {
  Xoshiro256 rng(0xC0DEC);
  for (int i = 0; i < 5000; ++i) {
    // Bias toward boundary magnitudes: all widths 0..63 bits.
    const std::uint64_t v = rng.next() >> rng.uniform(64);
    std::vector<std::uint8_t> buf;
    snapshot::put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(snapshot::get_varint(buf.data(), buf.size(), pos), v);
    EXPECT_EQ(pos, buf.size());
    // Signed round-trip through zigzag.
    const auto s = static_cast<std::int64_t>(rng.next());
    buf.clear();
    snapshot::put_svarint(buf, s);
    pos = 0;
    EXPECT_EQ(snapshot::get_svarint(buf.data(), buf.size(), pos), s);
  }
}

TEST(FuzzSnapshot, VarintTruncationMidEncodingThrows) {
  std::vector<std::uint8_t> buf;
  snapshot::put_varint(buf, 0xFFFFFFFFFFFFFFFFull);  // 10-byte encoding
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::size_t pos = 0;
    EXPECT_THROW(snapshot::get_varint(buf.data(), cut, pos),
                 snapshot::SnapshotError)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(FuzzSnapshot, CleanDeltasRoundTrip) {
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    snapshot::SectionIndex bi, ni;
    const Snapshot base = make_flat(salt, bi);
    const Snapshot next = make_flat(salt + 1, ni);
    const Snapshot delta = snapshot::encode_delta(base, bi, next, ni);
    ASSERT_TRUE(snapshot::is_delta(delta));
    ASSERT_FALSE(snapshot::is_delta(base));
    const auto applied = snapshot::apply_delta(base, delta);
    ASSERT_TRUE(applied.ok()) << applied.status().message();
    EXPECT_EQ(applied->bytes(), next.bytes());
  }
  core::SaveProfile base, next;
  make_chip_pair(base, next);
  const Snapshot delta =
      snapshot::encode_delta(base.flat, base.index, next.flat, next.index);
  EXPECT_LT(delta.size(), next.flat.size());
  const auto applied = snapshot::apply_delta(base.flat, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().message();
  EXPECT_EQ(applied->bytes(), next.flat.bytes());
}

TEST(FuzzSnapshot, TruncationSweepFailsTyped) {
  // Every proper prefix of a real container must fail typed — this is
  // the deterministic truncation wall (mid-varint cuts included, since
  // the sweep hits every byte boundary).
  snapshot::SectionIndex bi, ni;
  const Snapshot base = make_flat(2, bi);
  const Snapshot next = make_flat(3, ni);
  const Snapshot delta = snapshot::encode_delta(base, bi, next, ni);
  for (std::size_t cut = 0; cut < delta.size(); ++cut) {
    Snapshot truncated;
    truncated.bytes().assign(delta.bytes().begin(),
                             delta.bytes().begin() +
                                 static_cast<std::ptrdiff_t>(cut));
    const auto applied = snapshot::apply_delta(base, truncated);
    ASSERT_FALSE(applied.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_EQ(applied.status().code(), StatusCode::kCorruptSnapshot);
  }
}

TEST(FuzzSnapshot, DeltaAgainstWrongBaseIsRejected) {
  // "Delta referencing a missing base": the container's base hash
  // catches both a different base and no plausible base at all.
  snapshot::SectionIndex bi, ni, oi;
  const Snapshot base = make_flat(1, bi);
  const Snapshot next = make_flat(2, ni);
  const Snapshot other = make_flat(5, oi);
  const Snapshot delta = snapshot::encode_delta(base, bi, next, ni);
  const auto wrong = snapshot::apply_delta(other, delta);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kCorruptSnapshot);
  const auto empty = snapshot::apply_delta(Snapshot{}, delta);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kCorruptSnapshot);
  // A flat snapshot where a delta belongs is equally typed.
  const auto not_delta = snapshot::apply_delta(base, next);
  ASSERT_FALSE(not_delta.ok());
  EXPECT_EQ(not_delta.status().code(), StatusCode::kCorruptSnapshot);
}

TEST(FuzzSnapshot, MutatedDeltasFailTypedOrExact) {
  const auto corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  // Substrates: synthetic pairs plus one real chip pair.
  struct Pair {
    Snapshot base, next, delta;
  };
  std::vector<Pair> pairs;
  for (std::uint64_t salt = 0; salt < 3; ++salt) {
    snapshot::SectionIndex bi, ni;
    Pair p;
    p.base = make_flat(salt, bi);
    p.next = make_flat(salt + 1, ni);
    p.delta = snapshot::encode_delta(p.base, bi, p.next, ni);
    pairs.push_back(std::move(p));
  }
  {
    core::SaveProfile base, next;
    make_chip_pair(base, next);
    Pair p;
    p.delta =
        snapshot::encode_delta(base.flat, base.index, next.flat, next.index);
    p.base = std::move(base.flat);
    p.next = std::move(next.flat);
    pairs.push_back(std::move(p));
  }
  for (const auto& entry : corpus) {
    Xoshiro256 rng(entry.seed);
    for (const auto& pair : pairs) {
      auto bytes = pair.delta.bytes();
      if (bytes.size() > entry.max_len) bytes.resize(entry.max_len);
      for (std::size_t m = 0; m < entry.mutations; ++m) {
        mutate(bytes, rng, entry.max_len);
        Snapshot mutated;
        mutated.bytes() = bytes;
        check_apply(pair.base, mutated, pair.next, entry.line);
      }
    }
  }
}

TEST(FuzzSnapshot, MutatedChainsFailTypedOrExact) {
  const auto corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  // A 4-link chain over the synthetic substrate.
  std::vector<Snapshot> chain;
  std::vector<Snapshot> flats;
  snapshot::SectionIndex prev_index;
  flats.push_back(make_flat(0, prev_index));
  chain.push_back(flats.back());
  for (std::uint64_t salt = 1; salt <= 3; ++salt) {
    snapshot::SectionIndex index;
    flats.push_back(make_flat(salt, index));
    chain.push_back(snapshot::encode_delta(flats[salt - 1], prev_index,
                                           flats[salt], index));
    prev_index = std::move(index);
  }
  const auto clean = snapshot::materialize_chain(chain);
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  ASSERT_EQ(clean->bytes(), flats.back().bytes());

  // Structural attacks: a dropped link makes the next delta reference
  // a missing base; a swapped pair breaks both hashes; an empty chain
  // and a delta-first chain are invalid arguments.
  for (std::size_t drop = 1; drop < chain.size(); ++drop) {
    auto broken = chain;
    broken.erase(broken.begin() + static_cast<std::ptrdiff_t>(drop));
    const auto result = snapshot::materialize_chain(broken);
    if (drop == chain.size() - 1) {
      // Dropping the tail shortens the chain but leaves it coherent —
      // it must materialize the *previous* state exactly, never the
      // dropped tail's.
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->bytes(), flats[flats.size() - 2].bytes());
    } else {
      ASSERT_FALSE(result.ok()) << "dropped link " << drop << " accepted";
      EXPECT_EQ(result.status().code(), StatusCode::kCorruptSnapshot);
    }
  }
  {
    auto swapped = chain;
    std::swap(swapped[1], swapped[2]);
    const auto result = snapshot::materialize_chain(swapped);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruptSnapshot);
  }
  {
    const auto result = snapshot::materialize_chain({});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    auto delta_first = chain;
    delta_first.erase(delta_first.begin());
    const auto result = snapshot::materialize_chain(delta_first);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruptSnapshot);
  }

  // Seeded byte-level attacks on every link.
  for (const auto& entry : corpus) {
    Xoshiro256 rng(entry.seed);
    for (std::size_t link = 0; link < chain.size(); ++link) {
      auto bytes = chain[link].bytes();
      for (std::size_t m = 0; m < entry.mutations; ++m) {
        mutate(bytes, rng, entry.max_len);
        auto attacked = chain;
        attacked[link].bytes() = bytes;
        const auto result = snapshot::materialize_chain(attacked);
        if (result.ok()) {
          EXPECT_EQ(result->bytes(), flats.back().bytes())
              << "corpus line " << entry.line << ", link " << link
              << ": mutated chain silently accepted with different bytes";
        } else {
          const auto code = result.status().code();
          EXPECT_TRUE(code == StatusCode::kCorruptSnapshot ||
                      code == StatusCode::kInvalidArgument)
              << "corpus line " << entry.line << ", link " << link
              << ": untyped failure " << status_code_name(code);
        }
      }
    }
  }
}

TEST(FuzzSnapshot, RestoreRejectsDeltaContainers) {
  // The chip-level guard: a delta container handed to restore() (e.g.
  // a chain link mistaken for a flat checkpoint) is a typed reject.
  core::SaveProfile base, next;
  make_chip_pair(base, next);
  const Snapshot delta =
      snapshot::encode_delta(base.flat, base.index, next.flat, next.index);
  core::ChipConfig config;
  config.width = 4;
  config.height = 4;
  core::VlsiProcessor chip(config);
  const Status restored = chip.restore(delta);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kCorruptSnapshot);
}

}  // namespace
}  // namespace vlsip
