// Tests for the configuration-stream scheduler.
#include <gtest/gtest.h>

#include <unordered_map>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "arch/optimizer.hpp"
#include "lang/compiler.hpp"

namespace vlsip::arch {
namespace {

TEST(Optimizer, PreservesElementMultiset) {
  const auto stream = random_config_stream(32, 64, 0.2, 5);
  const auto opt = optimize_stream_order(stream);
  ASSERT_EQ(opt.size(), stream.size());
  // Every original element appears exactly once.
  std::unordered_map<std::string, int> counts;
  auto key = [](const ConfigElement& e) {
    std::string k = std::to_string(e.sink);
    for (auto s : e.sources) k += "," + std::to_string(s);
    return k;
  };
  for (const auto& e : stream.elements()) ++counts[key(e)];
  for (const auto& e : opt.elements()) --counts[key(e)];
  for (const auto& [k, v] : counts) EXPECT_EQ(v, 0) << k;
}

TEST(Optimizer, RespectsProducerBeforeConsumer) {
  // chain stream: element i defines object i+1 from object i. Any valid
  // order must keep definitions before uses.
  const auto stream = chain_config_stream(12);
  const auto opt = optimize_stream_order(stream);
  std::unordered_map<ObjectId, std::size_t> defined_at;
  for (std::size_t i = 0; i < opt.size(); ++i) {
    defined_at[opt[i].sink] = i;
  }
  for (std::size_t i = 0; i < opt.size(); ++i) {
    for (const auto src : opt[i].sources) {
      if (src == kNoObject) continue;
      const auto it = defined_at.find(src);
      if (it != defined_at.end()) {
        // Source's definition (if it has one) must not be later, unless
        // the original stream also used it before defining it.
        EXPECT_LE(it->second, i) << "element " << i;
      }
    }
  }
}

TEST(Optimizer, NeverWorsensMeanDistance) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (double loc : {0.0, 0.3, 0.7}) {
      const auto stream = random_config_stream(64, 128, loc, seed);
      OptimizeReport report;
      optimize_stream_order(stream, &report);
      EXPECT_LE(report.optimized_mean_distance,
                report.original_mean_distance + 1e-9)
          << "seed " << seed << " loc " << loc;
    }
  }
}

TEST(Optimizer, ImprovesScatteredStream) {
  // Interleave two independent chains: the optimizer should cluster
  // each chain, halving mean distances.
  ConfigStream scattered;
  for (std::size_t i = 1; i < 16; ++i) {
    ConfigElement a;  // chain A over objects 0..15
    a.sink = static_cast<ObjectId>(i);
    a.sources[0] = static_cast<ObjectId>(i - 1);
    ConfigElement b;  // chain B over objects 100..115
    b.sink = static_cast<ObjectId>(100 + i);
    b.sources[0] = static_cast<ObjectId>(100 + i - 1);
    scattered.push(a);
    scattered.push(b);
  }
  OptimizeReport report;
  optimize_stream_order(scattered, &report);
  EXPECT_LT(report.optimized_mean_distance,
            report.original_mean_distance);
}

TEST(Optimizer, DeterministicOutput) {
  const auto stream = random_config_stream(48, 96, 0.1, 77);
  const auto a = optimize_stream_order(stream);
  const auto b = optimize_stream_order(stream);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Optimizer, EmptyAndSingle) {
  EXPECT_EQ(optimize_stream_order(ConfigStream{}).size(), 0u);
  ConfigStream one;
  ConfigElement e;
  e.sink = 1;
  e.sources[0] = 0;
  one.push(e);
  const auto opt = optimize_stream_order(one);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt[0], e);
}

TEST(Optimizer, OptimizedProgramStillComputes) {
  // Reorder a real program's stream and run it: results are unchanged
  // (the executor is order-insensitive; the configuration gets cheaper).
  auto program = lang::compile(
      "input x\n"
      "a = x + 1\n"
      "b = x * 2\n"
      "c = a + b\n"
      "output y = c * c\n");
  program.stream = optimize_stream_order(program.stream);
  ap::AdaptiveProcessor ap{ap::ApConfig{}};
  ap.configure(program);
  ap.feed("x", make_word_i(3));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("y")[0].i, 100);  // (4+6)^2
}

TEST(Optimizer, ImprovesPipelineHitRate) {
  // The end goal: fewer configuration misses at a given capacity.
  const auto stream = random_config_stream(64, 192, 0.05, 9);
  const auto opt = optimize_stream_order(stream);
  const auto before = hit_rate(stream.reference_trace(), 12);
  const auto after = hit_rate(opt.reference_trace(), 12);
  EXPECT_GE(after, before);
}

}  // namespace
}  // namespace vlsip::arch
