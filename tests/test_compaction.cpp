// Tests for chip compaction (defragmentation on the serpentine order).
#include <gtest/gtest.h>

#include "arch/datapath.hpp"
#include "common/require.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/scaling_manager.hpp"
#include "topology/s_topology.hpp"

namespace vlsip::scaling {
namespace {

struct CompactFixture : ::testing::Test {
  CompactFixture()
      : fabric(4, 4, topology::ClusterSpec{4, 4, 1}),
        noc(4, 4),
        mgr(fabric, noc) {}

  topology::STopologyFabric fabric;
  noc::NocFabric noc;
  ScalingManager mgr;
};

TEST_F(CompactFixture, CoalescesFreeSpace) {
  const auto a = mgr.allocate(4);
  const auto b = mgr.allocate(4);
  const auto c = mgr.allocate(4);
  ASSERT_NE(c, kNoProc);
  mgr.release(b);  // hole of 4 clusters in the middle
  EXPECT_EQ(mgr.largest_free_run(), 4u);
  const auto moved = mgr.compact();
  EXPECT_EQ(moved, 1u);  // only c needed to move
  EXPECT_EQ(mgr.largest_free_run(), 8u);
  EXPECT_EQ(mgr.free_clusters(), 8u);
  EXPECT_TRUE(mgr.alive(a));
  EXPECT_TRUE(mgr.alive(c));
}

TEST_F(CompactFixture, AlreadyPackedIsNoop) {
  mgr.allocate(4);
  mgr.allocate(4);
  EXPECT_EQ(mgr.compact(), 0u);
}

TEST_F(CompactFixture, ProcessorsStillComputeAfterRelocation) {
  const auto a = mgr.allocate(2);
  const auto b = mgr.allocate(2);
  mgr.release(a);
  ASSERT_EQ(mgr.compact(), 1u);
  auto& ap = mgr.processor(b);
  ap.configure(arch::linear_pipeline_program(2));
  ap.feed("in", arch::make_word_i(5));
  const auto exec = ap.run(1, 100000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(ap.output("out")[0].i, 12);  // (5+1)*2
}

TEST_F(CompactFixture, ApStateSurvivesRelocation) {
  const auto a = mgr.allocate(2);
  const auto b = mgr.allocate(2);
  // Put recognisable state into b's memory block before the move.
  mgr.processor(b).memory().write(7, arch::make_word_u(0xBEEF));
  mgr.release(a);
  ASSERT_EQ(mgr.compact(), 1u);
  EXPECT_EQ(mgr.processor(b).memory().read(7).u, 0xBEEFu);
}

TEST_F(CompactFixture, ActiveProcessorsDoNotMove) {
  const auto a = mgr.allocate(4);
  const auto b = mgr.allocate(4);
  mgr.release(a);
  mgr.activate(b);
  EXPECT_EQ(mgr.compact(), 0u);  // b is active: immovable
  EXPECT_EQ(mgr.largest_free_run(), 8u);  // tail still free
  mgr.deactivate(b);
  EXPECT_EQ(mgr.compact(), 1u);
  EXPECT_EQ(mgr.largest_free_run(), 12u);
}

TEST_F(CompactFixture, DefectsAreObstacles) {
  const auto a = mgr.allocate(2);
  mgr.release(a);
  // Quarantine the very first serpentine cluster: compaction must pack
  // behind it, never onto it.
  mgr.mark_defective(fabric.serpentine_at(0));
  const auto b = mgr.allocate(3);
  ASSERT_NE(b, kNoProc);
  mgr.compact();
  const auto& path = mgr.regions().region(mgr.info(b).region).path;
  for (const auto c : path) EXPECT_FALSE(mgr.is_defective(c));
  // b is packed immediately after the defect.
  EXPECT_EQ(fabric.serpentine_index(path.front()), 1u);
}

TEST_F(CompactFixture, RelocationCostsConfigCycles) {
  const auto a = mgr.allocate(4);
  mgr.allocate(4);
  mgr.release(a);
  const auto before = mgr.stats().config_cycles;
  mgr.compact();
  EXPECT_GT(mgr.stats().config_cycles, before);  // worms were sent
  EXPECT_EQ(mgr.relocations(), 1u);
}

TEST_F(CompactFixture, ManyRoundsConverge) {
  std::vector<ProcId> procs;
  for (int i = 0; i < 8; ++i) procs.push_back(mgr.allocate(2));
  // Release every other processor.
  for (int i = 0; i < 8; i += 2) mgr.release(procs[i]);
  mgr.compact();
  EXPECT_EQ(mgr.largest_free_run(), 8u);
  // A second compaction changes nothing.
  EXPECT_EQ(mgr.compact(), 0u);
}

}  // namespace
}  // namespace vlsip::scaling
