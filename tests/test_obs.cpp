// Tests for the observability spine: the streaming JSON writer, the
// metric registry + quantile sketch, the structured trace sink with its
// chrome-trace exporter, and the ObsSnapshot bundle.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "obs/farm_metrics.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace_sink.hpp"
#include "scaling/job.hpp"

namespace vlsip::obs {
namespace {

// ---- JsonWriter --------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndCommas) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("a", 1);
  w.field("b", std::string("x"));
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{10});
  w.value(std::int64_t{-3});
  w.value(true);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.depth(), 0u);
  EXPECT_EQ(out.str(), "{\"a\":1,\"b\":\"x\",\"list\":[10,-3,true],"
                       "\"nested\":{}}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("k\"ey", "v\nal");
  w.end_object();
  EXPECT_EQ(out.str(), "{\"k\\\"ey\":\"v\\nal\"}");
}

TEST(JsonWriter, DoubleUsesStreamDefaultFormatting) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array();
  w.value(0.5);
  w.value(160.0);
  w.end_array();
  EXPECT_EQ(out.str(), "[0.5,160]");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("pre");
  w.raw("{\"rendered\":true}");
  w.field("post", 2);
  w.end_object();
  EXPECT_EQ(out.str(), "{\"pre\":{\"rendered\":true},\"post\":2}");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream out;
  JsonWriter w(out);
  EXPECT_THROW(w.end_object(), PreconditionError);
  w.begin_object();
  w.key("a");
  EXPECT_THROW(w.key("b"), PreconditionError);   // two keys in a row
  EXPECT_THROW(w.end_object(), PreconditionError);  // dangling key
}

// ---- QuantileSketch ----------------------------------------------------

TEST(QuantileSketch, ExactBelowCapacity) {
  QuantileSketch s(128);
  std::vector<double> samples;
  for (int i = 100; i > 0; --i) {
    s.add(static_cast<double>(i));
    samples.push_back(static_cast<double>(i));
  }
  ASSERT_TRUE(s.exact());
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), percentile(samples, q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(QuantileSketch, EmptyIsZero) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(QuantileSketch, DeterministicPastCapacity) {
  QuantileSketch a(64), b(64);
  for (int i = 0; i < 10000; ++i) {
    const double x = static_cast<double>((i * 37) % 1000);
    a.add(x);
    b.add(x);
  }
  EXPECT_FALSE(a.exact());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
    // Past capacity the estimate must still land inside the data range.
    EXPECT_GE(a.quantile(q), 0.0);
    EXPECT_LE(a.quantile(q), 1000.0);
  }
}

TEST(QuantileSketch, MergeExactUnderCapacity) {
  QuantileSketch a(256), b(256);
  std::vector<double> all;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i * 3 + 1);
    (i % 2 ? a : b).add(x);
    all.push_back(x);
  }
  a.merge(b);
  ASSERT_TRUE(a.exact());
  EXPECT_EQ(a.count(), 50u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), percentile(all, 0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.95), percentile(all, 0.95));
}

// ---- MetricRegistry ----------------------------------------------------

TEST(MetricRegistry, StableReferencesAccumulate) {
  MetricRegistry r;
  std::uint64_t& hits = r.counter("csd.grants");
  hits += 3;
  r.counter("csd.grants") += 2;
  EXPECT_EQ(r.counters().at("csd.grants"), 5u);
  r.gauge("noc.queued") = 7.5;
  EXPECT_DOUBLE_EQ(r.gauges().at("noc.queued"), 7.5);
}

TEST(MetricRegistry, MergeSemantics) {
  MetricRegistry a, b;
  a.counter("x") = 2;
  b.counter("x") = 3;
  b.counter("only_b") = 1;
  a.gauge("g") = 1.0;
  b.gauge("g") = 9.0;
  a.sketch("lat").add(10.0);
  b.sketch("lat").add(20.0);
  a.merge(b);
  EXPECT_EQ(a.counters().at("x"), 5u);       // counters add
  EXPECT_EQ(a.counters().at("only_b"), 1u);  // missing keys created
  EXPECT_DOUBLE_EQ(a.gauges().at("g"), 9.0);  // gauges: last writer wins
  EXPECT_EQ(a.sketch("lat").count(), 2u);     // sketches merge
  EXPECT_DOUBLE_EQ(a.sketch("lat").quantile(1.0), 20.0);
}

TEST(MetricRegistry, JsonIsSortedAndDeterministic) {
  MetricRegistry r;
  r.counter("zeta") = 1;
  r.counter("alpha") = 2;
  r.gauge("mid") = 0.5;
  std::ostringstream out;
  JsonWriter w(out);
  r.write_json(w);
  const auto json = out.str();
  EXPECT_NE(json.find("\"counters\":{\"alpha\":2,\"zeta\":1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"mid\":0.5}"), std::string::npos);
  // Same registry renders byte-identically.
  std::ostringstream again;
  JsonWriter w2(again);
  r.write_json(w2);
  EXPECT_EQ(json, again.str());
}

// ---- TraceSink ---------------------------------------------------------

TEST(TraceSink, DisabledRecordsNothing) {
  TraceSink sink(false);
  sink.event(1, Layer::kAp, "exec", 0, "fired");
  sink.record(2, "exec", "legacy");
  EXPECT_TRUE(sink.entries().empty());
}

TEST(TraceSink, StructuredAndLegacyEvents) {
  TraceSink sink(true);
  sink.event(10, Layer::kCsd, "route", 4, "grant", 3);
  sink.record(11, "exec", "fired");
  ASSERT_EQ(sink.entries().size(), 2u);
  const TraceSink::Entry& e = sink.entries().front();
  EXPECT_EQ(e.cycle, 10u);
  EXPECT_EQ(e.layer, Layer::kCsd);
  EXPECT_EQ(e.id, 4);
  EXPECT_EQ(e.dur, 3u);
  // The legacy entry point produces an untyped instant.
  EXPECT_EQ(sink.entries().back().layer, Layer::kOther);
  EXPECT_EQ(sink.entries().back().id, -1);
  EXPECT_EQ(sink.entries().back().dur, 0u);
  EXPECT_EQ(sink.count("route"), 1u);
  EXPECT_TRUE(sink.contains("grant"));
  std::uint64_t cycle = 0;
  EXPECT_TRUE(sink.first_cycle_of("fired", cycle));
  EXPECT_EQ(cycle, 11u);
  EXPECT_NE(sink.render().find("grant"), std::string::npos);
}

TEST(TraceSink, CapacityRingAndLifetimeDropCounter) {
  TraceSink sink(true);
  sink.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    sink.record(static_cast<std::uint64_t>(i), "c", std::to_string(i));
  }
  ASSERT_EQ(sink.entries().size(), 3u);
  EXPECT_EQ(sink.entries().front().message, "2");  // oldest evicted
  EXPECT_EQ(sink.dropped(), 2u);
  sink.clear();
  EXPECT_TRUE(sink.entries().empty());
  // dropped() is a lifetime counter: clear() must not reset it.
  EXPECT_EQ(sink.dropped(), 2u);
}

TEST(TraceSink, ChromeTraceRendersSpansAndInstants) {
  TraceSink sink(true);
  sink.event(100, Layer::kRuntime, "job", 2, "job 1 completed", 40);
  sink.event(150, Layer::kFault, "inject", -1, "cluster kill");
  std::ostringstream out;
  write_chrome_trace(sink, out);
  const auto json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"dur\":40"), std::string::npos);
  EXPECT_NE(json.find("\"runtime\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\""), std::string::npos);
  // Balanced document: ends as an object (plus trailing newline), no
  // dangling comma.
  const auto last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
}

TEST(TraceSink, ChromeTraceOfEmptySinkIsValid) {
  TraceSink sink(false);
  std::ostringstream out;
  write_chrome_trace(sink, out);
  EXPECT_NE(out.str().find("\"traceEvents\":["), std::string::npos);
}

// ---- ObsSnapshot -------------------------------------------------------

TEST(ObsSnapshot, JsonBundlesInfoMetricsAndTrace) {
  ObsSnapshot snap;
  snap.add_info("verb", "test");
  snap.add_info("seed", "42");
  snap.metrics.counter("farm.completed") = 7;
  TraceSink sink(true);
  sink.event(1, Layer::kCore, "boot", -1, "chip up");
  snap.trace = &sink;
  const auto json = snap.to_json();
  EXPECT_NE(json.find("\"info\":{\"verb\":\"test\",\"seed\":\"42\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"farm.completed\":7"), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST(ObsSnapshot, WritesFiles) {
  ObsSnapshot snap;
  snap.add_info("verb", "test");
  snap.metrics.counter("c") = 1;
  TraceSink sink(true);
  sink.event(5, Layer::kAp, "exec", 0, "fired", 2);
  snap.trace = &sink;
  const std::string obs_path = "test_obs_snapshot.json";
  const std::string trace_path = "test_obs_trace.json";
  ASSERT_TRUE(snap.write_json_file(obs_path));
  ASSERT_TRUE(snap.write_chrome_trace_file(trace_path));
  std::ifstream obs_in(obs_path);
  std::stringstream obs_body;
  obs_body << obs_in.rdbuf();
  EXPECT_NE(obs_body.str().find("\"metrics\""), std::string::npos);
  std::ifstream trace_in(trace_path);
  std::stringstream trace_body;
  trace_body << trace_in.rdbuf();
  EXPECT_NE(trace_body.str().find("\"traceEvents\""), std::string::npos);
  std::remove(obs_path.c_str());
  std::remove(trace_path.c_str());
  EXPECT_FALSE(snap.write_json_file("no/such/dir/x.json"));
}

// ---- FarmMetrics bridge ------------------------------------------------

TEST(FarmMetrics, ExportIntoRegistryUsesFarmNames) {
  FarmMetrics m;
  scaling::JobOutcome o;
  o.status = scaling::JobStatus::kCompleted;
  o.queued_at = 0;
  o.started_at = 10;
  o.finished_at = 110;
  m.submitted = 1;
  m.admitted = 1;
  m.record(o);
  MetricRegistry r;
  m.export_into(r);
  EXPECT_EQ(r.counters().at("farm.submitted"), 1u);
  EXPECT_EQ(r.counters().at("farm.completed"), 1u);
  EXPECT_EQ(r.sketch("farm.latency").count(), 1u);
  EXPECT_DOUBLE_EQ(r.sketch("farm.latency").quantile(0.5), 110.0);
}

}  // namespace
}  // namespace vlsip::obs
