// Tests for the object model, configuration streams, datapath builder and
// dependency-distance analysis.
#include <gtest/gtest.h>

#include "arch/config_stream.hpp"
#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "arch/object.hpp"
#include "common/require.hpp"

namespace vlsip::arch {
namespace {

// ---- Opcode tables ----------------------------------------------------------

TEST(Opcode, ArityMatchesSemantics) {
  EXPECT_EQ(op_arity(Opcode::kConst), 0);
  EXPECT_EQ(op_arity(Opcode::kBuff), 1);
  EXPECT_EQ(op_arity(Opcode::kIAdd), 2);
  EXPECT_EQ(op_arity(Opcode::kSelect), 3);
  EXPECT_EQ(op_arity(Opcode::kMerge), 2);
  EXPECT_EQ(op_arity(Opcode::kStore), 2);
}

TEST(Opcode, ClassesMapToFabrics) {
  EXPECT_EQ(op_class(Opcode::kIAdd), OpClass::kIntAlu);
  EXPECT_EQ(op_class(Opcode::kIMul), OpClass::kIntMul);
  EXPECT_EQ(op_class(Opcode::kIDiv), OpClass::kIntDiv);
  EXPECT_EQ(op_class(Opcode::kFAdd), OpClass::kFloat);
  EXPECT_EQ(op_class(Opcode::kFDiv), OpClass::kFloatDiv);
  EXPECT_EQ(op_class(Opcode::kLoad), OpClass::kMemory);
  EXPECT_EQ(op_class(Opcode::kConst), OpClass::kTransport);
}

TEST(Opcode, DividesAreSlowest) {
  EXPECT_GT(op_latency(Opcode::kIDiv), op_latency(Opcode::kIMul));
  EXPECT_GT(op_latency(Opcode::kFDiv), op_latency(Opcode::kFAdd));
  EXPECT_GT(op_latency(Opcode::kIMul), op_latency(Opcode::kIAdd));
}

TEST(Opcode, ProducersAndConsumers) {
  EXPECT_TRUE(op_produces(Opcode::kIAdd));
  EXPECT_FALSE(op_produces(Opcode::kStore));
  EXPECT_FALSE(op_produces(Opcode::kSink));
}

TEST(Opcode, NamesAreDistinctAndNonEmpty) {
  EXPECT_STREQ(op_name(Opcode::kFMul), "fmul");
  EXPECT_STRNE(op_name(Opcode::kIAdd), op_name(Opcode::kISub));
}

TEST(LocalConfig, LatencyOverride) {
  LocalConfig c;
  c.opcode = Opcode::kIAdd;
  EXPECT_EQ(c.latency(), op_latency(Opcode::kIAdd));
  c.latency_override = 9;
  EXPECT_EQ(c.latency(), 9);
}

// ---- ConfigElement / ConfigStream ----------------------------------------------

TEST(ConfigElement, SourceCountSkipsEmpty) {
  ConfigElement e;
  e.sink = 5;
  e.sources[0] = 1;
  e.sources[2] = 3;
  EXPECT_EQ(e.source_count(), 2);
  EXPECT_EQ(e.referenced(), (std::vector<ObjectId>{5, 1, 3}));
}

TEST(ConfigStream, ReferenceTraceOrder) {
  ConfigStream s;
  ConfigElement a;
  a.sink = 2;
  a.sources[0] = 0;
  ConfigElement b;
  b.sink = 3;
  b.sources[0] = 2;
  b.sources[1] = 1;
  s.push(a);
  s.push(b);
  EXPECT_EQ(s.reference_trace(), (std::vector<ObjectId>{2, 0, 3, 2, 1}));
  EXPECT_EQ(s.distinct_objects(), (std::vector<ObjectId>{2, 0, 3, 1}));
}

TEST(ConfigStream, RenderShowsDependencies) {
  const auto s = chain_config_stream(3);
  const auto text = s.render();
  EXPECT_NE(text.find("sink=1"), std::string::npos);
  EXPECT_NE(text.find("sink=2"), std::string::npos);
}

// ---- DatapathBuilder --------------------------------------------------------------

TEST(Builder, BuildsLinearPipeline) {
  const auto p = linear_pipeline_program(4);
  EXPECT_TRUE(p.inputs.contains("in"));
  EXPECT_TRUE(p.outputs.contains("out"));
  // input + 4 ops + 4 constants + sink
  EXPECT_EQ(p.object_count(), 10u);
  EXPECT_EQ(p.stream.size(), 10u);
}

TEST(Builder, RejectsDuplicateNames) {
  DatapathBuilder b;
  b.input("x");
  EXPECT_THROW(b.input("x"), vlsip::PreconditionError);
}

TEST(Builder, RejectsWrongArity) {
  DatapathBuilder b;
  const auto x = b.input("x");
  EXPECT_THROW(b.op(Opcode::kIAdd, x), vlsip::PreconditionError);
  EXPECT_THROW(b.op(Opcode::kBuff, x, x), vlsip::PreconditionError);
}

TEST(Builder, RejectsForeignIds) {
  DatapathBuilder b;
  b.input("x");
  EXPECT_THROW(b.op(Opcode::kBuff, 999), vlsip::PreconditionError);
}

TEST(Builder, IdsAreDense) {
  DatapathBuilder b;
  const auto x = b.input("x");
  const auto c = b.constant_i(7);
  const auto s = b.op(Opcode::kIAdd, x, c);
  EXPECT_EQ(x, 0u);
  EXPECT_EQ(c, 1u);
  EXPECT_EQ(s, 2u);
  const auto p = std::move(b).build();
  for (std::size_t i = 0; i < p.library.size(); ++i) {
    EXPECT_EQ(p.library[i].id, i);
  }
}

TEST(Builder, ConstantCarriesImmediate) {
  DatapathBuilder b;
  const auto c = b.constant_i(-12);
  const auto f = b.constant_f(2.5);
  const auto p = std::move(b).build();
  EXPECT_EQ(p.object(c).config.immediate.i, -12);
  EXPECT_DOUBLE_EQ(p.object(f).config.immediate.f, 2.5);
}

TEST(Builder, ConditionalExampleShape) {
  const auto p = conditional_example_program();
  EXPECT_TRUE(p.inputs.contains("x"));
  EXPECT_TRUE(p.inputs.contains("y"));
  EXPECT_TRUE(p.outputs.contains("z"));
  // x, y, cmp, c1, t, c2, f, gate, gatenot, merge, sink = 11 objects
  EXPECT_EQ(p.object_count(), 11u);
}

TEST(Builder, FirProgramDelayLine) {
  const auto p = fir_program({0.5, 0.25, 0.25});
  // Delay buffers carry an initial zero token.
  int initial_tokens = 0;
  for (const auto& obj : p.library) {
    if (obj.config.initial_token) ++initial_tokens;
  }
  EXPECT_EQ(initial_tokens, 2);
}

TEST(Builder, FirRejectsEmpty) {
  EXPECT_THROW(fir_program({}), vlsip::PreconditionError);
}

// ---- Workload generators -------------------------------------------------------------

TEST(RandomStream, SizeAndRange) {
  const auto s = random_config_stream(64, 100, 0.5, 1);
  EXPECT_EQ(s.size(), 100u);
  for (const auto& e : s.elements()) {
    EXPECT_LT(e.sink, 64u);
    ASSERT_EQ(e.source_count(), 1);
    EXPECT_LT(e.sources[0], 64u);
    EXPECT_NE(e.sources[0], e.sink);
  }
}

TEST(RandomStream, DeterministicPerSeed) {
  const auto a = random_config_stream(32, 50, 0.3, 7);
  const auto b = random_config_stream(32, 50, 0.3, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RandomStream, HighLocalityMeansShortOffsets) {
  // With locality 1 the source is (almost) the preceding sink.
  const auto s = random_config_stream(128, 200, 1.0, 3);
  ObjectId prev_sink = s[0].sink;  // first element's source is seeded
  for (std::size_t i = 1; i < s.size(); ++i) {
    const auto src = s[i].sources[0];
    const auto diff = src > prev_sink ? src - prev_sink : prev_sink - src;
    EXPECT_LE(std::min<ObjectId>(diff, 128 - diff), 1u)
        << "element " << i;
    prev_sink = s[i].sink;
  }
}

TEST(RandomStream, LocalityValidated) {
  EXPECT_THROW(random_config_stream(16, 10, -0.1, 1),
               vlsip::PreconditionError);
  EXPECT_THROW(random_config_stream(16, 10, 1.1, 1),
               vlsip::PreconditionError);
  EXPECT_THROW(random_config_stream(1, 10, 0.5, 1),
               vlsip::PreconditionError);
}

TEST(ChainStream, IsAChain) {
  const auto s = chain_config_stream(5);
  ASSERT_EQ(s.size(), 4u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].sink, i + 1);
    EXPECT_EQ(s[i].sources[0], i);
  }
}

// ---- Dependency / stack-distance analysis ----------------------------------------------

TEST(StackDistance, ColdThenHit) {
  const std::vector<ObjectId> trace{1, 2, 1};
  const auto d = stack_distances(trace);
  EXPECT_EQ(d[0], kColdDistance);
  EXPECT_EQ(d[1], kColdDistance);
  EXPECT_EQ(d[2], 2u);  // 1 is at depth 2 after 2 entered
}

TEST(StackDistance, ImmediateReuseIsDistanceOne) {
  const std::vector<ObjectId> trace{5, 5, 5};
  const auto d = stack_distances(trace);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 1u);
}

TEST(StackDistance, MattsonInclusionProperty) {
  // Hits at capacity C are a subset of hits at capacity C+1.
  const auto s = random_config_stream(32, 300, 0.4, 11);
  const auto trace = s.reference_trace();
  for (std::size_t c = 1; c < 32; ++c) {
    EXPECT_LE(hit_rate(trace, c), hit_rate(trace, c + 1) + 1e-12);
  }
}

TEST(StackDistance, HitsByCapacityMatchesHitRate) {
  const auto s = random_config_stream(16, 100, 0.6, 5);
  const auto trace = s.reference_trace();
  const auto hits = hits_by_capacity(trace, 16);
  for (std::size_t c = 1; c <= 16; ++c) {
    EXPECT_NEAR(static_cast<double>(hits[c]) / trace.size(),
                hit_rate(trace, c), 1e-12);
  }
}

TEST(StackDistance, CapacityEqualDistinctGivesOnlyColdMisses) {
  const auto s = random_config_stream(24, 200, 0.2, 9);
  const auto trace = s.reference_trace();
  const auto profile = analyze_dependencies(s);
  const double rate = hit_rate(trace, profile.distinct);
  EXPECT_NEAR(rate,
              1.0 - static_cast<double>(profile.cold_misses) /
                        static_cast<double>(trace.size()),
              1e-12);
}

TEST(DependencyProfile, ChainHasDistanceThree) {
  // Chain i-1 -> i. Reference order is sink-first (i, i-1, i+1, i, ...),
  // so when source i-1 is re-referenced the stack holds [i-1, i, i-2...]
  // with i-1 at depth 3: a capacity of 3 makes every warm reference hit.
  const auto profile = analyze_dependencies(chain_config_stream(10));
  EXPECT_EQ(profile.max_distance, 3u);
  EXPECT_EQ(profile.min_capacity_for_no_warm_miss, 3u);
  EXPECT_EQ(profile.distinct, 10u);
}

TEST(DependencyProfile, EmptyStream) {
  const auto profile = analyze_dependencies(ConfigStream{});
  EXPECT_EQ(profile.references, 0u);
  EXPECT_EQ(profile.distinct, 0u);
  EXPECT_DOUBLE_EQ(profile.mean_distance, 0.0);
}

TEST(DependencyProfile, HighLocalityNeedsSmallCapacity) {
  const auto local_stream = random_config_stream(256, 512, 1.0, 21);
  const auto random_stream = random_config_stream(256, 512, 0.0, 21);
  const auto local = analyze_dependencies(local_stream);
  const auto random = analyze_dependencies(random_stream);
  // §2.4/§2.7: the dependency distance decides the capacity needed; a
  // local stream needs far less than a random one. (Max distance is not
  // a fair metric: a perfectly local chain that wraps the array once
  // produces a single full-depth reference.)
  EXPECT_LT(local.mean_distance, random.mean_distance);
  EXPECT_GT(hit_rate(local_stream.reference_trace(), 8),
            hit_rate(random_stream.reference_trace(), 8));
}

TEST(Word, ViewsAliasSameBits) {
  Word w = make_word_f(1.0);
  EXPECT_EQ(w.u, 0x3FF0000000000000ull);
  w = make_word_i(-1);
  EXPECT_EQ(w.u, 0xFFFFFFFFFFFFFFFFull);
}

}  // namespace
}  // namespace vlsip::arch
