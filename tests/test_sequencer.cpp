// Tests for the sequencer object (kIota hardware loop) and feedback
// loops built with placeholders — the ALU-II / instruction-register
// roles of Table 2.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/require.hpp"

namespace vlsip::ap {
namespace {

using arch::DatapathBuilder;
using arch::Opcode;

ApConfig roomy() {
  ApConfig c;
  c.capacity = 32;
  c.memory_blocks = 4;
  return c;
}

TEST(Sequencer, IotaEmitsCountTokens) {
  DatapathBuilder b;
  const auto n = b.input("n");
  b.output("i", b.op(Opcode::kIota, n, "loop"));
  auto p = std::move(b).build();

  AdaptiveProcessor ap(roomy());
  ap.configure(p);
  ap.feed("n", arch::make_word_u(5));
  const auto exec = ap.run(5, 10000);
  ASSERT_TRUE(exec.completed);
  const auto& out = ap.output("i");
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t k = 0; k < 5; ++k) EXPECT_EQ(out[k].u, k);
}

TEST(Sequencer, ZeroCountEmitsNothing) {
  DatapathBuilder b;
  const auto n = b.input("n");
  b.output("i", b.op(Opcode::kIota, n));
  auto p = std::move(b).build();
  AdaptiveProcessor ap(roomy());
  ap.configure(p);
  ap.feed("n", arch::make_word_u(0));
  const auto exec = ap.run(0, 1000);  // run to quiescence
  EXPECT_TRUE(exec.completed);
  EXPECT_TRUE(ap.output("i").empty());
}

TEST(Sequencer, BackToBackLoops) {
  DatapathBuilder b;
  const auto n = b.input("n");
  b.output("i", b.op(Opcode::kIota, n));
  auto p = std::move(b).build();
  AdaptiveProcessor ap(roomy());
  ap.configure(p);
  ap.feed("n", arch::make_word_u(3));
  ap.feed("n", arch::make_word_u(2));
  const auto exec = ap.run(5, 10000);
  ASSERT_TRUE(exec.completed);
  const auto& out = ap.output("i");
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[2].u, 2u);  // end of first loop
  EXPECT_EQ(out[3].u, 0u);  // second loop restarts
}

TEST(Feedback, AccumulatorSums) {
  // acc = in + delay(acc), delay starts at 0: running sum.
  DatapathBuilder b;
  const auto in = b.input("in");
  const auto z = b.placeholder("z");
  const auto acc = b.op(Opcode::kIAdd, in, z, "acc");
  b.bind(z, acc);
  b.output("sum", acc);
  auto p = std::move(b).build();

  AdaptiveProcessor ap(roomy());
  ap.configure(p);
  for (int v : {1, 2, 3, 4}) ap.feed("in", arch::make_word_i(v));
  const auto exec = ap.run(4, 10000);
  ASSERT_TRUE(exec.completed);
  const auto& out = ap.output("sum");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].i, 1);
  EXPECT_EQ(out[1].i, 3);
  EXPECT_EQ(out[2].i, 6);
  EXPECT_EQ(out[3].i, 10);
}

TEST(Feedback, InitialValueRespected) {
  DatapathBuilder b;
  const auto in = b.input("in");
  const auto z = b.placeholder("z");
  b.set_initial_i(z, 100);
  const auto acc = b.op(Opcode::kIAdd, in, z);
  b.bind(z, acc);
  b.output("sum", acc);
  auto p = std::move(b).build();
  AdaptiveProcessor ap(roomy());
  ap.configure(p);
  ap.feed("in", arch::make_word_i(1));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("sum")[0].i, 101);
}

TEST(Feedback, UnboundPlaceholderRejectedAtBuild) {
  DatapathBuilder b;
  b.placeholder("z");
  EXPECT_THROW(std::move(b).build(), vlsip::PreconditionError);
}

TEST(Feedback, DoubleBindRejected) {
  DatapathBuilder b;
  const auto in = b.input("in");
  const auto z = b.placeholder("z");
  b.bind(z, in);
  EXPECT_THROW(b.bind(z, in), vlsip::PreconditionError);
}

TEST(Feedback, BindTargetMustBePlaceholder) {
  DatapathBuilder b;
  const auto in = b.input("in");
  const auto c = b.constant_i(1);
  EXPECT_THROW(b.bind(c, in), vlsip::PreconditionError);
}

TEST(Feedback, SetInitialRequiresInitialToken) {
  DatapathBuilder b;
  const auto c = b.constant_i(1);
  EXPECT_THROW(b.set_initial_i(c, 5), vlsip::PreconditionError);
}

TEST(Feedback, CountedLoopReduction) {
  // iota drives a reduction: sum of 0..n-1 via feedback.
  DatapathBuilder b;
  const auto n = b.input("n");
  const auto i = b.op(Opcode::kIota, n);
  const auto z = b.placeholder("z");
  const auto acc = b.op(Opcode::kIAdd, i, z);
  b.bind(z, acc);
  b.output("sum", acc);
  auto p = std::move(b).build();

  AdaptiveProcessor ap(roomy());
  ap.configure(p);
  ap.feed("n", arch::make_word_u(10));
  const auto exec = ap.run(10, 10000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(ap.output("sum").back().i, 45);  // 0+1+...+9
}

TEST(Feedback, ReleaseResetsLoopState) {
  DatapathBuilder b;
  const auto in = b.input("in");
  const auto z = b.placeholder("z");
  const auto acc = b.op(Opcode::kIAdd, in, z);
  b.bind(z, acc);
  b.output("sum", acc);
  auto p = std::move(b).build();

  AdaptiveProcessor ap(roomy());
  ap.configure(p);
  ap.feed("in", arch::make_word_i(5));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  ap.release_datapath();
  // Reconfigure: the accumulator must start from 0 again.
  ap.configure(p);
  ap.feed("in", arch::make_word_i(7));
  ASSERT_TRUE(ap.run(1, 10000).completed);
  EXPECT_EQ(ap.output("sum")[0].i, 7);
}

}  // namespace
}  // namespace vlsip::ap
