// Deterministic chaos harness for the self-healing chip farm.
//
// The invariants every test here pins down:
//   * no job is silently lost — every admitted job's future resolves to
//     completed, failed-with-reason, or cancelled;
//   * the metrics balance: admitted == served + cancelled;
//   * deterministic mode is bit-identical run to run under the same
//     (manifest seed, fault seed).
// Plus the targeted recovery paths: worker crashes requeue the batch
// and quarantine the chip, stalls cost latency not jobs, retry/backoff
// re-serves environment-induced failures, and the empty-plan farm is
// bit-identical to the fault-tolerance-disabled code path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"

namespace vlsip::runtime {
namespace {

using scaling::JobOutcome;
using scaling::JobStatus;

std::vector<scaling::Job> chaos_manifest(std::size_t jobs,
                                         std::uint64_t seed) {
  SyntheticSpec spec;
  spec.jobs = jobs;
  spec.min_stages = 2;
  spec.max_stages = 4;
  spec.min_clusters = 1;
  spec.max_clusters = 4;
  spec.tokens = 2;
  spec.seed = seed;
  return synthetic_jobs(spec);
}

FarmConfig chaos_config(const fault::FaultPlan& plan) {
  FarmConfig cfg;
  cfg.deterministic = true;
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.plan = plan;
  return cfg;
}

struct ChaosRun {
  FarmMetrics metrics;
  std::vector<JobOutcome> log;
  std::vector<ChipFarm::ChipHealth> health;
};

ChaosRun run_chaos(const std::vector<scaling::Job>& jobs,
                   const FarmConfig& cfg) {
  ChipFarm farm(cfg);
  for (const auto& job : jobs) {
    const auto admission = farm.submit(job);
    EXPECT_TRUE(admission.admitted);
  }
  farm.drain();
  ChaosRun run;
  run.metrics = farm.metrics();
  run.log = farm.outcome_log();
  run.health = farm.health();
  farm.shutdown();
  return run;
}

void expect_no_job_lost(const FarmMetrics& m) {
  EXPECT_EQ(m.submitted, m.admitted + m.rejected);
  // Every admitted job resolved: served (completed or failed with a
  // status/reason) or cancelled. Nothing vanished.
  EXPECT_EQ(m.admitted, m.served() + m.cancelled);
}

void expect_every_outcome_resolved(const std::vector<JobOutcome>& log) {
  for (const auto& o : log) {
    EXPECT_NE(o.status, JobStatus::kPending) << o.name;
    if (!o.completed && o.status != JobStatus::kCompleted) {
      // Failed-with-reason: either a classified status or a detail.
      EXPECT_TRUE(o.status != JobStatus::kError || !o.detail.empty())
          << o.name;
    }
  }
}

void expect_identical(const ChaosRun& a, const ChaosRun& b) {
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    const auto& x = a.log[i];
    const auto& y = b.log[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.detail, y.detail);
    EXPECT_EQ(x.attempts, y.attempts);
    EXPECT_EQ(x.queued_at, y.queued_at);
    EXPECT_EQ(x.started_at, y.started_at);
    EXPECT_EQ(x.finished_at, y.finished_at);
    EXPECT_EQ(x.config_cycles, y.config_cycles);
    EXPECT_EQ(x.exec_cycles, y.exec_cycles);
    EXPECT_EQ(x.faults, y.faults);
    ASSERT_EQ(x.outputs.size(), y.outputs.size());
    for (const auto& [port, words] : x.outputs) {
      const auto it = y.outputs.find(port);
      ASSERT_NE(it, y.outputs.end());
      ASSERT_EQ(words.size(), it->second.size());
      for (std::size_t w = 0; w < words.size(); ++w) {
        EXPECT_EQ(words[w].u, it->second[w].u);
      }
    }
  }
  EXPECT_EQ(a.metrics.retries, b.metrics.retries);
  EXPECT_EQ(a.metrics.injected_faults, b.metrics.injected_faults);
  EXPECT_EQ(a.metrics.quarantined_chips, b.metrics.quarantined_chips);
}

// --- the acceptance sweep -----------------------------------------------

TEST(ChaosFarm, FiveHundredJobSweepSurvivesBitIdentically) {
  // The ISSUE acceptance bar: <= 20% of clusters faulted (the plan
  // generator's cap) with spare clusters available, a 500-job manifest
  // must fully resolve — and do so bit-identically across two runs of
  // the same seed.
  const auto jobs = chaos_manifest(500, 99);
  fault::FaultPlanSpec spec;
  spec.seed = 2026;
  spec.events = 40;
  spec.horizon = 500;
  spec.clusters = 64;  // 8x8 default chip
  spec.w_worker_stall = 0.5;
  spec.w_worker_crash = 0.25;
  const auto plan = fault::random_fault_plan(spec);
  const auto cfg = chaos_config(plan);

  const ChaosRun first = run_chaos(jobs, cfg);
  expect_no_job_lost(first.metrics);
  expect_every_outcome_resolved(first.log);
  ASSERT_EQ(first.log.size(), 500u);
  EXPECT_EQ(first.metrics.injected_faults, plan.size());
  // The overwhelming majority must still complete.
  EXPECT_GE(first.metrics.completed, 490u);

  const ChaosRun second = run_chaos(jobs, cfg);
  expect_identical(first, second);
}

TEST(ChaosFarm, SeededSweepNeverLosesAJob) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto jobs = chaos_manifest(32, seed * 31);
    fault::FaultPlanSpec spec;
    spec.seed = seed;
    spec.events = 10;
    spec.horizon = 32;
    spec.clusters = 64;
    spec.w_worker_stall = 1.0;
    spec.w_worker_crash = 0.5;
    const ChaosRun run =
        run_chaos(jobs, chaos_config(fault::random_fault_plan(spec)));
    expect_no_job_lost(run.metrics);
    expect_every_outcome_resolved(run.log);
  }
}

// --- differential: empty plan == fault path off -------------------------

TEST(ChaosFarm, EmptyPlanIsBitIdenticalToNonFaultPath) {
  const auto jobs = chaos_manifest(64, 7);

  FarmConfig plain;
  plain.deterministic = true;  // fault_tolerance.enabled = false
  const ChaosRun baseline = run_chaos(jobs, plain);

  FarmConfig with_ft;
  with_ft.deterministic = true;
  with_ft.fault_tolerance.enabled = true;  // plan left empty
  const ChaosRun empty_plan = run_chaos(jobs, with_ft);

  expect_identical(baseline, empty_plan);
  EXPECT_EQ(empty_plan.metrics.injected_faults, 0u);
  EXPECT_EQ(empty_plan.metrics.retries, 0u);
  EXPECT_EQ(empty_plan.metrics.quarantined_chips, 0u);
}

// --- differential: obs sinks off == obs sinks on ------------------------

TEST(ChaosFarm, ObsSinksDoNotPerturbTheSimulation) {
  // The observability spine must be read-only with respect to the
  // simulation: a farm run with a trace sink attached and the metric
  // registry polled mid-flight resolves every job bit-identically to
  // the bare run. 100 seeds, faults included.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const auto jobs = chaos_manifest(6, seed * 17 + 1);
    fault::FaultPlanSpec spec;
    spec.seed = seed;
    spec.events = 4;
    spec.horizon = 6;
    spec.clusters = 64;
    spec.w_worker_stall = 0.5;
    spec.w_worker_crash = 0.25;
    const auto plan = fault::random_fault_plan(spec);

    const ChaosRun bare = run_chaos(jobs, chaos_config(plan));

    obs::TraceSink sink(true);
    sink.set_capacity(4096);
    FarmConfig observed_cfg = chaos_config(plan);
    observed_cfg.trace = &sink;
    ChipFarm farm(observed_cfg);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_TRUE(farm.submit(jobs[i]).admitted);
      // Poll the registry mid-run — snapshots must not perturb either.
      if (i == jobs.size() / 2) (void)farm.obs_metrics();
    }
    farm.drain();
    ChaosRun observed;
    observed.metrics = farm.metrics();
    observed.log = farm.outcome_log();
    observed.health = farm.health();
    const auto registry = farm.obs_metrics();
    farm.shutdown();

    expect_identical(bare, observed);
    // And the trace actually saw the session.
    EXPECT_FALSE(sink.entries().empty()) << "seed " << seed;
    EXPECT_EQ(registry.counters().at("farm.completed"),
              observed.metrics.completed)
        << "seed " << seed;
  }
}

// --- targeted recovery paths --------------------------------------------

TEST(ChaosFarm, WorkerCrashRequeuesBatchAndQuarantinesChip) {
  const auto jobs = chaos_manifest(16, 3);
  fault::FaultPlan plan;
  plan.events = {{4, fault::FaultKind::kWorkerCrash, 0, 0}};
  const ChaosRun run = run_chaos(jobs, chaos_config(plan));

  expect_no_job_lost(run.metrics);
  EXPECT_EQ(run.metrics.worker_crashes, 1u);
  EXPECT_EQ(run.metrics.quarantined_chips, 1u);
  EXPECT_EQ(run.metrics.completed, 16u);
  ASSERT_EQ(run.health.size(), 1u);
  EXPECT_EQ(run.health[0].chips_retired, 1u);
  EXPECT_EQ(run.health[0].last_quarantine_reason, "worker crash");
}

TEST(ChaosFarm, WorkerStallCostsLatencyNotJobs) {
  const auto jobs = chaos_manifest(4, 5);
  fault::FaultPlan plan;
  plan.events = {{1, fault::FaultKind::kWorkerStall, 0, 5000}};
  const auto cfg = chaos_config(plan);

  FarmConfig no_faults = cfg;
  no_faults.fault_tolerance.plan = {};
  ChipFarm quiet(no_faults);
  for (const auto& job : jobs) quiet.submit(job);
  quiet.drain();
  const std::uint64_t quiet_clock = quiet.now();
  quiet.shutdown();

  const ChaosRun run = run_chaos(jobs, cfg);
  expect_no_job_lost(run.metrics);
  EXPECT_EQ(run.metrics.worker_stalls, 1u);
  EXPECT_EQ(run.metrics.completed, 4u);

  ChipFarm stalled(cfg);
  for (const auto& job : jobs) stalled.submit(job);
  stalled.drain();
  // The stall advanced the virtual clock by its full duration.
  EXPECT_GE(stalled.now(), quiet_clock + 5000);
  stalled.shutdown();
}

FarmConfig tiny_chip_config() {
  // A 2x2 chip whose jobs need all four clusters: one quarantined
  // cluster makes the job unallocatable, exercising retry/quarantine.
  FarmConfig cfg;
  cfg.deterministic = true;
  cfg.chip.width = 2;
  cfg.chip.height = 2;
  cfg.fault_tolerance.enabled = true;
  return cfg;
}

scaling::Job whole_chip_job(const std::string& name) {
  scaling::Job job;
  job.name = name;
  job.program = arch::linear_pipeline_program(3);
  job.inputs = {{"in", {arch::make_word_i(1)}}};
  job.expected_per_output = 1;
  job.requested_clusters = 4;
  return job;
}

TEST(ChaosFarm, RetryLandsOnFreshChipAfterQuarantine) {
  FarmConfig cfg = tiny_chip_config();
  cfg.fault_tolerance.plan.events = {
      {1, fault::FaultKind::kCluster, 0, 0}};
  cfg.fault_tolerance.max_retries = 2;
  cfg.fault_tolerance.quarantine_after = 1;
  cfg.fault_tolerance.retry_backoff_ticks = 16;

  ChipFarm farm(cfg);
  const auto admission = farm.submit(whole_chip_job("phoenix"));
  ASSERT_TRUE(admission.admitted);
  farm.drain();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  const auto health = farm.health();
  farm.shutdown();

  // First attempt hits the quarantined cluster (4-cluster fuse on 3
  // healthy clusters fails), the chip is quarantined, the retry runs on
  // fresh silicon and completes — degraded.
  expect_no_job_lost(metrics);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].status, JobStatus::kCompleted);
  EXPECT_EQ(log[0].attempts, 2u);
  EXPECT_EQ(metrics.retries, 1u);
  EXPECT_EQ(metrics.quarantined_chips, 1u);
  EXPECT_EQ(metrics.degraded_completed, 1u);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].last_quarantine_reason, "repeated faults");
  EXPECT_EQ(health[0].defective_clusters, 0u);  // fresh chip
}

TEST(ChaosFarm, RetriesExhaustedFailWithReasonNotSilently) {
  FarmConfig cfg = tiny_chip_config();
  cfg.fault_tolerance.plan.events = {
      {1, fault::FaultKind::kCluster, 0, 0}};
  cfg.fault_tolerance.max_retries = 2;
  cfg.fault_tolerance.quarantine_after = 0;  // never swap the chip
  cfg.fault_tolerance.retry_backoff_ticks = 8;

  ChipFarm farm(cfg);
  farm.submit(whole_chip_job("doomed"));
  farm.drain();
  const auto metrics = farm.metrics();
  const auto log = farm.outcome_log();
  farm.shutdown();

  expect_no_job_lost(metrics);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].status, JobStatus::kNoAllocation);
  EXPECT_EQ(log[0].attempts, 3u);  // 1 + max_retries
  EXPECT_NE(log[0].detail.find("after 3 attempts"), std::string::npos);
  EXPECT_EQ(metrics.retries, 2u);
}

TEST(ChaosFarm, RetryBackoffIsExponentialOnTheVirtualClock) {
  FarmConfig cfg = tiny_chip_config();
  cfg.fault_tolerance.plan.events = {
      {1, fault::FaultKind::kCluster, 0, 0}};
  cfg.fault_tolerance.max_retries = 2;
  cfg.fault_tolerance.quarantine_after = 0;
  cfg.fault_tolerance.retry_backoff_ticks = 1000;

  ChipFarm farm(cfg);
  farm.submit(whole_chip_job("backoff"));
  farm.drain();
  const std::uint64_t clock = farm.now();
  farm.shutdown();
  // Two retries: backoff 1000 then 2000 virtual ticks, both must have
  // elapsed on the virtual clock (kNoAllocation itself costs 0 cycles).
  EXPECT_GE(clock, 3000u);
}

TEST(ChaosFarm, HealthChecksCompactFragmentedChips) {
  // Mixed-size jobs fragment the chip; with faults quarantining
  // clusters mid-run, the post-batch health check should compact at
  // least once across the sweep.
  const auto jobs = chaos_manifest(64, 17);
  fault::FaultPlanSpec spec;
  spec.seed = 5;
  spec.events = 12;
  spec.horizon = 64;
  spec.clusters = 64;
  spec.w_object = 0.0;
  spec.w_switch = 0.0;
  spec.w_csd_segment = 0.0;
  spec.w_memory = 0.0;  // cluster faults only
  const ChaosRun run =
      run_chaos(jobs, chaos_config(fault::random_fault_plan(spec)));
  expect_no_job_lost(run.metrics);
  EXPECT_GT(run.metrics.health_checks, 0u);
}

TEST(ChaosFarm, ThreadedChaosStillResolvesEverything) {
  // Threaded mode gives up bit-identical ordering but must keep the
  // no-job-lost invariant under concurrency + crashes + stalls.
  const auto jobs = chaos_manifest(96, 23);
  fault::FaultPlanSpec spec;
  spec.seed = 11;
  spec.events = 16;
  spec.horizon = 96;
  spec.clusters = 64;
  spec.workers = 4;
  spec.w_worker_stall = 1.0;
  spec.w_worker_crash = 0.5;
  spec.max_stall = 200;  // microseconds in threaded mode

  FarmConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 128;
  cfg.block_when_full = true;
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.plan = fault::random_fault_plan(spec);

  const ChaosRun run = run_chaos(jobs, cfg);
  expect_no_job_lost(run.metrics);
  expect_every_outcome_resolved(run.log);
  EXPECT_EQ(run.metrics.injected_faults, cfg.fault_tolerance.plan.size());
}

}  // namespace
}  // namespace vlsip::runtime
