// Tests for the fault-injection layer (src/fault/): seeded fault plans,
// the chip-level injector, and the recovery paths it drives — the fsm
// fault transition, ScalingManager::refuse_around (release + quarantine
// + re-fuse with compaction), CSD segment kills with reroute, and
// memory-bank poisoning.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "core/vlsi_processor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "scaling/state_machine.hpp"

namespace vlsip::fault {
namespace {

// --- fault plans --------------------------------------------------------

TEST(FaultPlan, ToStringCoversEveryKind) {
  EXPECT_STREQ(to_string(FaultKind::kCluster), "cluster");
  EXPECT_STREQ(to_string(FaultKind::kObject), "object");
  EXPECT_STREQ(to_string(FaultKind::kSwitch), "switch");
  EXPECT_STREQ(to_string(FaultKind::kCsdSegment), "csd-segment");
  EXPECT_STREQ(to_string(FaultKind::kMemoryBlock), "memory-block");
  EXPECT_STREQ(to_string(FaultKind::kWorkerStall), "worker-stall");
  EXPECT_STREQ(to_string(FaultKind::kWorkerCrash), "worker-crash");
}

TEST(FaultPlan, RandomPlanIsDeterministic) {
  FaultPlanSpec spec;
  spec.seed = 1234;
  spec.events = 64;
  spec.w_worker_stall = 1.0;
  spec.w_worker_crash = 1.0;
  const FaultPlan a = random_fault_plan(spec);
  const FaultPlan b = random_fault_plan(spec);
  ASSERT_EQ(a.size(), 64u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
    EXPECT_EQ(a.events[i].arg, b.events[i].arg);
  }
  spec.seed = 1235;
  const FaultPlan c = random_fault_plan(spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a.events[i].at != c.events[i].at ||
              a.events[i].target != c.events[i].target;
  }
  EXPECT_TRUE(differs) << "different seeds should give different plans";
}

TEST(FaultPlan, EventsSortedByTrigger) {
  FaultPlanSpec spec;
  spec.events = 100;
  spec.horizon = 50;
  const FaultPlan plan = random_fault_plan(spec);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }
}

TEST(FaultPlan, ClusterKillsCappedAndDegradeToObjectFaults) {
  FaultPlanSpec spec;
  spec.events = 50;
  spec.clusters = 20;
  spec.max_cluster_fault_fraction = 0.2;  // cap = 4 cluster kills
  spec.w_cluster = 1.0;
  spec.w_object = 0.0;
  spec.w_switch = 0.0;
  spec.w_csd_segment = 0.0;
  spec.w_memory = 0.0;
  const FaultPlan plan = random_fault_plan(spec);
  EXPECT_EQ(plan.count(FaultKind::kCluster), 4u);
  EXPECT_EQ(plan.count(FaultKind::kObject), 46u);
}

TEST(FaultPlan, ZeroWeightDisablesKind) {
  FaultPlanSpec spec;
  spec.events = 40;
  spec.w_cluster = 0.0;
  spec.w_object = 0.0;
  spec.w_switch = 0.0;
  spec.w_csd_segment = 0.0;
  spec.w_memory = 1.0;
  const FaultPlan plan = random_fault_plan(spec);
  EXPECT_EQ(plan.count(FaultKind::kMemoryBlock), 40u);
}

TEST(FaultPlan, AllZeroWeightsRejected) {
  FaultPlanSpec spec;
  spec.w_cluster = spec.w_object = spec.w_switch = 0.0;
  spec.w_csd_segment = spec.w_memory = 0.0;
  EXPECT_THROW(random_fault_plan(spec), PreconditionError);
}

TEST(FaultPlan, RenderListsEveryEvent) {
  FaultPlanSpec spec;
  spec.events = 3;
  const FaultPlan plan = random_fault_plan(spec);
  const std::string text = plan.render();
  EXPECT_NE(text.find("3 events"), std::string::npos);
  for (const auto& e : plan.events) {
    EXPECT_NE(text.find(describe(e)), std::string::npos);
  }
}

// --- state-machine fault transition -------------------------------------

TEST(StateMachineFault, FromInactiveActiveAndSleep) {
  using scaling::ProcState;
  scaling::ProcessorStateMachine inactive;
  inactive.allocate();
  inactive.fault();
  EXPECT_EQ(inactive.state(), ProcState::kRelease);
  EXPECT_EQ(inactive.faults(), 1u);

  scaling::ProcessorStateMachine active;
  active.allocate();
  active.activate();
  active.fault();
  EXPECT_EQ(active.state(), ProcState::kRelease);
  EXPECT_FALSE(active.read_protected());
  EXPECT_FALSE(active.write_protected());

  scaling::ProcessorStateMachine sleeper;
  sleeper.allocate();
  sleeper.activate();
  sleeper.sleep(1000);
  sleeper.fault();
  EXPECT_EQ(sleeper.state(), ProcState::kRelease);
  EXPECT_FALSE(sleeper.wake_at().has_value());
}

TEST(StateMachineFault, FaultingReleasedProcessorThrows) {
  scaling::ProcessorStateMachine fsm;
  EXPECT_THROW(fsm.fault(), PreconditionError);
}

// --- refuse_around (release + quarantine + re-fuse) ---------------------

core::ChipConfig small_chip() {
  core::ChipConfig cfg;
  cfg.width = 4;
  cfg.height = 4;
  return cfg;
}

TEST(RefuseAround, FreeClusterIsJustQuarantined) {
  core::VlsiProcessor chip(small_chip());
  const auto recovery = chip.heal(5);
  EXPECT_EQ(recovery.victim, scaling::kNoProc);
  EXPECT_EQ(recovery.replacement, scaling::kNoProc);
  EXPECT_FALSE(recovery.compacted);
  EXPECT_TRUE(chip.manager().is_defective(5));
  EXPECT_EQ(chip.defective_clusters(), 1u);
  EXPECT_EQ(chip.healthy_clusters(), 15u);
}

TEST(RefuseAround, ReleasesVictimAndRefusesReplacementElsewhere) {
  core::VlsiProcessor chip(small_chip());
  const auto victim = chip.fuse(4);
  ASSERT_NE(victim, scaling::kNoProc);
  // Find a cluster the victim owns.
  const auto region = chip.manager().info(victim).region;
  topology::ClusterId owned = topology::kNoCluster;
  for (topology::ClusterId c = 0; c < chip.total_clusters(); ++c) {
    if (chip.manager().regions().owner(c) == region) {
      owned = c;
      break;
    }
  }
  ASSERT_NE(owned, topology::kNoCluster);

  const auto recovery = chip.heal(owned);
  EXPECT_EQ(recovery.victim, victim);
  EXPECT_EQ(recovery.victim_clusters, 4u);
  ASSERT_NE(recovery.replacement, scaling::kNoProc);
  EXPECT_FALSE(chip.manager().alive(victim));
  EXPECT_TRUE(chip.manager().alive(recovery.replacement));
  EXPECT_EQ(chip.manager().cluster_count(recovery.replacement), 4u);
  EXPECT_TRUE(chip.manager().is_defective(owned));
  // The replacement must not include the quarantined cluster.
  EXPECT_NE(chip.manager().regions().owner(owned),
            chip.manager().info(recovery.replacement).region);
  EXPECT_GE(chip.manager().stats().fault_releases, 1u);
  EXPECT_GE(chip.manager().stats().fault_refusals, 1u);
}

TEST(RefuseAround, ActiveVictimIsFaultReleasedToo) {
  core::VlsiProcessor chip(small_chip());
  const auto victim = chip.fuse(4);
  ASSERT_NE(victim, scaling::kNoProc);
  chip.activate(victim);
  const auto region = chip.manager().info(victim).region;
  topology::ClusterId owned = topology::kNoCluster;
  for (topology::ClusterId c = 0; c < chip.total_clusters(); ++c) {
    if (chip.manager().regions().owner(c) == region) {
      owned = c;
      break;
    }
  }
  const auto recovery = chip.heal(owned);
  EXPECT_EQ(recovery.victim, victim);
  EXPECT_FALSE(chip.manager().alive(victim));
  EXPECT_NE(recovery.replacement, scaling::kNoProc);
}

TEST(RefuseAround, CompactsWhenSparesAreFragmented) {
  // 16 clusters: A=5 (serpentine 0-4), B=5 (5-9), C=4 (10-13),
  // free 14-15. Faulting a cluster of B frees its other four, but the
  // quarantined slot splits the free space into runs of 4 and 2 — a
  // 5-cluster replacement needs the compaction sweep.
  core::VlsiProcessor chip(small_chip());
  const auto a = chip.fuse(5);
  const auto b = chip.fuse(5);
  const auto c = chip.fuse(4);
  ASSERT_NE(a, scaling::kNoProc);
  ASSERT_NE(b, scaling::kNoProc);
  ASSERT_NE(c, scaling::kNoProc);

  const auto region_b = chip.manager().info(b).region;
  topology::ClusterId owned = topology::kNoCluster;
  // Fault the cluster at B's serpentine head so the surviving free run
  // around it is maximally split.
  for (std::size_t s = 0; s < chip.total_clusters(); ++s) {
    const auto cl = chip.fabric().serpentine_at(s);
    if (chip.manager().regions().owner(cl) == region_b) {
      owned = cl;
      break;
    }
  }
  ASSERT_NE(owned, topology::kNoCluster);

  const auto recovery = chip.heal(owned);
  EXPECT_EQ(recovery.victim, b);
  ASSERT_NE(recovery.replacement, scaling::kNoProc);
  EXPECT_TRUE(recovery.compacted);
  EXPECT_EQ(chip.manager().cluster_count(recovery.replacement), 5u);
  EXPECT_TRUE(chip.manager().alive(a));
  EXPECT_TRUE(chip.manager().alive(c));
}

TEST(RefuseAround, ReplacementImpossibleWhenChipIsFull) {
  core::VlsiProcessor chip(small_chip());
  const auto whole = chip.fuse(16);
  ASSERT_NE(whole, scaling::kNoProc);
  const auto recovery = chip.heal(0);
  EXPECT_EQ(recovery.victim, whole);
  EXPECT_EQ(recovery.victim_clusters, 16u);
  // 15 healthy clusters cannot host a 16-cluster replacement.
  EXPECT_EQ(recovery.replacement, scaling::kNoProc);
  EXPECT_EQ(chip.free_clusters(), 15u);
}

TEST(RefuseAround, QuarantinedClusterIsANoOp) {
  core::VlsiProcessor chip(small_chip());
  chip.heal(3);
  const auto stats_before = chip.manager().stats().defects_handled;
  const auto again = chip.heal(3);
  EXPECT_EQ(again.victim, scaling::kNoProc);
  EXPECT_EQ(again.replacement, scaling::kNoProc);
  EXPECT_EQ(chip.manager().stats().defects_handled, stats_before);
  EXPECT_EQ(chip.defective_clusters(), 1u);
}

TEST(RefuseAround, AllocateAvoidsQuarantinedClusters) {
  core::VlsiProcessor chip(small_chip());
  const auto quarantined = chip.fabric().serpentine_at(2);
  chip.heal(quarantined);
  const auto proc = chip.fuse(8);
  ASSERT_NE(proc, scaling::kNoProc);
  // The quarantined cluster is owned by its 1-cluster quarantine
  // region, never by the new processor's region.
  const auto& region =
      chip.manager().regions().region(chip.manager().info(proc).region);
  for (const auto c : region.path) EXPECT_NE(c, quarantined);
  EXPECT_NE(chip.manager().regions().owner(quarantined),
            chip.manager().info(proc).region);
}

// --- CSD segment kills --------------------------------------------------

TEST(CsdKill, RerouteOntoSurvivingChannel) {
  csd::CsdConfig cfg;
  cfg.positions = 8;
  cfg.channels = 2;
  csd::DynamicCsdNetwork net(cfg);
  const auto route = net.establish(0, 4);
  ASSERT_TRUE(route.has_value());
  const auto before = net.routes()[*route].channel;

  const auto kill = net.kill_segment(before, 2);
  EXPECT_EQ(kill.affected, 1u);
  EXPECT_EQ(kill.rerouted, 1u);
  EXPECT_EQ(kill.dropped, 0u);
  EXPECT_TRUE(net.segment_dead(before, 2));
  EXPECT_EQ(net.dead_segments(), 1u);
  ASSERT_EQ(net.active_routes(), 1u);
  // The surviving route spans the same endpoints on the other channel.
  bool found = false;
  for (const auto& r : net.routes()) {
    if (r.id == csd::kNoRoute) continue;
    EXPECT_NE(r.channel, before);
    EXPECT_EQ(r.lo(), 0u);
    EXPECT_EQ(r.hi(), 4u);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CsdKill, DropsRouteWhenNoHealthySpanExists) {
  csd::CsdConfig cfg;
  cfg.positions = 8;
  cfg.channels = 1;
  csd::DynamicCsdNetwork net(cfg);
  ASSERT_TRUE(net.establish(0, 4).has_value());
  const auto kill = net.kill_segment(0, 2);
  EXPECT_EQ(kill.affected, 1u);
  EXPECT_EQ(kill.rerouted, 0u);
  EXPECT_EQ(kill.dropped, 1u);
  EXPECT_EQ(net.active_routes(), 0u);
}

TEST(CsdKill, DeadSegmentBlocksNewSpansButNotDisjointOnes) {
  csd::CsdConfig cfg;
  cfg.positions = 8;
  cfg.channels = 1;
  csd::DynamicCsdNetwork net(cfg);
  net.kill_segment(0, 2);
  EXPECT_FALSE(net.try_route(0, 4).has_value());  // spans dead segment 2
  EXPECT_TRUE(net.try_route(5, 7).has_value());   // disjoint span is fine
}

TEST(CsdKill, KillingDeadSegmentIsANoOp) {
  csd::CsdConfig cfg;
  cfg.positions = 8;
  cfg.channels = 1;
  csd::DynamicCsdNetwork net(cfg);
  net.kill_segment(0, 3);
  const auto again = net.kill_segment(0, 3);
  EXPECT_EQ(again.affected, 0u);
  EXPECT_EQ(net.dead_segments(), 1u);
}

// --- memory poisoning ---------------------------------------------------

TEST(MemoryPoison, ReadsPoisonWordAndDropsWrites) {
  ap::MemoryBlock block;
  block.write(10, arch::make_word_i(42));
  EXPECT_EQ(block.read(10).i, 42);
  block.poison();
  EXPECT_TRUE(block.poisoned());
  EXPECT_EQ(block.read(10).u, ap::MemoryBlock::poison_word().u);
  block.write(10, arch::make_word_i(7));  // dropped
  EXPECT_EQ(block.read(10).u, ap::MemoryBlock::poison_word().u);
}

TEST(MemoryPoison, SystemPoisonsOneBankOnly) {
  ap::MemorySystem memory(4);
  memory.poison_block(2);
  EXPECT_TRUE(memory.block_poisoned(2));
  EXPECT_FALSE(memory.block_poisoned(0));
  EXPECT_EQ(memory.poisoned_blocks(), 1);
  // Word interleaving: address a hits bank a % 4.
  memory.write(1, arch::make_word_i(5));
  EXPECT_EQ(memory.read(1).i, 5);
  memory.write(2, arch::make_word_i(5));
  EXPECT_EQ(memory.read(2).u, ap::MemoryBlock::poison_word().u);
}

// --- apply_chip_event / FaultInjector -----------------------------------

TEST(ApplyChipEvent, ClusterFaultQuarantinesAndProvesRefuse) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(4);
  ASSERT_NE(proc, scaling::kNoProc);
  const auto region = chip.manager().info(proc).region;
  topology::ClusterId owned = topology::kNoCluster;
  for (topology::ClusterId c = 0; c < chip.total_clusters(); ++c) {
    if (chip.manager().regions().owner(c) == region) {
      owned = c;
      break;
    }
  }

  InjectionStats stats;
  FaultEvent event;
  event.kind = FaultKind::kCluster;
  event.target = owned;
  EXPECT_TRUE(apply_chip_event(chip, event, stats));
  EXPECT_EQ(stats.clusters_faulted, 1u);
  EXPECT_EQ(stats.refusals, 1u);
  EXPECT_EQ(chip.defective_clusters(), 1u);
  EXPECT_FALSE(chip.manager().alive(proc));
  // The proved replacement was released back to the pool.
  EXPECT_TRUE(chip.manager().live_processors().empty());
  EXPECT_EQ(chip.free_clusters(), 15u);

  // Hitting the same (now-defective) cluster again applies nothing.
  EXPECT_FALSE(apply_chip_event(chip, event, stats));
}

TEST(ApplyChipEvent, ObjectFaultShrinksLiveCapacity) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);
  const int before = chip.manager().processor(proc).capacity();

  InjectionStats stats;
  FaultEvent event;
  event.kind = FaultKind::kObject;
  event.target = 0;
  EXPECT_TRUE(apply_chip_event(chip, event, stats));
  EXPECT_EQ(stats.objects_faulted, 1u);
  EXPECT_EQ(chip.manager().processor(proc).capacity(), before - 1);
}

TEST(ApplyChipEvent, ObjectFaultNeedsALiveProcessor) {
  core::VlsiProcessor chip(small_chip());
  InjectionStats stats;
  FaultEvent event;
  event.kind = FaultKind::kObject;
  EXPECT_FALSE(apply_chip_event(chip, event, stats));
  EXPECT_EQ(stats.objects_faulted, 0u);
}

TEST(ApplyChipEvent, SwitchFaultSticksReservationAndBreaksRegion) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(4);
  ASSERT_NE(proc, scaling::kNoProc);
  // Pick two adjacent clusters inside the fused region: serpentine
  // positions 0 and 1 are always neighbours.
  const auto a = chip.fabric().serpentine_at(0);
  const auto b = chip.fabric().serpentine_at(1);
  ASSERT_EQ(chip.manager().regions().owner(a),
            chip.manager().regions().owner(b));
  const auto neighbors = chip.fabric().neighbors(a);
  std::uint64_t pick = 0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (neighbors[i] == b) pick = i;
  }

  InjectionStats stats;
  FaultEvent event;
  event.kind = FaultKind::kSwitch;
  event.target = a;
  event.arg = pick;
  EXPECT_TRUE(apply_chip_event(chip, event, stats));
  EXPECT_EQ(stats.switches_stuck, 1u);
  EXPECT_EQ(chip.fabric().reservation(a, b), kStuckSwitch);
  // The region spanning the stuck switch was broken and re-fused.
  EXPECT_FALSE(chip.manager().alive(proc));
  // Sticking the same switch twice applies nothing.
  EXPECT_FALSE(apply_chip_event(chip, event, stats));
}

TEST(ApplyChipEvent, CsdSegmentFaultLandsOnALiveNetwork) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);

  InjectionStats stats;
  FaultEvent event;
  event.kind = FaultKind::kCsdSegment;
  event.target = 0;
  event.arg = 5;
  EXPECT_TRUE(apply_chip_event(chip, event, stats));
  EXPECT_EQ(stats.segments_killed, 1u);
  EXPECT_EQ(chip.manager().processor(proc).network().dead_segments(), 1u);
}

TEST(ApplyChipEvent, MemoryFaultPoisonsOneBank) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);

  InjectionStats stats;
  FaultEvent event;
  event.kind = FaultKind::kMemoryBlock;
  event.target = 0;
  event.arg = 3;
  EXPECT_TRUE(apply_chip_event(chip, event, stats));
  EXPECT_EQ(stats.memory_banks_poisoned, 1u);
  EXPECT_EQ(chip.manager().processor(proc).memory().poisoned_blocks(), 1);
}

TEST(ApplyChipEvent, WorkerEventsAreFarmOnly) {
  core::VlsiProcessor chip(small_chip());
  InjectionStats stats;
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  EXPECT_FALSE(apply_chip_event(chip, stall, stats));
  EXPECT_FALSE(apply_chip_event(chip, crash, stats));
}

TEST(FaultInjector, FiresEventsInOrderUpToTheCycle) {
  core::VlsiProcessor chip(small_chip());
  const auto proc = chip.fuse(2);
  ASSERT_NE(proc, scaling::kNoProc);

  FaultPlan plan;
  plan.events = {
      {30, FaultKind::kMemoryBlock, 0, 2},
      {10, FaultKind::kMemoryBlock, 0, 0},
      {20, FaultKind::kMemoryBlock, 0, 1},
  };
  FaultInjector injector(chip, plan);  // sorts
  EXPECT_EQ(injector.pending(), 3u);

  EXPECT_EQ(injector.advance_to(5), 0u);
  EXPECT_EQ(injector.advance_to(15), 1u);
  EXPECT_EQ(chip.manager().processor(proc).memory().poisoned_blocks(), 1);
  EXPECT_EQ(injector.advance_to(100), 2u);
  EXPECT_TRUE(injector.exhausted());
  EXPECT_EQ(injector.stats().fired, 3u);
  EXPECT_EQ(injector.stats().applied, 3u);
  EXPECT_EQ(chip.manager().processor(proc).memory().poisoned_blocks(), 3);
}

TEST(FaultInjector, CountsSkippedEvents) {
  core::VlsiProcessor chip(small_chip());  // no live processors
  FaultPlan plan;
  plan.events = {
      {1, FaultKind::kWorkerStall, 0, 8},
      {2, FaultKind::kObject, 0, 0},
  };
  FaultInjector injector(chip, plan);
  injector.advance_to(10);
  EXPECT_EQ(injector.stats().fired, 2u);
  EXPECT_EQ(injector.stats().applied, 0u);
  EXPECT_EQ(injector.stats().skipped, 2u);
}

TEST(FaultInjector, SeededSweepKeepsChipSchedulable) {
  // The §1 defect-tolerance claim as a sweep: for many seeds, injecting
  // a full random plan (cluster kills capped at 20%) must leave the
  // chip able to fuse a processor over the spare clusters.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    core::VlsiProcessor chip(small_chip());
    ASSERT_NE(chip.fuse(4), scaling::kNoProc);

    FaultPlanSpec spec;
    spec.seed = seed;
    spec.events = 12;
    spec.horizon = 100;
    spec.clusters = chip.total_clusters();
    FaultInjector injector(chip, random_fault_plan(spec));
    injector.advance_to(100);
    EXPECT_TRUE(injector.exhausted());

    EXPECT_LE(chip.defective_clusters(),
              chip.total_clusters() / 5)
        << "seed " << seed;
    // A minimum-scale AP must still be fusable from spares.
    const auto proc = chip.fuse(1);
    EXPECT_NE(proc, scaling::kNoProc) << "seed " << seed;
    if (proc != scaling::kNoProc) chip.release(proc);
  }
}

}  // namespace
}  // namespace vlsip::fault
