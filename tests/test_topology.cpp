// Tests for the S-topology fabric, regions/rings and baseline topologies.
#include <gtest/gtest.h>

#include <set>

#include "common/require.hpp"
#include "topology/baselines.hpp"
#include "topology/region.hpp"
#include "topology/s_topology.hpp"

namespace vlsip::topology {
namespace {

STopologyFabric make_fabric(int w = 4, int h = 4, int layers = 1) {
  return STopologyFabric(w, h, ClusterSpec{}, layers);
}

// ---- Geometry ---------------------------------------------------------------

TEST(Fabric, CoordRoundTrip) {
  auto f = make_fabric(5, 3);
  for (ClusterId id = 0; id < f.cluster_count(); ++id) {
    EXPECT_EQ(f.at(f.coord(id)), id);
  }
}

TEST(Fabric, NeighborCounts) {
  auto f = make_fabric(4, 4);
  // Corner: 2 neighbours; edge: 3; interior: 4.
  EXPECT_EQ(f.neighbors(f.at({0, 0, 0})).size(), 2u);
  EXPECT_EQ(f.neighbors(f.at({1, 0, 0})).size(), 3u);
  EXPECT_EQ(f.neighbors(f.at({1, 1, 0})).size(), 4u);
}

TEST(Fabric, NeighborhoodIsSymmetric) {
  auto f = make_fabric(3, 3);
  for (ClusterId a = 0; a < f.cluster_count(); ++a) {
    for (ClusterId b : f.neighbors(a)) {
      EXPECT_TRUE(f.are_neighbors(b, a));
    }
  }
}

TEST(Fabric, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0, 0}, {3, 4, 0}), 7);
  EXPECT_EQ(manhattan({1, 1, 0}, {1, 1, 1}), 1);
}

TEST(Fabric, InvalidCoordThrows) {
  auto f = make_fabric(2, 2);
  EXPECT_THROW(f.at({2, 0, 0}), vlsip::PreconditionError);
  EXPECT_THROW(f.coord(99), vlsip::PreconditionError);
}

TEST(Fabric, RejectsDegenerate) {
  EXPECT_THROW(STopologyFabric(0, 4, ClusterSpec{}),
               vlsip::PreconditionError);
  EXPECT_THROW(STopologyFabric(4, 4, ClusterSpec{}, 3),
               vlsip::PreconditionError);
}

// ---- Serpentine fold (fig. 4 c) -------------------------------------------------

TEST(Serpentine, IsAPermutation) {
  auto f = make_fabric(5, 4);
  std::set<std::size_t> seen;
  for (ClusterId id = 0; id < f.cluster_count(); ++id) {
    seen.insert(f.serpentine_index(id));
  }
  EXPECT_EQ(seen.size(), f.cluster_count());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), f.cluster_count() - 1);
}

TEST(Serpentine, RoundTrip) {
  auto f = make_fabric(6, 3);
  for (std::size_t i = 0; i < f.cluster_count(); ++i) {
    EXPECT_EQ(f.serpentine_index(f.serpentine_at(i)), i);
  }
}

TEST(Serpentine, ConsecutiveIndicesAreGridNeighbors) {
  // THE folding property: the linear stack can run across the whole chip
  // through physically adjacent clusters only.
  for (int w : {2, 3, 5}) {
    for (int h : {2, 4}) {
      STopologyFabric f(w, h, ClusterSpec{});
      for (std::size_t i = 1; i < f.cluster_count(); ++i) {
        EXPECT_TRUE(
            f.are_neighbors(f.serpentine_at(i - 1), f.serpentine_at(i)))
            << w << "x" << h << " @ " << i;
      }
    }
  }
}

TEST(Serpentine, DieStackedFoldStaysAdjacent) {
  // With two dies (fig. 6 d) the fold crosses at one edge and stays a
  // neighbour chain throughout.
  STopologyFabric f(4, 3, ClusterSpec{}, 2);
  for (std::size_t i = 1; i < f.cluster_count(); ++i) {
    EXPECT_TRUE(f.are_neighbors(f.serpentine_at(i - 1), f.serpentine_at(i)))
        << "at " << i;
  }
}

TEST(Serpentine, FirstRowLeftToRight) {
  auto f = make_fabric(4, 2);
  EXPECT_EQ(f.serpentine_at(0), f.at({0, 0, 0}));
  EXPECT_EQ(f.serpentine_at(3), f.at({3, 0, 0}));
  EXPECT_EQ(f.serpentine_at(4), f.at({3, 1, 0}));  // row 1 reversed
}

// ---- Programmable switches ---------------------------------------------------------

TEST(Switches, DefaultUnchained) {
  auto f = make_fabric();
  EXPECT_FALSE(f.chained(0, 1));
  EXPECT_EQ(f.chained_links(), 0u);
}

TEST(Switches, ChainSetsOrientation) {
  auto f = make_fabric();
  f.chain(0, 1);
  EXPECT_TRUE(f.chained(0, 1));
  EXPECT_TRUE(f.chained(1, 0));  // link state is symmetric
  EXPECT_EQ(f.shift_source(0, 1).value(), 0u);
  f.unchain(1, 0);
  EXPECT_FALSE(f.chained(0, 1));
  EXPECT_FALSE(f.shift_source(0, 1).has_value());
}

TEST(Switches, DoubleChainThrows) {
  auto f = make_fabric();
  f.chain(0, 1);
  EXPECT_THROW(f.chain(0, 1), vlsip::PreconditionError);
  EXPECT_THROW(f.chain(1, 0), vlsip::PreconditionError);
}

TEST(Switches, UnchainIdleThrows) {
  auto f = make_fabric();
  EXPECT_THROW(f.unchain(0, 1), vlsip::PreconditionError);
}

TEST(Switches, NonNeighborsHaveNoSwitch) {
  auto f = make_fabric();
  EXPECT_THROW(f.chain(0, 2), vlsip::PreconditionError);
  EXPECT_THROW(f.chain(0, 0), vlsip::PreconditionError);
}

TEST(Switches, ReservationConflict) {
  auto f = make_fabric();
  EXPECT_TRUE(f.reserve(0, 1, 10));
  EXPECT_TRUE(f.reserve(0, 1, 10));   // same owner re-reserves
  EXPECT_FALSE(f.reserve(0, 1, 11));  // other owner denied
  EXPECT_EQ(f.reservation(0, 1), 10u);
  f.clear_reservation(0, 1);
  EXPECT_TRUE(f.reserve(0, 1, 11));
}

TEST(Switches, ResetClearsEverything) {
  auto f = make_fabric();
  f.chain(0, 1);
  f.reserve(1, 2, 5);
  f.reset_switches();
  EXPECT_FALSE(f.chained(0, 1));
  EXPECT_EQ(f.reservation(1, 2), kNoRegion);
}

TEST(Switches, RenderShowsChains) {
  auto f = make_fabric(2, 1);
  f.chain(0, 1);
  EXPECT_NE(f.render().find("+-+"), std::string::npos);
}

// ---- Regions -----------------------------------------------------------------------

TEST(Regions, FormChainsSwitches) {
  auto f = make_fabric();
  RegionManager rm(f);
  const auto path = std::vector<ClusterId>{0, 1, 2, 3};
  ASSERT_TRUE(rm.can_form(path));
  const auto id = rm.form(path);
  EXPECT_TRUE(f.chained(0, 1));
  EXPECT_TRUE(f.chained(2, 3));
  EXPECT_EQ(rm.owner(2), id);
  EXPECT_EQ(rm.free_clusters(), f.cluster_count() - 4);
  EXPECT_EQ(rm.stack_capacity(id), 4 * ClusterSpec{}.stack_capacity());
}

TEST(Regions, CannotOverlap) {
  auto f = make_fabric();
  RegionManager rm(f);
  rm.form({0, 1});
  EXPECT_FALSE(rm.can_form({1, 2}));
  EXPECT_THROW(rm.form({1, 2}), vlsip::PreconditionError);
}

TEST(Regions, PathValidation) {
  auto f = make_fabric();
  RegionManager rm(f);
  EXPECT_FALSE(rm.can_form({}));
  EXPECT_FALSE(rm.can_form({0, 2}));     // not neighbours
  EXPECT_FALSE(rm.can_form({0, 1, 0}));  // repeat
  EXPECT_TRUE(rm.can_form({0}));         // single cluster is fine
}

TEST(Regions, DissolveFreesAndUnchains) {
  auto f = make_fabric();
  RegionManager rm(f);
  const auto id = rm.form({0, 1, 2});
  rm.dissolve(id);
  EXPECT_FALSE(rm.alive(id));
  EXPECT_FALSE(f.chained(0, 1));
  EXPECT_EQ(rm.free_clusters(), f.cluster_count());
  EXPECT_THROW(rm.region(id), vlsip::PreconditionError);
}

TEST(Regions, ShrinkFreesTail) {
  auto f = make_fabric();
  RegionManager rm(f);
  const auto id = rm.form({0, 1, 2, 3});
  const auto freed = rm.shrink(id, 1);  // keep clusters 0,1
  EXPECT_EQ(freed, (std::vector<ClusterId>{2, 3}));
  EXPECT_TRUE(f.chained(0, 1));
  EXPECT_FALSE(f.chained(1, 2));
  EXPECT_EQ(rm.owner(3), kNoRegion);
  EXPECT_EQ(rm.region(id).cluster_count(), 2u);
}

TEST(Regions, ExtendGrowsTail) {
  auto f = make_fabric();
  RegionManager rm(f);
  const auto id = rm.form({0, 1});
  rm.extend(id, 2);
  EXPECT_EQ(rm.region(id).path.back(), 2u);
  EXPECT_TRUE(f.chained(1, 2));
  EXPECT_THROW(rm.extend(id, 0), vlsip::PreconditionError);  // owned
  EXPECT_THROW(rm.extend(id, 7), vlsip::PreconditionError);  // not adjacent
}

TEST(Regions, SerpentineRunSkipsOwned) {
  auto f = make_fabric(4, 1);
  RegionManager rm(f);
  rm.form({1});
  // Free run of 2 must be {2,3} (cluster 1 blocks {0,1}).
  const auto run = rm.find_serpentine_run(2);
  EXPECT_EQ(run, (std::vector<ClusterId>{2, 3}));
  EXPECT_TRUE(rm.find_serpentine_run(4).empty());
}

// ---- Rings (fig. 5) -------------------------------------------------------------------

TEST(Rings, RectangleRingIsValidCycle) {
  auto f = make_fabric(4, 4);
  const auto ring = rectangle_ring(f, 0, 0, 3, 2);
  ASSERT_EQ(ring.size(), 6u);
  EXPECT_TRUE(is_simple_neighbor_path(f, ring));
  EXPECT_TRUE(f.are_neighbors(ring.back(), ring.front()));
}

TEST(Rings, FormRingChainsClosure) {
  auto f = make_fabric(4, 4);
  RegionManager rm(f);
  const auto ring = rectangle_ring(f, 1, 1, 2, 2);
  const auto id = rm.form(ring, /*ring=*/true);
  EXPECT_TRUE(rm.region(id).ring);
  EXPECT_TRUE(f.chained(ring.back(), ring.front()));
  rm.dissolve(id);
  EXPECT_FALSE(f.chained(ring.back(), ring.front()));
}

TEST(Rings, DegenerateRejected) {
  auto f = make_fabric(4, 4);
  EXPECT_TRUE(rectangle_ring(f, 0, 0, 1, 3).empty());
  EXPECT_TRUE(rectangle_ring(f, 3, 3, 2, 2).empty());  // out of bounds
  RegionManager rm(f);
  EXPECT_THROW(rm.form({0, 1}, /*ring=*/true), vlsip::PreconditionError);
}

TEST(Rings, ShrinkOpensRing) {
  auto f = make_fabric(4, 4);
  RegionManager rm(f);
  const auto ring = rectangle_ring(f, 0, 0, 2, 2);
  const auto id = rm.form(ring, true);
  rm.shrink(id, ring.size() - 1);  // keep everything, just open the loop
  EXPECT_FALSE(rm.region(id).ring);
  EXPECT_FALSE(f.chained(ring.back(), ring.front()));
}

// ---- Baseline topologies (§5) ------------------------------------------------------------

TEST(Baselines, RingHopsAndDiameter) {
  RingTopology r(8);
  EXPECT_EQ(r.hops(0, 1), 1u);
  EXPECT_EQ(r.hops(0, 4), 4u);
  EXPECT_EQ(r.hops(0, 7), 1u);  // wraps
  EXPECT_EQ(r.diameter(), 4u);
}

TEST(Baselines, RingMeanHopsClosedForm) {
  RingTopology r(8);
  double sum = 0;
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      if (a != b) sum += static_cast<double>(r.hops(a, b));
    }
  }
  EXPECT_NEAR(r.mean_hops(), sum / (8 * 7), 1e-12);
}

TEST(Baselines, RingLatencyGrowsWithCores) {
  // §5: ring "latency is increased by the number of cores".
  EXPECT_LT(RingTopology(8).mean_hops(), RingTopology(64).mean_hops());
}

TEST(Baselines, MeshHopsAndDiameter) {
  MeshTopology m(4, 4);
  EXPECT_EQ(m.hops(0, 15), 6u);
  EXPECT_EQ(m.diameter(), 6u);
  EXPECT_EQ(m.bisection_links(), 4u);
}

TEST(Baselines, MeshMeanHopsClosedForm) {
  MeshTopology m(3, 5);
  double sum = 0;
  const auto n = m.nodes();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) sum += static_cast<double>(m.hops(a, b));
    }
  }
  EXPECT_NEAR(m.mean_hops(), sum / (n * (n - 1.0)), 1e-12);
}

TEST(Baselines, MeshBeatsRingAtScale) {
  // §5: mesh is "completely scalable" with abundant bisection bandwidth.
  MeshTopology m(8, 8);
  RingTopology r(64);
  EXPECT_LT(m.mean_hops(), r.mean_hops());
  EXPECT_GT(m.bisection_links(), r.bisection_links());
}

TEST(Baselines, LinearMatchesStackDistance) {
  LinearTopology l(16);
  EXPECT_EQ(l.hops(0, 15), 15u);
  EXPECT_EQ(l.diameter(), 15u);
  EXPECT_EQ(l.bisection_links(), 1u);
  double sum = 0;
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = 0; b < 16; ++b) {
      if (a != b) sum += static_cast<double>(l.hops(a, b));
    }
  }
  EXPECT_NEAR(l.mean_hops(), sum / (16 * 15.0), 1e-12);
}

TEST(Baselines, RingOnSTopology) {
  // §5/§3.1: "the ring topology can be implemented on the S-topology" —
  // every even-sized rectangle yields a formable ring.
  auto f = make_fabric(6, 6);
  RegionManager rm(f);
  const auto ring = rectangle_ring(f, 0, 0, 6, 6);
  EXPECT_EQ(ring.size(), 20u);
  const auto id = rm.form(ring, true);
  EXPECT_TRUE(rm.region(id).ring);
}

}  // namespace
}  // namespace vlsip::topology
