// Tests for object-granularity defect tolerance: a physical object dies
// inside a running AP; capacity shrinks and execution continues.
#include <gtest/gtest.h>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/require.hpp"

namespace vlsip::ap {
namespace {

TEST(ObjectSpaceDefect, ReduceWhenNotFull) {
  ObjectSpace s(4);
  s.insert_top(1);
  s.insert_top(2);
  EXPECT_FALSE(s.reduce_capacity().has_value());
  EXPECT_EQ(s.capacity(), 3);
  EXPECT_EQ(s.size(), 2);
}

TEST(ObjectSpaceDefect, ReduceWhenFullEvictsLru) {
  ObjectSpace s(3);
  s.insert_top(1);
  s.insert_top(2);
  s.insert_top(3);
  const auto evicted = s.reduce_capacity();
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1u);  // LRU bottom
  EXPECT_EQ(s.capacity(), 2);
  EXPECT_TRUE(s.full());
}

TEST(ObjectSpaceDefect, CannotLoseLastSlot) {
  ObjectSpace s(1);
  EXPECT_THROW(s.reduce_capacity(), vlsip::PreconditionError);
}

TEST(ObjectSpaceDefect, RepeatedReductions) {
  ObjectSpace s(8);
  for (arch::ObjectId id = 0; id < 8; ++id) s.insert_top(id);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(s.reduce_capacity().has_value());
  }
  EXPECT_EQ(s.capacity(), 2);
  EXPECT_EQ(s.size(), 2);
  // Survivors are the two most recently placed.
  EXPECT_TRUE(s.contains(7));
  EXPECT_TRUE(s.contains(6));
}

TEST(ApDefect, ExecutionSurvivesObjectLoss) {
  ApConfig cfg;
  cfg.capacity = 12;
  cfg.memory_blocks = 4;
  AdaptiveProcessor ap(cfg);
  const auto program = arch::linear_pipeline_program(4);  // 10 objects
  ap.configure(program);

  // Lose three physical objects mid-life: capacity 12 -> 9 (< objects).
  for (int i = 0; i < 3; ++i) ap.handle_defective_object();
  EXPECT_EQ(ap.capacity(), 9);

  ap.feed("in", arch::make_word_i(5));
  const auto exec = ap.run(1, 1000000);
  ASSERT_TRUE(exec.completed);
  EXPECT_EQ(ap.output("out")[0].i, 30);
  // The datapath no longer fits: faults must have occurred.
  EXPECT_GT(exec.faults, 0u);
}

TEST(ApDefect, StreamingEligibilityShrinks) {
  ApConfig cfg;
  cfg.capacity = 11;
  cfg.memory_blocks = 4;
  AdaptiveProcessor ap(cfg);
  const auto program = arch::linear_pipeline_program(4);  // 10 objects
  EXPECT_TRUE(ap.fits_streaming(program));
  ap.handle_defective_object();
  ap.handle_defective_object();
  EXPECT_FALSE(ap.fits_streaming(program));  // 9 < 10
}

TEST(ApDefect, EvictedObjectFaultsBackIn) {
  ApConfig cfg;
  cfg.capacity = 10;  // exactly the program size
  cfg.memory_blocks = 4;
  AdaptiveProcessor ap(cfg);
  const auto program = arch::linear_pipeline_program(4);
  ap.configure(program);
  const auto evicted = ap.handle_defective_object();
  ASSERT_TRUE(evicted.has_value());
  EXPECT_FALSE(ap.object_space().contains(*evicted));
  ap.feed("in", arch::make_word_i(2));
  const auto exec = ap.run(1, 1000000);
  ASSERT_TRUE(exec.completed);
  // Stages: +1, *2, +3, *2 -> ((2+1)*2+3)*2 = 18.
  EXPECT_EQ(ap.output("out")[0].i, 18);
}

}  // namespace
}  // namespace vlsip::ap
