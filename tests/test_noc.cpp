// Tests for the wormhole router and the NoC fabric (fig. 7 e).
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "noc/noc_fabric.hpp"
#include "noc/router.hpp"

namespace vlsip::noc {
namespace {

Packet make_packet(int sx, int sy, int dx, int dy,
                   std::vector<std::uint64_t> payload = {},
                   PacketKind kind = PacketKind::kData) {
  Packet p;
  p.src_x = static_cast<std::uint16_t>(sx);
  p.src_y = static_cast<std::uint16_t>(sy);
  p.dst_x = static_cast<std::uint16_t>(dx);
  p.dst_y = static_cast<std::uint16_t>(dy);
  p.kind = kind;
  p.payload = std::move(payload);
  return p;
}

// ---- Router primitives ------------------------------------------------------

TEST(Port, OppositeIsInvolution) {
  for (int i = 0; i < kPortCount; ++i) {
    const auto p = static_cast<Port>(i);
    EXPECT_EQ(opposite(opposite(p)), p);
  }
}

TEST(Router, QueueCapacityEnforced) {
  Router r(0, 0, RouterConfig{2});
  Flit f;
  f.kind = FlitKind::kHeadTail;
  EXPECT_TRUE(r.can_accept(Port::kLocal));
  r.accept(Port::kLocal, f);
  r.accept(Port::kLocal, f);
  EXPECT_FALSE(r.can_accept(Port::kLocal));
  EXPECT_THROW(r.accept(Port::kLocal, f), vlsip::PreconditionError);
}

ReadyMask all_ready(int vcs = 1) {
  ReadyMask m{};
  m.fill((1u << vcs) - 1u);
  return m;
}

TEST(Router, XyRoutesEastFirst) {
  Router r(1, 1, RouterConfig{});
  Flit head;
  head.kind = FlitKind::kHeadTail;
  head.dest_x = 3;
  head.dest_y = 3;
  r.accept(Port::kLocal, head);
  const auto transfers = r.compute(all_ready());
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].out, Port::kEast);  // X resolved before Y
}

TEST(Router, EjectsAtDestination) {
  Router r(2, 2, RouterConfig{});
  Flit head;
  head.kind = FlitKind::kHeadTail;
  head.dest_x = 2;
  head.dest_y = 2;
  r.accept(Port::kWest, head);
  const auto transfers = r.compute(all_ready());
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].out, Port::kLocal);
}

TEST(Router, WormholeLockHeldUntilTail) {
  Router r(0, 0, RouterConfig{});
  Flit head;
  head.kind = FlitKind::kHead;
  head.packet = 1;
  head.dest_x = 1;
  head.dest_y = 0;
  r.accept(Port::kLocal, head);
  auto t = r.compute(all_ready());
  r.commit(t);
  ASSERT_TRUE(r.output_owner(Port::kEast).has_value());
  EXPECT_EQ(r.output_owner(Port::kEast)->first, Port::kLocal);
  Flit tail;
  tail.kind = FlitKind::kTail;
  tail.packet = 1;
  r.accept(Port::kLocal, tail);
  t = r.compute(all_ready());
  r.commit(t);
  EXPECT_FALSE(r.output_owner(Port::kEast).has_value());
}

TEST(Router, BlockedDownstreamStallsWorm) {
  Router r(0, 0, RouterConfig{});
  Flit head;
  head.kind = FlitKind::kHeadTail;
  head.dest_x = 1;
  head.dest_y = 0;
  r.accept(Port::kLocal, head);
  ReadyMask none{};
  EXPECT_TRUE(r.compute(none).empty());
}

TEST(Router, VcConfigValidated) {
  EXPECT_THROW(Router(0, 0, RouterConfig{4, 0}), vlsip::PreconditionError);
  EXPECT_THROW(Router(0, 0, RouterConfig{4, kMaxVcs + 1}),
               vlsip::PreconditionError);
}

TEST(Router, SecondWormUsesSecondVc) {
  // Two heads for the same output in one cycle: only one flit crosses
  // the physical link, but with 2 VCs the second worm claims VC 1 on
  // the next cycle instead of waiting for the first tail.
  Router r(0, 0, RouterConfig{4, 2});
  Flit h1;
  h1.kind = FlitKind::kHead;
  h1.packet = 1;
  h1.dest_x = 1;
  Flit h2 = h1;
  h2.packet = 2;
  r.accept(Port::kWest, h1);
  r.accept(Port::kNorth, h2);
  auto t = r.compute(all_ready(2));
  ASSERT_EQ(t.size(), 1u);  // one physical link
  r.commit(t);
  auto t2 = r.compute(all_ready(2));
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_NE(t2[0].out_vc, t[0].out_vc);  // second worm on the other VC
  r.commit(t2);
  EXPECT_TRUE(r.output_owner(Port::kEast, 0).has_value());
  EXPECT_TRUE(r.output_owner(Port::kEast, 1).has_value());
}

TEST(Router, VcAvoidsHeadOfLineBlocking) {
  // Worm A (to the East) is blocked downstream; worm B (to the South)
  // sits behind it on the same input VC? No — B is on another input.
  // The single-VC case where A's body occupies the East lock must not
  // stop B from taking the South link.
  Router r(1, 1, RouterConfig{4, 1});
  Flit a;
  a.kind = FlitKind::kHead;
  a.packet = 1;
  a.dest_x = 2;
  a.dest_y = 1;
  Flit b;
  b.kind = FlitKind::kHeadTail;
  b.packet = 2;
  b.dest_x = 1;
  b.dest_y = 2;
  r.accept(Port::kWest, a);
  r.accept(Port::kNorth, b);
  ReadyMask ready{};
  ready[static_cast<int>(Port::kSouth)] = 1;  // East NOT ready
  const auto t = r.compute(ready);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].out, Port::kSouth);
  EXPECT_EQ(t[0].flit.packet, 2u);
}

// ---- Fabric end-to-end -------------------------------------------------------

TEST(Fabric, SingleFlitDelivery) {
  NocFabric noc(4, 4);
  noc.inject(make_packet(0, 0, 3, 3));
  ASSERT_TRUE(noc.run_until_drained(1000));
  ASSERT_EQ(noc.delivered().size(), 1u);
  const auto& p = noc.delivered()[0];
  EXPECT_EQ(p.dst_x, 3);
  EXPECT_EQ(p.dst_y, 3);
  EXPECT_EQ(p.hops(), 6);
  // Latency >= hops + injection/ejection.
  EXPECT_GE(p.deliver_cycle - p.inject_cycle,
            static_cast<std::uint64_t>(p.hops()));
}

TEST(Fabric, PayloadArrivesIntact) {
  NocFabric noc(3, 3);
  noc.inject(make_packet(0, 0, 2, 1, {11, 22, 33}));
  ASSERT_TRUE(noc.run_until_drained(1000));
  ASSERT_EQ(noc.delivered().size(), 1u);
  EXPECT_EQ(noc.delivered()[0].payload,
            (std::vector<std::uint64_t>{11, 22, 33}));
  EXPECT_EQ(noc.delivered()[0].kind, PacketKind::kData);
}

TEST(Fabric, SelfDelivery) {
  NocFabric noc(2, 2);
  noc.inject(make_packet(1, 1, 1, 1, {7}));
  ASSERT_TRUE(noc.run_until_drained(100));
  ASSERT_EQ(noc.delivered().size(), 1u);
  EXPECT_EQ(noc.delivered()[0].payload[0], 7u);
}

TEST(Fabric, ManyPacketsAllDeliver) {
  NocFabric noc(4, 4);
  int expected = 0;
  for (int sx = 0; sx < 4; ++sx) {
    for (int sy = 0; sy < 4; ++sy) {
      noc.inject(make_packet(sx, sy, 3 - sx, 3 - sy, {1, 2}));
      ++expected;
    }
  }
  ASSERT_TRUE(noc.run_until_drained(10000));
  EXPECT_EQ(noc.delivered().size(), static_cast<std::size_t>(expected));
}

TEST(Fabric, WormsDoNotInterleaveFlits) {
  // Two long packets crossing the same column: payloads must arrive
  // intact (wormhole keeps worms contiguous per link).
  NocFabric noc(5, 5);
  noc.inject(make_packet(0, 2, 4, 2, {1, 1, 1, 1, 1, 1}));
  noc.inject(make_packet(2, 0, 2, 4, {2, 2, 2, 2, 2, 2}));
  ASSERT_TRUE(noc.run_until_drained(10000));
  ASSERT_EQ(noc.delivered().size(), 2u);
  for (const auto& p : noc.delivered()) {
    for (const auto w : p.payload) EXPECT_EQ(w, p.payload[0]);
  }
}

TEST(Fabric, LatencyScalesWithDistance) {
  NocFabric noc(8, 1);
  noc.inject(make_packet(0, 0, 1, 0));
  noc.inject(make_packet(0, 0, 7, 0));
  ASSERT_TRUE(noc.run_until_drained(1000));
  const auto stats = noc.latency_stats();
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_GT(stats.max(), stats.min());
}

TEST(Fabric, DeliveryCallbackFires) {
  NocFabric noc(2, 2);
  int calls = 0;
  noc.set_on_deliver([&](const Packet& p) {
    ++calls;
    EXPECT_EQ(p.kind, PacketKind::kConfig);
  });
  noc.inject(make_packet(0, 0, 1, 1, {5}, PacketKind::kConfig));
  ASSERT_TRUE(noc.run_until_drained(100));
  EXPECT_EQ(calls, 1);
}

TEST(Fabric, IdleWhenEmpty) {
  NocFabric noc(2, 2);
  EXPECT_TRUE(noc.idle());
  noc.inject(make_packet(0, 0, 1, 0));
  EXPECT_FALSE(noc.idle());
  ASSERT_TRUE(noc.run_until_drained(100));
  EXPECT_TRUE(noc.idle());
}

TEST(Fabric, InjectValidatesCoordinates) {
  NocFabric noc(2, 2);
  EXPECT_THROW(noc.inject(make_packet(0, 0, 5, 0)),
               vlsip::PreconditionError);
}

TEST(Fabric, HeavyContentionStillDrains) {
  // All nodes flood the same destination.
  NocFabric noc(4, 4, RouterConfig{2});
  for (int sx = 0; sx < 4; ++sx) {
    for (int sy = 0; sy < 4; ++sy) {
      if (sx == 1 && sy == 1) continue;
      noc.inject(make_packet(sx, sy, 1, 1, {1, 2, 3, 4}));
    }
  }
  ASSERT_TRUE(noc.run_until_drained(100000));
  EXPECT_EQ(noc.delivered().size(), 15u);
}

TEST(Fabric, ZeroPayloadIsSingleFlit) {
  NocFabric noc(3, 1);
  noc.inject(make_packet(0, 0, 2, 0, {}));
  std::size_t moved = 0;
  while (!noc.idle() && noc.now() < 100) moved += noc.step();
  // One head-tail flit: 2 link hops + the local ejection = 3 transfers
  // (injection into the source queue is not a router transfer).
  EXPECT_EQ(moved, 3u);
}

}  // namespace
}  // namespace vlsip::noc
