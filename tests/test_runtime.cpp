// Tests for the multi-chip job-serving runtime (runtime/): admission
// control and backpressure, batching, deadlines/timeouts/cancellation,
// determinism, and a multi-worker stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <future>

#include "common/require.hpp"
#include "runtime/admission_queue.hpp"
#include "runtime/batcher.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/manifest.hpp"
#include "obs/farm_metrics.hpp"

namespace vlsip::runtime {
namespace {

using scaling::Job;
using scaling::JobOutcome;
using scaling::JobStatus;

Job make_job(const std::string& name, int stages, std::size_t clusters) {
  Job j;
  j.name = name;
  j.program = arch::linear_pipeline_program(stages);
  j.inputs = {{"in", {arch::make_word_i(1)}}};
  j.expected_per_output = 1;
  j.requested_clusters = clusters;
  return j;
}

// --- batcher ------------------------------------------------------------

PendingJob pending(const std::string& name, std::size_t clusters) {
  PendingJob p;
  p.job = make_job(name, 2, clusters);
  return p;
}

TEST(Batcher, GroupsByClusterCountPreservingOrder) {
  std::deque<PendingJob> queue;
  queue.push_back(pending("a1", 2));
  queue.push_back(pending("b1", 4));
  queue.push_back(pending("a2", 2));
  queue.push_back(pending("b2", 4));
  queue.push_back(pending("a3", 2));

  BatchPolicy policy;
  policy.max_jobs = 8;
  auto batch = take_batch(queue, policy);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].job.name, "a1");
  EXPECT_EQ(batch[1].job.name, "a2");
  EXPECT_EQ(batch[2].job.name, "a3");
  // The non-matching jobs stay, in order.
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].job.name, "b1");
  EXPECT_EQ(queue[1].job.name, "b2");
}

TEST(Batcher, RespectsMaxJobsAndGroupingOff) {
  std::deque<PendingJob> queue;
  for (int i = 0; i < 5; ++i) queue.push_back(pending("j", 1));

  BatchPolicy capped;
  capped.max_jobs = 3;
  EXPECT_EQ(take_batch(queue, capped).size(), 3u);

  BatchPolicy fcfs;
  fcfs.group_by_clusters = false;
  EXPECT_EQ(take_batch(queue, fcfs).size(), 1u);
  EXPECT_EQ(queue.size(), 1u);
}

// --- admission queue ----------------------------------------------------

TEST(AdmissionQueue, RejectsWhenFullWithReason) {
  AdmissionQueue q(2);
  std::string reason;
  EXPECT_TRUE(q.try_push(pending("a", 1), &reason));
  EXPECT_TRUE(q.try_push(pending("b", 1), &reason));
  EXPECT_FALSE(q.try_push(pending("c", 1), &reason));
  EXPECT_NE(reason.find("queue full"), std::string::npos);
  EXPECT_EQ(q.size(), 2u);
}

TEST(AdmissionQueue, CancelRemovesQueuedJob) {
  AdmissionQueue q(4);
  auto p = pending("a", 1);
  p.id = 7;
  ASSERT_TRUE(q.try_push(std::move(p)));
  PendingJob out;
  EXPECT_FALSE(q.cancel(99, out));
  EXPECT_TRUE(q.cancel(7, out));
  EXPECT_EQ(out.job.name, "a");
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, CloseDrainsThenStopsWorkers) {
  AdmissionQueue q(4);
  ASSERT_TRUE(q.try_push(pending("a", 1)));
  q.close();
  EXPECT_FALSE(q.try_push(pending("late", 1)));
  BatchPolicy policy;
  EXPECT_EQ(q.pop_batch(policy).size(), 1u);  // backlog still served
  q.finish_batch();
  EXPECT_TRUE(q.pop_batch(policy).empty());  // then workers exit
}

// --- farm ---------------------------------------------------------------

TEST(ChipFarm, ServesOneJobAsync) {
  FarmConfig cfg;
  cfg.workers = 1;
  ChipFarm farm(cfg);
  auto admission = farm.submit(make_job("a", 3, 2));
  ASSERT_TRUE(admission.admitted);
  const JobOutcome outcome = admission.outcome.get();
  EXPECT_EQ(outcome.status, JobStatus::kCompleted);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.clusters_used, 2u);
  EXPECT_GT(outcome.exec_cycles, 0u);
  EXPECT_GE(outcome.finished_at, outcome.started_at);
  EXPECT_GE(outcome.started_at, outcome.queued_at);
  ASSERT_EQ(outcome.outputs.count("out"), 1u);
  EXPECT_EQ(outcome.outputs.at("out").size(), 1u);
}

TEST(ChipFarm, ChipHzPacesServiceTime) {
  FarmConfig cfg;
  cfg.workers = 1;
  cfg.chip_hz = 1e5;  // 100 kHz: each simulated cycle costs 10 us
  ChipFarm farm(cfg);
  auto admission = farm.submit(make_job("paced", 3, 2));
  ASSERT_TRUE(admission.admitted);
  const JobOutcome outcome = admission.outcome.get();
  ASSERT_EQ(outcome.status, JobStatus::kCompleted);
  // sleep_for guarantees at least the requested duration, so service
  // latency (microsecond ticks) must cover cycles/chip_hz.
  const std::uint64_t cycles = outcome.config_cycles + outcome.exec_cycles;
  const std::uint64_t floor_us =
      static_cast<std::uint64_t>(static_cast<double>(cycles) * 1e6 / 1e5);
  EXPECT_GT(cycles, 0u);
  EXPECT_GE(outcome.finished_at - outcome.started_at, floor_us);
}

TEST(ChipFarm, DeterministicModeIsBitIdentical) {
  auto run_once = [] {
    FarmConfig cfg;
    cfg.deterministic = true;
    ChipFarm farm(cfg);
    SyntheticSpec spec;
    spec.jobs = 16;
    spec.seed = 7;
    for (auto& job : synthetic_jobs(spec)) {
      EXPECT_TRUE(farm.submit(std::move(job)).admitted);
    }
    farm.drain();
    return farm.outcome_log();
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 16u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    const auto& a = first[i];
    const auto& b = second[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.queued_at, b.queued_at);
    EXPECT_EQ(a.started_at, b.started_at);
    EXPECT_EQ(a.finished_at, b.finished_at);
    EXPECT_EQ(a.clusters_used, b.clusters_used);
    EXPECT_EQ(a.config_cycles, b.config_cycles);
    EXPECT_EQ(a.exec_cycles, b.exec_cycles);
    EXPECT_EQ(a.faults, b.faults);
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (const auto& [port, words] : a.outputs) {
      const auto& other = b.outputs.at(port);
      ASSERT_EQ(words.size(), other.size());
      for (std::size_t k = 0; k < words.size(); ++k) {
        EXPECT_EQ(words[k].i, other[k].i);
      }
    }
  }
}

TEST(ChipFarm, BackpressureRejectsWhenQueueIsFull) {
  FarmConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.block_when_full = false;
  cfg.start_paused = true;  // nothing drains: the queue must fill
  ChipFarm farm(cfg);

  auto a = farm.submit(make_job("a", 2, 1));
  auto b = farm.submit(make_job("b", 2, 1));
  auto c = farm.submit(make_job("c", 2, 1));
  EXPECT_TRUE(a.admitted);
  EXPECT_TRUE(b.admitted);
  EXPECT_FALSE(c.admitted);
  EXPECT_NE(c.reason.find("queue full"), std::string::npos);

  farm.resume();
  farm.drain();
  const auto metrics = farm.metrics();
  EXPECT_EQ(metrics.submitted, 3u);
  EXPECT_EQ(metrics.admitted, 2u);
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.completed, 2u);
}

TEST(ChipFarm, TimeoutYieldsTimedOutOutcome) {
  FarmConfig cfg;
  cfg.workers = 1;
  ChipFarm farm(cfg);
  SubmitOptions options;
  options.max_cycles = 1;  // no pipeline finishes in one cycle
  auto admission = farm.submit(make_job("slow", 6, 1), options);
  ASSERT_TRUE(admission.admitted);
  const JobOutcome outcome = admission.outcome.get();
  EXPECT_EQ(outcome.status, JobStatus::kTimedOut);
  EXPECT_FALSE(outcome.completed);
  EXPECT_NE(outcome.detail.find("cycle budget"), std::string::npos);
  EXPECT_EQ(farm.metrics().timed_out, 1u);
}

TEST(ChipFarm, CancelQueuedJob) {
  FarmConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  ChipFarm farm(cfg);
  auto keep = farm.submit(make_job("keep", 2, 1));
  auto drop = farm.submit(make_job("drop", 2, 1));
  ASSERT_TRUE(keep.admitted);
  ASSERT_TRUE(drop.admitted);

  EXPECT_TRUE(farm.cancel(drop.id));
  EXPECT_FALSE(farm.cancel(drop.id));  // already gone
  const JobOutcome dropped = drop.outcome.get();
  EXPECT_EQ(dropped.status, JobStatus::kCancelled);

  farm.resume();
  farm.drain();
  EXPECT_EQ(keep.outcome.get().status, JobStatus::kCompleted);
  const auto metrics = farm.metrics();
  EXPECT_EQ(metrics.cancelled, 1u);
  EXPECT_EQ(metrics.completed, 1u);
}

TEST(ChipFarm, DeadlineExpiresBeforeStart) {
  FarmConfig cfg;
  cfg.deterministic = true;  // virtual clock: advances per job served
  cfg.start_paused = true;
  ChipFarm farm(cfg);
  auto first = farm.submit(make_job("first", 4, 1));
  SubmitOptions options;
  options.deadline = 1;  // expires once "first" advances the clock
  auto late = farm.submit(make_job("late", 4, 1), options);
  ASSERT_TRUE(first.admitted);
  ASSERT_TRUE(late.admitted);

  farm.resume();
  farm.drain();
  EXPECT_EQ(first.outcome.get().status, JobStatus::kCompleted);
  const JobOutcome missed = late.outcome.get();
  EXPECT_EQ(missed.status, JobStatus::kCancelled);
  EXPECT_NE(missed.detail.find("deadline"), std::string::npos);
}

TEST(ChipFarm, BatchingReusesOneFusedProcessor) {
  FarmConfig cfg;
  cfg.deterministic = true;
  cfg.start_paused = true;
  cfg.batch.max_jobs = 8;
  ChipFarm farm(cfg);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(farm.submit(make_job("j" + std::to_string(i), 3, 2))
                    .admitted);
  }
  farm.resume();
  farm.drain();
  const auto metrics = farm.metrics();
  EXPECT_EQ(metrics.completed, 4u);
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.fuse_reuses, 3u);
}

TEST(ChipFarm, UnallocatableJobFailsCleanly) {
  FarmConfig cfg;
  cfg.workers = 1;
  ChipFarm farm(cfg);  // default chip: 64 clusters
  auto admission = farm.submit(make_job("huge", 2, 999));
  ASSERT_TRUE(admission.admitted);
  const JobOutcome outcome = admission.outcome.get();
  EXPECT_EQ(outcome.status, JobStatus::kNoAllocation);
  // The farm keeps serving afterwards.
  EXPECT_EQ(farm.submit(make_job("ok", 2, 1)).outcome.get().status,
            JobStatus::kCompleted);
}

TEST(ChipFarm, CompletionCallbackFires) {
  FarmConfig cfg;
  cfg.workers = 1;
  ChipFarm farm(cfg);
  std::atomic<int> calls{0};
  SubmitOptions options;
  options.on_complete = [&](const JobOutcome& o) {
    if (o.status == JobStatus::kCompleted) calls.fetch_add(1);
  };
  auto admission = farm.submit(make_job("cb", 2, 1), options);
  ASSERT_TRUE(admission.admitted);
  admission.outcome.get();
  farm.drain();
  EXPECT_EQ(calls.load(), 1);
}

TEST(ChipFarm, SubmitValidation) {
  ChipFarm farm;
  Job empty;
  empty.name = "empty";
  EXPECT_THROW(farm.submit(std::move(empty)), vlsip::PreconditionError);
  auto zero = make_job("z", 2, 1);
  zero.requested_clusters = 0;
  EXPECT_THROW(farm.submit(std::move(zero)), vlsip::PreconditionError);
}

TEST(ChipFarm, FourWorkerStressRun) {
  FarmConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 32;
  cfg.block_when_full = true;  // throttle: 64 jobs through a 32-deep queue
  ChipFarm farm(cfg);
  SyntheticSpec spec;
  spec.jobs = 64;
  spec.seed = 42;
  std::vector<std::future<JobOutcome>> futures;
  for (auto& job : synthetic_jobs(spec)) {
    auto admission = farm.submit(std::move(job));
    ASSERT_TRUE(admission.admitted);
    futures.push_back(std::move(admission.outcome));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::kCompleted);
  }
  farm.drain();
  const auto metrics = farm.metrics();
  EXPECT_EQ(metrics.completed, 64u);
  EXPECT_EQ(metrics.latency.count(), 64u);
  EXPECT_GT(metrics.latency_percentile(0.50), 0.0);
  EXPECT_GE(metrics.latency_percentile(0.99),
            metrics.latency_percentile(0.50));
  EXPECT_EQ(farm.outcome_log().size(), 64u);
}

TEST(ChipFarm, ShutdownServesBacklog) {
  FarmConfig cfg;
  cfg.workers = 2;
  cfg.start_paused = true;
  ChipFarm farm(cfg);
  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        farm.submit(make_job("b" + std::to_string(i), 2, 1)).outcome);
  }
  farm.shutdown();  // close() unpauses; the backlog must still be served
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::kCompleted);
  }
}

// --- manifest -----------------------------------------------------------

TEST(Manifest, ParsesJobsRepeatsAndBuiltins) {
  const std::string text =
      "# comment\n"
      "\n"
      "pipe @pipeline:4 clusters=2 expect=2 in=5,7 repeat=3\n"
      "solo @pipeline:2 in=1\n";
  const auto jobs = parse_manifest(text);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].name, "pipe#0");
  EXPECT_EQ(jobs[2].name, "pipe#2");
  EXPECT_EQ(jobs[3].name, "solo");
  EXPECT_EQ(jobs[0].requested_clusters, 2u);
  EXPECT_EQ(jobs[0].expected_per_output, 2u);
  ASSERT_EQ(jobs[0].inputs.count("in"), 1u);
  EXPECT_EQ(jobs[0].inputs.at("in").size(), 2u);
  EXPECT_EQ(jobs[0].inputs.at("in")[1].i, 7);
}

TEST(Manifest, RejectsMalformedLines) {
  EXPECT_THROW(parse_manifest("lonely\n"), vlsip::PreconditionError);
  EXPECT_THROW(parse_manifest("j @pipeline:2 notkv\n"),
               vlsip::PreconditionError);
  EXPECT_THROW(parse_manifest("j @pipeline:2 bogus=1\n"),
               vlsip::PreconditionError);
}

TEST(Manifest, SyntheticJobsAreSeedDeterministic) {
  SyntheticSpec spec;
  spec.jobs = 8;
  spec.seed = 99;
  const auto a = synthetic_jobs(spec);
  const auto b = synthetic_jobs(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].requested_clusters, b[i].requested_clusters);
    EXPECT_EQ(a[i].program.object_count(), b[i].program.object_count());
    EXPECT_EQ(a[i].inputs.at("in")[0].i, b[i].inputs.at("in")[0].i);
  }
}

// --- metrics ------------------------------------------------------------

TEST(FarmMetrics, MergeMatchesSequentialRecording) {
  JobOutcome o1;
  o1.status = JobStatus::kCompleted;
  o1.queued_at = 0;
  o1.started_at = 10;
  o1.finished_at = 110;
  JobOutcome o2 = o1;
  o2.finished_at = 210;

  FarmMetrics a;
  a.record(o1);
  FarmMetrics b;
  b.record(o2);
  a.merge(b);
  EXPECT_EQ(a.completed, 2u);
  EXPECT_EQ(a.latency.count(), 2u);
  EXPECT_DOUBLE_EQ(a.latency.mean(), 160.0);
  EXPECT_DOUBLE_EQ(a.latency_percentile(0.0), 110.0);
  EXPECT_DOUBLE_EQ(a.latency_percentile(1.0), 210.0);
}

}  // namespace
}  // namespace vlsip::runtime
