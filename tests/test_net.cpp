// Unit tests for the wire layer: frame codec (typed rejects for every
// malformation class), socket loopback I/O, message roundtrips, and
// the determinism guarantees the migration protocol leans on (the
// outcome codec must be byte-stable, Reader::bytes_remaining() must
// catch trailing garbage).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/manifest.hpp"
#include "runtime/replay.hpp"

namespace vlsip {
namespace {

scaling::Job sample_job() {
  runtime::SyntheticSpec spec;
  spec.jobs = 1;
  spec.seed = 7;
  return runtime::synthetic_jobs(spec).front();
}

scaling::JobOutcome sample_outcome() {
  scaling::JobOutcome o;
  o.name = "sample";
  o.id = 17;
  o.completed = true;
  o.status = scaling::JobStatus::kCompleted;
  o.queued_at = 5;
  o.started_at = 9;
  o.finished_at = 40;
  o.clusters_used = 2;
  o.config_cycles = 31;
  o.exec_cycles = 12;
  o.attempts = 1;
  o.outputs["z"] = {arch::Word{10}, arch::Word{20}};
  o.outputs["acc"] = {arch::Word{3}};
  return o;
}

TEST(Frame, RoundTripsHeaderAndPayload) {
  snapshot::Snapshot payload;
  snapshot::Writer w(payload);
  w.section("test");
  w.u64(12345);
  const auto bytes = net::encode_frame(net::MsgType::kHeartbeat, payload);
  ASSERT_GE(bytes.size(), net::kFrameHeaderSize);

  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->type, net::MsgType::kHeartbeat);
  EXPECT_EQ(frame->version, net::kProtoVersion);
  snapshot::Reader r(frame->payload);
  r.section("test");
  EXPECT_EQ(r.u64(), 12345u);
  EXPECT_EQ(r.bytes_remaining(), 0u);
}

TEST(Frame, RejectsTruncatedHeader) {
  const auto bytes = net::encode_frame(net::MsgType::kDrain, {});
  const auto frame = net::decode_frame(bytes.data(), 7);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kFrameTruncated);
}

TEST(Frame, RejectsTruncatedPayload) {
  snapshot::Snapshot payload;
  snapshot::Writer w(payload);
  w.section("test");
  w.u64(1);
  const auto bytes = net::encode_frame(net::MsgType::kHeartbeat, payload);
  const auto frame = net::decode_frame(bytes.data(), bytes.size() - 3);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kFrameTruncated);
}

TEST(Frame, RejectsBadMagic) {
  auto bytes = net::encode_frame(net::MsgType::kDrain, {});
  bytes[0] ^= 0xFF;
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kProtocolError);
}

TEST(Frame, RejectsFutureVersion) {
  auto bytes = net::encode_frame(net::MsgType::kDrain, {});
  // Version is the little-endian u16 right after the magic.
  bytes[4] = static_cast<std::uint8_t>(net::kProtoVersion + 1);
  bytes[5] = 0;
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kVersionMismatch);
}

TEST(Frame, RejectsUnknownMessageType) {
  auto bytes = net::encode_frame(net::MsgType::kDrain, {});
  bytes[6] = 0xEE;  // type field, little-endian u16 at offset 6
  bytes[7] = 0xEE;
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kProtocolError);
}

TEST(Frame, RejectsOversizedPayloadBeforeAllocating) {
  auto bytes = net::encode_frame(net::MsgType::kDrain, {});
  // Declare a 64 MiB payload against an 8-byte receiver cap.
  bytes[8] = 0;
  bytes[9] = 0;
  bytes[10] = 0;
  bytes[11] = 4;
  const auto frame =
      net::decode_frame(bytes.data(), bytes.size(), /*max_payload=*/8);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kFrameOversized);
}

TEST(Frame, RejectsTrailingGarbageAfterFrame) {
  auto bytes = net::encode_frame(net::MsgType::kDrain, {});
  bytes.push_back(0xAB);
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kProtocolError);
}

TEST(Wire, MessageRejectsTrailingBytesInsidePayload) {
  net::HeartbeatMsg beat;
  beat.queue_depth = 3;
  beat.served = 9;
  snapshot::Snapshot payload;
  snapshot::Writer w(payload);
  beat.save(w);
  w.u8(0x77);  // one stray byte after the message body
  const auto bytes = net::encode_frame(net::MsgType::kHeartbeat, payload);
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok());
  const auto decoded = net::decode_payload<net::HeartbeatMsg>(*frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
}

TEST(Wire, DecodePayloadChecksMessageType) {
  const auto bytes = net::encode(net::DrainMsg{});
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok());
  const auto wrong = net::decode_payload<net::HeartbeatMsg>(*frame);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kProtocolError);
}

TEST(Wire, JobMessagesRoundTrip) {
  net::AssignJobMsg assign;
  assign.job_id = 99;
  assign.job = sample_job();
  const auto bytes = net::encode(assign);
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok());
  const auto decoded = net::decode_payload<net::AssignJobMsg>(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->job_id, 99u);
  EXPECT_EQ(decoded->job.name, assign.job.name);
  EXPECT_EQ(decoded->job.requested_clusters, assign.job.requested_clusters);
  EXPECT_EQ(decoded->job.program.stream.size(),
            assign.job.program.stream.size());
}

TEST(Wire, ResultMessageRoundTripsOutcome) {
  net::JobResultMsg result;
  result.id = 4;
  result.outcome = sample_outcome();
  const auto bytes = net::encode(result);
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok());
  const auto decoded = net::decode_payload<net::JobResultMsg>(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->outcome.name, "sample");
  EXPECT_EQ(decoded->outcome.status, scaling::JobStatus::kCompleted);
  ASSERT_EQ(decoded->outcome.outputs.size(), 2u);
  EXPECT_EQ(decoded->outcome.outputs.at("z")[1].i, 20);
}

TEST(Wire, OutcomeEncodingIsByteStable) {
  // The migration byte-identity proof compares two independently
  // encoded outcome streams, so encoding must be deterministic.
  const auto outcome = sample_outcome();
  snapshot::Snapshot a, b;
  {
    snapshot::Writer w(a);
    runtime::save_outcome(w, outcome);
  }
  {
    snapshot::Writer w(b);
    runtime::save_outcome(w, outcome);
  }
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(Wire, CheckpointRejectsIdJobCountMismatch) {
  net::CheckpointMsg msg;
  msg.worker_id = 1;
  msg.job_ids = {10, 11};        // two ids...
  msg.log.jobs = {sample_job()};  // ...one job
  const auto bytes = net::encode(msg);
  const auto frame = net::decode_frame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok());
  const auto decoded = net::decode_payload<net::CheckpointMsg>(*frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
}

TEST(Socket, LoopbackFramedMessaging) {
  auto listener = net::Listener::listen("127.0.0.1:0");
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  net::HeartbeatMsg received;
  std::thread server([&] {
    auto sock = listener->accept();
    ASSERT_TRUE(sock.ok());
    auto frame = net::read_frame(*sock);
    ASSERT_TRUE(frame.ok());
    auto beat = net::decode_payload<net::HeartbeatMsg>(*frame);
    ASSERT_TRUE(beat.ok());
    received = *beat;
    // Echo it back.
    ASSERT_TRUE(net::send_msg(*sock, received).ok());
  });
  auto client = net::Socket::connect(listener->address());
  ASSERT_TRUE(client.ok()) << client.status().message();
  net::HeartbeatMsg beat;
  beat.queue_depth = 42;
  beat.served = 1000;
  ASSERT_TRUE(net::send_msg(*client, beat).ok());
  auto echo = net::read_frame(*client);
  ASSERT_TRUE(echo.ok());
  auto decoded = net::decode_payload<net::HeartbeatMsg>(*echo);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->queue_depth, 42u);
  EXPECT_EQ(decoded->served, 1000u);
  server.join();
  EXPECT_EQ(received.queue_depth, 42u);
}

TEST(Socket, ReceiverEnforcesItsOwnPayloadCap) {
  auto listener = net::Listener::listen("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto sock = listener->accept();
    ASSERT_TRUE(sock.ok());
    // This receiver only accepts tiny payloads.
    auto frame = net::read_frame(*sock, /*max_payload=*/16);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kFrameOversized);
  });
  auto client = net::Socket::connect(listener->address());
  ASSERT_TRUE(client.ok());
  net::MetricsReportMsg big;
  big.json.assign(1024, 'x');
  (void)net::send_msg(*client, big);
  server.join();
}

TEST(Socket, RejectsUnparseableAddress) {
  EXPECT_FALSE(net::Socket::connect("not-an-address").ok());
  EXPECT_FALSE(net::Listener::listen("127.0.0.1").ok());
}

TEST(SnapshotReader, BytesRemainingCountsDown) {
  snapshot::Snapshot snap;
  snapshot::Writer w(snap);
  w.section("t");
  w.u32(1);
  w.u32(2);
  snapshot::Reader r(snap);
  r.section("t");
  EXPECT_EQ(r.bytes_remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.bytes_remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.bytes_remaining(), 0u);
}

}  // namespace
}  // namespace vlsip
