// Tests for the Denning working-set analysis (paper ref [9]) and its
// relationship to WSRF sizing.
#include <gtest/gtest.h>

#include "arch/datapath.hpp"
#include "arch/dependency.hpp"

namespace vlsip::arch {
namespace {

TEST(WorkingSet, WindowOneIsAlwaysOne) {
  const std::vector<ObjectId> trace{1, 2, 2, 3, 1};
  const auto sizes = working_set_sizes(trace, 1);
  for (auto s : sizes) EXPECT_EQ(s, 1u);
}

TEST(WorkingSet, WindowZeroIsZero) {
  const std::vector<ObjectId> trace{1, 2, 3};
  const auto sizes = working_set_sizes(trace, 0);
  for (auto s : sizes) EXPECT_EQ(s, 0u);
}

TEST(WorkingSet, CountsDistinctInWindow) {
  const std::vector<ObjectId> trace{1, 2, 1, 3, 3, 4};
  const auto sizes = working_set_sizes(trace, 3);
  // windows (clipped): {1} {1,2} {1,2,1} {2,1,3} {1,3,3} {3,3,4}
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 2, 3, 2, 2}));
}

TEST(WorkingSet, MonotoneInWindow) {
  const auto stream = random_config_stream(64, 256, 0.3, 7);
  const auto trace = stream.reference_trace();
  double prev = 0.0;
  for (std::size_t w : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const double m = mean_working_set(trace, w);
    EXPECT_GE(m, prev - 1e-12) << "window " << w;
    prev = m;
  }
}

TEST(WorkingSet, BoundedByWindowAndDistinct) {
  const auto stream = random_config_stream(32, 200, 0.0, 9);
  const auto trace = stream.reference_trace();
  const auto distinct = stream.distinct_objects().size();
  for (std::size_t w : {4u, 16u, 64u}) {
    for (auto s : working_set_sizes(trace, w)) {
      EXPECT_LE(s, w);
      EXPECT_LE(s, distinct);
    }
  }
}

TEST(WorkingSet, LocalTracesHaveSmallerWorkingSets) {
  const auto local =
      random_config_stream(128, 512, 1.0, 3).reference_trace();
  const auto random =
      random_config_stream(128, 512, 0.0, 3).reference_trace();
  EXPECT_LT(mean_working_set(local, 40), mean_working_set(random, 40));
}

TEST(WorkingSet, WsrfSizedWindowCoversLocalWorkloads) {
  // The WSRF holds 40 entries (Table 3). For a locality-0.5 stream over
  // 64 objects, the mean working set within a 40-reference window must
  // fit in the WSRF — the sizing argument behind the 40-register file.
  const auto trace =
      random_config_stream(64, 512, 0.5, 11).reference_trace();
  EXPECT_LE(mean_working_set(trace, 40), 40.0);
}

TEST(WorkingSet, CoverageWindowFindsKnee) {
  const auto trace =
      random_config_stream(32, 256, 0.5, 13).reference_trace();
  const auto w50 = window_for_coverage(trace, 0.5);
  const auto w90 = window_for_coverage(trace, 0.9);
  EXPECT_LE(w50, w90);
  EXPECT_GE(w50, 1u);
}

TEST(WorkingSet, EmptyTrace) {
  EXPECT_DOUBLE_EQ(mean_working_set({}, 8), 0.0);
  EXPECT_EQ(window_for_coverage({}, 0.9), 0u);
}

}  // namespace
}  // namespace vlsip::arch
