#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, every bench binary and
# every example, teeing the reproduction outputs into the repo root.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

: > examples_output.txt
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "===== $(basename "$e") =====" | tee -a examples_output.txt
  "$e" 2>&1 | tee -a examples_output.txt
done

echo "done: test_output.txt, bench_output.txt, examples_output.txt"
