# Empty compiler generated dependencies file for fig5_rings.
# This may be replaced when dependencies are built.
