file(REMOVE_RECURSE
  "CMakeFiles/fig5_rings.dir/fig5_rings.cpp.o"
  "CMakeFiles/fig5_rings.dir/fig5_rings.cpp.o.d"
  "fig5_rings"
  "fig5_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
