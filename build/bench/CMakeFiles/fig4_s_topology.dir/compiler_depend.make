# Empty compiler generated dependencies file for fig4_s_topology.
# This may be replaced when dependencies are built.
