file(REMOVE_RECURSE
  "CMakeFiles/fig4_s_topology.dir/fig4_s_topology.cpp.o"
  "CMakeFiles/fig4_s_topology.dir/fig4_s_topology.cpp.o.d"
  "fig4_s_topology"
  "fig4_s_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_s_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
