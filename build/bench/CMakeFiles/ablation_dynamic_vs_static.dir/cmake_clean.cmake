file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_vs_static.dir/ablation_dynamic_vs_static.cpp.o"
  "CMakeFiles/ablation_dynamic_vs_static.dir/ablation_dynamic_vs_static.cpp.o.d"
  "ablation_dynamic_vs_static"
  "ablation_dynamic_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
