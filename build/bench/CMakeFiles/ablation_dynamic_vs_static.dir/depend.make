# Empty dependencies file for ablation_dynamic_vs_static.
# This may be replaced when dependencies are built.
