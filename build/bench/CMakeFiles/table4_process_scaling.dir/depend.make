# Empty dependencies file for table4_process_scaling.
# This may be replaced when dependencies are built.
