file(REMOVE_RECURSE
  "CMakeFiles/table4_process_scaling.dir/table4_process_scaling.cpp.o"
  "CMakeFiles/table4_process_scaling.dir/table4_process_scaling.cpp.o.d"
  "table4_process_scaling"
  "table4_process_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_process_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
