# Empty dependencies file for fig6_switch_states.
# This may be replaced when dependencies are built.
