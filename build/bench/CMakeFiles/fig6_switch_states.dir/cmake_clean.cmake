file(REMOVE_RECURSE
  "CMakeFiles/fig6_switch_states.dir/fig6_switch_states.cpp.o"
  "CMakeFiles/fig6_switch_states.dir/fig6_switch_states.cpp.o.d"
  "fig6_switch_states"
  "fig6_switch_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_switch_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
