# Empty compiler generated dependencies file for ablation_global_vs_csd.
# This may be replaced when dependencies are built.
