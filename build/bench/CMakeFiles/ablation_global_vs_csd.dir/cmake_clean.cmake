file(REMOVE_RECURSE
  "CMakeFiles/ablation_global_vs_csd.dir/ablation_global_vs_csd.cpp.o"
  "CMakeFiles/ablation_global_vs_csd.dir/ablation_global_vs_csd.cpp.o.d"
  "ablation_global_vs_csd"
  "ablation_global_vs_csd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_global_vs_csd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
