file(REMOVE_RECURSE
  "CMakeFiles/ablation_wsrf_sizing.dir/ablation_wsrf_sizing.cpp.o"
  "CMakeFiles/ablation_wsrf_sizing.dir/ablation_wsrf_sizing.cpp.o.d"
  "ablation_wsrf_sizing"
  "ablation_wsrf_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wsrf_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
