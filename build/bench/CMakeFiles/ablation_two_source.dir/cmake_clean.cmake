file(REMOVE_RECURSE
  "CMakeFiles/ablation_two_source.dir/ablation_two_source.cpp.o"
  "CMakeFiles/ablation_two_source.dir/ablation_two_source.cpp.o.d"
  "ablation_two_source"
  "ablation_two_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_two_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
