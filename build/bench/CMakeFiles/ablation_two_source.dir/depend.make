# Empty dependencies file for ablation_two_source.
# This may be replaced when dependencies are built.
