# Empty compiler generated dependencies file for ablation_placement_policy.
# This may be replaced when dependencies are built.
