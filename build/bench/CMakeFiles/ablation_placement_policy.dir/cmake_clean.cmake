file(REMOVE_RECURSE
  "CMakeFiles/ablation_placement_policy.dir/ablation_placement_policy.cpp.o"
  "CMakeFiles/ablation_placement_policy.dir/ablation_placement_policy.cpp.o.d"
  "ablation_placement_policy"
  "ablation_placement_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_placement_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
