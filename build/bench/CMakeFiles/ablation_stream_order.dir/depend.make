# Empty dependencies file for ablation_stream_order.
# This may be replaced when dependencies are built.
