file(REMOVE_RECURSE
  "CMakeFiles/ablation_stream_order.dir/ablation_stream_order.cpp.o"
  "CMakeFiles/ablation_stream_order.dir/ablation_stream_order.cpp.o.d"
  "ablation_stream_order"
  "ablation_stream_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
