file(REMOVE_RECURSE
  "CMakeFiles/fig1_pipeline_config.dir/fig1_pipeline_config.cpp.o"
  "CMakeFiles/fig1_pipeline_config.dir/fig1_pipeline_config.cpp.o.d"
  "fig1_pipeline_config"
  "fig1_pipeline_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pipeline_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
