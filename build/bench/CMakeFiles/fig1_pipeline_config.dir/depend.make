# Empty dependencies file for fig1_pipeline_config.
# This may be replaced when dependencies are built.
