# Empty dependencies file for fig2_csd_handshake.
# This may be replaced when dependencies are built.
