file(REMOVE_RECURSE
  "CMakeFiles/fig2_csd_handshake.dir/fig2_csd_handshake.cpp.o"
  "CMakeFiles/fig2_csd_handshake.dir/fig2_csd_handshake.cpp.o.d"
  "fig2_csd_handshake"
  "fig2_csd_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_csd_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
