file(REMOVE_RECURSE
  "CMakeFiles/table1_physical_object.dir/table1_physical_object.cpp.o"
  "CMakeFiles/table1_physical_object.dir/table1_physical_object.cpp.o.d"
  "table1_physical_object"
  "table1_physical_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_physical_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
