# Empty compiler generated dependencies file for table1_physical_object.
# This may be replaced when dependencies are built.
