# Empty compiler generated dependencies file for ablation_channel_routability.
# This may be replaced when dependencies are built.
