file(REMOVE_RECURSE
  "CMakeFiles/ablation_channel_routability.dir/ablation_channel_routability.cpp.o"
  "CMakeFiles/ablation_channel_routability.dir/ablation_channel_routability.cpp.o.d"
  "ablation_channel_routability"
  "ablation_channel_routability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_channel_routability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
