file(REMOVE_RECURSE
  "CMakeFiles/object_cache_curves.dir/object_cache_curves.cpp.o"
  "CMakeFiles/object_cache_curves.dir/object_cache_curves.cpp.o.d"
  "object_cache_curves"
  "object_cache_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_cache_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
