# Empty dependencies file for object_cache_curves.
# This may be replaced when dependencies are built.
