file(REMOVE_RECURSE
  "CMakeFiles/fig7_scaling_example.dir/fig7_scaling_example.cpp.o"
  "CMakeFiles/fig7_scaling_example.dir/fig7_scaling_example.cpp.o.d"
  "fig7_scaling_example"
  "fig7_scaling_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scaling_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
