file(REMOVE_RECURSE
  "CMakeFiles/table2_memory_block.dir/table2_memory_block.cpp.o"
  "CMakeFiles/table2_memory_block.dir/table2_memory_block.cpp.o.d"
  "table2_memory_block"
  "table2_memory_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_memory_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
