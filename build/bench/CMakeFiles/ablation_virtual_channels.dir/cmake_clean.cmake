file(REMOVE_RECURSE
  "CMakeFiles/ablation_virtual_channels.dir/ablation_virtual_channels.cpp.o"
  "CMakeFiles/ablation_virtual_channels.dir/ablation_virtual_channels.cpp.o.d"
  "ablation_virtual_channels"
  "ablation_virtual_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_virtual_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
