# Empty dependencies file for table3_control_objects.
# This may be replaced when dependencies are built.
