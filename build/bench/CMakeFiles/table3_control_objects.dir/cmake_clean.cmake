file(REMOVE_RECURSE
  "CMakeFiles/table3_control_objects.dir/table3_control_objects.cpp.o"
  "CMakeFiles/table3_control_objects.dir/table3_control_objects.cpp.o.d"
  "table3_control_objects"
  "table3_control_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_control_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
