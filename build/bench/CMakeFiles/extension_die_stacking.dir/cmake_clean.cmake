file(REMOVE_RECURSE
  "CMakeFiles/extension_die_stacking.dir/extension_die_stacking.cpp.o"
  "CMakeFiles/extension_die_stacking.dir/extension_die_stacking.cpp.o.d"
  "extension_die_stacking"
  "extension_die_stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_die_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
