# Empty compiler generated dependencies file for extension_die_stacking.
# This may be replaced when dependencies are built.
