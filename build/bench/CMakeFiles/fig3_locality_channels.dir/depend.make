# Empty dependencies file for fig3_locality_channels.
# This may be replaced when dependencies are built.
