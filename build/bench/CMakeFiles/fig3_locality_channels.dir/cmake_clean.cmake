file(REMOVE_RECURSE
  "CMakeFiles/fig3_locality_channels.dir/fig3_locality_channels.cpp.o"
  "CMakeFiles/fig3_locality_channels.dir/fig3_locality_channels.cpp.o.d"
  "fig3_locality_channels"
  "fig3_locality_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_locality_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
