file(REMOVE_RECURSE
  "CMakeFiles/effective_gops.dir/effective_gops.cpp.o"
  "CMakeFiles/effective_gops.dir/effective_gops.cpp.o.d"
  "effective_gops"
  "effective_gops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effective_gops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
