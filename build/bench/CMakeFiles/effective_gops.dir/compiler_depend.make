# Empty compiler generated dependencies file for effective_gops.
# This may be replaced when dependencies are built.
