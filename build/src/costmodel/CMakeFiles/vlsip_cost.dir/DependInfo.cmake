
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/areas.cpp" "src/costmodel/CMakeFiles/vlsip_cost.dir/areas.cpp.o" "gcc" "src/costmodel/CMakeFiles/vlsip_cost.dir/areas.cpp.o.d"
  "/root/repo/src/costmodel/technology.cpp" "src/costmodel/CMakeFiles/vlsip_cost.dir/technology.cpp.o" "gcc" "src/costmodel/CMakeFiles/vlsip_cost.dir/technology.cpp.o.d"
  "/root/repo/src/costmodel/vlsi_model.cpp" "src/costmodel/CMakeFiles/vlsip_cost.dir/vlsi_model.cpp.o" "gcc" "src/costmodel/CMakeFiles/vlsip_cost.dir/vlsi_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlsip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
