file(REMOVE_RECURSE
  "libvlsip_cost.a"
)
