file(REMOVE_RECURSE
  "CMakeFiles/vlsip_cost.dir/areas.cpp.o"
  "CMakeFiles/vlsip_cost.dir/areas.cpp.o.d"
  "CMakeFiles/vlsip_cost.dir/technology.cpp.o"
  "CMakeFiles/vlsip_cost.dir/technology.cpp.o.d"
  "CMakeFiles/vlsip_cost.dir/vlsi_model.cpp.o"
  "CMakeFiles/vlsip_cost.dir/vlsi_model.cpp.o.d"
  "libvlsip_cost.a"
  "libvlsip_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
