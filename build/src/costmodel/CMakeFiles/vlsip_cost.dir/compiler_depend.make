# Empty compiler generated dependencies file for vlsip_cost.
# This may be replaced when dependencies are built.
