file(REMOVE_RECURSE
  "libvlsip_ap.a"
)
