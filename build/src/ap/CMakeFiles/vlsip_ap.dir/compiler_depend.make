# Empty compiler generated dependencies file for vlsip_ap.
# This may be replaced when dependencies are built.
