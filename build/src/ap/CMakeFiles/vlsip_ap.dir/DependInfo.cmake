
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ap/adaptive_processor.cpp" "src/ap/CMakeFiles/vlsip_ap.dir/adaptive_processor.cpp.o" "gcc" "src/ap/CMakeFiles/vlsip_ap.dir/adaptive_processor.cpp.o.d"
  "/root/repo/src/ap/executor.cpp" "src/ap/CMakeFiles/vlsip_ap.dir/executor.cpp.o" "gcc" "src/ap/CMakeFiles/vlsip_ap.dir/executor.cpp.o.d"
  "/root/repo/src/ap/memory_block.cpp" "src/ap/CMakeFiles/vlsip_ap.dir/memory_block.cpp.o" "gcc" "src/ap/CMakeFiles/vlsip_ap.dir/memory_block.cpp.o.d"
  "/root/repo/src/ap/object_space.cpp" "src/ap/CMakeFiles/vlsip_ap.dir/object_space.cpp.o" "gcc" "src/ap/CMakeFiles/vlsip_ap.dir/object_space.cpp.o.d"
  "/root/repo/src/ap/pipeline.cpp" "src/ap/CMakeFiles/vlsip_ap.dir/pipeline.cpp.o" "gcc" "src/ap/CMakeFiles/vlsip_ap.dir/pipeline.cpp.o.d"
  "/root/repo/src/ap/replacement.cpp" "src/ap/CMakeFiles/vlsip_ap.dir/replacement.cpp.o" "gcc" "src/ap/CMakeFiles/vlsip_ap.dir/replacement.cpp.o.d"
  "/root/repo/src/ap/wsrf.cpp" "src/ap/CMakeFiles/vlsip_ap.dir/wsrf.cpp.o" "gcc" "src/ap/CMakeFiles/vlsip_ap.dir/wsrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlsip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vlsip_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/csd/CMakeFiles/vlsip_csd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
