file(REMOVE_RECURSE
  "CMakeFiles/vlsip_ap.dir/adaptive_processor.cpp.o"
  "CMakeFiles/vlsip_ap.dir/adaptive_processor.cpp.o.d"
  "CMakeFiles/vlsip_ap.dir/executor.cpp.o"
  "CMakeFiles/vlsip_ap.dir/executor.cpp.o.d"
  "CMakeFiles/vlsip_ap.dir/memory_block.cpp.o"
  "CMakeFiles/vlsip_ap.dir/memory_block.cpp.o.d"
  "CMakeFiles/vlsip_ap.dir/object_space.cpp.o"
  "CMakeFiles/vlsip_ap.dir/object_space.cpp.o.d"
  "CMakeFiles/vlsip_ap.dir/pipeline.cpp.o"
  "CMakeFiles/vlsip_ap.dir/pipeline.cpp.o.d"
  "CMakeFiles/vlsip_ap.dir/replacement.cpp.o"
  "CMakeFiles/vlsip_ap.dir/replacement.cpp.o.d"
  "CMakeFiles/vlsip_ap.dir/wsrf.cpp.o"
  "CMakeFiles/vlsip_ap.dir/wsrf.cpp.o.d"
  "libvlsip_ap.a"
  "libvlsip_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
