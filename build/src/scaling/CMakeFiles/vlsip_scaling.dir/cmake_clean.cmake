file(REMOVE_RECURSE
  "CMakeFiles/vlsip_scaling.dir/job_scheduler.cpp.o"
  "CMakeFiles/vlsip_scaling.dir/job_scheduler.cpp.o.d"
  "CMakeFiles/vlsip_scaling.dir/scaling_manager.cpp.o"
  "CMakeFiles/vlsip_scaling.dir/scaling_manager.cpp.o.d"
  "CMakeFiles/vlsip_scaling.dir/state_machine.cpp.o"
  "CMakeFiles/vlsip_scaling.dir/state_machine.cpp.o.d"
  "CMakeFiles/vlsip_scaling.dir/supervisor.cpp.o"
  "CMakeFiles/vlsip_scaling.dir/supervisor.cpp.o.d"
  "libvlsip_scaling.a"
  "libvlsip_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
