# Empty dependencies file for vlsip_scaling.
# This may be replaced when dependencies are built.
