
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaling/job_scheduler.cpp" "src/scaling/CMakeFiles/vlsip_scaling.dir/job_scheduler.cpp.o" "gcc" "src/scaling/CMakeFiles/vlsip_scaling.dir/job_scheduler.cpp.o.d"
  "/root/repo/src/scaling/scaling_manager.cpp" "src/scaling/CMakeFiles/vlsip_scaling.dir/scaling_manager.cpp.o" "gcc" "src/scaling/CMakeFiles/vlsip_scaling.dir/scaling_manager.cpp.o.d"
  "/root/repo/src/scaling/state_machine.cpp" "src/scaling/CMakeFiles/vlsip_scaling.dir/state_machine.cpp.o" "gcc" "src/scaling/CMakeFiles/vlsip_scaling.dir/state_machine.cpp.o.d"
  "/root/repo/src/scaling/supervisor.cpp" "src/scaling/CMakeFiles/vlsip_scaling.dir/supervisor.cpp.o" "gcc" "src/scaling/CMakeFiles/vlsip_scaling.dir/supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlsip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/vlsip_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vlsip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/vlsip_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/csd/CMakeFiles/vlsip_csd.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vlsip_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
