file(REMOVE_RECURSE
  "libvlsip_scaling.a"
)
