file(REMOVE_RECURSE
  "libvlsip_common.a"
)
