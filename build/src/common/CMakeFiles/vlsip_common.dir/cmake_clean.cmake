file(REMOVE_RECURSE
  "CMakeFiles/vlsip_common.dir/event_queue.cpp.o"
  "CMakeFiles/vlsip_common.dir/event_queue.cpp.o.d"
  "CMakeFiles/vlsip_common.dir/rng.cpp.o"
  "CMakeFiles/vlsip_common.dir/rng.cpp.o.d"
  "CMakeFiles/vlsip_common.dir/stats.cpp.o"
  "CMakeFiles/vlsip_common.dir/stats.cpp.o.d"
  "CMakeFiles/vlsip_common.dir/table.cpp.o"
  "CMakeFiles/vlsip_common.dir/table.cpp.o.d"
  "CMakeFiles/vlsip_common.dir/trace.cpp.o"
  "CMakeFiles/vlsip_common.dir/trace.cpp.o.d"
  "libvlsip_common.a"
  "libvlsip_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
