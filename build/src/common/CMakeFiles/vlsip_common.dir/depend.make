# Empty dependencies file for vlsip_common.
# This may be replaced when dependencies are built.
