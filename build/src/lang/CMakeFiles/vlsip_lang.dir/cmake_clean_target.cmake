file(REMOVE_RECURSE
  "libvlsip_lang.a"
)
