file(REMOVE_RECURSE
  "CMakeFiles/vlsip_lang.dir/compiler.cpp.o"
  "CMakeFiles/vlsip_lang.dir/compiler.cpp.o.d"
  "libvlsip_lang.a"
  "libvlsip_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
