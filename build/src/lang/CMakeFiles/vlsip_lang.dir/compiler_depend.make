# Empty compiler generated dependencies file for vlsip_lang.
# This may be replaced when dependencies are built.
