file(REMOVE_RECURSE
  "libvlsip_arch.a"
)
