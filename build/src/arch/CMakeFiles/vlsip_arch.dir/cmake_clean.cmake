file(REMOVE_RECURSE
  "CMakeFiles/vlsip_arch.dir/config_stream.cpp.o"
  "CMakeFiles/vlsip_arch.dir/config_stream.cpp.o.d"
  "CMakeFiles/vlsip_arch.dir/datapath.cpp.o"
  "CMakeFiles/vlsip_arch.dir/datapath.cpp.o.d"
  "CMakeFiles/vlsip_arch.dir/dependency.cpp.o"
  "CMakeFiles/vlsip_arch.dir/dependency.cpp.o.d"
  "CMakeFiles/vlsip_arch.dir/object.cpp.o"
  "CMakeFiles/vlsip_arch.dir/object.cpp.o.d"
  "CMakeFiles/vlsip_arch.dir/optimizer.cpp.o"
  "CMakeFiles/vlsip_arch.dir/optimizer.cpp.o.d"
  "CMakeFiles/vlsip_arch.dir/serialize.cpp.o"
  "CMakeFiles/vlsip_arch.dir/serialize.cpp.o.d"
  "libvlsip_arch.a"
  "libvlsip_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
