
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/config_stream.cpp" "src/arch/CMakeFiles/vlsip_arch.dir/config_stream.cpp.o" "gcc" "src/arch/CMakeFiles/vlsip_arch.dir/config_stream.cpp.o.d"
  "/root/repo/src/arch/datapath.cpp" "src/arch/CMakeFiles/vlsip_arch.dir/datapath.cpp.o" "gcc" "src/arch/CMakeFiles/vlsip_arch.dir/datapath.cpp.o.d"
  "/root/repo/src/arch/dependency.cpp" "src/arch/CMakeFiles/vlsip_arch.dir/dependency.cpp.o" "gcc" "src/arch/CMakeFiles/vlsip_arch.dir/dependency.cpp.o.d"
  "/root/repo/src/arch/object.cpp" "src/arch/CMakeFiles/vlsip_arch.dir/object.cpp.o" "gcc" "src/arch/CMakeFiles/vlsip_arch.dir/object.cpp.o.d"
  "/root/repo/src/arch/optimizer.cpp" "src/arch/CMakeFiles/vlsip_arch.dir/optimizer.cpp.o" "gcc" "src/arch/CMakeFiles/vlsip_arch.dir/optimizer.cpp.o.d"
  "/root/repo/src/arch/serialize.cpp" "src/arch/CMakeFiles/vlsip_arch.dir/serialize.cpp.o" "gcc" "src/arch/CMakeFiles/vlsip_arch.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlsip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
