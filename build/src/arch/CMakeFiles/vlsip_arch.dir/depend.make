# Empty dependencies file for vlsip_arch.
# This may be replaced when dependencies are built.
