file(REMOVE_RECURSE
  "CMakeFiles/vlsip_core.dir/vlsi_processor.cpp.o"
  "CMakeFiles/vlsip_core.dir/vlsi_processor.cpp.o.d"
  "libvlsip_core.a"
  "libvlsip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
