file(REMOVE_RECURSE
  "libvlsip_core.a"
)
