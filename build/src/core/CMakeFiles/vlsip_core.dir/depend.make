# Empty dependencies file for vlsip_core.
# This may be replaced when dependencies are built.
