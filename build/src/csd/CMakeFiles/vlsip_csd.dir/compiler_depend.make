# Empty compiler generated dependencies file for vlsip_csd.
# This may be replaced when dependencies are built.
