
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csd/csd_simulator.cpp" "src/csd/CMakeFiles/vlsip_csd.dir/csd_simulator.cpp.o" "gcc" "src/csd/CMakeFiles/vlsip_csd.dir/csd_simulator.cpp.o.d"
  "/root/repo/src/csd/dynamic_csd.cpp" "src/csd/CMakeFiles/vlsip_csd.dir/dynamic_csd.cpp.o" "gcc" "src/csd/CMakeFiles/vlsip_csd.dir/dynamic_csd.cpp.o.d"
  "/root/repo/src/csd/global_network.cpp" "src/csd/CMakeFiles/vlsip_csd.dir/global_network.cpp.o" "gcc" "src/csd/CMakeFiles/vlsip_csd.dir/global_network.cpp.o.d"
  "/root/repo/src/csd/handshake.cpp" "src/csd/CMakeFiles/vlsip_csd.dir/handshake.cpp.o" "gcc" "src/csd/CMakeFiles/vlsip_csd.dir/handshake.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlsip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vlsip_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
