file(REMOVE_RECURSE
  "CMakeFiles/vlsip_csd.dir/csd_simulator.cpp.o"
  "CMakeFiles/vlsip_csd.dir/csd_simulator.cpp.o.d"
  "CMakeFiles/vlsip_csd.dir/dynamic_csd.cpp.o"
  "CMakeFiles/vlsip_csd.dir/dynamic_csd.cpp.o.d"
  "CMakeFiles/vlsip_csd.dir/global_network.cpp.o"
  "CMakeFiles/vlsip_csd.dir/global_network.cpp.o.d"
  "CMakeFiles/vlsip_csd.dir/handshake.cpp.o"
  "CMakeFiles/vlsip_csd.dir/handshake.cpp.o.d"
  "libvlsip_csd.a"
  "libvlsip_csd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_csd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
