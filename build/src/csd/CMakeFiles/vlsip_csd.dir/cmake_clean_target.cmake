file(REMOVE_RECURSE
  "libvlsip_csd.a"
)
