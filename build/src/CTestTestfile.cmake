# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("arch")
subdirs("lang")
subdirs("csd")
subdirs("topology")
subdirs("noc")
subdirs("ap")
subdirs("scaling")
subdirs("costmodel")
subdirs("core")
