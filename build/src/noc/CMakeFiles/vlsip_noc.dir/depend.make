# Empty dependencies file for vlsip_noc.
# This may be replaced when dependencies are built.
