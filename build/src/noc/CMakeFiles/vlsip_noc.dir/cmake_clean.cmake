file(REMOVE_RECURSE
  "CMakeFiles/vlsip_noc.dir/noc_fabric.cpp.o"
  "CMakeFiles/vlsip_noc.dir/noc_fabric.cpp.o.d"
  "CMakeFiles/vlsip_noc.dir/router.cpp.o"
  "CMakeFiles/vlsip_noc.dir/router.cpp.o.d"
  "libvlsip_noc.a"
  "libvlsip_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
