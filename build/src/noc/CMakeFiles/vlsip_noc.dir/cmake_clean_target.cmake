file(REMOVE_RECURSE
  "libvlsip_noc.a"
)
