file(REMOVE_RECURSE
  "libvlsip_topology.a"
)
