# Empty compiler generated dependencies file for vlsip_topology.
# This may be replaced when dependencies are built.
