file(REMOVE_RECURSE
  "CMakeFiles/vlsip_topology.dir/baselines.cpp.o"
  "CMakeFiles/vlsip_topology.dir/baselines.cpp.o.d"
  "CMakeFiles/vlsip_topology.dir/region.cpp.o"
  "CMakeFiles/vlsip_topology.dir/region.cpp.o.d"
  "CMakeFiles/vlsip_topology.dir/s_topology.cpp.o"
  "CMakeFiles/vlsip_topology.dir/s_topology.cpp.o.d"
  "libvlsip_topology.a"
  "libvlsip_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsip_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
