# Empty dependencies file for vlsipc.
# This may be replaced when dependencies are built.
