file(REMOVE_RECURSE
  "CMakeFiles/vlsipc.dir/vlsipc.cpp.o"
  "CMakeFiles/vlsipc.dir/vlsipc.cpp.o.d"
  "vlsipc"
  "vlsipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
