# Empty compiler generated dependencies file for vlsipc.
# This may be replaced when dependencies are built.
