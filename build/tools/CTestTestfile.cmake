# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vlsipc_compile "/root/repo/build/tools/vlsipc" "compile" "/root/repo/examples/programs/running_sum.vdf" "-o" "/root/repo/build/tools/running_sum.vobj" "--optimize")
set_tests_properties(vlsipc_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vlsipc_info "/root/repo/build/tools/vlsipc" "info" "/root/repo/examples/programs/edge_gate.vdf")
set_tests_properties(vlsipc_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vlsipc_run_source "/root/repo/build/tools/vlsipc" "run" "/root/repo/examples/programs/edge_gate.vdf" "--in" "x=9" "--in" "y=2")
set_tests_properties(vlsipc_run_source PROPERTIES  PASS_REGULAR_EXPRESSION "z = 10" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vlsipc_run_object "/root/repo/build/tools/vlsipc" "run" "/root/repo/build/tools/running_sum.vobj" "--in" "x=1,2,3,4" "--expect" "4")
set_tests_properties(vlsipc_run_object PROPERTIES  DEPENDS "vlsipc_compile" PASS_REGULAR_EXPRESSION "acc = 1 3 6 10" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
