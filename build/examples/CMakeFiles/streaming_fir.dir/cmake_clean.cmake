file(REMOVE_RECURSE
  "CMakeFiles/streaming_fir.dir/streaming_fir.cpp.o"
  "CMakeFiles/streaming_fir.dir/streaming_fir.cpp.o.d"
  "streaming_fir"
  "streaming_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
