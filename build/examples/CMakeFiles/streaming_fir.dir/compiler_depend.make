# Empty compiler generated dependencies file for streaming_fir.
# This may be replaced when dependencies are built.
