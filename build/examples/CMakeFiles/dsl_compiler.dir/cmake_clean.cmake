file(REMOVE_RECURSE
  "CMakeFiles/dsl_compiler.dir/dsl_compiler.cpp.o"
  "CMakeFiles/dsl_compiler.dir/dsl_compiler.cpp.o.d"
  "dsl_compiler"
  "dsl_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
