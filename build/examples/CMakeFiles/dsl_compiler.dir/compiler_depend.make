# Empty compiler generated dependencies file for dsl_compiler.
# This may be replaced when dependencies are built.
