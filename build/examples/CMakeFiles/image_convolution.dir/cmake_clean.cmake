file(REMOVE_RECURSE
  "CMakeFiles/image_convolution.dir/image_convolution.cpp.o"
  "CMakeFiles/image_convolution.dir/image_convolution.cpp.o.d"
  "image_convolution"
  "image_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
