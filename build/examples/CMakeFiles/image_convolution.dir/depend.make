# Empty dependencies file for image_convolution.
# This may be replaced when dependencies are built.
