file(REMOVE_RECURSE
  "CMakeFiles/task_pipeline.dir/task_pipeline.cpp.o"
  "CMakeFiles/task_pipeline.dir/task_pipeline.cpp.o.d"
  "task_pipeline"
  "task_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
