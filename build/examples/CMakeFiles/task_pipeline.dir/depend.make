# Empty dependencies file for task_pipeline.
# This may be replaced when dependencies are built.
