file(REMOVE_RECURSE
  "CMakeFiles/defect_tolerance.dir/defect_tolerance.cpp.o"
  "CMakeFiles/defect_tolerance.dir/defect_tolerance.cpp.o.d"
  "defect_tolerance"
  "defect_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defect_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
