# Empty compiler generated dependencies file for defect_tolerance.
# This may be replaced when dependencies are built.
