# Empty compiler generated dependencies file for process_scaling_explorer.
# This may be replaced when dependencies are built.
