file(REMOVE_RECURSE
  "CMakeFiles/process_scaling_explorer.dir/process_scaling_explorer.cpp.o"
  "CMakeFiles/process_scaling_explorer.dir/process_scaling_explorer.cpp.o.d"
  "process_scaling_explorer"
  "process_scaling_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_scaling_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
