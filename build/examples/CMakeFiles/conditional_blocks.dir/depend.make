# Empty dependencies file for conditional_blocks.
# This may be replaced when dependencies are built.
