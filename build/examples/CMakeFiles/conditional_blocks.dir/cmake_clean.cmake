file(REMOVE_RECURSE
  "CMakeFiles/conditional_blocks.dir/conditional_blocks.cpp.o"
  "CMakeFiles/conditional_blocks.dir/conditional_blocks.cpp.o.d"
  "conditional_blocks"
  "conditional_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
