# Empty dependencies file for vector_reduction.
# This may be replaced when dependencies are built.
