file(REMOVE_RECURSE
  "CMakeFiles/vector_reduction.dir/vector_reduction.cpp.o"
  "CMakeFiles/vector_reduction.dir/vector_reduction.cpp.o.d"
  "vector_reduction"
  "vector_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
