# Empty compiler generated dependencies file for adaptive_upscale.
# This may be replaced when dependencies are built.
