file(REMOVE_RECURSE
  "CMakeFiles/adaptive_upscale.dir/adaptive_upscale.cpp.o"
  "CMakeFiles/adaptive_upscale.dir/adaptive_upscale.cpp.o.d"
  "adaptive_upscale"
  "adaptive_upscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_upscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
