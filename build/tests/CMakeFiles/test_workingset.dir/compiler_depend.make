# Empty compiler generated dependencies file for test_workingset.
# This may be replaced when dependencies are built.
