file(REMOVE_RECURSE
  "CMakeFiles/test_workingset.dir/test_workingset.cpp.o"
  "CMakeFiles/test_workingset.dir/test_workingset.cpp.o.d"
  "test_workingset"
  "test_workingset.pdb"
  "test_workingset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workingset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
