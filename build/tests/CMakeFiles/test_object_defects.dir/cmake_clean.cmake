file(REMOVE_RECURSE
  "CMakeFiles/test_object_defects.dir/test_object_defects.cpp.o"
  "CMakeFiles/test_object_defects.dir/test_object_defects.cpp.o.d"
  "test_object_defects"
  "test_object_defects.pdb"
  "test_object_defects[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_object_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
