file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_executor.dir/test_fuzz_executor.cpp.o"
  "CMakeFiles/test_fuzz_executor.dir/test_fuzz_executor.cpp.o.d"
  "test_fuzz_executor"
  "test_fuzz_executor.pdb"
  "test_fuzz_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
