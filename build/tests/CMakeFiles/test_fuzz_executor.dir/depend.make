# Empty dependencies file for test_fuzz_executor.
# This may be replaced when dependencies are built.
