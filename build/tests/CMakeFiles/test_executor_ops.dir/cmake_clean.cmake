file(REMOVE_RECURSE
  "CMakeFiles/test_executor_ops.dir/test_executor_ops.cpp.o"
  "CMakeFiles/test_executor_ops.dir/test_executor_ops.cpp.o.d"
  "test_executor_ops"
  "test_executor_ops.pdb"
  "test_executor_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
