# Empty dependencies file for test_csd.
# This may be replaced when dependencies are built.
