# Empty dependencies file for test_chainset.
# This may be replaced when dependencies are built.
