file(REMOVE_RECURSE
  "CMakeFiles/test_chainset.dir/test_chainset.cpp.o"
  "CMakeFiles/test_chainset.dir/test_chainset.cpp.o.d"
  "test_chainset"
  "test_chainset.pdb"
  "test_chainset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chainset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
