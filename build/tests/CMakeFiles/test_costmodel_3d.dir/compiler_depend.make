# Empty compiler generated dependencies file for test_costmodel_3d.
# This may be replaced when dependencies are built.
