file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel_3d.dir/test_costmodel_3d.cpp.o"
  "CMakeFiles/test_costmodel_3d.dir/test_costmodel_3d.cpp.o.d"
  "test_costmodel_3d"
  "test_costmodel_3d.pdb"
  "test_costmodel_3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
