file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_chip.dir/test_fuzz_chip.cpp.o"
  "CMakeFiles/test_fuzz_chip.dir/test_fuzz_chip.cpp.o.d"
  "test_fuzz_chip"
  "test_fuzz_chip.pdb"
  "test_fuzz_chip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
