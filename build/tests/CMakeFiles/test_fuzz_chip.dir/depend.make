# Empty dependencies file for test_fuzz_chip.
# This may be replaced when dependencies are built.
