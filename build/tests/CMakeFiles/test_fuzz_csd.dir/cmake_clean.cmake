file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_csd.dir/test_fuzz_csd.cpp.o"
  "CMakeFiles/test_fuzz_csd.dir/test_fuzz_csd.cpp.o.d"
  "test_fuzz_csd"
  "test_fuzz_csd.pdb"
  "test_fuzz_csd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_csd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
