# Empty dependencies file for test_fuzz_csd.
# This may be replaced when dependencies are built.
