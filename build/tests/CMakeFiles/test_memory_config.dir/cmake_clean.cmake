file(REMOVE_RECURSE
  "CMakeFiles/test_memory_config.dir/test_memory_config.cpp.o"
  "CMakeFiles/test_memory_config.dir/test_memory_config.cpp.o.d"
  "test_memory_config"
  "test_memory_config.pdb"
  "test_memory_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
