
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_memory_config.cpp" "tests/CMakeFiles/test_memory_config.dir/test_memory_config.cpp.o" "gcc" "tests/CMakeFiles/test_memory_config.dir/test_memory_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vlsip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/vlsip_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/scaling/CMakeFiles/vlsip_scaling.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vlsip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/vlsip_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/vlsip_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/csd/CMakeFiles/vlsip_csd.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vlsip_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/vlsip_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlsip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
