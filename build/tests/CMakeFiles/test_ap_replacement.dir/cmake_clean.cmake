file(REMOVE_RECURSE
  "CMakeFiles/test_ap_replacement.dir/test_ap_replacement.cpp.o"
  "CMakeFiles/test_ap_replacement.dir/test_ap_replacement.cpp.o.d"
  "test_ap_replacement"
  "test_ap_replacement.pdb"
  "test_ap_replacement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ap_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
