# Empty compiler generated dependencies file for test_ap_replacement.
# This may be replaced when dependencies are built.
