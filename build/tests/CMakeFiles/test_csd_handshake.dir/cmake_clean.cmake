file(REMOVE_RECURSE
  "CMakeFiles/test_csd_handshake.dir/test_csd_handshake.cpp.o"
  "CMakeFiles/test_csd_handshake.dir/test_csd_handshake.cpp.o.d"
  "test_csd_handshake"
  "test_csd_handshake.pdb"
  "test_csd_handshake[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csd_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
