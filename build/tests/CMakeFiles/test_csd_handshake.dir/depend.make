# Empty dependencies file for test_csd_handshake.
# This may be replaced when dependencies are built.
