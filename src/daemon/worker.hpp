// WorkerDaemon — one ChipFarm behind a hub connection.
//
// The daemon dials the hub, identifies as Role::kWorker, and serves
// AssignJob frames on its own ChipFarm in windows sized by the farm's
// batch policy: take up to a window of pending assignments, submit
// them, block on the futures, answer JobResults. A heartbeat thread
// reports liveness (queue depth + lifetime served) on a timer.
//
// Drain: on a Drain frame the daemon stops taking new pending work,
// lets the farm finish what it already admitted (those results go out
// normally), then ships a CheckpointMsg — the chip's .vsnap
// (ChipFarm::save_chip) plus a ReplayLog of the never-started jobs
// with their hub-global ids — and says Goodbye. Resume is the mirror:
// a peer's checkpoint arrives, runtime::replay_from re-serves the
// migrated jobs from the exact checkpointed chip state (deterministic,
// so the results are byte-identical to a local replay of the same
// blob), and the results go back under the migrated ids. If the blob
// is corrupt or its geometry doesn't match, the jobs fall back to
// ordinary farm service — degraded determinism, but nothing is lost.
//
// Fault injection: crash_after_jobs > 0 makes the daemon die abruptly
// (socket torn down mid-protocol, no goodbye) once that many results
// have been sent — the deterministic stand-in for `kill -9` in the
// worker-loss tests. The hub must requeue whatever was in flight.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "core/status.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/chip_farm.hpp"

namespace vlsip::daemon {

struct WorkerOptions {
  /// Hub address ("host:port" or "unix:/path").
  std::string hub;
  /// Display name in the hub's Hello log / metrics report.
  std::string name = "worker";
  /// The farm this daemon serves on (threaded mode; geometry must
  /// match its peers' for checkpoint migration to restore).
  runtime::FarmConfig farm;
  /// Heartbeat period.
  std::uint64_t heartbeat_ms = 200;
  /// Fault injection: die abruptly (no goodbye, socket torn down)
  /// after sending this many results. 0 = never.
  std::uint64_t crash_after_jobs = 0;
  /// Frame payload cap enforced on every receive.
  std::size_t max_payload = net::kMaxFramePayload;
};

class WorkerDaemon {
 public:
  /// How the serving loop ended.
  enum class Exit {
    kShutdown,  ///< hub sent Shutdown
    kDrained,   ///< drained and checkpoint shipped
    kCrashed,   ///< crash_after_jobs fault injection fired
    kLost,      ///< connection to the hub failed
  };

  explicit WorkerDaemon(WorkerOptions options);
  ~WorkerDaemon();

  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  /// Dials the hub and completes the Hello/HelloAck handshake.
  Status connect();

  /// Serves until shutdown/drain/crash/loss. Call after connect().
  Exit run();

  /// Hub-assigned worker id (valid after connect()).
  std::uint64_t id() const { return id_; }
  /// Results sent over this daemon's lifetime.
  std::uint64_t served() const;

 private:
  void service_loop();
  void heartbeat_loop();
  /// Serves up to a window of pending assignments on the farm.
  /// Returns false when the loop should stop (crash injection fired).
  bool serve_window(std::vector<net::AssignJobMsg> window);
  /// Replays a migrated checkpoint and answers its results.
  bool handle_resume(net::CheckpointMsg checkpoint);
  /// Finishes admitted work, ships the checkpoint, says goodbye.
  void do_drain();
  /// Sends one result; runs the crash injection counter. Returns
  /// false when the daemon just "crashed".
  bool send_result(std::uint64_t job_id, scaling::JobOutcome outcome);

  WorkerOptions options_;
  net::Socket sock_;
  std::mutex tx_;
  std::uint64_t id_ = 0;
  runtime::ChipFarm farm_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<net::AssignJobMsg> pending_;
  std::deque<net::CheckpointMsg> resumes_;
  bool draining_ = false;
  bool stopping_ = false;
  std::uint64_t served_ = 0;
  Exit exit_ = Exit::kLost;

  std::thread service_thread_;
  std::thread heartbeat_thread_;
};

}  // namespace vlsip::daemon
