#include "daemon/worker.hpp"

#include <utility>
#include <vector>

#include "core/vlsi_processor.hpp"
#include "runtime/replay.hpp"
#include "snapshot/incremental.hpp"

namespace vlsip::daemon {

WorkerDaemon::WorkerDaemon(WorkerOptions options)
    : options_(std::move(options)), farm_(options_.farm) {}

WorkerDaemon::~WorkerDaemon() { sock_.close(); }

std::uint64_t WorkerDaemon::served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return served_;
}

Status WorkerDaemon::connect() {
  auto sock = net::Socket::connect(options_.hub);
  if (!sock.ok()) return sock.status();
  sock_ = std::move(*sock);

  net::HelloMsg hello;
  hello.role = net::Role::kWorker;
  hello.proto_version = net::kProtoVersion;
  hello.name = options_.name;
  const Status sent = net::send_msg(sock_, hello);
  if (!sent.ok()) return sent;

  auto frame = net::read_frame(sock_, options_.max_payload);
  if (!frame.ok()) return frame.status();
  if (frame->type == net::MsgType::kError) {
    const auto err = net::decode_payload<net::ErrorMsg>(*frame);
    if (!err.ok()) return err.status();
    return Status(static_cast<StatusCode>(err->code), err->message);
  }
  const auto ack = net::decode_payload<net::HelloAckMsg>(*frame);
  if (!ack.ok()) return ack.status();
  id_ = ack->peer_id;
  return Status::Ok();
}

WorkerDaemon::Exit WorkerDaemon::run() {
  service_thread_ = std::thread([this] { service_loop(); });
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });

  for (;;) {
    auto frame = net::read_frame(sock_, options_.max_payload);
    if (!frame.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      break;
    }
    switch (frame->type) {
      case net::MsgType::kAssignJob: {
        auto assign = net::decode_payload<net::AssignJobMsg>(*frame);
        if (!assign.ok()) break;  // hostile assign: drop, stay up
        {
          std::lock_guard<std::mutex> lock(mu_);
          pending_.push_back(std::move(*assign));
        }
        cv_.notify_all();
        break;
      }
      case net::MsgType::kResume: {
        auto resume = net::decode_payload<net::ResumeMsg>(*frame);
        if (!resume.ok()) break;
        {
          std::lock_guard<std::mutex> lock(mu_);
          resumes_.push_back(std::move(resume->checkpoint));
        }
        cv_.notify_all();
        break;
      }
      case net::MsgType::kDrain: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          draining_ = true;
        }
        cv_.notify_all();
        break;
      }
      case net::MsgType::kShutdown: {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        exit_ = Exit::kShutdown;
        goto out;
      }
      default:
        break;  // heartbeat acks etc. are not part of v1; ignore
    }
  }
out:
  cv_.notify_all();
  if (service_thread_.joinable()) service_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  return exit_;
}

void WorkerDaemon::service_loop() {
  for (;;) {
    std::vector<net::AssignJobMsg> window;
    net::CheckpointMsg resume;
    bool have_resume = false;
    bool drain_now = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || draining_ || !pending_.empty() ||
               !resumes_.empty();
      });
      if (stopping_) return;
      if (!resumes_.empty()) {
        resume = std::move(resumes_.front());
        resumes_.pop_front();
        have_resume = true;
      } else if (draining_) {
        drain_now = true;
      } else {
        const std::size_t take =
            std::min(pending_.size(),
                     std::max<std::size_t>(1, options_.farm.batch.max_jobs));
        for (std::size_t i = 0; i < take; ++i) {
          window.push_back(std::move(pending_.front()));
          pending_.pop_front();
        }
      }
    }
    if (have_resume) {
      if (!handle_resume(std::move(resume))) return;
    } else if (drain_now) {
      do_drain();
      return;
    } else {
      if (!serve_window(std::move(window))) return;
    }
  }
}

bool WorkerDaemon::serve_window(std::vector<net::AssignJobMsg> window) {
  struct InFlight {
    std::uint64_t job_id;
    std::future<scaling::JobOutcome> outcome;
  };
  std::vector<InFlight> in_flight;
  for (auto& assign : window) {
    scaling::JobOutcome synthetic;
    synthetic.name = assign.job.name;
    try {
      auto admission = farm_.submit(std::move(assign.job));
      if (admission.admitted) {
        in_flight.push_back({assign.job_id, std::move(admission.outcome)});
        continue;
      }
      synthetic.status = scaling::JobStatus::kRejected;
      synthetic.detail = admission.reason;
    } catch (const std::exception& e) {
      // Invalid job off the wire (empty program, zero clusters): answer
      // an error outcome instead of letting the daemon die on it.
      synthetic.status = scaling::JobStatus::kError;
      synthetic.detail = e.what();
    }
    if (!send_result(assign.job_id, std::move(synthetic))) return false;
  }
  for (auto& entry : in_flight) {
    if (!send_result(entry.job_id, entry.outcome.get())) return false;
  }
  return true;
}

bool WorkerDaemon::handle_resume(net::CheckpointMsg checkpoint) {
  std::vector<scaling::JobOutcome> outcomes;
  try {
    // Proto v2 peers ship the chip as an incremental chain; rebuild
    // the flat snapshot first. A corrupt chain (bad link, wrong base,
    // truncated delta) surfaces as kCorruptSnapshot and takes the same
    // no-job-lost fallback as a corrupt flat blob below.
    if (!checkpoint.chain.empty()) {
      StatusOr<snapshot::Snapshot> materialized =
          snapshot::materialize_chain(checkpoint.chain);
      if (!materialized.ok()) {
        throw snapshot::SnapshotError(materialized.status().to_string());
      }
      checkpoint.chip = std::move(*materialized);
    }
    core::VlsiProcessor chip(options_.farm.chip);
    runtime::ReplayOptions replay_options;
    replay_options.default_max_cycles = options_.farm.default_max_cycles;
    outcomes =
        runtime::replay_from(chip, checkpoint.chip, checkpoint.log,
                             replay_options);
  } catch (const snapshot::SnapshotError&) {
    // Corrupt blob or geometry mismatch: the checkpointed chip state is
    // unusable, but the jobs themselves are intact — serve them as
    // ordinary assignments so nothing is lost.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = checkpoint.log.next_job;
           i < checkpoint.log.jobs.size(); ++i) {
        net::AssignJobMsg assign;
        assign.job_id = checkpoint.job_ids[i];
        assign.job = std::move(checkpoint.log.jobs[i]);
        pending_.push_back(std::move(assign));
      }
    }
    cv_.notify_all();
    return true;
  }
  // replay_from serves jobs [next_job ..); outcomes[k] belongs to
  // log.jobs[next_job + k] and so to job_ids[next_job + k].
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const std::size_t idx = checkpoint.log.next_job + k;
    if (idx >= checkpoint.job_ids.size()) break;
    if (!send_result(checkpoint.job_ids[idx], std::move(outcomes[k]))) {
      return false;
    }
  }
  return true;
}

void WorkerDaemon::do_drain() {
  farm_.drain();  // finish everything already admitted; results went out

  net::CheckpointMsg checkpoint;
  checkpoint.worker_id = id_;
  checkpoint.checkpoint_tick = farm_.now();
  checkpoint.log.checkpoint_tick = checkpoint.checkpoint_tick;
  checkpoint.log.next_job = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& assign : pending_) {
      checkpoint.job_ids.push_back(assign.job_id);
      checkpoint.log.jobs.push_back(std::move(assign.job));
    }
    pending_.clear();
    stopping_ = true;
    exit_ = Exit::kDrained;
  }
  // Incremental farms ship the checkpoint chain (keyframe + deltas)
  // instead of one flat snapshot; the receiver materializes it.
  const Status saved =
      options_.farm.incremental_checkpoints
          ? farm_.save_chip_chain(0, checkpoint.chain)
          : farm_.save_chip(0, checkpoint.chip);
  if (saved.ok()) {
    std::lock_guard<std::mutex> lock(tx_);
    (void)net::send_msg(sock_, checkpoint);
    (void)net::send_msg(sock_, net::GoodbyeMsg{});
  }
  cv_.notify_all();
  sock_.shutdown_both();  // unblocks run()'s read loop
}

bool WorkerDaemon::send_result(std::uint64_t job_id,
                               scaling::JobOutcome outcome) {
  net::JobResultMsg result;
  result.id = job_id;
  result.outcome = std::move(outcome);
  result.outcome.id = job_id;
  {
    std::lock_guard<std::mutex> lock(tx_);
    const Status sent = net::send_msg(sock_, result);
    if (!sent.ok()) {
      std::lock_guard<std::mutex> state(mu_);
      stopping_ = true;
      cv_.notify_all();
      return false;
    }
  }
  std::uint64_t sent_so_far = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sent_so_far = ++served_;
  }
  if (options_.crash_after_jobs > 0 &&
      sent_so_far >= options_.crash_after_jobs) {
    // Fault injection: die like a killed process — no goodbye, no
    // drain, the connection just stops. The hub's health loop (or the
    // immediate read error) requeues whatever we still held.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      exit_ = Exit::kCrashed;
    }
    sock_.shutdown_both();
    cv_.notify_all();
    return false;
  }
  return true;
}

void WorkerDaemon::heartbeat_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.heartbeat_ms),
                   [this] { return stopping_; });
      if (stopping_) return;
    }
    net::HeartbeatMsg beat;
    {
      std::lock_guard<std::mutex> lock(mu_);
      beat.queue_depth = pending_.size();
      beat.served = served_;
    }
    std::lock_guard<std::mutex> lock(tx_);
    // Best-effort: a failed send means the socket is down and the run()
    // loop is about to find out.
    (void)net::send_msg(sock_, beat);
  }
}

}  // namespace vlsip::daemon
