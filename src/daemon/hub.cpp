#include "daemon/hub.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace vlsip::daemon {

namespace {

std::uint64_t ms_since(std::chrono::steady_clock::time_point epoch) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace

Hub::Hub(HubOptions options) : options_(std::move(options)) {}

Hub::~Hub() { stop(); }

void Hub::trace(const std::string& category, std::int64_t id,
                std::string message) {
  if (options_.trace == nullptr || !options_.trace->enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  options_.trace->event(ms_since(epoch_), obs::Layer::kNet, category, id,
                        std::move(message));
}

Status Hub::start() {
  auto listener = net::Listener::listen(options_.listen);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  address_ = listener_.address();
  epoch_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  health_thread_ = std::thread([this] { health_loop(); });
  return Status::Ok();
}

void Hub::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stopping_; });
}

void Hub::stop() {
  std::vector<ConnPtr> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    conns = all_conns_;
  }
  stop_cv_.notify_all();
  dispatch_cv_.notify_all();
  listener_.close();  // unblocks accept()
  for (const auto& conn : conns) conn->sock.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  for (const auto& conn : conns) {
    if (conn->rx.joinable()) conn->rx.join();
    conn->sock.close();
  }
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  all_conns_.clear();
  workers_.clear();
  clients_.clear();
}

std::size_t Hub::live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

std::size_t Hub::live_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clients_.size();
}

obs::MetricRegistry Hub::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::MetricRegistry out = metrics_;
  out.gauge("hub.live_workers") = static_cast<double>(workers_.size());
  out.gauge("hub.live_clients") = static_cast<double>(clients_.size());
  out.gauge("hub.jobs_pending") = static_cast<double>(jobs_.size());
  return out;
}

std::string Hub::metrics_json() const {
  const obs::MetricRegistry snap = metrics();
  std::vector<std::pair<std::uint64_t, std::string>> worker_rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, conn] : workers_) {
      std::ostringstream row;
      obs::JsonWriter w(row);
      w.begin_object();
      w.field("id", id);
      w.field("name", conn->name);
      w.field("draining", conn->draining);
      w.field("in_flight", static_cast<std::uint64_t>(conn->in_flight));
      w.field("served", conn->served);
      w.end_object();
      worker_rows.emplace_back(id, row.str());
    }
  }
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", obs::kJsonSchemaVersion);
  w.field("report", "hub-metrics");
  w.field("address", address_);
  w.key("workers");
  w.begin_array();
  for (const auto& [id, row] : worker_rows) w.raw(row);
  w.end_array();
  w.key("metrics");
  snap.write_json(w);
  w.end_object();
  return out.str();
}

std::vector<std::uint8_t> Hub::last_migration() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_migration_;
}

void Hub::accept_loop() {
  for (;;) {
    auto sock = listener_.accept();
    if (!sock.ok()) return;  // listener closed = stopping
    auto conn = handshake(std::move(*sock));
    if (!conn.ok()) continue;  // handshake already answered with Error
    ConnPtr c = *conn;
    c->rx = std::thread([this, c] { serve_conn(c); });
  }
}

StatusOr<Hub::ConnPtr> Hub::handshake(net::Socket sock) {
  auto frame = net::read_frame(sock, options_.max_payload);
  if (!frame.ok()) {
    net::ErrorMsg err;
    err.code = static_cast<std::int32_t>(frame.status().code());
    err.message = frame.status().message();
    (void)net::send_msg(sock, err);
    return frame.status();
  }
  auto hello = net::decode_payload<net::HelloMsg>(*frame);
  if (!hello.ok()) {
    net::ErrorMsg err;
    err.code = static_cast<std::int32_t>(hello.status().code());
    err.message = hello.status().message();
    (void)net::send_msg(sock, err);
    return hello.status();
  }

  auto conn = std::make_shared<Conn>();
  conn->role = hello->role;
  conn->name = hello->name;
  conn->sock = std::move(sock);
  conn->last_beat = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status(StatusCode::kUnavailable, "hub stopping");
    conn->id = next_peer_id_++;
    all_conns_.push_back(conn);
    if (conn->role == net::Role::kWorker) {
      workers_[conn->id] = conn;
      metrics_.counter("hub.workers_joined")++;
    } else {
      clients_[conn->id] = conn;
      metrics_.counter("hub.clients_joined")++;
    }
  }

  net::HelloAckMsg ack;
  ack.proto_version =
      std::min<std::uint32_t>(hello->proto_version, net::kProtoVersion);
  ack.peer_id = conn->id;
  const Status sent = send_to(conn, ack);
  if (!sent.ok()) {
    if (conn->role == net::Role::kWorker) {
      on_worker_down(conn, "hello ack send failed");
    } else {
      on_client_down(conn);
    }
    return sent;
  }
  trace("session",
        static_cast<std::int64_t>(conn->id),
        std::string(conn->role == net::Role::kWorker ? "worker" : "client") +
            " \"" + conn->name + "\" joined");
  dispatch_cv_.notify_all();  // a new worker may unblock the dispatcher
  return conn;
}

void Hub::serve_conn(ConnPtr conn) {
  if (conn->role == net::Role::kWorker) {
    serve_worker(conn);
  } else {
    serve_client(conn);
  }
}

void Hub::serve_worker(ConnPtr conn) {
  std::string down_reason = "connection closed";
  for (;;) {
    auto frame = net::read_frame(conn->sock, options_.max_payload);
    if (!frame.ok()) {
      down_reason = frame.status().message();
      break;
    }
    switch (frame->type) {
      case net::MsgType::kHeartbeat: {
        auto beat = net::decode_payload<net::HeartbeatMsg>(*frame);
        if (!beat.ok()) break;  // malformed heartbeat: ignore, stay alive
        std::lock_guard<std::mutex> lock(mu_);
        conn->last_beat = std::chrono::steady_clock::now();
        conn->served = beat->served;
        metrics_.counter("hub.heartbeats")++;
        break;
      }
      case net::MsgType::kJobResult: {
        auto result = net::decode_payload<net::JobResultMsg>(*frame);
        if (!result.ok()) {
          down_reason = "undecodable result: " + result.status().message();
          goto done;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          conn->last_beat = std::chrono::steady_clock::now();
          if (conn->in_flight > 0) --conn->in_flight;
        }
        dispatch_cv_.notify_all();
        forward_result(std::move(*result));
        break;
      }
      case net::MsgType::kCheckpoint: {
        auto checkpoint = net::decode_payload<net::CheckpointMsg>(*frame);
        if (!checkpoint.ok()) {
          down_reason =
              "undecodable checkpoint: " + checkpoint.status().message();
          goto done;
        }
        handle_checkpoint(conn, std::move(*checkpoint));
        break;
      }
      case net::MsgType::kGoodbye:
        down_reason = "goodbye";
        goto done;
      default: {
        net::ErrorMsg err;
        err.code = static_cast<std::int32_t>(StatusCode::kProtocolError);
        err.message = "unexpected frame type " +
                      std::to_string(static_cast<int>(frame->type)) +
                      " on a worker connection";
        (void)send_to(conn, err);
        break;
      }
    }
  }
done:
  on_worker_down(conn, down_reason);
}

void Hub::serve_client(ConnPtr conn) {
  for (;;) {
    auto frame = net::read_frame(conn->sock, options_.max_payload);
    if (!frame.ok()) break;
    switch (frame->type) {
      case net::MsgType::kSubmitJob: {
        auto submit = net::decode_payload<net::SubmitJobMsg>(*frame);
        if (!submit.ok()) {
          net::ErrorMsg err;
          err.code = static_cast<std::int32_t>(submit.status().code());
          err.message = submit.status().message();
          (void)send_to(conn, err);
          break;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          const std::uint64_t id = next_job_id_++;
          JobEntry& entry = jobs_[id];
          entry.job = std::move(submit->job);
          entry.client_id = conn->id;
          entry.seq = submit->seq;
          dispatch_queue_.push_back(id);
          metrics_.counter("hub.jobs_submitted")++;
        }
        dispatch_cv_.notify_all();
        break;
      }
      case net::MsgType::kDrainWorker: {
        auto drain = net::decode_payload<net::DrainWorkerMsg>(*frame);
        if (!drain.ok()) break;
        handle_drain_request(drain->worker_id);
        break;
      }
      case net::MsgType::kMetricsRequest: {
        net::MetricsReportMsg report;
        report.json = metrics_json();
        (void)send_to(conn, report);
        break;
      }
      case net::MsgType::kShutdown:
        begin_shutdown();
        return;  // stop() joins this thread; connection closes there
      case net::MsgType::kGoodbye:
        on_client_down(conn);
        return;
      default: {
        net::ErrorMsg err;
        err.code = static_cast<std::int32_t>(StatusCode::kProtocolError);
        err.message = "unexpected frame type " +
                      std::to_string(static_cast<int>(frame->type)) +
                      " on a client connection";
        (void)send_to(conn, err);
        break;
      }
    }
  }
  on_client_down(conn);
}

void Hub::dispatch_loop() {
  for (;;) {
    std::uint64_t job_id = 0;
    ConnPtr worker;
    net::AssignJobMsg assign;
    {
      std::unique_lock<std::mutex> lock(mu_);
      dispatch_cv_.wait(lock, [this, &worker] {
        if (stopping_) return true;
        if (dispatch_queue_.empty()) return false;
        // Round-robin over live, non-draining workers with window room.
        // std::map iteration keyed by id gives a stable order; rotation
        // comes from the window filling up.
        for (const auto& [id, conn] : workers_) {
          if (conn->alive && !conn->draining &&
              conn->in_flight < options_.assign_window) {
            worker = conn;
            return true;
          }
        }
        return false;
      });
      if (stopping_) return;
      job_id = dispatch_queue_.front();
      dispatch_queue_.pop_front();
      auto it = jobs_.find(job_id);
      if (it == jobs_.end()) continue;  // already answered elsewhere
      it->second.worker_id = worker->id;
      ++worker->in_flight;
      assign.job_id = job_id;
      assign.job = it->second.job;
      metrics_.counter("hub.jobs_dispatched")++;
    }
    const Status sent = send_to(worker, assign);
    if (!sent.ok()) {
      on_worker_down(worker, "assign send failed: " + sent.message());
    }
    worker.reset();
  }
}

void Hub::health_loop() {
  for (;;) {
    std::vector<ConnPtr> dead;
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.health_interval_ms),
                        [this] { return stopping_; });
      if (stopping_) return;
      const auto now = std::chrono::steady_clock::now();
      const auto timeout =
          std::chrono::milliseconds(options_.heartbeat_timeout_ms);
      for (const auto& [id, conn] : workers_) {
        if (conn->alive && now - conn->last_beat > timeout) {
          dead.push_back(conn);
        }
      }
    }
    for (const auto& conn : dead) {
      // Shut the socket down so the rx thread unblocks; it then runs
      // on_worker_down, but call it here too so the requeue does not
      // wait on a blocked recv.
      conn->sock.shutdown_both();
      on_worker_down(conn, "heartbeat timeout");
    }
  }
}

void Hub::on_worker_down(const ConnPtr& conn, const std::string& reason) {
  std::vector<std::uint64_t> requeue;
  bool was_draining = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!conn->alive) return;
    conn->alive = false;
    was_draining = conn->draining;
    workers_.erase(conn->id);
    for (auto& [id, entry] : jobs_) {
      if (entry.worker_id == conn->id) {
        entry.worker_id = 0;
        requeue.push_back(id);
      }
    }
    // Front of the queue, ascending id: requeued work goes out first
    // and in the order it was admitted.
    for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
      dispatch_queue_.push_front(*it);
    }
    conn->in_flight = 0;
    if (was_draining) {
      metrics_.counter("hub.workers_drained")++;
    } else {
      metrics_.counter("hub.workers_dead")++;
    }
    metrics_.counter("hub.jobs_requeued") += requeue.size();
  }
  conn->sock.shutdown_both();
  trace("session", static_cast<std::int64_t>(conn->id),
        "worker down (" + reason + "), " + std::to_string(requeue.size()) +
            " jobs requeued");
  if (!requeue.empty() || was_draining) dispatch_cv_.notify_all();
}

void Hub::on_client_down(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!conn->alive) return;
    conn->alive = false;
    clients_.erase(conn->id);
  }
  conn->sock.shutdown_both();
  trace("session", static_cast<std::int64_t>(conn->id), "client left");
}

void Hub::forward_result(net::JobResultMsg result) {
  ConnPtr client;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(result.id);
    if (it == jobs_.end()) {
      // Already answered — a worker served it, died before the hub saw
      // the result, and the requeued copy finished first (or vice
      // versa). Exactly-once delivery to the client is the hub's call.
      metrics_.counter("hub.duplicate_results")++;
      return;
    }
    seq = it->second.seq;
    auto client_it = clients_.find(it->second.client_id);
    if (client_it != clients_.end()) client = client_it->second;
    jobs_.erase(it);
    metrics_.counter("hub.jobs_completed")++;
    // Energy bills ride the result message; the hub aggregates the
    // fleet-wide meter. Presence-gated: energy-off farms bill 0 fJ and
    // never materialise the counter.
    if (result.outcome.energy_fj > 0) {
      metrics_.counter("hub.energy_fj") += result.outcome.energy_fj;
    }
  }
  if (!client) return;  // client left; the result has no audience
  result.id = seq;
  result.outcome.id = seq;
  const Status sent = send_to(client, result);
  if (!sent.ok()) on_client_down(client);
}

void Hub::handle_drain_request(std::uint64_t worker_id) {
  ConnPtr worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.find(worker_id);
    if (it == workers_.end()) return;
    worker = it->second;
    worker->draining = true;
    metrics_.counter("hub.drains_requested")++;
  }
  trace("migrate", static_cast<std::int64_t>(worker_id), "drain requested");
  const Status sent = send_to(worker, net::DrainMsg{});
  if (!sent.ok()) on_worker_down(worker, "drain send failed");
}

void Hub::handle_checkpoint(const ConnPtr& from, net::CheckpointMsg msg) {
  ConnPtr peer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, conn] : workers_) {
      if (id != from->id && conn->alive && !conn->draining) {
        peer = conn;
        break;
      }
    }
    metrics_.counter("hub.checkpoints_received")++;
    std::size_t state_bytes = msg.chip.bytes().size();
    for (const auto& link : msg.chain) state_bytes += link.size();
    metrics_.counter("hub.checkpoint_bytes") += state_bytes;
    if (!msg.chain.empty()) {
      metrics_.counter("hub.checkpoint_chains")++;
      metrics_.counter("hub.checkpoint_chain_links") += msg.chain.size();
    }
  }
  if (peer) {
    if (options_.corrupt_migration_chain && !msg.chain.empty()) {
      auto& bytes = msg.chain.back().bytes();
      if (!bytes.empty()) bytes[bytes.size() / 2] ^= 0x40;
    }
    net::ResumeMsg resume;
    resume.checkpoint = std::move(msg);
    {
      // Record the exact blob the peer replays, for the byte-identity
      // proof: replay_from(checkpoint) locally must equal the peer's
      // results.
      snapshot::Snapshot payload;
      snapshot::Writer w(payload);
      resume.checkpoint.save(w);
      std::lock_guard<std::mutex> lock(mu_);
      last_migration_ = payload.bytes();
      for (const std::uint64_t id : resume.checkpoint.job_ids) {
        auto it = jobs_.find(id);
        if (it != jobs_.end()) it->second.worker_id = peer->id;
      }
      peer->in_flight += resume.checkpoint.job_ids.size();
      metrics_.counter("hub.migrations")++;
      metrics_.counter("hub.jobs_migrated") +=
          resume.checkpoint.job_ids.size();
    }
    trace("migrate", static_cast<std::int64_t>(from->id),
          std::to_string(resume.checkpoint.job_ids.size()) +
              " jobs migrated to worker " + std::to_string(peer->id));
    const Status sent = send_to(peer, resume);
    if (!sent.ok()) {
      // The peer died mid-transfer; its own death path requeues the
      // jobs just reassigned to it.
      on_worker_down(peer, "resume send failed: " + sent.message());
    }
  } else {
    // No live peer: take the jobs back onto the hub's own queue. They
    // lose the checkpointed chip state but not their place in line.
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t requeued = 0;
    for (auto it = msg.job_ids.rbegin(); it != msg.job_ids.rend(); ++it) {
      auto entry = jobs_.find(*it);
      if (entry == jobs_.end()) continue;
      entry->second.worker_id = 0;
      dispatch_queue_.push_front(*it);
      ++requeued;
    }
    metrics_.counter("hub.jobs_requeued") += requeued;
    dispatch_cv_.notify_all();
  }
}

void Hub::begin_shutdown() {
  std::vector<ConnPtr> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    for (const auto& [id, conn] : workers_) workers.push_back(conn);
  }
  for (const auto& conn : workers) (void)send_to(conn, net::ShutdownMsg{});
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  dispatch_cv_.notify_all();
}

}  // namespace vlsip::daemon
