// Hub — admission and routing for the distributed farm.
//
// The hub is the only listening process: workers and clients both dial
// in and identify themselves in the Hello. Clients stream SubmitJob;
// the hub assigns each job a global id, parks it in the job table, and
// a dispatcher round-robins it to a live worker with a free slot in
// its in-flight window. JobResults flow back keyed by global id, get
// re-keyed to the owning client's seq, and are forwarded.
//
// Liveness: workers heartbeat on a timer; a health loop declares any
// worker silent past `heartbeat_timeout_ms` dead, closes it, and
// requeues its in-flight jobs at the *front* of the dispatch queue —
// a job handed to the farm is never lost to a process death, it is
// served again elsewhere. Results for a job that was requeued after
// its first serve already completed (crash between serve and send on
// our side of the race) are deduplicated by id at the hub.
//
// Drain/migration: DrainWorker marks the worker draining (no new
// assignments), sends it Drain; the worker finishes what its farm
// already admitted, then ships a CheckpointMsg — its chip's .vsnap
// plus a ReplayLog of the jobs it never started. The hub forwards the
// blob verbatim to a live peer as Resume (recording the bytes for the
// byte-identity proof in the tests); the peer replays from the exact
// chip state and answers ordinary JobResults. With no peer available
// the hub falls back to requeueing the transferred jobs itself.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace vlsip::daemon {

struct HubOptions {
  /// Listen address: "host:port" (port 0 = ephemeral, see
  /// Hub::address()) or "unix:/path".
  std::string listen = "127.0.0.1:0";
  /// A worker silent longer than this is dead; its in-flight jobs are
  /// requeued.
  std::uint64_t heartbeat_timeout_ms = 2000;
  /// Health-loop poll period.
  std::uint64_t health_interval_ms = 100;
  /// Max unacknowledged assignments per worker (the in-flight window).
  std::size_t assign_window = 8;
  /// Frame payload cap enforced on every receive.
  std::size_t max_payload = net::kMaxFramePayload;
  /// Borrowed structured-event sink (Layer::kNet session events);
  /// null = no events. The hub serialises its own writes.
  obs::TraceSink* trace = nullptr;
  /// Fault injection for the tests: flip one byte in the newest chain
  /// link of every forwarded migration, so the receiving worker's
  /// materialize fails and its requeue-as-fresh fallback must carry
  /// the jobs. Never set outside tests.
  bool corrupt_migration_chain = false;
};

class Hub {
 public:
  explicit Hub(HubOptions options = {});
  ~Hub();

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Binds, listens, and starts the accept/dispatch/health threads.
  Status start();

  /// Blocks until a client's Shutdown request (or stop()) ends the hub.
  void wait();

  /// Stops listening, closes every connection, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Resolved listen address ("127.0.0.1:<real port>" after an
  /// ephemeral bind). Valid after start().
  const std::string& address() const { return address_; }

  std::size_t live_workers() const;
  std::size_t live_clients() const;

  /// Counter snapshot ("hub." names) plus per-worker liveness gauges.
  obs::MetricRegistry metrics() const;

  /// The metrics as a complete JSON document (kJsonSchemaVersion
  /// leading) — what MetricsRequest answers with.
  std::string metrics_json() const;

  /// The last CheckpointMsg payload forwarded to a peer, as raw
  /// snapshot bytes (empty if no migration happened yet). Test
  /// introspection: replaying these locally must match the peer's
  /// replayed outcomes byte for byte.
  std::vector<std::uint8_t> last_migration() const;

 private:
  /// One accepted connection (worker or client) and its reader thread.
  struct Conn {
    std::uint64_t id = 0;
    net::Role role = net::Role::kClient;
    std::string name;
    net::Socket sock;
    std::thread rx;
    /// Serialises writers (dispatcher, forwarders) on this socket.
    std::mutex tx;
    // --- worker state, guarded by Hub::mu_ ---
    std::chrono::steady_clock::time_point last_beat;
    bool alive = true;
    bool draining = false;
    std::size_t in_flight = 0;
    std::uint64_t served = 0;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// A job the hub has accepted but not yet delivered a result for.
  struct JobEntry {
    scaling::Job job;
    /// Owning client and its seq (results are re-keyed to this).
    std::uint64_t client_id = 0;
    std::uint64_t seq = 0;
    /// Worker currently holding it; 0 = waiting in dispatch_queue_.
    std::uint64_t worker_id = 0;
  };

  void accept_loop();
  void dispatch_loop();
  void health_loop();
  void serve_conn(ConnPtr conn);
  void serve_worker(ConnPtr conn);
  void serve_client(ConnPtr conn);

  /// Handshake: read Hello, answer HelloAck (or Error), register.
  StatusOr<ConnPtr> handshake(net::Socket sock);

  /// Marks the worker dead, requeues its in-flight jobs, notifies the
  /// dispatcher. Safe to call twice (second call is a no-op).
  void on_worker_down(const ConnPtr& conn, const std::string& reason);
  void on_client_down(const ConnPtr& conn);

  /// Routes a worker's JobResult back to the owning client.
  void forward_result(net::JobResultMsg result);

  /// Handles a drained worker's CheckpointMsg: forward to a peer as
  /// Resume, or requeue the jobs locally when no peer is live.
  void handle_checkpoint(const ConnPtr& from, net::CheckpointMsg msg);

  void handle_drain_request(std::uint64_t worker_id);
  void begin_shutdown();

  template <typename M>
  Status send_to(const ConnPtr& conn, const M& msg) {
    std::lock_guard<std::mutex> lock(conn->tx);
    return net::send_msg(conn->sock, msg);
  }

  /// Layer::kNet structured event; cycle = ms since hub start. No-op
  /// without a sink.
  void trace(const std::string& category, std::int64_t id,
             std::string message);

  HubOptions options_;
  net::Listener listener_;
  std::string address_;

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;

  std::uint64_t next_peer_id_ = 1;
  std::uint64_t next_job_id_ = 1;
  std::map<std::uint64_t, ConnPtr> workers_;
  std::map<std::uint64_t, ConnPtr> clients_;
  /// Every connection ever accepted; joined in stop() (maps above only
  /// hold the live ones).
  std::vector<ConnPtr> all_conns_;
  std::map<std::uint64_t, JobEntry> jobs_;
  std::deque<std::uint64_t> dispatch_queue_;
  obs::MetricRegistry metrics_;
  std::vector<std::uint8_t> last_migration_;
  std::chrono::steady_clock::time_point epoch_;

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread health_thread_;
};

}  // namespace vlsip::daemon
