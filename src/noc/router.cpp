#include "noc/router.hpp"

#include "common/require.hpp"
#include "common/simd.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::noc {

Port opposite(Port p) {
  switch (p) {
    case Port::kNorth: return Port::kSouth;
    case Port::kEast: return Port::kWest;
    case Port::kSouth: return Port::kNorth;
    case Port::kWest: return Port::kEast;
    case Port::kLocal: return Port::kLocal;
  }
  return Port::kLocal;
}

Router::Router(int x, int y, RouterConfig config)
    : x_(x), y_(y), config_(config) {
  VLSIP_REQUIRE(config.queue_depth >= 1 && config.queue_depth <= 0xFFFF,
                "queue depth must be in [1, 65535]");
  VLSIP_REQUIRE(config.virtual_channels >= 1 &&
                    config.virtual_channels <= kMaxVcs,
                "virtual channels must be in [1, kMaxVcs]");
  rings_.resize(static_cast<std::size_t>(kPortCount) *
                config.virtual_channels * config.queue_depth);
  head_.fill(0);
  len_.fill(0);
  owner_.fill(-1);
  rr_.fill(0);
}

int Router::queue_index(Port p, int vc) const {
  return static_cast<int>(p) * config_.virtual_channels + vc;
}

int Router::lock_index(Port out, int vc) const {
  return static_cast<int>(out) * config_.virtual_channels + vc;
}

bool Router::can_accept(Port p, int vc) const {
  VLSIP_REQUIRE(vc >= 0 && vc < config_.virtual_channels,
                "vc out of range");
  return len_[queue_index(p, vc)] < config_.queue_depth;
}

std::uint32_t Router::accept_mask(Port p) const {
  // Queue indices for port p are contiguous (p * vcs + vc), so the
  // whole mask is one lanewise compare against the depth bound.
  return simd::lt_mask_u16(
      len_.data() + static_cast<int>(p) * config_.virtual_channels,
      static_cast<std::size_t>(config_.virtual_channels),
      static_cast<std::uint16_t>(config_.queue_depth));
}

void Router::accept(Port p, const Flit& flit) {
  VLSIP_REQUIRE(flit.vc < config_.virtual_channels, "flit vc out of range");
  VLSIP_REQUIRE(can_accept(p, flit.vc), "input queue overflow");
  const int q = queue_index(p, flit.vc);
  const int slot = (head_[q] + len_[q]) % config_.queue_depth;
  rings_[static_cast<std::size_t>(q) * config_.queue_depth + slot] = flit;
  ++len_[q];
  ++total_queued_;
}

Port Router::route(const Flit& head) const {
  // Dimension-ordered XY routing: resolve X first, then Y, then eject.
  if (head.dest_x > x_) return Port::kEast;
  if (head.dest_x < x_) return Port::kWest;
  if (head.dest_y > y_) return Port::kSouth;  // +y is "down" (south)
  if (head.dest_y < y_) return Port::kNorth;
  return Port::kLocal;
}

void Router::compute_into(const ReadyMask& downstream_ready,
                          std::vector<Transfer>& transfers) {
  const int vcs = config_.virtual_channels;
  // Flit-ring occupancy mask: bit q set = input queue q non-empty. One
  // SIMD compare over the contiguous len_ lanes replaces the per-queue
  // length loads in both passes, and a fully drained router (the common
  // case at scale — most of a 1024-cluster mesh is quiescent between
  // worms) exits before touching the arbitration loops at all.
  const std::uint32_t occ = simd::nonzero_mask_u16(
      len_.data(), static_cast<std::size_t>(kPortCount) * vcs);
  if (occ == 0) return;
  // One flit per output port per cycle (one physical link each).
  std::array<bool, kPortCount> link_used{};

  // Pass 1: locked paths — body/tail flits of in-flight worms have
  // priority so worms drain. Walk output VCs round-robin-ish (by index;
  // fairness among VCs comes from pass order stability being broken by
  // tail releases).
  for (int out = 0; out < kPortCount; ++out) {
    for (int ovc = 0; ovc < vcs && !link_used[out]; ++ovc) {
      const std::int8_t own = owner_[lock_index(static_cast<Port>(out), ovc)];
      if (own < 0) continue;
      const Port in = static_cast<Port>(own / vcs);
      const int ivc = own % vcs;
      const int q = queue_index(in, ivc);
      if (!(occ & (1u << q))) continue;
      const Flit& f = front(q);
      if (f.is_head()) continue;  // next packet; must re-arbitrate
      if (!(downstream_ready[out] & (1u << ovc))) continue;
      Flit sent = f;
      sent.vc = static_cast<std::uint8_t>(ovc);
      transfers.push_back(
          Transfer{in, ivc, static_cast<Port>(out), ovc, sent});
      link_used[out] = true;
    }
  }

  // Pass 2: head flits arbitrate for a free output VC on their routed
  // port, round-robin over input (port, vc) pairs for fairness.
  const int inputs = kPortCount * vcs;
  for (int out = 0; out < kPortCount; ++out) {
    if (link_used[out]) continue;
    for (int k = 0; k < inputs; ++k) {
      const int slot = (rr_[out] + k) % inputs;
      const Port in = static_cast<Port>(slot / vcs);
      const int ivc = slot % vcs;
      const int q = queue_index(in, ivc);
      if (!(occ & (1u << q))) continue;
      const Flit& f = front(q);
      if (!f.is_head()) continue;
      if (route(f) != static_cast<Port>(out)) continue;
      // Allocate the lowest free + ready output VC.
      int ovc = -1;
      for (int v = 0; v < vcs; ++v) {
        if (owner_[lock_index(static_cast<Port>(out), v)] < 0 &&
            (downstream_ready[out] & (1u << v))) {
          ovc = v;
          break;
        }
      }
      if (ovc < 0) continue;
      Flit sent = f;
      sent.vc = static_cast<std::uint8_t>(ovc);
      transfers.push_back(
          Transfer{in, ivc, static_cast<Port>(out), ovc, sent});
      link_used[out] = true;
      rr_[out] = (slot + 1) % inputs;
      break;
    }
  }
}

std::vector<Router::Transfer> Router::compute(
    const ReadyMask& downstream_ready) {
  std::vector<Transfer> transfers;
  compute_into(downstream_ready, transfers);
  return transfers;
}

void Router::commit(const Transfer* transfers, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const Transfer& t = transfers[i];
    const int q = queue_index(t.in, t.in_vc);
    VLSIP_INVARIANT(len_[q] != 0, "commit of empty queue");
    pop(q);
    std::int8_t& own = owner_[lock_index(t.out, t.out_vc)];
    if (t.flit.is_head()) {
      own = static_cast<std::int8_t>(queue_index(t.in, t.in_vc));
    }
    if (t.flit.is_tail()) own = -1;
  }
}

void Router::commit(const std::vector<Transfer>& transfers) {
  commit(transfers.data(), transfers.size());
}

std::size_t Router::queued(Port p, int vc) const {
  return len_[queue_index(p, vc)];
}

std::optional<std::pair<Port, int>> Router::output_owner(Port out,
                                                         int out_vc) const {
  const std::int8_t own = owner_[lock_index(out, out_vc)];
  if (own < 0) return std::nullopt;
  return std::make_pair(static_cast<Port>(own / config_.virtual_channels),
                        own % config_.virtual_channels);
}

void save_flit(snapshot::Writer& w, const Flit& flit) {
  w.u8(static_cast<std::uint8_t>(flit.kind));
  w.u32(flit.packet);
  w.u8(flit.vc);
  w.u32(flit.dest_x);
  w.u32(flit.dest_y);
  w.u8(static_cast<std::uint8_t>(flit.pkind));
  w.u64(flit.payload);
}

Flit restore_flit(snapshot::Reader& r) {
  Flit flit;
  flit.kind = static_cast<FlitKind>(r.u8());
  flit.packet = r.u32();
  flit.vc = r.u8();
  flit.dest_x = static_cast<std::uint16_t>(r.u32());
  flit.dest_y = static_cast<std::uint16_t>(r.u32());
  flit.pkind = static_cast<PacketKind>(r.u8());
  flit.payload = r.u64();
  return flit;
}

void Router::save(snapshot::Writer& w) const {
  w.section("noc.router");
  w.u64(rings_.size());
  for (const auto& flit : rings_) save_flit(w, flit);
  for (const auto h : head_) w.u32(h);
  for (const auto l : len_) w.u32(l);
  w.u64(total_queued_);
  for (const auto o : owner_) w.i32(o);
  for (const auto p : rr_) w.i32(p);
}

void Router::restore(snapshot::Reader& r) {
  r.section("noc.router");
  const std::uint64_t n = r.u64();
  VLSIP_REQUIRE(n == rings_.size(), "snapshot router ring arena mismatch");
  for (auto& flit : rings_) flit = restore_flit(r);
  for (auto& h : head_) h = static_cast<std::uint16_t>(r.u32());
  for (auto& l : len_) l = static_cast<std::uint16_t>(r.u32());
  total_queued_ = static_cast<std::size_t>(r.u64());
  for (auto& o : owner_) o = static_cast<std::int8_t>(r.i32());
  for (auto& p : rr_) p = r.i32();
}

}  // namespace vlsip::noc
