// The chip-wide router fabric: one router per cluster, mesh-connected,
// with packet-level injection/delivery on the local ports.
//
// The fabric is cycle-stepped. Per cycle every router decides its
// transfers from pre-cycle state, then all transfers commit — flits move
// at most one hop per cycle and no router sees another's same-cycle
// update (two-phase simulation).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "noc/router.hpp"

namespace vlsip::noc {

struct Packet {
  std::uint32_t id = 0;
  std::uint16_t src_x = 0;
  std::uint16_t src_y = 0;
  std::uint16_t dst_x = 0;
  std::uint16_t dst_y = 0;
  PacketKind kind = PacketKind::kData;
  std::vector<std::uint64_t> payload;  // one flit per word (>= 1 flit total)

  std::uint64_t inject_cycle = 0;   // filled by the fabric
  std::uint64_t deliver_cycle = 0;  // filled on delivery
  int hops() const;
};

class NocFabric {
 public:
  NocFabric(int width, int height, RouterConfig router_config = {});

  int width() const { return width_; }
  int height() const { return height_; }
  std::uint64_t now() const { return now_; }

  /// Queues a packet for injection at its source router's local port.
  /// Returns the packet id.
  std::uint32_t inject(Packet packet);

  /// Advances one cycle. Returns the number of flits moved.
  std::size_t step();

  /// Runs until all injected packets are delivered or `max_cycles`
  /// elapse; returns true if the network drained.
  bool run_until_drained(std::uint64_t max_cycles);

  /// Packets fully received at their destination local ports, in
  /// delivery order. Caller may take them.
  std::vector<Packet>& delivered() { return delivered_; }

  /// Delivery callback (invoked when a packet completes, before it is
  /// appended to delivered()).
  void set_on_deliver(std::function<void(const Packet&)> cb) {
    on_deliver_ = std::move(cb);
  }

  bool idle() const;

  /// Latency statistics over delivered packets (inject -> deliver).
  RunningStats latency_stats() const;

  const Router& router(int x, int y) const;

  /// Flits carried by the directed link from (x,y) toward `out`
  /// (kLocal = ejections at (x,y)).
  std::uint64_t link_flits(int x, int y, Port out) const;

  /// Busiest link's flit count (congestion indicator).
  std::uint64_t peak_link_flits() const;

  /// ASCII heat map of horizontal/vertical link loads (two digits per
  /// link, saturating at 99).
  std::string render_link_heatmap() const;

 private:
  struct Reassembly {
    Packet packet;
    bool head_seen = false;
  };

  Router& router_mut(int x, int y);
  std::size_t index(int x, int y) const;
  /// Converts the next pending packet at (x,y) into flits if the local
  /// input queue has room.
  void feed_injection(int x, int y);

  int width_;
  int height_;
  RouterConfig router_config_;
  std::vector<Router> routers_;
  std::uint64_t now_ = 0;
  std::uint32_t next_packet_id_ = 1;

  /// In-progress flit feeds, one FIFO per (node, injection VC) so
  /// packets on different VCs do not serialise at the source.
  std::map<std::size_t, std::deque<Flit>> feeding_;
  /// In-flight reassembly at destinations, by packet id.
  std::map<std::uint32_t, Reassembly> rx_;
  /// Source copy kept to fill src/inject metadata on delivery.
  std::map<std::uint32_t, Packet> in_flight_;

  std::vector<Packet> delivered_;
  std::function<void(const Packet&)> on_deliver_;
  /// link_flits_[(y*width + x) * kPortCount + out]
  std::vector<std::uint64_t> link_flits_;
};

}  // namespace vlsip::noc
