// The chip-wide router fabric: one router per cluster, mesh-connected,
// with packet-level injection/delivery on the local ports.
//
// The fabric is cycle-stepped. Per cycle every router decides its
// transfers from pre-cycle state, then all transfers commit — flits move
// at most one hop per cycle and no router sees another's same-cycle
// update (two-phase simulation).
//
// Event-driven stepping: only routers that can possibly move a flit —
// those holding queued flits or being fed an injection — are computed
// each cycle. Routers enter the activity set when a flit is accepted
// into them and leave when they drain; an idle mesh costs nothing per
// cycle. Transfers are still computed from pre-cycle state and applied
// in ascending router index order, so the schedule (and the delivery
// order) is bit-identical to the dense every-router scan: a skipped
// router has no flits and would have produced no transfers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/activity_set.hpp"
#include "common/stats.hpp"
#include "costmodel/energy.hpp"
#include "noc/router.hpp"
#include "obs/metrics.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::noc {

struct Packet {
  std::uint32_t id = 0;
  std::uint16_t src_x = 0;
  std::uint16_t src_y = 0;
  std::uint16_t dst_x = 0;
  std::uint16_t dst_y = 0;
  PacketKind kind = PacketKind::kData;
  std::vector<std::uint64_t> payload;  // one flit per word (>= 1 flit total)

  std::uint64_t inject_cycle = 0;   // filled by the fabric
  std::uint64_t deliver_cycle = 0;  // filled on delivery
  int hops() const;
};

class NocFabric {
 public:
  NocFabric(int width, int height, RouterConfig router_config = {});

  int width() const { return width_; }
  int height() const { return height_; }
  std::uint64_t now() const { return now_; }

  /// Queues a packet for injection at its source router's local port.
  /// Returns the packet id.
  std::uint32_t inject(Packet packet);

  /// Advances one cycle. Returns the number of flits moved.
  std::size_t step();

  /// Runs until all injected packets are delivered or `max_cycles`
  /// elapse; returns true if the network drained.
  bool run_until_drained(std::uint64_t max_cycles);

  /// Packets fully received at their destination local ports, in
  /// delivery order. Caller may take them (which is why handing out
  /// this reference counts as a mutation for dirty_gen()).
  std::vector<Packet>& delivered() {
    mark_dirty();
    return delivered_;
  }

  /// Delivery callback (invoked when a packet completes, before it is
  /// appended to delivered()).
  void set_on_deliver(std::function<void(const Packet&)> cb) {
    on_deliver_ = std::move(cb);
  }

  /// O(1): no pending feeds, no queued flits, no undelivered packets.
  bool idle() const {
    return feed_nodes_.empty() && queued_flits_ == 0 && live_flows_ == 0;
  }

  /// Latency statistics over delivered packets (inject -> deliver).
  RunningStats latency_stats() const;

  /// Publishes fabric counters (packets, flit movement, lifetime flit
  /// latency — which survives callers taking delivered()) and
  /// point-in-time queue depth into `registry` under "<prefix>..."
  /// names — this layer's probe into the observability spine.
  void export_obs(obs::MetricRegistry& registry,
                  const std::string& prefix = "noc.") const;

  /// Folds the fabric's lifetime activity into `a` (energy spine):
  /// flit-hops moved and packets ejected — both serialized counters,
  /// identical across dense and event-driven stepping.
  void fold_energy(cost::EnergyActivity& a) const {
    a.units[cost::kEnergyNocFlit] += total_flits_moved_;
    a.units[cost::kEnergyNocDelivery] += total_delivered_;
  }

  const Router& router(int x, int y) const;

  /// Flits carried by the directed link from (x,y) toward `out`
  /// (kLocal = ejections at (x,y)).
  std::uint64_t link_flits(int x, int y, Port out) const;

  /// Busiest link's flit count (congestion indicator).
  std::uint64_t peak_link_flits() const;

  /// ASCII heat map of horizontal/vertical link loads (two digits per
  /// link, saturating at 99).
  std::string render_link_heatmap() const;

  /// Checkpoint codec: routers, injection queues, flow reassembly
  /// state, delivered packets and lifetime counters. The delivery
  /// callback is NOT serialized — re-install it after restore.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

  /// Monotonic mutation generation (see STopologyFabric::dirty_gen):
  /// bumped by inject/step/restore and by handing out the mutable
  /// delivered() buffer. Unchanged generation ⇒ unchanged serialised
  /// bytes, so incremental checkpoints can splice an idle fabric.
  std::uint64_t dirty_gen() const { return dirty_gen_; }

 private:
  /// One undelivered packet: the source metadata plus the destination's
  /// reassembly state. Slots are reused through a free list; packet id
  /// -> slot is a flat vector lookup.
  struct Flow {
    Packet packet;
    bool head_seen = false;
    bool live = false;
  };
  /// Pending injection flits for one (node, VC), consumed front-first.
  struct FeedQueue {
    std::vector<Flit> buf;
    std::size_t head = 0;
    bool empty() const { return head >= buf.size(); }
  };

  Router& router_mut(int x, int y);
  std::size_t index(int x, int y) const;
  void mark_dirty() { ++dirty_gen_; }
  /// Converts the next pending packet at node `node` into flits if the
  /// local input queue has room; returns true if flits remain pending.
  bool feed_injection(std::uint32_t node);

  int width_;
  int height_;
  RouterConfig router_config_;
  std::vector<Router> routers_;
  std::uint64_t now_ = 0;
  std::uint32_t next_packet_id_ = 1;

  /// In-progress flit feeds: feeds_[node * kMaxVcs + vc], one FIFO per
  /// (node, injection VC) so packets on different VCs do not serialise
  /// at the source. feed_nodes_ marks nodes with any pending feed.
  std::vector<FeedQueue> feeds_;
  ActivitySet feed_nodes_;
  /// Routers that may move a flit this cycle (queued or being fed).
  ActivitySet active_;

  std::vector<Flow> flows_;
  std::vector<std::uint32_t> flow_free_;
  std::vector<std::uint32_t> flow_slot_;  // [packet id] -> flows_ slot
  std::size_t live_flows_ = 0;
  /// Flits currently inside router input queues, fabric-wide.
  std::size_t queued_flits_ = 0;

  // step() scratch, reused across cycles.
  std::vector<std::uint32_t> step_nodes_;
  std::vector<std::uint32_t> feed_scratch_;
  std::vector<Router::Transfer> step_transfers_;
  /// (router index, begin offset into step_transfers_) per router that
  /// produced transfers; end offset = next entry's begin (or total).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> step_ranges_;

  std::vector<Packet> delivered_;
  std::function<void(const Packet&)> on_deliver_;
  /// Lifetime observability counters: unlike delivered_ (which callers
  /// may take()) these survive the whole fabric lifetime.
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_flits_moved_ = 0;
  RunningStats lifetime_latency_;
  /// link_flits_[(y*width + x) * kPortCount + out]
  std::vector<std::uint64_t> link_flits_;
  std::uint64_t dirty_gen_ = 1;
};

}  // namespace vlsip::noc
