#include "noc/noc_fabric.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/require.hpp"
#include "common/simd.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::noc {

int Packet::hops() const {
  return std::abs(static_cast<int>(dst_x) - static_cast<int>(src_x)) +
         std::abs(static_cast<int>(dst_y) - static_cast<int>(src_y));
}

NocFabric::NocFabric(int width, int height, RouterConfig router_config)
    : width_(width), height_(height), router_config_(router_config) {
  VLSIP_REQUIRE(width >= 1 && height >= 1, "fabric must be non-empty");
  const auto nodes = static_cast<std::size_t>(width) * height;
  routers_.reserve(nodes);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      routers_.emplace_back(x, y, router_config);
    }
  }
  feeds_.resize(nodes * kMaxVcs);
  feed_nodes_.reset(nodes);
  active_.reset(nodes);
  link_flits_.assign(nodes * kPortCount, 0);
}

std::size_t NocFabric::index(int x, int y) const {
  VLSIP_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
                "router coordinate out of range");
  return static_cast<std::size_t>(y) * width_ + x;
}

Router& NocFabric::router_mut(int x, int y) { return routers_[index(x, y)]; }

const Router& NocFabric::router(int x, int y) const {
  return routers_[index(x, y)];
}

std::uint32_t NocFabric::inject(Packet packet) {
  mark_dirty();
  VLSIP_REQUIRE(packet.src_x < width_ && packet.src_y < height_,
                "source out of range");
  VLSIP_REQUIRE(packet.dst_x < width_ && packet.dst_y < height_,
                "destination out of range");
  packet.id = next_packet_id_++;
  packet.inject_cycle = now_;

  // Flatten into flits: head, bodies, tail. Zero-payload packets are a
  // single head-tail flit. Packets rotate over the injection VCs so two
  // packets from one node do not serialise at the source.
  const auto node =
      static_cast<std::uint32_t>(index(packet.src_x, packet.src_y));
  const auto vc = static_cast<std::uint8_t>(
      packet.id % static_cast<std::uint32_t>(router_config_.virtual_channels));
  auto& feed = feeds_[static_cast<std::size_t>(node) * kMaxVcs + vc];
  if (feed.empty()) {
    feed.buf.clear();
    feed.head = 0;
  }
  Flit head;
  head.kind = packet.payload.empty() ? FlitKind::kHeadTail : FlitKind::kHead;
  head.packet = packet.id;
  head.vc = vc;
  head.dest_x = packet.dst_x;
  head.dest_y = packet.dst_y;
  head.pkind = packet.kind;
  head.payload = packet.payload.size();
  feed.buf.push_back(head);
  for (std::size_t i = 0; i < packet.payload.size(); ++i) {
    Flit f;
    f.kind = (i + 1 == packet.payload.size()) ? FlitKind::kTail
                                              : FlitKind::kBody;
    f.packet = packet.id;
    f.vc = vc;
    f.payload = packet.payload[i];
    feed.buf.push_back(f);
  }
  feed_nodes_.insert(node);

  const std::uint32_t id = packet.id;
  std::uint32_t slot;
  if (!flow_free_.empty()) {
    slot = flow_free_.back();
    flow_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  Flow& flow = flows_[slot];
  // The payload words now live in the flits; the delivered packet's
  // payload is rebuilt from them at the destination.
  packet.payload.clear();
  flow.packet = std::move(packet);
  flow.head_seen = false;
  flow.live = true;
  ++live_flows_;
  if (flow_slot_.size() <= id) flow_slot_.resize(id + 1, 0);
  flow_slot_[id] = slot;
  return id;
}

bool NocFabric::feed_injection(std::uint32_t node) {
  Router& r = routers_[node];
  bool pending = false;
  bool fed = false;
  for (int vc = 0; vc < router_config_.virtual_channels; ++vc) {
    auto& feed = feeds_[static_cast<std::size_t>(node) * kMaxVcs + vc];
    while (!feed.empty() && r.can_accept(Port::kLocal, vc)) {
      r.accept(Port::kLocal, feed.buf[feed.head++]);
      ++queued_flits_;
      fed = true;
    }
    if (!feed.empty()) pending = true;
  }
  if (fed) active_.insert(node);
  return pending;
}

std::size_t NocFabric::step() {
  mark_dirty();  // now_ advances even on an idle mesh
  // Phase 0: injection into local input queues. Only nodes with pending
  // feed flits are visited; a node whose local queue is full stays in
  // the feed set for the next cycle.
  feed_nodes_.drain_to(feed_scratch_);
  for (const auto node : feed_scratch_) {
    if (feed_injection(node)) feed_nodes_.insert(node);
  }

  // Phase 1: every active router computes transfers from pre-cycle
  // state. drain_to yields ascending router index — the dense scan
  // order, which fixes the delivery order below.
  active_.drain_to(step_nodes_);
  step_transfers_.clear();
  step_ranges_.clear();
  for (const auto node : step_nodes_) {
    const int x = static_cast<int>(node) % width_;
    const int y = static_cast<int>(node) / width_;
    ReadyMask ready{};
    const std::uint32_t all_vcs = (1u << routers_[node].vcs()) - 1u;
    ready[static_cast<int>(Port::kLocal)] = all_vcs;  // delivery sink
    if (y > 0) {
      ready[static_cast<int>(Port::kNorth)] =
          router(x, y - 1).accept_mask(Port::kSouth);
    }
    if (x + 1 < width_) {
      ready[static_cast<int>(Port::kEast)] =
          router(x + 1, y).accept_mask(Port::kWest);
    }
    if (y + 1 < height_) {
      ready[static_cast<int>(Port::kSouth)] =
          router(x, y + 1).accept_mask(Port::kNorth);
    }
    if (x > 0) {
      ready[static_cast<int>(Port::kWest)] =
          router(x - 1, y).accept_mask(Port::kEast);
    }
    const auto begin = static_cast<std::uint32_t>(step_transfers_.size());
    routers_[node].compute_into(ready, step_transfers_);
    if (step_transfers_.size() != begin) {
      step_ranges_.emplace_back(node, begin);
    }
  }

  // Phase 2: commit — pop from sources, push to neighbours / deliver.
  // Receivers join the activity set; senders stay in it below iff they
  // still hold flits.
  std::size_t moved = 0;
  for (std::size_t ri = 0; ri < step_ranges_.size(); ++ri) {
    const auto [node, begin] = step_ranges_[ri];
    const std::uint32_t end = (ri + 1 < step_ranges_.size())
                                  ? step_ranges_[ri + 1].second
                                  : static_cast<std::uint32_t>(
                                        step_transfers_.size());
    const int x = static_cast<int>(node) % width_;
    const int y = static_cast<int>(node) / width_;
    routers_[node].commit(step_transfers_.data() + begin, end - begin);
    for (std::uint32_t ti = begin; ti < end; ++ti) {
      const auto& t = step_transfers_[ti];
      ++moved;
      ++link_flits_[node * static_cast<std::size_t>(kPortCount) +
                    static_cast<std::size_t>(t.out)];
      std::size_t to = node;
      switch (t.out) {
        case Port::kNorth: to = index(x, y - 1); break;
        case Port::kEast: to = index(x + 1, y); break;
        case Port::kSouth: to = index(x, y + 1); break;
        case Port::kWest: to = index(x - 1, y); break;
        case Port::kLocal: {
          // Reassemble at the destination.
          --queued_flits_;
          Flow& flow = flows_[flow_slot_[t.flit.packet]];
          if (t.flit.is_head()) {
            VLSIP_INVARIANT(flow.live, "delivered flit of unknown packet");
            flow.head_seen = true;
          } else {
            VLSIP_INVARIANT(flow.head_seen, "body flit before head");
            flow.packet.payload.push_back(t.flit.payload);
          }
          if (t.flit.is_tail()) {
            flow.packet.deliver_cycle = now_ + 1;  // arrives end of cycle
            ++total_delivered_;
            lifetime_latency_.add(static_cast<double>(
                flow.packet.deliver_cycle - flow.packet.inject_cycle));
            if (on_deliver_) on_deliver_(flow.packet);
            delivered_.push_back(std::move(flow.packet));
            flow.packet = Packet{};
            flow.head_seen = false;
            flow.live = false;
            flow_free_.push_back(flow_slot_[t.flit.packet]);
            --live_flows_;
          }
          continue;
        }
      }
      routers_[to].accept(opposite(t.out), t.flit);
      active_.insert(static_cast<std::uint32_t>(to));
    }
  }
  for (const auto node : step_nodes_) {
    if (routers_[node].total_queued() != 0) active_.insert(node);
  }

  total_flits_moved_ += moved;
  ++now_;
  return moved;
}

bool NocFabric::run_until_drained(std::uint64_t max_cycles) {
  for (std::uint64_t c = 0; c < max_cycles; ++c) {
    if (idle()) return true;
    step();
  }
  return idle();
}

std::uint64_t NocFabric::link_flits(int x, int y, Port out) const {
  return link_flits_[index(x, y) * kPortCount +
                     static_cast<std::size_t>(out)];
}

std::uint64_t NocFabric::peak_link_flits() const {
  return simd::max_u64(link_flits_.data(), link_flits_.size());
}

std::string NocFabric::render_link_heatmap() const {
  std::string out;
  char buf[8];
  auto two = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%2u",
                  static_cast<unsigned>(std::min<std::uint64_t>(v, 99)));
    return std::string(buf);
  };
  for (int y = 0; y < height_; ++y) {
    // Node row: east links.
    for (int x = 0; x < width_; ++x) {
      out += "+";
      if (x + 1 < width_) {
        out += two(link_flits(x, y, Port::kEast) +
                   link_flits(x + 1, y, Port::kWest));
      }
    }
    out += "\n";
    if (y + 1 < height_) {
      for (int x = 0; x < width_; ++x) {
        out += two(link_flits(x, y, Port::kSouth) +
                   link_flits(x, y + 1, Port::kNorth));
        if (x + 1 < width_) out += " ";
      }
      out += "\n";
    }
  }
  return out;
}

RunningStats NocFabric::latency_stats() const {
  RunningStats stats;
  for (const auto& p : delivered_) {
    stats.add(static_cast<double>(p.deliver_cycle - p.inject_cycle));
  }
  return stats;
}

void NocFabric::export_obs(obs::MetricRegistry& registry,
                           const std::string& prefix) const {
  registry.counter(prefix + "packets_injected") += next_packet_id_ - 1;
  registry.counter(prefix + "packets_delivered") += total_delivered_;
  registry.counter(prefix + "flits_moved") += total_flits_moved_;
  registry.counter(prefix + "cycles") += now_;
  registry.gauge(prefix + "queued_flits") =
      static_cast<double>(queued_flits_);
  registry.gauge(prefix + "peak_link_flits") =
      static_cast<double>(peak_link_flits());
  if (lifetime_latency_.count() > 0) {
    registry.gauge(prefix + "flit_latency_mean") = lifetime_latency_.mean();
    registry.gauge(prefix + "flit_latency_min") = lifetime_latency_.min();
    registry.gauge(prefix + "flit_latency_max") = lifetime_latency_.max();
  }
}

namespace {

void save_packet(snapshot::Writer& w, const Packet& p) {
  w.u32(p.id);
  w.u32(p.src_x);
  w.u32(p.src_y);
  w.u32(p.dst_x);
  w.u32(p.dst_y);
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.vec_u64(p.payload);
  w.u64(p.inject_cycle);
  w.u64(p.deliver_cycle);
}

Packet restore_packet(snapshot::Reader& r) {
  Packet p;
  p.id = r.u32();
  p.src_x = static_cast<std::uint16_t>(r.u32());
  p.src_y = static_cast<std::uint16_t>(r.u32());
  p.dst_x = static_cast<std::uint16_t>(r.u32());
  p.dst_y = static_cast<std::uint16_t>(r.u32());
  p.kind = static_cast<PacketKind>(r.u8());
  p.payload = r.vec_u64();
  p.inject_cycle = r.u64();
  p.deliver_cycle = r.u64();
  return p;
}

}  // namespace

void NocFabric::save(snapshot::Writer& w) const {
  w.section("noc.fabric");
  w.i32(width_);
  w.i32(height_);
  for (const auto& router : routers_) router.save(w);
  w.u64(now_);
  w.u32(next_packet_id_);
  w.u64(feeds_.size());
  for (const auto& q : feeds_) {
    w.u64(q.buf.size());
    for (const auto& flit : q.buf) save_flit(w, flit);
    w.u64(q.head);
  }
  w.u64(feed_nodes_.size());
  w.vec_u64(feed_nodes_.words());
  w.u64(active_.size());
  w.vec_u64(active_.words());
  w.u64(flows_.size());
  for (const auto& f : flows_) {
    save_packet(w, f.packet);
    w.b(f.head_seen);
    w.b(f.live);
  }
  w.vec_u32(flow_free_);
  w.vec_u32(flow_slot_);
  w.u64(live_flows_);
  w.u64(queued_flits_);
  w.u64(delivered_.size());
  for (const auto& p : delivered_) save_packet(w, p);
  w.u64(total_delivered_);
  w.u64(total_flits_moved_);
  const RunningStats::Raw lat = lifetime_latency_.raw();
  w.u64(lat.n);
  w.f64(lat.mean);
  w.f64(lat.m2);
  w.f64(lat.min);
  w.f64(lat.max);
  w.vec_u64(link_flits_);
}

void NocFabric::restore(snapshot::Reader& r) {
  mark_dirty();
  r.section("noc.fabric");
  const int width = r.i32();
  const int height = r.i32();
  VLSIP_REQUIRE(width == width_ && height == height_,
                "snapshot NoC geometry mismatch");
  for (auto& router : routers_) router.restore(r);
  now_ = r.u64();
  next_packet_id_ = r.u32();
  const std::uint64_t n_feeds = r.u64();
  VLSIP_REQUIRE(n_feeds == feeds_.size(),
                "snapshot NoC feed queue mismatch");
  for (auto& q : feeds_) {
    const std::uint64_t len = r.count(20);
    q.buf.clear();
    q.buf.reserve(static_cast<std::size_t>(len));
    for (std::uint64_t i = 0; i < len; ++i) q.buf.push_back(restore_flit(r));
    q.head = static_cast<std::size_t>(r.u64());
  }
  const std::uint64_t feed_nodes_size = r.u64();
  feed_nodes_.restore_words(static_cast<std::size_t>(feed_nodes_size),
                            r.vec_u64());
  const std::uint64_t active_size = r.u64();
  active_.restore_words(static_cast<std::size_t>(active_size), r.vec_u64());
  flows_.clear();
  const std::uint64_t n_flows = r.count(40);
  flows_.reserve(static_cast<std::size_t>(n_flows));
  for (std::uint64_t i = 0; i < n_flows; ++i) {
    Flow f;
    f.packet = restore_packet(r);
    f.head_seen = r.b();
    f.live = r.b();
    flows_.push_back(std::move(f));
  }
  flow_free_ = r.vec_u32();
  flow_slot_ = r.vec_u32();
  live_flows_ = static_cast<std::size_t>(r.u64());
  queued_flits_ = static_cast<std::size_t>(r.u64());
  delivered_.clear();
  const std::uint64_t n_delivered = r.count(38);
  delivered_.reserve(static_cast<std::size_t>(n_delivered));
  for (std::uint64_t i = 0; i < n_delivered; ++i) {
    delivered_.push_back(restore_packet(r));
  }
  total_delivered_ = r.u64();
  total_flits_moved_ = r.u64();
  RunningStats::Raw lat;
  lat.n = static_cast<std::size_t>(r.u64());
  lat.mean = r.f64();
  lat.m2 = r.f64();
  lat.min = r.f64();
  lat.max = r.f64();
  lifetime_latency_.set_raw(lat);
  link_flits_ = r.vec_u64();
  VLSIP_REQUIRE(link_flits_.size() ==
                    routers_.size() * static_cast<std::size_t>(kPortCount),
                "snapshot NoC link counter mismatch");
}

}  // namespace vlsip::noc
