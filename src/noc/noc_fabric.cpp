#include "noc/noc_fabric.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/require.hpp"

namespace vlsip::noc {

int Packet::hops() const {
  return std::abs(static_cast<int>(dst_x) - static_cast<int>(src_x)) +
         std::abs(static_cast<int>(dst_y) - static_cast<int>(src_y));
}

NocFabric::NocFabric(int width, int height, RouterConfig router_config)
    : width_(width), height_(height), router_config_(router_config) {
  VLSIP_REQUIRE(width >= 1 && height >= 1, "fabric must be non-empty");
  routers_.reserve(static_cast<std::size_t>(width) * height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      routers_.emplace_back(x, y, router_config);
    }
  }
  link_flits_.assign(routers_.size() * kPortCount, 0);
}

std::size_t NocFabric::index(int x, int y) const {
  VLSIP_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
                "router coordinate out of range");
  return static_cast<std::size_t>(y) * width_ + x;
}

Router& NocFabric::router_mut(int x, int y) { return routers_[index(x, y)]; }

const Router& NocFabric::router(int x, int y) const {
  return routers_[index(x, y)];
}

std::uint32_t NocFabric::inject(Packet packet) {
  VLSIP_REQUIRE(packet.src_x < width_ && packet.src_y < height_,
                "source out of range");
  VLSIP_REQUIRE(packet.dst_x < width_ && packet.dst_y < height_,
                "destination out of range");
  packet.id = next_packet_id_++;
  packet.inject_cycle = now_;

  // Flatten into flits: head, bodies, tail. Zero-payload packets are a
  // single head-tail flit. Packets rotate over the injection VCs so two
  // packets from one node do not serialise at the source.
  const auto vc = static_cast<std::uint8_t>(
      packet.id % static_cast<std::uint32_t>(router_config_.virtual_channels));
  auto& feed = feeding_[index(packet.src_x, packet.src_y) * kMaxVcs + vc];
  Flit head;
  head.kind = packet.payload.empty() ? FlitKind::kHeadTail : FlitKind::kHead;
  head.packet = packet.id;
  head.vc = vc;
  head.dest_x = packet.dst_x;
  head.dest_y = packet.dst_y;
  head.pkind = packet.kind;
  head.payload = packet.payload.size();
  feed.push_back(head);
  for (std::size_t i = 0; i < packet.payload.size(); ++i) {
    Flit f;
    f.kind = (i + 1 == packet.payload.size()) ? FlitKind::kTail
                                              : FlitKind::kBody;
    f.packet = packet.id;
    f.vc = vc;
    f.payload = packet.payload[i];
    feed.push_back(f);
  }

  const std::uint32_t id = packet.id;
  in_flight_[id] = std::move(packet);
  return id;
}

void NocFabric::feed_injection(int x, int y) {
  Router& r = router_mut(x, y);
  for (int vc = 0; vc < router_config_.virtual_channels; ++vc) {
    auto it = feeding_.find(index(x, y) * kMaxVcs + vc);
    if (it == feeding_.end()) continue;
    auto& feed = it->second;
    while (!feed.empty() && r.can_accept(Port::kLocal, vc)) {
      r.accept(Port::kLocal, feed.front());
      feed.pop_front();
    }
    if (feed.empty()) feeding_.erase(it);
  }
}

std::size_t NocFabric::step() {
  // Phase 0: injection into local input queues.
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) feed_injection(x, y);
  }

  // Phase 1: every router computes transfers from pre-cycle state.
  struct NodeTransfers {
    int x;
    int y;
    std::vector<Router::Transfer> transfers;
  };
  std::vector<NodeTransfers> all;
  all.reserve(routers_.size());
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      ReadyMask ready{};
      const std::uint32_t all_vcs =
          (1u << router(x, y).vcs()) - 1u;
      ready[static_cast<int>(Port::kLocal)] = all_vcs;  // delivery sink
      if (y > 0) {
        ready[static_cast<int>(Port::kNorth)] =
            router(x, y - 1).accept_mask(Port::kSouth);
      }
      if (x + 1 < width_) {
        ready[static_cast<int>(Port::kEast)] =
            router(x + 1, y).accept_mask(Port::kWest);
      }
      if (y + 1 < height_) {
        ready[static_cast<int>(Port::kSouth)] =
            router(x, y + 1).accept_mask(Port::kNorth);
      }
      if (x > 0) {
        ready[static_cast<int>(Port::kWest)] =
            router(x - 1, y).accept_mask(Port::kEast);
      }
      auto transfers = router_mut(x, y).compute(ready);
      if (!transfers.empty()) {
        all.push_back(NodeTransfers{x, y, std::move(transfers)});
      }
    }
  }

  // Phase 2: commit — pop from sources, push to neighbours / deliver.
  std::size_t moved = 0;
  for (auto& node : all) {
    router_mut(node.x, node.y).commit(node.transfers);
    for (const auto& t : node.transfers) {
      ++moved;
      ++link_flits_[index(node.x, node.y) * kPortCount +
                    static_cast<std::size_t>(t.out)];
      switch (t.out) {
        case Port::kNorth:
          router_mut(node.x, node.y - 1).accept(Port::kSouth, t.flit);
          break;
        case Port::kEast:
          router_mut(node.x + 1, node.y).accept(Port::kWest, t.flit);
          break;
        case Port::kSouth:
          router_mut(node.x, node.y + 1).accept(Port::kNorth, t.flit);
          break;
        case Port::kWest:
          router_mut(node.x - 1, node.y).accept(Port::kEast, t.flit);
          break;
        case Port::kLocal: {
          // Reassemble at the destination.
          auto& rx = rx_[t.flit.packet];
          if (t.flit.is_head()) {
            auto src = in_flight_.find(t.flit.packet);
            VLSIP_INVARIANT(src != in_flight_.end(),
                            "delivered flit of unknown packet");
            rx.packet = src->second;
            rx.packet.payload.clear();
            rx.head_seen = true;
          } else {
            VLSIP_INVARIANT(rx.head_seen, "body flit before head");
            rx.packet.payload.push_back(t.flit.payload);
          }
          if (t.flit.is_tail()) {
            rx.packet.deliver_cycle = now_ + 1;  // arrives end of cycle
            if (on_deliver_) on_deliver_(rx.packet);
            delivered_.push_back(std::move(rx.packet));
            in_flight_.erase(t.flit.packet);
            rx_.erase(t.flit.packet);
          }
          break;
        }
      }
    }
  }

  ++now_;
  return moved;
}

bool NocFabric::idle() const {
  if (!feeding_.empty() || !rx_.empty() || !in_flight_.empty()) return false;
  for (const auto& r : routers_) {
    if (r.total_queued() != 0) return false;
  }
  return true;
}

bool NocFabric::run_until_drained(std::uint64_t max_cycles) {
  for (std::uint64_t c = 0; c < max_cycles; ++c) {
    if (idle()) return true;
    step();
  }
  return idle();
}

std::uint64_t NocFabric::link_flits(int x, int y, Port out) const {
  return link_flits_[index(x, y) * kPortCount +
                     static_cast<std::size_t>(out)];
}

std::uint64_t NocFabric::peak_link_flits() const {
  std::uint64_t peak = 0;
  for (const auto v : link_flits_) peak = std::max(peak, v);
  return peak;
}

std::string NocFabric::render_link_heatmap() const {
  std::string out;
  char buf[8];
  auto two = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%2u",
                  static_cast<unsigned>(std::min<std::uint64_t>(v, 99)));
    return std::string(buf);
  };
  for (int y = 0; y < height_; ++y) {
    // Node row: east links.
    for (int x = 0; x < width_; ++x) {
      out += "+";
      if (x + 1 < width_) {
        out += two(link_flits(x, y, Port::kEast) +
                   link_flits(x + 1, y, Port::kWest));
      }
    }
    out += "\n";
    if (y + 1 < height_) {
      for (int x = 0; x < width_; ++x) {
        out += two(link_flits(x, y, Port::kSouth) +
                   link_flits(x, y + 1, Port::kNorth));
        if (x + 1 < width_) out += " ";
      }
      out += "\n";
    }
  }
  return out;
}

RunningStats NocFabric::latency_stats() const {
  RunningStats stats;
  for (const auto& p : delivered_) {
    stats.add(static_cast<double>(p.deliver_cycle - p.inject_cycle));
  }
  return stats;
}

}  // namespace vlsip::noc
