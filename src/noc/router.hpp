// The on-chip router of fig. 7(e): five ports (N/E/S/W/Local), each with
// a queue -> allocation -> output stage, carrying wormhole packets —
// optionally with virtual channels [Dally, TPDS 3(2) 1992, the paper's
// ref 18].
//
// Wormhole flow control: a packet is a head flit (carrying the
// destination), body flits and a tail flit. The head allocates an output
// port and an output VC; body flits follow the established (port, VC)
// path; the tail releases it. With a single VC a blocked worm blocks the
// whole link (head-of-line blocking); with multiple VCs other worms
// interleave on the physical link, which the ablation bench measures.
//
// Data layout: the input queues are fixed-capacity rings in one flat
// flit arena (`rings_`), not per-queue deques — the compute phase walks
// queue fronts out of contiguous storage and enqueue/dequeue never
// allocate. Wormhole locks are a flat slot array with a -1 sentinel.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::noc {

enum class Port : std::uint8_t {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
  kLocal = 4,
};
inline constexpr int kPortCount = 5;
inline constexpr const char* kPortNames[kPortCount] = {"N", "E", "S", "W",
                                                       "L"};
/// Upper bound on virtual channels per port (config may use fewer).
inline constexpr int kMaxVcs = 4;

Port opposite(Port p);

enum class FlitKind : std::uint8_t { kHead, kBody, kTail, kHeadTail };

/// Packet categories the VLSI processor sends (§3.3–3.4).
enum class PacketKind : std::uint8_t {
  kConfig,  // switch-programming worm (scaling)
  kData,    // inter-processor data (write into follower's memory block)
  kControl, // activation / release token
};

struct Flit {
  FlitKind kind = FlitKind::kBody;
  std::uint32_t packet = 0;   // packet id
  std::uint8_t vc = 0;        // virtual channel on the incoming link
  // Head-flit fields:
  std::uint16_t dest_x = 0;
  std::uint16_t dest_y = 0;
  PacketKind pkind = PacketKind::kData;
  // Payload word (one per flit).
  std::uint64_t payload = 0;

  bool is_head() const {
    return kind == FlitKind::kHead || kind == FlitKind::kHeadTail;
  }
  bool is_tail() const {
    return kind == FlitKind::kTail || kind == FlitKind::kHeadTail;
  }
};

struct RouterConfig {
  int queue_depth = 4;       // flits per input VC queue
  int virtual_channels = 1;  // 1..kMaxVcs
};

/// Checkpoint codecs for a single flit (shared by Router and the
/// fabric's injection queues).
void save_flit(snapshot::Writer& w, const Flit& flit);
Flit restore_flit(snapshot::Reader& r);

/// Per-port readiness mask: bit v set = the downstream input can accept
/// a flit on VC v this cycle.
using ReadyMask = std::array<std::uint32_t, kPortCount>;

/// One router. The surrounding fabric wires output->input links and
/// drives the two-phase step: every router computes its transfers from
/// the pre-cycle state, then the fabric applies them, so intra-cycle
/// ordering between routers cannot leak. Each output port moves at most
/// one flit per cycle (one physical link), whichever VC it belongs to.
class Router {
 public:
  Router(int x, int y, RouterConfig config);

  int x() const { return x_; }
  int y() const { return y_; }
  int vcs() const { return config_.virtual_channels; }

  /// True if input queue (p, vc) can accept a flit this cycle.
  bool can_accept(Port p, int vc = 0) const;
  /// Bitmask of accepting VCs on port p.
  std::uint32_t accept_mask(Port p) const;
  /// Enqueues an incoming flit on its flit.vc queue.
  void accept(Port p, const Flit& flit);

  /// A transfer decided in the compute phase.
  struct Transfer {
    Port in;
    int in_vc;
    Port out;
    int out_vc;
    Flit flit;  // vc field already rewritten to out_vc
  };

  /// Compute phase: decides at most one flit per output port, based on
  /// XY routing for heads and the locked (port, VC) path for body/tail
  /// flits. `downstream_ready[out]` is the accept mask of the neighbour
  /// (or local sink) on that output.
  std::vector<Transfer> compute(const ReadyMask& downstream_ready);

  /// As compute(), but appends into `out` (not cleared) so the caller
  /// can batch many routers' transfers into one reused buffer.
  void compute_into(const ReadyMask& downstream_ready,
                    std::vector<Transfer>& out);

  /// Commit phase: removes the transferred flits from the input queues
  /// and updates the wormhole locks.
  void commit(const std::vector<Transfer>& transfers);
  void commit(const Transfer* transfers, std::size_t count);

  std::size_t queued(Port p, int vc = 0) const;
  std::size_t total_queued() const { return total_queued_; }
  /// Which (input port, input VC) currently owns output (out, out_vc).
  std::optional<std::pair<Port, int>> output_owner(Port out,
                                                   int out_vc = 0) const;

  /// Checkpoint codec: ring arena verbatim (stale slots included —
  /// reproducible machine state), queue cursors, wormhole locks and
  /// round-robin pointers.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  Port route(const Flit& head) const;
  int queue_index(Port p, int vc) const;
  int lock_index(Port out, int vc) const;
  const Flit& front(int q) const {
    return rings_[static_cast<std::size_t>(q) * config_.queue_depth +
                  head_[q]];
  }
  void pop(int q) {
    head_[q] = static_cast<std::uint16_t>((head_[q] + 1) %
                                          config_.queue_depth);
    --len_[q];
    --total_queued_;
  }

  int x_;
  int y_;
  RouterConfig config_;
  /// Ring arena: queue q owns slots [q*depth, (q+1)*depth), q = port *
  /// vcs + vc; the live window is [head_[q], head_[q]+len_[q]) mod depth.
  std::vector<Flit> rings_;
  std::array<std::uint16_t, kPortCount * kMaxVcs> head_{};
  std::array<std::uint16_t, kPortCount * kMaxVcs> len_{};
  std::size_t total_queued_ = 0;
  /// Wormhole lock per (output port, output VC): owning input slot
  /// (port * vcs + vc), or -1 when the output is unlocked.
  std::array<std::int8_t, kPortCount * kMaxVcs> owner_;
  /// Round-robin pointers per output port: over input (port, vc) pairs.
  std::array<int, kPortCount> rr_;
};

}  // namespace vlsip::noc
