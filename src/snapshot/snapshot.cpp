#include "snapshot/snapshot.hpp"

#include <fstream>

namespace vlsip::snapshot {

void write_file(const Snapshot& snap, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SnapshotError("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(snap.bytes().data()),
            static_cast<std::streamsize>(snap.bytes().size()));
  if (!out) throw SnapshotError("write failed: " + path);
}

Snapshot read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw SnapshotError("cannot open for reading: " + path);
  const auto size = in.tellg();
  in.seekg(0);
  Snapshot snap;
  snap.bytes().resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(snap.bytes().data()),
          static_cast<std::streamsize>(size));
  if (!in) throw SnapshotError("read failed: " + path);
  return snap;
}

}  // namespace vlsip::snapshot
