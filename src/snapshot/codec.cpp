#include "snapshot/codec.hpp"

#include <cstring>
#include <string>

namespace vlsip::snapshot {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t* data, std::size_t size,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= size) {
      throw SnapshotError("varint truncated at byte " + std::to_string(pos));
    }
    const std::uint8_t byte = data[pos++];
    if (shift == 63 && (byte & 0xFE)) {
      // The 10th byte may only contribute the u64's top bit.
      throw SnapshotError("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw SnapshotError("varint longer than 10 bytes");
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

std::int64_t get_svarint(const std::uint8_t* data, std::size_t size,
                         std::size_t& pos) {
  return unzigzag(get_varint(data, size, pos));
}

std::uint64_t content_hash64(const std::uint8_t* data, std::size_t size) {
  // FNV-1a folded over four independent 8-byte lanes. The delta
  // encoder hashes whole snapshots on every checkpoint, so this sits
  // on the checkpoint_micros hot path: a single FNV stream is bound by
  // the multiply's latency, four parallel streams keep the multiplier
  // pipelined and combine at the end.
  constexpr std::uint64_t kPrime = 0x00000100000001B3ull;
  std::uint64_t h0 = 0xCBF29CE484222325ull ^ (size * 0x9E3779B97F4A7C15ull);
  std::uint64_t h1 = 0x9AE16A3B2F90404Full;
  std::uint64_t h2 = 0xC949D7C7509E6557ull;
  std::uint64_t h3 = 0xFF51AFD7ED558CCDull;
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    std::uint64_t a, b, c, d;
    std::memcpy(&a, data + i, 8);
    std::memcpy(&b, data + i + 8, 8);
    std::memcpy(&c, data + i + 16, 8);
    std::memcpy(&d, data + i + 24, 8);
    h0 = (h0 ^ a) * kPrime;
    h1 = (h1 ^ b) * kPrime;
    h2 = (h2 ^ c) * kPrime;
    h3 = (h3 ^ d) * kPrime;
  }
  std::uint64_t h = ((h0 * kPrime ^ h1) * kPrime ^ h2) * kPrime ^ h3;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, data + i, 8);
    h = (h ^ lane) * kPrime;
  }
  std::uint64_t tail = 0;
  for (unsigned shift = 0; i < size; ++i, shift += 8) {
    tail |= static_cast<std::uint64_t>(data[i]) << shift;
  }
  return (h ^ tail) * kPrime;
}

}  // namespace vlsip::snapshot
