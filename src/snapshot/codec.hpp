// Compact integer codecs for the incremental snapshot container
// (snapshot/incremental.hpp): LEB128 varints for counts, lengths and
// section ids, zigzag mapping for signed deltas, and a word-folded
// FNV-1a variant as the chain-integrity checksum.
//
// Decoders are bounds-checked against the caller's buffer and throw
// SnapshotError on truncation or overlong encodings — the same typed
// error path the rest of the snapshot layer uses, so hostile bytes
// surface as Status(kCorruptSnapshot) at the API boundary, never as a
// crash or a silently wrong value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace vlsip::snapshot {

/// Appends `v` as an LEB128 varint (1..10 bytes, 7 payload bits per
/// byte, high bit = continuation).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Decodes one varint from `data[pos..size)`, advancing `pos`. Throws
/// SnapshotError on truncation mid-varint or an encoding longer than
/// 10 bytes (no u64 needs more — an 11th byte is corruption, not data).
std::uint64_t get_varint(const std::uint8_t* data, std::size_t size,
                         std::size_t& pos);

/// Zigzag: maps signed to unsigned so small-magnitude deltas of either
/// sign stay short varints (0, -1, 1, -2 -> 0, 1, 2, 3).
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Signed varint = varint(zigzag(v)).
void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v);
std::int64_t get_svarint(const std::uint8_t* data, std::size_t size,
                         std::size_t& pos);

/// The delta container's integrity hash: FNV-1a folded over 8-byte
/// lanes (length mixed into the seed so a lane of zeros is not a
/// fixed point). Not cryptographic — it detects corruption and
/// base/chain mix-ups, which is all the materialize step needs (byte
/// identity is separately proven by the differential sweeps).
std::uint64_t content_hash64(const std::uint8_t* data, std::size_t size);

}  // namespace vlsip::snapshot
