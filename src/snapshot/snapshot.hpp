// Versioned deterministic binary checkpoints of chip state.
//
// A Snapshot is a flat byte buffer with a fixed header (magic +
// format version). Writer/Reader stream fixed-width little-endian
// primitives through it; every layer of the simulator contributes a
// tagged section (`section("ap.executor")` etc.), so a reader that
// drifts out of sync with the writer fails loudly on the next tag
// instead of silently misinterpreting bytes.
//
// Versioning rule: kVersion bumps whenever the byte layout changes.
// A reader accepts snapshots at or below its own version and rejects
// ones from the future with SnapshotError — never a partial restore.
//
// Determinism: the encoding has no timestamps, pointers, or hash
// ordering; saving the same machine state twice yields byte-identical
// buffers, which is what lets CI diff checkpointed-vs-uninterrupted
// runs.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vlsip::snapshot {

/// Raised on any malformed snapshot: bad magic, future version,
/// truncation, section-tag mismatch, or file I/O failure.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// "VSNP" — identifies a vlsip snapshot byte stream.
inline constexpr std::uint32_t kMagic = 0x56534E50u;
/// Newest stream version this build understands. Version 1 is the flat
/// full-state layout (unchanged since PR 5); version 2 adds the
/// incremental delta container (snapshot/incremental.hpp). Bump on any
/// encoding change.
inline constexpr std::uint32_t kVersion = 2;
/// The version flat full-state snapshots are written at. Their byte
/// layout did not change when the delta container was introduced, so
/// Writer keeps stamping 1 and every v1 snapshot ever written still
/// round-trips byte-identically.
inline constexpr std::uint32_t kVersionFlat = 1;

/// Byte offsets of the tagged sections inside one flat snapshot,
/// recorded as a side channel while a Writer serialises (see
/// Writer::set_section_index). The incremental encoder diffs
/// section-by-section: each section() call is a re-anchor point, so an
/// insertion in one layer cannot smear the diff across the rest of the
/// stream. Entries are in stream order with strictly increasing
/// offsets; `offset` is where the section's tag string begins.
struct SectionEntry {
  std::string tag;
  std::size_t offset = 0;
};
struct SectionIndex {
  std::vector<SectionEntry> entries;
  void clear() { entries.clear(); }
};

/// Owning byte container. The header (magic + version) is written by
/// the first Writer attached and validated by every Reader.
class Snapshot {
 public:
  std::vector<std::uint8_t>& bytes() { return bytes_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Appends primitives to a Snapshot. Constructing a Writer clears the
/// snapshot and stamps the header, so one Writer == one checkpoint.
class Writer {
 public:
  explicit Writer(Snapshot& snap) : out_(snap.bytes()) {
    out_.clear();
    u32(kMagic);
    u32(kVersionFlat);
  }

  /// Records every subsequent section() tag + byte offset into `index`
  /// (cleared first). Null detaches. The incremental checkpoint path
  /// uses this to learn the diffable chunk boundaries for free while
  /// the ordinary save codecs run unmodified.
  void set_section_index(SectionIndex* index) {
    index_ = index;
    if (index_) index_->clear();
  }

  /// Bytes written so far (= the offset the next write lands at).
  std::size_t offset() const { return out_.size(); }

  /// Appends pre-serialised bytes verbatim — the splice path for a
  /// layer whose dirty generation proves it unchanged since the base
  /// snapshot, so its bytes can be copied instead of re-serialised.
  /// The caller is responsible for the bytes being a well-formed run of
  /// sections (core::VlsiProcessor::save_profiled owns that contract).
  void append_raw(const std::uint8_t* data, std::size_t n) { raw(data, n); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  /// Structural guard: a short tag the Reader must match verbatim.
  void section(std::string_view tag) {
    if (index_) index_->entries.push_back({std::string(tag), out_.size()});
    str(tag);
  }

  void vec_u8(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    raw(v.data(), v.size());
  }
  void vec_u32(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(std::uint32_t));
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(std::uint64_t));
  }
  void vec_bool(const std::vector<bool>& v) {
    u64(v.size());
    for (bool x : v) b(x);
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }

  std::vector<std::uint8_t>& out_;
  SectionIndex* index_ = nullptr;
};

/// Bounds-checked sequential reads from a Snapshot. The constructor
/// validates the header: wrong magic and future versions both throw.
class Reader {
 public:
  explicit Reader(const Snapshot& snap) : in_(snap.bytes()) {
    if (in_.size() < 8) throw SnapshotError("snapshot truncated: no header");
    if (u32() != kMagic) throw SnapshotError("snapshot has wrong magic");
    version_ = u32();
    if (version_ > kVersion) {
      throw SnapshotError("snapshot version " + std::to_string(version_) +
                          " is newer than supported version " +
                          std::to_string(kVersion));
    }
  }

  std::uint32_t version() const { return version_; }
  std::size_t remaining() const { return in_.size() - pos_; }
  /// Bytes not yet consumed. Frame decoders check this is zero after
  /// reading a message so trailing garbage is rejected, not silently
  /// ignored — a truncated *count* fails inside the read, but extra
  /// bytes after a well-formed payload would otherwise pass.
  std::size_t bytes_remaining() const { return remaining(); }
  bool done() const { return pos_ == in_.size(); }

  std::uint8_t u8() {
    need(1);
    return in_[pos_++];
  }
  bool b() { return u8() != 0; }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = count(1);
    std::string s(static_cast<std::size_t>(n), '\0');
    raw(s.data(), s.size());
    return s;
  }
  /// Verifies the next tag matches; throws naming both on mismatch.
  void section(std::string_view tag) {
    const std::string got = str();
    if (got != tag) {
      throw SnapshotError("snapshot section mismatch: expected '" +
                          std::string(tag) + "', found '" + got + "'");
    }
  }

  /// Reads an element count and sanity-checks it against the bytes
  /// left (each element needs at least `min_elem_bytes`), so a corrupt
  /// length can never drive a giant allocation.
  std::uint64_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      throw SnapshotError("snapshot truncated: count exceeds payload");
    }
    return n;
  }

  std::vector<std::uint8_t> vec_u8() {
    std::vector<std::uint8_t> v(static_cast<std::size_t>(count(1)));
    raw(v.data(), v.size());
    return v;
  }
  std::vector<std::uint32_t> vec_u32() {
    std::vector<std::uint32_t> v(static_cast<std::size_t>(count(4)));
    raw(v.data(), v.size() * sizeof(std::uint32_t));
    return v;
  }
  std::vector<std::uint64_t> vec_u64() {
    std::vector<std::uint64_t> v(static_cast<std::size_t>(count(8)));
    raw(v.data(), v.size() * sizeof(std::uint64_t));
    return v;
  }
  std::vector<bool> vec_bool() {
    const std::uint64_t n = count(1);
    std::vector<bool> v(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v[i] = b();
    return v;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw SnapshotError("snapshot truncated at byte " +
                          std::to_string(pos_));
    }
  }
  void raw(void* p, std::size_t n) {
    need(n);
    // n == 0 legitimately pairs with a null destination (an empty
    // vector's data()), which memcpy's nonnull contract forbids.
    if (n != 0) std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }

  const std::vector<std::uint8_t>& in_;
  /// Starts at 0; the constructor's header reads advance it past magic
  /// and version before any payload is touched.
  std::size_t pos_ = 0;
  std::uint32_t version_ = 0;
};

/// Writes the snapshot bytes to `path`; throws SnapshotError on I/O
/// failure.
void write_file(const Snapshot& snap, const std::string& path);

/// Reads a snapshot back; header validation happens when a Reader is
/// attached, not here.
Snapshot read_file(const std::string& path);

}  // namespace vlsip::snapshot
