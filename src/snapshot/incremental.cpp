#include "snapshot/incremental.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>
#include <unordered_map>

#include "snapshot/codec.hpp"

namespace vlsip::snapshot {
namespace {

/// Container version (shares the VSNP header shape with flat
/// snapshots; flat stays at kVersionFlat).
constexpr std::uint32_t kContainerVersion = 2;
constexpr std::size_t kHeaderBytes = 8;  // magic + version

/// Section modes on the wire.
enum Mode : std::uint64_t { kRef = 0, kDelta = 1, kLiteral = 2 };

/// One diffable chunk of a flat snapshot: [begin, end) bytes, tagged
/// with the section tag that opens it ("" for the leading header
/// chunk before the first section).
struct Chunk {
  std::string tag;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

std::vector<Chunk> chunks_of(const Snapshot& flat,
                             const SectionIndex& index) {
  std::vector<Chunk> chunks;
  chunks.reserve(index.entries.size() + 1);
  std::size_t begin = 0;
  std::string tag;  // "" = the header bytes before the first section
  for (const auto& entry : index.entries) {
    if (entry.offset != begin) chunks.push_back({tag, begin, entry.offset});
    begin = entry.offset;
    tag = entry.tag;
  }
  chunks.push_back({tag, begin, flat.size()});
  return chunks;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}

std::uint64_t read_u64(const std::uint8_t* data, std::size_t size,
                       std::size_t& pos) {
  if (size - pos < 8) throw SnapshotError("delta container header truncated");
  std::uint64_t v;
  std::memcpy(&v, data + pos, sizeof v);
  pos += 8;
  return v;
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// First index >= i in [i, n) where a and b agree, or n. Scans 8-byte
/// lanes, spotting an equal byte pair as a zero byte in the lanes' xor
/// (the classic has-zero-byte bit trick; the lowest flagged byte is
/// exact). The encoder walks whole dirty sections through these scans
/// every checkpoint, so they sit on the checkpoint_micros hot path.
std::size_t next_equal(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t i, std::size_t n) {
  while (i + 8 <= n) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    const std::uint64_t v = x ^ y;
    const std::uint64_t z =
        (v - 0x0101010101010101ull) & ~v & 0x8080808080808080ull;
    if (z) return i + (static_cast<std::size_t>(std::countr_zero(z)) >> 3);
    i += 8;
  }
  while (i < n && a[i] != b[i]) ++i;
  return i;
}

/// First index >= i in [i, n) where a and b differ, or n. Lane-wise;
/// the first differing byte of an unequal lane is the lowest set bit
/// of the xor (little-endian: lower addresses are lower-order bits).
std::size_t extend_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t i, std::size_t n) {
  while (i + 8 <= n) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    if (x != y) {
      return i + (static_cast<std::size_t>(std::countr_zero(x ^ y)) >> 3);
    }
    i += 8;
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

std::size_t common_prefix(const std::uint8_t* a, std::size_t an,
                          const std::uint8_t* b, std::size_t bn) {
  return extend_equal(a, b, 0, std::min(an, bn));
}

std::size_t common_suffix(const std::uint8_t* a, std::size_t an,
                          const std::uint8_t* b, std::size_t bn,
                          std::size_t max_len) {
  const std::size_t n = std::min({an, bn, max_len});
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t x, y;
    std::memcpy(&x, a + an - 8 - i, 8);
    std::memcpy(&y, b + bn - 8 - i, 8);
    if (x != y) {
      // The last differing byte in memory is the lane's most
      // significant differing bit.
      return i + (static_cast<std::size_t>(std::countl_zero(x ^ y)) >> 3);
    }
    i += 8;
  }
  while (i < n && a[an - 1 - i] == b[bn - 1 - i]) ++i;
  return i;
}

/// Minimum aligned equal run worth a copy op (below this the op
/// framing costs more than the literal bytes it saves).
constexpr std::size_t kMinCopyRun = 16;

/// Encodes the trimmed middle of a changed section as aligned
/// copy/literal runs against the base middle: ops of
/// varint((len << 1) | is_literal), literal bytes inline. Appends
/// varint(next_mid) + varint(n_ops) + ops to `out`; the decoder
/// replays them with a shared middle cursor.
void put_middle_runs(std::vector<std::uint8_t>& out, const std::uint8_t* bm,
                     std::size_t bm_len, const std::uint8_t* nm,
                     std::size_t nm_len) {
  std::vector<std::uint8_t> ops;
  ops.reserve(64);
  std::uint64_t n_ops = 0;
  std::size_t lit_start = 0;
  const auto flush_literal = [&](std::size_t end) {
    if (end == lit_start) return;
    put_varint(ops, ((end - lit_start) << 1) | 1u);
    ops.insert(ops.end(), nm + lit_start, nm + end);
    lit_start = end;
    ++n_ops;
  };
  const std::size_t n_common = std::min(bm_len, nm_len);
  std::size_t i = 0;
  while (i < n_common) {
    if (bm[i] != nm[i]) {
      i = next_equal(bm, nm, i + 1, n_common);
      continue;
    }
    const std::size_t j = extend_equal(bm, nm, i + 1, n_common);
    if (j - i >= kMinCopyRun) {
      flush_literal(i);
      put_varint(ops, (j - i) << 1);  // copy op
      lit_start = j;
      ++n_ops;
    }
    i = j;
  }
  flush_literal(nm_len);  // trailing mismatches + any tail past base
  put_varint(out, nm_len);
  put_varint(out, n_ops);
  out.insert(out.end(), ops.begin(), ops.end());
}

}  // namespace

bool is_delta(const Snapshot& snap) {
  const auto& b = snap.bytes();
  if (b.size() < kHeaderBytes + 1) return false;
  std::uint32_t magic, version;
  std::memcpy(&magic, b.data(), 4);
  std::memcpy(&version, b.data() + 4, 4);
  return magic == kMagic && version == kContainerVersion &&
         b[kHeaderBytes] == kKindDelta;
}

Snapshot encode_delta(const Snapshot& base, const SectionIndex& base_index,
                      const Snapshot& next, const SectionIndex& next_index) {
  const auto base_chunks = chunks_of(base, base_index);
  const auto next_chunks = chunks_of(next, next_index);

  // Occurrence matching: the k-th "ap.executor" in next pairs with the
  // k-th in base. A cursor per tag walks base's occurrence list.
  std::unordered_map<std::string, std::vector<std::size_t>> base_by_tag;
  for (std::size_t i = 0; i < base_chunks.size(); ++i) {
    base_by_tag[base_chunks[i].tag].push_back(i);
  }
  std::unordered_map<std::string, std::size_t> cursor;

  Snapshot out;
  auto& bytes = out.bytes();
  put_u32(bytes, kMagic);
  put_u32(bytes, kContainerVersion);
  bytes.push_back(kKindDelta);
  put_u64(bytes, content_hash64(base.bytes().data(), base.bytes().size()));
  put_u64(bytes, content_hash64(next.bytes().data(), next.bytes().size()));
  put_varint(bytes, next.size());
  put_varint(bytes, next_chunks.size());

  // Base offsets ship as zigzag deltas from where the previous match
  // ended — consecutive in-order refs cost one byte each.
  std::size_t expected_base_off = 0;
  for (const auto& nc : next_chunks) {
    const std::uint8_t* np = next.bytes().data() + nc.begin;
    const std::size_t nn = nc.size();

    const Chunk* bc = nullptr;
    auto it = base_by_tag.find(nc.tag);
    if (it != base_by_tag.end()) {
      std::size_t& k = cursor[nc.tag];
      if (k < it->second.size()) bc = &base_chunks[it->second[k++]];
    }

    put_str(bytes, nc.tag);
    if (bc == nullptr) {
      put_varint(bytes, kLiteral);
      put_varint(bytes, nn);
      bytes.insert(bytes.end(), np, np + nn);
      continue;
    }
    const std::uint8_t* bp = base.bytes().data() + bc->begin;
    const std::size_t bn = bc->size();
    if (nn == bn && std::memcmp(np, bp, nn) == 0) {
      put_varint(bytes, kRef);
      put_svarint(bytes, static_cast<std::int64_t>(bc->begin) -
                             static_cast<std::int64_t>(expected_base_off));
      put_varint(bytes, bn);
      expected_base_off = bc->end;
      continue;
    }
    const std::size_t prefix = common_prefix(bp, bn, np, nn);
    const std::size_t suffix =
        common_suffix(bp, bn, np, nn, std::min(bn, nn) - prefix);
    // Encode the trimmed middle as copy/literal runs into a scratch
    // buffer first, then ship whichever of delta/literal is smaller.
    std::vector<std::uint8_t> middle;
    put_middle_runs(middle, bp + prefix, bn - prefix - suffix, np + prefix,
                    nn - prefix - suffix);
    if (middle.size() + 16 < nn) {
      put_varint(bytes, kDelta);
      put_svarint(bytes, static_cast<std::int64_t>(bc->begin) -
                             static_cast<std::int64_t>(expected_base_off));
      put_varint(bytes, bn);
      put_varint(bytes, prefix);
      put_varint(bytes, suffix);
      bytes.insert(bytes.end(), middle.begin(), middle.end());
      expected_base_off = bc->end;
    } else {
      put_varint(bytes, kLiteral);
      put_varint(bytes, nn);
      bytes.insert(bytes.end(), np, np + nn);
    }
  }
  return out;
}

StatusOr<Snapshot> apply_delta(const Snapshot& base, const Snapshot& delta) {
  try {
    const std::uint8_t* d = delta.bytes().data();
    const std::size_t dn = delta.bytes().size();
    std::size_t pos = 0;

    if (dn < kHeaderBytes + 1) {
      throw SnapshotError("delta container truncated: no header");
    }
    std::uint32_t magic, version;
    std::memcpy(&magic, d, 4);
    std::memcpy(&version, d + 4, 4);
    if (magic != kMagic) {
      throw SnapshotError("delta container has wrong magic");
    }
    if (version != kContainerVersion) {
      throw SnapshotError("delta container version " +
                          std::to_string(version) + " is not supported (" +
                          std::to_string(kContainerVersion) + " expected)");
    }
    pos = kHeaderBytes;
    if (d[pos++] != kKindDelta) {
      throw SnapshotError("unknown container kind byte");
    }
    const std::uint64_t base_hash = read_u64(d, dn, pos);
    const std::uint64_t out_hash = read_u64(d, dn, pos);
    if (base_hash !=
        content_hash64(base.bytes().data(), base.bytes().size())) {
      throw SnapshotError(
          "delta references a different base snapshot (base hash mismatch)");
    }
    const std::uint64_t out_size = get_varint(d, dn, pos);
    // Every materialized byte comes from the base or from literal bytes
    // inside the container, so anything larger is corrupt — this bounds
    // the allocation before it happens.
    if (out_size > base.bytes().size() + dn) {
      throw SnapshotError("delta output size exceeds base + container");
    }
    const std::uint64_t n_chunks = get_varint(d, dn, pos);
    if (n_chunks > dn - pos + 1) {
      throw SnapshotError("delta section count exceeds container payload");
    }

    Snapshot out;
    auto& ob = out.bytes();
    ob.reserve(static_cast<std::size_t>(out_size));
    const std::uint8_t* bp = base.bytes().data();
    const std::size_t bn = base.bytes().size();
    std::size_t expected_base_off = 0;

    // Resolves and validates a base range: in bounds, and (for tagged
    // sections) actually starting with this chunk's tag encoding — a
    // ref that lands on the wrong section fails here, typed.
    const auto base_range = [&](std::int64_t off_delta, std::uint64_t len,
                                const std::string& tag) -> const std::uint8_t* {
      const std::int64_t off =
          static_cast<std::int64_t>(expected_base_off) + off_delta;
      if (off < 0 || len > bn ||
          static_cast<std::uint64_t>(off) > bn - len) {
        throw SnapshotError("delta base reference out of range");
      }
      const std::uint8_t* p = bp + off;
      if (!tag.empty()) {
        std::uint64_t tag_len = 0;
        if (len < 8) throw SnapshotError("delta base section too short");
        std::memcpy(&tag_len, p, 8);
        if (tag_len != tag.size() || len < 8 + tag.size() ||
            std::memcmp(p + 8, tag.data(), tag.size()) != 0) {
          throw SnapshotError(
              "delta section tag mismatch: base bytes do not open section '" +
              tag + "'");
        }
      }
      expected_base_off = static_cast<std::size_t>(off) + len;
      return p;
    };

    for (std::uint64_t c = 0; c < n_chunks; ++c) {
      const std::uint64_t tag_len = get_varint(d, dn, pos);
      if (tag_len > dn - pos) {
        throw SnapshotError("delta section tag truncated");
      }
      std::string tag(reinterpret_cast<const char*>(d + pos),
                      static_cast<std::size_t>(tag_len));
      pos += tag_len;
      const std::uint64_t mode = get_varint(d, dn, pos);
      std::size_t emit = 0;
      switch (mode) {
        case kRef: {
          const std::int64_t off_delta = get_svarint(d, dn, pos);
          const std::uint64_t len = get_varint(d, dn, pos);
          const std::uint8_t* p = base_range(off_delta, len, tag);
          ob.insert(ob.end(), p, p + len);
          emit = static_cast<std::size_t>(len);
          break;
        }
        case kDelta: {
          const std::int64_t off_delta = get_svarint(d, dn, pos);
          const std::uint64_t len = get_varint(d, dn, pos);
          const std::uint64_t prefix = get_varint(d, dn, pos);
          const std::uint64_t suffix = get_varint(d, dn, pos);
          const std::uint64_t next_mid = get_varint(d, dn, pos);
          const std::uint64_t n_ops = get_varint(d, dn, pos);
          if (prefix > len || suffix > len - prefix) {
            throw SnapshotError("delta prefix/suffix exceed base section");
          }
          if (next_mid > out_size || n_ops > dn - pos + 1) {
            throw SnapshotError("delta middle run header out of range");
          }
          const std::uint8_t* p = base_range(off_delta, len, tag);
          const std::uint64_t base_mid = len - prefix - suffix;
          ob.insert(ob.end(), p, p + prefix);
          // Replay the copy/literal runs with a shared middle cursor:
          // copies read the base middle at the cursor (aligned), so
          // every op advances base and output in lock step.
          std::uint64_t m = 0;
          for (std::uint64_t op = 0; op < n_ops; ++op) {
            const std::uint64_t header = get_varint(d, dn, pos);
            const std::uint64_t run = header >> 1;
            if (run == 0 || run > next_mid - m) {
              throw SnapshotError("delta middle run exceeds declared size");
            }
            if (header & 1) {
              if (run > dn - pos) {
                throw SnapshotError("delta literal run truncated");
              }
              ob.insert(ob.end(), d + pos, d + pos + run);
              pos += static_cast<std::size_t>(run);
            } else {
              if (m >= base_mid || run > base_mid - m) {
                throw SnapshotError("delta copy run outside base middle");
              }
              ob.insert(ob.end(), p + prefix + m, p + prefix + m + run);
            }
            m += run;
          }
          if (m != next_mid) {
            throw SnapshotError("delta middle runs do not sum to its size");
          }
          ob.insert(ob.end(), p + len - suffix, p + len);
          emit = static_cast<std::size_t>(prefix + next_mid + suffix);
          break;
        }
        case kLiteral: {
          const std::uint64_t len = get_varint(d, dn, pos);
          if (len > dn - pos) {
            throw SnapshotError("delta literal section truncated");
          }
          ob.insert(ob.end(), d + pos, d + pos + len);
          pos += static_cast<std::size_t>(len);
          emit = static_cast<std::size_t>(len);
          break;
        }
        default:
          throw SnapshotError("unknown delta section mode " +
                              std::to_string(mode));
      }
      if (ob.size() > out_size) {
        throw SnapshotError("delta sections exceed the declared output size");
      }
      (void)emit;
    }
    if (pos != dn) {
      throw SnapshotError(std::to_string(dn - pos) +
                          " trailing bytes after the delta container");
    }
    if (ob.size() != out_size) {
      throw SnapshotError("delta materialized " + std::to_string(ob.size()) +
                          " bytes, container declared " +
                          std::to_string(out_size));
    }
    if (content_hash64(ob.data(), ob.size()) != out_hash) {
      throw SnapshotError("materialized snapshot fails its checksum");
    }
    return out;
  } catch (const SnapshotError& e) {
    return Status(StatusCode::kCorruptSnapshot, e.what());
  }
}

StatusOr<Snapshot> materialize_chain(const std::vector<Snapshot>& chain) {
  if (chain.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "cannot materialize an empty checkpoint chain");
  }
  if (is_delta(chain.front())) {
    return Status(StatusCode::kCorruptSnapshot,
                  "checkpoint chain starts with a delta, not a keyframe");
  }
  Snapshot flat = chain.front();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (!is_delta(chain[i])) {
      return Status(StatusCode::kCorruptSnapshot,
                    "checkpoint chain link " + std::to_string(i) +
                        " is not a delta container");
    }
    auto next = apply_delta(flat, chain[i]);
    if (!next.ok()) {
      return Status(next.status().code(),
                    "chain link " + std::to_string(i) + ": " +
                        next.status().message());
    }
    flat = std::move(*next);
  }
  return flat;
}

}  // namespace vlsip::snapshot
