// Incremental compressed checkpoints: version-2 delta containers.
//
// A delta container encodes one flat snapshot ("next") against another
// flat snapshot ("base", usually the previous checkpoint). The unit of
// diffing is the tagged section: every section() boundary recorded by
// Writer::set_section_index re-anchors the diff, so a size change in
// one layer cannot smear mismatches across the rest of the stream.
// Each section is emitted in one of three modes:
//
//   ref      — byte-identical to a base section with the same tag
//              (matched by tag + occurrence); only a base byte range is
//              shipped. This is the dirty-section story: a clean layer
//              costs a handful of varint bytes.
//   delta    — changed, but overlaps its base section: after trimming
//              the common prefix/suffix, the middle ships as aligned
//              copy/literal runs (equal runs >= 16 bytes copy from the
//              base at the same middle offset; the rest is literal), so
//              a large section with scattered interior edits costs only
//              its changed runs.
//   literal  — new or cheaper to ship whole (raw bytes).
//
// All counts, lengths, offsets and ids are varints; base offsets are
// zigzag deltas from the position the previous section made expected,
// so a chain of in-order refs costs one byte each (snapshot/codec.hpp).
//
// Container layout (after the shared VSNP magic):
//
//   u32   kMagic            u32   2 (container version)
//   u8    kKindDelta        u64   content_hash64(base bytes)
//   u64   content_hash64(materialized bytes)
//   varint materialized size, varint section count, sections...
//
// materialize/apply reconstruct the exact flat bytes and verify both
// hashes — a delta applied to the wrong base, a truncated chain, or a
// flipped bit all fail with Status(kCorruptSnapshot), never a crash and
// never silently wrong bytes (the fuzz wall in tests/test_fuzz_snapshot
// attacks exactly this surface). Old readers reject containers cleanly:
// a version-1 build sees "version 2 is newer than supported".
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::snapshot {

/// Container kind byte (after magic + version). Only deltas exist
/// today; the byte keeps room for future self-contained compressed
/// kinds without another version bump.
inline constexpr std::uint8_t kKindDelta = 1;

/// True when `snap` carries a version-2 delta container header. False
/// for flat snapshots, empty buffers and garbage — never throws, so
/// restore paths can branch on it before attaching a Reader.
bool is_delta(const Snapshot& snap);

/// Encodes `next` as a delta container against `base`. `base_index`
/// and `next_index` must be the section indexes recorded while the
/// respective flat snapshots were written. Pure function of its
/// inputs; never fails (a hostile *decoder* input is the fuzzed
/// surface, the encoder only sees bytes this process produced).
Snapshot encode_delta(const Snapshot& base, const SectionIndex& base_index,
                      const Snapshot& next, const SectionIndex& next_index);

/// Applies one delta container to its base, reconstructing the flat
/// snapshot byte-for-byte. Typed failures (kCorruptSnapshot): wrong
/// magic/version/kind, base-hash mismatch (delta referencing a missing
/// or different base), out-of-range base references, section-tag
/// mismatches, truncation anywhere, trailing container bytes, or a
/// materialized buffer failing its checksum.
StatusOr<Snapshot> apply_delta(const Snapshot& base, const Snapshot& delta);

/// Materializes a checkpoint chain: chain[0] must be a flat snapshot
/// (the keyframe), chain[1..] delta containers applied in order.
/// Returns the final flat snapshot — byte-identical to the full
/// snapshot the producer would have written at the same point (the
/// 100-seed sweeps in test_properties pin this). kInvalidArgument on
/// an empty chain or a keyframe that is itself a delta;
/// kCorruptSnapshot when any link fails to apply.
StatusOr<Snapshot> materialize_chain(const std::vector<Snapshot>& chain);

}  // namespace vlsip::snapshot
