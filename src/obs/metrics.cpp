#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"

namespace vlsip::obs {

namespace {

/// splitmix64 — deterministic, seedless-per-process, good enough for
/// reservoir downsampling.
std::uint64_t next_rand(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

QuantileSketch::QuantileSketch(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), log_counts_(64, 0) {
  reservoir_.reserve(std::min<std::size_t>(capacity_, 64));
}

std::size_t QuantileSketch::log_bucket(double x) const {
  if (!(x > 0.0)) return 0;
  int exp = 0;
  std::frexp(x, &exp);  // x = m * 2^exp, m in [0.5, 1)
  if (exp <= 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(exp),
                               log_counts_.size() - 1);
}

void QuantileSketch::reservoir_add(double x) {
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(x);
    return;
  }
  // Algorithm R: element n (1-based) survives with probability cap/n.
  const std::uint64_t j = next_rand(rng_) % n_;
  if (j < capacity_) reservoir_[static_cast<std::size_t>(j)] = x;
}

void QuantileSketch::add(double x) {
  ++n_;
  summary_.add(x);
  ++log_counts_[log_bucket(x)];
  reservoir_add(x);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  summary_.merge(other.summary_);
  for (std::size_t i = 0; i < log_counts_.size(); ++i) {
    log_counts_[i] += other.log_counts_[i];
  }
  if (other.exact() && n_ + other.n_ <= capacity_) {
    // Both sides still hold every sample: concatenation stays exact.
    reservoir_.insert(reservoir_.end(), other.reservoir_.begin(),
                      other.reservoir_.end());
    n_ += other.n_;
    return;
  }
  // Approximate: stream the other reservoir through algorithm R. Each
  // retained sample stands for other.n_ / other.reservoir_.size()
  // originals, so bump n_ accordingly between inserts.
  const std::uint64_t per_sample =
      other.n_ / static_cast<std::uint64_t>(other.reservoir_.size());
  for (const double x : other.reservoir_) {
    n_ += std::max<std::uint64_t>(1, per_sample);
    reservoir_add(x);
  }
  // Account for the remainder lost to integer division.
  const std::uint64_t streamed =
      std::max<std::uint64_t>(1, per_sample) *
      static_cast<std::uint64_t>(other.reservoir_.size());
  if (other.n_ > streamed) n_ += other.n_ - streamed;
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (exact() || !reservoir_.empty()) {
    // Exact regime keeps every sample; past it the reservoir is still
    // the better estimator for mid-range quantiles, but tails are
    // cross-checked against the log histogram below.
    std::vector<double> sorted(reservoir_);
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double est = sorted[lo] + frac * (sorted[hi] - sorted[lo]);
    if (exact()) return est;
    // Clamp the reservoir estimate into the log-histogram bucket that
    // actually contains the q-th sample, so a sparse reservoir cannot
    // wander outside the true distribution's support.
    const double target = q * static_cast<double>(n_);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < log_counts_.size(); ++b) {
      cum += log_counts_[b];
      if (static_cast<double>(cum) >= target) {
        const double b_lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
        const double b_hi = std::ldexp(1.0, static_cast<int>(b));
        return std::clamp(est, b_lo, b_hi);
      }
    }
    return est;
  }
  return summary_.max();
}

std::uint64_t& MetricRegistry::counter(const std::string& name) {
  return counters_[name];
}

double& MetricRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricRegistry::histogram(const std::string& name, double lo,
                                     double hi, std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
  }
  return it->second;
}

QuantileSketch& MetricRegistry::sketch(const std::string& name) {
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(name, QuantileSketch()).first;
  }
  return it->second;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
  for (const auto& [name, s] : other.sketches_) {
    auto it = sketches_.find(name);
    if (it == sketches_.end()) {
      sketches_.emplace(name, s);
    } else {
      it->second.merge(s);
    }
  }
}

void MetricRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters_) w.field(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges_) w.field(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.field("lo", h.bucket_lo(0));
    w.field("hi", h.bucket_hi(h.bucket_count() - 1));
    w.field("total", h.total());
    w.key("counts");
    w.begin_array();
    for (std::size_t i = 0; i < h.bucket_count(); ++i) w.value(h.bucket(i));
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("sketches");
  w.begin_object();
  for (const auto& [name, s] : sketches_) {
    w.key(name);
    w.begin_object();
    w.field("count", s.count());
    w.field("exact", s.exact());
    w.field("min", s.count() ? s.min() : 0.0);
    w.field("max", s.count() ? s.max() : 0.0);
    w.field("mean", s.mean());
    w.field("p50", s.quantile(0.50));
    w.field("p95", s.quantile(0.95));
    w.field("p99", s.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace vlsip::obs
