// Farm-level service metrics: admission counters, cycle totals, and
// latency distributions (p50/p95/p99) computed from JobOutcome
// timestamps. Workers accumulate a private FarmMetrics each; snapshots
// merge them (RunningStats::merge is an exact parallel reduction, and
// the latency QuantileSketch is exact below its reservoir capacity —
// every regime the tests exercise — and bounded-memory past it, unlike
// the old runtime/metrics.hpp store that kept every sample forever).
//
// This is the obs replacement for the deleted runtime/metrics.{hpp,cpp};
// runtime/chip_farm.hpp re-exports it as runtime::FarmMetrics.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace vlsip::scaling {
struct JobOutcome;
}  // namespace vlsip::scaling

namespace vlsip::obs {

struct FarmMetrics {
  // Admission control.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  // Served outcomes.
  std::uint64_t completed = 0;
  std::uint64_t deadlocked = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t no_allocation = 0;
  std::uint64_t errors = 0;
  // Batching effectiveness.
  std::uint64_t batches = 0;
  /// Jobs that reused a predecessor's fused processor — each one is a
  /// configuration wormhole amortised away.
  std::uint64_t fuse_reuses = 0;
  // Simulated work.
  std::uint64_t config_cycles = 0;
  std::uint64_t exec_cycles = 0;
  std::uint64_t faults = 0;
  // Fault tolerance / degraded mode (zero unless fault injection or the
  // self-healing path ran).
  /// Failed service attempts re-admitted for another try.
  std::uint64_t retries = 0;
  /// Worker stalls consumed from the fault plan.
  std::uint64_t worker_stalls = 0;
  /// Worker chips crashed mid-batch by the fault plan.
  std::uint64_t worker_crashes = 0;
  /// Chips pulled from service and replaced with fresh silicon.
  std::uint64_t quarantined_chips = 0;
  /// Jobs that completed but needed more than one service attempt.
  std::uint64_t degraded_completed = 0;
  /// Post-batch health checks run.
  std::uint64_t health_checks = 0;
  /// Health checks that found fragmentation and compacted the chip.
  std::uint64_t health_compactions = 0;
  /// Fault-plan events applied to chips through the farm.
  std::uint64_t injected_faults = 0;
  // Injected-vs-recovered accounting (from fault::InjectionStats).
  /// Chip-level plan events that actually changed chip state.
  std::uint64_t fault_events_applied = 0;
  /// Plan events with nothing to hit (target already dead, no host).
  std::uint64_t fault_events_skipped = 0;
  /// Recoveries: replacement processors re-fused after cluster kills.
  std::uint64_t fault_refusals = 0;
  /// Recoveries: CSD routes that found a healthy span after a segment
  /// kill (vs. routes_dropped, which must re-handshake later).
  std::uint64_t routes_rerouted = 0;
  std::uint64_t routes_dropped = 0;
  // Checkpoint/restore (zero unless FarmConfig::checkpoint_every_batches).
  /// Chip checkpoints taken at batch boundaries.
  std::uint64_t checkpoints = 0;
  /// Replacement chips restored from the last checkpoint after a
  /// quarantine (vs. starting from fresh silicon).
  std::uint64_t chip_restores = 0;
  // Energy accounting (zero unless FarmConfig::dvs or chip energy
  // metering is enabled — every export below is presence-gated on it).
  /// Femtojoules billed to served jobs (sum of JobOutcome::energy_fj).
  std::uint64_t energy_fj = 0;
  /// DVS ladder steps the governor actually took.
  std::uint64_t dvs_level_changes = 0;

  /// Turnaround (finished_at - queued_at) and queue wait
  /// (started_at - queued_at), in farm ticks.
  RunningStats latency;
  RunningStats queue_wait;
  /// Turnaround distribution; exact percentiles below the reservoir
  /// capacity, bounded-memory estimates past it.
  QuantileSketch latency_sketch;
  /// Host-side checkpoint cost: serialised bytes per checkpoint, and
  /// wall microseconds spent serialising (telemetry only — never feeds
  /// back into deterministic outcomes).
  RunningStats checkpoint_bytes;
  RunningStats checkpoint_micros;
  /// Size the chip's *full* flat snapshot would have been at each
  /// checkpoint. With incremental checkpoints on, checkpoint_bytes
  /// records the emitted delta container instead, and
  /// checkpoint_bytes.mean() / checkpoint_full_bytes.mean() is the
  /// compression the incremental path bought; with it off, the two
  /// series are identical.
  RunningStats checkpoint_full_bytes;
  /// Per-job energy bill distribution, femtojoules.
  RunningStats job_energy_fj;

  /// Folds one served outcome into the counters and distributions.
  void record(const scaling::JobOutcome& outcome);

  /// Exact parallel reduction of another worker's metrics.
  void merge(const FarmMetrics& other);

  std::uint64_t served() const {
    return completed + deadlocked + timed_out + no_allocation + errors;
  }

  /// Latency percentile over the recorded distribution, q in [0, 1].
  double latency_percentile(double q) const {
    return latency_sketch.quantile(q);
  }

  /// Multi-line human-readable summary (ticks labelled by the caller).
  std::string render(const std::string& tick_unit = "us") const;

  /// Exports every counter and distribution into `registry` under
  /// "farm." names — the bridge from the farm's private accumulation to
  /// the ObsSnapshot exporters.
  void export_into(MetricRegistry& registry) const;
};

}  // namespace vlsip::obs
