#include "obs/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace vlsip::obs {

void ObsSnapshot::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", kJsonSchemaVersion);
  w.key("info");
  w.begin_object();
  for (const auto& [k, v] : info) w.field(k, v);
  w.end_object();
  w.key("metrics");
  metrics.write_json(w);
  if (trace != nullptr) {
    w.key("trace");
    w.begin_object();
    w.field("enabled", trace->enabled());
    w.field("events", trace->entries().size());
    w.field("dropped", trace->dropped());
    w.end_object();
  }
  w.end_object();
  out << "\n";
}

std::string ObsSnapshot::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

bool ObsSnapshot::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

bool ObsSnapshot::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  static const TraceSink empty_sink;
  write_chrome_trace(trace != nullptr ? *trace : empty_sink, out);
  return static_cast<bool>(out);
}

}  // namespace vlsip::obs
