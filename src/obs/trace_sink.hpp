// TraceSink — the structured event store of the observability spine.
//
// Every layer of the simulator records *typed* events: a cycle stamp, a
// duration (0 = instant), the producing layer, a node/cluster/worker id
// and a category, plus the human-readable message the old string Trace
// carried. Recording is disabled by default and costs one branch per
// call when off — the discipline the executor hot path relies on.
//
// Compatibility: `vlsip::Trace` (common/trace.hpp) is now an alias of
// this class. The legacy record(cycle, category, message) entry point
// maps to an untyped event (layer kOther, no id), and count()/
// contains()/first_cycle_of()/render() behave exactly as the old Trace
// did, so every existing producer and test keeps working unchanged.
// New call sites should prefer event(), which carries layer/id/duration
// into the chrome-trace exporter.
//
// A sink may be capacity-capped: set_capacity(N) turns it into a
// bounded ring that keeps only the N most recent events (oldest are
// evicted and counted in dropped()). Long-running services — the
// runtime/ chip farm in particular — enable this so tracing cannot grow
// memory without bound. Default is unlimited.
//
// Export: write_chrome_trace() renders the event buffer as a
// chrome://tracing "traceEvents" JSON document loadable in Perfetto:
// one track per layer (pid) and per id (tid), complete ("X") events for
// spans and instant ("i") events otherwise.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

namespace vlsip::obs {

/// The producing subsystem of an event — the chrome-trace "process".
enum class Layer : std::uint8_t {
  kOther = 0,  // legacy string traces with no layer tag
  kAp,         // executor / configuration pipeline
  kCsd,        // dynamic channel segmentation network
  kNoc,        // router fabric
  kScaling,    // fuse/split/compaction, state machine
  kRuntime,    // chip farm: admission, batching, health
  kFault,      // injected faults and recoveries
  kCore,       // whole-chip facade
  kNet,        // distributed farm: hub/worker daemon, wire protocol
};

inline constexpr std::size_t kLayerCount = 9;

const char* to_string(Layer layer);

class TraceSink {
 public:
  struct Event {
    std::uint64_t cycle;
    std::string category;
    std::string message;
    /// Span length in cycles; 0 renders as an instant event.
    std::uint64_t dur = 0;
    Layer layer = Layer::kOther;
    /// Node / cluster / worker id; -1 = not tied to one.
    std::int64_t id = -1;
  };

  /// The old Trace's name for its element type.
  using Entry = Event;

  /// A disabled sink records nothing.
  explicit TraceSink(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Caps the sink at `max_entries` (0 = unlimited, the default).
  /// When full, recording evicts the oldest event. Shrinking below the
  /// current size evicts immediately.
  void set_capacity(std::size_t max_entries);
  std::size_t capacity() const { return capacity_; }

  /// Events evicted by the capacity cap over the sink's lifetime.
  std::uint64_t dropped() const { return dropped_; }

  /// Structured record — the preferred entry point.
  void event(std::uint64_t cycle, Layer layer, std::string category,
             std::int64_t id, std::string message, std::uint64_t dur = 0);

  /// Legacy entry point (the old Trace::record): an untyped instant.
  void record(std::uint64_t cycle, std::string category,
              std::string message);

  const std::deque<Event>& entries() const { return entries_; }

  /// Empties the event buffer. dropped() is a *lifetime* counter and is
  /// deliberately NOT reset: it measures how much history the capacity
  /// cap has cost since construction, so periodic clear()-and-inspect
  /// consumers (the farm's trace scraping, long-soak tests) can still
  /// detect that eviction ever happened. Events discarded by clear()
  /// itself are not counted as dropped — they were surrendered, not
  /// evicted.
  void clear() { entries_.clear(); }

  /// Number of events whose category equals `category`.
  std::size_t count(const std::string& category) const;

  /// True if any event's message contains `needle`.
  bool contains(const std::string& needle) const;

  /// Cycle of the first event whose message contains `needle`;
  /// returns false if none.
  bool first_cycle_of(const std::string& needle,
                      std::uint64_t& cycle_out) const;

  /// Renders "cycle  category  message" lines (the old Trace format).
  std::string render() const;

 private:
  bool enabled_;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::deque<Event> entries_;
};

/// Writes the sink's events as a chrome://tracing JSON document
/// (loadable in Perfetto / chrome://tracing). One "process" per layer,
/// one "thread" per event id; events with dur > 0 become complete ("X")
/// events, instants become "i" events. Timestamps are simulator cycles
/// reported as microseconds (1 cycle = 1 us in the viewer).
void write_chrome_trace(const TraceSink& sink, std::ostream& out);

}  // namespace vlsip::obs

namespace vlsip {
/// The historical name. common/trace.hpp re-exports this alias; new
/// code should say obs::TraceSink.
using Trace = obs::TraceSink;
}  // namespace vlsip
