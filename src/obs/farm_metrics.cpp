#include "obs/farm_metrics.hpp"

#include <sstream>

#include "common/table.hpp"
#include "scaling/job.hpp"

namespace vlsip::obs {

void FarmMetrics::record(const scaling::JobOutcome& outcome) {
  switch (outcome.status) {
    case scaling::JobStatus::kCompleted: ++completed; break;
    case scaling::JobStatus::kDeadlocked: ++deadlocked; break;
    case scaling::JobStatus::kTimedOut: ++timed_out; break;
    case scaling::JobStatus::kNoAllocation: ++no_allocation; break;
    case scaling::JobStatus::kRejected: ++rejected; return;
    case scaling::JobStatus::kCancelled: ++cancelled; return;
    case scaling::JobStatus::kError:
    case scaling::JobStatus::kPending: ++errors; break;
  }
  config_cycles += outcome.config_cycles;
  exec_cycles += outcome.exec_cycles;
  faults += outcome.faults;
  if (outcome.status == scaling::JobStatus::kCompleted &&
      outcome.attempts > 1) {
    ++degraded_completed;
  }
  if (outcome.energy_fj > 0) {
    energy_fj += outcome.energy_fj;
    job_energy_fj.add(static_cast<double>(outcome.energy_fj));
  }
  const double turnaround = static_cast<double>(outcome.turnaround());
  latency.add(turnaround);
  latency_sketch.add(turnaround);
  queue_wait.add(
      static_cast<double>(outcome.started_at - outcome.queued_at));
}

void FarmMetrics::merge(const FarmMetrics& other) {
  submitted += other.submitted;
  admitted += other.admitted;
  rejected += other.rejected;
  cancelled += other.cancelled;
  completed += other.completed;
  deadlocked += other.deadlocked;
  timed_out += other.timed_out;
  no_allocation += other.no_allocation;
  errors += other.errors;
  batches += other.batches;
  fuse_reuses += other.fuse_reuses;
  config_cycles += other.config_cycles;
  exec_cycles += other.exec_cycles;
  faults += other.faults;
  retries += other.retries;
  worker_stalls += other.worker_stalls;
  worker_crashes += other.worker_crashes;
  quarantined_chips += other.quarantined_chips;
  degraded_completed += other.degraded_completed;
  health_checks += other.health_checks;
  health_compactions += other.health_compactions;
  injected_faults += other.injected_faults;
  fault_events_applied += other.fault_events_applied;
  fault_events_skipped += other.fault_events_skipped;
  fault_refusals += other.fault_refusals;
  routes_rerouted += other.routes_rerouted;
  routes_dropped += other.routes_dropped;
  checkpoints += other.checkpoints;
  chip_restores += other.chip_restores;
  energy_fj += other.energy_fj;
  dvs_level_changes += other.dvs_level_changes;
  job_energy_fj.merge(other.job_energy_fj);
  latency.merge(other.latency);
  queue_wait.merge(other.queue_wait);
  latency_sketch.merge(other.latency_sketch);
  checkpoint_bytes.merge(other.checkpoint_bytes);
  checkpoint_micros.merge(other.checkpoint_micros);
  checkpoint_full_bytes.merge(other.checkpoint_full_bytes);
}

std::string FarmMetrics::render(const std::string& tick_unit) const {
  std::ostringstream out;
  out << "jobs: " << served() << " served (" << completed << " completed, "
      << deadlocked << " deadlocked, " << timed_out << " timed out, "
      << no_allocation << " unallocatable, " << errors << " errored); "
      << rejected << " rejected, " << cancelled << " cancelled\n";
  out << "batches: " << batches << " (" << fuse_reuses
      << " fuse reuses)\n";
  out << "simulated: " << config_cycles << " config + " << exec_cycles
      << " exec cycles, " << faults << " faults\n";
  if (injected_faults + retries + quarantined_chips + worker_stalls +
          worker_crashes + health_compactions >
      0) {
    out << "degraded: " << injected_faults << " injected faults, "
        << retries << " retries, " << degraded_completed
        << " completed degraded, " << worker_stalls << " stalls, "
        << worker_crashes << " crashes, " << quarantined_chips
        << " chips quarantined, " << health_compactions << "/"
        << health_checks << " health checks compacted\n";
  }
  if (checkpoints > 0) {
    out << "checkpoints: " << checkpoints << " taken ("
        << format_sig(checkpoint_bytes.mean(), 4) << " bytes mean";
    if (checkpoint_full_bytes.count() > 0 &&
        checkpoint_full_bytes.mean() > checkpoint_bytes.mean()) {
      out << ", " << format_sig(checkpoint_full_bytes.mean() /
                                    checkpoint_bytes.mean(),
                                3)
          << "x incremental compression";
    }
    out << "), " << chip_restores << " chips restored\n";
  }
  if (energy_fj > 0) {
    out << "energy: " << energy_fj << " fJ billed to jobs (mean "
        << format_sig(job_energy_fj.mean(), 4) << " fJ/job), "
        << dvs_level_changes << " DVS level changes\n";
  }
  if (latency.count() > 0) {
    out << "latency (" << tick_unit << "): mean "
        << format_sig(latency.mean(), 4) << ", p50 "
        << format_sig(latency_percentile(0.50), 4) << ", p95 "
        << format_sig(latency_percentile(0.95), 4) << ", p99 "
        << format_sig(latency_percentile(0.99), 4) << ", max "
        << format_sig(latency.max(), 4) << "\n";
    out << "queue wait (" << tick_unit << "): mean "
        << format_sig(queue_wait.mean(), 4) << ", max "
        << format_sig(queue_wait.max(), 4) << "\n";
  }
  return out.str();
}

void FarmMetrics::export_into(MetricRegistry& registry) const {
  registry.counter("farm.submitted") += submitted;
  registry.counter("farm.admitted") += admitted;
  registry.counter("farm.rejected") += rejected;
  registry.counter("farm.cancelled") += cancelled;
  registry.counter("farm.served") += served();
  registry.counter("farm.completed") += completed;
  registry.counter("farm.deadlocked") += deadlocked;
  registry.counter("farm.timed_out") += timed_out;
  registry.counter("farm.no_allocation") += no_allocation;
  registry.counter("farm.errors") += errors;
  registry.counter("farm.batches") += batches;
  registry.counter("farm.fuse_reuses") += fuse_reuses;
  registry.counter("farm.config_cycles") += config_cycles;
  registry.counter("farm.exec_cycles") += exec_cycles;
  registry.counter("farm.faults") += faults;
  registry.counter("farm.retries") += retries;
  registry.counter("farm.worker_stalls") += worker_stalls;
  registry.counter("farm.worker_crashes") += worker_crashes;
  registry.counter("farm.quarantined_chips") += quarantined_chips;
  registry.counter("farm.degraded_completed") += degraded_completed;
  registry.counter("farm.health_checks") += health_checks;
  registry.counter("farm.health_compactions") += health_compactions;
  registry.counter("fault.injected") += injected_faults;
  registry.counter("fault.applied") += fault_events_applied;
  registry.counter("fault.skipped") += fault_events_skipped;
  registry.counter("fault.refusals") += fault_refusals;
  registry.counter("fault.routes_rerouted") += routes_rerouted;
  registry.counter("fault.routes_dropped") += routes_dropped;
  registry.counter("farm.checkpoints") += checkpoints;
  registry.counter("farm.chip_restores") += chip_restores;
  if (checkpoint_bytes.count() > 0) {
    registry.gauge("farm.checkpoint_bytes_mean") = checkpoint_bytes.mean();
    registry.gauge("farm.checkpoint_micros_mean") = checkpoint_micros.mean();
    registry.gauge("farm.checkpoint_micros_max") = checkpoint_micros.max();
    registry.gauge("farm.checkpoint_full_bytes_mean") =
        checkpoint_full_bytes.mean();
  }
  if (energy_fj > 0 || dvs_level_changes > 0) {
    registry.counter("farm.energy_fj") += energy_fj;
    registry.counter("farm.dvs_level_changes") += dvs_level_changes;
    if (job_energy_fj.count() > 0) {
      registry.gauge("farm.job_energy_fj_mean") = job_energy_fj.mean();
      registry.gauge("farm.job_energy_fj_max") = job_energy_fj.max();
    }
  }
  registry.sketch("farm.latency").merge(latency_sketch);
  if (queue_wait.count() > 0) {
    registry.gauge("farm.queue_wait_mean") = queue_wait.mean();
    registry.gauge("farm.queue_wait_max") = queue_wait.max();
  }
}

}  // namespace vlsip::obs
