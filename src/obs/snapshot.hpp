// ObsSnapshot — the one-call export bundle every vlsipc verb (and any
// embedding service) uses instead of hand-rolled JSON assembly.
//
// A snapshot is a point-in-time bundle of:
//   * info    — string key/values identifying the run (verb, manifest,
//               seed, tick unit), kept in insertion order;
//   * metrics — a MetricRegistry merged from every layer's probes;
//   * trace   — an optional borrowed TraceSink for chrome-trace export.
//
// to_json() renders {"info":{...},"metrics":{...},"trace":{...}};
// write_json_file / write_chrome_trace_file are the --obs and
// --chrome-trace flag implementations.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace vlsip::obs {

struct ObsSnapshot {
  /// Run-identifying key/values, rendered in insertion order.
  std::vector<std::pair<std::string, std::string>> info;
  MetricRegistry metrics;
  /// Borrowed, not owned; may be null (no trace section then).
  const TraceSink* trace = nullptr;

  void add_info(std::string key, std::string value) {
    info.emplace_back(std::move(key), std::move(value));
  }

  /// Renders the whole snapshot as one JSON document.
  std::string to_json() const;
  void write_json(std::ostream& out) const;

  /// Writes to_json() to `path`; returns false (and leaves no partial
  /// file behind semantics to the OS) when the file cannot be opened.
  bool write_json_file(const std::string& path) const;

  /// Writes the trace as chrome://tracing JSON to `path`. A null or
  /// disabled trace still produces a valid (empty) document.
  bool write_chrome_trace_file(const std::string& path) const;
};

}  // namespace vlsip::obs
