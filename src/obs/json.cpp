#include "obs/json.hpp"

#include <cstdio>

#include "common/require.hpp"

namespace vlsip::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already wrote its separator
  }
  if (!scopes_.empty()) {
    if (!scopes_.back()) out_ << ",";
    scopes_.back() = false;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ << "{";
  scopes_.push_back(true);
}

void JsonWriter::end_object() {
  VLSIP_REQUIRE(!scopes_.empty(), "end_object without open scope");
  VLSIP_REQUIRE(!key_pending_, "end_object with a dangling key");
  scopes_.pop_back();
  out_ << "}";
}

void JsonWriter::begin_array() {
  separate();
  out_ << "[";
  scopes_.push_back(true);
}

void JsonWriter::end_array() {
  VLSIP_REQUIRE(!scopes_.empty(), "end_array without open scope");
  VLSIP_REQUIRE(!key_pending_, "end_array with a dangling key");
  scopes_.pop_back();
  out_ << "]";
}

void JsonWriter::key(const std::string& name) {
  VLSIP_REQUIRE(!key_pending_, "two keys in a row");
  separate();
  out_ << "\"" << json_escape(name) << "\":";
  key_pending_ = true;
}

void JsonWriter::value(const std::string& v) {
  separate();
  out_ << "\"" << json_escape(v) << "\"";
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(bool v) {
  separate();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ << v;
}

void JsonWriter::value(double v) {
  separate();
  // ostream default formatting (6 significant digits), matching the
  // pre-refactor hand-rolled emitters so committed outputs stay stable.
  out_ << v;
}

void JsonWriter::raw(const std::string& json) {
  separate();
  out_ << json;
}

}  // namespace vlsip::obs
