// MetricRegistry + QuantileSketch — the named-metric half of the
// observability spine.
//
// A MetricRegistry holds named counters, gauges, fixed-bucket
// histograms (vlsip::Histogram) and quantile sketches, keyed by
// dot-separated names ("csd.grants", "farm.latency"). Registries merge
// exactly (parallel reduction across farm workers) and export
// deterministically (names are kept sorted), so the same run always
// produces the same JSON.
//
// QuantileSketch replaces the runtime layer's bespoke
// keep-every-sample percentile store: a bounded reservoir backed by a
// base-2 log histogram. Below the reservoir capacity every sample is
// kept and quantiles are *exact* — the regime every test operates in,
// so p50/p95/p99 are unchanged to the last bit. Past capacity the
// reservoir downsamples deterministically (seeded splitmix64, no
// global RNG) and quantiles come from the log histogram with linear
// interpolation inside the bucket, bounding memory for
// million-job serving runs where the old store grew without limit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace vlsip::obs {

class JsonWriter;

class QuantileSketch {
 public:
  /// `capacity` bounds the reservoir (and the exact regime).
  explicit QuantileSketch(std::size_t capacity = 4096);

  void add(double x);

  /// Deterministic reduction of another sketch into this one. Exact
  /// when the combined count fits the reservoir; a bounded-memory
  /// approximation past it.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return n_; }
  /// True while every sample is still held (quantiles are exact).
  bool exact() const { return n_ <= reservoir_.size(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }
  double mean() const { return summary_.mean(); }
  const RunningStats& summary() const { return summary_; }

  /// q in [0,1]; 0 for an empty sketch. Exact order statistics while
  /// exact(), log-histogram interpolation afterwards.
  double quantile(double q) const;

 private:
  void reservoir_add(double x);
  std::size_t log_bucket(double x) const;

  std::size_t capacity_;
  std::uint64_t n_ = 0;
  std::vector<double> reservoir_;
  RunningStats summary_;
  /// Base-2 log histogram over |x|: bucket b covers [2^(b-1), 2^b) for
  /// b >= 1, bucket 0 covers [0, 1). Negative samples clamp to 0 —
  /// latencies and cycle counts are non-negative.
  std::vector<std::uint64_t> log_counts_;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ull;  // deterministic splitmix64
};

/// Named counters / gauges / histograms / sketches. Lookup returns a
/// stable reference (std::map nodes never move), so hot paths resolve a
/// metric once and bump the reference.
class MetricRegistry {
 public:
  /// Monotonic event count. Created at zero on first lookup.
  std::uint64_t& counter(const std::string& name);

  /// Point-in-time value. Created at zero on first lookup.
  double& gauge(const std::string& name);

  /// Fixed-bucket histogram; the shape is fixed by the first lookup
  /// (later lookups ignore lo/hi/buckets).
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets);

  /// Quantile sketch (latency-style distributions).
  QuantileSketch& sketch(const std::string& name);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           sketches_.empty();
  }

  /// Exact parallel reduction: counters add, gauges take the other's
  /// value (last writer wins), histograms and sketches merge.
  void merge(const MetricRegistry& other);

  /// Writes {"counters":{...},"gauges":{...},"histograms":{...},
  /// "sketches":{...}} as one JSON object, names sorted.
  void write_json(JsonWriter& w) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, QuantileSketch>& sketches() const {
    return sketches_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, QuantileSketch> sketches_;
};

}  // namespace vlsip::obs
