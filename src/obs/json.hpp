// Minimal streaming JSON writer — the one emission path shared by every
// exporter (obs snapshots, chrome traces) and by the vlsipc verbs, which
// previously each hand-rolled escaping and comma bookkeeping.
//
// The writer is strictly streaming: values are appended to an
// std::ostream as they are written, with an explicit scope stack for
// comma placement. It never buffers the document, so a whole chaos
// session's trace can be exported without holding two copies in memory.
//
// Usage:
//   JsonWriter w(out);
//   w.begin_object();
//   w.field("name", "fir");          // key + string value
//   w.key("metrics"); w.begin_object();
//   w.field("cycles", 1234u);
//   w.end_object();
//   w.end_object();                  // document complete
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vlsip::obs {

/// Version of every JSON document the toolchain emits (run/serve/chaos
/// reports, error objects, obs snapshots, chrome traces). Consumers
/// should check it before parsing. Bump-on-change rule (see
/// docs/OBSERVABILITY.md): renaming, removing, or changing the meaning
/// of a field bumps the version; adding fields does not. Documents
/// carry it as a top-level "schema_version" field (chrome traces under
/// "otherData", where the format allows metadata).
inline constexpr std::uint64_t kJsonSchemaVersion = 1;

/// Escapes quotes, backslashes and control characters per RFC 8259.
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes the key of the next value inside an object scope.
  void key(const std::string& name);

  // Scalar values (as array elements, or after key()).
  void value(const std::string& v);
  void value(const char* v);
  void value(bool v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(double v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  /// key() + value() in one call.
  template <typename T>
  void field(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  /// Emits pre-rendered JSON verbatim (for values already serialized).
  void raw(const std::string& json);

  /// Depth of open scopes; 0 once the document is complete.
  std::size_t depth() const { return scopes_.size(); }

 private:
  void separate();

  std::ostream& out_;
  /// One flag per open scope: true until the first element is written.
  std::vector<bool> scopes_;
  bool key_pending_ = false;
};

}  // namespace vlsip::obs
