#include "obs/trace_sink.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace vlsip::obs {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kOther: return "other";
    case Layer::kAp: return "ap";
    case Layer::kCsd: return "csd";
    case Layer::kNoc: return "noc";
    case Layer::kScaling: return "scaling";
    case Layer::kRuntime: return "runtime";
    case Layer::kFault: return "fault";
    case Layer::kCore: return "core";
    case Layer::kNet: return "net";
  }
  return "other";
}

void TraceSink::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  while (capacity_ != 0 && entries_.size() > capacity_) {
    entries_.pop_front();
    ++dropped_;
  }
}

void TraceSink::event(std::uint64_t cycle, Layer layer,
                      std::string category, std::int64_t id,
                      std::string message, std::uint64_t dur) {
  if (!enabled_) return;
  if (capacity_ != 0 && entries_.size() == capacity_) {
    entries_.pop_front();
    ++dropped_;
  }
  entries_.push_back(
      Event{cycle, std::move(category), std::move(message), dur, layer, id});
}

void TraceSink::record(std::uint64_t cycle, std::string category,
                       std::string message) {
  event(cycle, Layer::kOther, std::move(category), -1, std::move(message));
}

std::size_t TraceSink::count(const std::string& category) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.category == category) ++n;
  }
  return n;
}

bool TraceSink::contains(const std::string& needle) const {
  for (const auto& e : entries_) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool TraceSink::first_cycle_of(const std::string& needle,
                               std::uint64_t& cycle_out) const {
  for (const auto& e : entries_) {
    if (e.message.find(needle) != std::string::npos) {
      cycle_out = e.cycle;
      return true;
    }
  }
  return false;
}

std::string TraceSink::render() const {
  std::ostringstream out;
  for (const auto& e : entries_) {
    out << e.cycle << "\t" << e.category << "\t" << e.message << "\n";
  }
  return out.str();
}

void write_chrome_trace(const TraceSink& sink, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Name each layer's track so Perfetto shows "ap", "csd", ... instead
  // of bare pids.
  bool layer_seen[kLayerCount] = {};
  for (const auto& e : sink.entries()) {
    layer_seen[static_cast<std::size_t>(e.layer)] = true;
  }
  for (std::size_t l = 0; l < kLayerCount; ++l) {
    if (!layer_seen[l]) continue;
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", l);
    w.key("args");
    w.begin_object();
    w.field("name", to_string(static_cast<Layer>(l)));
    w.end_object();
    w.end_object();
  }
  for (const auto& e : sink.entries()) {
    w.begin_object();
    w.field("name", e.category);
    w.field("cat", to_string(e.layer));
    w.field("ph", e.dur > 0 ? "X" : "i");
    w.field("ts", e.cycle);
    if (e.dur > 0) {
      w.field("dur", e.dur);
    } else {
      w.field("s", "t");  // instant scope: thread
    }
    w.field("pid", static_cast<std::uint64_t>(e.layer));
    w.field("tid", e.id < 0 ? std::int64_t{0} : e.id);
    if (!e.message.empty()) {
      w.key("args");
      w.begin_object();
      w.field("message", e.message);
      if (e.id >= 0) w.field("id", e.id);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.field("schema_version", kJsonSchemaVersion);
  w.end_object();
  w.end_object();
  out << "\n";
}

}  // namespace vlsip::obs
