// A small dataflow language and its compiler to object code.
//
// §5: "An application compiler needs to simply take care of the linear
// array size to fit the application datapath to the fused region" — the
// adaptive processor needs no instruction scheduling, so its compiler is
// little more than expression-to-dependency translation. This module is
// that compiler: a line-oriented language whose programs become object
// libraries plus global configuration streams.
//
//   # dot-product step with a running sum
//   input x float
//   input w float
//   rec acc = x * w + delay(acc, 0.0)
//   output acc
//
// Statements:
//   input NAME [float]         declare an external input port
//   output NAME [= expr]       declare an output port
//   NAME = expr                define a value
//   rec NAME = expr            define a value that may reference itself
//                              inside delay(...) (feedback loops)
//   store(addr, value)         write to the memory object
//
// Expressions: + - * / %  with the usual precedence, comparisons > < ==
// (lowest), parentheses, integer and float literals, and the intrinsic
// calls gate(c,v), gatenot(c,v), merge(a,b), select(c,a,b), load(addr),
// iota(n), delay(v, init), neg(v), buff(v), shl/shr/and/or/xor(a,b).
// Typing is inferred: float literals/inputs make an expression float
// (kFAdd vs kIAdd); mixing a float with an int *variable* is an error.
#pragma once

#include <string>

#include "arch/datapath.hpp"
#include "core/status.hpp"

namespace vlsip::lang {

/// Compiles `source` to a Program; throws vlsip::PreconditionError with
/// a line number on any lexical, syntactic, or type error.
arch::Program compile(const std::string& source);

/// A compile failure with the offending source line attributed.
/// `line` is 1-based and always >= 1 for non-empty sources; `message`
/// is the full human-readable text including the "line N: " prefix.
struct CompileError {
  int line = 1;
  std::string message;
};

/// Non-throwing facade over compile(), matching the try_fuse /
/// try_run_program convention: expected failures (bad source from a
/// user, a tool, or a fuzzer) come back as kInvalidArgument instead of
/// an exception. If `error` is non-null it receives the typed error on
/// failure and is left untouched on success.
StatusOr<arch::Program> try_compile(const std::string& source,
                                    CompileError* error = nullptr);

}  // namespace vlsip::lang
