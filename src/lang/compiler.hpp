// A small dataflow language and its compiler to object code.
//
// §5: "An application compiler needs to simply take care of the linear
// array size to fit the application datapath to the fused region" — the
// adaptive processor needs no instruction scheduling, so its compiler is
// little more than expression-to-dependency translation. This module is
// that compiler: a line-oriented language whose programs become object
// libraries plus global configuration streams.
//
//   # dot-product step with a running sum
//   input x float
//   input w float
//   rec acc = x * w + delay(acc, 0.0)
//   output acc
//
// Statements:
//   input NAME [float]         declare an external input port
//   output NAME [= expr]       declare an output port
//   NAME = expr                define a value
//   rec NAME = expr            define a value that may reference itself
//                              inside delay(...) (feedback loops)
//   store(addr, value)         write to the memory object
//
// Expressions: + - * / %  with the usual precedence, comparisons > < ==
// (lowest), parentheses, integer and float literals, and the intrinsic
// calls gate(c,v), gatenot(c,v), merge(a,b), select(c,a,b), load(addr),
// iota(n), delay(v, init), neg(v), buff(v), shl/shr/and/or/xor(a,b).
// Typing is inferred: float literals/inputs make an expression float
// (kFAdd vs kIAdd); mixing a float with an int *variable* is an error.
#pragma once

#include <string>

#include "arch/datapath.hpp"

namespace vlsip::lang {

/// Compiles `source` to a Program; throws vlsip::PreconditionError with
/// a line number on any lexical, syntactic, or type error.
arch::Program compile(const std::string& source);

}  // namespace vlsip::lang
