#include "lang/compiler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "common/require.hpp"

namespace vlsip::lang {

namespace {

using arch::DatapathBuilder;
using arch::ObjectId;
using arch::Opcode;

enum class Type { kInt, kFloat };

struct Value {
  ObjectId id = arch::kNoObject;
  Type type = Type::kInt;
};

// ---- lexer -----------------------------------------------------------------

enum class Tok {
  kIdent,
  kInt,
  kFloat,
  kPunct,  // single char in text[0], or "=="
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
};

class Lexer {
 public:
  Lexer(const std::string& line, int line_no)
      : line_(line), line_no_(line_no) {
    advance();
  }

  const Token& peek() const { return current_; }
  int line_no() const { return line_no_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }
  bool at_end() const { return current_.kind == Tok::kEnd; }

  [[noreturn]] void fail(const std::string& why) const {
    throw vlsip::PreconditionError("line " + std::to_string(line_no_) +
                                   ": " + why);
  }

 private:
  void advance() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= line_.size() || line_[pos_] == '#') {
      current_ = Token{Tok::kEnd, "", 0, 0.0};
      return;
    }
    const char c = line_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '_')) {
        ++pos_;
      }
      current_ = Token{Tok::kIdent, line_.substr(start, pos_ - start), 0, 0.0};
      // After a value, '-' is subtraction, not a sign.
      numeric_context_ = false;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < line_.size() &&
         std::isdigit(static_cast<unsigned char>(line_[pos_ + 1])) &&
         numeric_context_)) {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      bool is_float = false;
      while (pos_ < line_.size() &&
             (std::isdigit(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '.')) {
        if (line_[pos_] == '.') is_float = true;
        ++pos_;
      }
      const auto text = line_.substr(start, pos_ - start);
      Token t;
      t.text = text;
      try {
        if (is_float) {
          t.kind = Tok::kFloat;
          t.float_value = std::stod(text);
        } else {
          t.kind = Tok::kInt;
          t.int_value = std::stoll(text);
        }
      } catch (const std::exception&) {
        fail("numeric literal '" + text + "' out of range");
      }
      current_ = t;
      numeric_context_ = false;
      return;
    }
    if (c == '=' && pos_ + 1 < line_.size() && line_[pos_ + 1] == '=') {
      pos_ += 2;
      current_ = Token{Tok::kPunct, "==", 0, 0.0};
      numeric_context_ = true;
      return;
    }
    static const std::string kPunct = "+-*/%()<>,=";
    if (kPunct.find(c) != std::string::npos) {
      ++pos_;
      current_ = Token{Tok::kPunct, std::string(1, c), 0, 0.0};
      // After an operator or '(' or ',' a '-' starts a negative literal.
      numeric_context_ = (c != ')');
      return;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string line_;
  int line_no_;
  std::size_t pos_ = 0;
  Token current_;
  bool numeric_context_ = true;
};

// ---- parser / code generator ------------------------------------------------

class Compiler {
 public:
  arch::Program run(const std::string& source) {
    std::size_t start = 0;
    int line_no = 0;
    while (start <= source.size()) {
      const auto end = source.find('\n', start);
      const auto line = source.substr(
          start, end == std::string::npos ? std::string::npos : end - start);
      ++line_no;
      // Lexer::fail already prefixes "line N: "; anything else that
      // escapes a statement (a DatapathBuilder precondition, say) gets
      // the line attributed here so every compile error names a line.
      try {
        parse_line(line, line_no);
      } catch (const std::exception& e) {
        fail_at(line_no, e.what());
      }
      if (end == std::string::npos) break;
      start = end + 1;
    }
    // Close the pending feedback loops.
    for (const auto& [placeholder, target, bind_line] : pending_binds_) {
      const auto it = symbols_.find(target);
      if (it == symbols_.end()) {
        fail_at(bind_line, "feedback target '" + target +
                               "' was never defined");
      }
      builder_.bind(placeholder, it->second.id);
    }
    if (!has_output_) {
      fail_at(line_no == 0 ? 1 : line_no, "program declares no output");
    }
    try {
      return std::move(builder_).build();
    } catch (const std::exception& e) {
      fail_at(line_no == 0 ? 1 : line_no, e.what());
    }
  }

 private:
  void parse_line(const std::string& line, int line_no) {
    Lexer lex(line, line_no);
    if (lex.at_end()) return;

    const Token head = lex.take();
    if (head.kind != Tok::kIdent) lex.fail("statement must start with a name");

    if (head.text == "input") {
      const Token name = lex.take();
      if (name.kind != Tok::kIdent) lex.fail("input needs a name");
      Type type = Type::kInt;
      if (!lex.at_end()) {
        const Token t = lex.take();
        if (t.kind == Tok::kIdent && t.text == "float") {
          type = Type::kFloat;
        } else {
          lex.fail("expected 'float' or end of line after input name");
        }
      }
      define(name.text, Value{builder_.input(name.text), type}, lex);
      return;
    }
    if (head.text == "output") {
      const Token name = lex.take();
      if (name.kind != Tok::kIdent) lex.fail("output needs a name");
      Value v;
      if (!lex.at_end()) {
        expect_punct(lex, "=");
        v = parse_comparison(lex);
        define(name.text, v, lex);
      } else {
        v = lookup(name.text, lex);
      }
      builder_.output(name.text, v.id);
      has_output_ = true;
      end_of_line(lex);
      return;
    }
    if (head.text == "store") {
      expect_punct(lex, "(");
      const Value addr = parse_comparison(lex);
      expect_punct(lex, ",");
      const Value value = parse_comparison(lex);
      expect_punct(lex, ")");
      require_type(addr, Type::kInt, "store address", lex);
      builder_.op(Opcode::kStore, addr.id, value.id);
      end_of_line(lex);
      return;
    }
    if (head.text == "rec") {
      const Token name = lex.take();
      if (name.kind != Tok::kIdent) lex.fail("rec needs a name");
      expect_punct(lex, "=");
      recursive_name_ = name.text;
      const Value v = parse_comparison(lex);
      recursive_name_.clear();
      define(name.text, v, lex);
      end_of_line(lex);
      return;
    }

    // Plain assignment: NAME = expr.
    expect_punct(lex, "=");
    const Value v = parse_comparison(lex);
    define(head.text, v, lex);
    end_of_line(lex);
  }

  // comparison := additive (('>'|'<'|'==') additive)?
  Value parse_comparison(Lexer& lex) {
    Value lhs = parse_additive(lex);
    if (lex.peek().kind == Tok::kPunct &&
        (lex.peek().text == ">" || lex.peek().text == "<" ||
         lex.peek().text == "==")) {
      const auto op = lex.take().text;
      Value rhs = parse_additive(lex);
      unify(lhs, rhs, lex);
      const Opcode opcode = op == ">"   ? Opcode::kCmpGt
                            : op == "<" ? Opcode::kCmpLt
                                        : Opcode::kCmpEq;
      // Comparisons are integer-valued.
      return Value{builder_.op(opcode, lhs.id, rhs.id), Type::kInt};
    }
    return lhs;
  }

  Value parse_additive(Lexer& lex) {
    Value lhs = parse_term(lex);
    while (lex.peek().kind == Tok::kPunct &&
           (lex.peek().text == "+" || lex.peek().text == "-")) {
      const auto op = lex.take().text;
      Value rhs = parse_term(lex);
      unify(lhs, rhs, lex);
      const bool f = lhs.type == Type::kFloat;
      const Opcode opcode = op == "+" ? (f ? Opcode::kFAdd : Opcode::kIAdd)
                                      : (f ? Opcode::kFSub : Opcode::kISub);
      lhs = Value{builder_.op(opcode, lhs.id, rhs.id), lhs.type};
    }
    return lhs;
  }

  Value parse_term(Lexer& lex) {
    Value lhs = parse_factor(lex);
    while (lex.peek().kind == Tok::kPunct &&
           (lex.peek().text == "*" || lex.peek().text == "/" ||
            lex.peek().text == "%")) {
      const auto op = lex.take().text;
      Value rhs = parse_factor(lex);
      unify(lhs, rhs, lex);
      const bool f = lhs.type == Type::kFloat;
      Opcode opcode;
      if (op == "*") {
        opcode = f ? Opcode::kFMul : Opcode::kIMul;
      } else if (op == "/") {
        opcode = f ? Opcode::kFDiv : Opcode::kIDiv;
      } else {
        if (f) lex.fail("'%' is integer-only");
        opcode = Opcode::kIRem;
      }
      lhs = Value{builder_.op(opcode, lhs.id, rhs.id), lhs.type};
    }
    return lhs;
  }

  Value parse_factor(Lexer& lex) {
    const Token t = lex.take();
    if (t.kind == Tok::kInt) {
      return Value{int_const(t.int_value), Type::kInt};
    }
    if (t.kind == Tok::kFloat) {
      return Value{float_const(t.float_value), Type::kFloat};
    }
    if (t.kind == Tok::kPunct && t.text == "(") {
      const Value v = parse_comparison(lex);
      expect_punct(lex, ")");
      return v;
    }
    if (t.kind == Tok::kIdent) {
      if (lex.peek().kind == Tok::kPunct && lex.peek().text == "(") {
        return parse_call(t.text, lex);
      }
      return lookup(t.text, lex);
    }
    lex.fail("expected a value");
  }

  Value parse_call(const std::string& name, Lexer& lex) {
    expect_punct(lex, "(");
    if (name == "delay") {
      // delay(expr-or-forward-name, literal-initial)
      Value body;
      bool forward = false;
      std::string forward_name;
      if (lex.peek().kind == Tok::kIdent &&
          !symbols_.contains(lex.peek().text) &&
          lex.peek().text == recursive_name_) {
        forward = true;
        forward_name = lex.take().text;
      } else {
        body = parse_comparison(lex);
      }
      expect_punct(lex, ",");
      const Token init = lex.take();
      expect_punct(lex, ")");
      if (forward) {
        const auto ph = builder_.placeholder();
        if (init.kind == Tok::kFloat) {
          builder_.set_initial_f(ph, init.float_value);
          pending_binds_.push_back({ph, forward_name, lex.line_no()});
          return Value{ph, Type::kFloat};
        }
        if (init.kind != Tok::kInt) lex.fail("delay initial must be a literal");
        builder_.set_initial_i(ph, init.int_value);
        pending_binds_.push_back({ph, forward_name, lex.line_no()});
        return Value{ph, Type::kInt};
      }
      if (init.kind == Tok::kFloat) {
        require_type(body, Type::kFloat, "delay of a float initial", lex);
        return Value{builder_.delay_f(body.id, init.float_value),
                     Type::kFloat};
      }
      if (init.kind != Tok::kInt) lex.fail("delay initial must be a literal");
      require_type(body, Type::kInt, "delay of an int initial", lex);
      return Value{builder_.delay_i(body.id, init.int_value), Type::kInt};
    }

    std::vector<Value> args;
    if (!(lex.peek().kind == Tok::kPunct && lex.peek().text == ")")) {
      args.push_back(parse_comparison(lex));
      while (lex.peek().kind == Tok::kPunct && lex.peek().text == ",") {
        lex.take();
        args.push_back(parse_comparison(lex));
      }
    }
    expect_punct(lex, ")");
    auto need = [&](std::size_t n) {
      if (args.size() != n) {
        lex.fail(name + " expects " + std::to_string(n) + " argument(s)");
      }
    };
    if (name == "gate" || name == "gatenot") {
      need(2);
      require_type(args[0], Type::kInt, name + " condition", lex);
      const Opcode op = name == "gate" ? Opcode::kGate : Opcode::kGateNot;
      return Value{builder_.op(op, args[0].id, args[1].id), args[1].type};
    }
    if (name == "merge") {
      need(2);
      unify(args[0], args[1], lex);
      return Value{builder_.op(Opcode::kMerge, args[0].id, args[1].id),
                   args[0].type};
    }
    if (name == "select") {
      need(3);
      require_type(args[0], Type::kInt, "select condition", lex);
      unify(args[1], args[2], lex);
      return Value{
          builder_.op(Opcode::kSelect, args[0].id, args[1].id, args[2].id),
          args[1].type};
    }
    if (name == "load") {
      need(1);
      require_type(args[0], Type::kInt, "load address", lex);
      // Loads are untyped words; treat as int by default (floatload via
      // arithmetic context is up to the program).
      return Value{builder_.op(Opcode::kLoad, args[0].id), Type::kInt};
    }
    if (name == "loadf") {
      need(1);
      require_type(args[0], Type::kInt, "load address", lex);
      return Value{builder_.op(Opcode::kLoad, args[0].id), Type::kFloat};
    }
    if (name == "iota") {
      need(1);
      require_type(args[0], Type::kInt, "iota count", lex);
      return Value{builder_.op(Opcode::kIota, args[0].id), Type::kInt};
    }
    if (name == "buff") {
      need(1);
      return Value{builder_.op(Opcode::kBuff, args[0].id), args[0].type};
    }
    if (name == "neg") {
      need(1);
      const Opcode op =
          args[0].type == Type::kFloat ? Opcode::kFNeg : Opcode::kINeg;
      return Value{builder_.op(op, args[0].id), args[0].type};
    }
    if (name == "shl" || name == "shr" || name == "and" || name == "or" ||
        name == "xor") {
      need(2);
      require_type(args[0], Type::kInt, name, lex);
      require_type(args[1], Type::kInt, name, lex);
      const Opcode op = name == "shl"   ? Opcode::kIShl
                        : name == "shr" ? Opcode::kIShr
                        : name == "and" ? Opcode::kIAnd
                        : name == "or"  ? Opcode::kIOr
                                        : Opcode::kIXor;
      return Value{builder_.op(op, args[0].id, args[1].id), Type::kInt};
    }
    lex.fail("unknown function '" + name + "'");
  }

  // ---- helpers ---------------------------------------------------------

  void define(const std::string& name, Value v, Lexer& lex) {
    if (symbols_.contains(name)) {
      lex.fail("redefinition of '" + name + "'");
    }
    symbols_[name] = v;
  }

  Value lookup(const std::string& name, Lexer& lex) {
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) lex.fail("unknown name '" + name + "'");
    return it->second;
  }

  void expect_punct(Lexer& lex, const std::string& p) {
    const Token t = lex.take();
    if (t.kind != Tok::kPunct || t.text != p) {
      lex.fail("expected '" + p + "'");
    }
  }

  void end_of_line(Lexer& lex) {
    if (!lex.at_end()) lex.fail("trailing tokens");
  }

  void unify(Value& a, Value& b, Lexer& lex) {
    if (a.type == b.type) return;
    // Literal-only promotion happened at const creation; mixing typed
    // values is an error (no conversion fabric in the object set).
    lex.fail("type mismatch: int and float operands");
  }

  void require_type(const Value& v, Type t, const std::string& what,
                    Lexer& lex) {
    if (v.type != t) {
      lex.fail(what + " must be " + (t == Type::kInt ? "int" : "float"));
    }
  }

  ObjectId int_const(std::int64_t v) {
    const auto key = std::pair<bool, std::uint64_t>(
        false, static_cast<std::uint64_t>(v));
    const auto it = const_cache_.find(key);
    if (it != const_cache_.end()) return it->second;
    const auto id = builder_.constant_i(v);
    const_cache_[key] = id;
    return id;
  }

  ObjectId float_const(double v) {
    const auto key =
        std::pair<bool, std::uint64_t>(true, arch::make_word_f(v).u);
    const auto it = const_cache_.find(key);
    if (it != const_cache_.end()) return it->second;
    const auto id = builder_.constant_f(v);
    const_cache_[key] = id;
    return id;
  }

  // Rethrows `why` as a PreconditionError attributed to `line_no`,
  // preserving an existing "line N: " prefix from an inner throw.
  [[noreturn]] static void fail_at(int line_no, const std::string& why) {
    if (why.rfind("line ", 0) == 0) throw vlsip::PreconditionError(why);
    throw vlsip::PreconditionError("line " + std::to_string(line_no) + ": " +
                                   why);
  }

  struct PendingBind {
    ObjectId placeholder;
    std::string target;
    int line;
  };

  DatapathBuilder builder_;
  std::map<std::string, Value> symbols_;
  std::map<std::pair<bool, std::uint64_t>, ObjectId> const_cache_;
  std::vector<PendingBind> pending_binds_;
  std::string recursive_name_;
  bool has_output_ = false;
};

// Parses the leading "line N: " prefix every compile error carries.
int error_line(const std::string& message) {
  if (message.rfind("line ", 0) != 0) return 1;
  int line = 0;
  std::size_t i = 5;
  while (i < message.size() &&
         std::isdigit(static_cast<unsigned char>(message[i]))) {
    line = line * 10 + (message[i] - '0');
    ++i;
  }
  return line > 0 ? line : 1;
}

}  // namespace

arch::Program compile(const std::string& source) {
  Compiler compiler;
  return compiler.run(source);
}

StatusOr<arch::Program> try_compile(const std::string& source,
                                    CompileError* error) {
  try {
    Compiler compiler;
    return compiler.run(source);
  } catch (const std::exception& e) {
    const std::string message = e.what();
    if (error != nullptr) {
      error->line = error_line(message);
      error->message = message;
    }
    return Status(StatusCode::kInvalidArgument, message);
  }
}

}  // namespace vlsip::lang
