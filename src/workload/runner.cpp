#include "workload/runner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "net/client.hpp"
#include "obs/json.hpp"
#include "runtime/farm_config_builder.hpp"
#include "runtime/replay.hpp"

namespace vlsip::workload {

namespace {

using scaling::JobOutcome;
using scaling::JobStatus;

constexpr std::size_t kStatusSlots = 8;

struct Agg {
  std::size_t jobs = 0;
  std::size_t by_status[kStatusSlots] = {0};
  std::vector<std::uint64_t> latencies;  // completed jobs only
  std::vector<std::uint64_t> energies;   // completed jobs, energy mode
  std::uint64_t exec_cycles = 0;
  std::uint64_t config_cycles = 0;
  std::uint64_t energy_fj = 0;

  void add(const JobOutcome* outcome, bool energy) {
    ++jobs;
    // A job with no outcome never reached the farm; count it rejected.
    const JobStatus status =
        outcome == nullptr ? JobStatus::kRejected : outcome->status;
    ++by_status[static_cast<std::size_t>(status)];
    if (outcome == nullptr) return;
    exec_cycles += outcome->exec_cycles;
    config_cycles += outcome->config_cycles;
    energy_fj += outcome->energy_fj;
    if (status == JobStatus::kCompleted) {
      latencies.push_back(outcome->turnaround());
      if (energy) energies.push_back(outcome->energy_fj);
    }
  }

  std::size_t count(JobStatus s) const {
    return by_status[static_cast<std::size_t>(s)];
  }
};

/// Nearest-rank percentile of a sorted, non-empty vector.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                         std::size_t pct) {
  const std::size_t n = sorted.size();
  const std::size_t rank = (pct * n + 99) / 100;  // ceil(pct*n/100)
  return sorted[rank == 0 ? 0 : rank - 1];
}

void write_percentiles(obs::JsonWriter& w, const std::string& key,
                       std::vector<std::uint64_t>& values) {
  std::sort(values.begin(), values.end());
  w.key(key);
  w.begin_object();
  w.field("p50", percentile(values, 50));
  w.field("p95", percentile(values, 95));
  w.field("p99", percentile(values, 99));
  w.field("max", values.back());
  w.end_object();
}

void write_status_counts(obs::JsonWriter& w, const Agg& agg) {
  w.field("completed", static_cast<std::uint64_t>(
                           agg.count(JobStatus::kCompleted)));
  w.field("cancelled", static_cast<std::uint64_t>(
                           agg.count(JobStatus::kCancelled)));
  w.field("timed_out", static_cast<std::uint64_t>(
                           agg.count(JobStatus::kTimedOut)));
  w.field("deadlocked", static_cast<std::uint64_t>(
                            agg.count(JobStatus::kDeadlocked)));
  w.field("no_allocation", static_cast<std::uint64_t>(
                               agg.count(JobStatus::kNoAllocation)));
  w.field("rejected", static_cast<std::uint64_t>(
                          agg.count(JobStatus::kRejected)));
  w.field("errors",
          static_cast<std::uint64_t>(agg.count(JobStatus::kError)));
}

/// Renders the report. `outcomes[i]` pairs with `stream.jobs[i]` and
/// may be null (never served). Deterministic: every emitted number is
/// integer math over deterministic inputs; map iteration gives the
/// kernels array a sorted, stable order.
std::string render_report(const JobStream& stream,
                          const std::vector<const JobOutcome*>& outcomes,
                          std::uint64_t final_tick) {
  const ScenarioPack& pack = stream.pack;
  Agg totals;
  std::map<std::string, Agg> kernels;
  for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
    totals.add(outcomes[i], pack.energy);
    kernels[stream.jobs[i].kernel].add(outcomes[i], pack.energy);
  }

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", obs::kJsonSchemaVersion);
  w.field("report", "workload-pack");
  w.field("report_version", kPackReportVersion);

  w.key("pack");
  w.begin_object();
  w.field("name", pack.name);
  w.field("seed", pack.seed);
  w.field("jobs", static_cast<std::uint64_t>(pack.jobs));
  w.field("arrival", to_string(pack.arrival));
  w.field("mean_gap", pack.mean_gap);
  if (pack.arrival == ArrivalModel::kBursty) {
    w.field("mean_burst", static_cast<std::uint64_t>(pack.mean_burst));
  }
  if (pack.arrival == ArrivalModel::kDiurnal) {
    w.field("diurnal_period",
            static_cast<std::uint64_t>(pack.diurnal_period));
  }
  w.key("mix");
  w.begin_object();
  for (std::size_t i = 0; i < kKernelKinds; ++i) {
    w.field(to_string(static_cast<KernelKind>(i)), pack.mix[i]);
  }
  w.end_object();
  w.field("width_min", pack.width_min);
  w.field("width_max", pack.width_max);
  w.field("tokens_min", static_cast<std::uint64_t>(pack.tokens_min));
  w.field("tokens_max", static_cast<std::uint64_t>(pack.tokens_max));
  w.field("deadline_pressure_pct",
          static_cast<std::uint64_t>(
              std::llround(pack.deadline_pressure * 100.0)));
  w.field("deadline_allowance", pack.deadline_allowance);
  w.field("churn_pct",
          static_cast<std::uint64_t>(std::llround(pack.churn * 100.0)));
  w.field("energy", pack.energy);
  w.end_object();

  w.key("totals");
  w.begin_object();
  w.field("jobs", static_cast<std::uint64_t>(totals.jobs));
  write_status_counts(w, totals);
  w.field("exec_cycles", totals.exec_cycles);
  w.field("config_cycles", totals.config_cycles);
  if (pack.energy) w.field("energy_fj", totals.energy_fj);
  w.field("final_tick", final_tick);
  w.end_object();

  w.key("kernels");
  w.begin_array();
  for (auto& [label, agg] : kernels) {
    w.begin_object();
    w.field("kernel", label);
    w.field("jobs", static_cast<std::uint64_t>(agg.jobs));
    write_status_counts(w, agg);
    w.field("exec_cycles", agg.exec_cycles);
    if (!agg.latencies.empty()) {
      write_percentiles(w, "latency", agg.latencies);
    }
    if (pack.energy && !agg.energies.empty()) {
      write_percentiles(w, "energy_fj", agg.energies);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

StatusOr<std::string> serve_local(const JobStream& stream,
                                  const RunPackOptions& options) {
  runtime::FarmConfigBuilder builder;
  builder.deterministic(options.deterministic)
      .workers(options.deterministic ? 1 : options.workers)
      .batch(options.batch)
      .default_max_cycles(options.default_max_cycles)
      .keep_outcome_log(true)
      .chip(options.chip);
  if (!options.deterministic) builder.queue(stream.jobs.size() + 1, true);
  if (stream.pack.energy) builder.dvs(0);
  auto config = builder.try_build();
  if (!config.ok()) return config.status();

  runtime::ChipFarm farm(*config);
  for (const TimedJob& timed : stream.jobs) {
    runtime::SubmitOptions submit;
    submit.arrival_tick = timed.arrival;
    submit.deadline = timed.deadline;
    (void)farm.submit(timed.job, std::move(submit));
  }
  farm.drain();
  const std::uint64_t final_tick = farm.now();
  const auto log = farm.outcome_log();
  farm.shutdown();

  std::map<std::string, const JobOutcome*> by_name;
  for (const auto& outcome : log) by_name[outcome.name] = &outcome;
  std::vector<const JobOutcome*> outcomes;
  outcomes.reserve(stream.jobs.size());
  for (const TimedJob& timed : stream.jobs) {
    const auto it = by_name.find(timed.job.name);
    outcomes.push_back(it == by_name.end() ? nullptr : it->second);
  }
  return render_report(stream, outcomes, final_tick);
}

StatusOr<std::string> serve_remote(const JobStream& stream,
                                   const RunPackOptions& options) {
  net::HubClient::Options copts;
  copts.hub = options.hub;
  copts.name = "workload";
  copts.max_in_flight = options.max_in_flight;
  auto client = net::HubClient::connect(std::move(copts));
  if (!client.ok()) return client.status();

  std::map<std::uint64_t, std::size_t> index_by_seq;
  for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
    auto seq = client->submit(stream.jobs[i].job);
    if (!seq.ok()) return seq.status();
    index_by_seq[*seq] = i;
  }
  auto results = client->collect(stream.jobs.size());
  if (!results.ok()) return results.status();
  client->goodbye();

  std::vector<const JobOutcome*> outcomes(stream.jobs.size(), nullptr);
  for (const auto& result : *results) {
    const auto it = index_by_seq.find(result.id);
    if (it != index_by_seq.end()) outcomes[it->second] = &result.outcome;
  }
  return render_report(stream, outcomes, 0);
}

}  // namespace

StatusOr<std::string> run_pack(const JobStream& stream,
                               const RunPackOptions& options) {
  if (stream.jobs.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "the job stream is empty — build it from a pack first");
  }
  try {
    if (!options.hub.empty()) return serve_remote(stream, options);
    return serve_local(stream, options);
  } catch (const std::exception& e) {
    return Status(StatusCode::kInvalidArgument,
                  std::string("pack run failed: ") + e.what());
  }
}

void save_stream(snapshot::Writer& w, const JobStream& stream) {
  const ScenarioPack& p = stream.pack;
  w.section("workload.stream");
  w.str(p.name);
  w.u64(p.seed);
  w.u64(p.jobs);
  w.u8(static_cast<std::uint8_t>(p.arrival));
  w.u64(p.mean_gap);
  w.u64(p.mean_burst);
  w.u64(p.diurnal_period);
  for (std::size_t i = 0; i < kKernelKinds; ++i) w.u32(p.mix[i]);
  w.i32(p.width_min);
  w.i32(p.width_max);
  w.u64(p.tokens_min);
  w.u64(p.tokens_max);
  w.f64(p.deadline_pressure);
  w.u64(p.deadline_allowance);
  w.f64(p.churn);
  w.b(p.energy);
  w.u64(stream.jobs.size());
  for (const TimedJob& timed : stream.jobs) {
    runtime::save_job(w, timed.job);
    w.u64(timed.arrival);
    w.u64(timed.deadline);
    w.str(timed.kernel);
  }
}

JobStream restore_stream(snapshot::Reader& r) {
  JobStream stream;
  ScenarioPack& p = stream.pack;
  r.section("workload.stream");
  p.name = r.str();
  p.seed = r.u64();
  p.jobs = static_cast<std::size_t>(r.u64());
  p.arrival = static_cast<ArrivalModel>(r.u8());
  p.mean_gap = r.u64();
  p.mean_burst = static_cast<std::size_t>(r.u64());
  p.diurnal_period = static_cast<std::size_t>(r.u64());
  for (std::size_t i = 0; i < kKernelKinds; ++i) p.mix[i] = r.u32();
  p.width_min = r.i32();
  p.width_max = r.i32();
  p.tokens_min = static_cast<std::size_t>(r.u64());
  p.tokens_max = static_cast<std::size_t>(r.u64());
  p.deadline_pressure = r.f64();
  p.deadline_allowance = r.u64();
  p.churn = r.f64();
  p.energy = r.b();
  const std::uint64_t count = r.u64();
  stream.jobs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TimedJob timed;
    timed.job = runtime::restore_job(r);
    timed.arrival = r.u64();
    timed.deadline = r.u64();
    timed.kernel = r.str();
    stream.jobs.push_back(std::move(timed));
  }
  return stream;
}

StatusOr<std::string> run_pack_replay(const JobStream& stream,
                                      const RunPackOptions& options) {
  try {
    snapshot::Snapshot snap;
    snapshot::Writer w(snap);
    save_stream(w, stream);
    snapshot::Reader r(snap);
    JobStream restored = restore_stream(r);
    VLSIP_REQUIRE(r.done(), "trailing bytes after the encoded stream");
    return run_pack(restored, options);
  } catch (const snapshot::SnapshotError& e) {
    return Status(StatusCode::kCorruptSnapshot, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

}  // namespace vlsip::workload
