// Scenario packs — seeded, declarative traffic for the chip farm.
//
// A ScenarioPack describes a traffic scenario (arrival process, kernel
// mix, size distribution, deadline pressure, fuse/split churn) and a
// seed; JobStreamBuilder expands it into a deterministic JobStream —
// timed, compiled kernel jobs identical across runs and platforms
// (xoshiro256**). Packs are constructed through the validated builders
// (the ChipConfigBuilder/FarmConfigBuilder convention: fluent setters,
// build() throws, try_build() returns StatusOr) or parsed from a
// line-oriented spec file:
//
//   # pack spec
//   name bursty-mix
//   seed 7
//   jobs 120
//   arrival bursty gap=400 burst=6      # or: steady gap=N
//                                       # or: diurnal gap=N period=P
//   mix dot=3 fir=2 gas=1 reduce=2 filter=1
//   width 4 12
//   tokens 2 6
//   deadline 25 200000                  # percent of jobs, allowance ticks
//   churn 30                            # percent of jobs
//   energy on
//
// load_pack() also accepts the builtin "@preset:NAME[:seed[:jobs]]"
// form (steady, bursty, diurnal, churn, deadline, mixed), so smoke
// tests and CI need no files on disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "workload/kernels.hpp"

namespace vlsip::workload {

enum class ArrivalModel : std::uint8_t {
  /// Jittered fixed-rate arrivals around `mean_gap` ticks.
  kSteady = 0,
  /// Geometric bursts of simultaneous arrivals separated by long gaps
  /// (mean gap scales with the burst size to hold the average rate).
  kBursty,
  /// The steady process with its gap swept by a triangle wave over
  /// `diurnal_period` jobs: peak rate at the trough, half rate at the
  /// crest.
  kDiurnal,
};

const char* to_string(ArrivalModel model);

struct ScenarioPack {
  std::string name = "pack";
  std::uint64_t seed = 1;
  std::size_t jobs = 64;
  ArrivalModel arrival = ArrivalModel::kSteady;
  /// Mean inter-arrival gap in farm ticks (virtual cycles in
  /// deterministic mode). 0 = everything arrives at tick 0.
  std::uint64_t mean_gap = 400;
  /// Mean burst size for kBursty (>= 1).
  std::size_t mean_burst = 4;
  /// Jobs per diurnal cycle for kDiurnal (>= 2).
  std::size_t diurnal_period = 32;
  /// Relative draw weights per kernel family, indexed by KernelKind.
  std::uint32_t mix[kKernelKinds] = {2, 2, 1, 2, 1};
  int width_min = 2;
  int width_max = 8;
  std::size_t tokens_min = 2;
  std::size_t tokens_max = 6;
  /// Fraction of jobs submitted with a deadline of arrival + allowance.
  double deadline_pressure = 0.0;
  std::uint64_t deadline_allowance = 200000;
  /// Fraction of jobs whose cluster request is inflated by a random
  /// amount — adversarial fuse/split churn that defeats the batcher's
  /// same-size grouping and forces refusion between batches.
  double churn = 0.0;
  /// Meter per-job energy (DVS governor at budget 0: meter, never
  /// throttle) and report energy percentiles.
  bool energy = false;
};

/// One entry of a generated stream: the job plus its traffic timing.
struct TimedJob {
  scaling::Job job;
  /// Absolute farm tick the job arrives at (SubmitOptions::arrival_tick).
  std::uint64_t arrival = 0;
  /// Absolute deadline tick; 0 = none.
  std::uint64_t deadline = 0;
  /// Kernel family label ("dot8") — the per-kernel report key.
  std::string kernel;
};

struct JobStream {
  ScenarioPack pack;
  std::vector<TimedJob> jobs;
};

/// Validated builder for ScenarioPack (the one checked construction
/// path; aggregate-initialising ScenarioPack directly is the legacy
/// escape hatch).
class ScenarioPackBuilder {
 public:
  ScenarioPackBuilder& name(std::string n) {
    pack_.name = std::move(n);
    return *this;
  }
  ScenarioPackBuilder& seed(std::uint64_t s) {
    pack_.seed = s;
    return *this;
  }
  ScenarioPackBuilder& jobs(std::size_t n) {
    pack_.jobs = n;
    return *this;
  }
  ScenarioPackBuilder& steady(std::uint64_t mean_gap) {
    pack_.arrival = ArrivalModel::kSteady;
    pack_.mean_gap = mean_gap;
    return *this;
  }
  ScenarioPackBuilder& bursty(std::size_t mean_burst,
                              std::uint64_t mean_gap) {
    pack_.arrival = ArrivalModel::kBursty;
    pack_.mean_burst = mean_burst;
    pack_.mean_gap = mean_gap;
    return *this;
  }
  ScenarioPackBuilder& diurnal(std::size_t period, std::uint64_t mean_gap) {
    pack_.arrival = ArrivalModel::kDiurnal;
    pack_.diurnal_period = period;
    pack_.mean_gap = mean_gap;
    return *this;
  }
  /// Relative draw weight of one kernel family (default mix otherwise).
  ScenarioPackBuilder& kernel_weight(KernelKind kind, std::uint32_t weight) {
    pack_.mix[static_cast<std::size_t>(kind)] = weight;
    return *this;
  }
  ScenarioPackBuilder& widths(int min, int max) {
    pack_.width_min = min;
    pack_.width_max = max;
    return *this;
  }
  ScenarioPackBuilder& tokens(std::size_t min, std::size_t max) {
    pack_.tokens_min = min;
    pack_.tokens_max = max;
    return *this;
  }
  ScenarioPackBuilder& deadline_pressure(double fraction,
                                         std::uint64_t allowance) {
    pack_.deadline_pressure = fraction;
    pack_.deadline_allowance = allowance;
    return *this;
  }
  ScenarioPackBuilder& churn(double fraction) {
    pack_.churn = fraction;
    return *this;
  }
  ScenarioPackBuilder& energy(bool on = true) {
    pack_.energy = on;
    return *this;
  }

  ScenarioPack build() const;
  StatusOr<ScenarioPack> try_build() const;

  /// The pack as accumulated so far, unvalidated.
  ScenarioPack& raw() { return pack_; }

 private:
  Status validate() const;

  ScenarioPack pack_;
};

/// Expands a pack into its deterministic job stream. The generation is
/// a pure function of the validated pack — same pack, same stream,
/// byte for byte.
class JobStreamBuilder {
 public:
  JobStreamBuilder& pack(ScenarioPack p) {
    pack_ = std::move(p);
    return *this;
  }
  /// Convenience overrides on top of the pack (CLI flags).
  JobStreamBuilder& seed(std::uint64_t s) {
    pack_.seed = s;
    return *this;
  }
  JobStreamBuilder& jobs(std::size_t n) {
    pack_.jobs = n;
    return *this;
  }

  JobStream build() const;
  StatusOr<JobStream> try_build() const;

 private:
  ScenarioPack pack_;
};

/// Parses pack-spec text (format above). kInvalidArgument with a
/// "line N:" message on malformed input.
StatusOr<ScenarioPack> parse_pack(const std::string& text);

/// Resolves `ref`: "@preset:NAME[:seed[:jobs]]" for a builtin pack
/// (steady, bursty, diurnal, churn, deadline, mixed), otherwise a path
/// to a spec file.
StatusOr<ScenarioPack> load_pack(const std::string& ref);

}  // namespace vlsip::workload
