#include "workload/kernels.hpp"

#include <string>

#include "topology/s_topology.hpp"

namespace vlsip::workload {

namespace {

// Fixed per-tap coefficient schedules: small positive integers so every
// kernel source is a pure function of (kind, width) and expected values
// stay exactly computable host-side.
int dot_weight(int i) { return 1 + (i * 3) % 7; }
int fir_coeff(int i) { return 1 + (i * 5) % 9; }

std::string dot_source(int width) {
  std::string s = "# dot" + std::to_string(width) +
                  ": unrolled dot product, one lane per input\n";
  for (int i = 0; i < width; ++i) {
    s += "input x" + std::to_string(i) + "\n";
  }
  s += "y =";
  for (int i = 0; i < width; ++i) {
    if (i > 0) s += " +";
    s += " x" + std::to_string(i) + " * " + std::to_string(dot_weight(i));
  }
  s += "\noutput y\n";
  return s;
}

std::string fir_source(int taps) {
  std::string s = "# fir" + std::to_string(taps) +
                  ": delay-line FIR over one stream\n";
  s += "input x\n";
  for (int i = 1; i < taps; ++i) {
    const std::string prev = i == 1 ? "x" : "d" + std::to_string(i - 1);
    s += "d" + std::to_string(i) + " = delay(" + prev + ", 0)\n";
  }
  s += "y = x * " + std::to_string(fir_coeff(0));
  for (int i = 1; i < taps; ++i) {
    s += " + d" + std::to_string(i) + " * " + std::to_string(fir_coeff(i));
  }
  s += "\noutput y\n";
  return s;
}

std::string gas_source(int vertices) {
  // Per vertex: gather two edge streams, apply a running-max state
  // update through the feedback delay, scatter the state.
  std::string s = "# gas" + std::to_string(vertices) +
                  ": vertex gather-apply-scatter (running max)\n";
  for (int i = 0; i < vertices; ++i) {
    const std::string v = std::to_string(i);
    s += "input e" + v + "a\n";
    s += "input e" + v + "b\n";
    s += "g" + v + " = e" + v + "a + e" + v + "b\n";
    s += "rec s" + v + " = select(g" + v + " > delay(s" + v + ", 0), g" + v +
         ", delay(s" + v + ", 0))\n";
    s += "output s" + v + "\n";
  }
  return s;
}

// Balanced parenthesised sum of x[lo..hi).
std::string reduce_expr(int lo, int hi) {
  if (hi - lo == 1) return "x" + std::to_string(lo);
  const int mid = lo + (hi - lo + 1) / 2;
  return "(" + reduce_expr(lo, mid) + " + " + reduce_expr(mid, hi) + ")";
}

std::string reduce_source(int leaves) {
  std::string s = "# reduce" + std::to_string(leaves) +
                  ": binary reduction tree\n";
  for (int i = 0; i < leaves; ++i) {
    s += "input x" + std::to_string(i) + "\n";
  }
  if (leaves == 1) {
    s += "y = buff(x0)\n";
  } else {
    s += "y = " + reduce_expr(0, leaves) + "\n";
  }
  s += "output y\n";
  return s;
}

std::string filter_source(int threshold) {
  std::string s = "# filter" + std::to_string(threshold) +
                  ": streaming predicate filter\n";
  s += "input x\n";
  s += "keep = x > " + std::to_string(threshold) + "\n";
  s += "y = gate(keep, x * 3 + 7)\n";
  s += "output y\n";
  return s;
}

}  // namespace

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kDot:
      return "dot";
    case KernelKind::kFir:
      return "fir";
    case KernelKind::kGas:
      return "gas";
    case KernelKind::kReduce:
      return "reduce";
    case KernelKind::kFilter:
      return "filter";
  }
  return "?";
}

bool kernel_kind_from_string(const std::string& name, KernelKind* out) {
  for (std::size_t i = 0; i < kKernelKinds; ++i) {
    const auto kind = static_cast<KernelKind>(i);
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string kernel_source(const KernelSpec& spec) {
  switch (spec.kind) {
    case KernelKind::kDot:
      return dot_source(spec.width);
    case KernelKind::kFir:
      return fir_source(spec.width);
    case KernelKind::kGas:
      return gas_source(spec.width);
    case KernelKind::kReduce:
      return reduce_source(spec.width);
    case KernelKind::kFilter:
      return filter_source(spec.width);
  }
  return "";
}

std::size_t clusters_for_objects(std::size_t object_count) {
  const auto capacity =
      static_cast<std::size_t>(topology::ClusterSpec{}.stack_capacity());
  return object_count == 0 ? 1 : (object_count + capacity - 1) / capacity;
}

StatusOr<CompiledKernel> build_kernel(const KernelSpec& spec,
                                      lang::CompileError* error) {
  if (spec.width < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "kernel width must be >= 1, got " +
                      std::to_string(spec.width));
  }
  if (static_cast<std::size_t>(spec.kind) >= kKernelKinds) {
    return Status(StatusCode::kInvalidArgument, "unknown kernel kind");
  }
  CompiledKernel kernel;
  kernel.kind = spec.kind;
  kernel.width = spec.width;
  kernel.label = std::string(to_string(spec.kind)) +
                 std::to_string(spec.width);
  kernel.source = kernel_source(spec);
  auto program = lang::try_compile(kernel.source, error);
  if (!program.ok()) return program.status();
  kernel.program = std::move(*program);
  kernel.recommended_clusters =
      clusters_for_objects(kernel.program.object_count());
  return kernel;
}

scaling::Job make_job(const CompiledKernel& kernel, std::size_t tokens,
                      Xoshiro256& rng, std::string name) {
  VLSIP_REQUIRE(tokens >= 1, "a job needs at least one token");
  scaling::Job job;
  job.name = std::move(name);
  job.program = kernel.program;
  job.requested_clusters = kernel.recommended_clusters;
  job.expected_per_output = tokens;
  for (const auto& [port, id] : kernel.program.inputs) {
    (void)id;
    auto& feed = job.inputs[port];
    feed.reserve(tokens);
    for (std::size_t i = 0; i < tokens; ++i) {
      // GAS gathers stay non-negative so the running max matches the
      // init-0 feedback; the other kernels take signed samples.
      const std::int64_t v = kernel.kind == KernelKind::kGas
                                 ? static_cast<std::int64_t>(rng.uniform(61))
                                 : rng.uniform_range(-50, 50);
      feed.push_back(arch::make_word_i(v));
    }
  }
  if (kernel.kind == KernelKind::kFilter) {
    // The gate emits one token per passing input: make the expected
    // count exact, and force at least one pass so the job can complete.
    auto& feed = job.inputs["x"];
    const std::int64_t threshold = kernel.width;
    std::size_t passes = 0;
    for (const auto& w : feed) {
      if (w.i > threshold) ++passes;
    }
    if (passes == 0) {
      feed.back() =
          arch::make_word_i(threshold + 1 +
                            static_cast<std::int64_t>(rng.uniform(5)));
      passes = 1;
    }
    job.expected_per_output = passes;
  }
  return job;
}

}  // namespace vlsip::workload
