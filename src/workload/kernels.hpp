// Kernel library — parameterized dataflow/graph kernels over lang::compile.
//
// §5: "An application compiler needs to simply take care of the linear
// array size to fit the application datapath to the fused region." This
// layer is that application-side compiler: each kernel family is a
// generator from a small parameter (its datapath width) to dataflow
// source text, lowered through the language front end to an
// arch::Program, with the fused-chip cluster count chosen from the
// resulting datapath size. Families:
//
//   dot     width-lane unrolled dot product (multiply + adder chain)
//   fir     width-tap FIR filter over one input stream (delay line)
//   gas     hoshizora-style vertex gather-apply-scatter: `width`
//           vertices each gather two edge streams, apply a running-max
//           state update through a feedback delay, and scatter the
//           state as an output port
//   reduce  binary reduction tree over `width` leaf inputs
//   filter  streaming predicate filter (gate) with threshold `width`
//
// Kernel sources are pure functions of the spec, so a (kind, width)
// pair always lowers to the same Program; make_job() then instantiates
// deterministic input streams from a caller-owned RNG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "lang/compiler.hpp"
#include "scaling/job.hpp"

namespace vlsip::workload {

enum class KernelKind : std::uint8_t {
  kDot = 0,
  kFir,
  kGas,
  kReduce,
  kFilter,
};

inline constexpr std::size_t kKernelKinds = 5;

const char* to_string(KernelKind kind);

/// Parses a kernel family name ("dot", "fir", "gas", "reduce",
/// "filter"); returns false on an unknown name.
bool kernel_kind_from_string(const std::string& name, KernelKind* out);

struct KernelSpec {
  KernelKind kind = KernelKind::kDot;
  /// Lanes (dot), taps (fir), vertices (gas), leaves (reduce), or the
  /// pass threshold (filter). Must be >= 1.
  int width = 8;
};

/// A kernel lowered to object code, plus the resource choice the
/// "application designer" would make for it.
struct CompiledKernel {
  KernelKind kind = KernelKind::kDot;
  int width = 0;
  /// "dot8", "fir4", ... — job names are "<label>#<index>" and the
  /// report aggregates per family by name prefix.
  std::string label;
  /// The generated dataflow source (docs, fuzz corpus, diagnostics).
  std::string source;
  arch::Program program;
  /// Fused-chip cluster count chosen from the datapath width: the
  /// smallest cluster run whose object capacity holds the program.
  std::size_t recommended_clusters = 1;
};

/// The dataflow source text for `spec` (deterministic per spec).
std::string kernel_source(const KernelSpec& spec);

/// Cluster count for a datapath of `object_count` logical objects under
/// the default ClusterSpec capacity.
std::size_t clusters_for_objects(std::size_t object_count);

/// Generates and lowers `spec`. kInvalidArgument on a bad spec (width
/// < 1 or an out-of-range enum) or — defensively — if the generated
/// source fails to compile; `error` then receives the line-attributed
/// compile error.
StatusOr<CompiledKernel> build_kernel(const KernelSpec& spec,
                                      lang::CompileError* error = nullptr);

/// Instantiates a job for `kernel`: `tokens` words drawn from `rng` per
/// input port, expected output counts derived exactly (the filter
/// kernel expects one token per passing input and is nudged so at
/// least one passes), requested_clusters = recommended_clusters.
scaling::Job make_job(const CompiledKernel& kernel, std::size_t tokens,
                      Xoshiro256& rng, std::string name);

}  // namespace vlsip::workload
