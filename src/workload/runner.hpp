// Pack runner — drives a generated JobStream and renders the report.
//
// Local mode serves the stream through a ChipFarm: each job is
// submitted with its arrival tick (SubmitOptions::arrival_tick) and
// deadline, the farm drains, and the outcome log is folded into a
// schema-versioned JSON report — per-kernel latency/energy percentiles
// and outcome counts. In deterministic mode (the default) the report
// is byte-identical per seed: timestamps come from the virtual cycle
// clock and every aggregate is exact integer math over them.
//
// Remote mode (RunPackOptions::hub) submits the same stream through
// net::HubClient — the distributed pack-submission path — and folds
// the collected results into the same report shape. Remote timestamps
// are the worker farms' wall clocks, so byte-identity is a local-mode
// guarantee only.
//
// save_stream()/restore_stream() round-trip a stream through the
// snapshot codec (runtime::save_job per job, plus the pack and timing
// fields); run_pack_replay() proves the codec by encoding, decoding,
// and serving the decoded copy — its report must equal a direct
// run_pack() byte for byte.
#pragma once

#include <string>

#include "runtime/chip_farm.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/scenario.hpp"

namespace vlsip::workload {

/// Version of the workload-pack report payload (distinct from the
/// toolchain-wide obs::kJsonSchemaVersion carried alongside it): bump
/// when a report field is renamed, removed, or changes meaning.
inline constexpr std::uint64_t kPackReportVersion = 1;

struct RunPackOptions {
  /// Deterministic mode: one worker on the virtual cycle clock,
  /// byte-identical reports per seed. Threaded mode frees the worker
  /// count but reports wall-tick latencies.
  bool deterministic = true;
  std::size_t workers = 1;
  std::size_t batch = 8;
  std::uint64_t default_max_cycles = 1u << 22;
  /// Chip template each farm slot is built from (default geometry).
  core::ChipConfig chip;
  /// Non-empty = submit through net::HubClient at this address
  /// ("host:port" or "unix:/path") instead of a local farm.
  std::string hub;
  /// Client submission window in remote mode (0 = unbounded).
  std::size_t max_in_flight = 64;
};

/// Serves `stream` and returns the rendered JSON report.
StatusOr<std::string> run_pack(const JobStream& stream,
                               const RunPackOptions& options = {});

/// Snapshot codec for a stream (pack fields + every timed job through
/// runtime::save_job).
void save_stream(snapshot::Writer& w, const JobStream& stream);
/// Throws snapshot::SnapshotError on malformed bytes.
JobStream restore_stream(snapshot::Reader& r);

/// Round-trips `stream` through save_stream()/restore_stream() and
/// serves the decoded copy: the replay half of the serve-vs-replay
/// byte-identity guarantee.
StatusOr<std::string> run_pack_replay(const JobStream& stream,
                                      const RunPackOptions& options = {});

}  // namespace vlsip::workload
