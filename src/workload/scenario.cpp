#include "workload/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace vlsip::workload {

namespace {

Status invalid(const std::string& why) {
  return Status(StatusCode::kInvalidArgument, why);
}

// ---- stream generation -----------------------------------------------------

std::uint64_t next_gap(const ScenarioPack& pack, std::size_t index,
                       std::size_t* burst_left, Xoshiro256& rng) {
  if (pack.mean_gap == 0) return 0;
  switch (pack.arrival) {
    case ArrivalModel::kSteady:
      return 1 + rng.uniform(2 * pack.mean_gap);
    case ArrivalModel::kBursty: {
      if (*burst_left > 0) {
        --*burst_left;
        return 0;
      }
      const std::size_t burst =
          1 + static_cast<std::size_t>(
                  rng.geometric(1.0 / static_cast<double>(pack.mean_burst)));
      *burst_left = burst - 1;
      // The whole burst shares one long gap, holding the average rate.
      return 1 + rng.uniform(2 * pack.mean_gap *
                             static_cast<std::uint64_t>(pack.mean_burst));
    }
    case ArrivalModel::kDiurnal: {
      const std::size_t period = pack.diurnal_period;
      const std::size_t half = period / 2;
      const std::size_t pos = index % period;
      const std::size_t tri = pos < half ? pos : period - pos;
      // Gap swept 50%..150% of the mean over one period (integer math).
      const std::uint64_t pct = 50 + 100 * tri / half;
      return 1 + rng.uniform(2 * pack.mean_gap * pct / 100);
    }
  }
  return 0;
}

StatusOr<JobStream> generate(ScenarioPack pack) {
  JobStream stream;
  stream.pack = std::move(pack);
  const ScenarioPack& p = stream.pack;

  Xoshiro256 rng(p.seed);
  std::map<std::pair<int, int>, CompiledKernel> cache;
  std::uint32_t total_weight = 0;
  for (std::size_t i = 0; i < kKernelKinds; ++i) total_weight += p.mix[i];

  std::uint64_t arrival = 0;
  std::size_t burst_left = 0;
  stream.jobs.reserve(p.jobs);
  for (std::size_t i = 0; i < p.jobs; ++i) {
    // Kernel family by mix weight, size by the span distributions.
    std::uint64_t draw = rng.uniform(total_weight);
    std::size_t kind_index = 0;
    while (draw >= p.mix[kind_index]) {
      draw -= p.mix[kind_index];
      ++kind_index;
    }
    KernelSpec spec;
    spec.kind = static_cast<KernelKind>(kind_index);
    spec.width =
        p.width_min +
        static_cast<int>(rng.uniform(
            static_cast<std::uint64_t>(p.width_max - p.width_min) + 1));
    const std::size_t tokens =
        p.tokens_min + static_cast<std::size_t>(
                           rng.uniform(p.tokens_max - p.tokens_min + 1));

    const auto key = std::make_pair(static_cast<int>(spec.kind), spec.width);
    auto it = cache.find(key);
    if (it == cache.end()) {
      lang::CompileError error;
      auto kernel = build_kernel(spec, &error);
      if (!kernel.ok()) {
        return invalid("kernel " + std::string(to_string(spec.kind)) +
                       std::to_string(spec.width) +
                       " failed to lower: " + error.message);
      }
      it = cache.emplace(key, std::move(*kernel)).first;
    }
    const CompiledKernel& kernel = it->second;

    TimedJob timed;
    timed.kernel = kernel.label;
    timed.job = make_job(kernel, tokens, rng,
                         kernel.label + "#" + std::to_string(i));
    if (p.churn > 0.0 && rng.bernoulli(p.churn)) {
      // Inflate the cluster request past the kernel's natural size so
      // consecutive batches keep refusing different-width regions.
      timed.job.requested_clusters =
          std::min<std::size_t>(kernel.recommended_clusters + 4 +
                                    static_cast<std::size_t>(rng.uniform(12)),
                                48);
    }
    arrival += next_gap(p, i, &burst_left, rng);
    timed.arrival = arrival;
    if (p.deadline_pressure > 0.0 && rng.bernoulli(p.deadline_pressure)) {
      timed.deadline = arrival + p.deadline_allowance;
    }
    stream.jobs.push_back(std::move(timed));
  }
  return stream;
}

// ---- pack-spec parsing -----------------------------------------------------

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

/// "key=value" -> true + parts; anything else false.
bool split_kv(const std::string& tok, std::string* key, std::string* value) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = tok.substr(0, eq);
  *value = tok.substr(eq + 1);
  return true;
}

}  // namespace

const char* to_string(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kSteady:
      return "steady";
    case ArrivalModel::kBursty:
      return "bursty";
    case ArrivalModel::kDiurnal:
      return "diurnal";
  }
  return "?";
}

Status ScenarioPackBuilder::validate() const {
  const ScenarioPack& p = pack_;
  if (p.name.empty()) return invalid("pack name must not be empty");
  if (p.jobs < 1) return invalid("a pack needs at least one job");
  if (p.width_min < 1 || p.width_min > p.width_max) {
    return invalid("pack widths need 1 <= min <= max");
  }
  if (p.width_max > 32) {
    return invalid("pack width_max must be <= 32 (the largest kernel "
                   "datapath the default chip hosts)");
  }
  if (p.tokens_min < 1 || p.tokens_min > p.tokens_max) {
    return invalid("pack tokens need 1 <= min <= max");
  }
  if (p.tokens_max > 64) return invalid("pack tokens_max must be <= 64");
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < kKernelKinds; ++i) total += p.mix[i];
  if (total == 0) {
    return invalid("the kernel mix must give at least one family a "
                   "nonzero weight");
  }
  if (p.deadline_pressure < 0.0 || p.deadline_pressure > 1.0) {
    return invalid("deadline pressure must be in [0, 1]");
  }
  if (p.deadline_pressure > 0.0 && p.deadline_allowance == 0) {
    return invalid("deadline pressure without an allowance is dead config "
                   "— every pressured job would cancel on arrival");
  }
  if (p.churn < 0.0 || p.churn > 1.0) {
    return invalid("churn must be in [0, 1]");
  }
  if (p.arrival == ArrivalModel::kBursty && p.mean_burst < 1) {
    return invalid("bursty arrivals need mean_burst >= 1");
  }
  if (p.arrival == ArrivalModel::kDiurnal && p.diurnal_period < 2) {
    return invalid("diurnal arrivals need a period of >= 2 jobs");
  }
  return Status();
}

ScenarioPack ScenarioPackBuilder::build() const {
  const Status s = validate();
  VLSIP_REQUIRE(s.ok(), s.to_string());
  return pack_;
}

StatusOr<ScenarioPack> ScenarioPackBuilder::try_build() const {
  const Status s = validate();
  if (!s.ok()) return s;
  return pack_;
}

JobStream JobStreamBuilder::build() const {
  auto stream = try_build();
  VLSIP_REQUIRE(stream.ok(), stream.status().to_string());
  return std::move(*stream);
}

StatusOr<JobStream> JobStreamBuilder::try_build() const {
  ScenarioPackBuilder checked;
  checked.raw() = pack_;
  auto pack = checked.try_build();
  if (!pack.ok()) return pack.status();
  return generate(std::move(*pack));
}

StatusOr<ScenarioPack> parse_pack(const std::string& text) {
  ScenarioPackBuilder builder;
  ScenarioPack& p = builder.raw();
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&line_no](const std::string& why) {
    return invalid("line " + std::to_string(line_no) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];

    if (key == "name") {
      if (toks.size() != 2) return fail("name takes one word");
      p.name = toks[1];
    } else if (key == "seed" || key == "jobs" || key == "churn") {
      std::uint64_t v = 0;
      if (toks.size() != 2 || !parse_u64(toks[1], &v)) {
        return fail(key + " takes one non-negative integer");
      }
      if (key == "seed") p.seed = v;
      if (key == "jobs") p.jobs = static_cast<std::size_t>(v);
      if (key == "churn") {
        if (v > 100) return fail("churn is a percentage (0-100)");
        p.churn = static_cast<double>(v) / 100.0;
      }
    } else if (key == "arrival") {
      if (toks.size() < 2) return fail("arrival needs a model name");
      if (toks[1] == "steady") {
        p.arrival = ArrivalModel::kSteady;
      } else if (toks[1] == "bursty") {
        p.arrival = ArrivalModel::kBursty;
      } else if (toks[1] == "diurnal") {
        p.arrival = ArrivalModel::kDiurnal;
      } else {
        return fail("unknown arrival model '" + toks[1] +
                    "' (steady, bursty, diurnal)");
      }
      for (std::size_t i = 2; i < toks.size(); ++i) {
        std::string k, v;
        std::uint64_t n = 0;
        if (!split_kv(toks[i], &k, &v) || !parse_u64(v, &n)) {
          return fail("expected key=integer, got '" + toks[i] + "'");
        }
        if (k == "gap") {
          p.mean_gap = n;
        } else if (k == "burst") {
          p.mean_burst = static_cast<std::size_t>(n);
        } else if (k == "period") {
          p.diurnal_period = static_cast<std::size_t>(n);
        } else {
          return fail("unknown arrival knob '" + k +
                      "' (gap, burst, period)");
        }
      }
    } else if (key == "mix") {
      for (std::size_t i = 0; i < kKernelKinds; ++i) p.mix[i] = 0;
      if (toks.size() < 2) return fail("mix needs at least one family=weight");
      for (std::size_t i = 1; i < toks.size(); ++i) {
        std::string k, v;
        std::uint64_t n = 0;
        KernelKind kind;
        if (!split_kv(toks[i], &k, &v) || !parse_u64(v, &n)) {
          return fail("expected family=weight, got '" + toks[i] + "'");
        }
        if (!kernel_kind_from_string(k, &kind)) {
          return fail("unknown kernel family '" + k +
                      "' (dot, fir, gas, reduce, filter)");
        }
        p.mix[static_cast<std::size_t>(kind)] = static_cast<std::uint32_t>(n);
      }
    } else if (key == "width" || key == "tokens") {
      std::uint64_t lo = 0, hi = 0;
      if (toks.size() != 3 || !parse_u64(toks[1], &lo) ||
          !parse_u64(toks[2], &hi)) {
        return fail(key + " takes two integers: min max");
      }
      if (key == "width") {
        p.width_min = static_cast<int>(lo);
        p.width_max = static_cast<int>(hi);
      } else {
        p.tokens_min = static_cast<std::size_t>(lo);
        p.tokens_max = static_cast<std::size_t>(hi);
      }
    } else if (key == "deadline") {
      std::uint64_t pct = 0, allowance = 0;
      if (toks.size() != 3 || !parse_u64(toks[1], &pct) ||
          !parse_u64(toks[2], &allowance)) {
        return fail("deadline takes two integers: percent allowance");
      }
      if (pct > 100) return fail("deadline percent must be 0-100");
      p.deadline_pressure = static_cast<double>(pct) / 100.0;
      p.deadline_allowance = allowance;
    } else if (key == "energy") {
      if (toks.size() != 2 || (toks[1] != "on" && toks[1] != "off")) {
        return fail("energy takes 'on' or 'off'");
      }
      p.energy = toks[1] == "on";
    } else {
      return fail("unknown pack key '" + key + "'");
    }
  }
  return builder.try_build();
}

StatusOr<ScenarioPack> load_pack(const std::string& ref) {
  constexpr const char* kPrefix = "@preset:";
  if (ref.rfind(kPrefix, 0) == 0) {
    // @preset:NAME[:seed[:jobs]]
    std::vector<std::string> parts;
    std::size_t start = std::string(kPrefix).size();
    while (start <= ref.size()) {
      const auto colon = ref.find(':', start);
      parts.push_back(ref.substr(
          start, colon == std::string::npos ? std::string::npos
                                            : colon - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    if (parts.empty() || parts[0].empty()) {
      return invalid("preset reference needs a name: @preset:NAME");
    }
    ScenarioPackBuilder builder;
    builder.name(parts[0]).jobs(64);
    if (parts[0] == "steady") {
      builder.steady(400);
    } else if (parts[0] == "bursty") {
      builder.bursty(6, 400);
    } else if (parts[0] == "diurnal") {
      builder.diurnal(24, 300);
    } else if (parts[0] == "churn") {
      builder.steady(200).churn(0.35).widths(2, 10);
    } else if (parts[0] == "deadline") {
      builder.steady(300).deadline_pressure(0.3, 150000);
    } else if (parts[0] == "mixed") {
      builder.bursty(4, 300).churn(0.2).deadline_pressure(0.15, 250000)
          .energy();
    } else {
      return invalid("unknown preset '" + parts[0] +
                     "' (steady, bursty, diurnal, churn, deadline, mixed)");
    }
    if (parts.size() >= 2 && !parts[1].empty()) {
      std::uint64_t seed = 0;
      if (!parse_u64(parts[1], &seed)) {
        return invalid("preset seed must be an integer: " + ref);
      }
      builder.seed(seed);
    }
    if (parts.size() >= 3 && !parts[2].empty()) {
      std::uint64_t jobs = 0;
      if (!parse_u64(parts[2], &jobs)) {
        return invalid("preset job count must be an integer: " + ref);
      }
      builder.jobs(static_cast<std::size_t>(jobs));
    }
    if (parts.size() > 3) {
      return invalid("preset reference has too many fields: " + ref);
    }
    return builder.try_build();
  }

  std::ifstream in(ref, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kIoError,
                  "cannot read pack spec '" + ref + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_pack(text.str());
}

}  // namespace vlsip::workload
