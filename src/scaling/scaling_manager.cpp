#include "scaling/scaling_manager.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::scaling {

namespace {

/// Reservation tickets must not collide with real region ids.
constexpr topology::RegionId kTicketBase = 0x80000000u;

}  // namespace

ScalingManager::ScalingManager(topology::STopologyFabric& fabric,
                               noc::NocFabric& noc, ScalingConfig config,
                               Trace* trace)
    : fabric_(fabric),
      noc_(noc),
      regions_(fabric),
      config_(config),
      trace_(trace),
      defective_(fabric.cluster_count(), false) {
  VLSIP_REQUIRE(noc.width() >= fabric.width() &&
                    noc.height() >= fabric.height(),
                "NoC must cover the cluster grid");
}

ScaledProcessor& ScalingManager::proc_mut(ProcId id) {
  VLSIP_REQUIRE(id < procs_.size() && procs_[id].id != kNoProc,
                "processor is not alive");
  return procs_[id];
}

const ScaledProcessor& ScalingManager::proc(ProcId id) const {
  VLSIP_REQUIRE(id < procs_.size() && procs_[id].id != kNoProc,
                "processor is not alive");
  return procs_[id];
}

bool ScalingManager::reserve_path(
    const std::vector<topology::ClusterId>& path, topology::RegionId owner) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (!fabric_.reserve(path[i - 1], path[i], owner)) {
      // Conflict: roll back what we reserved.
      for (std::size_t j = 1; j < i; ++j) {
        fabric_.clear_reservation(path[j - 1], path[j]);
      }
      ++stats_.reservation_conflicts;
      if (trace_) {
        trace_->event(now_, obs::Layer::kScaling, "scaling", -1,
                      "reservation conflict on link " +
                          std::to_string(path[i - 1]) + "-" +
                          std::to_string(path[i]));
      }
      return false;
    }
  }
  return true;
}

void ScalingManager::clear_path_reservations(
    const std::vector<topology::ClusterId>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    fabric_.clear_reservation(path[i - 1], path[i]);
  }
}

bool ScalingManager::send_config_worm(
    const std::vector<topology::ClusterId>& path) {
  // One configuration worm per target cluster: the head carries the
  // destination, the body carries the switch-programming words (one per
  // adjacent link). Worms originate at the configurator node (§3.3: the
  // preceding atomic block or a supervisor processor configures).
  const std::uint64_t start = noc_.now();
  for (const auto cluster : path) {
    const auto c = fabric_.coord(cluster);
    noc::Packet p;
    p.src_x = static_cast<std::uint16_t>(config_.configurator_x);
    p.src_y = static_cast<std::uint16_t>(config_.configurator_y);
    p.dst_x = static_cast<std::uint16_t>(c.x);
    p.dst_y = static_cast<std::uint16_t>(c.y);
    p.kind = noc::PacketKind::kConfig;
    p.payload = {static_cast<std::uint64_t>(cluster)};
    noc_.inject(p);
    ++stats_.config_packets;
  }
  const bool drained = noc_.run_until_drained(config_.max_config_cycles);
  stats_.config_cycles += noc_.now() - start;
  worm_cycles_.add(static_cast<double>(noc_.now() - start));
  return drained;
}

void ScalingManager::retire_ap(ScaledProcessor& p) {
  if (p.processor) {
    p.processor->export_obs(retired_obs_);
    p.processor->fold_energy(retired_activity_);
  }
}

std::unique_ptr<ap::AdaptiveProcessor> ScalingManager::make_ap(
    std::size_t clusters) const {
  ap::ApConfig cfg = config_.ap_template;
  cfg.capacity = static_cast<int>(clusters) *
                 fabric_.cluster_spec().stack_capacity();
  cfg.memory_blocks = static_cast<int>(clusters) *
                      fabric_.cluster_spec().memory_objects;
  return std::make_unique<ap::AdaptiveProcessor>(cfg);
}

ProcId ScalingManager::allocate(std::size_t clusters) {
  const auto path = regions_.find_serpentine_run(clusters);
  if (path.empty()) return kNoProc;
  return allocate_path(path, /*ring=*/false);
}

ProcId ScalingManager::allocate_path(
    const std::vector<topology::ClusterId>& path, bool ring) {
  mark_dirty();  // even refused allocations can bump conflict counters
  if (!regions_.can_form(path)) return kNoProc;
  for (const auto c : path) {
    if (defective_[c]) return kNoProc;
  }
  const auto ticket =
      kTicketBase + static_cast<topology::RegionId>(procs_.size());
  if (!reserve_path(path, ticket)) return kNoProc;
  if (!send_config_worm(path)) {
    clear_path_reservations(path);
    return kNoProc;
  }
  const auto region = regions_.form(path, ring);
  clear_path_reservations(path);

  const auto id = static_cast<ProcId>(procs_.size());
  procs_.push_back(ScaledProcessor{});
  ScaledProcessor& p = procs_.back();
  p.id = id;
  p.region = region;
  p.fsm.allocate();  // release -> inactive
  p.processor = make_ap(path.size());
  ++stats_.allocations;
  if (trace_) {
    trace_->event(now_, obs::Layer::kScaling, "scaling",
                  static_cast<std::int64_t>(id),
                  "allocated processor " + std::to_string(id) + " over " +
                      std::to_string(path.size()) + " clusters");
  }
  return id;
}

bool ScalingManager::upscale(ProcId id, std::size_t extra) {
  mark_dirty();
  ScaledProcessor& p = proc_mut(id);
  VLSIP_REQUIRE(p.fsm.state() == ProcState::kInactive,
                "up-scaling requires the inactive state");
  VLSIP_REQUIRE(extra >= 1, "up-scale by at least one cluster");
  const auto& region = regions_.region(p.region);
  VLSIP_REQUIRE(!region.ring, "cannot extend a ring");

  // Build the extension greedily: prefer the serpentine successor of the
  // tail, falling back to any free non-defective neighbour.
  std::vector<topology::ClusterId> extension;
  topology::ClusterId tail = region.path.back();
  std::vector<bool> tentative(fabric_.cluster_count(), false);
  for (std::size_t k = 0; k < extra; ++k) {
    const std::size_t tail_serp = fabric_.serpentine_index(tail);
    topology::ClusterId best = topology::kNoCluster;
    std::size_t best_serp = 0;
    for (const auto n : fabric_.neighbors(tail)) {
      if (defective_[n] || tentative[n]) continue;
      if (regions_.owner(n) != topology::kNoRegion) continue;
      const std::size_t s = fabric_.serpentine_index(n);
      if (s == tail_serp + 1) {
        best = n;
        break;
      }
      if (best == topology::kNoCluster || s < best_serp) {
        best = n;
        best_serp = s;
      }
    }
    if (best == topology::kNoCluster) return false;
    extension.push_back(best);
    tentative[best] = true;
    tail = best;
  }

  // Reserve the new links (tail joint + extension body), worm, extend.
  std::vector<topology::ClusterId> worm_path;
  worm_path.push_back(region.path.back());
  worm_path.insert(worm_path.end(), extension.begin(), extension.end());
  const auto ticket = kTicketBase + id;
  if (!reserve_path(worm_path, ticket)) return false;
  if (!send_config_worm(worm_path)) {
    clear_path_reservations(worm_path);
    return false;
  }
  for (const auto c : extension) regions_.extend(p.region, c);
  clear_path_reservations(worm_path);

  // Scaling changes C: re-instantiate the AP simulator (any configured
  // datapath must be reconfigured, as a real AP would re-request its
  // objects over the grown stack).
  retire_ap(p);
  p.processor = make_ap(regions_.region(p.region).cluster_count());
  ++stats_.upscales;
  if (trace_) {
    trace_->event(now_, obs::Layer::kScaling, "scaling",
                  static_cast<std::int64_t>(id),
                  "up-scaled processor " + std::to_string(id) + " by " +
                      std::to_string(extra) + " clusters");
  }
  return true;
}

void ScalingManager::downscale(ProcId id, std::size_t keep_clusters) {
  mark_dirty();
  ScaledProcessor& p = proc_mut(id);
  VLSIP_REQUIRE(p.fsm.state() == ProcState::kInactive,
                "down-scaling requires the inactive state");
  VLSIP_REQUIRE(keep_clusters >= 1, "keep at least one cluster");
  const auto& region = regions_.region(p.region);
  VLSIP_REQUIRE(keep_clusters <= region.cluster_count(),
                "cannot keep more clusters than the region has");
  if (keep_clusters == region.cluster_count()) return;

  // The release worm travels the freed tail (§3.4: down-scaling uses
  // wormhole routing along the unidirectional path).
  std::vector<topology::ClusterId> tail(
      region.path.begin() + static_cast<std::ptrdiff_t>(keep_clusters) - 1,
      region.path.end());
  send_config_worm(tail);
  regions_.shrink(p.region, keep_clusters - 1);
  retire_ap(p);
  p.processor = make_ap(keep_clusters);
  ++stats_.downscales;
  if (trace_) {
    trace_->event(now_, obs::Layer::kScaling, "scaling",
                  static_cast<std::int64_t>(id),
                  "down-scaled processor " + std::to_string(id) + " to " +
                      std::to_string(keep_clusters) + " clusters");
  }
}

void ScalingManager::release(ProcId id) {
  mark_dirty();
  ScaledProcessor& p = proc_mut(id);
  if (p.fsm.state() == ProcState::kSleep) p.fsm.wake();
  p.fsm.release();
  regions_.dissolve(p.region);
  retire_ap(p);
  p.processor.reset();
  p.region = topology::kNoRegion;
  p.id = kNoProc;
  ++stats_.releases;
}

void ScalingManager::activate(ProcId id) {
  mark_dirty();
  proc_mut(id).fsm.activate();
}

void ScalingManager::deactivate(ProcId id) {
  mark_dirty();
  proc_mut(id).fsm.deactivate();
}

void ScalingManager::sleep(ProcId id, std::optional<std::uint64_t> wake_at) {
  mark_dirty();
  proc_mut(id).fsm.sleep(wake_at);
}

void ScalingManager::notify(ProcId id) {
  mark_dirty();
  ScaledProcessor& p = proc_mut(id);
  VLSIP_REQUIRE(p.fsm.state() == ProcState::kSleep,
                "notify targets a sleeping processor");
  p.event_pending = true;
  p.fsm.wake();
  p.event_pending = false;
}

void ScalingManager::advance(std::uint64_t cycles) {
  mark_dirty();
  now_ += cycles;
  for (auto& p : procs_) {
    if (p.id != kNoProc && p.fsm.timer_expired(now_)) p.fsm.wake();
  }
}

ap::AdaptiveProcessor& ScalingManager::processor(ProcId id) {
  mark_dirty();  // mutable escape hatch: assume the caller mutates the AP
  return *proc_mut(id).processor;
}

const ScaledProcessor& ScalingManager::info(ProcId id) const {
  return proc(id);
}

ProcState ScalingManager::state(ProcId id) const {
  return proc(id).fsm.state();
}

bool ScalingManager::alive(ProcId id) const {
  return id < procs_.size() && procs_[id].id != kNoProc;
}

std::size_t ScalingManager::cluster_count(ProcId id) const {
  return regions_.region(proc(id).region).cluster_count();
}

std::uint64_t ScalingManager::send(ProcId from, ProcId to,
                                   const std::vector<std::uint64_t>& words,
                                   std::size_t base_address) {
  mark_dirty();
  const ScaledProcessor& src = proc(from);
  ScaledProcessor& dst = proc_mut(to);
  VLSIP_REQUIRE(dst.fsm.accepts_external_writes(),
                "destination must be inactive to accept external writes");
  const auto src_head = regions_.region(src.region).path.front();
  const auto dst_head = regions_.region(dst.region).path.front();
  const auto sc = fabric_.coord(src_head);
  const auto dc = fabric_.coord(dst_head);

  noc::Packet p;
  p.src_x = static_cast<std::uint16_t>(sc.x);
  p.src_y = static_cast<std::uint16_t>(sc.y);
  p.dst_x = static_cast<std::uint16_t>(dc.x);
  p.dst_y = static_cast<std::uint16_t>(dc.y);
  p.kind = noc::PacketKind::kData;
  p.payload = words;
  const std::uint64_t start = noc_.now();
  noc_.inject(p);
  ++stats_.data_packets;
  const bool drained = noc_.run_until_drained(config_.max_config_cycles);
  VLSIP_INVARIANT(drained, "NoC failed to drain a data packet");
  // Spill the payload into the follower's memory block (fig. 7 d: "the
  // preceding processor accesses and writes data to the memory block of
  // the following processor").
  for (std::size_t i = 0; i < words.size(); ++i) {
    dst.processor->memory().write(base_address + i,
                                  arch::make_word_u(words[i]));
  }
  return noc_.now() - start;
}

std::uint64_t ScalingManager::send_and_activate(
    ProcId from, ProcId to, const std::vector<std::uint64_t>& words,
    std::size_t base_address) {
  const std::uint64_t cycles = send(from, to, words, base_address);
  activate(to);
  return cycles;
}

ProcId ScalingManager::mark_defective(topology::ClusterId cluster) {
  mark_dirty();
  VLSIP_REQUIRE(cluster < fabric_.cluster_count(), "cluster out of range");
  if (defective_[cluster]) return kNoProc;
  defective_[cluster] = true;
  ++stats_.defects_handled;

  const auto owner = regions_.owner(cluster);
  if (owner == topology::kNoRegion) {
    // Free cluster: quarantine it so allocation can never touch it.
    regions_.form({cluster});
    return kNoProc;
  }

  // Find the processor owning this region (quarantine regions have no
  // processor and are already defective-marked, so they cannot be hit).
  ProcId victim = kNoProc;
  for (const auto& p : procs_) {
    if (p.id != kNoProc && p.region == owner) {
      victim = p.id;
      break;
    }
  }
  VLSIP_INVARIANT(victim != kNoProc, "region without a processor failed");
  ScaledProcessor& p = proc_mut(victim);

  // Quiesce to inactive so the split is legal.
  if (p.fsm.state() == ProcState::kSleep) p.fsm.wake();
  if (p.fsm.state() == ProcState::kActive) p.fsm.deactivate();

  const auto& path = regions_.region(p.region).path;
  const auto it = std::find(path.begin(), path.end(), cluster);
  VLSIP_INVARIANT(it != path.end(), "owner region does not contain cluster");
  const auto k = static_cast<std::size_t>(it - path.begin());

  if (k == 0) {
    // The defect took the head: the whole processor is lost (§1: "the
    // failing AP can be removed from the system").
    release(victim);
    regions_.form({cluster});
    if (trace_) {
      trace_->event(now_, obs::Layer::kScaling, "scaling",
                    static_cast<std::int64_t>(victim),
                    "defect destroyed processor " + std::to_string(victim));
    }
    return kNoProc;
  }

  // Survive with clusters [0, k); free [k, end) and quarantine the
  // defect.
  regions_.shrink(p.region, k - 1);
  regions_.form({cluster});
  retire_ap(p);
  p.processor = make_ap(k);
  if (trace_) {
    trace_->event(now_, obs::Layer::kScaling, "scaling",
                  static_cast<std::int64_t>(victim),
                  "defect shrank processor " + std::to_string(victim) +
                      " to " + std::to_string(k) + " clusters");
  }
  return victim;
}

bool ScalingManager::is_defective(topology::ClusterId cluster) const {
  VLSIP_REQUIRE(cluster < fabric_.cluster_count(), "cluster out of range");
  return defective_[cluster];
}

std::size_t ScalingManager::defective_clusters() const {
  return static_cast<std::size_t>(
      std::count(defective_.begin(), defective_.end(), true));
}

ScalingManager::FaultRecovery ScalingManager::refuse_around(
    topology::ClusterId cluster) {
  mark_dirty();
  VLSIP_REQUIRE(cluster < fabric_.cluster_count(), "cluster out of range");
  FaultRecovery recovery;
  if (defective_[cluster]) return recovery;  // already quarantined

  // Find the live processor owning the cluster, if any. Quarantine
  // regions cover only defective clusters, so an owner here is always a
  // real processor's region.
  const auto owner = regions_.owner(cluster);
  if (owner != topology::kNoRegion) {
    for (const auto& p : procs_) {
      if (p.id != kNoProc && p.region == owner) {
        recovery.victim = p.id;
        break;
      }
    }
    VLSIP_INVARIANT(recovery.victim != kNoProc,
                    "owned cluster without a live processor");
  }

  defective_[cluster] = true;
  ++stats_.defects_handled;

  if (recovery.victim != kNoProc) {
    // Drive the victim through the fault path: whatever state it is
    // in, the region dissolves and its healthy clusters rejoin the
    // spare pool.
    ScaledProcessor& p = proc_mut(recovery.victim);
    recovery.victim_clusters = regions_.region(p.region).cluster_count();
    p.fsm.fault();
    regions_.dissolve(p.region);
    retire_ap(p);
    p.processor.reset();
    p.region = topology::kNoRegion;
    p.id = kNoProc;
    ++stats_.releases;
    ++stats_.fault_releases;
    if (trace_) {
      trace_->event(now_, obs::Layer::kScaling, "scaling",
                    static_cast<std::int64_t>(recovery.victim),
                    "fault released processor " +
                        std::to_string(recovery.victim) + " (" +
                        std::to_string(recovery.victim_clusters) +
                        " clusters)");
    }
  }

  // Quarantine the defect so no future allocation touches it.
  regions_.form({cluster});

  if (recovery.victim_clusters > 0) {
    recovery.replacement = allocate(recovery.victim_clusters);
    if (recovery.replacement == kNoProc && compact() > 0) {
      recovery.compacted = true;
      recovery.replacement = allocate(recovery.victim_clusters);
    }
    if (recovery.replacement != kNoProc) {
      ++stats_.fault_refusals;
      if (trace_) {
        trace_->event(now_, obs::Layer::kScaling, "scaling",
                      static_cast<std::int64_t>(recovery.replacement),
                      "re-fused replacement processor " +
                          std::to_string(recovery.replacement) +
                          " around defective cluster " +
                          std::to_string(cluster));
      }
    }
  }
  return recovery;
}

std::size_t ScalingManager::largest_free_run() const {
  std::size_t best = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < fabric_.cluster_count(); ++i) {
    const auto c = fabric_.serpentine_at(i);
    if (regions_.owner(c) == topology::kNoRegion && !defective_[c]) {
      best = std::max(best, ++run);
    } else {
      run = 0;
    }
  }
  return best;
}

std::size_t ScalingManager::compact() {
  mark_dirty();
  const std::uint64_t sweep_start = noc_.now();
  // Order live processors by the serpentine index of their head.
  struct Item {
    ProcId id;
    std::size_t head_serp;
  };
  std::vector<Item> order;
  for (const auto& p : procs_) {
    if (p.id == kNoProc) continue;
    const auto& path = regions_.region(p.region).path;
    std::size_t head = fabric_.cluster_count();
    for (const auto c : path) {
      head = std::min(head, fabric_.serpentine_index(c));
    }
    order.push_back(Item{p.id, head});
  }
  std::sort(order.begin(), order.end(),
            [](const Item& a, const Item& b) {
              return a.head_serp < b.head_serp;
            });

  std::size_t moved = 0;
  std::size_t cursor = 0;  // earliest serpentine slot still assignable
  for (const auto& item : order) {
    ScaledProcessor& p = proc_mut(item.id);
    const auto old_path = regions_.region(p.region).path;
    const std::size_t n = old_path.size();
    if (p.fsm.state() != ProcState::kInactive ||
        regions_.region(p.region).ring) {
      // Immovable: it becomes an obstacle; advance the cursor past its
      // highest occupied slot so later processors pack behind it.
      for (const auto c : old_path) {
        cursor = std::max(cursor, fabric_.serpentine_index(c) + 1);
      }
      continue;
    }
    // Find the earliest contiguous run of n slots starting at or after
    // the cursor where every cluster is free or our own.
    std::size_t start = cursor;
    std::size_t found = fabric_.cluster_count();
    std::size_t run = 0;
    for (std::size_t i = cursor; i < fabric_.cluster_count(); ++i) {
      const auto c = fabric_.serpentine_at(i);
      const auto owner = regions_.owner(c);
      const bool usable =
          !defective_[c] &&
          (owner == topology::kNoRegion || owner == p.region);
      if (usable) {
        if (run == 0) start = i;
        if (++run == n) {
          found = start;
          break;
        }
      } else {
        run = 0;
      }
    }
    if (found == fabric_.cluster_count()) {
      // No run (should not happen — its own slots always qualify);
      // leave in place.
      for (const auto c : old_path) {
        cursor = std::max(cursor, fabric_.serpentine_index(c) + 1);
      }
      continue;
    }
    // Already packed? Just advance the cursor.
    std::vector<topology::ClusterId> new_path;
    new_path.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      new_path.push_back(fabric_.serpentine_at(found + i));
    }
    cursor = found + n;
    if (new_path == old_path) continue;

    // Relocate: tear down the old region, worm-program the new one,
    // and move the AP simulator across untouched.
    regions_.dissolve(p.region);
    if (!regions_.can_form(new_path)) {
      // Roll back (cannot occur given the scan above; defensive).
      p.region = regions_.form(old_path);
      continue;
    }
    send_config_worm(new_path);
    p.region = regions_.form(new_path);
    ++moved;
    ++stats_.relocations;
    if (trace_) {
      trace_->event(now_, obs::Layer::kScaling, "scaling",
                    static_cast<std::int64_t>(item.id),
                    "relocated processor " + std::to_string(item.id) +
                        " to serpentine slot " + std::to_string(found));
    }
  }
  compaction_cycles_.add(static_cast<double>(noc_.now() - sweep_start));
  return moved;
}

std::size_t ScalingManager::free_clusters() const {
  return regions_.free_clusters();
}

std::vector<ProcId> ScalingManager::live_processors() const {
  std::vector<ProcId> out;
  for (const auto& p : procs_) {
    if (p.id != kNoProc) out.push_back(p.id);
  }
  return out;
}

void ScalingManager::export_obs(obs::MetricRegistry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + "allocations") += stats_.allocations;
  registry.counter(prefix + "releases") += stats_.releases;
  registry.counter(prefix + "upscales") += stats_.upscales;
  registry.counter(prefix + "downscales") += stats_.downscales;
  registry.counter(prefix + "reservation_conflicts") +=
      stats_.reservation_conflicts;
  registry.counter(prefix + "config_packets") += stats_.config_packets;
  registry.counter(prefix + "config_cycles") += stats_.config_cycles;
  registry.counter(prefix + "data_packets") += stats_.data_packets;
  registry.counter(prefix + "defects_handled") += stats_.defects_handled;
  registry.counter(prefix + "relocations") += stats_.relocations;
  registry.counter(prefix + "fault_refusals") += stats_.fault_refusals;
  registry.counter(prefix + "fault_releases") += stats_.fault_releases;

  // State-machine transition totals across every processor slot the
  // manager ever created (released slots keep their fsm counters).
  std::uint64_t transitions = 0;
  std::uint64_t fsm_faults = 0;
  std::uint64_t live = 0;
  for (const auto& p : procs_) {
    transitions += p.fsm.transitions();
    fsm_faults += p.fsm.faults();
    if (p.id != kNoProc) ++live;
  }
  registry.counter(prefix + "fsm_transitions") += transitions;
  registry.counter(prefix + "fsm_faults") += fsm_faults;
  registry.gauge(prefix + "live_processors") = static_cast<double>(live);
  registry.gauge(prefix + "free_clusters") =
      static_cast<double>(free_clusters());
  registry.gauge(prefix + "largest_free_run") =
      static_cast<double>(largest_free_run());

  // Wormhole / compaction durations (NoC cycles per operation).
  if (worm_cycles_.count() > 0) {
    registry.counter(prefix + "config_worms") += worm_cycles_.count();
    registry.gauge(prefix + "worm_cycles_mean") = worm_cycles_.mean();
    registry.gauge(prefix + "worm_cycles_max") = worm_cycles_.max();
  }
  if (compaction_cycles_.count() > 0) {
    registry.counter(prefix + "compaction_sweeps") +=
        compaction_cycles_.count();
    registry.gauge(prefix + "compaction_cycles_mean") =
        compaction_cycles_.mean();
    registry.gauge(prefix + "compaction_cycles_max") =
        compaction_cycles_.max();
  }

  // AP-layer metrics: live simulators accumulate directly, torn-down
  // ones were folded into retired_obs_ by retire_ap().
  for (const auto& p : procs_) {
    if (p.id != kNoProc && p.processor) p.processor->export_obs(registry);
  }
  registry.merge(retired_obs_);
}

namespace {

void save_running_stats(snapshot::Writer& w, const RunningStats& s) {
  const RunningStats::Raw raw = s.raw();
  w.u64(raw.n);
  w.f64(raw.mean);
  w.f64(raw.m2);
  w.f64(raw.min);
  w.f64(raw.max);
}

void restore_running_stats(snapshot::Reader& r, RunningStats& s) {
  RunningStats::Raw raw;
  raw.n = static_cast<std::size_t>(r.u64());
  raw.mean = r.f64();
  raw.m2 = r.f64();
  raw.min = r.f64();
  raw.max = r.f64();
  s.set_raw(raw);
}

}  // namespace

void ScalingManager::save(snapshot::Writer& w) const {
  w.section("scaling.manager");
  regions_.save(w);
  w.u64(procs_.size());
  for (const auto& p : procs_) {
    w.u32(p.id);
    w.u32(p.region);
    w.u8(static_cast<std::uint8_t>(p.fsm.state()));
    w.b(p.fsm.read_protected());
    w.b(p.fsm.write_protected());
    w.b(p.fsm.wake_at().has_value());
    w.u64(p.fsm.wake_at().value_or(0));
    w.u64(p.fsm.transitions());
    w.u64(p.fsm.faults());
    w.b(p.event_pending);
    w.b(p.processor != nullptr);
    if (p.processor) {
      // Cluster count the AP was built from (memory blocks never
      // shrink, unlike capacity, so they recover the original size).
      const auto clusters = static_cast<std::uint64_t>(
          p.processor->config().memory_blocks /
          fabric_.cluster_spec().memory_objects);
      w.u64(clusters);
      p.processor->save(w);
    }
  }
  std::vector<std::uint8_t> defects(defective_.size());
  for (std::size_t i = 0; i < defective_.size(); ++i) {
    defects[i] = defective_[i] ? 1 : 0;
  }
  w.vec_u8(defects);
  w.u64(stats_.allocations);
  w.u64(stats_.releases);
  w.u64(stats_.upscales);
  w.u64(stats_.downscales);
  w.u64(stats_.reservation_conflicts);
  w.u64(stats_.config_packets);
  w.u64(stats_.config_cycles);
  w.u64(stats_.data_packets);
  w.u64(stats_.defects_handled);
  w.u64(stats_.relocations);
  w.u64(stats_.fault_refusals);
  w.u64(stats_.fault_releases);
  w.u64(now_);
  save_running_stats(w, worm_cycles_);
  save_running_stats(w, compaction_cycles_);
  w.vec_u64(std::vector<std::uint64_t>(retired_activity_.units.begin(),
                                       retired_activity_.units.end()));
}

void ScalingManager::restore(snapshot::Reader& r) {
  mark_dirty();
  r.section("scaling.manager");
  regions_.restore(r);
  procs_.clear();
  const std::uint64_t n_procs = r.count(34);
  procs_.reserve(static_cast<std::size_t>(n_procs));
  for (std::uint64_t i = 0; i < n_procs; ++i) {
    ScaledProcessor p;
    p.id = r.u32();
    p.region = r.u32();
    const auto state = static_cast<ProcState>(r.u8());
    const bool read_protected = r.b();
    const bool write_protected = r.b();
    const bool has_wake = r.b();
    const std::uint64_t wake_at = r.u64();
    const std::uint64_t transitions = r.u64();
    const std::uint64_t faults = r.u64();
    p.fsm.restore_state(state, read_protected, write_protected,
                        has_wake ? std::optional<std::uint64_t>(wake_at)
                                 : std::nullopt,
                        transitions, faults);
    p.event_pending = r.b();
    const bool has_ap = r.b();
    if (has_ap) {
      const std::uint64_t clusters = r.u64();
      p.processor = make_ap(static_cast<std::size_t>(clusters));
      p.processor->restore(r);
    }
    procs_.push_back(std::move(p));
  }
  const std::vector<std::uint8_t> defects = r.vec_u8();
  VLSIP_REQUIRE(defects.size() == defective_.size(),
                "snapshot defect map mismatch");
  for (std::size_t i = 0; i < defects.size(); ++i) {
    defective_[i] = defects[i] != 0;
  }
  stats_.allocations = r.u64();
  stats_.releases = r.u64();
  stats_.upscales = r.u64();
  stats_.downscales = r.u64();
  stats_.reservation_conflicts = r.u64();
  stats_.config_packets = r.u64();
  stats_.config_cycles = r.u64();
  stats_.data_packets = r.u64();
  stats_.defects_handled = r.u64();
  stats_.relocations = r.u64();
  stats_.fault_refusals = r.u64();
  stats_.fault_releases = r.u64();
  now_ = r.u64();
  restore_running_stats(r, worm_cycles_);
  restore_running_stats(r, compaction_cycles_);
  const std::vector<std::uint64_t> retired = r.vec_u64();
  VLSIP_REQUIRE(retired.size() == cost::kEnergyClassCount,
                "snapshot retired-energy vector mismatch");
  retired_activity_ = {};
  for (std::size_t i = 0; i < retired.size(); ++i) {
    retired_activity_.units[i] = retired[i];
  }
}

void ScalingManager::fold_energy(cost::EnergyActivity& a) const {
  a.add(retired_activity_);
  for (const auto& p : procs_) {
    if (p.processor) p.processor->fold_energy(a);
  }
  a.units[cost::kEnergyWormHop] += stats_.config_packets;
  a.units[cost::kEnergyRelocation] +=
      stats_.relocations + stats_.defects_handled;
}

}  // namespace vlsip::scaling
