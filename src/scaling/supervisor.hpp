// The supervisor processor (§3.3: "Another processor, which may be a
// preceding atomic block or supervisor processor configures the four
// processors").
//
// A Supervisor executes a *task graph*: each task is a program with a
// requested cluster count; data edges carry a producer's output tokens
// into a consumer's memory block (the fig. 7(d) hand-off — the write
// happens while the consumer is inactive, then the consumer activates).
// Edges may be *predicated* on a producer output (fig. 7's conditional:
// only the taken arm's processor is ever activated; the untaken arm is
// never configured at all — no pipeline flush, no wasted execution).
//
// The supervisor accounts a serialized wall-clock: configuration worms,
// NoC transfers and task execution accumulate into one chip timeline.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "scaling/scaling_manager.hpp"

namespace vlsip::scaling {

struct TaskSpec {
  std::string name;
  arch::Program program;
  std::size_t clusters = 1;
  /// Externally supplied input tokens (ports not fed by edges).
  std::map<std::string, std::vector<arch::Word>> direct_inputs;
  /// Tokens expected at every output before the task completes.
  std::size_t expected_per_output = 1;
};

struct DataEdge {
  std::string from_task;
  std::string from_output;    // producer output port
  std::string to_task;
  std::size_t to_base_address = 0;  // where the words land in memory
  /// If set: the edge fires only when the last token of this producer
  /// output is truthy (conditional activation) / falsy (negated).
  std::optional<std::string> predicate_output;
  bool predicate_negated = false;
};

struct TaskOutcome {
  std::string name;
  bool ran = false;          // false = never activated (untaken arm)
  bool completed = false;
  std::uint64_t started_at = 0;
  std::uint64_t finished_at = 0;
  std::uint64_t config_cycles = 0;
  std::uint64_t exec_cycles = 0;
  std::map<std::string, std::vector<arch::Word>> outputs;
};

struct SupervisorResult {
  std::uint64_t total_cycles = 0;
  std::uint64_t transfer_cycles = 0;  // NoC hand-off cost
  std::size_t tasks_run = 0;
  std::size_t tasks_skipped = 0;
  std::vector<TaskOutcome> outcomes;

  const TaskOutcome& outcome(const std::string& name) const;
};

class Supervisor {
 public:
  explicit Supervisor(ScalingManager& manager);

  /// Adds a task; names must be unique.
  void add_task(TaskSpec task);

  /// Adds a data edge; both tasks must exist and form no cycle.
  void add_edge(DataEdge edge);

  /// Runs the graph to completion. Tasks run as soon as every incoming
  /// *active* edge has delivered (edges whose predicate evaluated false
  /// are dropped, and a task with no remaining active in-edges and no
  /// unconditional path to it is skipped). Returns the outcomes; the
  /// chip is fully released afterwards.
  SupervisorResult run(std::uint64_t max_cycles_per_task = 1u << 22);

 private:
  struct Pending {
    TaskSpec spec;
    std::vector<std::size_t> in_edges;   // indices into edges_
    std::vector<std::size_t> out_edges;
  };

  ScalingManager& manager_;
  std::map<std::string, std::size_t> task_index_;
  std::vector<Pending> tasks_;
  std::vector<DataEdge> edges_;
};

}  // namespace vlsip::scaling
