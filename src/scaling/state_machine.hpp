// The per-processor state machine of fig. 6(e): release, inactive,
// active, sleep.
//
// Lifecycle (§3.3): a processor "starts from and ends with the release
// state". Programming the switches of a minimum AP moves it to
// *inactive* — ready to execute, but not read/write-protected, so other
// processors may access its memory blocks (this is how configuration
// data, object libraries and spilled data are stored, and how the
// preceding processor hands over operands in fig. 7 d). Setting the
// protections (or a timer) *invokes* the region as the active scaled AP.
// An active processor may *sleep* — still protected, but not fetching
// global configuration data — waiting for a timer or an event, which is
// the processor-level synchronisation primitive.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace vlsip::scaling {

enum class ProcState : std::uint8_t {
  kRelease,
  kInactive,
  kActive,
  kSleep,
};

const char* state_name(ProcState s);

/// Enforces the legal transitions of fig. 6(e); illegal transitions are
/// precondition errors so misuse is caught at the call site.
class ProcessorStateMachine {
 public:
  ProcState state() const { return state_; }
  bool read_protected() const { return read_protected_; }
  bool write_protected() const { return write_protected_; }

  /// release -> inactive: the switches of the region were programmed.
  void allocate();

  /// inactive -> active: protections are set and the region is invoked.
  void activate();

  /// active -> inactive: protections cleared; others may access the
  /// memory blocks again.
  void deactivate();

  /// active -> sleep: wait for a timer (wake_at) or an external event
  /// (no timer). Configuration-data fetch stops.
  void sleep(std::optional<std::uint64_t> wake_at);

  /// sleep -> active: the timer expired or the event arrived.
  void wake();

  /// inactive -> release (also allowed from active for defect handling,
  /// where the failing AP is removed from the system, §1).
  void release();

  /// Fault path: any live state -> release. A defective object or
  /// stuck switch inside the region makes the processor unusable; the
  /// state machine is the paper's own fault-tolerance hook (§1: "the
  /// failing AP can be removed from the system"), so a fault forces
  /// the full path back to release — waking a sleeper and clearing
  /// protections on the way. Faulting a released processor is a
  /// precondition error (there is nothing to remove).
  void fault();

  /// Faults absorbed over this state machine's lifetime.
  std::uint64_t faults() const { return faults_; }

  /// Timer deadline while sleeping, if any.
  std::optional<std::uint64_t> wake_at() const { return wake_at_; }

  /// True if a sleeping processor's timer has expired at `now`.
  bool timer_expired(std::uint64_t now) const;

  /// Whether another processor may write this one's memory blocks.
  bool accepts_external_writes() const {
    return state_ == ProcState::kInactive;
  }

  std::uint64_t transitions() const { return transitions_; }

  /// Checkpoint restore: sets the full state verbatim, bypassing the
  /// legal-transition checks (the saved machine already went through
  /// them). Only for snapshot restore paths.
  void restore_state(ProcState state, bool read_protected,
                     bool write_protected,
                     std::optional<std::uint64_t> wake_at,
                     std::uint64_t transitions, std::uint64_t faults) {
    state_ = state;
    read_protected_ = read_protected;
    write_protected_ = write_protected;
    wake_at_ = wake_at;
    transitions_ = transitions;
    faults_ = faults;
  }

 private:
  void move_to(ProcState next);

  ProcState state_ = ProcState::kRelease;
  bool read_protected_ = false;
  bool write_protected_ = false;
  std::optional<std::uint64_t> wake_at_;
  std::uint64_t transitions_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace vlsip::scaling
