#include "scaling/supervisor.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace vlsip::scaling {

const TaskOutcome& SupervisorResult::outcome(const std::string& name) const {
  for (const auto& o : outcomes) {
    if (o.name == name) return o;
  }
  VLSIP_REQUIRE(false, "no outcome for task: " + name);
  return outcomes.front();  // unreachable
}

Supervisor::Supervisor(ScalingManager& manager) : manager_(manager) {}

void Supervisor::add_task(TaskSpec task) {
  VLSIP_REQUIRE(!task.name.empty(), "task needs a name");
  VLSIP_REQUIRE(!task_index_.contains(task.name),
                "duplicate task name: " + task.name);
  VLSIP_REQUIRE(!task.program.stream.empty(), "task has an empty program");
  VLSIP_REQUIRE(task.clusters >= 1, "task needs at least one cluster");
  task_index_[task.name] = tasks_.size();
  tasks_.push_back(Pending{std::move(task), {}, {}});
}

void Supervisor::add_edge(DataEdge edge) {
  const auto from = task_index_.find(edge.from_task);
  const auto to = task_index_.find(edge.to_task);
  VLSIP_REQUIRE(from != task_index_.end(),
                "unknown producer task: " + edge.from_task);
  VLSIP_REQUIRE(to != task_index_.end(),
                "unknown consumer task: " + edge.to_task);
  VLSIP_REQUIRE(from->second != to->second, "self-edges are not allowed");
  const auto& producer = tasks_[from->second].spec.program;
  VLSIP_REQUIRE(producer.outputs.contains(edge.from_output),
                "producer has no output '" + edge.from_output + "'");
  if (edge.predicate_output) {
    VLSIP_REQUIRE(producer.outputs.contains(*edge.predicate_output),
                  "producer has no output '" + *edge.predicate_output + "'");
  }
  const auto idx = edges_.size();
  tasks_[from->second].out_edges.push_back(idx);
  tasks_[to->second].in_edges.push_back(idx);
  edges_.push_back(std::move(edge));
}

SupervisorResult Supervisor::run(std::uint64_t max_cycles_per_task) {
  enum class EdgeState { kPending, kReadyToTransfer, kCancelled, kDone };
  enum class TaskState { kWaiting, kRan, kSkipped };

  SupervisorResult result;
  result.outcomes.resize(tasks_.size());
  std::vector<EdgeState> edge_state(edges_.size(), EdgeState::kPending);
  std::vector<TaskState> task_state(tasks_.size(), TaskState::kWaiting);
  std::vector<ProcId> procs(tasks_.size(), kNoProc);
  std::vector<std::size_t> unresolved_out(tasks_.size(), 0);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    result.outcomes[t].name = tasks_[t].spec.name;
    unresolved_out[t] = tasks_[t].out_edges.size();
  }
  std::uint64_t now = 0;

  auto maybe_release_producer = [&](std::size_t t) {
    if (task_state[t] == TaskState::kRan && unresolved_out[t] == 0 &&
        procs[t] != kNoProc) {
      manager_.release(procs[t]);
      procs[t] = kNoProc;
    }
  };

  // Cancels an edge; may cascade into skipping the consumer.
  auto cancel_edge = [&](std::size_t e, auto&& cancel_task_ref) -> void {
    if (edge_state[e] == EdgeState::kCancelled) return;
    VLSIP_INVARIANT(edge_state[e] == EdgeState::kPending,
                    "cancelling a resolved edge");
    edge_state[e] = EdgeState::kCancelled;
    const auto producer = task_index_.at(edges_[e].from_task);
    --unresolved_out[producer];
    maybe_release_producer(producer);
    // If the consumer now has no chance of receiving any data, skip it.
    const auto consumer = task_index_.at(edges_[e].to_task);
    if (task_state[consumer] != TaskState::kWaiting) return;
    bool any_alive = false;
    for (const auto in : tasks_[consumer].in_edges) {
      if (edge_state[in] != EdgeState::kCancelled) any_alive = true;
    }
    if (!any_alive && !tasks_[consumer].in_edges.empty()) {
      cancel_task_ref(consumer, cancel_task_ref);
    }
  };
  auto cancel_task = [&](std::size_t t, auto&& self) -> void {
    task_state[t] = TaskState::kSkipped;
    ++result.tasks_skipped;
    for (const auto out : tasks_[t].out_edges) {
      cancel_edge(out, self);
    }
  };

  auto ready = [&](std::size_t t) {
    if (task_state[t] != TaskState::kWaiting) return false;
    for (const auto in : tasks_[t].in_edges) {
      if (edge_state[in] == EdgeState::kPending) return false;
    }
    return true;  // every in-edge delivered-or-cancelled (skip handled
                  // by cancel cascade)
  };

  std::size_t remaining = tasks_.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (!ready(t)) continue;
      progress = true;
      --remaining;
      if (task_state[t] == TaskState::kSkipped) continue;

      // Allocate and configure.
      auto& spec = tasks_[t].spec;
      const auto cfg_cycles0 = manager_.stats().config_cycles;
      ProcId proc = manager_.allocate(spec.clusters);
      if (proc == kNoProc && manager_.compact() > 0) {
        proc = manager_.allocate(spec.clusters);
      }
      VLSIP_REQUIRE(proc != kNoProc,
                    "cannot allocate " + std::to_string(spec.clusters) +
                        " clusters for task " + spec.name);
      procs[t] = proc;
      now += manager_.stats().config_cycles - cfg_cycles0;

      auto& ap = manager_.processor(proc);
      const auto cfg_stats = ap.configure(spec.program);
      now += cfg_stats.cycles;

      // Pull the incoming data (fig. 7 d: written while inactive).
      for (const auto in : tasks_[t].in_edges) {
        if (edge_state[in] != EdgeState::kReadyToTransfer) continue;
        const auto& edge = edges_[in];
        const auto producer = task_index_.at(edge.from_task);
        const auto& tokens =
            result.outcomes[producer].outputs.at(edge.from_output);
        std::vector<std::uint64_t> words;
        words.reserve(tokens.size());
        for (const auto& w : tokens) words.push_back(w.u);
        const auto cycles =
            manager_.send(procs[producer], proc, words,
                          edge.to_base_address);
        now += cycles;
        result.transfer_cycles += cycles;
        edge_state[in] = EdgeState::kDone;
        --unresolved_out[producer];
        maybe_release_producer(producer);
      }

      // Feed direct inputs, activate, run.
      for (const auto& [name, words] : spec.direct_inputs) {
        for (const auto& w : words) ap.feed(name, w);
      }
      manager_.activate(proc);
      auto& outcome = result.outcomes[t];
      outcome.ran = true;
      outcome.started_at = now;
      outcome.config_cycles = cfg_stats.cycles;
      const auto exec = ap.run(spec.expected_per_output,
                               max_cycles_per_task);
      manager_.deactivate(proc);
      outcome.completed = exec.completed;
      outcome.exec_cycles = exec.cycles;
      now += exec.cycles;
      outcome.finished_at = now;
      for (const auto& [name, obj] : spec.program.outputs) {
        (void)obj;
        outcome.outputs[name] = ap.output(name);
      }
      task_state[t] = TaskState::kRan;
      ++result.tasks_run;

      // Resolve the outgoing edges (predicates decide activation).
      for (const auto out : tasks_[t].out_edges) {
        const auto& edge = edges_[out];
        bool active = true;
        if (edge.predicate_output) {
          const auto& pred = outcome.outputs.at(*edge.predicate_output);
          VLSIP_REQUIRE(!pred.empty(),
                        "predicate output produced no token");
          const bool truthy = pred.back().u != 0;
          active = edge.predicate_negated ? !truthy : truthy;
        }
        if (active) {
          edge_state[out] = EdgeState::kReadyToTransfer;
        } else {
          cancel_edge(out, cancel_task);
        }
      }
      maybe_release_producer(t);
    }
    VLSIP_REQUIRE(progress || remaining == 0,
                  "task graph contains a cycle or an unsatisfiable task");
    // Account for tasks skipped by the cancel cascade this round.
    std::size_t still_waiting = 0;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (task_state[t] == TaskState::kWaiting) ++still_waiting;
    }
    // `remaining` counts waiting + skipped-but-not-yet-visited; refresh.
    remaining = still_waiting;
  }

  // Release anything still held (producers whose consumers were skipped
  // had their edges cancelled, but be thorough).
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    if (procs[t] != kNoProc) {
      manager_.release(procs[t]);
      procs[t] = kNoProc;
    }
  }
  result.total_cycles = now;
  return result;
}

}  // namespace vlsip::scaling
