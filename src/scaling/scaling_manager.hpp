// Scaling operations (paper §3.3–3.4): forming, up-/down-scaling and
// releasing adaptive processors on the S-topology via wormhole-routed
// switch programming, plus inter-processor communication and defect
// tolerance.
//
// Up-scaling "is simply to chain ... the segmented interconnection
// networks using programming switches"; the configuration travels as a
// wormhole worm that stores a reservation flag at each programmable
// switch so concurrent scalings cannot conflict over clusters. Execution
// hand-off between processors uses the inactive state: the preceding
// processor writes operands into the follower's memory block, then
// activates it (fig. 7 d).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"
#include "noc/noc_fabric.hpp"
#include "obs/metrics.hpp"
#include "scaling/state_machine.hpp"
#include "topology/region.hpp"
#include "topology/s_topology.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::scaling {

using ProcId = std::uint32_t;
inline constexpr ProcId kNoProc = 0xFFFFFFFFu;

/// One scaled adaptive processor: a region of fused clusters, its state
/// machine, and (once instantiated) its AP simulator.
struct ScaledProcessor {
  ProcId id = kNoProc;
  topology::RegionId region = topology::kNoRegion;
  ProcessorStateMachine fsm;
  std::unique_ptr<ap::AdaptiveProcessor> processor;
  /// Event flag for sleep-until-event synchronisation.
  bool event_pending = false;
};

struct ScalingStats {
  std::uint64_t allocations = 0;
  std::uint64_t releases = 0;
  std::uint64_t upscales = 0;
  std::uint64_t downscales = 0;
  std::uint64_t reservation_conflicts = 0;
  std::uint64_t config_packets = 0;
  std::uint64_t config_cycles = 0;  // NoC cycles spent on config worms
  std::uint64_t data_packets = 0;
  std::uint64_t defects_handled = 0;
  std::uint64_t relocations = 0;
  /// Fault recoveries that re-fused a replacement processor.
  std::uint64_t fault_refusals = 0;
  /// Processors driven release-ward by the fault path (fsm.fault()).
  std::uint64_t fault_releases = 0;
};

struct ScalingConfig {
  /// Template for per-processor AP simulators; capacity/memory_blocks
  /// are overridden from the cluster count.
  ap::ApConfig ap_template;
  /// Cluster the supervisor/configurator injects worms from.
  int configurator_x = 0;
  int configurator_y = 0;
  /// Ceiling for NoC draining during a configuration.
  std::uint64_t max_config_cycles = 100000;
};

class ScalingManager {
 public:
  ScalingManager(topology::STopologyFabric& fabric, noc::NocFabric& noc,
                 ScalingConfig config = {}, Trace* trace = nullptr);

  // --- scaling ---------------------------------------------------------

  /// Allocates a processor over `clusters` clusters found in serpentine
  /// order (spatially local in-order placement, §3.3). Returns kNoProc
  /// if no contiguous free run exists or the wormhole configuration
  /// hits a reservation conflict.
  ProcId allocate(std::size_t clusters);

  /// Allocates over an explicit cluster path (arbitrary shapes, rings).
  ProcId allocate_path(const std::vector<topology::ClusterId>& path,
                       bool ring = false);

  /// Up-scale: extends the processor's region by `extra` clusters beyond
  /// its tail (serpentine-adjacent, reservation-checked). The processor
  /// must be inactive. Returns false if the extension is impossible.
  bool upscale(ProcId id, std::size_t extra);

  /// Down-scale: keeps the first `keep_clusters` clusters, releasing the
  /// rest (wormhole along the released tail, §3.4's unidirectional
  /// down-scaling). The processor must be inactive.
  void downscale(ProcId id, std::size_t keep_clusters);

  /// Releases the whole processor (state -> release, clusters freed).
  void release(ProcId id);

  // --- state machine / execution ---------------------------------------

  void activate(ProcId id);
  void deactivate(ProcId id);
  void sleep(ProcId id, std::optional<std::uint64_t> wake_at);
  /// Delivers an event to a sleeping processor (wakes it).
  void notify(ProcId id);
  /// Advances manager time; wakes timer-expired sleepers.
  void advance(std::uint64_t cycles);
  std::uint64_t now() const { return now_; }

  /// The AP simulator of a processor (instantiated at allocation;
  /// capacity = clusters x cluster stack capacity).
  ap::AdaptiveProcessor& processor(ProcId id);
  const ScaledProcessor& info(ProcId id) const;
  ProcState state(ProcId id) const;
  bool alive(ProcId id) const;
  std::size_t cluster_count(ProcId id) const;

  // --- inter-processor communication (fig. 7 d) ------------------------

  /// Writes `words` into the destination processor's memory block at
  /// `base_address`, carried by a data packet over the NoC from the
  /// source's head cluster. The destination must be inactive (its memory
  /// is writable by others only then). Returns the NoC cycles consumed.
  std::uint64_t send(ProcId from, ProcId to,
                     const std::vector<std::uint64_t>& words,
                     std::size_t base_address);

  /// send() followed by activation of the destination — the pipelined
  /// hand-off of fig. 7(d).
  std::uint64_t send_and_activate(ProcId from, ProcId to,
                                  const std::vector<std::uint64_t>& words,
                                  std::size_t base_address);

  // --- defect tolerance (§1) -------------------------------------------

  /// Marks a cluster permanently defective. If it is inside a live
  /// processor, the processor is split: clusters before the defect
  /// survive as the (shrunk) processor, the defect is quarantined, and
  /// clusters after it are freed for re-fusion. Returns the surviving
  /// processor id (kNoProc if the defect consumed the whole region).
  ProcId mark_defective(topology::ClusterId cluster);

  bool is_defective(topology::ClusterId cluster) const;

  /// Clusters quarantined as defective so far.
  std::size_t defective_clusters() const;

  /// What refuse_around() did to recover from a cluster fault.
  struct FaultRecovery {
    /// Processor the defect hit (kNoProc if the cluster was free). It
    /// has been driven through the fault path to release.
    ProcId victim = kNoProc;
    std::size_t victim_clusters = 0;
    /// Processor re-fused from spare clusters at the victim's size
    /// (kNoProc if the chip cannot host it even after compaction).
    ProcId replacement = kNoProc;
    /// True when fragmentation blocked the re-fuse and a compaction
    /// sweep was needed to coalesce the spares.
    bool compacted = false;
  };

  /// The full §3.3/§1 recovery path for a cluster fault, in one step:
  /// quarantines the cluster, drives any processor owning it through
  /// the release state (fsm.fault(), all its other clusters return to
  /// the pool), then re-fuses a replacement of the victim's original
  /// size from the spare clusters — compacting the chip first when
  /// fragmentation blocks the allocation. Unlike mark_defective(),
  /// which shrinks the victim in place, this models a supervisor that
  /// restarts the failed AP elsewhere. The caller owns the replacement
  /// (inactive, freshly fused). Faulting an already-quarantined
  /// cluster is a no-op.
  FaultRecovery refuse_around(topology::ClusterId cluster);

  // --- defragmentation --------------------------------------------------

  /// Compacts the chip: relocates *inactive* processors toward the
  /// serpentine origin so free clusters coalesce into contiguous runs
  /// (§5 contrasts the mesh, where a host must manage "placement,
  /// routing, replacement, and defragmentation" — on the S-topology the
  /// fold's linear order makes compaction a one-dimensional sweep).
  /// Active/sleeping processors and quarantined clusters stay in place.
  /// AP simulator state moves with the processor (logical objects are
  /// position-independent). Returns the number of processors relocated.
  std::size_t relocations() const { return stats_.relocations; }
  std::size_t compact();

  /// Longest contiguous free run in serpentine order — the largest
  /// processor allocate() can currently satisfy.
  std::size_t largest_free_run() const;

  const ScalingStats& stats() const { return stats_; }
  std::size_t free_clusters() const;
  std::vector<ProcId> live_processors() const;
  topology::RegionManager& regions() {
    mark_dirty();  // mutable escape hatch: assume the caller writes
    return regions_;
  }

  /// Monotonic mutation generation (see STopologyFabric::dirty_gen).
  /// Every scaling/state/defect/compaction mutator bumps it, as do the
  /// mutable escape hatches processor() and regions() — handing out a
  /// mutable AP reference must pessimistically count as a mutation, or
  /// the incremental checkpoint splice would serialise stale state.
  std::uint64_t dirty_gen() const { return dirty_gen_; }

  /// Publishes scaling counters, fuse/compaction wormhole durations,
  /// state-machine transition totals, and the AP-layer metrics of every
  /// processor — live ones plus the accumulated totals of simulators
  /// already torn down — into `registry`. Scaling metrics go under
  /// "<prefix>..."; AP-layer metrics keep their own "ap." prefix.
  void export_obs(obs::MetricRegistry& registry,
                  const std::string& prefix = "scaling.") const;

  /// Folds the scaling layer's lifetime activity into `a` (energy
  /// spine): worm programming and compaction from ScalingStats, every
  /// live processor's AP fold, plus the serialized accumulator of
  /// processors already torn down (retire_ap folds an AP's activity
  /// into retired_activity_ before its simulator is destroyed, so
  /// release/upscale/fault never lose energy history).
  void fold_energy(cost::EnergyActivity& a) const;

  /// Checkpoint codec: region table, every processor slot (dead slots
  /// keep their FSM counters), nested AP state for live processors,
  /// defect map, counters, wormhole timing stats and the retired-AP
  /// energy accumulator. retired_obs_ is telemetry and excluded
  /// (documented in docs/SNAPSHOT.md).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  ScaledProcessor& proc_mut(ProcId id);
  const ScaledProcessor& proc(ProcId id) const;
  void mark_dirty() { ++dirty_gen_; }

  /// Reserves the switches along `path` for a tentative region; rolls
  /// back and returns false on conflict.
  bool reserve_path(const std::vector<topology::ClusterId>& path,
                    topology::RegionId owner);
  void clear_path_reservations(const std::vector<topology::ClusterId>& path);

  /// Sends the configuration worm: one kConfig packet per target cluster
  /// carrying the switch-programming words; drains the NoC and charges
  /// the cycles. Returns false if the NoC failed to drain.
  bool send_config_worm(const std::vector<topology::ClusterId>& path);

  std::unique_ptr<ap::AdaptiveProcessor> make_ap(std::size_t clusters) const;

  /// Folds a processor's AP-layer lifetime counters into retired_obs_
  /// before its simulator is torn down or replaced — without this, every
  /// release/upscale/fault would silently discard the AP's history.
  void retire_ap(ScaledProcessor& p);

  topology::STopologyFabric& fabric_;
  noc::NocFabric& noc_;
  topology::RegionManager regions_;
  ScalingConfig config_;
  Trace* trace_;
  std::vector<ScaledProcessor> procs_;
  std::vector<bool> defective_;
  ScalingStats stats_;
  std::uint64_t now_ = 0;
  /// Observability: NoC cycles per configuration worm (fuse/split/
  /// relocate) and per compaction sweep.
  RunningStats worm_cycles_;
  RunningStats compaction_cycles_;
  /// AP-layer metrics of simulators already torn down; see retire_ap().
  obs::MetricRegistry retired_obs_;
  /// Energy activity of simulators already torn down. Unlike
  /// retired_obs_ this IS serialized: per-chip energy totals must
  /// survive checkpoint/resume bit-exactly, and a resumed chip cannot
  /// re-derive activity from APs that no longer exist.
  cost::EnergyActivity retired_activity_;
  std::uint64_t dirty_gen_ = 1;
};

}  // namespace vlsip::scaling
