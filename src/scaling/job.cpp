#include "scaling/job.hpp"

#include "common/require.hpp"

namespace vlsip::scaling {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kDeadlocked: return "deadlocked";
    case JobStatus::kTimedOut: return "timeout";
    case JobStatus::kNoAllocation: return "no-allocation";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kError: return "error";
  }
  return "unknown";
}

JobOutcome run_job_on(ScalingManager& manager, ProcId proc, const Job& job,
                      std::uint64_t default_max_cycles) {
  VLSIP_REQUIRE(manager.alive(proc), "run_job_on needs a live processor");
  const std::uint64_t budget =
      job.max_cycles != 0 ? job.max_cycles : default_max_cycles;

  JobOutcome outcome;
  outcome.name = job.name;
  outcome.clusters_used = manager.cluster_count(proc);

  auto& ap = manager.processor(proc);
  const auto config_stats = ap.configure(job.program);
  for (const auto& [name, words] : job.inputs) {
    for (const auto& w : words) ap.feed(name, w);
  }
  manager.activate(proc);
  ap::ExecStats exec;
  try {
    exec = ap.run(job.expected_per_output, budget);
  } catch (...) {
    // Leave the processor inactive even on a model violation so the
    // caller (e.g. a farm batch) can keep using or release it.
    manager.deactivate(proc);
    throw;
  }
  manager.deactivate(proc);

  outcome.completed = exec.completed;
  outcome.config_cycles = config_stats.cycles;
  outcome.exec_cycles = exec.cycles;
  outcome.faults = exec.faults;
  if (exec.completed) {
    outcome.status = JobStatus::kCompleted;
    for (const auto& [name, obj] : job.program.outputs) {
      (void)obj;
      outcome.outputs[name] = ap.output(name);
    }
  } else if (exec.deadlocked) {
    outcome.status = JobStatus::kDeadlocked;
    outcome.detail = "deadlocked";
    for (const auto& line : exec.blocked_report) {
      outcome.detail += "; " + line;
    }
  } else {
    outcome.status = JobStatus::kTimedOut;
    outcome.detail =
        "exceeded cycle budget (" + std::to_string(budget) + ")";
  }
  return outcome;
}

JobOutcome run_job(ScalingManager& manager, const Job& job,
                   const RunJobOptions& options, bool* compacted_out) {
  const std::size_t clusters =
      options.clusters != 0 ? options.clusters : job.requested_clusters;
  if (compacted_out != nullptr) *compacted_out = false;

  ProcId proc = manager.allocate(clusters);
  if (proc == kNoProc && options.compact_on_fragmentation) {
    if (manager.compact() > 0) {
      proc = manager.allocate(clusters);
      if (proc != kNoProc && compacted_out != nullptr) {
        *compacted_out = true;
      }
    }
  }
  if (proc == kNoProc) {
    JobOutcome outcome;
    outcome.name = job.name;
    outcome.status = JobStatus::kNoAllocation;
    outcome.detail = "cannot fuse " + std::to_string(clusters) +
                     " clusters (free: " +
                     std::to_string(manager.free_clusters()) + ")";
    return outcome;
  }

  JobOutcome outcome =
      run_job_on(manager, proc, job, options.default_max_cycles);
  manager.release(proc);
  return outcome;
}

}  // namespace vlsip::scaling
